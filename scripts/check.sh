#!/bin/sh
# The repo's CI gate: formatting, vet, build, and the test suite under the
# race detector. Equivalent to `make check` for environments without make.
set -eu

cd "$(dirname "$0")/.."

out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

go vet ./...
go run ./scripts/metriclint .
go build ./...
go test -race ./...
