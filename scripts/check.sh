#!/bin/sh
# The repo's CI gate: formatting, vet, build, the test suite under the race
# detector, the concurrency stress suite, the crash-recovery suite, the
# client/server serving suite, the shard-routing suite, the wire-protocol
# suite (negotiation matrix + golden vectors + short fuzz; all fresh,
# uncached), the replication suite, the adaptive-merging suite, and the quick
# probes (read-under-write + cross-shard IND). Equivalent to `make check` for
# environments without make.
set -eu

cd "$(dirname "$0")/.."

out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

go vet ./...
go run ./scripts/metriclint .
go build ./...
go test -race ./...
go test -race -count=1 -run 'Stress|Concurrent|Mixed' ./internal/engine/ ./internal/workload/ ./internal/attrset/
go test -race -count=1 -run 'Crash|Failpoint|Recovery|WAL' ./internal/wal/ ./internal/engine/
go test -race -count=1 -run 'Session|Remote|Serve|Frame|Wire|Protocol|Admission|Deadline|Drain|Kill|Coalesc|Client|Stats|Code|Sentinels' ./internal/server/ ./pkg/relmerge/
go test -race -count=1 -run 'HashKey|Router|CrossShard|Shard|NonKeyIND|ProbeCache' ./internal/shard/
go test -race -count=1 -run 'Negotiation|Golden|Binary|Version|Fallback|Taxonomy|WriteFrame|EncodeAllocs' ./internal/server/
go test -run xxx -fuzz FuzzBinaryRoundTrip -fuzztime 10s ./internal/server/
go test -run xxx -fuzz FuzzReadFrame -fuzztime 10s ./internal/server/
go test -race -count=1 -run 'Repl|Follower|Promote|Failover|Ship|Stream|Snapshot|Checkpoint' ./internal/wal/ ./internal/engine/ ./internal/repl/ ./pkg/relmerge/
go test -race -count=1 -run 'Migrate|CoAccess|Decide|Apply|Advis|CostModelFromStats' ./internal/engine/ ./internal/shard/ ./internal/advisor/... ./pkg/relmerge/
go run ./cmd/benchreport -probe
