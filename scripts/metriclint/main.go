// Command metriclint is the repo's metric-name checker, run by
// scripts/check.sh. The convention under internal/ is that every metric name
// handed to the obs registry lives in a package-level `metricXxx` string
// constant; this tool parses every non-test Go file and enforces that
//
//   - each such constant's value is unique across the whole repository (two
//     packages registering the same series name would silently share it or
//     panic on a kind mismatch at runtime), and
//   - each value follows the naming convention: a lowercase dotted path like
//     "engine.trigger_firings".
//
// It exits nonzero listing every violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var namePattern = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	decls, err := collect(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		os.Exit(1)
	}

	var problems []string
	byValue := map[string][]string{}
	for _, d := range decls {
		byValue[d.value] = append(byValue[d.value], d.pos)
		if !namePattern.MatchString(d.value) {
			problems = append(problems,
				fmt.Sprintf("%s: metric name %q does not match the lowercase dotted convention", d.pos, d.value))
		}
	}
	for value, positions := range byValue {
		if len(positions) > 1 {
			sort.Strings(positions)
			problems = append(problems,
				fmt.Sprintf("metric name %q declared more than once: %s", value, strings.Join(positions, ", ")))
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "metriclint:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("metriclint: %d metric names, all unique\n", len(decls))
}

type decl struct {
	value string
	pos   string
}

// collect parses every non-test .go file under root (skipping vendor-ish and
// hidden directories) and returns each package-level `metricXxx` string
// constant with its position.
func collect(root string) ([]decl, error) {
	var out []decl
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		for _, gd := range file.Decls {
			gen, ok := gd.(*ast.GenDecl)
			if !ok || gen.Tok != token.CONST {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, ident := range vs.Names {
					if !strings.HasPrefix(ident.Name, "metric") || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					value, err := strconv.Unquote(lit.Value)
					if err != nil {
						continue
					}
					out = append(out, decl{value: value, pos: fset.Position(ident.Pos()).String()})
				}
			}
		}
		return nil
	})
	return out, err
}
