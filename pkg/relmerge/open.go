package relmerge

import (
	"fmt"
	"time"

	"repro/internal/advisor/online"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wal"
)

// BackendKind selects what an Open'd Session runs on.
type BackendKind int

const (
	// Embedded runs the engine in-process (the zero value — plain
	// Open(Config{Schema: s}) gives an embedded session).
	Embedded BackendKind = iota
	// Remote connects to a relmerged server over TCP.
	Remote
	// Sharded runs N in-process engines behind a hash-partitioning router
	// that checks inclusion dependencies across shards.
	Sharded
	// Follower runs a local durable engine that continuously replays a
	// primary relmerged server's shipped WAL and serves read-only sessions
	// pinned at its applied-LSN horizon; writes fail with CodeReadOnly until
	// Promote.
	Follower
)

func (k BackendKind) String() string {
	switch k {
	case Embedded:
		return "embedded"
	case Remote:
		return "remote"
	case Sharded:
		return "sharded"
	case Follower:
		return "follower"
	}
	return fmt.Sprintf("BackendKind(%d)", int(k))
}

// Config describes a Session for Open: which backend, and the few fields
// that backend needs. Zero values are meaningful everywhere — the minimal
// embedded session is Open(Config{Schema: s}), the minimal remote one
// Open(Config{Backend: Remote, Addr: addr}).
type Config struct {
	// Backend selects the implementation (default Embedded).
	Backend BackendKind

	// Schema is the relational schema (Embedded and Sharded; ignored by
	// Remote — the server owns the schema).
	Schema *Schema

	// Addr is the relmerged server address: the server a Remote session
	// talks to, or the primary a Follower ships its WAL from.
	Addr string
	// RemoteOptions tune the remote client: pool size, timeouts, retries
	// (Remote only).
	RemoteOptions []RemoteOption
	// Wire selects the codec offered in the protocol handshake (Remote
	// only; default WireBinary). A WithWire entry in RemoteOptions wins.
	Wire Wire

	// Shards is the partition count (Sharded only; must be >= 1).
	Shards int
	// ShardCacheSize bounds each shard's read-through cache of remote
	// referenced keys (Sharded only; 0 = default, negative disables).
	ShardCacheSize int

	// DurableDir, when set, opens a write-ahead log there (Embedded), or one
	// per shard in subdirectories shard-<i> (Sharded). An existing log is
	// recovered from first. Required for Follower — the local log IS the
	// replica state, and a restarted follower resumes from it.
	DurableDir string
	// Sync is the fsync policy of the log(s) (default SyncNever). Ignored
	// unless DurableDir is set.
	Sync SyncPolicy

	// PollInterval is a follower's fetch cadence when caught up with the
	// primary (Follower only; 0 = default 25ms). While behind, the follower
	// fetches continuously without sleeping.
	PollInterval time.Duration

	// EngineOptions are extra engine options — access-delay simulation,
	// metric names — applied to the embedded engine or to every shard.
	EngineOptions []EngineOption
	// Registry receives the backend's metric series (Embedded and Sharded;
	// nil keeps each engine's private registry). For Remote it receives the
	// client-side wire counters (client.bytes_read / client.bytes_written /
	// client.requests / client.retries, labeled client=<addr>).
	Registry *Registry

	// Advisor configures the background adaptive-merge advisor (usually set
	// via the WithAdvisor option). Modes other than AdvisorOff are valid only
	// on backends that own their design: Open refuses them on Remote and
	// Follower with an error wrapping ErrUnsupported.
	Advisor AdvisorConfig
}

// OpenOption mutates the Config before Open validates it, so call sites can
// layer optional behavior over a literal base config:
//
//	sess, err := relmerge.Open(cfg, relmerge.WithAdvisor(relmerge.AdvisorAuto, time.Second))
type OpenOption func(*Config)

// WithAdvisor runs the adaptive-merge advisor loop on the opened session:
// every interval (0 = default 1s) it reads the engine's co-access
// measurements, prices the merge candidates, and — in AdvisorAuto mode —
// applies the best auto-applicable (only-NNA) merge to the live design.
// Valid on Embedded and Sharded backends only.
func WithAdvisor(mode AdvisorMode, interval time.Duration) OpenOption {
	return func(cfg *Config) {
		cfg.Advisor.Mode = mode
		cfg.Advisor.Interval = interval
	}
}

// WithAdvisorConfig is WithAdvisor with the full policy surface: admission
// heat, pinned cost model, and observation callbacks.
func WithAdvisorConfig(ac AdvisorConfig) OpenOption {
	return func(cfg *Config) { cfg.Advisor = ac }
}

// Open is the one constructor for every Session backend: embedded engine,
// remote client, or sharded router, selected by cfg.Backend. The returned
// Session behaves identically across backends — same method set, same error
// taxonomy (sentinels, *ConstraintViolation, Code), as enforced by the
// cross-backend conformance suite.
//
// OpenSession, Dial, and NewShardedSession remain as typed wrappers for
// callers that want the concrete session type.
func Open(cfg Config, options ...OpenOption) (Session, error) {
	for _, opt := range options {
		opt(&cfg)
	}
	if cfg.Advisor.Mode != AdvisorOff {
		switch cfg.Backend {
		case Remote:
			return nil, fmt.Errorf("%w: Open(%v) with advisor mode %v — a remote session cannot migrate the server's design; run the advisor on the server (relmerged -advise)", ErrUnsupported, cfg.Backend, cfg.Advisor.Mode)
		case Follower:
			return nil, fmt.Errorf("%w: Open(%v) with advisor mode %v — a follower replays the primary's design; run the advisor on the primary", ErrUnsupported, cfg.Backend, cfg.Advisor.Mode)
		}
	}
	switch cfg.Backend {
	case Embedded:
		if cfg.Schema == nil {
			return nil, fmt.Errorf("relmerge: Open(%v) requires Schema", cfg.Backend)
		}
		opts := append([]EngineOption{}, cfg.EngineOptions...)
		if cfg.Registry != nil {
			opts = append(opts, WithEngineRegistry(cfg.Registry))
		}
		if cfg.DurableDir != "" {
			opts = append(opts, WithDurability(cfg.DurableDir, cfg.Sync))
		}
		eng, err := OpenEngine(cfg.Schema, opts...)
		if err != nil {
			return nil, err
		}
		sess := NewSession(eng)
		sess.advStop = startAdvisor(online.ForDB(eng), cfg.Advisor)
		return sess, nil

	case Remote:
		if cfg.Addr == "" {
			return nil, fmt.Errorf("relmerge: Open(%v) requires Addr", cfg.Backend)
		}
		var o server.ClientOptions
		o.MaxWire = cfg.Wire.maxWire()
		o.Registry = cfg.Registry
		for _, opt := range cfg.RemoteOptions {
			opt(&o)
		}
		c, err := server.Dial(cfg.Addr, o)
		if err != nil {
			return nil, err
		}
		return &RemoteSession{c: c}, nil

	case Sharded:
		if cfg.Schema == nil {
			return nil, fmt.Errorf("relmerge: Open(%v) requires Schema", cfg.Backend)
		}
		if cfg.Shards < 1 {
			return nil, fmt.Errorf("relmerge: Open(%v) requires Shards >= 1 (got %d)", cfg.Backend, cfg.Shards)
		}
		r, err := shard.Open(cfg.Schema, shard.Config{
			Shards:        cfg.Shards,
			Registry:      cfg.Registry,
			WALDir:        cfg.DurableDir,
			WALOpts:       wal.Options{Policy: cfg.Sync},
			EngineOptions: cfg.EngineOptions,
			CacheSize:     cfg.ShardCacheSize,
		})
		if err != nil {
			return nil, err
		}
		sess := NewShardedSession(r)
		sess.advStop = startAdvisor(routerTarget{r}, cfg.Advisor)
		return sess, nil

	case Follower:
		if cfg.Schema == nil {
			return nil, fmt.Errorf("relmerge: Open(%v) requires Schema (the primary's serving schema)", cfg.Backend)
		}
		if cfg.Addr == "" {
			return nil, fmt.Errorf("relmerge: Open(%v) requires Addr (the primary to replicate from)", cfg.Backend)
		}
		if cfg.DurableDir == "" {
			return nil, fmt.Errorf("relmerge: Open(%v) requires DurableDir (the local log is the replica state)", cfg.Backend)
		}
		opts := append([]EngineOption{}, cfg.EngineOptions...)
		if cfg.Registry != nil {
			opts = append(opts, WithEngineRegistry(cfg.Registry))
		}
		opts = append(opts, WithDurability(cfg.DurableDir, cfg.Sync), AsReplica())
		eng, err := OpenEngine(cfg.Schema, opts...)
		if err != nil {
			return nil, err
		}
		f, err := repl.Open(cfg.Addr, eng, repl.Options{
			PollInterval: cfg.PollInterval,
			Registry:     cfg.Registry,
		})
		if err != nil {
			eng.Close()
			return nil, err
		}
		return NewFollowerSession(f), nil
	}
	return nil, fmt.Errorf("relmerge: Open: unknown backend %v", cfg.Backend)
}
