package relmerge

import (
	"repro/internal/engine"
	"repro/internal/wal"
)

// Durability types, re-exported so callers can run the engine with a
// write-ahead log — crash recovery, snapshot checkpoints, fsync policies —
// without importing internal/engine or internal/wal. The Engine alias
// carries the durable methods: Checkpoint, Close, Recovered, Durable.
type (
	// SyncPolicy selects when the write-ahead log calls fsync.
	SyncPolicy = wal.SyncPolicy
	// WALOptions gives full control of the log (segment size, fsync
	// interval, failpoints) for WithWALOptions.
	WALOptions = wal.Options
	// RecoveryInfo describes what OpenEngine reconstructed from the log.
	RecoveryInfo = engine.RecoveryInfo
)

// Fsync policies, re-exported from internal/wal.
const (
	// SyncNever leaves fsync to the OS: fastest, survives process crashes
	// but not power loss.
	SyncNever = wal.SyncNever
	// SyncInterval bounds data loss to the configured interval (100ms by
	// default).
	SyncInterval = wal.SyncInterval
	// SyncAlways fsyncs every commit: no committed operation is ever lost.
	SyncAlways = wal.SyncAlways
)

// Durability options and helpers, re-exported from internal/engine and
// internal/wal.
var (
	// WithDurability opens the engine's write-ahead log in a directory with
	// the given fsync policy; if the directory already holds a log, the
	// engine recovers from it first (see Engine.Recovered).
	WithDurability = engine.WithDurability
	// WithWALOptions is WithDurability with full control of the log options.
	WithWALOptions = engine.WithWALOptions
	// AsReplica marks the engine as a replication follower: a log ending
	// inside an unterminated transaction is resumable (the primary's commit
	// marker is still in flight), so recovery keeps the buffered suffix and
	// Checkpoint refuses until the marker arrives. Open(Config{Backend:
	// Follower}) sets it automatically.
	AsReplica = engine.AsReplica
	// ParseSyncPolicy parses "always", "interval", or "never".
	ParseSyncPolicy = wal.ParseSyncPolicy
)
