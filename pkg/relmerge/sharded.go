package relmerge

import (
	"context"

	"repro/internal/server"
	"repro/internal/shard"
)

// ShardedSession adapts a shard router — N independent engines behind a
// hash-partitioning, cross-shard-constraint-checking front — to the Session
// interface. Open with Open(Config{Backend: Sharded, ...}); the conformance
// suite runs against it unchanged, including constraint-violation kinds for
// dependencies whose two sides live on different shards.
type ShardedSession struct {
	r *shard.Router
	// advStop stops the background advisor loop, when Open started one
	// (WithAdvisor / Config.Advisor); nil otherwise.
	advStop func()
}

// ShardedView is a read view pinned across every shard's current MVCC
// version, re-exported from internal/shard.
type ShardedView = shard.View

// NewShardedSession wraps an already-open router (see shard.Open); most
// callers use Open(Config{Backend: Sharded}) instead. Close closes every
// shard engine.
func NewShardedSession(r *shard.Router) *ShardedSession { return &ShardedSession{r: r} }

// Router returns the wrapped router, for callers that need APIs beyond the
// Session surface (per-shard engines, probe stats, views).
func (s *ShardedSession) Router() *shard.Router { return s.r }

// View pins every shard's current MVCC version as one read view (per-shard
// consistent; see shard.Router.View).
func (s *ShardedSession) View() *ShardedView { return s.r.View() }

func (s *ShardedSession) Insert(relName string, tup Tuple) error {
	return s.r.Insert(relName, tup)
}

func (s *ShardedSession) InsertCtx(ctx context.Context, relName string, tup Tuple) error {
	return s.r.InsertCtx(ctx, relName, tup)
}

func (s *ShardedSession) Delete(relName string, key Tuple) error {
	return s.r.Delete(relName, key)
}

func (s *ShardedSession) DeleteCtx(ctx context.Context, relName string, key Tuple) error {
	return s.r.DeleteCtx(ctx, relName, key)
}

func (s *ShardedSession) Update(relName string, key, tup Tuple) error {
	return s.r.Update(relName, key, tup)
}

func (s *ShardedSession) UpdateCtx(ctx context.Context, relName string, key, tup Tuple) error {
	return s.r.UpdateCtx(ctx, relName, key, tup)
}

func (s *ShardedSession) Fetch(relName string, key Tuple) (Tuple, bool, error) {
	return s.FetchCtx(context.Background(), relName, key)
}

func (s *ShardedSession) FetchCtx(ctx context.Context, relName string, key Tuple) (Tuple, bool, error) {
	return s.r.GetByKeyCtx(ctx, relName, key)
}

func (s *ShardedSession) InsertBatch(relName string, tuples []Tuple) error {
	return s.r.InsertBatch(relName, tuples)
}

func (s *ShardedSession) InsertBatchCtx(ctx context.Context, relName string, tuples []Tuple) error {
	return s.r.InsertBatchCtx(ctx, relName, tuples)
}

func (s *ShardedSession) ApplyBatch(ops []BatchOp) error {
	return s.r.ApplyBatch(ops)
}

func (s *ShardedSession) ApplyBatchCtx(ctx context.Context, ops []BatchOp) error {
	return s.r.ApplyBatchCtx(ctx, ops)
}

func (s *ShardedSession) Begin() error { return s.BeginCtx(context.Background()) }

func (s *ShardedSession) BeginCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return server.TxnError(s.r.Begin())
}

func (s *ShardedSession) Commit() error { return s.CommitCtx(context.Background()) }

func (s *ShardedSession) CommitCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return server.TxnError(s.r.Commit())
}

func (s *ShardedSession) Rollback() error { return s.RollbackCtx(context.Background()) }

func (s *ShardedSession) RollbackCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return server.TxnError(s.r.Rollback())
}

func (s *ShardedSession) Stats() (EngineStats, error) {
	return s.StatsCtx(context.Background())
}

func (s *ShardedSession) StatsCtx(ctx context.Context) (EngineStats, error) {
	if err := ctx.Err(); err != nil {
		return EngineStats{}, err
	}
	return s.r.StatsTotals(), nil
}

func (s *ShardedSession) Checkpoint() error { return s.CheckpointCtx(context.Background()) }

func (s *ShardedSession) CheckpointCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.r.Checkpoint()
}

func (s *ShardedSession) Close() error {
	if s.advStop != nil {
		s.advStop()
		s.advStop = nil
	}
	return s.r.Close()
}

var _ Session = (*ShardedSession)(nil)
