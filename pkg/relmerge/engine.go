package relmerge

import (
	"context"

	"repro/internal/engine"
	"repro/internal/state"
)

// Engine-side types, re-exported so callers can run the in-memory engine —
// loads, lookups, batched mutations, stats — without importing internal/engine.
type (
	// Engine is the concurrent in-memory engine: per-table reader/writer
	// locks, atomic stats, and batched mutation APIs.
	Engine = engine.DB
	// EngineOption configures OpenEngine.
	EngineOption = engine.Option
	// BatchOp is one operation of a mixed batch (see Engine.ApplyBatchCtx).
	BatchOp = engine.BatchOp
	// EngineStats is a point-in-time copy of an engine's cost counters.
	EngineStats = engine.StatsSnapshot
	// ConstraintViolation is the typed error mutations return when a
	// declarative or procedural constraint rejects them.
	ConstraintViolation = engine.ConstraintViolation
	// EngineView is a consistent read view pinned to one published MVCC
	// version of an engine: every lookup, scan, and navigational fetch
	// through it answers from the same immutable snapshot, lock-free, no
	// matter how many writers commit meanwhile. Obtain one with
	// EmbeddedSession.View or Engine.View; re-pin for freshness.
	EngineView = engine.View
	// RelatedTuple is one edge of a navigational fetch result: the referenced
	// (or referencing) tuple reached by following an inclusion dependency.
	RelatedTuple = engine.Related
)

// Engine options, re-exported from internal/engine.
var (
	// WithEngineRegistry reports the engine's metrics into r instead of a
	// private registry.
	WithEngineRegistry = engine.WithRegistry
	// WithEngineName sets the db=<name> label on the engine's metric series.
	WithEngineName = engine.WithName
	// WithAccessDelay simulates one storage access of the given duration per
	// operation, inside the engine's critical sections — the knob the scaling
	// benchmarks use to model the paper's page-access cost model.
	WithAccessDelay = engine.WithAccessDelay
)

// Batch op constructors, re-exported from internal/engine.
var (
	// Ins builds an insert batch op.
	Ins = engine.Ins
	// Del builds a delete batch op (key = primary key of the target tuple).
	Del = engine.Del
	// Upd builds an update batch op.
	Upd = engine.Upd
)

// OpenEngine opens an engine over the schema: validates the constraint set,
// builds the primary-key indexes and per-table lock plans, and registers the
// metric series.
func OpenEngine(s *Schema, opts ...EngineOption) (*Engine, error) {
	return engine.Open(s, opts...)
}

// Replay loads a database state into a fresh engine over s — each relation as
// one atomic batch — and returns the engine. Use it to stand up a queryable
// engine from a state built by hand, parsed from SDL, or mapped through a
// merge's η mapping.
//
// Historically Replay took a context as its first argument; that spelling is
// now ReplayCtx, matching the package-wide convention that every operation
// has a Ctx variant and the plain form delegates to it.
func Replay(s *Schema, db *state.DB, opts ...EngineOption) (*Engine, error) {
	return ReplayCtx(context.Background(), s, db, opts...)
}

// ReplayCtx is Replay with cancellation, checked between relation batches so
// a large load can be abandoned at a consistent prefix.
func ReplayCtx(ctx context.Context, s *Schema, db *state.DB, opts ...EngineOption) (*Engine, error) {
	e, err := engine.Open(s, opts...)
	if err != nil {
		return nil, err
	}
	if err := e.LoadCtx(ctx, db); err != nil {
		return nil, err
	}
	return e, nil
}
