package relmerge_test

import (
	"context"
	"testing"

	"repro/pkg/relmerge"
)

// The facade opens a durable engine, checkpoints it, and recovers the full
// committed state after a simulated crash (the first engine is dropped
// without Close) — all without importing internal/.
func TestFacadeDurableEngine(t *testing.T) {
	dir := t.TempDir()
	e, err := relmerge.ReplayCtx(context.Background(), relmerge.Fig3(), relmerge.Fig3State(),
		relmerge.WithDurability(dir, relmerge.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Durable() {
		t.Fatal("engine opened with WithDurability is not durable")
	}
	if err := e.Insert("COURSE", relmerge.Tuple{relmerge.NewString("c9")}); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := e.Insert("COURSE", relmerge.Tuple{relmerge.NewString("c10")}); err != nil {
		t.Fatal(err)
	}
	want := e.Snapshot()
	// Crash: drop the engine without Close. The log must carry everything.

	re, err := relmerge.OpenEngine(relmerge.Fig3(), relmerge.WithDurability(dir, relmerge.SyncAlways))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	info := re.Recovered()
	if !info.Recovered || !info.SnapshotLoaded {
		t.Fatalf("RecoveryInfo = %+v, want a recovery from snapshot + log", info)
	}
	if !re.Snapshot().Equal(want) {
		t.Fatal("recovered state differs from the pre-crash committed state")
	}
}

// ParseSyncPolicy round-trips every policy name through the facade.
func TestFacadeParseSyncPolicy(t *testing.T) {
	for _, p := range []relmerge.SyncPolicy{relmerge.SyncNever, relmerge.SyncInterval, relmerge.SyncAlways} {
		got, err := relmerge.ParseSyncPolicy(p.String())
		if err != nil {
			t.Fatalf("ParseSyncPolicy(%q): %v", p, err)
		}
		if got != p {
			t.Errorf("ParseSyncPolicy(%q) = %v", p, got)
		}
	}
	if _, err := relmerge.ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted an unknown policy")
	}
}
