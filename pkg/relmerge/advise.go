package relmerge

import (
	"context"
	"fmt"
	"time"

	"repro/internal/advisor"
	"repro/internal/advisor/online"
	"repro/internal/engine"
	"repro/internal/shard"
)

// This file is the public surface of adaptive merging: the engine measures
// its own access patterns (per-IND co-access counters on the lock-free fetch
// path), Advise turns the measurements into priced merge recommendations,
// and ApplyRecommendation migrates the live design — all through the same
// Session the operational API uses. Opening a session with WithAdvisor runs
// the measure→decide→migrate loop in the background.

// AdvisorMode selects what the background advisor does.
type AdvisorMode int

const (
	// AdvisorOff disables the background advisor (the zero value).
	AdvisorOff AdvisorMode = iota
	// AdvisorSuggest measures and decides but never migrates; admitted
	// recommendations are delivered to AdvisorConfig.OnSuggestion.
	AdvisorSuggest
	// AdvisorAuto additionally applies the best auto-applicable
	// recommendation — only merges in the Prop. 5.2 only-NNA regime, whose
	// post-merge constraint set is declaratively maintainable, are ever
	// applied without review.
	AdvisorAuto
)

func (m AdvisorMode) String() string { return online.Mode(m).String() }

// ParseAdvisorMode parses "off", "suggest", or "auto" (the -advise flag
// values of relmerged).
func ParseAdvisorMode(s string) (AdvisorMode, error) {
	switch s {
	case "off":
		return AdvisorOff, nil
	case "suggest":
		return AdvisorSuggest, nil
	case "auto":
		return AdvisorAuto, nil
	}
	return AdvisorOff, fmt.Errorf("relmerge: unknown advisor mode %q (want off, suggest, or auto)", s)
}

// AdvisorConfig configures the adaptive-merge advisor, both the one-shot
// Advise call and the background loop a session runs when opened with
// WithAdvisor.
type AdvisorConfig struct {
	// Mode is what the background loop does (Advise itself ignores it).
	Mode AdvisorMode
	// Interval is the background decision cadence (default 1s).
	Interval time.Duration
	// MinCoAccess is the admission heat: a cluster is recommended only after
	// its internal dependency edges accumulated this many co-accesses on the
	// current design (default online.DefaultMinCoAccess).
	MinCoAccess int64
	// CostModel pins the pricing model; nil calibrates one from the
	// session's measured operation mix (CostModelFromStats).
	CostModel *CostModel
	// OnSuggestion, if set, receives every admitted recommendation of each
	// background pass (Suggest and Auto modes).
	OnSuggestion func(Recommendation)
	// OnApplied, if set, receives the result of each automatic application.
	OnApplied func(Recommendation, error)
}

// Recommendation is one priced merge candidate, the stable public shape of
// the advisor's output: enough to display, persist, and hand back to
// ApplyRecommendation.
type Recommendation struct {
	// Cluster is the member set, key-relation first.
	Cluster []string
	// KeyRelation is the Prop. 3.1 key-relation the merge is rooted at.
	KeyRelation string
	// MergedName is the name the merged relation-scheme will carry.
	MergedName string
	// OnlyNNA reports the Prop. 5.2 regime: the post-merge constraint set is
	// purely nulls-not-allowed, hence declaratively maintainable.
	OnlyNNA bool
	// ProceduralConstraints counts post-merge constraints needing
	// trigger/rule maintenance.
	ProceduralConstraints int
	// NetBenefit is the workload-weighted saving of merging (positive means
	// the advisor recommends it).
	NetBenefit float64
	// CoAccessHits is the measured join-shaped traffic inside the cluster
	// that admitted it.
	CoAccessHits int64
	// Admitted: hot enough and priced net-positive.
	Admitted bool
	// AutoApplicable: admitted and in the only-NNA regime — what AdvisorAuto
	// is allowed to apply unattended.
	AutoApplicable bool
}

func publicRec(s online.Suggestion) Recommendation {
	return Recommendation{
		Cluster:               append([]string(nil), s.Rec.Cluster...),
		KeyRelation:           s.Rec.KeyRelation,
		MergedName:            s.Rec.MergedName,
		OnlyNNA:               s.Rec.OnlyNNA,
		ProceduralConstraints: s.Rec.ProceduralConstraints,
		NetBenefit:            s.Rec.NetBenefit,
		CoAccessHits:          s.CoAccessHits,
		Admitted:              s.Admitted,
		AutoApplicable:        s.AutoApplicable,
	}
}

func (cfg AdvisorConfig) decide() online.Config {
	return online.Config{MinCoAccess: cfg.MinCoAccess, CostModel: cfg.CostModel}
}

// advisorTarget returns the live design the session fronts, or nil when the
// backend does not own one (remote: the design is the server's; follower:
// the design is dictated by the primary's shipped log).
func advisorTarget(sess Session) online.Target {
	switch s := sess.(type) {
	case *EmbeddedSession:
		return online.ForDB(s.eng)
	case *ShardedSession:
		return routerTarget{s.r}
	}
	return nil
}

type routerTarget struct{ r *shard.Router }

func (t routerTarget) DesignSnapshot() (*Schema, []engine.CoAccessStat, EngineStats) {
	return t.r.Schema(), t.r.CoAccessStats(), t.r.StatsTotals()
}

func (t routerTarget) Migrate(ns *Schema, transform func(*DB) (*DB, error)) error {
	return t.r.Migrate(ns, transform)
}

// Advise measures the session's live design — its schema, co-access heat,
// and operation mix — and returns the priced merge recommendations, best
// first. It works on backends that own their design (Embedded, Sharded);
// Remote and Follower sessions return ErrUnsupported (Code CodeUnsupported):
// a remote server's design is its own to adapt, and a follower's design is
// dictated by the primary it replays.
func Advise(sess Session, cfg AdvisorConfig) ([]Recommendation, error) {
	t := advisorTarget(sess)
	if t == nil {
		return nil, fmt.Errorf("%w: adaptive-merge advice requires a session that owns its design (embedded or sharded)", ErrUnsupported)
	}
	s, co, st := t.DesignSnapshot()
	sugs := online.Decide(s, co, st, cfg.decide())
	out := make([]Recommendation, len(sugs))
	for i, sug := range sugs {
		out[i] = publicRec(sug)
	}
	return out, nil
}

// applyRecommendation is the embedded/sharded implementation behind
// Session.ApplyRecommendation.
func applyRecommendation(t online.Target, rec Recommendation) error {
	if len(rec.Cluster) < 2 || rec.MergedName == "" || rec.KeyRelation == "" {
		return fmt.Errorf("relmerge: ApplyRecommendation requires a recommendation produced by Advise (cluster, key-relation, and merged name)")
	}
	return online.ApplyCluster(t, rec.Cluster, rec.MergedName, rec.KeyRelation)
}

// startAdvisor wires the background loop for a just-opened session; returns
// nil when the config keeps it off.
func startAdvisor(t online.Target, cfg AdvisorConfig) (stop func()) {
	if cfg.Mode == AdvisorOff {
		return nil
	}
	lc := online.LoopConfig{
		Mode:     online.Mode(cfg.Mode),
		Interval: cfg.Interval,
		Decide:   cfg.decide(),
	}
	if cfg.OnSuggestion != nil {
		lc.OnSuggestion = func(s online.Suggestion) { cfg.OnSuggestion(publicRec(s)) }
	}
	if cfg.OnApplied != nil {
		lc.OnApplied = func(s online.Suggestion, err error) { cfg.OnApplied(publicRec(s), err) }
	}
	return online.Start(t, lc)
}

// StartAdvisor runs the background measure→decide→migrate loop against an
// already-open session — what Open does internally for Config.Advisor —
// and returns its stop function (idempotent). Callers that build their
// backend by hand (relmerged assembles engines through the η mappings
// before serving) attach the advisor here. AdvisorOff returns a no-op stop;
// backends that do not own their design return ErrUnsupported.
func StartAdvisor(sess Session, cfg AdvisorConfig) (stop func(), err error) {
	t := advisorTarget(sess)
	if t == nil {
		return nil, fmt.Errorf("%w: the adaptive-merge advisor requires a session that owns its design (embedded or sharded)", ErrUnsupported)
	}
	stop = startAdvisor(t, cfg)
	if stop == nil {
		stop = func() {}
	}
	return stop, nil
}

// ApplyRecommendation on the four Session backends. Embedded and sharded
// sessions migrate the live design; the others return ErrUnsupported.

// ApplyRecommendation migrates the embedded engine onto the recommended
// merged design. The merge is re-derived from the engine's current schema at
// apply time, so a recommendation computed against a design that has since
// moved fails cleanly instead of half-applying.
func (s *EmbeddedSession) ApplyRecommendation(ctx context.Context, rec Recommendation) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return applyRecommendation(online.ForDB(s.eng), rec)
}

// ApplyRecommendation migrates every shard onto the recommended merged
// design through the router (union state, re-partition by the new keys, one
// schema-change WAL record per shard).
func (s *ShardedSession) ApplyRecommendation(ctx context.Context, rec Recommendation) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return applyRecommendation(routerTarget{s.r}, rec)
}

// ApplyRecommendation returns ErrUnsupported: a remote server's design is
// its own to adapt (run the advisor server-side with relmerged -advise).
func (s *RemoteSession) ApplyRecommendation(ctx context.Context, rec Recommendation) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return fmt.Errorf("%w: a remote session cannot migrate the server's design; run the advisor on the server (relmerged -advise)", ErrUnsupported)
}

// ApplyRecommendation returns ErrUnsupported: a follower's design is
// dictated by the primary's shipped log — migrate the primary and the
// schema-change record replicates like any other.
func (s *FollowerSession) ApplyRecommendation(ctx context.Context, rec Recommendation) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return fmt.Errorf("%w: a follower replays the primary's design; apply the recommendation on the primary", ErrUnsupported)
}

// Offline advisor facade: the §6 design-tool loop over a written-down
// workload description, re-exported so cmd/sdt and examples need no internal
// imports. The online path (Advise above) synthesizes the workload from live
// measurements instead.
type (
	// Workload gives per-scheme access frequencies for offline advice.
	Workload = advisor.Workload
	// CostModel prices the primitive operations the engine counts.
	CostModel = advisor.CostModel
	// DesignRecommendation is one priced candidate of the offline advisor.
	DesignRecommendation = advisor.Recommendation
)

var (
	// DefaultCostModel is the fixed-ratio cost model.
	DefaultCostModel = advisor.DefaultCostModel
	// CostModelFromStats calibrates a cost model from a session's measured
	// operation mix (Session.Stats).
	CostModelFromStats = advisor.CostModelFromStats
	// AdviseDesign prices every merge cluster of a schema under an explicit
	// workload description (the offline §6 loop).
	AdviseDesign = advisor.Advise
	// DesignReport renders offline recommendations as a table.
	DesignReport = advisor.Report
)
