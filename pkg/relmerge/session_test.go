package relmerge_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/pkg/relmerge"
)

// confSchema is the conformance schema: a referenced relation D, a
// referencing relation E with a key-based inclusion dependency into D and a
// nulls-not-allowed payload attribute — enough surface to provoke every
// constraint regime a Session can report.
func confSchema() *relmerge.Schema {
	s := relmerge.NewSchema()
	s.AddScheme(relmerge.NewScheme("D",
		[]relmerge.Attribute{{Name: "D.ID", Domain: "d"}, {Name: "D.NAME", Domain: "n"}},
		[]string{"D.ID"}))
	s.AddScheme(relmerge.NewScheme("E",
		[]relmerge.Attribute{{Name: "E.ID", Domain: "e"}, {Name: "E.D", Domain: "d"}, {Name: "E.PAY", Domain: "p"}},
		[]string{"E.ID"}))
	s.INDs = append(s.INDs, relmerge.NewIND("E", []string{"E.D"}, "D", []string{"D.ID"}))
	s.Nulls = append(s.Nulls, relmerge.NNA("E", "E.PAY"))
	return s
}

func d(id, name string) relmerge.Tuple {
	return relmerge.Tuple{relmerge.NewString(id), relmerge.NewString(name)}
}

func e(id, dept, pay string) relmerge.Tuple {
	return relmerge.Tuple{relmerge.NewString(id), relmerge.NewString(dept), relmerge.NewString(pay)}
}

func k(id string) relmerge.Tuple { return relmerge.Tuple{relmerge.NewString(id)} }

// withBackends runs one conformance body against a fresh embedded session,
// a fresh remote session (relmerged server over loopback), and a fresh
// sharded session (3-way hash-partitioned router) — every one constructed
// through the unified relmerge.Open entrypoint. The Session contract —
// results, error sentinels, error codes, constraint-violation kinds (
// including for dependencies whose two sides land on different shards) —
// must be identical.
func withBackends(t *testing.T, body func(t *testing.T, sess relmerge.Session)) {
	t.Helper()
	t.Run("embedded", func(t *testing.T) {
		sess, err := relmerge.Open(relmerge.Config{
			Schema:   confSchema(),
			Registry: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sess.Close() })
		body(t, sess)
	})
	// The remote backend runs once per wire codec: the Session contract must
	// hold identically over binary v2 and JSON v1.
	for _, wire := range []relmerge.Wire{relmerge.WireBinary, relmerge.WireJSON} {
		t.Run("remote-"+wire.String(), func(t *testing.T) {
			eng, err := engine.Open(confSchema(), engine.WithRegistry(obs.NewRegistry()))
			if err != nil {
				t.Fatal(err)
			}
			srv := server.New(eng, server.Config{Registry: obs.NewRegistry()})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve(ln)
			t.Cleanup(func() { srv.Close() })
			sess, err := relmerge.Open(relmerge.Config{
				Backend: relmerge.Remote,
				Addr:    ln.Addr().String(),
				Wire:    wire,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sess.Close() })
			wantVer := 2
			if wire == relmerge.WireJSON {
				wantVer = 1
			}
			if got := sess.(*relmerge.RemoteSession).WireVersion(); got != wantVer {
				t.Fatalf("negotiated wire version %d, want %d", got, wantVer)
			}
			body(t, sess)
		})
	}
	t.Run("sharded", func(t *testing.T) {
		sess, err := relmerge.Open(relmerge.Config{
			Backend:  relmerge.Sharded,
			Schema:   confSchema(),
			Shards:   3,
			Registry: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sess.Close() })
		body(t, sess)
	})
}

func TestSessionRoundTrip(t *testing.T) {
	withBackends(t, func(t *testing.T, sess relmerge.Session) {
		if err := sess.Insert("D", d("d1", "eng")); err != nil {
			t.Fatal(err)
		}
		if err := sess.Insert("E", e("e1", "d1", "100")); err != nil {
			t.Fatal(err)
		}
		tup, found, err := sess.Fetch("E", k("e1"))
		if err != nil || !found {
			t.Fatalf("fetch: found=%v err=%v", found, err)
		}
		if tup[2].AsString() != "100" {
			t.Fatalf("fetched %v", tup)
		}
		// Clean miss: found=false with a nil error, not a sentinel.
		if _, found, err := sess.Fetch("E", k("nobody")); err != nil || found {
			t.Fatalf("miss: found=%v err=%v", found, err)
		}
		if err := sess.Update("E", k("e1"), e("e1", "d1", "200")); err != nil {
			t.Fatal(err)
		}
		tup, _, _ = sess.Fetch("E", k("e1"))
		if tup[2].AsString() != "200" {
			t.Fatalf("update not visible: %v", tup)
		}
		if err := sess.Delete("E", k("e1")); err != nil {
			t.Fatal(err)
		}
		if _, found, _ := sess.Fetch("E", k("e1")); found {
			t.Fatal("delete not visible")
		}
	})
}

func TestSessionErrorTaxonomy(t *testing.T) {
	withBackends(t, func(t *testing.T, sess relmerge.Session) {
		if err := sess.Insert("D", d("d1", "eng")); err != nil {
			t.Fatal(err)
		}

		// Unknown relation.
		err := sess.Insert("NOPE", d("x", "y"))
		if !errors.Is(err, relmerge.ErrUnknownRelation) {
			t.Fatalf("unknown relation: %v", err)
		}
		if code := relmerge.Code(err); code != relmerge.CodeUnknownRelation {
			t.Fatalf("unknown relation code %q", code)
		}

		// No such tuple.
		err = sess.Delete("D", k("ghost"))
		if !errors.Is(err, relmerge.ErrNoSuchTuple) || relmerge.Code(err) != relmerge.CodeNoSuchTuple {
			t.Fatalf("no such tuple: %v (%q)", err, relmerge.Code(err))
		}

		// Arity mismatch.
		err = sess.Insert("D", k("short"))
		if !errors.Is(err, relmerge.ErrArityMismatch) || relmerge.Code(err) != relmerge.CodeArityMismatch {
			t.Fatalf("arity: %v (%q)", err, relmerge.Code(err))
		}

		// Constraint violations surface the full typed error on both
		// backends: the sentinel, the concrete type with its Kind, and the
		// stable code.
		err = sess.Insert("E", e("e9", "no-such-dept", "1"))
		if !errors.Is(err, relmerge.ErrConstraintViolation) {
			t.Fatalf("FK violation sentinel: %v", err)
		}
		var cv *relmerge.ConstraintViolation
		if !errors.As(err, &cv) {
			t.Fatalf("FK violation not extractable: %v", err)
		}
		if cv.Kind != engine.ForeignKeyViolation || cv.Relation != "E" {
			t.Fatalf("FK violation detail: %+v", cv)
		}
		if relmerge.Code(err) != relmerge.CodeConstraint {
			t.Fatalf("FK violation code %q", relmerge.Code(err))
		}

		// NOT NULL violation keeps its kind and attribute across the wire.
		err = sess.Insert("E", relmerge.Tuple{relmerge.NewString("e9"), relmerge.NewString("d1"), relmerge.Null()})
		if !errors.As(err, &cv) || cv.Kind != engine.NotNullViolation || cv.Attr != "E.PAY" {
			t.Fatalf("NNA violation: %v -> %+v", err, cv)
		}

		// Checkpoint on a non-durable engine.
		err = sess.Checkpoint()
		if !errors.Is(err, relmerge.ErrNotDurable) || relmerge.Code(err) != relmerge.CodeNotDurable {
			t.Fatalf("checkpoint: %v (%q)", err, relmerge.Code(err))
		}
	})
}

func TestSessionBatchAtomicity(t *testing.T) {
	withBackends(t, func(t *testing.T, sess relmerge.Session) {
		if err := sess.Insert("D", d("d1", "eng")); err != nil {
			t.Fatal(err)
		}
		// One bad tuple aborts the whole batch: nothing from it survives.
		err := sess.InsertBatch("E", []relmerge.Tuple{
			e("b1", "d1", "1"),
			e("b2", "no-such-dept", "2"),
		})
		if !errors.Is(err, relmerge.ErrConstraintViolation) {
			t.Fatalf("bad batch: %v", err)
		}
		if _, found, _ := sess.Fetch("E", k("b1")); found {
			t.Fatal("aborted batch leaked its first tuple")
		}
		// A clean batch lands whole.
		if err := sess.InsertBatch("E", []relmerge.Tuple{e("b1", "d1", "1"), e("b3", "d1", "3")}); err != nil {
			t.Fatal(err)
		}
		// Mixed batch: insert + update + delete, atomically.
		err = sess.ApplyBatch([]relmerge.BatchOp{
			relmerge.Ins("E", e("b4", "d1", "4")),
			relmerge.Upd("E", k("b1"), e("b1", "d1", "10")),
			relmerge.Del("E", k("b3")),
		})
		if err != nil {
			t.Fatal(err)
		}
		tup, _, _ := sess.Fetch("E", k("b1"))
		if tup[2].AsString() != "10" {
			t.Fatalf("batched update not visible: %v", tup)
		}
		if _, found, _ := sess.Fetch("E", k("b3")); found {
			t.Fatal("batched delete not visible")
		}
		if _, found, _ := sess.Fetch("E", k("b4")); !found {
			t.Fatal("batched insert not visible")
		}
	})
}

// TestSessionFetchNeverSeesTornBatch races fetches against delete-reinsert
// batches on both backends: each batch removes a key and re-adds it with a
// fresh payload in ONE atomic group, so a concurrent fetch must always find
// the key (the deleted-but-not-yet-reinserted middle is never a published
// state) and must always see a payload some whole batch wrote. On the
// embedded engine this is the MVCC single-publish guarantee observed through
// the Session surface; the remote backend must agree.
func TestSessionFetchNeverSeesTornBatch(t *testing.T) {
	withBackends(t, func(t *testing.T, sess relmerge.Session) {
		if err := sess.Insert("D", d("d1", "eng")); err != nil {
			t.Fatal(err)
		}
		if err := sess.Insert("E", e("hot", "d1", "round-0")); err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var fetches atomic.Int64
		var wg sync.WaitGroup
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					tup, found, err := sess.Fetch("E", k("hot"))
					if err != nil {
						t.Errorf("fetch: %v", err)
						return
					}
					if !found {
						t.Error("fetch saw the torn middle of a delete+reinsert batch")
						return
					}
					if pay := tup[2].AsString(); !strings.HasPrefix(pay, "round-") {
						t.Errorf("fetch saw payload %q no batch ever wrote", pay)
						return
					}
					fetches.Add(1)
				}
			}()
		}
		for i := 1; fetches.Load() < 200 && i < 4000; i++ {
			err := sess.ApplyBatch([]relmerge.BatchOp{
				relmerge.Del("E", k("hot")),
				relmerge.Ins("E", e("hot", "d1", fmt.Sprintf("round-%d", i))),
			})
			if err != nil {
				t.Fatalf("batch %d: %v", i, err)
			}
		}
		close(stop)
		wg.Wait()
		if fetches.Load() == 0 {
			t.Fatal("no fetch completed during the batch churn")
		}
	})
}

func TestSessionTransactions(t *testing.T) {
	withBackends(t, func(t *testing.T, sess relmerge.Session) {
		if err := sess.Insert("D", d("d1", "eng")); err != nil {
			t.Fatal(err)
		}
		// Rollback undoes the transaction's writes.
		if err := sess.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := sess.Insert("E", e("t1", "d1", "1")); err != nil {
			t.Fatal(err)
		}
		if err := sess.Rollback(); err != nil {
			t.Fatal(err)
		}
		if _, found, _ := sess.Fetch("E", k("t1")); found {
			t.Fatal("rollback left the write visible")
		}
		// Commit keeps them.
		if err := sess.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := sess.Insert("E", e("t2", "d1", "2")); err != nil {
			t.Fatal(err)
		}
		if err := sess.Commit(); err != nil {
			t.Fatal(err)
		}
		if _, found, _ := sess.Fetch("E", k("t2")); !found {
			t.Fatal("committed write lost")
		}
		// Sequencing errors map to ErrTxn/CodeTxn on both backends.
		err := sess.Commit()
		if !errors.Is(err, relmerge.ErrTxn) || relmerge.Code(err) != relmerge.CodeTxn {
			t.Fatalf("commit without begin: %v (%q)", err, relmerge.Code(err))
		}
		err = sess.Rollback()
		if !errors.Is(err, relmerge.ErrTxn) {
			t.Fatalf("rollback without begin: %v", err)
		}
	})
}

func TestSessionStats(t *testing.T) {
	withBackends(t, func(t *testing.T, sess relmerge.Session) {
		before, err := sess.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Insert("D", d("d1", "eng")); err != nil {
			t.Fatal(err)
		}
		sess.Fetch("D", k("d1"))
		after, err := sess.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if after.Inserts != before.Inserts+1 {
			t.Errorf("inserts %d -> %d", before.Inserts, after.Inserts)
		}
		if after.Lookups <= before.Lookups {
			t.Errorf("lookups %d -> %d", before.Lookups, after.Lookups)
		}
		// The insert published a new MVCC version, so the stamped LSN must
		// have advanced — on the embedded engine and across the wire alike.
		if after.VersionLSN <= before.VersionLSN {
			t.Errorf("version LSN did not advance across a write: %d -> %d", before.VersionLSN, after.VersionLSN)
		}
	})
}

func TestSessionDeadline(t *testing.T) {
	withBackends(t, func(t *testing.T, sess relmerge.Session) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		err := sess.InsertCtx(ctx, "D", d("d1", "eng"))
		if err == nil {
			t.Fatal("expired context accepted")
		}
		if code := relmerge.Code(err); code != relmerge.CodeDeadline {
			t.Fatalf("expired context code %q (%v)", code, err)
		}
		if !errors.Is(err, relmerge.ErrDeadline) && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("expired context does not match the deadline sentinels: %v", err)
		}
		if _, found, _ := sess.Fetch("D", k("d1")); found {
			t.Fatal("expired insert committed")
		}
	})
}
