// Package relmerge is the public API of this repository's reproduction of
// Markowitz's relation merging technique (ICDE 1992). It fronts the internal
// packages with a single import: load or build a schema, merge a set of
// relation-schemes with compatible primary keys (Def. 4.1), remove redundant
// key copies (Def. 4.3), plan whole-schema merges (Prop. 5.2), map database
// states through the η/η′ mappings, and observe all of it through a metrics
// registry and trace spans.
//
// External users should depend on this package only; everything under
// internal/ remains free to change shape between versions.
package relmerge

import (
	"context"
	"os"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/sdl"
	"repro/internal/state"
)

// Schema-side types, re-exported so callers never import internal/schema.
type (
	// Schema is a relational schema: relation-schemes plus FDs, inclusion
	// dependencies, and null constraints.
	Schema = schema.Schema
	// RelationScheme is one relation-scheme (attributes + primary key).
	RelationScheme = schema.RelationScheme
	// Attribute is a named, typed attribute of a relation-scheme.
	Attribute = schema.Attribute
	// IND is an inclusion dependency R[X] ⊆ S[Y].
	IND = schema.IND
	// FD is a functional dependency X → Y local to one scheme.
	FD = schema.FD
	// NullConstraint is any of the paper's null-constraint forms.
	NullConstraint = schema.NullConstraint

	// Merged is the record of one merge: the rewritten schema, the member
	// bookkeeping, the Def. 4.1/4.3 provenance trace, and the state mappings.
	Merged = core.MergedScheme
	// Option configures Merge, Remove, Plan, and Apply.
	Option = core.Option

	// DB is a database state: one relation per scheme.
	DB = state.DB
	// Tuple is one row of a relation.
	Tuple = relation.Tuple
	// Value is one attribute value, possibly null.
	Value = relation.Value

	// Registry collects counters, gauges, and histograms.
	Registry = obs.Registry
	// Point is one metric sample in a Registry snapshot.
	Point = obs.Point
	// Tracer records span events emitted by the merge pipeline.
	Tracer = obs.Tracer
	// SpanEvent is one completed span in a trace.
	SpanEvent = obs.SpanEvent
)

// Schema constructors.
var (
	// NewScheme builds a relation-scheme from attributes and a primary key.
	NewScheme = schema.NewScheme
	// NewIND builds the inclusion dependency left[leftAttrs] ⊆ right[rightAttrs].
	NewIND = schema.NewIND
	// NNA builds a nulls-not-allowed constraint on the given attributes.
	NNA = schema.NNA
	// NewString builds a string value; Null builds the null marker.
	NewString = relation.NewString
	// Null is the null value marker used by the outer-join η mapping.
	Null = relation.Null
)

// Merge options, re-exported from internal/core.
var (
	// WithName names the merged relation-scheme (default: key-relation + "'").
	WithName = core.WithName
	// WithKeyRelation forces a member to serve as the key-relation Rk.
	WithKeyRelation = core.WithKeyRelation
	// WithSyntheticKey forces a synthetic key even when Prop. 3.1 holds.
	WithSyntheticKey = core.WithSyntheticKey
	// WithContext attaches a context; cancellation is honored between plan
	// clusters and carried into span events.
	//
	// Deprecated: pass the context through MergeCtx, PlanCtx, or ApplyCtx
	// instead; the option remains for callers composing option slices.
	WithContext = core.WithContext
	// WithTrace records the pipeline's spans into a Tracer.
	WithTrace = core.WithTrace
	// WithObserver streams the Def. 4.1/4.3 trace lines as they are produced.
	WithObserver = core.WithObserver
)

// Typed errors, re-exported for errors.Is/As against facade results.
var (
	ErrMergeSetTooSmall = core.ErrMergeSetTooSmall
	ErrUnknownScheme    = core.ErrUnknownScheme
	ErrDuplicateMember  = core.ErrDuplicateMember
	ErrNameCollision    = core.ErrNameCollision
	ErrIncompatibleKeys = core.ErrIncompatibleKeys
	ErrNullableMember   = core.ErrNullableMember
	ErrBadKeyRelation   = core.ErrBadKeyRelation
	ErrNotMember        = core.ErrNotMember
)

// ErrNotRemovable reports which Def. 4.2 removability condition failed; use
// errors.As to recover the member, attributes, and condition.
type ErrNotRemovable = core.ErrNotRemovable

// NewSchema returns an empty schema to build by hand with NewScheme/NewIND/NNA.
func NewSchema() *Schema { return schema.New() }

// ParseSchema parses a schema written in the SDL notation (see internal/sdl).
func ParseSchema(src string) (*Schema, error) { return sdl.ParseSchema(src) }

// LoadSchema reads and parses an SDL schema file.
func LoadSchema(path string) (*Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return sdl.ParseSchema(string(data))
}

// Fig3 returns the paper's figure 3 university schema, and Fig3State a small
// deterministic database state consistent with it.
func Fig3() *Schema          { return figures.Fig3() }
func Fig3State() *DB         { return figures.Fig3State() }
func NewState(s *Schema) *DB { return state.New(s) }

// ParseState parses a data file (insert statements) against a schema.
func ParseState(s *Schema, src string) (*DB, error) { return sdl.ParseState(s, src) }

// PrintSchema renders a schema in the SDL notation; ParseSchema reads it back.
func PrintSchema(s *Schema) string { return sdl.PrintSchema(s) }

// PrintState renders a database state as SDL insert statements.
func PrintState(s *Schema, db *DB) string { return sdl.PrintState(s, db) }

// Consistent reports whether db satisfies all of s's constraints.
func Consistent(s *Schema, db *DB) error { return state.Consistent(s, db) }

// Merge merges the named relation-schemes of s per Definition 4.1. The input
// schema is never mutated; the result's Schema field holds the rewrite. Use
// the returned Merged to Remove key copies, inspect the Trace, and map states.
func Merge(s *Schema, names []string, opts ...Option) (*Merged, error) {
	return MergeCtx(context.Background(), s, names, opts...)
}

// MergeCtx is Merge with cancellation, honored between pipeline steps and
// carried into span events.
func MergeCtx(ctx context.Context, s *Schema, names []string, opts ...Option) (*Merged, error) {
	return core.MergeSet(s, names, withCtx(ctx, opts)...)
}

// Plan returns the disjoint merge sets satisfying Proposition 5.2 — each
// merges to a relation-scheme maintainable with only nulls-not-allowed
// constraints — key-relation first in each cluster.
func Plan(s *Schema, opts ...Option) [][]string {
	return PlanCtx(context.Background(), s, opts...)
}

// PlanCtx is Plan with cancellation.
func PlanCtx(ctx context.Context, s *Schema, opts ...Option) [][]string {
	return core.Prop52Clusters(s, withCtx(ctx, opts)...)
}

// Apply merges every planned cluster and removes all removable key copies,
// returning the rewritten schema and the per-cluster merge records.
func Apply(s *Schema, clusters [][]string, opts ...Option) (*Schema, []*Merged, error) {
	return ApplyCtx(context.Background(), s, clusters, opts...)
}

// ApplyCtx is Apply with cancellation, checked between clusters so a large
// whole-schema merge can be abandoned at a cluster boundary.
func ApplyCtx(ctx context.Context, s *Schema, clusters [][]string, opts ...Option) (*Schema, []*Merged, error) {
	return core.ApplyPlan(s, clusters, withCtx(ctx, opts)...)
}

// withCtx prepends the context option so an explicit WithContext in opts
// still wins (last option applies).
func withCtx(ctx context.Context, opts []Option) []Option {
	if ctx == context.Background() {
		return opts
	}
	return append([]Option{core.WithContext(ctx)}, opts...)
}

// NewRegistry returns an empty metrics registry; pass it to engine and cache
// registration points, then read it back with Snapshot.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewTracer returns a span tracer with the default capacity; attach it to a
// merge pipeline with WithTrace.
func NewTracer() *Tracer { return obs.NewTracer(obs.DefaultTraceCapacity) }

// Snapshot reads every metric of a registry at one instant, sorted by name
// then labels. It is safe to call concurrently with updates, and safe on a
// nil registry (returns nil).
func Snapshot(r *Registry) []Point { return r.Snapshot() }
