package relmerge

import (
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/wal"
)

// ErrorCode is a stable wire code classifying any error this package can
// surface — from the merge pipeline, the engine, the write-ahead log, or the
// service layer. Codes are what cross the relmerged protocol; Code maps
// errors to them identically for embedded and remote sessions.
type ErrorCode = server.Code

// The full code taxonomy, re-exported from internal/server.
const (
	CodeOK      = server.CodeOK
	CodeUnknown = server.CodeUnknown

	CodeProtocol   = server.CodeProtocol
	CodeOverloaded = server.CodeOverloaded
	CodeDeadline   = server.CodeDeadline
	CodeCanceled   = server.CodeCanceled
	CodeClosed     = server.CodeClosed
	CodeTxn        = server.CodeTxn
	CodeReadOnly   = server.CodeReadOnly
	CodeNotRepl    = server.CodeNotRepl
	// CodeUnsupported classifies operations the session's backend does not
	// offer at all, e.g. ApplyRecommendation on a remote session.
	CodeUnsupported = server.CodeUnsupported

	CodeUnknownRelation = server.CodeUnknownRelation
	CodeNoSuchTuple     = server.CodeNoSuchTuple
	CodeArityMismatch   = server.CodeArityMismatch
	CodeConstraint      = server.CodeConstraint
	CodeMalformedIND    = server.CodeMalformedIND
	CodeNotDurable      = server.CodeNotDurable
	CodeOpenTransaction = server.CodeOpenTransaction
	CodeRecovery        = server.CodeRecovery

	CodeWALCrashed   = server.CodeWALCrashed
	CodeWALClosed    = server.CodeWALClosed
	CodeWALGap       = server.CodeWALGap
	CodeWALCompacted = server.CodeWALCompacted

	CodeMergeSetTooSmall = server.CodeMergeSetTooSmall
	CodeUnknownScheme    = server.CodeUnknownScheme
	CodeDuplicateMember  = server.CodeDuplicateMember
	CodeNameCollision    = server.CodeNameCollision
	CodeIncompatibleKeys = server.CodeIncompatibleKeys
	CodeNullableMember   = server.CodeNullableMember
	CodeBadKeyRelation   = server.CodeBadKeyRelation
	CodeNotMember        = server.CodeNotMember
	CodeNotRemovable     = server.CodeNotRemovable
)

// Engine sentinels, re-exported for errors.Is against Session results.
var (
	// ErrUnknownRelation reports an operation against an undefined relation.
	ErrUnknownRelation = engine.ErrUnknownRelation
	// ErrNoSuchTuple reports a Delete/Update whose key matched nothing.
	ErrNoSuchTuple = engine.ErrNoSuchTuple
	// ErrArityMismatch reports a tuple of the wrong width.
	ErrArityMismatch = engine.ErrArityMismatch
	// ErrConstraintViolation matches every *ConstraintViolation.
	ErrConstraintViolation = engine.ErrConstraintViolation
	// ErrMalformedIND reports a key-based IND whose right side is not a
	// permutation of the referenced primary key (detected at OpenEngine).
	ErrMalformedIND = engine.ErrMalformedIND
	// ErrNotDurable reports Checkpoint on an engine without a WAL.
	ErrNotDurable = engine.ErrNotDurable
	// ErrOpenTransaction reports a Checkpoint during an open transaction.
	ErrOpenTransaction = engine.ErrOpenTransaction
	// ErrRecovery reports that crash recovery reconstructed an inconsistent
	// state.
	ErrRecovery = engine.ErrRecovery
)

// Durability (write-ahead log) sentinels.
var (
	// ErrWALCrashed reports an operation on a log that hit an I/O failure
	// and fails closed until reopened.
	ErrWALCrashed = wal.ErrCrashed
	// ErrWALClosed reports an operation on a cleanly closed log.
	ErrWALClosed = wal.ErrClosed
	// ErrWALGap reports missing committed records: a replay or shipped
	// stream whose LSNs jump, refused instead of silently losing the gap.
	ErrWALGap = wal.ErrGap
	// ErrWALCompacted reports a replication read position that predates the
	// primary's newest checkpoint; the follower bootstraps from a snapshot.
	ErrWALCompacted = wal.ErrCompacted
)

// Service-layer sentinels.
var (
	// ErrOverloaded reports that the server's admission queue was full; the
	// request was rejected without executing. Idempotent requests retry
	// automatically.
	ErrOverloaded = server.ErrOverloaded
	// ErrDeadline reports a request whose deadline expired before or while
	// it executed; it also matches context.DeadlineExceeded.
	ErrDeadline = server.ErrDeadline
	// ErrProtocol reports a wire-protocol violation; the offending
	// connection is closed.
	ErrProtocol = server.ErrProtocol
	// ErrSessionClosed reports an operation on a closed session or a
	// draining server.
	ErrSessionClosed = server.ErrClosed
	// ErrTxn reports transaction sequencing errors: Begin while open,
	// Commit/Rollback without Begin.
	ErrTxn = server.ErrTxn
	// ErrReadOnly reports a write against a read-only follower session;
	// writes belong on the primary (or here after promotion).
	ErrReadOnly = server.ErrReadOnly
	// ErrNotReplicating reports a replication operation against a backend
	// that cannot ship its log.
	ErrNotReplicating = server.ErrNotReplicating
	// ErrUnsupported reports a capability the session's backend does not
	// offer at all — adaptive-merge advice and application on Remote (the
	// server owns the design) and Follower (the primary dictates it)
	// sessions. Unlike ErrReadOnly, no role change makes the operation valid
	// here; it belongs on a different backend.
	ErrUnsupported = server.ErrUnsupported
)

// Code maps any error surfaced by this package — merge pipeline, engine,
// WAL, or service layer — to its stable wire code. nil maps to CodeOK and
// unclassified errors to CodeUnknown. The mapping is total over the exported
// sentinels (enforced by TestCodeTotalOverSentinels) and backend-independent:
// a remote session's error carries the same code the embedded engine's would.
func Code(err error) ErrorCode { return server.CodeOf(err) }

// sentinels names every exported sentinel error value of this package, for
// the taxonomy totality test. The typed errors ErrNotRemovable and
// ConstraintViolation are values of *types*, not sentinel values, and are
// covered by dedicated Code tests instead.
var sentinels = map[string]error{
	"ErrMergeSetTooSmall": ErrMergeSetTooSmall,
	"ErrUnknownScheme":    ErrUnknownScheme,
	"ErrDuplicateMember":  ErrDuplicateMember,
	"ErrNameCollision":    ErrNameCollision,
	"ErrIncompatibleKeys": ErrIncompatibleKeys,
	"ErrNullableMember":   ErrNullableMember,
	"ErrBadKeyRelation":   ErrBadKeyRelation,
	"ErrNotMember":        ErrNotMember,

	"ErrUnknownRelation":     ErrUnknownRelation,
	"ErrNoSuchTuple":         ErrNoSuchTuple,
	"ErrArityMismatch":       ErrArityMismatch,
	"ErrConstraintViolation": ErrConstraintViolation,
	"ErrMalformedIND":        ErrMalformedIND,
	"ErrNotDurable":          ErrNotDurable,
	"ErrOpenTransaction":     ErrOpenTransaction,
	"ErrRecovery":            ErrRecovery,

	"ErrWALCrashed":   ErrWALCrashed,
	"ErrWALClosed":    ErrWALClosed,
	"ErrWALGap":       ErrWALGap,
	"ErrWALCompacted": ErrWALCompacted,

	"ErrOverloaded":     ErrOverloaded,
	"ErrDeadline":       ErrDeadline,
	"ErrProtocol":       ErrProtocol,
	"ErrSessionClosed":  ErrSessionClosed,
	"ErrTxn":            ErrTxn,
	"ErrReadOnly":       ErrReadOnly,
	"ErrNotReplicating": ErrNotReplicating,
	"ErrUnsupported":    ErrUnsupported,
}
