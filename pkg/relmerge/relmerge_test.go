package relmerge_test

import (
	"errors"
	"testing"

	"repro/pkg/relmerge"
)

// The facade exercises the paper's main pipeline end to end without touching
// internal packages: figure 3 in, COURSE” merge, key-copy removal, state
// round trip, and an observability trace.
func TestFacadePipeline(t *testing.T) {
	s := relmerge.Fig3()
	tr := relmerge.NewTracer()
	m, err := relmerge.Merge(s, []string{"COURSE", "OFFER", "TEACH", "ASSIST"},
		relmerge.WithName("COURSE''"), relmerge.WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if m.KeyRelation != "COURSE" {
		t.Errorf("key-relation = %q, want COURSE", m.KeyRelation)
	}
	if removed := m.RemoveAll(relmerge.WithTrace(tr)); len(removed) == 0 {
		t.Error("RemoveAll removed nothing")
	}
	if m.Schema.Scheme("COURSE''") == nil {
		t.Fatal("merged schema lacks COURSE''")
	}

	db := relmerge.Fig3State()
	if err := relmerge.Consistent(s, db); err != nil {
		t.Fatalf("figure 3 state inconsistent: %v", err)
	}
	mapped := m.MapState(db)
	if err := relmerge.Consistent(m.Schema, mapped); err != nil {
		t.Errorf("mapped state inconsistent: %v", err)
	}
	if !m.UnmapState(mapped).Equal(db) {
		t.Error("η′∘η did not restore the original state")
	}

	if len(tr.Events()) == 0 {
		t.Error("tracer recorded no spans")
	}
}

func TestFacadePlanApply(t *testing.T) {
	s := relmerge.Fig3()
	clusters := relmerge.Plan(s)
	if len(clusters) == 0 {
		t.Fatal("planner found no Prop. 5.2 clusters on figure 3")
	}
	out, merges, err := relmerge.Apply(s, clusters)
	if err != nil {
		t.Fatal(err)
	}
	if len(merges) != len(clusters) {
		t.Errorf("got %d merge records for %d clusters", len(merges), len(clusters))
	}
	if len(out.Relations) >= len(s.Relations) {
		t.Errorf("apply did not shrink the schema: %d -> %d schemes",
			len(s.Relations), len(out.Relations))
	}
}

func TestFacadeErrorsAndParsing(t *testing.T) {
	s := relmerge.Fig3()
	if _, err := relmerge.Merge(s, []string{"COURSE"}); !errors.Is(err, relmerge.ErrMergeSetTooSmall) {
		t.Errorf("single-member merge error = %v, want ErrMergeSetTooSmall", err)
	}
	if _, err := relmerge.Merge(s, []string{"COURSE", "NOPE"}); !errors.Is(err, relmerge.ErrUnknownScheme) {
		t.Errorf("unknown-scheme merge error = %v, want ErrUnknownScheme", err)
	}

	m, err := relmerge.Merge(s, []string{"COURSE", "OFFER", "TEACH", "ASSIST"})
	if err != nil {
		t.Fatal(err)
	}
	var nr *relmerge.ErrNotRemovable
	if err := m.Remove("COURSE"); !errors.As(err, &nr) {
		t.Errorf("Remove(key-relation) error = %v, want ErrNotRemovable", err)
	}

	// A schema printed by the facade parses back through the facade.
	reparsed, err := relmerge.ParseSchema(relmerge.PrintSchema(s))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if got, want := len(reparsed.Relations), len(s.Relations); got != want {
		t.Errorf("reparsed %d schemes, want %d", got, want)
	}
	db, err := relmerge.ParseState(s, relmerge.PrintState(s, relmerge.Fig3State()))
	if err != nil {
		t.Fatalf("state reparse: %v", err)
	}
	if !db.Equal(relmerge.Fig3State()) {
		t.Error("state round trip through PrintState/ParseState changed the state")
	}
}
