package relmerge

import (
	"context"

	"repro/internal/server"
)

// Session is the unified operational API: inserts, deletes, updates, key
// lookups, atomic batches, the (single, global) transaction, stats, and
// checkpoints. It is implemented by both the embedded engine (NewSession /
// OpenSession) and the remote client (Dial), so workload drivers, the CLI,
// and benchmarks run unchanged against either backend.
//
// Every operation has a Ctx variant; the non-Ctx form delegates to it with
// context.Background(). Errors carry the same taxonomy on both backends:
// errors.Is against the package sentinels, errors.As against
// *ConstraintViolation, and Code all behave identically whether the engine
// is in-process or across the wire.
type Session interface {
	// Insert adds one tuple, enforcing all constraints.
	Insert(relName string, tup Tuple) error
	InsertCtx(ctx context.Context, relName string, tup Tuple) error
	// Delete removes the tuple with the given primary key.
	Delete(relName string, key Tuple) error
	DeleteCtx(ctx context.Context, relName string, key Tuple) error
	// Update replaces the tuple with the given primary key.
	Update(relName string, key, tup Tuple) error
	UpdateCtx(ctx context.Context, relName string, key, tup Tuple) error
	// Fetch looks up one tuple by primary key; found=false (with nil error)
	// reports a clean miss.
	Fetch(relName string, key Tuple) (tup Tuple, found bool, err error)
	FetchCtx(ctx context.Context, relName string, key Tuple) (Tuple, bool, error)
	// InsertBatch inserts tuples as one atomic group (one lock acquisition,
	// one WAL record).
	InsertBatch(relName string, tuples []Tuple) error
	InsertBatchCtx(ctx context.Context, relName string, tuples []Tuple) error
	// ApplyBatch applies a mixed batch of Ins/Del/Upd ops atomically.
	ApplyBatch(ops []BatchOp) error
	ApplyBatchCtx(ctx context.Context, ops []BatchOp) error
	// Begin/Commit/Rollback drive the engine's single global transaction.
	Begin() error
	BeginCtx(ctx context.Context) error
	Commit() error
	CommitCtx(ctx context.Context) error
	Rollback() error
	RollbackCtx(ctx context.Context) error
	// Stats returns the engine's monotonic operation counters.
	Stats() (EngineStats, error)
	StatsCtx(ctx context.Context) (EngineStats, error)
	// Checkpoint snapshots a durable engine's state into its WAL
	// (ErrNotDurable otherwise).
	Checkpoint() error
	CheckpointCtx(ctx context.Context) error
	// ApplyRecommendation migrates the live design onto a merge the advisor
	// recommended (see Advise). Backends that own their design (Embedded,
	// Sharded) re-derive the merge on the current schema and migrate through
	// one atomic schema-change; Remote and Follower sessions return
	// ErrUnsupported (CodeUnsupported) — the design is the server's,
	// respectively the primary's, to change.
	ApplyRecommendation(ctx context.Context, rec Recommendation) error
	// Close releases the session. Closing an embedded session closes the
	// engine (and its WAL); closing a remote session closes the connection
	// pool, leaving the server running.
	Close() error
}

// EmbeddedSession adapts an in-process *Engine to the Session interface.
type EmbeddedSession struct {
	eng *Engine
	// advStop stops the background advisor loop, when Open started one
	// (WithAdvisor / Config.Advisor); nil otherwise.
	advStop func()
}

// NewSession wraps an already-open engine. The caller keeps full access to
// the engine; the session is a view, not a transfer of ownership — but
// Close does close the engine.
func NewSession(e *Engine) *EmbeddedSession { return &EmbeddedSession{eng: e} }

// OpenSession opens an embedded session over the schema: a typed wrapper
// around Open(Config{Backend: Embedded, Schema: s, EngineOptions: opts}).
func OpenSession(s *Schema, opts ...EngineOption) (*EmbeddedSession, error) {
	sess, err := Open(Config{Backend: Embedded, Schema: s, EngineOptions: opts})
	if err != nil {
		return nil, err
	}
	return sess.(*EmbeddedSession), nil
}

// Engine returns the wrapped engine, for callers that need APIs beyond the
// Session surface (Scan, Snapshot, Count, recovery info).
func (s *EmbeddedSession) Engine() *Engine { return s.eng }

// View pins the engine's current published MVCC version as a consistent,
// lock-free read view: repeated reads through it are repeatable (they never
// observe later commits), and a batch is visible either whole or not at all.
// It is an embedded-only capability — a remote session's reads are each
// individually snapshot-consistent, but pinning a version across calls
// requires sharing the engine's memory.
func (s *EmbeddedSession) View() *EngineView { return s.eng.View() }

func (s *EmbeddedSession) Insert(relName string, tup Tuple) error {
	return s.InsertCtx(context.Background(), relName, tup)
}

func (s *EmbeddedSession) InsertCtx(ctx context.Context, relName string, tup Tuple) error {
	return s.eng.InsertCtx(ctx, relName, tup)
}

func (s *EmbeddedSession) Delete(relName string, key Tuple) error {
	return s.DeleteCtx(context.Background(), relName, key)
}

func (s *EmbeddedSession) DeleteCtx(ctx context.Context, relName string, key Tuple) error {
	return s.eng.DeleteCtx(ctx, relName, key)
}

func (s *EmbeddedSession) Update(relName string, key, tup Tuple) error {
	return s.UpdateCtx(context.Background(), relName, key, tup)
}

func (s *EmbeddedSession) UpdateCtx(ctx context.Context, relName string, key, tup Tuple) error {
	return s.eng.UpdateCtx(ctx, relName, key, tup)
}

func (s *EmbeddedSession) Fetch(relName string, key Tuple) (Tuple, bool, error) {
	return s.FetchCtx(context.Background(), relName, key)
}

func (s *EmbeddedSession) FetchCtx(ctx context.Context, relName string, key Tuple) (Tuple, bool, error) {
	return s.eng.GetByKeyCtx(ctx, relName, key)
}

func (s *EmbeddedSession) InsertBatch(relName string, tuples []Tuple) error {
	return s.InsertBatchCtx(context.Background(), relName, tuples)
}

func (s *EmbeddedSession) InsertBatchCtx(ctx context.Context, relName string, tuples []Tuple) error {
	return s.eng.InsertBatchCtx(ctx, relName, tuples)
}

func (s *EmbeddedSession) ApplyBatch(ops []BatchOp) error {
	return s.ApplyBatchCtx(context.Background(), ops)
}

func (s *EmbeddedSession) ApplyBatchCtx(ctx context.Context, ops []BatchOp) error {
	return s.eng.ApplyBatchCtx(ctx, ops)
}

func (s *EmbeddedSession) Begin() error { return s.BeginCtx(context.Background()) }

func (s *EmbeddedSession) BeginCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return server.TxnError(s.eng.Begin())
}

func (s *EmbeddedSession) Commit() error { return s.CommitCtx(context.Background()) }

func (s *EmbeddedSession) CommitCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return server.TxnError(s.eng.Commit())
}

func (s *EmbeddedSession) Rollback() error { return s.RollbackCtx(context.Background()) }

func (s *EmbeddedSession) RollbackCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return server.TxnError(s.eng.Rollback())
}

func (s *EmbeddedSession) Stats() (EngineStats, error) {
	return s.StatsCtx(context.Background())
}

func (s *EmbeddedSession) StatsCtx(ctx context.Context) (EngineStats, error) {
	if err := ctx.Err(); err != nil {
		return EngineStats{}, err
	}
	st := s.eng.Stats.Totals()
	st.VersionLSN = s.eng.VersionLSN()
	return st, nil
}

func (s *EmbeddedSession) Checkpoint() error { return s.CheckpointCtx(context.Background()) }

func (s *EmbeddedSession) CheckpointCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.eng.Checkpoint()
}

func (s *EmbeddedSession) Close() error {
	if s.advStop != nil {
		s.advStop()
		s.advStop = nil
	}
	return s.eng.Close()
}

var _ Session = (*EmbeddedSession)(nil)
