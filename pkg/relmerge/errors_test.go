package relmerge

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// TestCodeTotalOverSentinels asserts the error-code mapping is total: every
// exported sentinel of this package classifies to a real wire code, never
// CodeUnknown (which would tell a remote client nothing) and never CodeOK
// (which would mask a failure as success).
func TestCodeTotalOverSentinels(t *testing.T) {
	if len(sentinels) == 0 {
		t.Fatal("sentinels map is empty")
	}
	for name, err := range sentinels {
		code := Code(err)
		if code == CodeUnknown || code == CodeOK {
			t.Errorf("Code(%s) = %q: sentinel is unclassified", name, code)
		}
		// Wrapping must not change the classification.
		if got := Code(fmt.Errorf("context: %w", err)); got != code {
			t.Errorf("Code(wrapped %s) = %q, want %q", name, got, code)
		}
	}
}

// TestSentinelsMapIsComplete parses this package's source and asserts every
// exported `Err*` variable appears in the sentinels map, so a newly exported
// sentinel cannot ship without a code classification.
func TestSentinelsMapIsComplete(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for fname, file := range pkg.Files {
			if strings.HasSuffix(fname, "_test.go") {
				continue
			}
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, ident := range vs.Names {
						name := ident.Name
						if !strings.HasPrefix(name, "Err") || !ast.IsExported(name) {
							continue
						}
						if _, covered := sentinels[name]; !covered {
							t.Errorf("%s: exported sentinel %s missing from the sentinels map (and so from the totality test)", fname, name)
						}
					}
				}
			}
		}
	}
}

// TestCodeOnTypedErrors covers the two error *types* that the sentinels map
// cannot hold as values.
func TestCodeOnTypedErrors(t *testing.T) {
	cv := &ConstraintViolation{Kind: engine.ForeignKeyViolation, Relation: "R", Op: "insert"}
	if got := Code(cv); got != CodeConstraint {
		t.Errorf("Code(*ConstraintViolation) = %q, want %q", got, CodeConstraint)
	}
	if got := Code(fmt.Errorf("insert: %w", cv)); got != CodeConstraint {
		t.Errorf("Code(wrapped *ConstraintViolation) = %q, want %q", got, CodeConstraint)
	}
	nr := &core.ErrNotRemovable{Member: "S", Attrs: []string{"S.A"}, Reason: "not removable"}
	if got := Code(nr); got != CodeNotRemovable {
		t.Errorf("Code(*ErrNotRemovable) = %q, want %q", got, CodeNotRemovable)
	}
}

// TestCodeBaseline pins the trivial ends of the mapping.
func TestCodeBaseline(t *testing.T) {
	if got := Code(nil); got != CodeOK {
		t.Errorf("Code(nil) = %q, want %q", got, CodeOK)
	}
	if got := Code(fmt.Errorf("some ad-hoc failure")); got != CodeUnknown {
		t.Errorf("Code(ad-hoc error) = %q, want %q", got, CodeUnknown)
	}
}
