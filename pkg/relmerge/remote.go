package relmerge

import (
	"context"
	"fmt"
	"time"

	"repro/internal/server"
)

// Wire selects the codec a remote session offers in its protocol handshake.
// The server answers min(offer, its own max), so the session may end up on
// JSON even when it asked for binary; WireVersion reports the outcome.
type Wire int

const (
	// WireBinary (the default) offers the compact binary v2 codec.
	WireBinary Wire = iota
	// WireJSON pins the connection to the JSON v1 codec.
	WireJSON
)

// String returns the flag spelling of the wire choice.
func (w Wire) String() string {
	if w == WireJSON {
		return "json"
	}
	return "binary"
}

// ParseWire parses a -wire flag value ("binary" or "json").
func ParseWire(s string) (Wire, error) {
	switch s {
	case "binary":
		return WireBinary, nil
	case "json":
		return WireJSON, nil
	default:
		return WireBinary, fmt.Errorf("unknown wire codec %q (want binary or json)", s)
	}
}

// maxWire maps the Wire choice onto the client's protocol offer.
func (w Wire) maxWire() int {
	if w == WireJSON {
		return server.ProtoVersion
	}
	return server.MaxProtoVersion
}

// RemoteSession is a Session backed by a relmerged server over TCP: pooled
// connections, per-request deadlines, and automatic retries (with jittered
// exponential backoff) for idempotent operations only — fetches, stats, and
// pings are retried after transport errors or server overload; mutations
// never are, because a connection that dies mid-request leaves their outcome
// unknown.
type RemoteSession struct {
	c *server.Client
}

// RemoteOption configures Dial.
type RemoteOption func(*server.ClientOptions)

// WithPoolSize bounds the remote session's open connections (default 4).
// Size it to the caller's concurrency: each in-flight request holds one
// connection for its round trip.
func WithPoolSize(n int) RemoteOption {
	return func(o *server.ClientOptions) { o.PoolSize = n }
}

// WithDialTimeout bounds one dial + protocol handshake (default 5s).
func WithDialTimeout(d time.Duration) RemoteOption {
	return func(o *server.ClientOptions) { o.DialTimeout = d }
}

// WithRequestTimeout sets the per-request deadline used when the caller's
// context has none (default 30s; negative disables). The remaining budget is
// sent to the server, which abandons requests whose deadline expires while
// queued.
func WithRequestTimeout(d time.Duration) RemoteOption {
	return func(o *server.ClientOptions) { o.RequestTimeout = d }
}

// WithRetries sets how many times an idempotent request is retried after a
// retryable failure (default 2; pass a negative value to disable retries).
// Mutations are never retried regardless.
func WithRetries(n int) RemoteOption {
	return func(o *server.ClientOptions) { o.Retries = n }
}

// WithRetryBackoff sets the base of the jittered exponential retry backoff
// (default 5ms).
func WithRetryBackoff(d time.Duration) RemoteOption {
	return func(o *server.ClientOptions) { o.RetryBackoff = d }
}

// WithWire selects the wire codec offered in the handshake (default
// WireBinary). A server that only speaks v1 answers JSON either way.
func WithWire(w Wire) RemoteOption {
	return func(o *server.ClientOptions) { o.MaxWire = w.maxWire() }
}

// Dial connects to a relmerged server and returns it as a Session: a typed
// wrapper around Open(Config{Backend: Remote, Addr: addr}). The protocol
// handshake runs eagerly on the first connection, so a wrong address or
// version mismatch fails here, not on the first operation.
func Dial(addr string, opts ...RemoteOption) (*RemoteSession, error) {
	sess, err := Open(Config{Backend: Remote, Addr: addr, RemoteOptions: opts})
	if err != nil {
		return nil, err
	}
	return sess.(*RemoteSession), nil
}

func (s *RemoteSession) Insert(relName string, tup Tuple) error {
	return s.InsertCtx(context.Background(), relName, tup)
}

func (s *RemoteSession) InsertCtx(ctx context.Context, relName string, tup Tuple) error {
	return s.c.InsertCtx(ctx, relName, tup)
}

func (s *RemoteSession) Delete(relName string, key Tuple) error {
	return s.DeleteCtx(context.Background(), relName, key)
}

func (s *RemoteSession) DeleteCtx(ctx context.Context, relName string, key Tuple) error {
	return s.c.DeleteCtx(ctx, relName, key)
}

func (s *RemoteSession) Update(relName string, key, tup Tuple) error {
	return s.UpdateCtx(context.Background(), relName, key, tup)
}

func (s *RemoteSession) UpdateCtx(ctx context.Context, relName string, key, tup Tuple) error {
	return s.c.UpdateCtx(ctx, relName, key, tup)
}

func (s *RemoteSession) Fetch(relName string, key Tuple) (Tuple, bool, error) {
	return s.FetchCtx(context.Background(), relName, key)
}

func (s *RemoteSession) FetchCtx(ctx context.Context, relName string, key Tuple) (Tuple, bool, error) {
	return s.c.FetchCtx(ctx, relName, key)
}

func (s *RemoteSession) InsertBatch(relName string, tuples []Tuple) error {
	return s.InsertBatchCtx(context.Background(), relName, tuples)
}

func (s *RemoteSession) InsertBatchCtx(ctx context.Context, relName string, tuples []Tuple) error {
	return s.c.InsertBatchCtx(ctx, relName, tuples)
}

func (s *RemoteSession) ApplyBatch(ops []BatchOp) error {
	return s.ApplyBatchCtx(context.Background(), ops)
}

func (s *RemoteSession) ApplyBatchCtx(ctx context.Context, ops []BatchOp) error {
	return s.c.ApplyBatchCtx(ctx, ops)
}

func (s *RemoteSession) Begin() error { return s.BeginCtx(context.Background()) }

func (s *RemoteSession) BeginCtx(ctx context.Context) error { return s.c.BeginCtx(ctx) }

func (s *RemoteSession) Commit() error { return s.CommitCtx(context.Background()) }

func (s *RemoteSession) CommitCtx(ctx context.Context) error { return s.c.CommitCtx(ctx) }

func (s *RemoteSession) Rollback() error { return s.RollbackCtx(context.Background()) }

func (s *RemoteSession) RollbackCtx(ctx context.Context) error { return s.c.RollbackCtx(ctx) }

func (s *RemoteSession) Stats() (EngineStats, error) {
	return s.StatsCtx(context.Background())
}

func (s *RemoteSession) StatsCtx(ctx context.Context) (EngineStats, error) {
	return s.c.StatsCtx(ctx)
}

func (s *RemoteSession) Checkpoint() error { return s.CheckpointCtx(context.Background()) }

func (s *RemoteSession) CheckpointCtx(ctx context.Context) error { return s.c.CheckpointCtx(ctx) }

// Ping round-trips a no-op request, verifying the connection and the
// server's liveness.
func (s *RemoteSession) Ping() error { return s.PingCtx(context.Background()) }

// PingCtx is Ping with cancellation.
func (s *RemoteSession) PingCtx(ctx context.Context) error { return s.c.PingCtx(ctx) }

// WireVersion reports the protocol version negotiated on the most recent
// dial (1 = JSON, 2 = binary); 0 before any connection succeeded.
func (s *RemoteSession) WireVersion() int { return s.c.WireVersion() }

// Close closes the connection pool. The server keeps running.
func (s *RemoteSession) Close() error { return s.c.Close() }

var _ Session = (*RemoteSession)(nil)
