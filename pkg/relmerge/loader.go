package relmerge

import (
	"context"
	"fmt"
)

// ReplayState replays a database state through a Session, one atomic
// InsertBatch per relation, in an order where every inclusion-dependency
// target loads before its referencing relation. It is the Session-level
// counterpart of Engine.Load: the same replay works against an embedded
// engine or across the wire to a relmerged server.
//
// The schema must be the one the session's engine serves; relations present
// in the schema but absent from the state are skipped. Cancellation is
// checked between relations, so an abandoned replay stops at a consistent
// prefix (whole relations either fully loaded or untouched).
func ReplayState(ctx context.Context, sess Session, s *Schema, db *DB) error {
	order, err := loadOrder(s)
	if err != nil {
		return err
	}
	for _, name := range order {
		if err := ctx.Err(); err != nil {
			return err
		}
		r := db.Relation(name)
		if r == nil || r.Len() == 0 {
			continue
		}
		src := r
		// Reorder columns to the schema's attribute order if the state's
		// relation was built with a different one.
		if want := s.Scheme(name).AttrNames(); !sameAttrs(src.Attrs(), want) {
			src = src.Project(want)
		}
		if err := sess.InsertBatchCtx(ctx, name, src.Tuples()); err != nil {
			return fmt.Errorf("relmerge: replaying %s: %w", name, err)
		}
	}
	return nil
}

// loadOrder topologically orders the schema's relations so inclusion-
// dependency targets come before their referencing relations (self-loops
// ignored, cycles rejected).
func loadOrder(s *Schema) ([]string, error) {
	deg := make(map[string]int, len(s.Relations))
	succ := make(map[string][]string)
	for _, rs := range s.Relations {
		deg[rs.Name] += 0
	}
	for _, ind := range s.INDs {
		if ind.Left == ind.Right {
			continue
		}
		deg[ind.Left]++
		succ[ind.Right] = append(succ[ind.Right], ind.Left)
	}
	var queue []string
	for _, rs := range s.Relations { // declaration order keeps ties stable
		if deg[rs.Name] == 0 {
			queue = append(queue, rs.Name)
		}
	}
	var order []string
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		order = append(order, name)
		for _, next := range succ[name] {
			if deg[next]--; deg[next] == 0 {
				queue = append(queue, next)
			}
		}
	}
	if len(order) != len(s.Relations) {
		return nil, fmt.Errorf("relmerge: inclusion dependencies form a cycle; no load order exists")
	}
	return order, nil
}

func sameAttrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
