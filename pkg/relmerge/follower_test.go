package relmerge_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/pkg/relmerge"
)

// startFollowerPair stands up a durable primary engine over the conformance
// schema behind a server, plus a FollowerSession shipping from it through the
// unified Open entrypoint. The caller writes through the returned engine.
func startFollowerPair(t *testing.T) (*relmerge.Engine, *server.Server, *relmerge.FollowerSession) {
	t.Helper()
	eng, err := relmerge.OpenEngine(confSchema(),
		relmerge.WithDurability(t.TempDir(), relmerge.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng, server.Config{Registry: obs.NewRegistry()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); eng.Close() })

	sess, err := relmerge.Open(relmerge.Config{
		Backend:      relmerge.Follower,
		Schema:       confSchema(),
		Addr:         ln.Addr().String(),
		DurableDir:   t.TempDir(),
		Sync:         relmerge.SyncAlways,
		PollInterval: 2 * time.Millisecond,
		Registry:     obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := sess.(*relmerge.FollowerSession)
	t.Cleanup(func() { fs.Close() })
	return eng, srv, fs
}

func waitApplied(t *testing.T, fs *relmerge.FollowerSession, horizon uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for fs.ReplicationInfo().AppliedLSN < horizon {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at LSN %d, want %d (repl err %q)",
				fs.ReplicationInfo().AppliedLSN, horizon, fs.ReplicationInfo().Err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// The conformance suite's read cases, run against a follower Session: hits,
// clean misses, unknown-relation taxonomy, and stats must answer exactly as
// an embedded session over the same state would.
func TestFollowerSessionConformanceReads(t *testing.T) {
	eng, _, fs := startFollowerPair(t)
	if err := eng.Insert("D", d("d1", "eng")); err != nil {
		t.Fatal(err)
	}
	if err := eng.Insert("D", d("d2", "ops")); err != nil {
		t.Fatal(err)
	}
	if err := eng.Insert("E", e("e1", "d1", "90")); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, fs, eng.DurableLSN())

	ref, err := relmerge.Open(relmerge.Config{Schema: confSchema()})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, ins := range []struct {
		rel string
		tup relmerge.Tuple
	}{{"D", d("d1", "eng")}, {"D", d("d2", "ops")}, {"E", e("e1", "d1", "90")}} {
		if err := ref.Insert(ins.rel, ins.tup); err != nil {
			t.Fatal(err)
		}
	}

	// Hit: identical tuple from both backends.
	for _, rel := range []string{"D", "E"} {
		key := k("d1")
		if rel == "E" {
			key = k("e1")
		}
		got, ok, err := fs.Fetch(rel, key)
		if err != nil || !ok {
			t.Fatalf("follower Fetch(%s): ok=%v err=%v", rel, ok, err)
		}
		want, _, _ := ref.Fetch(rel, key)
		if !got.Identical(want) {
			t.Fatalf("follower Fetch(%s) = %v, embedded = %v", rel, got, want)
		}
	}
	// Clean miss: found=false, nil error — not an error condition.
	if _, ok, err := fs.Fetch("D", k("dx")); ok || err != nil {
		t.Fatalf("follower miss: ok=%v err=%v, want false,nil", ok, err)
	}
	// Unknown relation: same sentinel and code as embedded.
	_, _, ferr := fs.Fetch("NOPE", k("x"))
	_, _, rerr := ref.Fetch("NOPE", k("x"))
	if !errors.Is(ferr, relmerge.ErrUnknownRelation) || relmerge.Code(ferr) != relmerge.Code(rerr) {
		t.Fatalf("follower unknown-relation = %v (code %s), embedded code %s",
			ferr, relmerge.Code(ferr), relmerge.Code(rerr))
	}
	// Stats: stamped at the follower's applied version.
	st, err := fs.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.VersionLSN != fs.ReplicationInfo().AppliedLSN {
		t.Fatalf("Stats.VersionLSN = %d, applied = %d", st.VersionLSN, fs.ReplicationInfo().AppliedLSN)
	}
}

// Every write path on a follower Session fails with ErrReadOnly /
// CodeReadOnly until Promote; after promotion writes flow with the full
// constraint taxonomy intact.
func TestFollowerSessionWritesRefuseUntilPromoted(t *testing.T) {
	eng, srv, fs := startFollowerPair(t)
	if err := eng.Insert("D", d("d1", "eng")); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, fs, eng.DurableLSN())

	writes := map[string]error{
		"Insert":      fs.Insert("D", d("d9", "x")),
		"Delete":      fs.Delete("D", k("d1")),
		"Update":      fs.Update("D", k("d1"), d("d1", "y")),
		"InsertBatch": fs.InsertBatch("D", []relmerge.Tuple{d("d9", "x")}),
		"ApplyBatch":  fs.ApplyBatch([]relmerge.BatchOp{relmerge.Ins("D", d("d9", "x"))}),
		"Begin":       fs.Begin(),
	}
	for op, err := range writes {
		if !errors.Is(err, relmerge.ErrReadOnly) {
			t.Fatalf("follower %s = %v, want ErrReadOnly", op, err)
		}
		if relmerge.Code(err) != relmerge.CodeReadOnly {
			t.Fatalf("follower %s code = %s, want %s", op, relmerge.Code(err), relmerge.CodeReadOnly)
		}
	}

	// Primary dies; the promoted follower owns the acked prefix and writes.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Promote(); err != nil {
		t.Fatal(err)
	}
	if !fs.ReplicationInfo().Promoted {
		t.Fatal("ReplicationInfo().Promoted false after Promote")
	}
	if err := fs.Insert("D", d("d2", "ops")); err != nil {
		t.Fatalf("promoted insert: %v", err)
	}
	// Constraint taxonomy survives promotion: a dangling IND insert reports
	// a ConstraintViolation exactly as an embedded session would.
	var cv *relmerge.ConstraintViolation
	if err := fs.Insert("E", e("e9", "d-missing", "10")); !errors.As(err, &cv) {
		t.Fatalf("promoted dangling-IND insert = %v, want ConstraintViolation", err)
	}
	if _, ok, err := fs.Fetch("D", k("d2")); !ok || err != nil {
		t.Fatalf("promoted read-back: ok=%v err=%v", ok, err)
	}
}
