package relmerge_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/figures"
	"repro/pkg/relmerge"
)

// TestAdviseConformance pins the Advise contract per backend: backends that
// own their design answer (with zero recommendations on the cluster-free
// conformance schema), the others fail with the typed unsupported error.
func TestAdviseConformance(t *testing.T) {
	withBackends(t, func(t *testing.T, sess relmerge.Session) {
		recs, err := relmerge.Advise(sess, relmerge.AdvisorConfig{})
		switch sess.(type) {
		case *relmerge.RemoteSession:
			if !errors.Is(err, relmerge.ErrUnsupported) {
				t.Fatalf("remote Advise = %v, want ErrUnsupported", err)
			}
			if got := relmerge.Code(err); got != relmerge.CodeUnsupported {
				t.Fatalf("Code = %v, want %v", got, relmerge.CodeUnsupported)
			}
		default:
			if err != nil {
				t.Fatalf("Advise: %v", err)
			}
			if len(recs) != 0 {
				t.Fatalf("conformance schema has no merge clusters, got %+v", recs)
			}
		}
	})
}

// TestApplyRecommendationConformance pins ApplyRecommendation's error
// behavior: unsupported (typed) on remote, a plain validation error for a
// recommendation that never came from Advise on the owning backends.
func TestApplyRecommendationConformance(t *testing.T) {
	withBackends(t, func(t *testing.T, sess relmerge.Session) {
		err := sess.ApplyRecommendation(context.Background(), relmerge.Recommendation{})
		if err == nil {
			t.Fatal("empty recommendation must not apply")
		}
		if _, remote := sess.(*relmerge.RemoteSession); remote {
			if !errors.Is(err, relmerge.ErrUnsupported) || relmerge.Code(err) != relmerge.CodeUnsupported {
				t.Fatalf("remote ApplyRecommendation = %v (code %v), want ErrUnsupported/CodeUnsupported", err, relmerge.Code(err))
			}
		} else if errors.Is(err, relmerge.ErrUnsupported) {
			t.Fatalf("owning backend must reject the rec itself, not the capability: %v", err)
		}
		// A canceled context short-circuits before any design work.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := sess.ApplyRecommendation(ctx, relmerge.Recommendation{}); !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled ctx = %v", err)
		}
	})
}

// heatFig3 drives join-shaped traffic (dependency-hop fetches along
// TEACH→OFFER / ASSIST→OFFER) so the co-access counters cross any admission
// threshold the tests use.
func heatFig3(t *testing.T, sess relmerge.Session, rounds int) {
	t.Helper()
	switch s := sess.(type) {
	case *relmerge.EmbeddedSession:
		for i := 0; i < rounds; i++ {
			if _, _, err := s.Engine().FetchWithReferences("TEACH", k("c1")); err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Engine().FetchWithReferences("TEACH", k("c2")); err != nil {
				t.Fatal(err)
			}
		}
	case *relmerge.ShardedSession:
		r := s.Router()
		for i := 0; i < rounds; i++ {
			for sh := 0; sh < r.Shards(); sh++ {
				r.Shard(sh).FetchWithReferences("TEACH", k("c1"))
				r.Shard(sh).FetchWithReferences("TEACH", k("c2"))
			}
		}
	default:
		t.Fatalf("no heat driver for %T", sess)
	}
}

// TestAdviseApplyEndToEnd is the public-API path of the adaptive loop, on
// both design-owning backends: measure real co-access heat, Advise, apply
// the auto-applicable recommendation, and keep serving on the merged design.
func TestAdviseApplyEndToEnd(t *testing.T) {
	open := map[string]func(t *testing.T) relmerge.Session{
		"embedded": func(t *testing.T) relmerge.Session {
			sess, err := relmerge.Open(relmerge.Config{Schema: figures.Fig3()})
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.(*relmerge.EmbeddedSession).Engine().Load(figures.Fig3State()); err != nil {
				t.Fatal(err)
			}
			return sess
		},
		"sharded": func(t *testing.T) relmerge.Session {
			sess, err := relmerge.Open(relmerge.Config{Backend: relmerge.Sharded, Schema: figures.Fig3(), Shards: 3})
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.(*relmerge.ShardedSession).Router().Load(figures.Fig3State()); err != nil {
				t.Fatal(err)
			}
			return sess
		},
	}
	for name, openSess := range open {
		t.Run(name, func(t *testing.T) {
			sess := openSess(t)
			t.Cleanup(func() { sess.Close() })
			heatFig3(t, sess, 100)

			recs, err := relmerge.Advise(sess, relmerge.AdvisorConfig{MinCoAccess: 16})
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) == 0 || !recs[0].AutoApplicable {
				t.Fatalf("hot only-NNA cluster should lead and be auto-applicable: %+v", recs)
			}
			best := recs[0]
			if best.KeyRelation != "OFFER" || !best.OnlyNNA || best.CoAccessHits < 16 {
				t.Fatalf("best = %+v", best)
			}

			if err := sess.ApplyRecommendation(context.Background(), best); err != nil {
				t.Fatalf("ApplyRecommendation: %v", err)
			}
			if _, found, err := sess.Fetch(best.MergedName, k("c1")); err != nil || !found {
				t.Fatalf("merged design does not serve: %v %v", found, err)
			}
			if _, _, err := sess.Fetch("TEACH", k("c1")); !errors.Is(err, relmerge.ErrUnknownRelation) {
				t.Fatalf("pre-merge relation still resolves: %v", err)
			}
			// The recommendation is now stale: the cluster no longer exists on
			// the current design, so re-applying fails cleanly.
			if err := sess.ApplyRecommendation(context.Background(), best); err == nil {
				t.Fatal("stale recommendation must not re-apply")
			}
			// Post-migration counters start cold: a fresh Advise has no
			// admitted recommendation yet.
			recs, err = relmerge.Advise(sess, relmerge.AdvisorConfig{MinCoAccess: 16})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs {
				if r.Admitted {
					t.Fatalf("cold post-migration design admitted %+v", r)
				}
			}
		})
	}
}

// TestOpenWithAdvisorAuto opens an embedded session with the background
// advisor in Auto mode and watches it migrate the live design on its own
// once the measured heat crosses the threshold.
func TestOpenWithAdvisorAuto(t *testing.T) {
	applied := make(chan error, 16)
	sess, err := relmerge.Open(relmerge.Config{Schema: figures.Fig3()},
		relmerge.WithAdvisorConfig(relmerge.AdvisorConfig{
			Mode:        relmerge.AdvisorAuto,
			Interval:    time.Millisecond,
			MinCoAccess: 16,
			OnApplied:   func(_ relmerge.Recommendation, err error) { applied <- err },
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	es := sess.(*relmerge.EmbeddedSession)
	if err := es.Engine().Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	heatFig3(t, sess, 100)
	select {
	case err := <-applied:
		if err != nil {
			t.Fatalf("auto-apply failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("advisor never applied the hot merge")
	}
	if _, found, err := sess.Fetch("OFFER+", k("c1")); err != nil || !found {
		t.Fatalf("auto-merged design does not serve: %v %v", found, err)
	}
	// Close stops the loop (and is what would catch a leaked goroutine under
	// -race when the engine shuts down beneath it).
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenWithAdvisorSuggestNeverMigrates pins the Suggest-mode contract:
// recommendations are reported, the design never moves.
func TestOpenWithAdvisorSuggestNeverMigrates(t *testing.T) {
	suggested := make(chan relmerge.Recommendation, 16)
	sess, err := relmerge.Open(relmerge.Config{Schema: figures.Fig3()},
		relmerge.WithAdvisorConfig(relmerge.AdvisorConfig{
			Mode:         relmerge.AdvisorSuggest,
			Interval:     time.Millisecond,
			MinCoAccess:  16,
			OnSuggestion: func(r relmerge.Recommendation) { suggested <- r },
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	es := sess.(*relmerge.EmbeddedSession)
	if err := es.Engine().Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	heatFig3(t, sess, 100)
	select {
	case rec := <-suggested:
		if !rec.Admitted {
			t.Fatalf("suggested rec not admitted: %+v", rec)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("advisor never suggested the hot merge")
	}
	if _, _, err := sess.Fetch("TEACH", k("c1")); err != nil {
		t.Fatalf("suggest mode must not migrate: %v", err)
	}
}

// TestOpenAdvisorBackendValidation pins the Open-time refusal: a background
// advisor on a backend that cannot own its design is a typed configuration
// error, not a silent no-op.
func TestOpenAdvisorBackendValidation(t *testing.T) {
	for _, backend := range []relmerge.BackendKind{relmerge.Remote, relmerge.Follower} {
		for _, mode := range []relmerge.AdvisorMode{relmerge.AdvisorSuggest, relmerge.AdvisorAuto} {
			_, err := relmerge.Open(relmerge.Config{Backend: backend, Addr: "127.0.0.1:1"},
				relmerge.WithAdvisor(mode, time.Second))
			if !errors.Is(err, relmerge.ErrUnsupported) {
				t.Fatalf("Open(%v, advisor %v) = %v, want ErrUnsupported", backend, mode, err)
			}
			if got := relmerge.Code(err); got != relmerge.CodeUnsupported {
				t.Fatalf("Code = %v, want %v", got, relmerge.CodeUnsupported)
			}
		}
	}
	// Off stays valid everywhere: the explicit zero option is not a request.
	sess, err := relmerge.Open(relmerge.Config{Schema: confSchema()},
		relmerge.WithAdvisor(relmerge.AdvisorOff, 0))
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
}

func TestParseAdvisorMode(t *testing.T) {
	for in, want := range map[string]relmerge.AdvisorMode{
		"off": relmerge.AdvisorOff, "suggest": relmerge.AdvisorSuggest, "auto": relmerge.AdvisorAuto,
	} {
		got, err := relmerge.ParseAdvisorMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseAdvisorMode(%q) = %v, %v", in, got, err)
		}
		if got.String() != in {
			t.Fatalf("String() = %q, want %q", got.String(), in)
		}
	}
	if _, err := relmerge.ParseAdvisorMode("always"); err == nil {
		t.Fatal("bad mode must not parse")
	}
}
