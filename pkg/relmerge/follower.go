package relmerge

import (
	"context"

	"repro/internal/repl"
	"repro/internal/server"
)

// ReplicationInfo is a point-in-time view of a follower's replication state:
// applied and commit LSNs, shipping lag, last primary contact, promotion, and
// the sticky error (if any) that broke replication.
type ReplicationInfo = repl.Info

// FollowerSession is the Session over a WAL-shipping replica: reads serve
// lock-free from the local engine pinned at the follower's applied-LSN
// horizon, while every write fails with ErrReadOnly (CodeReadOnly) until
// Promote. Open one with Open(Config{Backend: Follower, Schema: s, Addr:
// primary, DurableDir: dir}); the Schema must be the primary's serving
// schema, since shipped records and bootstrap snapshots are decoded against
// it.
//
// A follower whose shipped stream turns out to be untrustworthy — a gap, a
// corrupt snapshot — fails sticky: reads refuse with ErrRecovery rather than
// serving a state known to miss committed records. Transient primary
// outages, by contrast, leave reads serving at the applied horizon while the
// shipping loop retries.
type FollowerSession struct {
	f *repl.Follower
	b *repl.Backend
}

// NewFollowerSession wraps an already-open follower. Close stops shipping
// and closes the follower's engine.
func NewFollowerSession(f *repl.Follower) *FollowerSession {
	return &FollowerSession{f: f, b: f.Backend()}
}

// Engine returns the follower's local engine, for read APIs beyond the
// Session surface (Scan, Snapshot, View). Writing to it directly would
// diverge the replica — use Promote first.
func (s *FollowerSession) Engine() *Engine { return s.f.DB() }

// View pins the follower's current applied version as a consistent,
// lock-free read view (see EmbeddedSession.View).
func (s *FollowerSession) View() *EngineView { return s.f.DB().View() }

// ReplicationInfo returns the follower's current replication state.
func (s *FollowerSession) ReplicationInfo() ReplicationInfo { return s.f.Info() }

// Promote stops shipping and opens the session for writes: the follower
// becomes a primary over exactly the acked prefix its log holds, continuing
// the primary's LSN sequence. Irreversible; refused on a broken follower.
func (s *FollowerSession) Promote() error { return s.f.Promote() }

func (s *FollowerSession) Insert(relName string, tup Tuple) error {
	return s.InsertCtx(context.Background(), relName, tup)
}

func (s *FollowerSession) InsertCtx(ctx context.Context, relName string, tup Tuple) error {
	return s.b.InsertCtx(ctx, relName, tup)
}

func (s *FollowerSession) Delete(relName string, key Tuple) error {
	return s.DeleteCtx(context.Background(), relName, key)
}

func (s *FollowerSession) DeleteCtx(ctx context.Context, relName string, key Tuple) error {
	return s.b.DeleteCtx(ctx, relName, key)
}

func (s *FollowerSession) Update(relName string, key, tup Tuple) error {
	return s.UpdateCtx(context.Background(), relName, key, tup)
}

func (s *FollowerSession) UpdateCtx(ctx context.Context, relName string, key, tup Tuple) error {
	return s.b.UpdateCtx(ctx, relName, key, tup)
}

func (s *FollowerSession) Fetch(relName string, key Tuple) (Tuple, bool, error) {
	return s.FetchCtx(context.Background(), relName, key)
}

func (s *FollowerSession) FetchCtx(ctx context.Context, relName string, key Tuple) (Tuple, bool, error) {
	return s.b.GetByKeyCtx(ctx, relName, key)
}

func (s *FollowerSession) InsertBatch(relName string, tuples []Tuple) error {
	return s.InsertBatchCtx(context.Background(), relName, tuples)
}

func (s *FollowerSession) InsertBatchCtx(ctx context.Context, relName string, tuples []Tuple) error {
	return s.b.InsertBatchCtx(ctx, relName, tuples)
}

func (s *FollowerSession) ApplyBatch(ops []BatchOp) error {
	return s.ApplyBatchCtx(context.Background(), ops)
}

func (s *FollowerSession) ApplyBatchCtx(ctx context.Context, ops []BatchOp) error {
	return s.b.ApplyBatchCtx(ctx, ops)
}

func (s *FollowerSession) Begin() error { return s.BeginCtx(context.Background()) }

func (s *FollowerSession) BeginCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return server.TxnError(s.b.Begin())
}

func (s *FollowerSession) Commit() error { return s.CommitCtx(context.Background()) }

func (s *FollowerSession) CommitCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return server.TxnError(s.b.Commit())
}

func (s *FollowerSession) Rollback() error { return s.RollbackCtx(context.Background()) }

func (s *FollowerSession) RollbackCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return server.TxnError(s.b.Rollback())
}

func (s *FollowerSession) Stats() (EngineStats, error) {
	return s.StatsCtx(context.Background())
}

func (s *FollowerSession) StatsCtx(ctx context.Context) (EngineStats, error) {
	if err := ctx.Err(); err != nil {
		return EngineStats{}, err
	}
	st := s.b.StatsTotals()
	return st, nil
}

func (s *FollowerSession) Checkpoint() error { return s.CheckpointCtx(context.Background()) }

func (s *FollowerSession) CheckpointCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.b.Checkpoint()
}

// Close stops the shipping loop, disconnects from the primary, and closes
// the follower's engine and log.
func (s *FollowerSession) Close() error { return s.b.Close() }

var _ Session = (*FollowerSession)(nil)
