package relmerge_test

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/pkg/relmerge"
)

// scriptedServer speaks just enough of the wire protocol to exercise the
// remote client's retry machinery: it answers the hello handshake honestly
// and hands every other request to a per-test script, counting attempts per
// op so tests can assert exactly how many times the client really asked.
// Returning nil from the script closes the connection mid-request,
// simulating a transport failure.
type scriptedServer struct {
	ln     net.Listener
	mu     sync.Mutex
	counts map[string]int
	script func(attempt int, req *server.Request) *server.Response
}

func newScriptedServer(t *testing.T, script func(attempt int, req *server.Request) *server.Response) *scriptedServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &scriptedServer{ln: ln, counts: make(map[string]int), script: script}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go s.handle(nc)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *scriptedServer) handle(nc net.Conn) {
	defer nc.Close()
	for {
		body, err := server.ReadFrame(nc, server.DefaultMaxFrame)
		if err != nil {
			return
		}
		req, err := server.DecodeRequest(body)
		if err != nil {
			return
		}
		if req.Op == server.OpHello {
			if _, err := server.WriteFrame(nc, &server.Response{ID: req.ID, OK: true, Version: server.ProtoVersion}); err != nil {
				return
			}
			continue
		}
		s.mu.Lock()
		s.counts[req.Op]++
		attempt := s.counts[req.Op]
		s.mu.Unlock()
		resp := s.script(attempt, req)
		if resp == nil {
			return // drop the connection: the client sees a transport error
		}
		resp.ID = req.ID
		if _, err := server.WriteFrame(nc, resp); err != nil {
			return
		}
	}
}

func (s *scriptedServer) count(op string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[op]
}

func (s *scriptedServer) addr() string { return s.ln.Addr().String() }

func overloadedResponse() *server.Response {
	return &server.Response{OK: false, Code: server.CodeOverloaded, Error: "server: overloaded"}
}

func dialScripted(t *testing.T, s *scriptedServer, opts ...relmerge.RemoteOption) relmerge.Session {
	t.Helper()
	opts = append([]relmerge.RemoteOption{relmerge.WithDialTimeout(2 * time.Second)}, opts...)
	sess, err := relmerge.Open(relmerge.Config{Backend: relmerge.Remote, Addr: s.addr(), RemoteOptions: opts})
	if err != nil {
		t.Fatalf("Open(Remote): %v", err)
	}
	t.Cleanup(func() { sess.Close() })
	return sess
}

// An idempotent request (fetch) is retried past transient overload and
// succeeds once the server recovers — and the server really was asked once
// per attempt, not once.
func TestRemoteRetryIdempotentFetchSucceeds(t *testing.T) {
	srv := newScriptedServer(t, func(attempt int, req *server.Request) *server.Response {
		if attempt <= 2 {
			return overloadedResponse()
		}
		return &server.Response{OK: true, Found: true, Tuple: req.Key}
	})
	sess := dialScripted(t, srv, relmerge.WithRetries(2), relmerge.WithRetryBackoff(time.Millisecond))

	tup, found, err := sess.Fetch("D", relmerge.Tuple{relmerge.NewString("k1")})
	if err != nil || !found {
		t.Fatalf("Fetch after retries: tup=%v found=%v err=%v", tup, found, err)
	}
	if got := srv.count(server.OpFetch); got != 3 {
		t.Fatalf("fetch attempts = %d, want 3 (1 + 2 retries)", got)
	}
}

// A fetch whose connection dies mid-request is retried on a fresh
// connection: transport errors are retryable for idempotent ops.
func TestRemoteRetryTransportError(t *testing.T) {
	srv := newScriptedServer(t, func(attempt int, req *server.Request) *server.Response {
		if attempt == 1 {
			return nil // hang up without answering
		}
		return &server.Response{OK: true, Found: false}
	})
	sess := dialScripted(t, srv, relmerge.WithRetries(2), relmerge.WithRetryBackoff(time.Millisecond))

	_, found, err := sess.Fetch("D", relmerge.Tuple{relmerge.NewString("k1")})
	if err != nil || found {
		t.Fatalf("Fetch after reconnect: found=%v err=%v", found, err)
	}
	if got := srv.count(server.OpFetch); got != 2 {
		t.Fatalf("fetch attempts = %d, want 2", got)
	}
}

// Mutations are never retried: a rejected insert surfaces immediately, after
// exactly one wire attempt, still recognizable through the error taxonomy.
func TestRemoteRetryMutationsNotRetried(t *testing.T) {
	srv := newScriptedServer(t, func(int, *server.Request) *server.Response {
		return overloadedResponse()
	})
	sess := dialScripted(t, srv, relmerge.WithRetries(5), relmerge.WithRetryBackoff(time.Millisecond))

	err := sess.Insert("D", relmerge.Tuple{relmerge.NewString("k1"), relmerge.NewString("n")})
	if !errors.Is(err, relmerge.ErrOverloaded) {
		t.Fatalf("Insert error = %v, want ErrOverloaded", err)
	}
	if got := srv.count(server.OpInsert); got != 1 {
		t.Fatalf("insert attempts = %d, want exactly 1 (mutations are not idempotent)", got)
	}
}

// Retry exhaustion preserves the wire error taxonomy: after the last attempt
// fails, errors.Is and Code still see the server's overload rejection, not a
// generic retry wrapper.
func TestRemoteRetryExhaustionPreservesTaxonomy(t *testing.T) {
	srv := newScriptedServer(t, func(int, *server.Request) *server.Response {
		return overloadedResponse()
	})
	sess := dialScripted(t, srv, relmerge.WithRetries(2), relmerge.WithRetryBackoff(time.Millisecond))

	_, _, err := sess.Fetch("D", relmerge.Tuple{relmerge.NewString("k1")})
	if !errors.Is(err, relmerge.ErrOverloaded) {
		t.Fatalf("exhausted fetch error = %v, want ErrOverloaded", err)
	}
	if code := relmerge.Code(err); code != "overloaded" {
		t.Fatalf("Code(err) = %q, want overloaded", code)
	}
	if got := srv.count(server.OpFetch); got != 3 {
		t.Fatalf("fetch attempts = %d, want 3 (1 + 2 retries)", got)
	}
}

// The backoff sleep respects the caller's context: with a backoff far longer
// than the deadline, the client gives up promptly when the context expires
// mid-backoff — and still reports the server's rejection, not a timeout of
// its own invention.
func TestRemoteRetryBackoffRespectsDeadline(t *testing.T) {
	srv := newScriptedServer(t, func(int, *server.Request) *server.Response {
		return overloadedResponse()
	})
	sess := dialScripted(t, srv, relmerge.WithRetries(5), relmerge.WithRetryBackoff(10*time.Second))

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := sess.FetchCtx(ctx, "D", relmerge.Tuple{relmerge.NewString("k1")})
	elapsed := time.Since(start)
	if !errors.Is(err, relmerge.ErrOverloaded) {
		t.Fatalf("deadline-bounded fetch error = %v, want ErrOverloaded (last real failure)", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("fetch blocked %v in backoff; want prompt return at the ~150ms deadline", elapsed)
	}
	if got := srv.count(server.OpFetch); got != 1 {
		t.Fatalf("fetch attempts = %d, want 1 (deadline expired during first backoff)", got)
	}
}
