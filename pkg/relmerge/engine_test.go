package relmerge_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/pkg/relmerge"
)

// The facade stands up an engine from the figure 3 state, serves lookups, and
// applies batched mutations atomically — all without importing internal/.
func TestFacadeEngine(t *testing.T) {
	reg := relmerge.NewRegistry()
	e, err := relmerge.ReplayCtx(context.Background(), relmerge.Fig3(), relmerge.Fig3State(),
		relmerge.WithEngineRegistry(reg), relmerge.WithEngineName("base"))
	if err != nil {
		t.Fatal(err)
	}
	key := relmerge.Tuple{relmerge.NewString("c1")}
	if _, ok := e.GetByKey("COURSE", key); !ok {
		t.Fatal("replayed engine is missing COURSE c1")
	}

	// One atomic batch: a fresh course plus its offering. The insert order
	// matters to the foreign keys and the batch preserves it.
	err = e.ApplyBatchCtx(context.Background(), []relmerge.BatchOp{
		relmerge.Ins("COURSE", relmerge.Tuple{relmerge.NewString("c9")}),
		relmerge.Ins("OFFER", relmerge.Tuple{relmerge.NewString("c9"), relmerge.NewString("math")}),
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if _, ok := e.GetByKey("OFFER", relmerge.Tuple{relmerge.NewString("c9")}); !ok {
		t.Error("batched OFFER row did not land")
	}

	// A violation anywhere rolls the whole batch back.
	before := e.Count("COURSE")
	err = e.ApplyBatchCtx(context.Background(), []relmerge.BatchOp{
		relmerge.Ins("COURSE", relmerge.Tuple{relmerge.NewString("c10")}),
		relmerge.Ins("OFFER", relmerge.Tuple{relmerge.NewString("c10"), relmerge.NewString("no-such-dept")}),
	})
	var cv *relmerge.ConstraintViolation
	if !errors.As(err, &cv) {
		t.Fatalf("bad batch error = %v, want a ConstraintViolation", err)
	}
	if got := e.Count("COURSE"); got != before {
		t.Errorf("failed batch leaked a COURSE row: %d -> %d", before, got)
	}

	// Stats and the shared registry stay reconciled through the facade.
	totals := e.Stats.Totals()
	var regLookups int
	for _, p := range relmerge.Snapshot(reg) {
		if p.Name == "engine.lookups" && p.Labels["db"] == "base" {
			regLookups = int(p.Value)
		}
	}
	if totals.Lookups != regLookups {
		t.Errorf("facade stats drifted from registry: Totals().Lookups=%d, series=%d",
			totals.Lookups, regLookups)
	}
}

// WithAccessDelay is accepted through the facade and slows operations down —
// the knob the scaling benchmark uses.
func TestFacadeEngineAccessDelay(t *testing.T) {
	e, err := relmerge.OpenEngine(relmerge.Fig3(), relmerge.WithAccessDelay(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := e.Insert("COURSE", relmerge.Tuple{relmerge.NewString("c1")}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("insert with 2ms access delay returned in %v", elapsed)
	}
}
