// Package repro holds the benchmark harness: one benchmark per experiment in
// DESIGN.md's index (E1–E10 covering every figure and proposition of the
// paper, P1–P3 covering the motivating performance claims). Run with
//
//	go test -bench=. -benchmem
//
// and see cmd/benchreport for the human-readable reproduction of each
// figure's content.
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/ddl"
	"repro/internal/eer"
	"repro/internal/engine"
	"repro/internal/figures"
	"repro/internal/infocap"
	"repro/internal/keyrel"
	"repro/internal/nullcon"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sdl"
	"repro/internal/state"
	"repro/internal/translate"
	"repro/internal/workload"
)

// E1 — figure 1: both translations of the ER schema.
func BenchmarkE1Fig1Translate(b *testing.B) {
	es := eer.Fig1()
	b.Run("markowitz-shoshani", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := translate.MS(es); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("teorey-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := translate.Teorey(es); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E2 — figure 2: the two-relation merge, with and without a key-relation.
func BenchmarkE2Fig2Merge(b *testing.B) {
	for _, linked := range []bool{true, false} {
		name := "key-relation"
		if !linked {
			name = "synthetic-key"
		}
		b.Run(name, func(b *testing.B) {
			s := figures.Fig2(linked)
			for i := 0; i < b.N; i++ {
				if _, err := core.Merge(s, []string{"OFFER", "TEACH"}, "ASSIGN"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E3 — figure 3: building and validating the university schema, plus its
// round trip through the SDL parser.
func BenchmarkE3Fig3Build(b *testing.B) {
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := figures.Fig3().Validate(); err != nil {
				b.Fatal(err)
			}
		}
	})
	text := sdl.PrintSchema(figures.Fig3())
	b.Run("parse-sdl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sdl.ParseSchema(text); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E4 — figure 4: Merge(COURSE, OFFER, TEACH).
func BenchmarkE4Fig4Merge(b *testing.B) {
	s := figures.Fig3()
	for i := 0; i < b.N; i++ {
		if _, err := core.Merge(s, []string{"COURSE", "OFFER", "TEACH"}, "COURSE'"); err != nil {
			b.Fatal(err)
		}
	}
}

// E5 — figure 5: Merge(COURSE, OFFER, TEACH, ASSIST).
func BenchmarkE5Fig5Merge(b *testing.B) {
	s := figures.Fig3()
	for i := 0; i < b.N; i++ {
		if _, err := core.Merge(s, []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''"); err != nil {
			b.Fatal(err)
		}
	}
}

// E6 — figure 6: the removals on top of the figure 5 merge.
func BenchmarkE6Fig6Remove(b *testing.B) {
	s := figures.Fig3()
	for i := 0; i < b.N; i++ {
		m, err := core.Merge(s, []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
		if err != nil {
			b.Fatal(err)
		}
		if removed := m.RemoveAll(); len(removed) != 3 {
			b.Fatalf("removed %v", removed)
		}
	}
}

// E7 — figure 7: EER → relational translation of the university schema.
func BenchmarkE7Fig7EER(b *testing.B) {
	es := eer.Fig7()
	for i := 0; i < b.N; i++ {
		rs, err := translate.MS(es)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Relations) != 8 {
			b.Fatal("wrong shape")
		}
	}
}

// E8 — figure 8: the structural condition checks for all four structures.
func BenchmarkE8Fig8Structures(b *testing.B) {
	i8, ii8, iii8, iv8 := eer.Fig8i(), eer.Fig8ii(), eer.Fig8iii(), eer.Fig8iv()
	for i := 0; i < b.N; i++ {
		if i8.CheckCondition1("VEHICLE", []string{"CAR", "TRUCK"}) == nil {
			b.Fatal("8i should fail")
		}
		if ii8.CheckCondition2("EMPLOYEE", []string{"WORKS", "BELONGS"}) == nil {
			b.Fatal("8ii should fail")
		}
		if iii8.CheckCondition1("PERSON", []string{"FACULTY", "STUDENT"}) != nil {
			b.Fatal("8iii should hold")
		}
		if iv8.CheckCondition2("COURSE", []string{"OFFER", "TEACH"}) != nil {
			b.Fatal("8iv should hold")
		}
	}
}

// E9 — the information-capacity round trip η′∘η on random consistent states
// (the empirical content of Props. 4.1/4.2), and the Prop. 3.1 key-relation
// test.
func BenchmarkE9RoundTrip(b *testing.B) {
	s := figures.Fig3()
	names := []string{"COURSE", "OFFER", "TEACH", "ASSIST"}
	m, err := core.Merge(s, names, "COURSE''")
	if err != nil {
		b.Fatal(err)
	}
	m.RemoveAll()
	rng := rand.New(rand.NewSource(9))
	db := state.MustGenerate(s, rng, state.GenOptions{Rows: 50})
	b.Run("eta-etaprime", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !m.RoundTrip(db) {
				b.Fatal("round trip failed")
			}
		}
	})
	b.Run("keyrel-find", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := keyrel.Find(s, names); len(got) != 1 {
				b.Fatal("key-relation")
			}
		}
	})
}

// E10 — the Prop. 5.1/5.2 condition checks and the schema-wide planner.
func BenchmarkE10Conditions(b *testing.B) {
	s := figures.Fig3()
	b.Run("prop51", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Prop51(s, []string{"COURSE", "OFFER", "TEACH", "ASSIST"})
		}
	})
	b.Run("prop52", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := core.Prop52(s, []string{"OFFER", "TEACH", "ASSIST"}); !ok {
				b.Fatal("prop 5.2 should hold")
			}
		}
	})
	b.Run("planner", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := core.Prop52Clusters(s); len(got) != 1 {
				b.Fatal("planner")
			}
		}
	})
}

// P1 — access performance: the object-profile query on base vs. merged
// schemas, swept over the star width. The per-op numbers reproduce the
// paper's join-reduction claim: base cost grows with n, merged cost is flat.
func BenchmarkP1AccessPerformance(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		bench, err := workload.NewBench(workload.StarEER(n), "E0", 200, int64(100+n))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("base/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench.ProfileBase(bench.Keys[i%len(bench.Keys)])
			}
		})
		b.Run(fmt.Sprintf("merged/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench.ProfileMerged(bench.Keys[i%len(bench.Keys)])
			}
		})
	}
}

// P2 — maintenance overhead: inserts under the two constraint regimes
// (only-NNA vs. null-existence chains).
func BenchmarkP2MaintenanceOverhead(b *testing.B) {
	regimes := []struct {
		name string
		es   func(int) *eer.Schema
	}{
		{"declarative-star", workload.StarEER},
		{"trigger-chain", workload.ChainEER},
	}
	for _, r := range regimes {
		b.Run(r.name, func(b *testing.B) {
			bench, err := workload.NewBench(r.es(4), "E0", 50, 23)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bench.InsertMergedRow(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// P3 — Merge + RemoveAll scalability over the merge-set size.
func BenchmarkP3MergeScalability(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		base, err := translate.MS(workload.StarEER(n))
		if err != nil {
			b.Fatal(err)
		}
		names := workload.MergeSetFor(base, "E0")
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := core.Merge(base, names, "MERGED")
				if err != nil {
					b.Fatal(err)
				}
				m.RemoveAll()
				if !nullcon.OnlyNNA(m.Schema.NullsOf("MERGED")) {
					b.Fatal("star should reduce to NNA")
				}
			}
		})
	}
}

// P4 — the denormalization advisor over the figure 3 schema.
func BenchmarkP4Advisor(b *testing.B) {
	s := figures.Fig3()
	w := advisor.Workload{
		ProfileQueries: map[string]float64{"COURSE": 100, "PERSON": 10},
		Inserts:        map[string]float64{"COURSE": 5},
	}
	cm := advisor.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		recs, err := advisor.Advise(s, w, cm)
		if err != nil || len(recs) != 2 {
			b.Fatalf("recs = %v, %v", recs, err)
		}
	}
}

// Exhaustive information-capacity verification (Def. 2.1) on the figure 2
// merge — the strongest form of the Prop. 4.1 check.
func BenchmarkInfocapEquivalence(b *testing.B) {
	s := figures.Fig2(true)
	m, err := core.Merge(s, []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		b.Fatal(err)
	}
	opts := infocap.EnumOptions{DomainSize: 2, MaxTuples: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := infocap.CheckEquivalence(s, m.Schema, m.MapState, m.UnmapState, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// P5 — the logical query planner: identical answers, different access paths.
func BenchmarkP5QueryPlanner(b *testing.B) {
	s := figures.Fig3()
	m, err := core.Merge(s, []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	if err != nil {
		b.Fatal(err)
	}
	m.RemoveAll()
	rng := rand.New(rand.NewSource(12))
	st := state.MustGenerate(s, rng, state.GenOptions{Rows: 200})
	baseDB := engine.MustOpen(s)
	if err := baseDB.Load(st); err != nil {
		b.Fatal(err)
	}
	mergedDB := engine.MustOpen(m.Schema)
	if err := mergedDB.Load(m.MapState(st)); err != nil {
		b.Fatal(err)
	}
	var keys []relation.Tuple
	for _, tup := range st.Relation("COURSE").Tuples() {
		keys = append(keys, relation.Tuple{tup[0]})
	}
	want := []string{"C.NR", "O.D.NAME", "T.C.NR", "T.F.SSN", "A.S.SSN"}
	basePlanner := &query.BasePlanner{DB: baseDB}
	mergedPlanner := &query.MergedPlanner{DB: mergedDB, M: m}
	b.Run("base", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := query.Query{Root: "COURSE", Key: keys[i%len(keys)], Want: want}
			if _, err := basePlanner.Answer(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("merged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := query.Query{Root: "COURSE", Key: keys[i%len(keys)], Want: want}
			if _, err := mergedPlanner.Answer(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// DDL generation across dialects (supporting experiment for §5.1).
func BenchmarkDDLGeneration(b *testing.B) {
	m, err := core.Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range []ddl.Dialect{ddl.Sybase, ddl.Ingres} {
		b.Run(d.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ddl.Generate(m.Schema, ddl.Options{Dialect: d}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
