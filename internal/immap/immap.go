// Package immap implements a persistent (immutable, structurally shared)
// hash map from string keys to arbitrary values — the copy-on-write
// substrate of the engine's MVCC read path.
//
// Every update (Set, Delete) returns a NEW map that shares all untouched
// structure with the original; the original is never modified and stays
// valid forever. A published *Map can therefore be read from any number of
// goroutines without synchronization while writers keep deriving new
// versions from it: exactly the "readers pin a version, writers publish the
// next one" discipline the engine needs. Old versions are reclaimed by the
// garbage collector as soon as the last reader drops its pointer.
//
// The structure is a hash array mapped trie (HAMT): a 32-ary tree indexed
// 5 hash bits per level. An update copies only the O(log₃₂ n) nodes on the
// path from the root to the touched slot (each at most 32 entries wide), so
// deriving a new version costs amortized constant work and memory — not the
// O(n) of cloning a built-in map — while lookups stay O(log₃₂ n) with small
// constants. Keys that exhaust all 64 hash bits (a full-hash collision)
// fall into a linear collision bucket at maximum depth.
package immap

import "math/bits"

const (
	fanLog = 5           // bits consumed per level
	fan    = 1 << fanLog // slots per node
	slotMa = fan - 1     // slot index mask
	// maxShift is the last shift at which 5 fresh hash bits remain; past it
	// the trie stops splitting and chains collisions linearly.
	maxShift = 60
)

// Map is an immutable hash map. The zero value is NOT usable; obtain an
// empty map with New. All methods are safe for concurrent use by any number
// of readers; updates return new maps and never mutate the receiver.
type Map[V any] struct {
	root *node[V]
	size int
}

// entry is one key/value pair with its cached hash.
type entry[V any] struct {
	hash uint64
	key  string
	val  V
}

// node is one trie level: a bitmap-compressed array of entries (leaves) and
// child nodes. A slot is either empty, an entry, or a child — never both.
// At shift > maxShift a node degenerates into a collision bucket: all
// entries share the full 64-bit hash and live in `entries` unordered.
type node[V any] struct {
	entryMap uint32 // bitmap of slots holding an entry
	nodeMap  uint32 // bitmap of slots holding a child node
	entries  []entry[V]
	children []*node[V]
}

// hashString is FNV-1a 64. Indirect so tests can force collisions.
var hashString = func(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// New returns an empty map.
func New[V any]() *Map[V] {
	return &Map[V]{root: &node[V]{}}
}

// Len returns the number of keys.
func (m *Map[V]) Len() int { return m.size }

// Get returns the value stored under key.
func (m *Map[V]) Get(key string) (V, bool) {
	h := hashString(key)
	n := m.root
	shift := uint(0)
	for {
		if shift > maxShift {
			// Collision bucket: linear search.
			for i := range n.entries {
				if n.entries[i].key == key {
					return n.entries[i].val, true
				}
			}
			var zero V
			return zero, false
		}
		bit := uint32(1) << ((h >> shift) & slotMa)
		if n.entryMap&bit != 0 {
			e := &n.entries[index(n.entryMap, bit)]
			if e.key == key {
				return e.val, true
			}
			var zero V
			return zero, false
		}
		if n.nodeMap&bit == 0 {
			var zero V
			return zero, false
		}
		n = n.children[index(n.nodeMap, bit)]
		shift += fanLog
	}
}

// Set returns a map with key bound to val (replacing any existing binding).
func (m *Map[V]) Set(key string, val V) *Map[V] {
	h := hashString(key)
	root, added := set(m.root, 0, entry[V]{hash: h, key: key, val: val})
	size := m.size
	if added {
		size++
	}
	return &Map[V]{root: root, size: size}
}

// Delete returns a map without key (the receiver if key is absent).
func (m *Map[V]) Delete(key string) *Map[V] {
	h := hashString(key)
	root, removed := del(m.root, 0, h, key)
	if !removed {
		return m
	}
	return &Map[V]{root: root, size: m.size - 1}
}

// Range calls fn for every key/value pair until fn returns false. Iteration
// order is unspecified but deterministic for a given map value.
func (m *Map[V]) Range(fn func(key string, val V) bool) {
	walk(m.root, fn)
}

// index converts a slot bit into a compressed-array index: the number of
// set bits below it.
func index(bitmap, bit uint32) int {
	return bits.OnesCount32(bitmap & (bit - 1))
}

// clone shallow-copies a node so one path can be rewritten while every
// untouched slot keeps sharing the original arrays' backing... Slices are
// re-allocated (they are small, ≤ fan entries) so the original node's
// arrays are never written through.
func clone[V any](n *node[V]) *node[V] {
	c := &node[V]{
		entryMap: n.entryMap,
		nodeMap:  n.nodeMap,
		entries:  make([]entry[V], len(n.entries)),
		children: make([]*node[V], len(n.children)),
	}
	copy(c.entries, n.entries)
	copy(c.children, n.children)
	return c
}

// set inserts e below n at the given shift, returning the rewritten node
// and whether the key is new (false = replaced).
func set[V any](n *node[V], shift uint, e entry[V]) (*node[V], bool) {
	if shift > maxShift {
		c := clone(n)
		for i := range c.entries {
			if c.entries[i].key == e.key {
				c.entries[i] = e
				return c, false
			}
		}
		c.entries = append(c.entries, e)
		return c, true
	}
	bit := uint32(1) << ((e.hash >> shift) & slotMa)
	switch {
	case n.entryMap&bit != 0:
		i := index(n.entryMap, bit)
		have := n.entries[i]
		if have.key == e.key {
			c := clone(n)
			c.entries[i] = e
			return c, false
		}
		// Two distinct keys in one slot: push both one level down.
		child := merge(have, e, shift+fanLog)
		c := &node[V]{
			entryMap: n.entryMap &^ bit,
			nodeMap:  n.nodeMap | bit,
			entries:  make([]entry[V], 0, len(n.entries)-1),
			children: make([]*node[V], 0, len(n.children)+1),
		}
		c.entries = append(c.entries, n.entries[:i]...)
		c.entries = append(c.entries, n.entries[i+1:]...)
		j := index(c.nodeMap, bit)
		c.children = append(c.children, n.children[:j]...)
		c.children = append(c.children, child)
		c.children = append(c.children, n.children[j:]...)
		return c, true
	case n.nodeMap&bit != 0:
		i := index(n.nodeMap, bit)
		child, added := set(n.children[i], shift+fanLog, e)
		c := clone(n)
		c.children[i] = child
		return c, added
	default:
		c := clone(n)
		c.entryMap |= bit
		i := index(c.entryMap, bit)
		c.entries = append(c.entries[:i], append([]entry[V]{e}, c.entries[i:]...)...)
		return c, true
	}
}

// merge builds the minimal subtree holding two entries that collided in one
// slot at the parent level.
func merge[V any](a, b entry[V], shift uint) *node[V] {
	if shift > maxShift {
		return &node[V]{entries: []entry[V]{a, b}}
	}
	abit := uint32(1) << ((a.hash >> shift) & slotMa)
	bbit := uint32(1) << ((b.hash >> shift) & slotMa)
	if abit == bbit {
		return &node[V]{nodeMap: abit, children: []*node[V]{merge(a, b, shift+fanLog)}}
	}
	n := &node[V]{entryMap: abit | bbit}
	if index(n.entryMap, abit) == 0 {
		n.entries = []entry[V]{a, b}
	} else {
		n.entries = []entry[V]{b, a}
	}
	return n
}

// del removes key below n, returning the rewritten node and whether the key
// was present. The rewritten node may be sparser than the original but is
// never compacted upward: stray empty nodes cost a pointer hop and vanish
// with the version itself, which keeps deletion single-pass.
func del[V any](n *node[V], shift uint, h uint64, key string) (*node[V], bool) {
	if shift > maxShift {
		for i := range n.entries {
			if n.entries[i].key == key {
				c := clone(n)
				c.entries = append(c.entries[:i], c.entries[i+1:]...)
				return c, true
			}
		}
		return n, false
	}
	bit := uint32(1) << ((h >> shift) & slotMa)
	if n.entryMap&bit != 0 {
		i := index(n.entryMap, bit)
		if n.entries[i].key != key {
			return n, false
		}
		c := clone(n)
		c.entryMap &^= bit
		c.entries = append(c.entries[:i], c.entries[i+1:]...)
		return c, true
	}
	if n.nodeMap&bit == 0 {
		return n, false
	}
	i := index(n.nodeMap, bit)
	child, removed := del(n.children[i], shift+fanLog, h, key)
	if !removed {
		return n, false
	}
	c := clone(n)
	c.children[i] = child
	return c, true
}

// walk visits every entry of the subtree; returns false to stop early.
func walk[V any](n *node[V], fn func(string, V) bool) bool {
	for i := range n.entries {
		if !fn(n.entries[i].key, n.entries[i].val) {
			return false
		}
	}
	for _, child := range n.children {
		if !walk(child, fn) {
			return false
		}
	}
	return true
}
