package immap

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestBasic(t *testing.T) {
	m := New[int]()
	if m.Len() != 0 {
		t.Fatal("empty Len")
	}
	if _, ok := m.Get("a"); ok {
		t.Fatal("empty Get")
	}
	m1 := m.Set("a", 1)
	m2 := m1.Set("b", 2)
	m3 := m2.Set("a", 10)
	if v, ok := m1.Get("a"); !ok || v != 1 {
		t.Errorf("m1[a] = %d,%v", v, ok)
	}
	if _, ok := m1.Get("b"); ok {
		t.Error("m1 must not see b")
	}
	if v, _ := m2.Get("a"); v != 1 {
		t.Error("m2[a] changed by m3's replace")
	}
	if v, _ := m3.Get("a"); v != 10 {
		t.Error("m3[a] replace")
	}
	if m1.Len() != 1 || m2.Len() != 2 || m3.Len() != 2 {
		t.Errorf("lens = %d %d %d", m1.Len(), m2.Len(), m3.Len())
	}
	m4 := m3.Delete("a")
	if _, ok := m4.Get("a"); ok || m4.Len() != 1 {
		t.Error("delete")
	}
	if v, ok := m3.Get("a"); !ok || v != 10 {
		t.Error("delete mutated the older version")
	}
	if m4.Delete("nope") != m4 {
		t.Error("deleting an absent key should return the receiver")
	}
}

// TestDifferential drives a long random op sequence against a built-in map
// oracle, checking every version along the way stays immutable.
func TestDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New[int]()
	oracle := map[string]int{}
	type pin struct {
		m      *Map[int]
		oracle map[string]int
	}
	var pins []pin
	for i := 0; i < 20000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(3000))
		switch rng.Intn(10) {
		case 0, 1, 2:
			m = m.Delete(key)
			delete(oracle, key)
		default:
			m = m.Set(key, i)
			oracle[key] = i
		}
		if i%2500 == 0 {
			snap := make(map[string]int, len(oracle))
			for k, v := range oracle {
				snap[k] = v
			}
			pins = append(pins, pin{m: m, oracle: snap})
		}
	}
	check := func(m *Map[int], oracle map[string]int) {
		t.Helper()
		if m.Len() != len(oracle) {
			t.Fatalf("Len = %d, oracle %d", m.Len(), len(oracle))
		}
		for k, v := range oracle {
			if got, ok := m.Get(k); !ok || got != v {
				t.Fatalf("Get(%s) = %d,%v want %d", k, got, ok, v)
			}
		}
		seen := 0
		m.Range(func(k string, v int) bool {
			if oracle[k] != v {
				t.Fatalf("Range yielded %s=%d, oracle %d", k, v, oracle[k])
			}
			seen++
			return true
		})
		if seen != len(oracle) {
			t.Fatalf("Range visited %d of %d", seen, len(oracle))
		}
	}
	check(m, oracle)
	// Every pinned version must still read exactly as it did when pinned.
	for _, p := range pins {
		check(p.m, p.oracle)
	}
}

// TestCollisions forces full-hash collisions so the bucket path is covered.
func TestCollisions(t *testing.T) {
	orig := hashString
	hashString = func(string) uint64 { return 0xDEADBEEF } // everyone collides
	defer func() { hashString = orig }()

	m := New[string]()
	const n = 40
	for i := 0; i < n; i++ {
		m = m.Set(fmt.Sprintf("c%d", i), fmt.Sprintf("v%d", i))
	}
	if m.Len() != n {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(fmt.Sprintf("c%d", i)); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("collision Get c%d = %q,%v", i, v, ok)
		}
	}
	if _, ok := m.Get("absent"); ok {
		t.Fatal("absent key found in collision bucket")
	}
	m = m.Set("c7", "replaced")
	if v, _ := m.Get("c7"); v != "replaced" || m.Len() != n {
		t.Fatal("collision replace")
	}
	for i := 0; i < n; i++ {
		m = m.Delete(fmt.Sprintf("c%d", i))
	}
	if m.Len() != 0 {
		t.Fatalf("Len after collision deletes = %d", m.Len())
	}
	if m.Delete("absent") != m {
		t.Fatal("absent collision delete should return the receiver")
	}
}

// TestRangeEarlyStop checks Range stops when fn returns false.
func TestRangeEarlyStop(t *testing.T) {
	m := New[int]()
	for i := 0; i < 100; i++ {
		m = m.Set(fmt.Sprintf("k%d", i), i)
	}
	visited := 0
	m.Range(func(string, int) bool {
		visited++
		return visited < 10
	})
	if visited != 10 {
		t.Fatalf("visited %d, want 10", visited)
	}
}

// TestConcurrentReaders publishes versions from one writer while readers
// hammer pinned versions — the engine's exact usage pattern. Run with -race.
func TestConcurrentReaders(t *testing.T) {
	var (
		cur  = New[int]()
		mu   sync.Mutex // writer-side only; readers pin without it
		pins [8]*Map[int]
	)
	for i := range pins {
		pins[i] = cur
	}
	var published sync.Map
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			mu.Lock()
			cur = cur.Set(fmt.Sprintf("k%d", i%500), i)
			pins[i%len(pins)] = cur
			published.Store(i%len(pins), cur)
			mu.Unlock()
		}
		close(stop)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v, ok := published.Load(r % len(pins)); ok {
					m := v.(*Map[int])
					n := 0
					m.Range(func(string, int) bool { n++; return true })
					if n != m.Len() {
						t.Errorf("Range %d != Len %d on a pinned version", n, m.Len())
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
}

func BenchmarkSet(b *testing.B) {
	m := New[int]()
	keys := make([]string, 10000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		m = m.Set(keys[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m = m.Set(keys[i%len(keys)], i)
	}
}

func BenchmarkGet(b *testing.B) {
	m := New[int]()
	keys := make([]string, 10000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		m = m.Set(keys[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(keys[i%len(keys)])
	}
}
