package relation

import (
	"strings"
	"testing"
)

func ints(vs ...int64) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		t[i] = NewInt(v)
	}
	return t
}

func strs(vs ...string) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		if v == "⊥" {
			t[i] = Null()
		} else {
			t[i] = NewString(v)
		}
	}
	return t
}

func TestNewRejectsDuplicateAttrs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attribute should panic")
		}
	}()
	New("A", "A")
}

func TestAddSetSemantics(t *testing.T) {
	r := New("A", "B")
	if !r.Add(ints(1, 2)) {
		t.Error("first add should be new")
	}
	if r.Add(ints(1, 2)) {
		t.Error("duplicate add should report false")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	// Tuples with nulls deduplicate too (all nulls identical).
	r.Add(Tuple{NewInt(1), Null()})
	if r.Add(Tuple{NewInt(1), Null()}) {
		t.Error("null-bearing duplicate should dedupe")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}

func TestAddArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch should panic")
		}
	}()
	New("A").Add(ints(1, 2))
}

func TestContainsRemove(t *testing.T) {
	r := New("A", "B")
	r.Add(ints(1, 2))
	r.Add(ints(3, 4))
	r.Add(ints(5, 6))
	if !r.Contains(ints(3, 4)) {
		t.Error("Contains(3,4)")
	}
	if r.Contains(ints(9, 9)) {
		t.Error("Contains(9,9) should be false")
	}
	if !r.Remove(ints(3, 4)) {
		t.Error("Remove(3,4) should succeed")
	}
	if r.Remove(ints(3, 4)) {
		t.Error("second Remove should fail")
	}
	if r.Len() != 2 || !r.Contains(ints(1, 2)) || !r.Contains(ints(5, 6)) {
		t.Error("Remove corrupted relation")
	}
	// Removing the last tuple then re-adding must work (swap-delete path).
	if !r.Remove(ints(5, 6)) || !r.Add(ints(5, 6)) {
		t.Error("remove/re-add of last tuple")
	}
}

func TestPositions(t *testing.T) {
	r := New("A", "B", "C")
	got := r.Positions([]string{"C", "A"})
	if got[0] != 2 || got[1] != 0 {
		t.Errorf("Positions = %v", got)
	}
	if r.Position("B") != 1 || r.Position("Z") != -1 {
		t.Error("Position lookup")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown attribute in Positions should panic")
		}
	}()
	r.Positions([]string{"Z"})
}

func TestCloneIndependence(t *testing.T) {
	r := New("A")
	r.Add(ints(1))
	c := r.Clone()
	c.Add(ints(2))
	if r.Len() != 1 || c.Len() != 2 {
		t.Error("Clone should be independent")
	}
}

func TestEqual(t *testing.T) {
	a := FromTuples([]string{"A", "B"}, ints(1, 2), ints(3, 4))
	b := FromTuples([]string{"A", "B"}, ints(3, 4), ints(1, 2))
	if !a.Equal(b) {
		t.Error("insertion order must not matter")
	}
	c := FromTuples([]string{"A", "B"}, ints(1, 2))
	if a.Equal(c) {
		t.Error("different cardinality")
	}
	d := FromTuples([]string{"B", "A"}, ints(1, 2), ints(3, 4))
	if a.Equal(d) {
		t.Error("different attribute order must not be Equal")
	}
	if !a.EqualUpToOrder(a.Project([]string{"B", "A"}).Project([]string{"B", "A"}).Rename([]string{"B", "A"}, []string{"B", "A"})) {
		t.Error("EqualUpToOrder after reorder")
	}
}

func TestEqualUpToOrder(t *testing.T) {
	a := FromTuples([]string{"A", "B"}, ints(1, 2))
	b := FromTuples([]string{"B", "A"}, ints(2, 1))
	if !a.EqualUpToOrder(b) {
		t.Error("EqualUpToOrder should reorder columns")
	}
	c := FromTuples([]string{"B", "C"}, ints(2, 1))
	if a.EqualUpToOrder(c) {
		t.Error("different attribute sets")
	}
}

func TestSortedDeterminism(t *testing.T) {
	r := FromTuples([]string{"A"}, ints(3), ints(1), ints(2))
	s := r.Sorted()
	for i := 1; i < len(s); i++ {
		if s[i-1].Compare(s[i]) >= 0 {
			t.Errorf("Sorted not ascending: %v", s)
		}
	}
}

func TestStringRendering(t *testing.T) {
	r := FromTuples([]string{"A", "B"}, strs("x", "⊥"))
	out := r.String()
	if !strings.Contains(out, "(A, B)") || !strings.Contains(out, "⟨x, ⊥⟩") {
		t.Errorf("String = %q", out)
	}
}
