// Package relation implements the value, tuple, and relation model of
// Markowitz (ICDE 1992), together with the relational-algebra operators the
// paper's merging technique is defined in terms of: projection, total
// projection, renaming, equi-join, and the three-part outer-equi-join of
// section 2.
//
// Relations are in-memory sets of tuples over a fixed list of globally
// qualified attribute names. Null values are first-class: a Value is a tagged
// union whose null member compares equal to nothing under join semantics
// (Equal) but is identical to every other null under set semantics
// (Identical), mirroring the "all null values are identical" behaviour of the
// 1992-era DBMSs discussed in section 5.1 of the paper.
package relation

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates the members of the Value union.
type Kind uint8

// The value kinds supported by the engine. KindNull is the zero value, so an
// uninitialised Value is null.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is an immutable relational value: a string, integer, float, boolean,
// or the distinguished null. The zero Value is null.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
}

// Null returns the null value.
func Null() Value { return Value{} }

// String returns a string value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a floating-point value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewBool returns a boolean value.
func NewBool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsString returns the string payload. It panics if the value is not a string.
func (v Value) AsString() string {
	v.mustBe(KindString)
	return v.s
}

// AsInt returns the integer payload. It panics if the value is not an int.
func (v Value) AsInt() int64 {
	v.mustBe(KindInt)
	return v.i
}

// AsFloat returns the float payload. It panics if the value is not a float.
func (v Value) AsFloat() float64 {
	v.mustBe(KindFloat)
	return v.f
}

// AsBool returns the boolean payload. It panics if the value is not a bool.
func (v Value) AsBool() bool {
	v.mustBe(KindBool)
	return v.b
}

func (v Value) mustBe(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("relation: value is %s, not %s", v.kind, k))
	}
}

// Equal implements join-condition equality: two values are equal iff both are
// non-null, of the same kind, and carry the same payload. In particular
// Equal(Null(), Null()) is false, matching the semantics of the equi-join
// condition t[Y] = t'[Z] in the paper, which is only defined over non-null
// subtuples.
func (v Value) Equal(w Value) bool {
	if v.kind == KindNull || w.kind == KindNull {
		return false
	}
	return v.Identical(w)
}

// Identical implements set-membership equality: nulls are identical to each
// other, and non-null values are identical iff they have the same kind and
// payload. This is the equality used for tuple deduplication and for the
// "all nulls are identical" key-maintenance behaviour of section 5.1.
func (v Value) Identical(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.s == w.s
	case KindInt:
		return v.i == w.i
	case KindFloat:
		return v.f == w.f || (math.IsNaN(v.f) && math.IsNaN(w.f))
	case KindBool:
		return v.b == w.b
	default:
		return false
	}
}

// Compare imposes a total order used for canonical relation rendering:
// null < bool < int < float < string, with payload order within a kind.
// Mixed int/float values are ordered by kind, not numerically, because
// attribute domains never mix kinds in a well-formed database state.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		return int(kindRank(v.kind)) - int(kindRank(w.kind))
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return boolCompare(v.b, w.b)
	case KindInt:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case v.f < w.f:
			return -1
		case v.f > w.f:
			return 1
		case v.f == w.f:
			return 0
		}
		// NaN ordering: NaN sorts before all numbers, NaN == NaN.
		vn, wn := math.IsNaN(v.f), math.IsNaN(w.f)
		switch {
		case vn && wn:
			return 0
		case vn:
			return -1
		default:
			return 1
		}
	case KindString:
		return strings.Compare(v.s, w.s)
	default:
		return 0
	}
}

func kindRank(k Kind) uint8 {
	switch k {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt:
		return 2
	case KindFloat:
		return 3
	case KindString:
		return 4
	default:
		return 5
	}
}

func boolCompare(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

// String renders the value for display; null renders as "⊥".
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "⊥"
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "?"
	}
}

// appendEncoded appends an injective byte encoding of the value, used for
// hashing tuples under set semantics (so all nulls encode identically).
func (v Value) appendEncoded(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindString:
		dst = append(dst, strconv.Itoa(len(v.s))...)
		dst = append(dst, ':')
		dst = append(dst, v.s...)
	case KindInt:
		dst = strconv.AppendInt(dst, v.i, 10)
		dst = append(dst, ';')
	case KindFloat:
		dst = strconv.AppendUint(dst, math.Float64bits(v.f), 16)
		dst = append(dst, ';')
	case KindBool:
		if v.b {
			dst = append(dst, '1')
		} else {
			dst = append(dst, '0')
		}
	}
	return dst
}
