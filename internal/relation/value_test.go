package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		null bool
		str  string
	}{
		{Null(), KindNull, true, "⊥"},
		{NewString("abc"), KindString, false, "abc"},
		{NewInt(-42), KindInt, false, "-42"},
		{NewFloat(2.5), KindFloat, false, "2.5"},
		{NewBool(true), KindBool, false, "true"},
		{NewBool(false), KindBool, false, "false"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.IsNull() != c.null {
			t.Errorf("%v: IsNull = %v, want %v", c.v, c.v.IsNull(), c.null)
		}
		if c.v.String() != c.str {
			t.Errorf("String = %q, want %q", c.v.String(), c.str)
		}
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value should be null")
	}
}

func TestValueAccessors(t *testing.T) {
	if NewString("x").AsString() != "x" {
		t.Error("AsString")
	}
	if NewInt(7).AsInt() != 7 {
		t.Error("AsInt")
	}
	if NewFloat(1.5).AsFloat() != 1.5 {
		t.Error("AsFloat")
	}
	if !NewBool(true).AsBool() {
		t.Error("AsBool")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AsInt on a string should panic")
		}
	}()
	NewString("x").AsInt()
}

func TestEqualJoinSemantics(t *testing.T) {
	// Null equals nothing, including null.
	if Null().Equal(Null()) {
		t.Error("null Equal null should be false (join semantics)")
	}
	if Null().Equal(NewInt(1)) || NewInt(1).Equal(Null()) {
		t.Error("null Equal non-null should be false")
	}
	if !NewInt(1).Equal(NewInt(1)) {
		t.Error("1 Equal 1 should be true")
	}
	if NewInt(1).Equal(NewInt(2)) {
		t.Error("1 Equal 2 should be false")
	}
	if NewInt(1).Equal(NewString("1")) {
		t.Error("cross-kind Equal should be false")
	}
}

func TestIdenticalSetSemantics(t *testing.T) {
	if !Null().Identical(Null()) {
		t.Error("null Identical null should be true (set semantics)")
	}
	if Null().Identical(NewInt(0)) {
		t.Error("null Identical 0 should be false")
	}
	if !NewString("a").Identical(NewString("a")) {
		t.Error("identical strings")
	}
	if NewFloat(1).Identical(NewInt(1)) {
		t.Error("cross-kind Identical should be false")
	}
	nan := NewFloat(math.NaN())
	if !nan.Identical(NewFloat(math.NaN())) {
		t.Error("NaN should be Identical to NaN for set semantics")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	ordered := []Value{
		Null(),
		NewBool(false), NewBool(true),
		NewInt(-1), NewInt(0), NewInt(5),
		NewFloat(math.NaN()), NewFloat(-2.5), NewFloat(3.5),
		NewString(""), NewString("a"), NewString("b"),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%v, %v) = %d, want < 0", ordered[i], ordered[j], got)
			case i > j && got <= 0:
				t.Errorf("Compare(%v, %v) = %d, want > 0", ordered[i], ordered[j], got)
			case i == j && got != 0:
				t.Errorf("Compare(%v, %v) = %d, want 0", ordered[i], ordered[j], got)
			}
		}
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return NewInt(a).Compare(NewInt(b)) == -NewInt(b).Compare(NewInt(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return NewString(a).Compare(NewString(b)) == -NewString(b).Compare(NewString(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodingInjectiveProperty(t *testing.T) {
	// Distinct values encode distinctly; identical values encode identically.
	f := func(a, b string) bool {
		ea := string(NewString(a).appendEncoded(nil))
		eb := string(NewString(b).appendEncoded(nil))
		return (a == b) == (ea == eb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b int64) bool {
		ea := string(NewInt(a).appendEncoded(nil))
		eb := string(NewInt(b).appendEncoded(nil))
		return (a == b) == (ea == eb)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodingCrossKindDistinct(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(1), NewString("1")},
		{NewInt(0), NewBool(false)},
		{NewFloat(0), NewInt(0)},
		{Null(), NewString("")},
	}
	for _, p := range pairs {
		a := string(p[0].appendEncoded(nil))
		b := string(p[1].appendEncoded(nil))
		if a == b {
			t.Errorf("%v and %v encode identically (%q)", p[0], p[1], a)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindNull.String() != "null" || KindString.String() != "string" ||
		KindInt.String() != "int" || KindFloat.String() != "float" ||
		KindBool.String() != "bool" {
		t.Error("Kind.String mismatch")
	}
	if Kind(99).String() != "kind(99)" {
		t.Error("unknown kind String")
	}
}
