package relation

import "fmt"

// Project returns π_W(r): the projection of r onto the named attributes, in
// the given order, with duplicate result tuples removed.
func (r *Relation) Project(attrs []string) *Relation {
	ps := r.Positions(attrs)
	out := New(attrs...)
	for _, t := range r.tuples {
		out.Add(t.Project(ps))
	}
	return out
}

// TotalProject returns π↓_W(r): the subset of total tuples of the projection
// of r onto W (Definition in section 2 of the paper). This is the operator
// the inverse state mappings η′ and μ′ are built from.
func (r *Relation) TotalProject(attrs []string) *Relation {
	ps := r.Positions(attrs)
	out := New(attrs...)
	for _, t := range r.tuples {
		sub := t.Project(ps)
		if sub.IsTotal() {
			out.Add(sub)
		}
	}
	return out
}

// Rename returns rename(r; W ← Y): the relation equal to r with the
// attributes of W renamed, position-wise, to the attributes of Y. W and Y
// must have equal length and every attribute of W must occur in r.
func (r *Relation) Rename(from, to []string) *Relation {
	if len(from) != len(to) {
		panic(fmt.Sprintf("relation: rename arity mismatch %d vs %d", len(from), len(to)))
	}
	mapping := make(map[string]string, len(from))
	for i := range from {
		if !r.Has(from[i]) {
			panic(fmt.Sprintf("relation: rename of unknown attribute %q", from[i]))
		}
		mapping[from[i]] = to[i]
	}
	attrs := make([]string, len(r.attrs))
	for i, a := range r.attrs {
		if n, ok := mapping[a]; ok {
			attrs[i] = n
		} else {
			attrs[i] = a
		}
	}
	out := New(attrs...)
	for _, t := range r.tuples {
		out.Add(t)
	}
	return out
}

// Select returns σ_pred(r): the tuples of r satisfying the predicate.
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := New(r.attrs...)
	for _, t := range r.tuples {
		if pred(t) {
			out.Add(t)
		}
	}
	return out
}

// Union returns r ∪ s. The relations must have identical attribute lists.
func (r *Relation) Union(s *Relation) *Relation {
	r.mustMatch(s)
	out := r.Clone()
	for _, t := range s.tuples {
		out.Add(t)
	}
	return out
}

// Difference returns r − s. The relations must have identical attribute lists.
func (r *Relation) Difference(s *Relation) *Relation {
	r.mustMatch(s)
	out := New(r.attrs...)
	for _, t := range r.tuples {
		if !s.Contains(t) {
			out.Add(t)
		}
	}
	return out
}

// Intersect returns r ∩ s. The relations must have identical attribute lists.
func (r *Relation) Intersect(s *Relation) *Relation {
	r.mustMatch(s)
	out := New(r.attrs...)
	for _, t := range r.tuples {
		if s.Contains(t) {
			out.Add(t)
		}
	}
	return out
}

func (r *Relation) mustMatch(s *Relation) {
	if len(r.attrs) != len(s.attrs) {
		panic("relation: attribute lists differ in arity")
	}
	for i := range r.attrs {
		if r.attrs[i] != s.attrs[i] {
			panic(fmt.Sprintf("relation: attribute lists differ: %v vs %v", r.attrs, s.attrs))
		}
	}
}

// JoinSpec names the join columns: left[i] is equated with right[i].
type JoinSpec struct {
	Left  []string
	Right []string
}

// EquiJoin returns the equi-join of r and s on the spec: the set of tuples t
// over attrs(r) ++ attrs(s) with t[attrs(r)] ∈ r, t[attrs(s)] ∈ s, and
// t[Left] = t[Right], where the equality is join equality (nulls match
// nothing). Attribute lists must be disjoint, which holds for the globally
// unique names of the paper's schemas.
func (r *Relation) EquiJoin(s *Relation, on JoinSpec) *Relation {
	checkSpec(on)
	out := New(joinAttrs(r, s)...)
	lp := r.Positions(on.Left)
	rp := s.Positions(on.Right)
	index := buildJoinIndex(s, rp)
	for _, lt := range r.tuples {
		key, ok := joinKey(lt, lp)
		if !ok {
			continue
		}
		for _, rt := range index[key] {
			out.Add(concatTuples(lt, rt))
		}
	}
	return out
}

// OuterEquiJoin returns the outer-equi-join of r and s on the spec, exactly
// as defined in section 2 of the paper: the union of
//
//	r1 = the equi-join of r and s;
//	r2 = tuples with a null^|attrs(r)| left part for each s-tuple with no
//	     join partner in r;
//	r3 = tuples with a null^|attrs(s)| right part for each r-tuple with no
//	     join partner in s.
//
// Note that an s-tuple whose join columns contain a null has no partner by
// definition (null matches nothing) and therefore lands in r2; symmetrically
// for r-tuples and r3.
func (r *Relation) OuterEquiJoin(s *Relation, on JoinSpec) *Relation {
	checkSpec(on)
	out := New(joinAttrs(r, s)...)
	lp := r.Positions(on.Left)
	rp := s.Positions(on.Right)
	index := buildJoinIndex(s, rp)
	matchedRight := make(map[string]bool)

	for _, lt := range r.tuples {
		matched := false
		if key, ok := joinKey(lt, lp); ok {
			for _, rt := range index[key] {
				out.Add(concatTuples(lt, rt))
				matchedRight[rt.EncodeKey()] = true
				matched = true
			}
		}
		if !matched { // r3
			out.Add(concatTuples(lt, NullTuple(len(s.attrs))))
		}
	}
	for _, rt := range s.tuples { // r2
		if !matchedRight[rt.EncodeKey()] {
			out.Add(concatTuples(NullTuple(len(r.attrs)), rt))
		}
	}
	return out
}

func checkSpec(on JoinSpec) {
	if len(on.Left) != len(on.Right) {
		panic(fmt.Sprintf("relation: join spec arity mismatch %d vs %d", len(on.Left), len(on.Right)))
	}
	if len(on.Left) == 0 {
		panic("relation: empty join spec")
	}
}

func joinAttrs(r, s *Relation) []string {
	attrs := make([]string, 0, len(r.attrs)+len(s.attrs))
	attrs = append(attrs, r.attrs...)
	for _, a := range s.attrs {
		if r.Has(a) {
			panic(fmt.Sprintf("relation: join attribute lists overlap on %q", a))
		}
		attrs = append(attrs, a)
	}
	return attrs
}

// joinKey encodes the join columns of t; ok is false if any column is null
// (such a tuple matches nothing under join equality).
func joinKey(t Tuple, ps []int) (string, bool) {
	sub := t.Project(ps)
	for _, v := range sub {
		if v.IsNull() {
			return "", false
		}
	}
	return sub.EncodeKey(), true
}

func buildJoinIndex(s *Relation, ps []int) map[string][]Tuple {
	index := make(map[string][]Tuple, s.Len())
	for _, t := range s.tuples {
		if key, ok := joinKey(t, ps); ok {
			index[key] = append(index[key], t)
		}
	}
	return index
}

func concatTuples(a, b Tuple) Tuple {
	t := make(Tuple, 0, len(a)+len(b))
	t = append(t, a...)
	t = append(t, b...)
	return t
}
