package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is an in-memory relation: a set of tuples over an ordered list of
// attribute names. Attribute names must be unique within a relation; in
// schemas produced by the merging technique they are globally unique
// qualified names such as "O.C.NR".
//
// Relations have set semantics: Add deduplicates under Identical equality
// (all nulls identical), matching the paper's model where a relation is a set
// of tuples.
type Relation struct {
	attrs  []string
	pos    map[string]int
	tuples []Tuple
	seen   map[string]int // tuple encoding -> index in tuples
}

// New returns an empty relation over the given attribute list. It panics if
// the attribute list contains duplicates, because downstream algebra assumes
// positional lookup by name is unambiguous.
func New(attrs ...string) *Relation {
	r := &Relation{
		attrs: append([]string(nil), attrs...),
		pos:   make(map[string]int, len(attrs)),
		seen:  make(map[string]int),
	}
	for i, a := range r.attrs {
		if _, dup := r.pos[a]; dup {
			panic(fmt.Sprintf("relation: duplicate attribute %q", a))
		}
		r.pos[a] = i
	}
	return r
}

// FromTuples builds a relation over attrs containing the given tuples.
func FromTuples(attrs []string, tuples ...Tuple) *Relation {
	r := New(attrs...)
	for _, t := range tuples {
		r.Add(t)
	}
	return r
}

// Attrs returns the attribute list (do not mutate).
func (r *Relation) Attrs() []string { return r.attrs }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.attrs) }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the tuple slice (do not mutate tuples in place).
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Position returns the index of the named attribute, or -1 if absent.
func (r *Relation) Position(attr string) int {
	if p, ok := r.pos[attr]; ok {
		return p
	}
	return -1
}

// Positions resolves a list of attribute names to positions. It panics on an
// unknown attribute: callers validate attribute sets against schemas first,
// so an unknown name here is a programming error.
func (r *Relation) Positions(attrs []string) []int {
	ps := make([]int, len(attrs))
	for i, a := range attrs {
		p, ok := r.pos[a]
		if !ok {
			panic(fmt.Sprintf("relation: unknown attribute %q (have %v)", a, r.attrs))
		}
		ps[i] = p
	}
	return ps
}

// Has reports whether the relation names the attribute.
func (r *Relation) Has(attr string) bool {
	_, ok := r.pos[attr]
	return ok
}

// Add inserts a tuple (set semantics). It reports whether the tuple was new.
// It panics on an arity mismatch.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != len(r.attrs) {
		panic(fmt.Sprintf("relation: tuple arity %d does not match relation arity %d", len(t), len(r.attrs)))
	}
	key := t.EncodeKey()
	if _, dup := r.seen[key]; dup {
		return false
	}
	r.seen[key] = len(r.tuples)
	r.tuples = append(r.tuples, t)
	return true
}

// Contains reports whether the relation contains a tuple identical to t.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != len(r.attrs) {
		return false
	}
	_, ok := r.seen[t.EncodeKey()]
	return ok
}

// Remove deletes the tuple identical to t, reporting whether it was present.
func (r *Relation) Remove(t Tuple) bool {
	key := t.EncodeKey()
	i, ok := r.seen[key]
	if !ok {
		return false
	}
	last := len(r.tuples) - 1
	if i != last {
		moved := r.tuples[last]
		r.tuples[i] = moved
		r.seen[moved.EncodeKey()] = i
	}
	r.tuples = r.tuples[:last]
	delete(r.seen, key)
	return true
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := New(r.attrs...)
	for _, t := range r.tuples {
		c.Add(t.Clone())
	}
	return c
}

// Equal reports set equality with s: same attribute list (order-sensitive)
// and the same set of tuples.
func (r *Relation) Equal(s *Relation) bool {
	if len(r.attrs) != len(s.attrs) || len(r.tuples) != len(s.tuples) {
		return false
	}
	for i := range r.attrs {
		if r.attrs[i] != s.attrs[i] {
			return false
		}
	}
	for key := range r.seen {
		if _, ok := s.seen[key]; !ok {
			return false
		}
	}
	return true
}

// EqualUpToOrder reports whether r and s contain the same tuples when s's
// attributes are reordered to match r's. Returns false if the attribute sets
// differ.
func (r *Relation) EqualUpToOrder(s *Relation) bool {
	if len(r.attrs) != len(s.attrs) || len(r.tuples) != len(s.tuples) {
		return false
	}
	for _, a := range r.attrs {
		if !s.Has(a) {
			return false
		}
	}
	reordered := s.Project(r.attrs)
	return r.Equal(reordered)
}

// Sorted returns the tuples in canonical order (for deterministic output).
func (r *Relation) Sorted() []Tuple {
	out := make([]Tuple, len(r.tuples))
	copy(out, r.tuples)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// String renders the relation as a small table, tuples in canonical order.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString("(")
	b.WriteString(strings.Join(r.attrs, ", "))
	b.WriteString(")")
	for _, t := range r.Sorted() {
		b.WriteString("\n  ")
		b.WriteString(t.String())
	}
	return b.String()
}
