package relation

import (
	"testing"
)

func TestTupleTotality(t *testing.T) {
	total := Tuple{NewInt(1), NewString("a")}
	partial := Tuple{NewInt(1), Null()}
	allNull := Tuple{Null(), Null()}
	empty := Tuple{}

	if !total.IsTotal() || total.IsAllNull() {
		t.Error("total tuple misclassified")
	}
	if partial.IsTotal() || partial.IsAllNull() {
		t.Error("partial tuple misclassified")
	}
	if allNull.IsTotal() || !allNull.IsAllNull() {
		t.Error("all-null tuple misclassified")
	}
	if !empty.IsTotal() || !empty.IsAllNull() {
		t.Error("empty tuple should be vacuously total and all-null")
	}
}

func TestTupleIdentical(t *testing.T) {
	a := Tuple{NewInt(1), Null()}
	b := Tuple{NewInt(1), Null()}
	c := Tuple{NewInt(1), NewInt(2)}
	if !a.Identical(b) {
		t.Error("tuples with matching nulls should be identical")
	}
	if a.Identical(c) {
		t.Error("differing tuples should not be identical")
	}
	if a.Identical(Tuple{NewInt(1)}) {
		t.Error("differing arity should not be identical")
	}
}

func TestTupleEqualTotal(t *testing.T) {
	a := Tuple{NewInt(1), NewString("x")}
	if !a.EqualTotal(Tuple{NewInt(1), NewString("x")}) {
		t.Error("total equal tuples")
	}
	if a.EqualTotal(Tuple{NewInt(1), Null()}) {
		t.Error("null component breaks EqualTotal")
	}
	withNull := Tuple{Null()}
	if withNull.EqualTotal(Tuple{Null()}) {
		t.Error("null vs null is not EqualTotal")
	}
}

func TestTupleProject(t *testing.T) {
	tp := Tuple{NewInt(1), NewInt(2), NewInt(3)}
	got := tp.Project([]int{2, 0})
	want := Tuple{NewInt(3), NewInt(1)}
	if !got.Identical(want) {
		t.Errorf("Project = %v, want %v", got, want)
	}
}

func TestTupleCompare(t *testing.T) {
	a := Tuple{NewInt(1), NewInt(2)}
	b := Tuple{NewInt(1), NewInt(3)}
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Error("Compare order wrong")
	}
	short := Tuple{NewInt(1)}
	if short.Compare(a) >= 0 {
		t.Error("shorter prefix should sort first")
	}
}

func TestNullTuple(t *testing.T) {
	nt := NullTuple(3)
	if len(nt) != 3 || !nt.IsAllNull() {
		t.Errorf("NullTuple(3) = %v", nt)
	}
}

func TestTupleClone(t *testing.T) {
	a := Tuple{NewInt(1)}
	c := a.Clone()
	c[0] = NewInt(9)
	if a[0].AsInt() != 1 {
		t.Error("Clone should be independent")
	}
}

func TestTupleString(t *testing.T) {
	got := Tuple{NewInt(1), Null()}.String()
	if got != "⟨1, ⊥⟩" {
		t.Errorf("String = %q", got)
	}
}

func TestEncodeKeyDistinguishesArityAndPosition(t *testing.T) {
	a := Tuple{NewString("ab"), NewString("c")}
	b := Tuple{NewString("a"), NewString("bc")}
	if a.EncodeKey() == b.EncodeKey() {
		t.Error("encoding must be injective across value boundaries")
	}
	if (Tuple{Null()}).EncodeKey() != (Tuple{Null()}).EncodeKey() {
		t.Error("all nulls must encode identically")
	}
}
