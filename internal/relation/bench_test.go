package relation

import (
	"fmt"
	"testing"
)

func buildPair(n int) (*Relation, *Relation) {
	l := New("A", "B")
	r := New("C", "D")
	for i := 0; i < n; i++ {
		l.Add(Tuple{NewInt(int64(i)), NewInt(int64(i * 10))})
		if i%2 == 0 {
			r.Add(Tuple{NewInt(int64(i)), NewInt(int64(i * 100))})
		} else {
			r.Add(Tuple{NewInt(int64(i + n)), NewInt(int64(i * 100))})
		}
	}
	return l, r
}

func BenchmarkAdd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := New("A", "B")
		for j := 0; j < 100; j++ {
			r.Add(Tuple{NewInt(int64(j)), NewInt(int64(j))})
		}
	}
}

func BenchmarkEquiJoin(b *testing.B) {
	for _, n := range []int{100, 1000} {
		l, r := buildPair(n)
		spec := JoinSpec{Left: []string{"A"}, Right: []string{"C"}}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l.EquiJoin(r, spec)
			}
		})
	}
}

func BenchmarkOuterEquiJoin(b *testing.B) {
	for _, n := range []int{100, 1000} {
		l, r := buildPair(n)
		spec := JoinSpec{Left: []string{"A"}, Right: []string{"C"}}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l.OuterEquiJoin(r, spec)
			}
		})
	}
}

func BenchmarkTotalProject(b *testing.B) {
	r := New("A", "B", "C")
	for i := 0; i < 1000; i++ {
		t := Tuple{NewInt(int64(i)), NewInt(int64(i)), NewInt(int64(i))}
		if i%3 == 0 {
			t[1] = Null()
		}
		r.Add(t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.TotalProject([]string{"A", "B"})
	}
}

func BenchmarkEncodeKey(b *testing.B) {
	t := Tuple{NewInt(42), NewString("course-17"), Null(), NewFloat(2.5)}
	for i := 0; i < b.N; i++ {
		_ = t.EncodeKey()
	}
}
