package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProject(t *testing.T) {
	r := FromTuples([]string{"A", "B", "C"},
		ints(1, 2, 3), ints(1, 2, 4), ints(5, 6, 7))
	p := r.Project([]string{"A", "B"})
	want := FromTuples([]string{"A", "B"}, ints(1, 2), ints(5, 6))
	if !p.Equal(want) {
		t.Errorf("Project = %v, want %v", p, want)
	}
}

func TestTotalProject(t *testing.T) {
	r := New("A", "B")
	r.Add(Tuple{NewInt(1), NewInt(2)})
	r.Add(Tuple{NewInt(3), Null()})
	r.Add(Tuple{Null(), Null()})

	tp := r.TotalProject([]string{"A", "B"})
	if tp.Len() != 1 || !tp.Contains(ints(1, 2)) {
		t.Errorf("TotalProject over all attrs = %v", tp)
	}
	// Projecting onto A keeps the (3, ⊥) tuple's A but drops the all-null one.
	ta := r.TotalProject([]string{"A"})
	want := FromTuples([]string{"A"}, ints(1), ints(3))
	if !ta.Equal(want) {
		t.Errorf("TotalProject(A) = %v, want %v", ta, want)
	}
}

func TestRename(t *testing.T) {
	r := FromTuples([]string{"A", "B"}, ints(1, 2))
	rn := r.Rename([]string{"A"}, []string{"X"})
	if rn.Attrs()[0] != "X" || rn.Attrs()[1] != "B" {
		t.Errorf("Rename attrs = %v", rn.Attrs())
	}
	if !rn.Contains(ints(1, 2)) {
		t.Error("Rename should preserve tuples")
	}
	// Original untouched.
	if r.Attrs()[0] != "A" {
		t.Error("Rename must not mutate the receiver")
	}
}

func TestRenamePanics(t *testing.T) {
	r := New("A")
	if !panics(func() { r.Rename([]string{"Z"}, []string{"X"}) }) {
		t.Error("renaming unknown attribute should panic")
	}
	if !panics(func() { r.Rename([]string{"A"}, []string{"X", "Y"}) }) {
		t.Error("arity mismatch should panic")
	}
}

func TestSelect(t *testing.T) {
	r := FromTuples([]string{"A"}, ints(1), ints(2), ints(3))
	got := r.Select(func(tp Tuple) bool { return tp[0].AsInt() >= 2 })
	want := FromTuples([]string{"A"}, ints(2), ints(3))
	if !got.Equal(want) {
		t.Errorf("Select = %v", got)
	}
}

func TestUnionDifferenceIntersect(t *testing.T) {
	a := FromTuples([]string{"A"}, ints(1), ints(2))
	b := FromTuples([]string{"A"}, ints(2), ints(3))
	if u := a.Union(b); u.Len() != 3 {
		t.Errorf("Union = %v", u)
	}
	if d := a.Difference(b); !d.Equal(FromTuples([]string{"A"}, ints(1))) {
		t.Errorf("Difference = %v", d)
	}
	if x := a.Intersect(b); !x.Equal(FromTuples([]string{"A"}, ints(2))) {
		t.Errorf("Intersect = %v", x)
	}
	if !panics(func() { a.Union(FromTuples([]string{"B"}, ints(1))) }) {
		t.Error("Union with mismatched attrs should panic")
	}
}

func TestEquiJoin(t *testing.T) {
	// The paper's figure 2 shapes: TEACH(T.CN, T.FN) ⋈ OFFER(O.CN, O.DN).
	teach := FromTuples([]string{"T.CN", "T.FN"},
		strs("c1", "smith"), strs("c2", "jones"))
	offer := FromTuples([]string{"O.CN", "O.DN"},
		strs("c1", "math"), strs("c3", "cs"))
	j := teach.EquiJoin(offer, JoinSpec{Left: []string{"T.CN"}, Right: []string{"O.CN"}})
	want := FromTuples([]string{"T.CN", "T.FN", "O.CN", "O.DN"},
		strs("c1", "smith", "c1", "math"))
	if !j.Equal(want) {
		t.Errorf("EquiJoin = %v, want %v", j, want)
	}
}

func TestEquiJoinNullsNeverMatch(t *testing.T) {
	l := New("A", "B")
	l.Add(Tuple{Null(), NewInt(1)})
	r := New("C", "D")
	r.Add(Tuple{Null(), NewInt(2)})
	j := l.EquiJoin(r, JoinSpec{Left: []string{"A"}, Right: []string{"C"}})
	if j.Len() != 0 {
		t.Errorf("null join keys must not match, got %v", j)
	}
}

func TestOuterEquiJoinThreeParts(t *testing.T) {
	// r has keys {1, 2}; s has keys {2, 3}. Expect: one matched tuple,
	// one r3 tuple (r key 1 with null right part), one r2 tuple (s key 3
	// with null left part).
	r := FromTuples([]string{"A", "B"}, ints(1, 10), ints(2, 20))
	s := FromTuples([]string{"C", "D"}, ints(2, 200), ints(3, 300))
	j := r.OuterEquiJoin(s, JoinSpec{Left: []string{"A"}, Right: []string{"C"}})

	want := New("A", "B", "C", "D")
	want.Add(Tuple{NewInt(2), NewInt(20), NewInt(2), NewInt(200)}) // r1
	want.Add(Tuple{NewInt(1), NewInt(10), Null(), Null()})         // r3
	want.Add(Tuple{Null(), Null(), NewInt(3), NewInt(300)})        // r2
	if !j.Equal(want) {
		t.Errorf("OuterEquiJoin = %v, want %v", j, want)
	}
}

func TestOuterEquiJoinNullKeysGoUnmatched(t *testing.T) {
	r := New("A", "B")
	r.Add(Tuple{Null(), NewInt(1)})
	s := New("C", "D")
	s.Add(Tuple{Null(), NewInt(2)})
	j := r.OuterEquiJoin(s, JoinSpec{Left: []string{"A"}, Right: []string{"C"}})
	// Both tuples are unmatched: one r3 and one r2.
	want := New("A", "B", "C", "D")
	want.Add(Tuple{Null(), NewInt(1), Null(), Null()})
	want.Add(Tuple{Null(), Null(), Null(), NewInt(2)})
	if !j.Equal(want) {
		t.Errorf("OuterEquiJoin = %v, want %v", j, want)
	}
}

func TestOuterEquiJoinEmptySides(t *testing.T) {
	r := FromTuples([]string{"A"}, ints(1))
	empty := New("B")
	j := r.OuterEquiJoin(empty, JoinSpec{Left: []string{"A"}, Right: []string{"B"}})
	want := New("A", "B")
	want.Add(Tuple{NewInt(1), Null()})
	if !j.Equal(want) {
		t.Errorf("outer join with empty right = %v", j)
	}
	j2 := empty.OuterEquiJoin(r.Rename([]string{"A"}, []string{"C"}), JoinSpec{Left: []string{"B"}, Right: []string{"C"}})
	want2 := New("B", "C")
	want2.Add(Tuple{Null(), NewInt(1)})
	if !j2.Equal(want2) {
		t.Errorf("outer join with empty left = %v", j2)
	}
}

func TestJoinAttributeOverlapPanics(t *testing.T) {
	a := New("A", "B")
	b := New("B", "C")
	if !panics(func() { a.EquiJoin(b, JoinSpec{Left: []string{"A"}, Right: []string{"C"}}) }) {
		t.Error("overlapping attribute names should panic")
	}
	if !panics(func() { a.EquiJoin(New("C"), JoinSpec{Left: []string{"A", "B"}, Right: []string{"C"}}) }) {
		t.Error("spec arity mismatch should panic")
	}
	if !panics(func() { a.EquiJoin(New("C"), JoinSpec{}) }) {
		t.Error("empty spec should panic")
	}
}

// Property: for relations without nulls in the join columns, the outer join
// restricted to total tuples equals the inner join (r2/r3 carry nulls).
func TestOuterJoinTotalPartIsInnerJoinProperty(t *testing.T) {
	f := func(ls, rs []uint8) bool {
		l := New("A", "B")
		for i, v := range ls {
			l.Add(ints(int64(v%8), int64(i)))
		}
		r := New("C", "D")
		for i, v := range rs {
			r.Add(ints(int64(v%8), int64(100+i)))
		}
		spec := JoinSpec{Left: []string{"A"}, Right: []string{"C"}}
		outer := l.OuterEquiJoin(r, spec)
		inner := l.EquiJoin(r, spec)
		totals := outer.Select(func(tp Tuple) bool { return tp.IsTotal() })
		return totals.Equal(inner)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every tuple of l is recoverable from the outer join by total
// projection onto l's attributes — the informal information-preservation
// argument behind the paper's η/η′ mappings.
func TestOuterJoinPreservesLeftProperty(t *testing.T) {
	f := func(ls, rs []uint8) bool {
		l := New("A", "B")
		for i, v := range ls {
			l.Add(ints(int64(v%8), int64(i)))
		}
		r := New("C", "D")
		for i, v := range rs {
			r.Add(ints(int64(v%8), int64(100+i)))
		}
		spec := JoinSpec{Left: []string{"A"}, Right: []string{"C"}}
		outer := l.OuterEquiJoin(r, spec)
		back := outer.TotalProject([]string{"A", "B"})
		return back.Equal(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: projection is idempotent and order-insensitive wrt duplicates.
func TestProjectIdempotentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		r := New("A", "B", "C")
		for i := 0; i < rng.Intn(30); i++ {
			r.Add(ints(int64(rng.Intn(5)), int64(rng.Intn(5)), int64(rng.Intn(5))))
		}
		p1 := r.Project([]string{"B", "A"})
		p2 := p1.Project([]string{"B", "A"})
		if !p1.Equal(p2) {
			t.Fatalf("projection not idempotent: %v vs %v", p1, p2)
		}
	}
}

func panics(f func()) (did bool) {
	defer func() { did = recover() != nil }()
	f()
	return
}
