package relation

import "strings"

// Tuple is an ordered list of values, positionally aligned with the attribute
// list of the relation that holds it. Tuples are treated as immutable once
// added to a relation; Clone before mutating.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// IsTotal reports whether the tuple has only non-null values (the paper's
// "total" tuples).
func (t Tuple) IsTotal() bool {
	for _, v := range t {
		if v.IsNull() {
			return false
		}
	}
	return true
}

// IsAllNull reports whether every value in the tuple is null. By convention
// the empty tuple is all-null (and also total).
func (t Tuple) IsAllNull() bool {
	for _, v := range t {
		if !v.IsNull() {
			return false
		}
	}
	return true
}

// Identical reports component-wise identity (nulls identical to nulls).
func (t Tuple) Identical(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Identical(u[i]) {
			return false
		}
	}
	return true
}

// EqualTotal reports component-wise join equality: every pair of components
// must be non-null and equal. Used for total-equality constraint checking.
func (t Tuple) EqualTotal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare imposes a total order on equal-length tuples, component-wise.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	return len(t) - len(u)
}

// Project returns the subtuple at the given positions.
func (t Tuple) Project(positions []int) Tuple {
	sub := make(Tuple, len(positions))
	for i, p := range positions {
		sub[i] = t[p]
	}
	return sub
}

// NullTuple returns a tuple of k null values (the paper's null^k).
func NullTuple(k int) Tuple {
	return make(Tuple, k)
}

// String renders the tuple as ⟨v1, v2, …⟩.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteString("⟨")
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteString("⟩")
	return b.String()
}

// encode appends an injective encoding of the tuple for set membership.
func (t Tuple) encode(dst []byte) []byte {
	for _, v := range t {
		dst = v.appendEncoded(dst)
		dst = append(dst, '|')
	}
	return dst
}

// EncodeKey returns the string encoding of the tuple, suitable as a map key.
// All-null tuples of the same arity encode identically.
func (t Tuple) EncodeKey() string {
	return string(t.encode(make([]byte, 0, 16*len(t))))
}
