// Package repl implements WAL-shipping replication: a Follower tails a
// primary relmerged server's committed log over the v2 replication opcodes
// (repl_subscribe / repl_fetch / repl_heartbeat), ingests the shipped records
// into its own durable engine (internal/engine.IngestReplicated — the local
// log's gap/duplicate validation makes a holed stream unservable rather than
// silently wrong), and serves lock-free read-only sessions pinned at its
// applied-LSN horizon. After primary death the follower can be promoted: the
// poll loop stops and the engine starts accepting writes, continuing the
// primary's LSN sequence from exactly the acked prefix its log holds.
package repl

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/wal"
)

// Metric names of the repl package, labeled repl=<name>.
const (
	metricLagRecords   = "repl.lag_records"
	metricLagSeconds   = "repl.lag_seconds"
	metricShippedBytes = "repl.shipped_bytes"
	metricFetches      = "repl.fetches"
	metricFetchErrors  = "repl.fetch_errors"
)

// Options tunes a Follower.
type Options struct {
	// PollInterval is the fetch cadence when caught up (default 25ms). While
	// behind, the follower fetches continuously without sleeping.
	PollInterval time.Duration
	// MaxRecords caps one fetch chunk (default 1024), bounding frame sizes.
	MaxRecords int
	// Client configures the connection pool to the primary.
	Client server.ClientOptions
	// Registry receives the lag/throughput metrics (nil: none recorded).
	Registry *obs.Registry
	// Name labels this follower's metric series (default "follower").
	Name string
}

func (o Options) withDefaults() Options {
	if o.PollInterval <= 0 {
		o.PollInterval = 25 * time.Millisecond
	}
	if o.MaxRecords <= 0 {
		o.MaxRecords = 1024
	}
	if o.Name == "" {
		o.Name = "follower"
	}
	return o
}

type replMetrics struct {
	lagRecords   *obs.Gauge
	lagSeconds   *obs.Gauge
	shippedBytes *obs.Counter
	fetches      *obs.Counter
	fetchErrors  *obs.Counter
}

func newReplMetrics(r *obs.Registry, name string) *replMetrics {
	lbl := obs.L("repl", name)
	return &replMetrics{
		lagRecords:   r.Gauge(metricLagRecords, lbl),
		lagSeconds:   r.Gauge(metricLagSeconds, lbl),
		shippedBytes: r.Counter(metricShippedBytes, lbl),
		fetches:      r.Counter(metricFetches, lbl),
		fetchErrors:  r.Counter(metricFetchErrors, lbl),
	}
}

// Info is a point-in-time view of a follower's replication state.
type Info struct {
	// PrimaryAddr is the primary server this follower ships from.
	PrimaryAddr string
	// AppliedLSN is the follower's durable (and served) log position.
	AppliedLSN uint64
	// CommitLSN is the primary's commit horizon at the last successful
	// exchange; AppliedLSN trails it by the shipping lag.
	CommitLSN uint64
	// LagRecords is max(CommitLSN-AppliedLSN, 0) at the last exchange.
	LagRecords uint64
	// LagSeconds is how long the follower has been behind the horizon
	// (zero when caught up).
	LagSeconds float64
	// LastContact is when the primary last answered; the zero value means
	// never.
	LastContact time.Time
	// Promoted reports whether Promote was called: the follower stopped
	// shipping and accepts writes.
	Promoted bool
	// Err is the sticky ingest failure that broke replication ("" = healthy).
	// A broken follower refuses reads: serving a known-holed state would be
	// silent data loss at one remove.
	Err string
}

// Follower tails one primary and applies its log to a local durable engine.
type Follower struct {
	db   *engine.DB
	cl   *server.Client
	opt  Options
	addr string
	m    *replMetrics

	mu           sync.Mutex
	horizon      uint64
	lastContact  time.Time
	behindSince  time.Time // zero when caught up
	broken       error     // sticky: gap/corrupt ingest; reads refuse
	promoted     bool
	lastFetchErr error // transient: primary unreachable; reads keep serving

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// Open connects db (which must be durable: the local log IS the replica
// state) to the primary at addr, performs the initial subscribe — adopting a
// bootstrap snapshot when the follower's position was compacted away — and
// starts the shipping loop. The follower serves reads from db the moment
// Open returns.
func Open(addr string, db *engine.DB, opt Options) (*Follower, error) {
	if !db.Durable() {
		return nil, fmt.Errorf("repl: follower engine must be durable (%w)", engine.ErrNotDurable)
	}
	opt = opt.withDefaults()
	cl, err := server.Dial(addr, opt.Client)
	if err != nil {
		return nil, fmt.Errorf("repl: dialing primary %s: %w", addr, err)
	}
	f := &Follower{
		db:   db,
		cl:   cl,
		opt:  opt,
		addr: addr,
		m:    newReplMetrics(opt.Registry, opt.Name),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	// Initial subscribe: validate the resume position and apply the first
	// chunk synchronously, so a fresh follower has bootstrapped (or a
	// restarted one resumed) before it starts serving.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := cl.ReplSubscribeCtx(ctx, db.DurableLSN(), opt.MaxRecords)
	if err != nil {
		cl.Close()
		return nil, fmt.Errorf("repl: subscribing to %s: %w", addr, err)
	}
	if err := f.ingest(rep); err != nil {
		cl.Close()
		return nil, fmt.Errorf("repl: initial ingest: %w", err)
	}
	go f.run()
	return f, nil
}

// DB returns the follower's engine (serve reads through it).
func (f *Follower) DB() *engine.DB { return f.db }

// ingest applies one fetched chunk: a snapshot bootstrap when present,
// shipped records otherwise. Called from Open and the poll loop only.
func (f *Follower) ingest(rep *server.WireRepl) error {
	f.mu.Lock()
	f.horizon = rep.CommitLSN
	f.lastContact = time.Now()
	f.mu.Unlock()
	if rep.Snapshot != nil {
		if err := f.db.IngestSnapshot(rep.Snapshot, rep.SnapshotLSN); err != nil {
			return err
		}
		f.m.shippedBytes.Add(int64(len(rep.Snapshot)))
	}
	if len(rep.Records) > 0 {
		recs := make([]wal.Record, len(rep.Records))
		var bytes int64
		for i, r := range rep.Records {
			recs[i] = wal.Record{LSN: r.LSN, Payload: r.Payload}
			bytes += int64(len(r.Payload))
		}
		if _, err := f.db.IngestReplicated(recs); err != nil {
			return err
		}
		f.m.shippedBytes.Add(bytes)
	}
	f.trackLag()
	return nil
}

// trackLag updates the lag gauges from the current applied position and the
// last reported horizon.
func (f *Follower) trackLag() {
	applied := f.db.DurableLSN()
	f.mu.Lock()
	defer f.mu.Unlock()
	if applied >= f.horizon {
		f.behindSince = time.Time{}
		f.m.lagRecords.Set(0)
		f.m.lagSeconds.Set(0)
		return
	}
	if f.behindSince.IsZero() {
		f.behindSince = time.Now()
	}
	f.m.lagRecords.Set(float64(f.horizon - applied))
	f.m.lagSeconds.Set(time.Since(f.behindSince).Seconds())
}

// run is the shipping loop: fetch the suffix after the applied position,
// ingest, repeat — continuously while behind, on PollInterval when caught
// up. Transient fetch failures (primary down, overload) keep retrying; an
// ingest failure (gap, corrupt snapshot) is sticky and stops the loop.
func (f *Follower) run() {
	defer close(f.done)
	ticker := time.NewTicker(f.opt.PollInterval)
	defer ticker.Stop()
	for {
		behind := f.pollOnce()
		if f.Err() != nil {
			return
		}
		if behind {
			// Catching up: fetch again immediately.
			select {
			case <-f.stop:
				return
			default:
			}
			continue
		}
		select {
		case <-f.stop:
			return
		case <-ticker.C:
		}
	}
}

// pollOnce runs one fetch+ingest exchange, returning whether the follower is
// still behind the horizon (the loop then skips the poll sleep).
func (f *Follower) pollOnce() bool {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	f.m.fetches.Inc()
	rep, err := f.cl.ReplFetchCtx(ctx, f.db.DurableLSN(), f.opt.MaxRecords)
	if err != nil {
		f.m.fetchErrors.Inc()
		f.mu.Lock()
		f.lastFetchErr = err
		f.mu.Unlock()
		f.trackLag()
		return false
	}
	f.mu.Lock()
	f.lastFetchErr = nil
	f.mu.Unlock()
	if err := f.ingest(rep); err != nil {
		// Gap, corrupt snapshot, undecodable record: the stream cannot be
		// trusted. Fail sticky — serving reads over a known hole would be
		// silent data loss at one remove.
		f.mu.Lock()
		f.broken = err
		f.mu.Unlock()
		return false
	}
	return f.db.DurableLSN() < rep.CommitLSN
}

// Err returns the sticky ingest failure that broke replication (nil while
// healthy). A broken follower refuses reads.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.broken
}

// Info returns the follower's replication state.
func (f *Follower) Info() Info {
	applied := f.db.DurableLSN()
	f.mu.Lock()
	defer f.mu.Unlock()
	info := Info{
		PrimaryAddr: f.addr,
		AppliedLSN:  applied,
		CommitLSN:   f.horizon,
		LastContact: f.lastContact,
		Promoted:    f.promoted,
	}
	if f.horizon > applied {
		info.LagRecords = f.horizon - applied
		if !f.behindSince.IsZero() {
			info.LagSeconds = time.Since(f.behindSince).Seconds()
		}
	}
	if f.broken != nil {
		info.Err = f.broken.Error()
	}
	return info
}

// Promote stops the shipping loop and opens the engine for writes: the
// follower becomes a primary over exactly the acked prefix its log holds,
// continuing the LSN sequence. Irreversible. Promoting a broken follower is
// refused — its log provably misses committed records.
func (f *Follower) Promote() error {
	if err := f.Err(); err != nil {
		return fmt.Errorf("repl: refusing to promote a broken follower: %w", err)
	}
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
	// The loop may have broken between the check and the stop.
	if err := f.Err(); err != nil {
		return fmt.Errorf("repl: refusing to promote a broken follower: %w", err)
	}
	f.mu.Lock()
	f.promoted = true
	f.mu.Unlock()
	f.cl.Close()
	return nil
}

// Promoted reports whether Promote has completed.
func (f *Follower) Promoted() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.promoted
}

// Close stops the shipping loop and disconnects from the primary. The
// engine is left open (its owner closes it).
func (f *Follower) Close() error {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
	return f.cl.Close()
}

// checkServes returns the sticky failure if the follower cannot serve reads.
func (f *Follower) checkServes() error {
	if err := f.Err(); err != nil {
		return fmt.Errorf("%w: replication broken: %v", engine.ErrRecovery, err)
	}
	return nil
}

var errReadOnly = server.ErrReadOnly

// Backend wraps the follower as a server.Backend: reads serve from the local
// engine pinned at the applied horizon, writes fail with server.ErrReadOnly
// until promotion, and the Replicator surface chains through — a follower
// can itself be shipped from (cascading replication) and, once promoted,
// serves as the new primary without a restart.
type Backend struct {
	f *Follower
}

// Backend returns the server.Backend view of f.
func (f *Follower) Backend() *Backend { return &Backend{f: f} }

func (b *Backend) writable() error {
	if b.f.Promoted() {
		return nil
	}
	return errReadOnly
}

func (b *Backend) InsertCtx(ctx context.Context, name string, tup relation.Tuple) error {
	if err := b.writable(); err != nil {
		return err
	}
	return b.f.db.InsertCtx(ctx, name, tup)
}

func (b *Backend) DeleteCtx(ctx context.Context, name string, key relation.Tuple) error {
	if err := b.writable(); err != nil {
		return err
	}
	return b.f.db.DeleteCtx(ctx, name, key)
}

func (b *Backend) UpdateCtx(ctx context.Context, name string, key, tup relation.Tuple) error {
	if err := b.writable(); err != nil {
		return err
	}
	return b.f.db.UpdateCtx(ctx, name, key, tup)
}

func (b *Backend) GetByKeyCtx(ctx context.Context, name string, key relation.Tuple) (relation.Tuple, bool, error) {
	if err := b.f.checkServes(); err != nil {
		return nil, false, err
	}
	return b.f.db.GetByKeyCtx(ctx, name, key)
}

func (b *Backend) InsertBatchCtx(ctx context.Context, name string, tuples []relation.Tuple) error {
	if err := b.writable(); err != nil {
		return err
	}
	return b.f.db.InsertBatchCtx(ctx, name, tuples)
}

func (b *Backend) ApplyBatchCtx(ctx context.Context, ops []engine.BatchOp) error {
	if err := b.writable(); err != nil {
		return err
	}
	return b.f.db.ApplyBatchCtx(ctx, ops)
}

func (b *Backend) Begin() error {
	if err := b.writable(); err != nil {
		return err
	}
	return b.f.db.Begin()
}

func (b *Backend) Commit() error {
	if err := b.writable(); err != nil {
		return err
	}
	return b.f.db.Commit()
}

func (b *Backend) Rollback() error {
	if err := b.writable(); err != nil {
		return err
	}
	return b.f.db.Rollback()
}

func (b *Backend) StatsTotals() engine.StatsSnapshot { return b.f.db.StatsTotals() }

func (b *Backend) Checkpoint() error {
	// Local compaction of the replica's own log; allowed pre-promotion (it
	// does not mutate logical state, and keeps follower restarts fast).
	return b.f.db.Checkpoint()
}

func (b *Backend) Durable() bool { return true }

func (b *Backend) Close() error {
	if err := b.f.Close(); err != nil {
		b.f.db.Close()
		return err
	}
	return b.f.db.Close()
}

// Replicator surface: a follower ships its own log (cascading replication),
// and keeps doing so after promotion.

func (b *Backend) ReplRead(afterLSN uint64, maxRecords int) ([]wal.Record, uint64, error) {
	return b.f.db.ReplRead(afterLSN, maxRecords)
}

func (b *Backend) ReplSnapshot() ([]byte, uint64, error) { return b.f.db.ReplSnapshot() }

func (b *Backend) DurableLSN() uint64 { return b.f.db.DurableLSN() }
