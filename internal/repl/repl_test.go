package repl_test

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/figures"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wal"
)

func tup(vals ...string) relation.Tuple {
	out := make(relation.Tuple, len(vals))
	for i, v := range vals {
		out[i] = relation.NewString(v)
	}
	return out
}

// openEngine opens a durable Fig3 engine rooted at dir.
func openEngine(t *testing.T, dir string) *engine.DB {
	t.Helper()
	db, err := engine.Open(figures.Fig3(), engine.WithWALOptions(dir, wal.Options{Policy: wal.SyncAlways}))
	if err != nil {
		t.Fatalf("open engine: %v", err)
	}
	return db
}

// openReplica is openEngine for follower engines: AsReplica makes a restart
// mid-shipped-transaction resume the buffered suffix.
func openReplica(t *testing.T, dir string) *engine.DB {
	t.Helper()
	db, err := engine.Open(figures.Fig3(), engine.AsReplica(),
		engine.WithWALOptions(dir, wal.Options{Policy: wal.SyncAlways}))
	if err != nil {
		t.Fatalf("open replica engine: %v", err)
	}
	return db
}

// startServer serves backend on a loopback listener and returns its address.
func startServer(t *testing.T, backend server.Backend) (string, *server.Server) {
	t.Helper()
	srv := server.New(backend, server.Config{Registry: obs.NewRegistry()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), srv
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitCaughtUp(t *testing.T, f *repl.Follower, horizon uint64) {
	t.Helper()
	waitFor(t, "follower catch-up", func() bool {
		if err := f.Err(); err != nil {
			t.Fatalf("follower broke while catching up: %v", err)
		}
		return f.DB().DurableLSN() >= horizon
	})
}

func metricValue(r *obs.Registry, name string) float64 {
	for _, p := range r.Snapshot() {
		if p.Name == name {
			return p.Value
		}
	}
	return -1
}

func fastOpts(reg *obs.Registry) repl.Options {
	return repl.Options{PollInterval: 2 * time.Millisecond, Registry: reg}
}

func TestFollowerCatchesUpServesAndStaysReadOnly(t *testing.T) {
	p := openEngine(t, t.TempDir())
	defer p.Close()
	if err := p.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("COURSE", tup("c9")); err != nil {
		t.Fatal(err)
	}
	addr, srv := startServer(t, p)
	defer srv.Close()

	reg := obs.NewRegistry()
	fdb := openReplica(t, t.TempDir())
	defer fdb.Close()
	f, err := repl.Open(addr, fdb, fastOpts(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitCaughtUp(t, f, p.DurableLSN())
	if got, want := fdb.Snapshot(), p.Snapshot(); !got.Equal(want) {
		t.Fatalf("follower state differs:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Reads serve from the follower; every write path refuses pre-promotion.
	b := f.Backend()
	ctx := context.Background()
	if _, ok, err := b.GetByKeyCtx(ctx, "COURSE", tup("c9")); err != nil || !ok {
		t.Fatalf("follower read: ok=%v err=%v", ok, err)
	}
	if err := b.InsertCtx(ctx, "COURSE", tup("c10")); !errors.Is(err, server.ErrReadOnly) {
		t.Fatalf("follower InsertCtx = %v, want ErrReadOnly", err)
	}
	if err := b.DeleteCtx(ctx, "COURSE", tup("c9")); !errors.Is(err, server.ErrReadOnly) {
		t.Fatalf("follower DeleteCtx = %v, want ErrReadOnly", err)
	}
	if err := b.Begin(); !errors.Is(err, server.ErrReadOnly) {
		t.Fatalf("follower Begin = %v, want ErrReadOnly", err)
	}

	// New primary commits keep flowing.
	if err := p.Insert("DEPARTMENT", tup("physics")); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, f, p.DurableLSN())
	if _, ok, _ := b.GetByKeyCtx(ctx, "DEPARTMENT", tup("physics")); !ok {
		t.Fatal("follower missing post-subscribe primary commit")
	}

	info := f.Info()
	if info.PrimaryAddr != addr || info.Promoted || info.Err != "" {
		t.Fatalf("Info = %+v", info)
	}
	if info.LastContact.IsZero() {
		t.Fatal("Info.LastContact never set")
	}
	if info.AppliedLSN != p.DurableLSN() || info.LagRecords != 0 {
		t.Fatalf("Info lag: %+v vs primary LSN %d", info, p.DurableLSN())
	}
	if v := metricValue(reg, "repl.fetches"); v < 1 {
		t.Fatalf("repl.fetches = %v, want >= 1", v)
	}
	if v := metricValue(reg, "repl.lag_records"); v != 0 {
		t.Fatalf("repl.lag_records = %v, want 0 when caught up", v)
	}
	if v := metricValue(reg, "repl.shipped_bytes"); v <= 0 {
		t.Fatalf("repl.shipped_bytes = %v, want > 0", v)
	}
}

// A fresh follower behind the primary's compaction horizon bootstraps from
// the shipped checkpoint over the wire, then tails the log.
func TestFollowerBootstrapsFromSnapshotOverWire(t *testing.T) {
	p := openEngine(t, t.TempDir())
	defer p.Close()
	if err := p.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("COURSE", tup("c9")); err != nil {
		t.Fatal(err)
	}
	addr, srv := startServer(t, p)
	defer srv.Close()

	fdb := openReplica(t, t.TempDir())
	defer fdb.Close()
	f, err := repl.Open(addr, fdb, fastOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitCaughtUp(t, f, p.DurableLSN())
	if got, want := fdb.Snapshot(), p.Snapshot(); !got.Equal(want) {
		t.Fatalf("bootstrapped follower state differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if _, ok := fdb.GetByKey("COURSE", tup("c9")); !ok {
		t.Fatal("follower missing the post-checkpoint tail record")
	}
}

// Kill the primary, promote the follower: it recovers exactly the acked
// prefix — shipped commits survive, never-shipped ones do not — and starts
// accepting writes that continue the LSN sequence.
func TestFailoverPromoteRecoversAckedPrefix(t *testing.T) {
	p := openEngine(t, t.TempDir())
	defer p.Close()
	if err := p.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("COURSE", tup("c-acked")); err != nil {
		t.Fatal(err)
	}
	addr, srv := startServer(t, p)
	defer srv.Close()

	reg := obs.NewRegistry()
	fdb := openReplica(t, t.TempDir())
	defer fdb.Close()
	f, err := repl.Open(addr, fdb, fastOpts(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	acked := p.DurableLSN()
	waitCaughtUp(t, f, acked)
	ackedState := p.Snapshot()

	// Primary dies mid-ship: the server stops answering and two more commits
	// land in its log that will never be shipped.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("COURSE", tup("c-lost1")); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("COURSE", tup("c-lost2")); err != nil {
		t.Fatal(err)
	}

	// Fetch failures are transient: the follower keeps serving reads at its
	// applied horizon while retrying.
	waitFor(t, "a failed fetch", func() bool { return metricValue(reg, "repl.fetch_errors") >= 1 })
	b := f.Backend()
	if _, ok, err := b.GetByKeyCtx(context.Background(), "COURSE", tup("c-acked")); err != nil || !ok {
		t.Fatalf("follower read during primary outage: ok=%v err=%v", ok, err)
	}
	if err := f.Err(); err != nil {
		t.Fatalf("transient fetch failure must not break the follower: %v", err)
	}

	if err := f.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if !f.Promoted() || !f.Info().Promoted {
		t.Fatal("Promoted() false after Promote")
	}
	if got := fdb.DurableLSN(); got != acked {
		t.Fatalf("promoted follower LSN %d, want acked prefix %d", got, acked)
	}
	if got := fdb.Snapshot(); !got.Equal(ackedState) {
		t.Fatalf("promoted follower state differs from acked prefix:\ngot:\n%s\nwant:\n%s", got, ackedState)
	}
	if _, ok := fdb.GetByKey("COURSE", tup("c-lost1")); ok {
		t.Fatal("promoted follower holds a commit that was never shipped")
	}

	// The promoted follower is a primary now: writes flow and the LSN
	// sequence continues past the acked prefix.
	if err := b.InsertCtx(context.Background(), "COURSE", tup("c-after")); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	if got := fdb.DurableLSN(); got != acked+1 {
		t.Fatalf("post-promotion LSN %d, want %d", got, acked+1)
	}
}

// faultBackend wraps a durable engine and, once armed, corrupts the shipped
// stream: mode "gap" drops the first record of a chunk, mode "reorder" swaps
// the first two. Both leave a follower that must refuse rather than diverge.
type faultBackend struct {
	*engine.DB
	mode  string
	armed atomic.Bool
}

func (g *faultBackend) ReplRead(afterLSN uint64, maxRecords int) ([]wal.Record, uint64, error) {
	recs, horizon, err := g.DB.ReplRead(afterLSN, maxRecords)
	if err != nil || !g.armed.Load() || len(recs) < 2 {
		return recs, horizon, err
	}
	switch g.mode {
	case "gap":
		recs = recs[1:]
	case "reorder":
		recs[0], recs[1] = recs[1], recs[0]
	}
	return recs, horizon, err
}

func testStreamFaultBreaksFollower(t *testing.T, mode string) {
	p := openEngine(t, t.TempDir())
	defer p.Close()
	if err := p.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	fb := &faultBackend{DB: p, mode: mode}
	addr, srv := startServer(t, fb)
	defer srv.Close()

	fdb := openReplica(t, t.TempDir())
	defer fdb.Close()
	f, err := repl.Open(addr, fdb, fastOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitCaughtUp(t, f, p.DurableLSN())

	fb.armed.Store(true)
	if err := p.Insert("COURSE", tup("c-a")); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("COURSE", tup("c-b")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "sticky break on "+mode+" stream", func() bool { return f.Err() != nil })
	if !errors.Is(f.Err(), wal.ErrGap) {
		t.Fatalf("follower error = %v, want wal.ErrGap", f.Err())
	}
	if f.Info().Err == "" {
		t.Fatal("Info.Err empty on a broken follower")
	}

	// A broken follower refuses reads — serving a known-holed state would be
	// silent data loss — and refuses promotion.
	if _, _, err := f.Backend().GetByKeyCtx(context.Background(), "COURSE", tup("c1")); !errors.Is(err, engine.ErrRecovery) {
		t.Fatalf("broken follower read = %v, want ErrRecovery", err)
	}
	if err := f.Promote(); err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("Promote on broken follower = %v, want refusal", err)
	}
	// The local engine never applied anything past the fault.
	if _, ok := fdb.GetByKey("COURSE", tup("c-b")); ok {
		t.Fatal("broken follower applied records past the stream fault")
	}
}

func TestGappedStreamBreaksFollower(t *testing.T)    { testStreamFaultBreaksFollower(t, "gap") }
func TestReorderedStreamBreaksFollower(t *testing.T) { testStreamFaultBreaksFollower(t, "reorder") }

// rewindBackend re-ships an overlapping prefix on every armed fetch:
// duplicate delivery must be skipped, not re-applied.
type rewindBackend struct {
	*engine.DB
	armed atomic.Bool
}

func (g *rewindBackend) ReplRead(afterLSN uint64, maxRecords int) ([]wal.Record, uint64, error) {
	if g.armed.Load() && afterLSN > 1 {
		afterLSN /= 2
	}
	return g.DB.ReplRead(afterLSN, maxRecords)
}

func TestDuplicateDeliveryIsIdempotent(t *testing.T) {
	p := openEngine(t, t.TempDir())
	defer p.Close()
	if err := p.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	rb := &rewindBackend{DB: p}
	addr, srv := startServer(t, rb)
	defer srv.Close()

	fdb := openReplica(t, t.TempDir())
	defer fdb.Close()
	f, err := repl.Open(addr, fdb, fastOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitCaughtUp(t, f, p.DurableLSN())

	rb.armed.Store(true)
	if err := p.Insert("COURSE", tup("c-dup")); err != nil {
		t.Fatal(err)
	}
	if err := p.RunAtomic(func() error {
		if err := p.Insert("PERSON", tup("p-dup")); err != nil {
			return err
		}
		return p.Insert("STUDENT", tup("p-dup"))
	}); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, f, p.DurableLSN())
	if err := f.Err(); err != nil {
		t.Fatalf("duplicate delivery broke the follower: %v", err)
	}
	if got, want := fdb.Snapshot(), p.Snapshot(); !got.Equal(want) {
		t.Fatalf("follower state differs after duplicated shipping:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// Kill the follower mid-replay: a restarted follower resumes from its durable
// position and converges without resending history it already holds.
func TestFollowerRestartResumes(t *testing.T) {
	p := openEngine(t, t.TempDir())
	defer p.Close()
	if err := p.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	addr, srv := startServer(t, p)
	defer srv.Close()

	fdir := t.TempDir()
	fdb := openReplica(t, fdir)
	f, err := repl.Open(addr, fdb, fastOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, f, p.DurableLSN())

	// Down mid-stream: stop shipping, close the engine, leave the primary
	// committing in the meantime.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fdb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("COURSE", tup("c-while-down")); err != nil {
		t.Fatal(err)
	}

	fdb2 := openReplica(t, fdir)
	defer fdb2.Close()
	f2, err := repl.Open(addr, fdb2, fastOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	waitCaughtUp(t, f2, p.DurableLSN())
	if got, want := fdb2.Snapshot(), p.Snapshot(); !got.Equal(want) {
		t.Fatalf("restarted follower state differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// A chain: follower B ships from follower A (cascading replication through
// the Backend's Replicator surface), and both converge to the primary.
func TestCascadingReplication(t *testing.T) {
	p := openEngine(t, t.TempDir())
	defer p.Close()
	if err := p.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	addr, srv := startServer(t, p)
	defer srv.Close()

	adb := openReplica(t, t.TempDir())
	defer adb.Close()
	fa, err := repl.Open(addr, adb, fastOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	addrA, srvA := startServer(t, fa.Backend())
	defer srvA.Close()

	bdb := openReplica(t, t.TempDir())
	defer bdb.Close()
	fb, err := repl.Open(addrA, bdb, fastOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()

	if err := p.Insert("COURSE", tup("c-chain")); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, fa, p.DurableLSN())
	waitCaughtUp(t, fb, p.DurableLSN())
	if got, want := bdb.Snapshot(), p.Snapshot(); !got.Equal(want) {
		t.Fatalf("second-tier follower state differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
