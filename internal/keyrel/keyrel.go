// Package keyrel implements key-relations (Definition 3.1) and the Refkey
// recursion of Proposition 3.1 of Markowitz (ICDE 1992). A key-relation of a
// merge set R̄ is a relation-scheme whose primary-key values cover, in every
// consistent database state, the union of the primary-key values of all
// members of R̄; Proposition 3.1 characterizes when a member of R̄ is itself a
// key-relation, via a recursion over key-based inclusion dependencies.
package keyrel

import (
	"sort"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/state"
)

// refIndex is the key-based reference graph of one (schema, merge-set) pair:
// adj[ro] lists the members ri of the merge set (ri ≠ ro) with a key-based
// inclusion dependency ri[Ki] ⊆ ro[Ko] in I, sorted and deduplicated. It is
// built in one pass over s.INDs, so Refkey*, IsKeyRelation, and Find pay the
// IND scan once instead of once per BFS node per member.
type refIndex struct {
	adj map[string][]string
}

func buildRefIndex(s *schema.Schema, names []string) *refIndex {
	inSet := toSet(names)
	adj := make(map[string][]string)
	for _, ind := range s.INDs {
		if ind.Left == ind.Right || !inSet[ind.Left] {
			continue
		}
		ri := s.Scheme(ind.Left)
		ro := s.Scheme(ind.Right)
		if ri == nil || ro == nil {
			continue
		}
		// The IND must go from Ri's own primary key into Ro's primary key.
		if schema.EqualAttrSets(ind.LeftAttrs, ri.PrimaryKey) &&
			schema.EqualAttrSets(ind.RightAttrs, ro.PrimaryKey) {
			adj[ind.Right] = append(adj[ind.Right], ind.Left)
		}
	}
	for root, members := range adj {
		sort.Strings(members)
		adj[root] = dedup(members)
	}
	return &refIndex{adj: adj}
}

// star computes the transitive closure of the reference graph from root,
// excluding root itself, in sorted order.
func (ix *refIndex) star(root string) []string {
	visited := map[string]bool{root: true}
	var out []string
	queue := append([]string(nil), ix.adj[root]...)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if visited[n] {
			continue
		}
		visited[n] = true
		out = append(out, n)
		queue = append(queue, ix.adj[n]...)
	}
	sort.Strings(out)
	return out
}

// Refkey returns the members Ri of names (other than root) whose primary key
// is included in root's primary key by an inclusion dependency of I:
// Refkey(Ro, R̄) = { Ri ∈ R̄ | Ri[Ki] ⊆ Ro[Ko] ∈ I }.
func Refkey(s *schema.Schema, root string, names []string) []string {
	if s.Scheme(root) == nil {
		return nil
	}
	return append([]string(nil), buildRefIndex(s, names).adj[root]...)
}

// RefkeyStar computes the transitive closure Refkey*(Ro, R̄) of Prop. 3.1.
func RefkeyStar(s *schema.Schema, root string, names []string) []string {
	return buildRefIndex(s, names).star(root)
}

// IsKeyRelation reports whether root satisfies the Prop. 3.1 condition for
// the merge set: R̄ = {Ro} ∪ Refkey*(Ro, R̄).
func IsKeyRelation(s *schema.Schema, root string, names []string) bool {
	if s.Scheme(root) == nil || !toSet(names)[root] {
		return false
	}
	covered := append([]string{root}, buildRefIndex(s, names).star(root)...)
	return schema.EqualAttrSets(covered, names)
}

// Find returns the members of names that are key-relations of the set, in
// sorted order; the first is the canonical choice for Merge. The reference
// graph is indexed once and shared across the per-member checks.
func Find(s *schema.Schema, names []string) []string {
	ix := buildRefIndex(s, names)
	inSet := toSet(names)
	var out []string
	for _, n := range names {
		if s.Scheme(n) == nil || !inSet[n] {
			continue
		}
		covered := append([]string{n}, ix.star(n)...)
		if schema.EqualAttrSets(covered, names) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// KeyUnion computes ∪_{Ri ∈ names} rename(π_{Ki}(r_i), Ki ← target) over a
// database state: the key values a key-relation must cover (Definition 3.1).
// The target attribute names give the result's header and must be compatible
// with each member's primary key, position-wise.
func KeyUnion(s *schema.Schema, db *state.DB, names []string, target []string) *relation.Relation {
	out := relation.New(target...)
	for _, n := range names {
		rs := s.Scheme(n)
		r := db.Relation(n)
		if rs == nil || r == nil {
			continue
		}
		proj := r.Project(rs.PrimaryKey).Rename(rs.PrimaryKey, target)
		out = out.Union(proj)
	}
	return out
}

// HoldsInState checks Definition 3.1 semantically for one database state:
// π_{Ko}(r_o) equals the union of the renamed key projections of the merge
// set. Prop. 3.1 guarantees this for every consistent state exactly when
// IsKeyRelation holds.
func HoldsInState(s *schema.Schema, db *state.DB, root string, names []string) bool {
	ro := s.Scheme(root)
	if ro == nil {
		return false
	}
	have := db.Relation(root).Project(ro.PrimaryKey)
	want := KeyUnion(s, db, names, ro.PrimaryKey)
	return have.Equal(want)
}

func toSet(names []string) map[string]bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}

func dedup(sorted []string) []string {
	j := 0
	for i, n := range sorted {
		if i == 0 || n != sorted[i-1] {
			sorted[j] = n
			j++
		}
	}
	return sorted[:j]
}
