// Package keyrel implements key-relations (Definition 3.1) and the Refkey
// recursion of Proposition 3.1 of Markowitz (ICDE 1992). A key-relation of a
// merge set R̄ is a relation-scheme whose primary-key values cover, in every
// consistent database state, the union of the primary-key values of all
// members of R̄; Proposition 3.1 characterizes when a member of R̄ is itself a
// key-relation, via a recursion over key-based inclusion dependencies.
package keyrel

import (
	"sort"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/state"
)

// Refkey returns the members Ri of names (other than root) whose primary key
// is included in root's primary key by an inclusion dependency of I:
// Refkey(Ro, R̄) = { Ri ∈ R̄ | Ri[Ki] ⊆ Ro[Ko] ∈ I }.
func Refkey(s *schema.Schema, root string, names []string) []string {
	ro := s.Scheme(root)
	if ro == nil {
		return nil
	}
	inSet := toSet(names)
	var out []string
	for _, ind := range s.INDs {
		if ind.Right != root || ind.Left == root || !inSet[ind.Left] {
			continue
		}
		ri := s.Scheme(ind.Left)
		if ri == nil {
			continue
		}
		// The IND must go from Ri's own primary key into Ro's primary key.
		if schema.EqualAttrSets(ind.LeftAttrs, ri.PrimaryKey) &&
			schema.EqualAttrSets(ind.RightAttrs, ro.PrimaryKey) {
			out = append(out, ind.Left)
		}
	}
	sort.Strings(out)
	return dedup(out)
}

// RefkeyStar computes the transitive closure Refkey*(Ro, R̄) of Prop. 3.1.
func RefkeyStar(s *schema.Schema, root string, names []string) []string {
	visited := map[string]bool{root: true}
	var out []string
	queue := Refkey(s, root, names)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if visited[n] {
			continue
		}
		visited[n] = true
		out = append(out, n)
		queue = append(queue, Refkey(s, n, names)...)
	}
	sort.Strings(out)
	return out
}

// IsKeyRelation reports whether root satisfies the Prop. 3.1 condition for
// the merge set: R̄ = {Ro} ∪ Refkey*(Ro, R̄).
func IsKeyRelation(s *schema.Schema, root string, names []string) bool {
	if s.Scheme(root) == nil || !toSet(names)[root] {
		return false
	}
	covered := append([]string{root}, RefkeyStar(s, root, names)...)
	return schema.EqualAttrSets(covered, names)
}

// Find returns the members of names that are key-relations of the set, in
// sorted order; the first is the canonical choice for Merge.
func Find(s *schema.Schema, names []string) []string {
	var out []string
	for _, n := range names {
		if IsKeyRelation(s, n, names) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// KeyUnion computes ∪_{Ri ∈ names} rename(π_{Ki}(r_i), Ki ← target) over a
// database state: the key values a key-relation must cover (Definition 3.1).
// The target attribute names give the result's header and must be compatible
// with each member's primary key, position-wise.
func KeyUnion(s *schema.Schema, db *state.DB, names []string, target []string) *relation.Relation {
	out := relation.New(target...)
	for _, n := range names {
		rs := s.Scheme(n)
		r := db.Relation(n)
		if rs == nil || r == nil {
			continue
		}
		proj := r.Project(rs.PrimaryKey).Rename(rs.PrimaryKey, target)
		out = out.Union(proj)
	}
	return out
}

// HoldsInState checks Definition 3.1 semantically for one database state:
// π_{Ko}(r_o) equals the union of the renamed key projections of the merge
// set. Prop. 3.1 guarantees this for every consistent state exactly when
// IsKeyRelation holds.
func HoldsInState(s *schema.Schema, db *state.DB, root string, names []string) bool {
	ro := s.Scheme(root)
	if ro == nil {
		return false
	}
	have := db.Relation(root).Project(ro.PrimaryKey)
	want := KeyUnion(s, db, names, ro.PrimaryKey)
	return have.Equal(want)
}

func toSet(names []string) map[string]bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}

func dedup(sorted []string) []string {
	j := 0
	for i, n := range sorted {
		if i == 0 || n != sorted[i-1] {
			sorted[j] = n
			j++
		}
	}
	return sorted[:j]
}
