package keyrel

import (
	"math/rand"
	"testing"

	"repro/internal/figures"
	"repro/internal/schema"
	"repro/internal/state"
)

func TestRefkeyFig3(t *testing.T) {
	s := figures.Fig3()
	all := []string{"COURSE", "OFFER", "TEACH", "ASSIST"}
	if got := Refkey(s, "COURSE", all); !schema.EqualAttrSets(got, []string{"OFFER"}) {
		t.Errorf("Refkey(COURSE) = %v, want [OFFER]", got)
	}
	if got := Refkey(s, "OFFER", all); !schema.EqualAttrSets(got, []string{"ASSIST", "TEACH"}) {
		t.Errorf("Refkey(OFFER) = %v, want [ASSIST TEACH]", got)
	}
	if got := Refkey(s, "TEACH", all); len(got) != 0 {
		t.Errorf("Refkey(TEACH) = %v, want empty", got)
	}
	// Members outside the merge set are ignored.
	if got := Refkey(s, "COURSE", []string{"COURSE", "TEACH"}); len(got) != 0 {
		t.Errorf("Refkey restricted = %v, want empty (OFFER outside set)", got)
	}
}

func TestRefkeyStarFig3(t *testing.T) {
	s := figures.Fig3()
	all := []string{"COURSE", "OFFER", "TEACH", "ASSIST"}
	got := RefkeyStar(s, "COURSE", all)
	if !schema.EqualAttrSets(got, []string{"ASSIST", "OFFER", "TEACH"}) {
		t.Errorf("RefkeyStar(COURSE) = %v", got)
	}
}

func TestIsKeyRelationFig3(t *testing.T) {
	s := figures.Fig3()
	cases := []struct {
		root  string
		names []string
		want  bool
	}{
		// Figure 4's merge set: COURSE is the key-relation.
		{"COURSE", []string{"COURSE", "OFFER", "TEACH"}, true},
		// Figure 5's merge set.
		{"COURSE", []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, true},
		// OFFER does not cover COURSE (no COURSE[C.NR] ⊆ OFFER[O.C.NR]).
		{"OFFER", []string{"COURSE", "OFFER", "TEACH"}, false},
		// The §5.2 merge set {OFFER, TEACH, ASSIST}: OFFER is key-relation.
		{"OFFER", []string{"OFFER", "TEACH", "ASSIST"}, true},
		{"TEACH", []string{"OFFER", "TEACH", "ASSIST"}, false},
		// A singleton set is its own key-relation.
		{"COURSE", []string{"COURSE"}, true},
		// Root outside the set never qualifies.
		{"PERSON", []string{"COURSE", "OFFER"}, false},
	}
	for _, c := range cases {
		if got := IsKeyRelation(s, c.root, c.names); got != c.want {
			t.Errorf("IsKeyRelation(%s, %v) = %v, want %v", c.root, c.names, got, c.want)
		}
	}
}

func TestFind(t *testing.T) {
	s := figures.Fig3()
	if got := Find(s, []string{"COURSE", "OFFER", "TEACH", "ASSIST"}); len(got) != 1 || got[0] != "COURSE" {
		t.Errorf("Find = %v, want [COURSE]", got)
	}
	// {PERSON, FACULTY, STUDENT}: PERSON covers both via INDs.
	if got := Find(s, []string{"PERSON", "FACULTY", "STUDENT"}); len(got) != 1 || got[0] != "PERSON" {
		t.Errorf("Find = %v, want [PERSON]", got)
	}
	// {OFFER, TEACH} without COURSE: OFFER qualifies.
	if got := Find(s, []string{"OFFER", "TEACH"}); len(got) != 1 || got[0] != "OFFER" {
		t.Errorf("Find = %v, want [OFFER]", got)
	}
	// Figure 2 without the linking IND: no key-relation exists.
	if got := Find(figures.Fig2(false), []string{"OFFER", "TEACH"}); len(got) != 0 {
		t.Errorf("Find on unlinked fig 2 = %v, want none", got)
	}
}

// Prop. 3.1, semantic direction: when the syntactic condition holds, the
// key-relation's key projection equals the key union in every generated
// consistent state.
func TestProp31HoldsOnGeneratedStates(t *testing.T) {
	s := figures.Fig3()
	names := []string{"COURSE", "OFFER", "TEACH", "ASSIST"}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		db := state.MustGenerate(s, rng, state.GenOptions{Rows: 6})
		if !HoldsInState(s, db, "COURSE", names) {
			t.Fatalf("trial %d: Definition 3.1 fails for COURSE on a consistent state:\n%s", trial, db)
		}
	}
}

// Prop. 3.1, converse direction: when the condition fails, some consistent
// state violates Definition 3.1 (OFFER does not cover COURSE's keys).
func TestProp31FailsWhenConditionFails(t *testing.T) {
	s := figures.Fig3()
	names := []string{"COURSE", "OFFER", "TEACH"}
	rng := rand.New(rand.NewSource(13))
	violated := false
	for trial := 0; trial < 40 && !violated; trial++ {
		// Force OFFER strictly smaller than COURSE so some COURSE key has no
		// OFFER tuple — then OFFER's key projection cannot cover the union.
		db := state.MustGenerate(s, rng, state.GenOptions{
			Rows:    6,
			RowsPer: map[string]int{"OFFER": 3},
		})
		if !HoldsInState(s, db, "OFFER", names) {
			violated = true
		}
	}
	if !violated {
		t.Error("expected some consistent state where OFFER fails Definition 3.1 for {COURSE, OFFER, TEACH}")
	}
}

func TestKeyUnion(t *testing.T) {
	s := figures.Fig3()
	rng := rand.New(rand.NewSource(17))
	db := state.MustGenerate(s, rng, state.GenOptions{Rows: 5})
	union := KeyUnion(s, db, []string{"COURSE", "OFFER"}, []string{"K"})
	// Every OFFER key is a COURSE key, so the union equals COURSE's keys.
	course := db.Relation("COURSE").Project([]string{"C.NR"}).Rename([]string{"C.NR"}, []string{"K"})
	if !union.Equal(course) {
		t.Errorf("KeyUnion = %v, want %v", union, course)
	}
}

func TestRefkeyUnknownRoot(t *testing.T) {
	s := figures.Fig3()
	if Refkey(s, "NOPE", []string{"COURSE"}) != nil {
		t.Error("unknown root should yield nil")
	}
	if IsKeyRelation(s, "NOPE", []string{"NOPE"}) {
		t.Error("unknown scheme never a key-relation")
	}
}
