package keyrel

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/schema"
	"repro/internal/state"
)

// randomTree builds a random key-compatible dependency tree: a root R0 and
// dependents each referencing a random earlier member's key.
func randomTree(rng *rand.Rand) (*schema.Schema, []string) {
	s := schema.New()
	s.AddScheme(schema.NewScheme("R0",
		[]schema.Attribute{{Name: "R0.K", Domain: "kd"}}, []string{"R0.K"}))
	s.Nulls = append(s.Nulls, schema.NNA("R0", "R0.K"))
	members := []string{"R0"}
	n := 1 + rng.Intn(5)
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("D%d", i)
		keyAttr := fmt.Sprintf("D%d.K", i)
		parent := members[rng.Intn(len(members))]
		s.AddScheme(schema.NewScheme(name,
			[]schema.Attribute{{Name: keyAttr, Domain: "kd"}}, []string{keyAttr}))
		s.Nulls = append(s.Nulls, schema.NNA(name, keyAttr))
		s.INDs = append(s.INDs, schema.NewIND(name, []string{keyAttr},
			parent, s.Scheme(parent).PrimaryKey))
		members = append(members, name)
	}
	return s, members
}

// Prop. 3.1, both directions, randomized: the syntactic condition holds for
// a member iff Definition 3.1's key-coverage equation holds on generated
// consistent states (with ragged relation sizes so subset relationships are
// strict).
func TestProp31SyntacticSemanticAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < 60; trial++ {
		s, members := randomTree(rng)
		rows := map[string]int{}
		for i, name := range members {
			// Strictly shrinking sizes downstream make coverage failures
			// observable.
			rows[name] = 8 - i
			if rows[name] < 1 {
				rows[name] = 1
			}
		}
		db, err := state.Generate(s, rng, state.GenOptions{Rows: 8, RowsPer: rows})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, root := range members {
			syntactic := IsKeyRelation(s, root, members)
			semantic := HoldsInState(s, db, root, members)
			if syntactic && !semantic {
				t.Fatalf("trial %d: %s passes Prop 3.1 but fails Def 3.1 on a consistent state\n%s\n%s",
					trial, root, s, db)
			}
			// The converse can coincide by accident on small states (a
			// non-key-relation may still cover all keys in one particular
			// state), so only the sound direction is asserted per state.
		}
		// R0 is always a key-relation of the full tree.
		if !IsKeyRelation(s, "R0", members) {
			t.Fatalf("trial %d: R0 must be a key-relation", trial)
		}
	}
}

// The converse direction in aggregate: a member that fails the syntactic
// condition must fail Definition 3.1 on SOME consistent state (searched over
// several generations).
func TestProp31ConverseInAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	for trial := 0; trial < 20; trial++ {
		s, members := randomTree(rng)
		if len(members) < 3 {
			continue
		}
		for _, root := range members[1:] { // dependents never cover R0
			if IsKeyRelation(s, root, members) {
				continue
			}
			violated := false
			for rep := 0; rep < 30 && !violated; rep++ {
				rows := map[string]int{}
				for i, name := range members {
					rows[name] = 2 + (len(members)-i)*2
				}
				db, err := state.Generate(s, rng, state.GenOptions{Rows: 8, RowsPer: rows})
				if err != nil {
					t.Fatal(err)
				}
				if !HoldsInState(s, db, root, members) {
					violated = true
				}
			}
			if !violated {
				t.Fatalf("trial %d: %s fails Prop 3.1 but no witness state found", trial, root)
			}
		}
	}
}
