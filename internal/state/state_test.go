package state_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/figures"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/state"
)

func TestNewEmptyStateIsConsistent(t *testing.T) {
	s := figures.Fig3()
	db := state.New(s)
	if err := state.Consistent(s, db); err != nil {
		t.Fatalf("empty state should be consistent: %v", err)
	}
	if db.TotalTuples() != 0 {
		t.Error("empty state has tuples")
	}
}

func TestConsistencyViolations(t *testing.T) {
	s := figures.Fig3()

	// Dangling foreign key: OFFER references a missing COURSE.
	db := state.New(s)
	db.Relation("OFFER").Add(relation.Tuple{relation.NewString("c1"), relation.NewString("math")})
	err := state.Consistent(s, db)
	if err == nil || !strings.Contains(err.Error(), "IND") {
		t.Errorf("want IND violation, got %v", err)
	}

	// NNA violation.
	db2 := state.New(s)
	db2.Relation("COURSE").Add(relation.Tuple{relation.Null()})
	err = state.Consistent(s, db2)
	if err == nil || !strings.Contains(err.Error(), "null constraint") {
		t.Errorf("want null-constraint violation, got %v", err)
	}

	// FD (key) violation: needs two tuples agreeing on key, differing off it.
	db3 := state.New(s)
	db3.Relation("COURSE").Add(relation.Tuple{relation.NewString("c1")})
	db3.Relation("DEPARTMENT").Add(relation.Tuple{relation.NewString("math")})
	db3.Relation("DEPARTMENT").Add(relation.Tuple{relation.NewString("cs")})
	db3.Relation("OFFER").Add(relation.Tuple{relation.NewString("c1"), relation.NewString("math")})
	db3.Relation("OFFER").Add(relation.Tuple{relation.NewString("c1"), relation.NewString("cs")})
	err = state.Consistent(s, db3)
	if err == nil || !strings.Contains(err.Error(), "FD") {
		t.Errorf("want FD violation, got %v", err)
	}

	// Missing relation.
	db4 := state.New(s)
	delete(db4.Relations, "COURSE")
	if state.Consistent(s, db4) == nil {
		t.Error("missing relation should be inconsistent")
	}
}

func TestCloneAndEqual(t *testing.T) {
	s := figures.Fig3()
	rng := rand.New(rand.NewSource(3))
	db := state.MustGenerate(s, rng, state.GenOptions{Rows: 5})
	c := db.Clone()
	if !db.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c.Relation("COURSE").Add(relation.Tuple{relation.NewString("extra")})
	if db.Equal(c) {
		t.Error("mutated clone should differ")
	}
	if db.Equal(&state.DB{Relations: map[string]*relation.Relation{}}) {
		t.Error("different scheme coverage should differ")
	}
}

func TestGenerateConsistentFig3(t *testing.T) {
	s := figures.Fig3()
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db, err := state.Generate(s, rng, state.GenOptions{Rows: 8})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := state.Consistent(s, db); err != nil {
			t.Fatalf("seed %d: inconsistent: %v", seed, err)
		}
		if db.TotalTuples() == 0 {
			t.Fatalf("seed %d: generator produced no data", seed)
		}
	}
}

func TestGenerateConsistentFig1(t *testing.T) {
	s := figures.Fig1RS()
	rng := rand.New(rand.NewSource(7))
	db := state.MustGenerate(s, rng, state.GenOptions{Rows: 10})
	if err := state.Consistent(s, db); err != nil {
		t.Fatal(err)
	}
	// MANAGES keys must be a subset of EMPLOYEE keys.
	m := db.Relation("MANAGES").Project([]string{"M.SSN"})
	e := db.Relation("EMPLOYEE").Project([]string{"E.SSN"}).Rename([]string{"E.SSN"}, []string{"M.SSN"})
	if m.Difference(e).Len() != 0 {
		t.Error("generated MANAGES keys escape EMPLOYEE")
	}
}

func TestGenerateWithNullableAttrs(t *testing.T) {
	// A scheme with a nullable non-key attribute actually gets nulls.
	s := schema.New()
	s.AddScheme(schema.NewScheme("R",
		[]schema.Attribute{{Name: "A", Domain: "d"}, {Name: "B", Domain: "e"}},
		[]string{"A"}))
	s.Nulls = []schema.NullConstraint{schema.NNA("R", "A")}
	rng := rand.New(rand.NewSource(1))
	db := state.MustGenerate(s, rng, state.GenOptions{Rows: 40, NullProb: 0.5})
	nulls := 0
	r := db.Relation("R")
	for _, tup := range r.Tuples() {
		if tup[r.Position("B")].IsNull() {
			nulls++
		}
	}
	if nulls == 0 {
		t.Error("expected some null B values")
	}
	if err := state.Consistent(s, db); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateRespectsGeneralNullConstraints(t *testing.T) {
	// Rejection sampling keeps general null-existence constraints satisfied.
	s := schema.New()
	s.AddScheme(schema.NewScheme("R",
		[]schema.Attribute{
			{Name: "A", Domain: "d"},
			{Name: "B", Domain: "e"},
			{Name: "C", Domain: "f"},
		}, []string{"A"}))
	s.Nulls = []schema.NullConstraint{
		schema.NNA("R", "A"),
		schema.NewNullExistence("R", []string{"C"}, []string{"B"}),
	}
	rng := rand.New(rand.NewSource(2))
	db := state.MustGenerate(s, rng, state.GenOptions{Rows: 30, NullProb: 0.5})
	if err := state.Consistent(s, db); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateCycleRejected(t *testing.T) {
	s := schema.New()
	s.AddScheme(schema.NewScheme("R", []schema.Attribute{{Name: "A", Domain: "d"}}, []string{"A"}))
	s.AddScheme(schema.NewScheme("S", []schema.Attribute{{Name: "B", Domain: "d"}}, []string{"B"}))
	s.INDs = []schema.IND{
		schema.NewIND("R", []string{"A"}, "S", []string{"B"}),
		schema.NewIND("S", []string{"B"}, "R", []string{"A"}),
	}
	if _, err := state.Generate(s, rand.New(rand.NewSource(1)), state.GenOptions{Rows: 5}); err == nil {
		t.Error("cyclic IND graph should be rejected")
	}
}

func TestStateString(t *testing.T) {
	s := figures.Fig3()
	db := state.New(s)
	db.Relation("COURSE").Add(relation.Tuple{relation.NewString("c1")})
	out := db.String()
	if !strings.Contains(out, "COURSE(C.NR)") || !strings.Contains(out, "⟨c1⟩") {
		t.Errorf("String = %q", out)
	}
	// Determinism.
	if out != db.String() {
		t.Error("String must be deterministic")
	}
}
