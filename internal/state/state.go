// Package state models database states of a relational schema — the set of
// relations associated with its relation-schemes — together with consistency
// checking against the schema's dependencies and constraints, and generation
// of random consistent states for property-based verification of the paper's
// information-capacity theorems (Props. 4.1 and 4.2).
package state

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
	"repro/internal/schema"
)

// DB is a database state: one relation per relation-scheme, keyed by scheme
// name. Relations use the scheme's attribute order.
type DB struct {
	Relations map[string]*relation.Relation
}

// New returns an empty database state for the schema: every scheme gets an
// empty relation over its attribute list.
func New(s *schema.Schema) *DB {
	db := &DB{Relations: make(map[string]*relation.Relation, len(s.Relations))}
	for _, rs := range s.Relations {
		db.Relations[rs.Name] = relation.New(rs.AttrNames()...)
	}
	return db
}

// Relation returns the relation of the named scheme, or nil.
func (db *DB) Relation(name string) *relation.Relation {
	return db.Relations[name]
}

// Set installs a relation under the scheme name.
func (db *DB) Set(name string, r *relation.Relation) { db.Relations[name] = r }

// Clone returns a deep copy of the state.
func (db *DB) Clone() *DB {
	c := &DB{Relations: make(map[string]*relation.Relation, len(db.Relations))}
	for name, r := range db.Relations {
		c.Relations[name] = r.Clone()
	}
	return c
}

// Equal reports whether the two states cover the same schemes with equal
// relations (tuple sets compared up to attribute order).
func (db *DB) Equal(other *DB) bool {
	if len(db.Relations) != len(other.Relations) {
		return false
	}
	for name, r := range db.Relations {
		o, ok := other.Relations[name]
		if !ok || !r.EqualUpToOrder(o) {
			return false
		}
	}
	return true
}

// Apply applies one physical mutation: insert adds tup to the named
// relation, otherwise tup is removed. It is the replay primitive of the
// engine's write-ahead log recovery, which reconstructs a state one logged
// mutation at a time before re-validating it with Consistent.
func (db *DB) Apply(name string, insert bool, tup relation.Tuple) error {
	r := db.Relations[name]
	if r == nil {
		return fmt.Errorf("state: no relation %s", name)
	}
	if len(tup) != r.Arity() {
		return fmt.Errorf("state: arity mismatch applying to %s: tuple has %d values, scheme %d", name, len(tup), r.Arity())
	}
	if insert {
		r.Add(tup)
	} else {
		r.Remove(tup)
	}
	return nil
}

// TotalTuples returns the total number of tuples across all relations.
func (db *DB) TotalTuples() int {
	n := 0
	for _, r := range db.Relations {
		n += r.Len()
	}
	return n
}

// String renders the state deterministically (schemes in name order).
func (db *DB) String() string {
	names := make([]string, 0, len(db.Relations))
	for name := range db.Relations {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s%s\n", name, db.Relations[name])
	}
	return b.String()
}

// Consistent reports whether the state satisfies every dependency and
// constraint of the schema, returning a descriptive error for the first
// violation found (nil if consistent). Checks run in a fixed order: scheme
// presence, FDs, INDs, null constraints.
func Consistent(s *schema.Schema, db *DB) error {
	for _, rs := range s.Relations {
		r := db.Relation(rs.Name)
		if r == nil {
			return fmt.Errorf("state: no relation for scheme %s", rs.Name)
		}
		for _, a := range rs.AttrNames() {
			if !r.Has(a) {
				return fmt.Errorf("state: relation %s lacks attribute %s", rs.Name, a)
			}
		}
	}
	for _, fd := range s.FDs {
		if !fd.Satisfied(db.Relation(fd.Scheme)) {
			return fmt.Errorf("state: FD violated: %s", fd)
		}
	}
	for _, ind := range s.INDs {
		if !ind.Satisfied(db.Relation(ind.Left), db.Relation(ind.Right)) {
			return fmt.Errorf("state: IND violated: %s", ind)
		}
	}
	for _, nc := range s.Nulls {
		if !nc.Satisfied(db.Relation(nc.SchemeName())) {
			return fmt.Errorf("state: null constraint violated: %s", nc)
		}
	}
	return nil
}

// IsConsistent is Consistent as a boolean.
func IsConsistent(s *schema.Schema, db *DB) bool { return Consistent(s, db) == nil }
