package state

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
	"repro/internal/schema"
)

// GenOptions control random consistent-state generation.
type GenOptions struct {
	// Rows is the target tuple count per relation (the realized count may be
	// lower when a scheme's key values must be drawn from a small parent).
	Rows int
	// NullProb is the probability that a nullable non-key attribute not bound
	// by an inclusion dependency is set to null.
	NullProb float64
	// DomainSize bounds the number of distinct values per domain; 0 means
	// 4×Rows.
	DomainSize int
	// RowsPer overrides the target tuple count for specific schemes.
	RowsPer map[string]int
}

func (o GenOptions) rowsFor(scheme string) int {
	if n, ok := o.RowsPer[scheme]; ok {
		return n
	}
	return o.Rows
}

// Generate builds a random database state consistent with the schema. It
// supports the paper's baseline schema form: key dependencies, key-based
// inclusion dependencies whose graph is acyclic, and null constraints whose
// satisfaction is guaranteed by construction for NNA sets (general null
// constraints are handled by rejection per tuple). It returns an error if
// the IND graph has a cycle or the schema is otherwise unsupported.
func Generate(s *schema.Schema, rng *rand.Rand, opts GenOptions) (*DB, error) {
	if opts.Rows <= 0 {
		opts.Rows = 8
	}
	if opts.DomainSize <= 0 {
		opts.DomainSize = 4 * opts.Rows
	}
	order, err := topoOrder(s)
	if err != nil {
		return nil, err
	}
	db := New(s)
	pools := make(map[string][]relation.Value) // domain -> values
	pool := func(domain string) []relation.Value {
		if vs, ok := pools[domain]; ok {
			return vs
		}
		vs := make([]relation.Value, opts.DomainSize)
		for i := range vs {
			vs[i] = relation.NewString(fmt.Sprintf("%s-%d", domain, i))
		}
		pools[domain] = vs
		return vs
	}

	for _, name := range order {
		rs := s.Scheme(name)
		if err := populate(s, rs, db, rng, opts, pool); err != nil {
			return nil, err
		}
	}
	if err := Consistent(s, db); err != nil {
		return nil, fmt.Errorf("state: generator produced inconsistent state: %w", err)
	}
	return db, nil
}

// MustGenerate is Generate that panics on error (for tests and benches over
// known-good schemas).
func MustGenerate(s *schema.Schema, rng *rand.Rand, opts GenOptions) *DB {
	db, err := Generate(s, rng, opts)
	if err != nil {
		panic(err)
	}
	return db
}

// topoOrder orders schemes so that every IND's right scheme precedes its
// left scheme. Self-referential INDs are ignored for ordering.
func topoOrder(s *schema.Schema) ([]string, error) {
	deg := make(map[string]int, len(s.Relations))
	succ := make(map[string][]string)
	for _, rs := range s.Relations {
		deg[rs.Name] = 0
	}
	for _, ind := range s.INDs {
		if ind.Left == ind.Right {
			continue
		}
		succ[ind.Right] = append(succ[ind.Right], ind.Left)
		deg[ind.Left]++
	}
	var queue []string
	for _, rs := range s.Relations { // declaration order for determinism
		if deg[rs.Name] == 0 {
			queue = append(queue, rs.Name)
		}
	}
	var order []string
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, m := range succ[n] {
			deg[m]--
			if deg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if len(order) != len(s.Relations) {
		return nil, fmt.Errorf("state: inclusion-dependency graph has a cycle; generation unsupported")
	}
	return order, nil
}

func populate(s *schema.Schema, rs *schema.RelationScheme, db *DB, rng *rand.Rand, opts GenOptions, pool func(string) []relation.Value) error {
	r := db.Relation(rs.Name)
	attrs := rs.AttrNames()
	nna := s.NNAAttrs(rs.Name)

	// Attribute -> IND binding: the attribute participates at position p of
	// an IND into an earlier scheme. Whole-IND bindings are sampled together
	// to respect multi-attribute foreign keys.
	type binding struct {
		ind    schema.IND
		target *relation.Relation
	}
	var bindings []binding
	bound := make(map[string]bool)
	for _, ind := range s.INDsFrom(rs.Name) {
		if ind.Right == rs.Name {
			continue // self-reference: nulls or skip below
		}
		target := db.Relation(ind.Right)
		if target == nil {
			return fmt.Errorf("state: IND target %s not yet populated", ind.Right)
		}
		bindings = append(bindings, binding{ind: ind, target: target})
		for _, a := range ind.LeftAttrs {
			bound[a] = true
		}
	}

	keySet := make(map[string]bool, len(rs.PrimaryKey))
	for _, k := range rs.PrimaryKey {
		keySet[k] = true
	}

	rows := opts.rowsFor(rs.Name)
	tries := rows * 20
	for r.Len() < rows && tries > 0 {
		tries--
		t := make(relation.Tuple, len(attrs))
		ok := true
		// First satisfy IND bindings by sampling target key tuples.
		for _, b := range bindings {
			proj := b.target.TotalProject(b.ind.RightAttrs)
			if proj.Len() == 0 {
				// No parent values: attributes must be null, which requires
				// them nullable and outside the primary key.
				for _, a := range b.ind.LeftAttrs {
					if nna[a] || keySet[a] {
						ok = false
						break
					}
					t[indexOf(attrs, a)] = relation.Null()
				}
				if !ok {
					break
				}
				continue
			}
			sample := proj.Tuples()[rng.Intn(proj.Len())]
			for i, a := range b.ind.LeftAttrs {
				t[indexOf(attrs, a)] = sample[i]
			}
		}
		if !ok {
			break // unsatisfiable now; likely parent empty
		}
		// Fill unbound attributes.
		for i, a := range attrs {
			if bound[a] {
				continue
			}
			vs := pool(rs.Domain(a))
			if !keySet[a] && !nna[a] && rng.Float64() < opts.NullProb {
				t[i] = relation.Null()
			} else {
				t[i] = vs[rng.Intn(len(vs))]
			}
		}
		// Enforce key uniqueness (Identical semantics).
		keyPos := r.Positions(rs.PrimaryKey)
		keyVal := t.Project(keyPos)
		dup := false
		for _, existing := range r.Tuples() {
			if existing.Project(keyPos).Identical(keyVal) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		// Rejection step for any general null constraint of this scheme.
		r.Add(t)
		bad := false
		for _, nc := range s.NullsOf(rs.Name) {
			if !nc.Satisfied(r) {
				bad = true
				break
			}
		}
		if bad {
			r.Remove(t)
		}
	}
	return nil
}

func indexOf(attrs []string, a string) int {
	for i, x := range attrs {
		if x == a {
			return i
		}
	}
	panic("state: attribute not in scheme: " + a)
}
