package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/obs"
)

// reopen opens dir with no failpoints and returns the recovery.
func reopen(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	opts.Failpoint = nil
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func payloads(rec *Recovery) []string {
	out := make([]string, len(rec.Records))
	for i, r := range rec.Records {
		out[i] = string(r.Payload)
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCommitAndRecoveryRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %d records", len(rec.Records))
	}
	want := []string{"alpha", "beta", "gamma", "delta"}
	if _, err := l.Commit([]byte(want[0]), []byte(want[1])); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]byte(want[2])); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]byte(want[3])); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]byte("after close")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Commit after Close = %v, want ErrClosed", err)
	}
	l2, rec2 := reopen(t, dir, Options{})
	defer l2.Close()
	if got := payloads(rec2); !equalStrings(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	for i, r := range rec2.Records {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]byte("keep-1"), []byte("keep-2")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append half a frame to the tail segment.
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := appendFrame(nil, 99, []byte("torn-record"))
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore := fileSize(t, seg)

	l2, rec := reopen(t, dir, Options{})
	defer l2.Close()
	if got := payloads(rec); !equalStrings(got, []string{"keep-1", "keep-2"}) {
		t.Fatalf("recovered %v, want the intact prefix", got)
	}
	if rec.TruncatedBytes != int64(len(torn)/2) {
		t.Fatalf("TruncatedBytes = %d, want %d", rec.TruncatedBytes, len(torn)/2)
	}
	if after := fileSize(t, seg); after != sizeBefore-int64(len(torn)/2) {
		t.Fatalf("torn tail not physically truncated: %d -> %d", sizeBefore, after)
	}
}

func TestRecoveryStopsAtCorruptFrame(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]byte("good"), []byte("soon-corrupt"), []byte("unreachable")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the second record: its CRC check must fail and
	// end the segment there, discarding the third record too.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := frameHeader + 8 + len("good")
	data[firstLen+frameHeader+8] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := reopen(t, dir, Options{})
	defer l2.Close()
	if got := payloads(rec); !equalStrings(got, []string{"good"}) {
		t.Fatalf("recovered %v, want just the record before the corruption", got)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("corrupt tail not accounted as truncated")
	}
}

func TestSegmentRotationAndReplayOrder(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("record-%02d", i)
		want = append(want, p)
		if _, err := l.Commit([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if n := countSegments(t, dir); n < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", n)
	}
	l2, rec := reopen(t, dir, Options{})
	defer l2.Close()
	if got := payloads(rec); !equalStrings(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}

func TestRecoverySkipsDuplicatedSegment(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"one", "two", "three"}
	for _, p := range want {
		if _, err := l.Commit([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := DuplicateTailSegment(dir); err != nil {
		t.Fatal(err)
	}
	l2, rec := reopen(t, dir, Options{})
	defer l2.Close()
	if got := payloads(rec); !equalStrings(got, want) {
		t.Fatalf("recovered %v after segment duplication, want %v", got, want)
	}
	if rec.SkippedRecords != len(want) {
		t.Fatalf("SkippedRecords = %d, want %d duplicates dropped", rec.SkippedRecords, len(want))
	}
}

func TestCheckpointResetsLogAndRecovery(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l, _, err := Open(dir, Options{Policy: SyncAlways, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]byte("pre-1"), []byte("pre-2")); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint([]byte("SNAPSHOT")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]byte("post-1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := reopen(t, dir, Options{})
	defer l2.Close()
	if string(rec.Snapshot) != "SNAPSHOT" {
		t.Fatalf("recovered snapshot %q", rec.Snapshot)
	}
	if rec.SnapshotLSN != 2 {
		t.Fatalf("SnapshotLSN = %d, want 2", rec.SnapshotLSN)
	}
	if got := payloads(rec); !equalStrings(got, []string{"post-1"}) {
		t.Fatalf("recovered %v, want only the post-checkpoint record", got)
	}
	if reg.Counter(metricWalCheckpoints, obs.L("wal", "wal")).Value() != 1 {
		t.Fatal("checkpoint counter not incremented")
	}
}

// TestCheckpointCrashBeforeRenameIsInvisible proves the atomic temp-file +
// rename protocol: a checkpoint that dies before the rename leaves recovery
// exactly as if it never ran.
func TestCheckpointFailpointRenameCrash(t *testing.T) {
	dir := t.TempDir()
	fp := &Failpoint{FailRename: 1}
	l, _, err := Open(dir, WithFailpoint(SyncAlways, fp))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b"}
	for _, p := range want {
		if _, err := l.Commit([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint([]byte("DOOMED")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Checkpoint = %v, want injected failure", err)
	}
	if _, err := l.Commit([]byte("later")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Commit after crash = %v, want ErrCrashed", err)
	}
	l2, rec := reopen(t, dir, Options{})
	defer l2.Close()
	if rec.Snapshot != nil {
		t.Fatalf("half-finished checkpoint became visible: %q", rec.Snapshot)
	}
	if got := payloads(rec); !equalStrings(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	if leftover := globCount(t, dir, "*"+tmpSuffix); leftover != 0 {
		t.Fatalf("%d stale .tmp files survived reopen", leftover)
	}
}

// TestFailpointCrashLeavesCommittedPrefix drives each write/fsync failpoint
// — including faults at the segment-rotation boundary — and asserts the
// durable log equals the successful-commit prefix exactly.
func TestFailpointCrashLeavesCommittedPrefix(t *testing.T) {
	cases := []struct {
		name          string
		opts          func() Options
		wantCommitted int
	}{
		{"fail_write_3", func() Options { return WithFailpoint(SyncAlways, &Failpoint{FailWrite: 3}) }, 2},
		{"torn_write_3", func() Options { return WithFailpoint(SyncAlways, &Failpoint{TornWrite: 3}) }, 2},
		{"fail_sync_2", func() Options { return WithFailpoint(SyncAlways, &Failpoint{FailSync: 2}) }, 1},
		// With SegmentBytes=8 every commit rotates, so under SyncAlways the
		// fsync ordinals alternate group-commit, rotation, group-commit, …
		// fsync 4 is the rotation fsync of the second commit (post-commit
		// fault: that commit must still succeed and survive replay).
		{"rotation_fsync_4", func() Options {
			o := WithFailpoint(SyncAlways, &Failpoint{FailSync: 4})
			o.SegmentBytes = 8
			return o
		}, 2},
		// Under SyncNever no fsync fires during commits, so FailSync can only
		// hit Close's final fsync — all six commits succeed and none may be
		// lost (the bytes are in the OS; this models a process, not power,
		// crash).
		{"close_fsync_1", func() Options {
			return WithFailpoint(SyncNever, &Failpoint{FailSync: 1})
		}, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _, err := Open(dir, tc.opts())
			if err != nil {
				t.Fatal(err)
			}
			var committed []string
			for i := 0; i < 6; i++ {
				p := fmt.Sprintf("payload-%d", i)
				if _, err := l.Commit([]byte(p)); err == nil {
					committed = append(committed, p)
				}
			}
			if len(committed) != tc.wantCommitted {
				t.Fatalf("%d commits succeeded, want %d", len(committed), tc.wantCommitted)
			}
			l.Close()
			l2, rec := reopen(t, dir, Options{})
			defer l2.Close()
			if got := payloads(rec); !equalStrings(got, committed) {
				t.Fatalf("recovered %v, want committed prefix %v", got, committed)
			}
		})
	}
}

// TestRotationFaultIsPostCommit pins the contract for a fault at the
// segment-rotation boundary: the group is already durable when roll runs, so
// Commit must report success (an error here would make the caller revert
// effects that replay then restores — divergence), the log must refuse
// further work, and Close must surface the crash rather than return nil.
func TestRotationFaultIsPostCommit(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes=8 forces a rotation on the first commit; under SyncAlways
	// fsync 1 is the group commit, fsync 2 the rotation.
	opts := Options{Policy: SyncAlways, SegmentBytes: 8, Failpoint: &Failpoint{FailSync: 2}}
	l, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Commit([]byte("durable"))
	if err != nil {
		t.Fatalf("Commit whose rotation failed = %v, want success: the group was already durable", err)
	}
	if lsn != 1 {
		t.Fatalf("Commit LSN = %d, want 1", lsn)
	}
	if _, err := l.Commit([]byte("later")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Commit after rotation fault = %v, want ErrCrashed", err)
	}
	if err := l.Close(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Close of crashed log = %v, want the crash surfaced via ErrCrashed", err)
	}
	l2, rec := reopen(t, dir, Options{})
	defer l2.Close()
	if got := payloads(rec); !equalStrings(got, []string{"durable"}) {
		t.Fatalf("recovered %v, want the acknowledged commit", got)
	}
}

// TestMidLogCorruptionRefusesRecovery flips a byte in a NON-final segment:
// under the crash-only failure model a torn tail can only arise in the last
// segment, so mid-log damage means committed records are missing and Open
// must fail instead of silently replaying the segments after the gap.
func TestMidLogCorruptionRefusesRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Commit([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if err != nil || len(segs) < 2 {
		t.Fatalf("need several segments, got %d (%v)", len(segs), err)
	}
	first := segs[0]
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader+8] ^= 0xFF // corrupt the first record's payload
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open recovered past mid-log corruption, want an error")
	}
}

// TestWALConcurrentGroupCommit hammers Commit from many goroutines under the
// race detector and checks every successful commit survives recovery.
func TestWALConcurrentGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: SyncInterval, Interval: 1, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p := fmt.Sprintf("w%d-i%d", w, i)
				if _, err := l.Commit([]byte(p), []byte(p+"-second")); err != nil {
					t.Errorf("Commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := reopen(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != workers*perWorker*2 {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), workers*perWorker*2)
	}
	// Group atomicity: each commit's two records must be adjacent.
	for i := 0; i < len(rec.Records); i += 2 {
		a, b := string(rec.Records[i].Payload), string(rec.Records[i+1].Payload)
		if b != a+"-second" {
			t.Fatalf("group torn apart at %d: %q then %q", i, a, b)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, p := range []SyncPolicy{SyncNever, SyncInterval, SyncAlways} {
		got, err := ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("roundtrip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}

func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	return matches[len(matches)-1]
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	return globCount(t, dir, "*"+segSuffix)
}

func globCount(t *testing.T, dir, pattern string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
