package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// segmentFiles returns the segment file names in dir, sorted by index.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), segSuffix) {
			segs = append(segs, e.Name())
		}
	}
	return segs
}

// copyDir copies every regular file in src into dst.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// corruptSnapshotPayload flips one payload byte of a framed snapshot file.
func corruptSnapshotPayload(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) <= snapOverhead {
		t.Fatalf("snapshot %s too short to corrupt", path)
	}
	data[len(snapMagic)] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// Regression for the silent-gap bug: a deleted middle segment used to replay
// without error, losing a committed stretch. Recovery must refuse with ErrGap.
func TestRecoveryRefusesMissingMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes=8 rotates after every commit, one record per segment.
	l, _, err := Open(dir, Options{Policy: SyncAlways, SegmentBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"one", "two", "three"} {
		if _, err := l.Commit([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segmentFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %v", segs)
	}
	if err := os.Remove(filepath.Join(dir, segs[1])); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{})
	if !errors.Is(err, ErrGap) {
		t.Fatalf("Open after removing middle segment = %v, want ErrGap", err)
	}
}

// Regression for the unchecked-snapshot bug: a corrupt newest snapshot must
// not be adopted as the baseline. With an older snapshot and the full segment
// suffix still on disk, recovery falls back and replays the difference.
func TestCorruptNewestSnapshotFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := l.Commit([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint([]byte("SNAP-A")); err != nil {
		t.Fatal(err)
	}
	want := []string{"post-6", "post-7", "post-8", "post-9", "post-10"}
	for _, p := range want {
		if _, err := l.Commit([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Keep a copy of snapshot A and the segments holding LSNs 6..10, then let
	// checkpoint B (at LSN 10) compact them away.
	backup := t.TempDir()
	copyDir(t, dir, backup)
	l2, _ := reopen(t, dir, Options{Policy: SyncAlways})
	if err := l2.Checkpoint([]byte("SNAP-B")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	// Restore the pre-compaction files and corrupt snapshot B: the older
	// snapshot plus the surviving segments reach LSN 10, so recovery can fall
	// back without losing anything.
	copyDir(t, backup, dir)
	corruptSnapshotPayload(t, filepath.Join(dir, fmt.Sprintf("%020d%s", 10, snapSuffix)))
	l3, rec := reopen(t, dir, Options{})
	defer l3.Close()
	if string(rec.Snapshot) != "SNAP-A" || rec.SnapshotLSN != 5 {
		t.Fatalf("fell back to snapshot %q at LSN %d, want SNAP-A at 5", rec.Snapshot, rec.SnapshotLSN)
	}
	if got := payloads(rec); !equalStrings(got, want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	if rec.CorruptSnapshots != 1 {
		t.Fatalf("CorruptSnapshots = %d, want 1", rec.CorruptSnapshots)
	}
	if l3.LSN() != 10 {
		t.Fatalf("recovered LSN %d, want 10", l3.LSN())
	}
}

// Regression: with nothing to fall back to, a corrupt snapshot refuses
// recovery instead of silently loading garbage as the baseline.
func TestCorruptOnlySnapshotRefusesRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]byte("a"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint([]byte("ONLY")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	corruptSnapshotPayload(t, filepath.Join(dir, fmt.Sprintf("%020d%s", 2, snapSuffix)))
	_, _, err = Open(dir, Options{})
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("Open with only snapshot corrupt = %v, want ErrSnapshotCorrupt", err)
	}
}

// Falling back to an older snapshot is only sound when the segments still
// reach the corrupt snapshot's LSN. If they were compacted away, recovery
// must refuse the stale baseline rather than silently lose the suffix.
func TestCorruptSnapshotRefusesStaleFallback(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]byte("a"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint([]byte("SNAP-A")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]byte("c"), []byte("d")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	backup := t.TempDir()
	copyDir(t, dir, backup)
	l2, _ := reopen(t, dir, Options{Policy: SyncAlways})
	if err := l2.Checkpoint([]byte("SNAP-B")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	// Restore only the older snapshot — NOT the segments holding LSNs 3..4 —
	// and corrupt the newest. Replay tops out at LSN 2 < 4, so recovery must
	// refuse.
	data, err := os.ReadFile(filepath.Join(backup, fmt.Sprintf("%020d%s", 2, snapSuffix)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%020d%s", 2, snapSuffix)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	corruptSnapshotPayload(t, filepath.Join(dir, fmt.Sprintf("%020d%s", 4, snapSuffix)))
	_, _, err = Open(dir, Options{})
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("Open with compacted fallback = %v, want ErrSnapshotCorrupt", err)
	}
}

// Legacy footer-less snapshots (written before the integrity framing) must
// keep loading unchanged.
func TestLegacySnapshotLoads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, fmt.Sprintf("%020d%s", 5, snapSuffix))
	if err := os.WriteFile(path, []byte("LEGACY"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := reopen(t, dir, Options{})
	defer l.Close()
	if string(rec.Snapshot) != "LEGACY" || rec.SnapshotLSN != 5 {
		t.Fatalf("legacy snapshot loaded as %q at LSN %d", rec.Snapshot, rec.SnapshotLSN)
	}
	if l.LSN() != 5 {
		t.Fatalf("LSN = %d, want 5", l.LSN())
	}
}

func TestReadCommittedStreamsSuffix(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: SyncAlways, SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := []string{"r1", "r2", "r3", "r4", "r5"}
	if _, err := l.Commit([]byte(want[0]), []byte(want[1])); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]byte(want[2]), []byte(want[3]), []byte(want[4])); err != nil {
		t.Fatal(err)
	}

	recs, horizon, err := l.ReadCommitted(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if horizon != 5 || len(recs) != 5 {
		t.Fatalf("ReadCommitted(0) = %d records, horizon %d; want 5, 5", len(recs), horizon)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || string(r.Payload) != want[i] {
			t.Fatalf("record %d = LSN %d %q", i, r.LSN, r.Payload)
		}
	}

	recs, _, err = l.ReadCommitted(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].LSN != 4 || recs[1].LSN != 5 {
		t.Fatalf("ReadCommitted(3) = %v", recs)
	}

	recs, _, err = l.ReadCommitted(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].LSN != 2 {
		t.Fatalf("ReadCommitted(0, max 2) = %v", recs)
	}

	recs, horizon, err = l.ReadCommitted(5, 0)
	if err != nil || len(recs) != 0 || horizon != 5 {
		t.Fatalf("caught-up ReadCommitted = %v, %d, %v", recs, horizon, err)
	}

	if err := l.Checkpoint([]byte("STATE")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.ReadCommitted(0, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadCommitted below checkpoint = %v, want ErrCompacted", err)
	}
	if recs, horizon, err := l.ReadCommitted(5, 0); err != nil || len(recs) != 0 || horizon != 5 {
		t.Fatalf("ReadCommitted at checkpoint = %v, %d, %v", recs, horizon, err)
	}
}

func TestCommitShippedMirrorsPrimary(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p, _, err := Open(pdir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	want := []string{"a", "b", "c"}
	for _, s := range want {
		if _, err := p.Commit([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	recs, _, err := p.ReadCommitted(0, 0)
	if err != nil {
		t.Fatal(err)
	}

	f, _, err := Open(fdir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	accepted, err := f.CommitShipped(recs)
	if err != nil || len(accepted) != 3 {
		t.Fatalf("CommitShipped = %d accepted, %v", len(accepted), err)
	}
	if f.LSN() != 3 {
		t.Fatalf("follower LSN = %d, want 3", f.LSN())
	}

	// Duplicate delivery is harmless and appends nothing.
	accepted, err = f.CommitShipped(recs)
	if err != nil || len(accepted) != 0 {
		t.Fatalf("duplicate CommitShipped = %d accepted, %v", len(accepted), err)
	}

	// A gapped group is refused before anything is written.
	_, err = f.CommitShipped([]Record{{LSN: 10, Payload: []byte("hole")}})
	if !errors.Is(err, ErrGap) {
		t.Fatalf("gapped CommitShipped = %v, want ErrGap", err)
	}
	if f.LSN() != 3 {
		t.Fatalf("follower LSN moved to %d after refused gap", f.LSN())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The follower's log recovers as a byte-for-byte prefix of the primary's.
	f2, rec := reopen(t, fdir, Options{})
	defer f2.Close()
	if got := payloads(rec); !equalStrings(got, want) {
		t.Fatalf("follower recovered %v, want %v", got, want)
	}
	for i, r := range rec.Records {
		if r.LSN != uint64(i+1) {
			t.Fatalf("follower record %d has LSN %d", i, r.LSN)
		}
	}
}

func TestInstallSnapshotBootstrapsFollower(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p, _, err := Open(pdir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Commit([]byte("x"), []byte("y"), []byte("z")); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint([]byte("BASE")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Commit([]byte("tail")); err != nil {
		t.Fatal(err)
	}

	data, lsn, ok, err := p.ReadSnapshot()
	if err != nil || !ok || string(data) != "BASE" || lsn != 3 {
		t.Fatalf("ReadSnapshot = %q, %d, %v, %v", data, lsn, ok, err)
	}

	f, _, err := Open(fdir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InstallSnapshot(data, lsn); err != nil {
		t.Fatal(err)
	}
	if f.LSN() != 3 {
		t.Fatalf("follower LSN after install = %d, want 3", f.LSN())
	}
	// Rewinding to an older snapshot is refused.
	if err := f.InstallSnapshot([]byte("OLD"), 1); err == nil {
		t.Fatal("InstallSnapshot rewind succeeded, want error")
	}
	recs, _, err := p.ReadCommitted(lsn, 0)
	if err != nil || len(recs) != 1 {
		t.Fatalf("ReadCommitted(%d) = %v, %v", lsn, recs, err)
	}
	if _, err := f.CommitShipped(recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, rec := reopen(t, fdir, Options{})
	defer f2.Close()
	if string(rec.Snapshot) != "BASE" || rec.SnapshotLSN != 3 {
		t.Fatalf("follower recovered snapshot %q at %d", rec.Snapshot, rec.SnapshotLSN)
	}
	if got := payloads(rec); !equalStrings(got, []string{"tail"}) {
		t.Fatalf("follower recovered %v, want [tail]", got)
	}
	if f2.LSN() != 4 {
		t.Fatalf("follower LSN = %d, want 4", f2.LSN())
	}
}

func TestReadSnapshotWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, _, ok, err := l.ReadSnapshot(); ok || err != nil {
		t.Fatalf("ReadSnapshot on fresh log = ok=%v, err=%v", ok, err)
	}
}

// A shipped record that would not fit the frame format (or carries no
// payload) must be refused at ingest, before anything is written — a
// durable-but-unparseable record would brick the follower at recovery.
func TestCommitShippedRejectsMalformedRecords(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.CommitShipped([]Record{{LSN: 1, Payload: []byte("ok-1")}}); err != nil {
		t.Fatal(err)
	}

	huge := make([]byte, maxRecordBytes-7) // body = 8-byte LSN + payload, one over the bound
	if _, err := l.CommitShipped([]Record{{LSN: 2, Payload: huge}}); err == nil {
		t.Fatal("oversized shipped record was accepted")
	}
	if l.LSN() != 1 {
		t.Fatalf("LSN moved to %d after refused oversized record", l.LSN())
	}
	huge = nil

	if _, err := l.CommitShipped([]Record{{LSN: 2, Payload: nil}}); err == nil {
		t.Fatal("empty shipped record was accepted")
	}
	if l.LSN() != 1 {
		t.Fatalf("LSN moved to %d after refused empty record", l.LSN())
	}

	// The stream continues cleanly after a refusal, and recovery sees only
	// the accepted records.
	if _, err := l.CommitShipped([]Record{{LSN: 2, Payload: []byte("ok-2")}}); err != nil {
		t.Fatalf("valid record after refusal: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := reopen(t, dir, Options{})
	defer l2.Close()
	if got := payloads(rec); !equalStrings(got, []string{"ok-1", "ok-2"}) {
		t.Fatalf("recovered %v, want [ok-1 ok-2]", got)
	}
}

// A new-format snapshot truncated inside its magic header is corrupt, not a
// legacy footer-less snapshot: the prefix proves the writer intended the
// framed format and the crash ate the rest.
func TestTruncatedSnapshotHeaderIsCorrupt(t *testing.T) {
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"mid-magic", []byte(snapMagic[:5])},
		{"empty", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, fmt.Sprintf("%020d%s", 3, snapSuffix))
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("Open over truncated header = %v, want ErrSnapshotCorrupt", err)
			}
		})
	}

	// A short file that is NOT a magic prefix is still a legacy snapshot.
	dir := t.TempDir()
	path := filepath.Join(dir, fmt.Sprintf("%020d%s", 3, snapSuffix))
	if err := os.WriteFile(path, []byte("LEG"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := reopen(t, dir, Options{})
	defer l.Close()
	if string(rec.Snapshot) != "LEG" || rec.SnapshotLSN != 3 {
		t.Fatalf("short legacy snapshot loaded as %q at LSN %d", rec.Snapshot, rec.SnapshotLSN)
	}
}

// ReadCommitted must return the same records whether or not segments below
// the cursor are skipped — across a live log and a recovered one, whose
// per-segment bounds are rebuilt during replay.
func TestReadCommittedSkipsFullyShippedSegments(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: SyncAlways, SegmentBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 1; i <= n; i++ {
		if _, err := l.Commit([]byte(fmt.Sprintf("r%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if segs := segmentFiles(t, dir); len(segs) < 3 {
		t.Fatalf("only %d segments; the skip path is not exercised", len(segs))
	}

	check := func(t *testing.T, l *Log) {
		t.Helper()
		for after := uint64(0); after <= n; after++ {
			recs, horizon, err := l.ReadCommitted(after, 0)
			if err != nil {
				t.Fatalf("ReadCommitted(%d): %v", after, err)
			}
			if horizon != n {
				t.Fatalf("ReadCommitted(%d) horizon = %d, want %d", after, horizon, n)
			}
			if len(recs) != int(n-after) {
				t.Fatalf("ReadCommitted(%d) = %d records, want %d", after, len(recs), n-after)
			}
			for i, r := range recs {
				wantLSN := after + uint64(i) + 1
				if r.LSN != wantLSN || string(r.Payload) != fmt.Sprintf("r%02d", wantLSN) {
					t.Fatalf("ReadCommitted(%d) record %d = LSN %d %q", after, i, r.LSN, r.Payload)
				}
			}
		}
	}
	check(t, l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// After recovery the bounds come from replay, not live commits.
	l2, _ := reopen(t, dir, Options{SegmentBytes: 8})
	defer l2.Close()
	check(t, l2)
}
