package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Record is one replayed log record.
type Record struct {
	LSN     uint64
	Payload []byte
}

// Recovery is what Open found on disk: the newest snapshot (if any) and the
// committed records that postdate it, in LSN order. The caller restores the
// snapshot, then applies the records.
type Recovery struct {
	// Snapshot is the newest checkpoint's contents, nil if none exists.
	Snapshot []byte
	// SnapshotLSN is the LSN the snapshot covers (0 without a snapshot);
	// every returned Record has a strictly greater LSN.
	SnapshotLSN uint64
	// Records are the surviving log records after the snapshot.
	Records []Record
	// TruncatedBytes counts bytes discarded as torn or corrupt frame tails.
	TruncatedBytes int64
	// SkippedRecords counts records dropped because their LSN did not
	// advance (duplicated segments) or was covered by the snapshot.
	SkippedRecords int
	// CorruptSnapshots counts snapshot files whose integrity footer failed
	// verification and were skipped in favor of an older one.
	CorruptSnapshots int
	// Segments is the number of segment files scanned.
	Segments int
}

// recover scans the directory: loads the newest snapshot, replays every
// segment in index order with CRC verification, truncates a torn tail off
// the last segment, and removes stale checkpoint temp files. It returns the
// highest segment index seen (0 if none).
func (l *Log) recover() (*Recovery, uint64, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: reading %s: %w", l.dir, err)
	}
	var segs []uint64
	var snaps []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, segSuffix):
			if idx, ok := parseSeq(name, segSuffix); ok {
				segs = append(segs, idx)
			}
		case strings.HasSuffix(name, snapSuffix):
			if lsn, ok := parseSeq(name, snapSuffix); ok {
				snaps = append(snaps, lsn)
			}
		case strings.HasSuffix(name, tmpSuffix):
			// A checkpoint died before its rename; the file is garbage.
			os.Remove(filepath.Join(l.dir, name))
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	rec := &Recovery{Segments: len(segs)}
	// Load the newest snapshot that verifies. A snapshot failing its
	// integrity footer is skipped in favor of the next-older one, but only
	// tentatively: the skipped snapshot proves records up to its LSN were
	// committed, so the segment replay below must reach at least that far or
	// recovery refuses (replaying a stale baseline without the difference
	// would silently lose the committed suffix).
	var needLSN uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		lsn := snaps[i]
		data, err := os.ReadFile(l.snapshotPath(lsn))
		if err != nil {
			return nil, 0, fmt.Errorf("wal: reading snapshot %d: %w", lsn, err)
		}
		payload, err := decodeSnapshot(data)
		if err != nil {
			rec.CorruptSnapshots++
			if needLSN == 0 {
				needLSN = lsn
			}
			if i == 0 {
				return nil, 0, fmt.Errorf("wal: snapshot %d: %w (no older snapshot to fall back to)", lsn, err)
			}
			continue
		}
		rec.Snapshot = payload
		rec.SnapshotLSN = lsn
		l.snapLSN = lsn
		l.lsn = lsn
		break
	}
	var maxSeg uint64
	for i, idx := range segs {
		if idx > maxSeg {
			maxSeg = idx
		}
		if err := l.replaySegment(rec, idx, i == len(segs)-1); err != nil {
			return nil, 0, err
		}
		// The log's LSN after replaying a segment bounds every LSN it holds
		// (duplicates never advance it), which is all ReadCommitted needs to
		// skip fully-shipped segments.
		l.segLast[idx] = l.lsn
	}
	if l.lsn < needLSN {
		return nil, 0, fmt.Errorf("%w: newest snapshot (LSN %d) failed verification and the surviving segments only reach LSN %d; refusing to recover a stale baseline", ErrSnapshotCorrupt, needLSN, l.lsn)
	}
	l.m.replayRecords.Add(int64(len(rec.Records)))
	l.m.replaySkipped.Add(int64(rec.SkippedRecords))
	l.m.replayTruncated.Add(rec.TruncatedBytes)
	return rec, maxSeg, nil
}

// replaySegment scans one segment file frame by frame. A torn or corrupt
// frame in the last segment is a legitimate crash artifact (a mid-write
// power cut): the tail is counted as truncated and physically cut off the
// file. Anywhere else it means committed records are missing mid-log, and
// silently replaying the segments after the gap would be data loss — so
// recovery refuses with an error instead.
func (l *Log) replaySegment(rec *Recovery, idx uint64, last bool) error {
	path := l.segmentPath(idx)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: reading segment %d: %w", idx, err)
	}
	off := 0
	for off < len(data) {
		rest := len(data) - off
		if rest < frameHeader {
			break // torn header
		}
		bodyLen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if bodyLen < 8 || bodyLen > maxRecordBytes || bodyLen > rest-frameHeader {
			break // torn or garbage length
		}
		body := data[off+frameHeader : off+frameHeader+bodyLen]
		if crc32.ChecksumIEEE(body) != crc {
			break // corrupt frame
		}
		lsn := binary.LittleEndian.Uint64(body[:8])
		if lsn <= l.lsn {
			// Duplicate (copied segment) or covered by the snapshot.
			rec.SkippedRecords++
		} else {
			// Commit assigns LSNs densely, so the next surviving record must
			// advance by exactly one — across segment boundaries too. A jump
			// means a whole committed stretch is gone (a deleted or lost
			// middle segment); replaying past it would be silent data loss.
			if lsn != l.lsn+1 {
				return fmt.Errorf("%w: segment %d: LSN jumps from %d to %d (a committed segment is missing; refusing to recover past the gap)", ErrGap, idx, l.lsn, lsn)
			}
			l.lsn = lsn
			rec.Records = append(rec.Records, Record{
				LSN:     lsn,
				Payload: append([]byte(nil), body[8:]...),
			})
		}
		off += frameHeader + bodyLen
	}
	if off < len(data) {
		if !last {
			return fmt.Errorf("wal: segment %d: corrupt or torn frame at offset %d in a non-final segment (committed records are missing; refusing to recover past the gap)", idx, off)
		}
		rec.TruncatedBytes += int64(len(data) - off)
		if err := os.Truncate(path, int64(off)); err != nil {
			return fmt.Errorf("wal: truncating torn tail of segment %d: %w", idx, err)
		}
	}
	return nil
}

// parseSeq parses the numeric prefix of "<seq><suffix>" file names.
func parseSeq(name, suffix string) (uint64, bool) {
	n, err := strconv.ParseUint(strings.TrimSuffix(name, suffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
