// Package wal is the engine's durability substrate: a segmented, append-only
// write-ahead log with CRC32-framed records, group-commit buffering, a
// configurable fsync policy, snapshot checkpoints, and crash-recovery replay
// with torn-tail truncation.
//
// The log stores opaque payloads; internal/engine defines the record
// encoding. Each record carries a monotonically increasing log sequence
// number (LSN) inside the checksummed frame, so replay is idempotent against
// duplicated segments: a record whose LSN does not advance past the highest
// LSN already replayed is skipped.
//
// On-disk layout, all inside one directory:
//
//	00000000000000000001.wal    log segments, replayed in index order
//	00000000000000000042.state  snapshot checkpoint, named by the LSN it covers
//	*.tmp                       in-flight checkpoint (ignored and removed)
//
// Frame format (little-endian):
//
//	[4B body length][4B IEEE CRC32 of body][body = 8B LSN + payload]
//
// Failure model: Commit makes a group of records durable as one unit. If a
// write or fsync fails — including an injected failpoint — before the group
// reaches its commit point, the log enters a crashed state: the segment file
// is truncated back to the last fully-committed offset (so the half-written
// group leaves no trace on disk), Commit returns the error, the caller
// reverts its in-memory effects, and every subsequent call fails with
// ErrCrashed. A fault *after* the commit point (segment rotation: the old
// segment's fsync/close or the new segment's creation) cannot be reported as
// failure — the group is already durable and replay will apply it — so that
// Commit still succeeds and only the log's future is crashed. Either way the
// durable log equals the successful-commit prefix exactly — the invariant
// the crash-recovery property tests assert. Close on a crashed log reports
// the crash (wrapped in ErrCrashed) rather than pretending a clean flush.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
)

// SyncPolicy selects when Commit calls fsync.
type SyncPolicy int

const (
	// SyncNever flushes records to the operating system but never fsyncs
	// (except on Close and checkpoints). Committed records survive a process
	// crash but not a power failure.
	SyncNever SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.Interval, amortizing the
	// sync cost across commits; at most one interval of committed records is
	// exposed to a power failure.
	SyncInterval
	// SyncAlways fsyncs on every Commit: full durability, maximum cost.
	SyncAlways
)

// String names the policy as accepted by ParseSyncPolicy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncNever:
		return "never"
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("syncpolicy(%d)", int(p))
}

// ParseSyncPolicy parses "always", "interval", or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "never":
		return SyncNever, nil
	case "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval, or never)", s)
}

// Sentinel errors; match with errors.Is.
var (
	// ErrCrashed reports that a previous write, fsync, or checkpoint failed
	// and the log refuses further work; reopen the directory to recover.
	ErrCrashed = errors.New("wal: log crashed")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("wal: log closed")
	// ErrInjected is the failure injected by a Failpoint (wrapped by the
	// failing call's error; later calls report ErrCrashed).
	ErrInjected = errors.New("wal: injected fault")
	// ErrGap reports an LSN discontinuity: committed records are missing
	// from the log (a deleted middle segment, or a shipped stream skipping
	// ahead). Recovery and replication ingest both refuse to proceed past a
	// gap — replaying around one would silently lose committed records.
	ErrGap = errors.New("wal: missing committed records (LSN gap)")
	// ErrSnapshotCorrupt reports a checkpoint snapshot whose integrity
	// footer failed verification. Recovery falls back to the next-older
	// snapshot when the surviving segments still cover the difference, and
	// refuses otherwise.
	ErrSnapshotCorrupt = errors.New("wal: snapshot corrupt")
	// ErrCompacted reports a ReadCommitted position older than the newest
	// checkpoint: the records were deleted by compaction, so a replication
	// follower must bootstrap from the snapshot instead.
	ErrCompacted = errors.New("wal: records compacted into snapshot")
)

const (
	defaultInterval     = 100 * time.Millisecond
	defaultSegmentBytes = 4 << 20
	frameHeader         = 8 // 4B length + 4B CRC
	maxRecordBytes      = 256 << 20
	segSuffix           = ".wal"
	snapSuffix          = ".state"
	tmpSuffix           = ".tmp"
)

// Options configures Open.
type Options struct {
	// Policy is the fsync policy (default SyncNever, the zero value).
	Policy SyncPolicy
	// Interval is the minimum spacing between fsyncs under SyncInterval
	// (default 100ms).
	Interval time.Duration
	// SegmentBytes is the segment-rotation threshold (default 4 MiB): a
	// Commit that pushes the current segment past it starts a new segment.
	SegmentBytes int64
	// Name labels this log's metric series (wal=<name>); default "wal".
	Name string
	// Registry receives the log's metrics; nil disables instrumentation.
	Registry *obs.Registry
	// Failpoint injects deterministic faults for crash-recovery tests
	// (see WithFailpoint); nil disables injection.
	Failpoint *Failpoint
}

// Log is one open write-ahead log directory. All methods are safe for
// concurrent use; Commit serializes internally, which is what makes a
// multi-payload Commit a group commit.
type Log struct {
	dir string
	opt Options

	mu        sync.Mutex
	f         *os.File // current segment
	segIndex  uint64
	fileSize  int64 // bytes written to the current segment
	committed int64 // fileSize at the last successful Commit
	lsn       uint64
	snapLSN   uint64 // LSN covered by the newest snapshot
	// segLast maps each segment index to an upper bound on the LSNs of the
	// records it holds (exact for segments written by this process; for
	// recovered segments it is the log's LSN after replaying them, which can
	// only over-estimate). ReadCommitted uses it to skip segments that are
	// entirely at or below a fetch position instead of re-parsing the whole
	// retained log on every replication poll. A segment with no entry (the
	// just-opened one, or a file that survived a best-effort deletion) is
	// simply scanned.
	segLast  map[uint64]uint64
	lastSync time.Time
	crashed  error // non-nil once the log refuses further work
	fpArmed  bool  // failpoints fire only after Open's recovery completes
	m        *logMetrics
}

// Open opens (creating if needed) the log directory, replays whatever it
// holds, and returns the log positioned at a fresh segment plus the Recovery
// the caller must apply before logging anything new.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	if opts.Interval <= 0 {
		opts.Interval = defaultInterval
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.Name == "" {
		opts.Name = "wal"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	l := &Log{dir: dir, opt: opts, segLast: make(map[uint64]uint64), m: newLogMetrics(opts.Registry, opts.Name)}
	rec, maxSeg, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	l.segIndex = maxSeg + 1
	if err := l.openSegment(); err != nil {
		return nil, nil, err
	}
	l.lastSync = time.Now()
	l.fpArmed = true
	return l, rec, nil
}

// Commit appends the payloads as consecutive records and makes the group
// durable according to the fsync policy, all under one internal critical
// section — one write system call and at most one fsync for the whole group.
// It returns the LSN of the last record written. On failure the log is
// crashed (see the package comment) and the caller must treat the group as
// never logged.
func (l *Log) Commit(payloads ...[]byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed != nil {
		return 0, l.crashErr()
	}
	var buf []byte
	for _, p := range payloads {
		l.lsn++
		buf = appendFrame(buf, l.lsn, p)
		l.m.appends.Inc()
		l.m.appendSize.Observe(float64(frameHeader + 8 + len(p)))
	}
	if len(buf) == 0 {
		return l.lsn, nil
	}
	n, err := l.write(l.f, buf)
	l.fileSize += int64(n)
	if err != nil {
		l.crash(err)
		return 0, err
	}
	l.m.appendBytes.Add(int64(n))
	if err := l.maybeSync(false); err != nil {
		l.crash(err)
		return 0, err
	}
	l.committed = l.fileSize
	l.segLast[l.segIndex] = l.lsn
	if l.fileSize >= l.opt.SegmentBytes {
		if err := l.roll(); err != nil {
			// The group is already durable to the policy's guarantee (written,
			// and fsynced under SyncAlways) and l.committed has advanced, so
			// nothing of it can be truncated away and replay WILL apply it.
			// Reporting failure here would make the caller revert effects that
			// recovery later restores, so a rotation fault after the commit
			// point is post-commit: this group succeeds, and the sticky
			// crashed state fails every subsequent call instead.
			l.crash(err)
			return l.lsn, nil
		}
	}
	return l.lsn, nil
}

// Sync forces an fsync of the current segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed != nil {
		return l.crashErr()
	}
	if err := l.maybeSync(true); err != nil {
		l.crash(err)
		return err
	}
	return nil
}

// LSN returns the sequence number of the last record appended.
func (l *Log) LSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Close fsyncs and closes the current segment. The log refuses further work
// afterwards (ErrClosed).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed != nil {
		if l.f != nil {
			l.f.Close()
			l.f = nil
		}
		// Keep reporting the crash (ErrCrashed-wrapped, or ErrClosed for a
		// double Close) so callers that use Close as a durability signal
		// cannot mistake a crashed log for a cleanly flushed one.
		return l.crashErr()
	}
	err := l.fsync(l.f)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	l.crashed = ErrClosed
	return err
}

// maybeSync fsyncs the current segment if the policy (or force) calls for it.
// Caller holds l.mu.
func (l *Log) maybeSync(force bool) error {
	sync := force
	switch l.opt.Policy {
	case SyncAlways:
		sync = true
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opt.Interval {
			sync = true
		}
	}
	if !sync {
		return nil
	}
	start := time.Now()
	if err := l.fsync(l.f); err != nil {
		return err
	}
	l.lastSync = time.Now()
	l.m.fsyncs.Inc()
	l.m.fsyncLat.ObserveSince(start)
	return nil
}

// roll closes the current segment (fsyncing it first unless the policy is
// SyncNever) and starts the next one. Caller holds l.mu.
func (l *Log) roll() error {
	if l.opt.Policy != SyncNever {
		if err := l.fsync(l.f); err != nil {
			return err
		}
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.segIndex++
	return l.openSegment()
}

// openSegment creates segment l.segIndex and resets the offsets. Caller
// holds l.mu (or is Open, before the log escapes).
func (l *Log) openSegment() error {
	f, err := os.OpenFile(l.segmentPath(l.segIndex), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening segment: %w", err)
	}
	l.f = f
	l.fileSize = 0
	l.committed = 0
	l.m.segments.Inc()
	return nil
}

// crash marks the log unusable and truncates the current segment back to the
// last committed offset, so a half-written group leaves no trace. Caller
// holds l.mu.
func (l *Log) crash(err error) {
	l.crashed = err
	if l.f != nil && l.fileSize > l.committed {
		// Best effort: if the truncate itself fails the replay-side CRC and
		// torn-tail handling still discard the partial group.
		if terr := os.Truncate(l.segmentPath(l.segIndex), l.committed); terr == nil {
			l.fileSize = l.committed
		}
	}
}

func (l *Log) crashErr() error {
	if l.crashed == ErrClosed {
		return ErrClosed
	}
	return fmt.Errorf("%w: %v", ErrCrashed, l.crashed)
}

func (l *Log) segmentPath(idx uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%020d%s", idx, segSuffix))
}

func (l *Log) snapshotPath(lsn uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%020d%s", lsn, snapSuffix))
}

// appendFrame appends one framed record to buf.
func appendFrame(buf []byte, lsn uint64, payload []byte) []byte {
	bodyLen := 8 + len(payload)
	var hdr [frameHeader + 8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(bodyLen))
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	crc := crc32.ChecksumIEEE(hdr[8:16])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}
