package wal

import (
	"repro/internal/obs"
)

// Metric names of the wal package. Each series carries a wal=<name> label so
// several logs (base/merged engines, benchmarks) can share one registry.
const (
	metricWalAppends         = "wal.appends"
	metricWalAppendBytes     = "wal.append_bytes"
	metricWalAppendSize      = "wal.append_size_bytes"
	metricWalFsyncs          = "wal.fsyncs"
	metricWalFsyncSeconds    = "wal.fsync_seconds"
	metricWalSegments        = "wal.segments_opened"
	metricWalCheckpoints     = "wal.checkpoints"
	metricWalCheckpointBytes = "wal.checkpoint_bytes"
	metricWalReplayRecords   = "wal.replay_records"
	metricWalReplaySkipped   = "wal.replay_skipped_records"
	metricWalReplayTruncated = "wal.replay_truncated_bytes"
	metricWalShippedRecords  = "wal.shipped_records"
)

// logMetrics are one log's registry handles. All handles are nil-safe, so a
// nil registry costs nothing at the call sites.
type logMetrics struct {
	appends         *obs.Counter
	appendBytes     *obs.Counter
	appendSize      *obs.Histogram
	fsyncs          *obs.Counter
	fsyncLat        *obs.Histogram
	segments        *obs.Counter
	checkpoints     *obs.Counter
	checkpointBytes *obs.Counter
	replayRecords   *obs.Counter
	replaySkipped   *obs.Counter
	replayTruncated *obs.Counter
	shippedRecords  *obs.Counter
}

func newLogMetrics(r *obs.Registry, name string) *logMetrics {
	lbl := obs.L("wal", name)
	return &logMetrics{
		appends:         r.Counter(metricWalAppends, lbl),
		appendBytes:     r.Counter(metricWalAppendBytes, lbl),
		appendSize:      r.Histogram(metricWalAppendSize, obs.ByteBuckets, lbl),
		fsyncs:          r.Counter(metricWalFsyncs, lbl),
		fsyncLat:        r.Histogram(metricWalFsyncSeconds, obs.LatencyBuckets, lbl),
		segments:        r.Counter(metricWalSegments, lbl),
		checkpoints:     r.Counter(metricWalCheckpoints, lbl),
		checkpointBytes: r.Counter(metricWalCheckpointBytes, lbl),
		replayRecords:   r.Counter(metricWalReplayRecords, lbl),
		replaySkipped:   r.Counter(metricWalReplaySkipped, lbl),
		replayTruncated: r.Counter(metricWalReplayTruncated, lbl),
		shippedRecords:  r.Counter(metricWalShippedRecords, lbl),
	}
}
