package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
)

// Failpoint injects deterministic faults into the log's file-system
// primitives, for crash-recovery tests. Each field is the 1-based ordinal of
// the call that fails (0 = never fire); calls are counted from the moment
// Open returns, so recovery and the initial segment creation never trip a
// failpoint and a given ordinal is reproducible. A fired failpoint crashes
// the log exactly like a real I/O error: the torn group is truncated away
// and every later call returns ErrCrashed.
type Failpoint struct {
	// FailWrite makes the Nth file write fail outright, writing nothing.
	FailWrite int64
	// TornWrite makes the Nth file write persist only the first half of its
	// buffer and then fail — a mid-record torn tail for replay to discard.
	TornWrite int64
	// FailSync makes the Nth fsync fail (the bytes are already in the OS).
	FailSync int64
	// FailRename makes the Nth rename fail (checkpoint publishing).
	FailRename int64

	writes  atomic.Int64
	syncs   atomic.Int64
	renames atomic.Int64
}

// WithFailpoint returns Options running policy with fp injected — the
// conventional way tests arm a failpoint.
func WithFailpoint(policy SyncPolicy, fp *Failpoint) Options {
	return Options{Policy: policy, Failpoint: fp}
}

// fire reports whether the target ordinal was just reached.
func fire(counter *atomic.Int64, target int64) bool {
	return target > 0 && counter.Add(1) == target
}

// write is the failpoint-able file write used for segments and snapshots.
func (l *Log) write(f *os.File, b []byte) (int, error) {
	if fp := l.opt.Failpoint; fp != nil && l.fpArmed {
		n := fp.writes.Add(1)
		if fp.FailWrite > 0 && n == fp.FailWrite {
			return 0, fmt.Errorf("write %s: %w", f.Name(), ErrInjected)
		}
		if fp.TornWrite > 0 && n == fp.TornWrite {
			nw, _ := f.Write(b[:len(b)/2])
			return nw, fmt.Errorf("torn write %s: %w", f.Name(), ErrInjected)
		}
	}
	return f.Write(b)
}

// fsync is the failpoint-able fsync.
func (l *Log) fsync(f *os.File) error {
	if fp := l.opt.Failpoint; fp != nil && l.fpArmed && fire(&fp.syncs, fp.FailSync) {
		return fmt.Errorf("fsync %s: %w", f.Name(), ErrInjected)
	}
	return f.Sync()
}

// rename is the failpoint-able rename.
func (l *Log) rename(oldpath, newpath string) error {
	if fp := l.opt.Failpoint; fp != nil && l.fpArmed && fire(&fp.renames, fp.FailRename) {
		return fmt.Errorf("rename %s: %w", filepath.Base(newpath), ErrInjected)
	}
	return os.Rename(oldpath, newpath)
}

// DuplicateTailSegment copies the highest-numbered segment file to the next
// free index, simulating a crashed copy-based backup tool leaving a
// duplicated segment behind. Replay must deduplicate it by LSN. Test helper.
func DuplicateTailSegment(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var segs []uint64
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), segSuffix) {
			if idx, ok := parseSeq(e.Name(), segSuffix); ok {
				segs = append(segs, idx)
			}
		}
	}
	if len(segs) == 0 {
		return fmt.Errorf("wal: no segments in %s to duplicate", dir)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	last := segs[len(segs)-1]
	src, err := os.Open(filepath.Join(dir, fmt.Sprintf("%020d%s", last, segSuffix)))
	if err != nil {
		return err
	}
	defer src.Close()
	dst, err := os.Create(filepath.Join(dir, fmt.Sprintf("%020d%s", last+1, segSuffix)))
	if err != nil {
		return err
	}
	if _, err := io.Copy(dst, src); err != nil {
		dst.Close()
		return err
	}
	return dst.Close()
}
