package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

// Snapshot integrity framing. A checkpoint file is written as
//
//	[8B magic "RMSNAP01"][payload][4B payload length][4B IEEE CRC32 of payload]
//
// so bit-rot and filesystem truncation are detected on load instead of being
// silently adopted as the recovery baseline. The magic header versions the
// format: a file that does not start with it is a legacy footer-less snapshot
// and loads as-is (old directories keep recovering), while a file that does
// start with it MUST verify. Truncation cannot masquerade as legacy: a cut
// inside the payload or footer keeps the full header, and a cut inside the
// header itself leaves a prefix of the magic, which decodeSnapshot treats as
// corrupt rather than legacy.
const snapMagic = "RMSNAP01"

const snapOverhead = len(snapMagic) + 8 // header + [len][CRC32] footer

// encodeSnapshot frames payload with the magic header and integrity footer.
func encodeSnapshot(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+snapOverhead)
	out = append(out, snapMagic...)
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
}

// decodeSnapshot verifies and strips the snapshot framing. Legacy files
// (no magic header) pass through unchanged — but a file shorter than the
// header that is a prefix of the magic (including an empty file, the classic
// filesystem-truncation artifact) is a new-format snapshot cut inside its
// header, and must read as corrupt rather than be adopted as a legacy
// baseline.
func decodeSnapshot(data []byte) ([]byte, error) {
	if len(data) < len(snapMagic) {
		if strings.HasPrefix(snapMagic, string(data)) {
			return nil, fmt.Errorf("%w: %d bytes is a truncated header", ErrSnapshotCorrupt, len(data))
		}
		return data, nil // legacy footer-less snapshot
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return data, nil // legacy footer-less snapshot
	}
	if len(data) < snapOverhead {
		return nil, fmt.Errorf("%w: %d bytes is too short for the integrity footer", ErrSnapshotCorrupt, len(data))
	}
	payload := data[len(snapMagic) : len(data)-8]
	storedLen := binary.LittleEndian.Uint32(data[len(data)-8:])
	storedCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if uint64(storedLen) != uint64(len(payload)) {
		return nil, fmt.Errorf("%w: footer length %d does not match payload length %d", ErrSnapshotCorrupt, storedLen, len(payload))
	}
	if crc := crc32.ChecksumIEEE(payload); crc != storedCRC {
		return nil, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrSnapshotCorrupt, storedCRC, crc)
	}
	return payload, nil
}

// Checkpoint makes data the new recovery baseline: it is written to a temp
// file, fsynced, atomically renamed to <LSN>.state, and the directory
// fsynced; only then are the now-superseded segments and older snapshots
// deleted and a fresh segment started. A crash at any point leaves the
// directory recoverable:
//
//   - before the rename: the temp file is ignored (and removed) by Open, and
//     the previous snapshot + segments replay as if the checkpoint never ran;
//   - after the rename: replay starts from the new snapshot and skips every
//     record it covers (LSN <= snapshot LSN), so leftover segments and older
//     snapshots are harmless until deletion finishes.
//
// The caller must guarantee no Commit runs concurrently that the snapshot
// does not already include (the engine holds every table lock while it
// serializes the state and calls Checkpoint).
func (l *Log) Checkpoint(data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed != nil {
		return l.crashErr()
	}
	return l.checkpointLocked(data, l.lsn)
}

// checkpointLocked publishes data as the snapshot covering lsn and truncates
// the superseded log. Caller holds l.mu; lsn must be >= l.lsn (Checkpoint
// passes l.lsn itself, InstallSnapshot a primary's horizon).
func (l *Log) checkpointLocked(data []byte, lsn uint64) error {
	tmp := filepath.Join(l.dir, fmt.Sprintf("%020d%s%s", lsn, snapSuffix, tmpSuffix))
	if err := l.writeSnapshot(tmp, data); err != nil {
		l.crash(err)
		return err
	}
	if err := l.rename(tmp, l.snapshotPath(lsn)); err != nil {
		l.crash(fmt.Errorf("wal: publishing snapshot: %w", err))
		return l.crashed
	}
	if err := l.fsyncDir(); err != nil {
		l.crash(err)
		return err
	}
	// The snapshot is durable; everything logged up to lsn is superseded.
	prevSeg := l.segIndex
	if err := l.f.Close(); err != nil {
		l.crash(err)
		return err
	}
	l.f = nil
	l.removeObsolete(lsn, prevSeg)
	// Every segment at or below prevSeg is gone (a file surviving the
	// best-effort deletion is simply scanned again); the fresh segment
	// repopulates the bounds on its first commit.
	l.segLast = make(map[uint64]uint64)
	l.snapLSN = lsn
	l.lsn = lsn
	l.segIndex++
	if err := l.openSegment(); err != nil {
		l.crash(err)
		return err
	}
	l.m.checkpoints.Inc()
	l.m.checkpointBytes.Add(int64(len(data)))
	return nil
}

// writeSnapshot writes and fsyncs the temp snapshot file, framed with the
// magic header and [len][CRC32] integrity footer.
func (l *Log) writeSnapshot(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating snapshot temp file: %w", err)
	}
	if _, err := l.write(f, encodeSnapshot(data)); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	if err := l.fsync(f); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing snapshot: %w", err)
	}
	return f.Close()
}

// removeObsolete deletes segments up to and including lastSeg and snapshots
// older than keepLSN. Deletion is best-effort: anything left behind is
// skipped (snapshots) or deduplicated by LSN (segments) on the next Open.
func (l *Log) removeObsolete(keepLSN, lastSeg uint64) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, segSuffix):
			if idx, ok := parseSeq(name, segSuffix); ok && idx <= lastSeg {
				os.Remove(filepath.Join(l.dir, name))
			}
		case strings.HasSuffix(name, snapSuffix):
			if lsn, ok := parseSeq(name, snapSuffix); ok && lsn < keepLSN {
				os.Remove(filepath.Join(l.dir, name))
			}
		}
	}
}

// fsyncDir fsyncs the log directory so a just-renamed snapshot name is
// durable.
func (l *Log) fsyncDir() error {
	d, err := os.Open(l.dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir for sync: %w", err)
	}
	err = l.fsync(d)
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: syncing dir: %w", err)
	}
	return nil
}
