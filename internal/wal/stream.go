package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strings"
)

// This file is the log's replication surface. A primary streams its committed
// suffix with ReadCommitted; a follower appends the shipped records to its own
// log with CommitShipped — preserving the PRIMARY's LSNs, so the follower's
// log is byte-for-byte a prefix of the primary's record sequence and promotion
// simply continues the numbering. A follower too far behind (the primary
// compacted the records it needs into a checkpoint) bootstraps from
// ReadSnapshot/InstallSnapshot instead.

// ReadCommitted returns up to maxRecords committed records with LSN strictly
// greater than afterLSN, in LSN order, plus the commit horizon (the LSN of the
// newest committed record). It returns ErrCompacted when afterLSN predates the
// newest checkpoint — those records were deleted, so the caller must ship the
// snapshot instead. The scan runs under the log's commit mutex and never
// returns a torn tail: the open segment is read only up to its last
// group-commit offset.
func (l *Log) ReadCommitted(afterLSN uint64, maxRecords int) ([]Record, uint64, error) {
	if maxRecords <= 0 {
		maxRecords = 1 << 30
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed != nil {
		return nil, 0, l.crashErr()
	}
	if afterLSN < l.snapLSN {
		return nil, l.lsn, fmt.Errorf("%w: records after LSN %d start below the checkpoint at LSN %d", ErrCompacted, afterLSN, l.snapLSN)
	}
	if afterLSN >= l.lsn {
		return nil, l.lsn, nil
	}
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: reading %s: %w", l.dir, err)
	}
	var segs []uint64
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), segSuffix) {
			if idx, ok := parseSeq(e.Name(), segSuffix); ok {
				segs = append(segs, idx)
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	var out []Record
	for _, idx := range segs {
		if len(out) >= maxRecords {
			break
		}
		// Skip segments whose records all sit at or below the fetch position
		// (segLast is an upper bound on the segment's LSNs, so this can only
		// over-scan, never over-skip). A caught-up follower polls with
		// afterLSN at the tail; without this, every poll re-parses the whole
		// retained log while holding l.mu.
		if last, ok := l.segLast[idx]; ok && last <= afterLSN {
			continue
		}
		data, err := os.ReadFile(l.segmentPath(idx))
		if err != nil {
			return nil, 0, fmt.Errorf("wal: reading segment %d: %w", idx, err)
		}
		if idx == l.segIndex {
			// The open segment may hold a group still being written (or a
			// torn suffix after a crash-in-progress); expose only the
			// committed prefix.
			if int64(len(data)) > l.committed {
				data = data[:l.committed]
			}
		}
		off := 0
		for off < len(data) && len(out) < maxRecords {
			rest := len(data) - off
			if rest < frameHeader {
				break
			}
			bodyLen := int(binary.LittleEndian.Uint32(data[off : off+4]))
			crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
			if bodyLen < 8 || bodyLen > maxRecordBytes || bodyLen > rest-frameHeader {
				break
			}
			body := data[off+frameHeader : off+frameHeader+bodyLen]
			if crc32.ChecksumIEEE(body) != crc {
				break
			}
			lsn := binary.LittleEndian.Uint64(body[:8])
			if lsn > afterLSN && (len(out) == 0 || lsn > out[len(out)-1].LSN) {
				out = append(out, Record{LSN: lsn, Payload: append([]byte(nil), body[8:]...)})
			}
			off += frameHeader + bodyLen
		}
	}
	l.m.shippedRecords.Add(int64(len(out)))
	return out, l.lsn, nil
}

// CommitShipped appends records shipped from a primary, preserving their
// LSNs, and makes the group durable under the log's fsync policy — the
// follower-side twin of Commit. Records whose LSN does not advance past the
// log's current position are skipped (duplicate delivery is harmless); a
// record that jumps past the next expected LSN refuses the whole group with
// ErrGap before anything is written, so a gapped stream can never become the
// follower's durable state. Records outside the frame bounds replay accepts
// (empty, or above maxRecordBytes) likewise refuse the group up front — once
// durable they would fail the next recovery instead. It returns the records
// that were actually appended (the accepted suffix), in order.
func (l *Log) CommitShipped(records []Record) ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed != nil {
		return nil, l.crashErr()
	}
	var buf []byte
	var accepted []Record
	cur := l.lsn
	for _, r := range records {
		if r.LSN <= cur {
			continue // duplicate delivery
		}
		if r.LSN != cur+1 {
			return nil, fmt.Errorf("%w: shipped record jumps from LSN %d to %d; refusing the group", ErrGap, cur, r.LSN)
		}
		// Enforce the frame bounds replay enforces, before anything is
		// written: an oversized (or empty) shipped record would append
		// durably but read back as a torn/garbage frame, failing the next
		// recovery instead of this ingest.
		if len(r.Payload) == 0 {
			return nil, fmt.Errorf("wal: shipped record at LSN %d has an empty payload; refusing the group", r.LSN)
		}
		if bodyLen := 8 + len(r.Payload); bodyLen > maxRecordBytes {
			return nil, fmt.Errorf("wal: shipped record at LSN %d is %d bytes, above the %d-byte frame bound; refusing the group", r.LSN, bodyLen, maxRecordBytes)
		}
		cur = r.LSN
		buf = appendFrame(buf, r.LSN, r.Payload)
		accepted = append(accepted, r)
		l.m.appends.Inc()
		l.m.appendSize.Observe(float64(frameHeader + 8 + len(r.Payload)))
	}
	if len(buf) == 0 {
		return nil, nil
	}
	n, err := l.write(l.f, buf)
	l.fileSize += int64(n)
	if err != nil {
		l.crash(err)
		return nil, err
	}
	l.m.appendBytes.Add(int64(n))
	if err := l.maybeSync(false); err != nil {
		l.crash(err)
		return nil, err
	}
	l.lsn = cur
	l.committed = l.fileSize
	l.segLast[l.segIndex] = l.lsn
	if l.fileSize >= l.opt.SegmentBytes {
		if err := l.roll(); err != nil {
			// Post-commit rotation fault, same contract as Commit: the group
			// is durable, so it succeeds and only the log's future crashes.
			l.crash(err)
			return accepted, nil
		}
	}
	return accepted, nil
}

// ReadSnapshot returns the newest checkpoint's verified payload and the LSN
// it covers, for bootstrapping a follower that is behind the compaction
// horizon. ok is false when the log has no checkpoint (every record is still
// in segments).
func (l *Log) ReadSnapshot() (data []byte, lsn uint64, ok bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed != nil {
		return nil, 0, false, l.crashErr()
	}
	if l.snapLSN == 0 {
		return nil, 0, false, nil
	}
	raw, err := os.ReadFile(l.snapshotPath(l.snapLSN))
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: reading snapshot %d: %w", l.snapLSN, err)
	}
	payload, err := decodeSnapshot(raw)
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: snapshot %d: %w", l.snapLSN, err)
	}
	return payload, l.snapLSN, true, nil
}

// InstallSnapshot makes a primary-shipped snapshot this log's recovery
// baseline at the primary's LSN: the follower-side twin of Checkpoint. The
// durability choreography is identical (temp write, fsync, atomic rename,
// directory fsync, then segment truncation), and the log's position jumps
// forward to lsn — the shipped snapshot covers everything before it. A
// snapshot older than the log's current position is refused: installing it
// would rewind a follower past records it already holds.
func (l *Log) InstallSnapshot(data []byte, lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed != nil {
		return l.crashErr()
	}
	if lsn < l.lsn {
		return fmt.Errorf("wal: installing snapshot at LSN %d would rewind the log from LSN %d", lsn, l.lsn)
	}
	return l.checkpointLocked(data, lsn)
}
