package advisor

import "repro/internal/engine"

// CostModelFromStats calibrates a CostModel from the engine's own measured
// operation mix instead of DefaultCostModel's fixed guesses. The engine
// counts index probes, declarative checks, and trigger firings for every
// workload it serves (engine.Stats); the ratio of probes to checks observed
// in a window tells us what a constraint check actually cost *on this
// deployment* relative to a lookup, which is the only quantity the pricing
// in Advise consumes (only ratios matter — IndexLookup stays the unit).
//
// A window with no constraint activity carries no calibration signal, so the
// constructor falls back to DefaultCostModel rather than dividing by zero.
func CostModelFromStats(st engine.StatsSnapshot) CostModel {
	checks := st.DeclarativeChecks + st.TriggerFirings
	if checks == 0 || st.IndexLookups == 0 {
		return DefaultCostModel()
	}
	// Probes spent per constraint check: the measured analogue of the
	// default model's 1-lookup-to-4-checks shape.
	probesPerCheck := float64(st.IndexLookups) / float64(checks)
	cm := CostModel{
		IndexLookup:      1,
		DeclarativeCheck: probesPerCheck * 0.25,
	}
	// Procedural maintenance stays an order of magnitude above a declarative
	// check (the paper's premise: triggers are the expensive mechanism), in
	// the same 16:1 proportion the default model uses.
	cm.TriggerFiring = cm.DeclarativeCheck * 16
	return cm
}
