package advisor

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/figures"
)

func TestCostModelFromStatsDegenerateWindow(t *testing.T) {
	if got := CostModelFromStats(engine.StatsSnapshot{}); got != DefaultCostModel() {
		t.Fatalf("empty window = %+v, want DefaultCostModel", got)
	}
	if got := CostModelFromStats(engine.StatsSnapshot{IndexLookups: 100}); got != DefaultCostModel() {
		t.Fatalf("no-checks window = %+v, want DefaultCostModel", got)
	}
	if got := CostModelFromStats(engine.StatsSnapshot{DeclarativeChecks: 100}); got != DefaultCostModel() {
		t.Fatalf("no-lookups window = %+v, want DefaultCostModel", got)
	}
}

func TestCostModelFromStatsShape(t *testing.T) {
	cm := CostModelFromStats(engine.StatsSnapshot{
		IndexLookups:      4000,
		DeclarativeChecks: 900,
		TriggerFirings:    100,
	})
	if cm.IndexLookup != 1 {
		t.Fatalf("IndexLookup = %v, want the unit", cm.IndexLookup)
	}
	// 4000 probes / 1000 checks = 4 probes per check → DeclarativeCheck = 1.
	if cm.DeclarativeCheck != 1 {
		t.Fatalf("DeclarativeCheck = %v, want 1", cm.DeclarativeCheck)
	}
	if cm.TriggerFiring != 16*cm.DeclarativeCheck {
		t.Fatalf("TriggerFiring = %v, want 16x the declarative check", cm.TriggerFiring)
	}
}

// TestCostModelFromStatsRankingAgreement pins the contract that matters: on
// the figure 3 schema, a measured model and the default model must rank the
// candidate merges identically and agree that the dominant cluster merges —
// calibration changes magnitudes (and may flip a marginal cluster), not the
// relative order of the advice.
func TestCostModelFromStatsRankingAgreement(t *testing.T) {
	s := figures.Fig3()
	w := Workload{
		ProfileQueries: map[string]float64{"COURSE": 120, "PERSON": 40},
		Inserts:        map[string]float64{"COURSE": 5, "PERSON": 2},
	}
	base, err := Advise(s, w, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	// A plausible measured window: a few probes per check, some triggers.
	measured := CostModelFromStats(engine.StatsSnapshot{
		IndexLookups:      5200,
		DeclarativeChecks: 1200,
		TriggerFirings:    80,
	})
	got, err := Advise(s, w, measured)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(base) || len(base) == 0 {
		t.Fatalf("recommendation counts differ: %d vs %d", len(got), len(base))
	}
	for i := range base {
		if base[i].MergedName != got[i].MergedName {
			t.Fatalf("rank %d: default says %s, measured says %s", i, base[i].MergedName, got[i].MergedName)
		}
	}
	if !base[0].Merge || !got[0].Merge {
		t.Fatalf("both models must merge the dominant cluster: default %v, measured %v", base[0].Merge, got[0].Merge)
	}
}
