package advisor_test

import (
	"strings"
	"testing"

	"repro/internal/advisor"
	"repro/internal/figures"
	"repro/internal/schema"
	"repro/internal/translate"
	"repro/internal/workload"
)

func TestClustersFig3(t *testing.T) {
	s := figures.Fig3()
	clusters := advisor.Clusters(s)
	// PERSON absorbs FACULTY and STUDENT; COURSE absorbs OFFER, TEACH, ASSIST.
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
	want := map[string][]string{
		"PERSON": {"PERSON", "FACULTY", "STUDENT"},
		"COURSE": {"COURSE", "OFFER", "TEACH", "ASSIST"},
	}
	for _, c := range clusters {
		w, ok := want[c[0]]
		if !ok {
			t.Errorf("unexpected cluster root %s", c[0])
			continue
		}
		if !schema.EqualAttrSets(c, w) {
			t.Errorf("cluster %s = %v, want %v", c[0], c, w)
		}
		if c[0] != w[0] {
			t.Errorf("root should come first: %v", c)
		}
	}
}

func TestClustersDisjoint(t *testing.T) {
	s := figures.Fig3()
	seen := map[string]bool{}
	for _, c := range advisor.Clusters(s) {
		for _, n := range c {
			if seen[n] {
				t.Errorf("%s in two clusters", n)
			}
			seen[n] = true
		}
	}
}

func TestAdviseQueryHeavyMerges(t *testing.T) {
	s := figures.Fig3()
	recs, err := advisor.Advise(s, advisor.Workload{
		ProfileQueries: map[string]float64{"COURSE": 100, "PERSON": 100},
		Inserts:        map[string]float64{"COURSE": 1, "PERSON": 1},
	}, advisor.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recs = %+v", recs)
	}
	for _, r := range recs {
		if !r.Merge {
			t.Errorf("query-heavy workload should recommend merging %v (benefit %.1f)", r.Cluster, r.NetBenefit)
		}
		if r.MergedQueryCost >= r.BaseQueryCost {
			t.Errorf("merged query must be cheaper: %+v", r)
		}
	}
	// Both figure 3 clusters keep procedural constraints: COURSE is the
	// figure 6 regime, and PERSON's specializations are single-attribute and
	// externally referenced (TEACH→FACULTY, ASSIST→STUDENT), so their copies
	// are not removable and the references become non-key-based.
	for _, r := range recs {
		if r.OnlyNNA || r.ProceduralConstraints == 0 {
			t.Errorf("cluster %v should need triggers: %+v", r.Cluster, r)
		}
	}

	// An only-NNA cluster for contrast: the star schema.
	star, err := translate.MS(workload.StarEER(3))
	if err != nil {
		t.Fatal(err)
	}
	recs, err = advisor.Advise(star, advisor.Workload{ProfileQueries: map[string]float64{"E0": 10}}, advisor.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !recs[0].OnlyNNA || recs[0].ProceduralConstraints != 0 {
		t.Errorf("star cluster should be only-NNA: %+v", recs)
	}
}

func TestAdviseInsertHeavyAvoidsTriggerClusters(t *testing.T) {
	// A chain schema merges into a trigger-laden relation; with a write-only
	// workload the advisor must keep it split, while the star (only-NNA,
	// cheaper merged insert than n separate inserts) still merges.
	chain, err := translate.MS(workload.ChainEER(4))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := advisor.Advise(chain, advisor.Workload{
		Inserts: map[string]float64{"E0": 1000},
	}, advisor.CostModel{IndexLookup: 1, DeclarativeCheck: 0.25, TriggerFiring: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("recs = %+v", recs)
	}
	if recs[0].Merge {
		t.Errorf("write-heavy chain should stay split: %+v", recs[0])
	}

	star, err := translate.MS(workload.StarEER(4))
	if err != nil {
		t.Fatal(err)
	}
	recs, err = advisor.Advise(star, advisor.Workload{
		Inserts: map[string]float64{"E0": 1000},
	}, advisor.CostModel{IndexLookup: 1, DeclarativeCheck: 0.25, TriggerFiring: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !recs[0].Merge {
		t.Errorf("only-NNA star should merge even write-heavy: %+v", recs)
	}
}

func TestAdviseSkipsUnmergeableClusters(t *testing.T) {
	s := figures.Fig3()
	// Make TEACH's non-key attribute nullable: the Def. 4.1 assumption fails
	// for the COURSE cluster, so only the PERSON cluster is priced.
	s.Nulls[6] = schema.NNA("TEACH", "T.C.NR")
	recs, err := advisor.Advise(s, advisor.Workload{}, advisor.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Cluster[0] == "COURSE" {
			t.Errorf("COURSE cluster should be skipped: %+v", r)
		}
	}
}

func TestReportRendering(t *testing.T) {
	s := figures.Fig3()
	recs, err := advisor.Advise(s, advisor.Workload{
		ProfileQueries: map[string]float64{"COURSE": 10},
	}, advisor.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	out := advisor.Report(recs)
	if !strings.Contains(out, "COURSE,OFFER,TEACH,ASSIST") || !strings.Contains(out, "MERGE") {
		t.Errorf("report:\n%s", out)
	}
	if !strings.Contains(out, "keep split") {
		t.Errorf("PERSON cluster with no workload should not merge:\n%s", out)
	}
}

func TestAdviseInvalidSchema(t *testing.T) {
	s := schema.New()
	s.Nulls = append(s.Nulls, schema.NNA("X", "A"))
	if _, err := advisor.Advise(s, advisor.Workload{}, advisor.DefaultCostModel()); err == nil {
		t.Error("invalid schema should be rejected")
	}
}

// TestAdviseDeterministic checks that the parallel per-cluster evaluation
// returns identical recommendations across repeated runs (and, under -race,
// that the goroutines share no mutable state).
func TestAdviseDeterministic(t *testing.T) {
	s, err := translate.MS(workload.ChainEER(6))
	if err != nil {
		t.Fatal(err)
	}
	w := advisor.Workload{
		ProfileQueries: map[string]float64{"E0": 10},
		Inserts:        map[string]float64{"E0": 1},
	}
	first, err := advisor.Advise(s, w, advisor.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		again, err := advisor.Advise(s, w, advisor.DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(first) {
			t.Fatalf("run %d: %d recs, want %d", run, len(again), len(first))
		}
		for i := range again {
			if strings.Join(again[i].Cluster, ",") != strings.Join(first[i].Cluster, ",") ||
				again[i].NetBenefit != first[i].NetBenefit {
				t.Fatalf("run %d: rec %d differs: %+v vs %+v", run, i, again[i], first[i])
			}
		}
	}
}
