package online

import (
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/figures"
	"repro/internal/relation"
	"repro/internal/sdl"
)

func tup(vals ...any) relation.Tuple {
	out := make(relation.Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case nil:
			out[i] = relation.Null()
		case string:
			out[i] = relation.NewString(x)
		default:
			panic("unsupported")
		}
	}
	return out
}

// heat synthesizes co-access evidence on the Prop. 5.2 cluster's internal
// edges (TEACH→OFFER, ASSIST→OFFER).
func heat(hits int64) []engine.CoAccessStat {
	return []engine.CoAccessStat{
		{Left: "TEACH", Right: "OFFER", Hits: hits},
		{Left: "ASSIST", Right: "OFFER", Hits: hits / 2},
	}
}

func TestDecideMergeFavorable(t *testing.T) {
	// Hot join-shaped access, few inserts: the only-NNA OFFER cluster must
	// be admitted AND auto-applicable.
	sugs := Decide(figures.Fig3(), heat(1000), engine.StatsSnapshot{Inserts: 3}, Config{})
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	best := sugs[0]
	if !best.AutoApplicable {
		t.Fatalf("best suggestion not auto-applicable: %+v", best)
	}
	if best.Rec.KeyRelation != "OFFER" || !best.Rec.OnlyNNA {
		t.Fatalf("auto-applicable pick should be the Prop. 5.2 OFFER cluster: %+v", best.Rec)
	}
	if best.CoAccessHits != 1500 {
		t.Fatalf("cluster heat = %d, want 1500 (both internal edges)", best.CoAccessHits)
	}
	// The trigger-laden Prop. 3.1 closures may be admitted as suggestions
	// but never auto-applicable.
	for _, s := range sugs {
		if s.AutoApplicable && (!s.Rec.OnlyNNA || s.Rec.ProceduralConstraints > 0) {
			t.Fatalf("non-NNA cluster marked auto-applicable: %+v", s)
		}
	}
}

func TestDecideMergeHostile(t *testing.T) {
	// Cold edges: nothing crosses the admission heat regardless of pricing.
	for _, sug := range Decide(figures.Fig3(), heat(3), engine.StatsSnapshot{Inserts: 10000}, Config{}) {
		if sug.Admitted || sug.AutoApplicable {
			t.Fatalf("cold cluster admitted: %+v", sug)
		}
	}
	// Hot but insert-dominated: trigger-needing closures must never become
	// auto-applicable. (The only-NNA cluster may still win — that is the
	// paper's point.)
	for _, sug := range Decide(figures.Fig3(), []engine.CoAccessStat{{Left: "OFFER", Right: "COURSE", Hits: 100}}, engine.StatsSnapshot{Inserts: 1e6}, Config{}) {
		if sug.Rec.ProceduralConstraints > 0 && sug.AutoApplicable {
			t.Fatalf("trigger-needing cluster auto-applicable: %+v", sug)
		}
	}
}

func TestDecidePure(t *testing.T) {
	a := Decide(figures.Fig3(), heat(500), engine.StatsSnapshot{Inserts: 5}, Config{})
	b := Decide(figures.Fig3(), heat(500), engine.StatsSnapshot{Inserts: 5}, Config{})
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Rec.MergedName != b[i].Rec.MergedName || a[i].CoAccessHits != b[i].CoAccessHits ||
			a[i].Admitted != b[i].Admitted || a[i].AutoApplicable != b[i].AutoApplicable ||
			a[i].Rec.NetBenefit != b[i].Rec.NetBenefit {
			t.Fatalf("non-deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestApplyToLiveEngine(t *testing.T) {
	db := engine.MustOpen(figures.Fig3())
	if err := db.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	// Generate genuine join-shaped heat through the real fetch path.
	for i := 0; i < DefaultMinCoAccess*2; i++ {
		if _, _, err := db.FetchWithReferences("TEACH", tup("c1")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := db.FetchWithReferences("ASSIST", tup("c1")); err != nil {
			t.Fatal(err)
		}
	}
	tgt := ForDB(db)
	s, co, st := tgt.DesignSnapshot()
	sugs := Decide(s, co, st, Config{})
	if len(sugs) == 0 || !sugs[0].AutoApplicable {
		t.Fatalf("measured workload did not produce an auto-applicable merge: %+v", sugs)
	}
	if err := Apply(tgt, sugs[0]); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !strings.Contains(sdl.PrintSchema(db.Schema), sugs[0].Rec.MergedName) {
		t.Fatalf("live engine not migrated to %s:\n%s", sugs[0].Rec.MergedName, sdl.PrintSchema(db.Schema))
	}
	if _, ok := db.GetByKey(sugs[0].Rec.MergedName, tup("c1")); !ok {
		t.Fatal("merged relation does not serve")
	}
	// Applying the same (now stale) suggestion again fails cleanly: the
	// cluster members no longer exist on the current design.
	if err := Apply(tgt, sugs[0]); err == nil {
		t.Fatal("stale suggestion must not re-apply")
	}
	// A suggestion that is not auto-applicable is refused.
	if err := Apply(tgt, Suggestion{Admitted: true}); err == nil {
		t.Fatal("non-auto-applicable suggestion must be refused")
	}
}

func TestRunLoopAutoMigrates(t *testing.T) {
	db := engine.MustOpen(figures.Fig3())
	if err := db.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < DefaultMinCoAccess*2; i++ {
		if _, _, err := db.FetchWithReferences("TEACH", tup("c1")); err != nil {
			t.Fatal(err)
		}
	}
	applied := make(chan Suggestion, 1)
	stop := Start(ForDB(db), LoopConfig{
		Mode:     Auto,
		Interval: time.Millisecond,
		OnApplied: func(s Suggestion, err error) {
			if err == nil {
				select {
				case applied <- s:
				default:
				}
			}
		},
	})
	defer stop()
	select {
	case s := <-applied:
		if _, ok := db.GetByKey(s.Rec.MergedName, tup("c1")); !ok {
			t.Fatalf("loop reported applying %s but it does not serve", s.Rec.MergedName)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("auto loop never migrated")
	}
	stop()
	stop() // idempotent
}

func TestRunLoopSuggestNeverMigrates(t *testing.T) {
	db := engine.MustOpen(figures.Fig3())
	if err := db.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < DefaultMinCoAccess*2; i++ {
		if _, _, err := db.FetchWithReferences("TEACH", tup("c1")); err != nil {
			t.Fatal(err)
		}
	}
	suggested := make(chan Suggestion, 1)
	stop := Start(ForDB(db), LoopConfig{
		Mode:     Suggest,
		Interval: time.Millisecond,
		OnSuggestion: func(s Suggestion) {
			select {
			case suggested <- s:
			default:
			}
		},
	})
	defer stop()
	select {
	case <-suggested:
	case <-time.After(10 * time.Second):
		t.Fatal("suggest loop never reported")
	}
	stop()
	before := sdl.PrintSchema(figures.Fig3())
	if got := sdl.PrintSchema(db.Schema); got != before {
		t.Fatalf("suggest mode migrated the engine:\n%s", got)
	}
}
