// Package online closes the loop the offline advisor leaves open: instead of
// pricing a workload description someone wrote down, it watches the engine's
// own measurements — the per-IND-edge co-access counters the fetch path
// maintains (engine.CoAccessStats) and the operation-mix window
// (engine.Stats) — decides whether a merge would pay for itself, and applies
// the winning merge to the LIVE engine through MigrateSchema.
//
// The decision pipeline is the paper's machinery used as an admission filter:
//
//   - Candidates come from both Prop. 3.1 (maximal key-relation closures,
//     advisor.Clusters) and Prop. 5.2 (clusters whose merge needs only
//     nulls-not-allowed constraints, core.Prop52Clusters).
//   - Each candidate is priced by advisor.PriceCluster under a workload
//     synthesized from the measurements: profile-query frequency = the
//     cluster's observed co-access heat, insert frequency from the stats
//     window, cost model calibrated by CostModelFromStats (unless pinned).
//   - A candidate is ADMITTED when it is hot (co-access ≥ MinCoAccess) and
//     the merge prices net-positive. It is AUTO-APPLICABLE only when it is
//     additionally in the Prop. 5.2 regime (OnlyNNA): a merge that would
//     need trigger maintenance is never applied behind the user's back, only
//     suggested.
//
// Decide is a pure function of (schema, co-access, stats, config), so the
// policy is unit-testable without an engine; Apply and the Run loop bind it
// to a live one.
package online

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/state"
)

// Config tunes the decision policy.
type Config struct {
	// MinCoAccess is the admission heat: a cluster is considered only after
	// its internal IND edges accumulated this many co-accesses in the
	// current design's lifetime. 0 means DefaultMinCoAccess.
	MinCoAccess int64
	// CostModel pins the pricing model; nil calibrates one from the stats
	// window via CostModelFromStats.
	CostModel *advisor.CostModel
}

// DefaultMinCoAccess is the admission heat used when Config.MinCoAccess is
// zero: enough co-accesses to rule out incidental adjacency, small enough
// that a genuinely join-shaped workload crosses it within seconds.
const DefaultMinCoAccess = 64

// Suggestion is one priced candidate with its measured evidence and the
// admission verdicts.
type Suggestion struct {
	Rec advisor.Recommendation
	// CoAccessHits is the summed heat of the IND edges internal to the
	// cluster — the measured "these relations are fetched together" signal.
	CoAccessHits int64
	// Admitted: hot enough and priced net-positive.
	Admitted bool
	// AutoApplicable: admitted AND in the Prop. 5.2 only-NNA regime, so the
	// post-merge design is declaratively maintainable and safe to install
	// without operator review.
	AutoApplicable bool
}

// Decide prices every candidate cluster of s against the measurements and
// returns the suggestions sorted best-first (auto-applicable before
// suggestion-only, then by net benefit). It is pure: same inputs, same
// output, no engine access.
func Decide(s *schema.Schema, co []engine.CoAccessStat, st engine.StatsSnapshot, cfg Config) []Suggestion {
	minHeat := cfg.MinCoAccess
	if minHeat == 0 {
		minHeat = DefaultMinCoAccess
	}
	cm := advisor.DefaultCostModel()
	if cfg.CostModel != nil {
		cm = *cfg.CostModel
	} else {
		cm = advisor.CostModelFromStats(st)
	}

	// Candidates: Prop. 5.2 clusters first (the auto-applicable regime),
	// then the maximal Prop. 3.1 closures, deduplicated by member set.
	seen := map[string]bool{}
	var cands [][]string
	for _, c := range append(core.Prop52Clusters(s), advisor.Clusters(s)...) {
		k := fmt.Sprint(c)
		if !seen[k] {
			seen[k] = true
			cands = append(cands, c)
		}
	}

	heat := edgeHeat(co)
	var out []Suggestion
	for _, cluster := range cands {
		hits := clusterHeat(heat, cluster)
		w := advisor.Workload{
			// The cluster's co-access heat IS its profile-query frequency:
			// every counted co-access was one join-shaped access that a
			// merged design would have served with a single lookup.
			ProfileQueries: map[string]float64{cluster[0]: float64(hits)},
			// The stats window only counts inserts globally; attribute them
			// evenly. This over-charges cold clusters, which only makes the
			// admission filter more conservative.
			Inserts: map[string]float64{cluster[0]: float64(st.Inserts) / float64(len(cands))},
		}
		rec, err := advisor.PriceCluster(s, cluster, w, cm)
		if err != nil {
			continue // unmergeable under Def. 4.1 (e.g. nullable member)
		}
		sug := Suggestion{Rec: rec, CoAccessHits: hits}
		sug.Admitted = hits >= minHeat && rec.Merge
		sug.AutoApplicable = sug.Admitted && rec.OnlyNNA && rec.ProceduralConstraints == 0
		out = append(out, sug)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].AutoApplicable != out[j].AutoApplicable {
			return out[i].AutoApplicable
		}
		return out[i].Rec.NetBenefit > out[j].Rec.NetBenefit
	})
	return out
}

func edgeHeat(co []engine.CoAccessStat) map[[2]string]int64 {
	m := make(map[[2]string]int64, len(co))
	for _, e := range co {
		m[[2]string{e.Left, e.Right}] += e.Hits
	}
	return m
}

// clusterHeat sums the heat of edges whose BOTH endpoints are cluster
// members: cross-cluster traffic is not evidence for this merge.
func clusterHeat(heat map[[2]string]int64, cluster []string) int64 {
	in := make(map[string]bool, len(cluster))
	for _, n := range cluster {
		in[n] = true
	}
	var hits int64
	for edge, h := range heat {
		if in[edge[0]] && in[edge[1]] {
			hits += h
		}
	}
	return hits
}

// Target is a live engine the advisor can measure and migrate: the embedded
// engine satisfies it via ForDB, the shard router via its own methods.
type Target interface {
	// DesignSnapshot returns the current schema and its measurements. The
	// schema must be the one the co-access stats were measured against.
	DesignSnapshot() (*schema.Schema, []engine.CoAccessStat, engine.StatsSnapshot)
	// Migrate swaps the live design (engine.DB.MigrateSchema or
	// shard.Router.Migrate).
	Migrate(ns *schema.Schema, transform func(*state.DB) (*state.DB, error)) error
}

// dbTarget adapts a single engine.
type dbTarget struct{ db *engine.DB }

// ForDB wraps an embedded engine as a migration target.
func ForDB(db *engine.DB) Target { return dbTarget{db} }

func (t dbTarget) DesignSnapshot() (*schema.Schema, []engine.CoAccessStat, engine.StatsSnapshot) {
	return t.db.Schema, t.db.CoAccessStats(), t.db.Stats.Totals()
}

func (t dbTarget) Migrate(ns *schema.Schema, transform func(*state.DB) (*state.DB, error)) error {
	return t.db.MigrateSchema(ns, transform)
}

// Apply installs an auto-applicable suggestion on the target; the loop's
// gate. Explicit operator-driven application (a reviewed recommendation) goes
// through ApplyCluster directly, which does not require the only-NNA regime.
func Apply(t Target, sug Suggestion) error {
	if !sug.AutoApplicable {
		return fmt.Errorf("advisor: suggestion %s is not auto-applicable (only-NNA merges may be applied automatically)", sug.Rec.MergedName)
	}
	return ApplyCluster(t, sug.Rec.Cluster, sug.Rec.MergedName, sug.Rec.KeyRelation)
}

// ApplyCluster merges the cluster on the target's CURRENT schema and
// migrates the live design. The merge is re-derived at apply time — if the
// design moved since the recommendation was computed (another migration won
// the race), the stale cluster no longer resolves and the merge step fails
// cleanly instead of installing a plan for a schema that no longer exists.
func ApplyCluster(t Target, cluster []string, mergedName, keyRelation string) error {
	s, _, _ := t.DesignSnapshot()
	m, err := core.MergeWith(s, cluster, mergedName, core.Options{KeyRelation: keyRelation})
	if err != nil {
		return fmt.Errorf("advisor: re-deriving merge %s on the current design: %w", mergedName, err)
	}
	m.RemoveAll()
	return t.Migrate(m.Schema, func(st *state.DB) (*state.DB, error) { return m.MapState(st), nil })
}

// Mode selects what the Run loop does with an admitted suggestion.
type Mode int

const (
	// Off disables the loop entirely.
	Off Mode = iota
	// Suggest measures and decides, reporting admitted suggestions through
	// the callback, but never migrates.
	Suggest
	// Auto additionally applies the best auto-applicable suggestion.
	Auto
)

func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Suggest:
		return "suggest"
	case Auto:
		return "auto"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// LoopConfig configures Run.
type LoopConfig struct {
	Mode Mode
	// Interval between decision passes (default DefaultInterval).
	Interval time.Duration
	// Decide tunes the policy.
	Decide Config
	// OnSuggestion, if set, receives every ADMITTED suggestion of each pass
	// (both modes).
	OnSuggestion func(Suggestion)
	// OnApplied, if set, receives the result of each Auto-mode application.
	OnApplied func(Suggestion, error)
}

// DefaultInterval is the decision cadence when LoopConfig.Interval is zero.
const DefaultInterval = time.Second

// Run drives the measure→decide→migrate loop until ctx is canceled. In Auto
// mode at most one migration is applied per pass; the migration installs a
// fresh design whose co-access counters start cold, so the loop re-earns its
// evidence before acting again.
func Run(ctx context.Context, t Target, cfg LoopConfig) {
	if cfg.Mode == Off {
		return
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = DefaultInterval
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		s, co, st := t.DesignSnapshot()
		sugs := Decide(s, co, st, cfg.Decide)
		for _, sug := range sugs {
			if sug.Admitted && cfg.OnSuggestion != nil {
				cfg.OnSuggestion(sug)
			}
		}
		if cfg.Mode != Auto {
			continue
		}
		for _, sug := range sugs {
			if sug.AutoApplicable {
				err := Apply(t, sug)
				if cfg.OnApplied != nil {
					cfg.OnApplied(sug, err)
				}
				break
			}
		}
	}
}

// Start runs the loop on its own goroutine and returns its stop function
// (idempotent, returns after the loop exited).
func Start(t Target, cfg LoopConfig) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		Run(ctx, t, cfg)
	}()
	return func() {
		cancel()
		<-done
	}
}
