// Package advisor turns the paper's merging technique into a workload-driven
// design tool: given a relational schema in the baseline form and a workload
// description (object-profile query and insert frequencies), it finds the
// merge clusters (Prop. 3.1 key-relation closures), applies Merge + RemoveAll
// to each to obtain the *exact* post-merge constraint sets, prices both
// designs under a simple operation-cost model matching the engine's counters,
// and recommends the merges whose access-path savings outweigh their
// constraint-maintenance overhead.
//
// This is the design loop the paper's §6 SDT tool supports manually ("the
// options of (i) ... not using merging, or (ii) using merging"), made
// quantitative.
package advisor

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/keyrel"
	"repro/internal/nullcon"
	"repro/internal/schema"
)

// Workload gives per-scheme access frequencies (arbitrary units; only ratios
// matter).
type Workload struct {
	// ProfileQueries is the frequency of object-profile queries rooted at a
	// scheme: fetch the object and every dependent part of its cluster.
	ProfileQueries map[string]float64
	// Inserts is the frequency of full-object inserts rooted at a scheme
	// (one row in every cluster member vs. one merged row).
	Inserts map[string]float64
}

// CostModel prices the primitive operations the engine counts.
type CostModel struct {
	IndexLookup      float64
	DeclarativeCheck float64
	TriggerFiring    float64
}

// DefaultCostModel approximates the engine: indexed operations are cheap and
// uniform; a trigger firing costs several probes' worth of work (the paper's
// "tedious and error-prone" procedural mechanisms are also slower).
func DefaultCostModel() CostModel {
	return CostModel{IndexLookup: 1, DeclarativeCheck: 0.25, TriggerFiring: 4}
}

// Recommendation prices one candidate cluster.
type Recommendation struct {
	Cluster     []string
	KeyRelation string
	MergedName  string
	// OnlyNNA reports whether the merged constraint set is purely
	// nulls-not-allowed (Prop. 5.2 regime — declaratively maintainable).
	OnlyNNA bool
	// ProceduralConstraints counts the merged constraints needing
	// trigger/rule maintenance.
	ProceduralConstraints int
	// Per-operation costs under the model.
	BaseQueryCost    float64
	MergedQueryCost  float64
	BaseInsertCost   float64
	MergedInsertCost float64
	// NetBenefit is the workload-weighted saving of merging (positive means
	// merge).
	NetBenefit float64
	// Merge is the recommendation.
	Merge bool
}

// Clusters finds the maximal disjoint merge clusters of the schema: for each
// scheme in declaration order, the downward closure of schemes whose primary
// keys are included in a member's primary key (so the root is a key-relation
// of the cluster by Prop. 3.1). Only clusters of two or more schemes are
// returned.
func Clusters(s *schema.Schema) [][]string {
	used := make(map[string]bool)
	var out [][]string
	for _, root := range s.Relations {
		if used[root.Name] {
			continue
		}
		cluster := closure(s, root.Name, used)
		if len(cluster) < 2 {
			continue
		}
		if !keyrel.IsKeyRelation(s, root.Name, cluster) {
			continue
		}
		for _, n := range cluster {
			used[n] = true
		}
		out = append(out, cluster)
	}
	return out
}

// closure grows the member set downward along key-based inclusion
// dependencies Ri[Ki] ⊆ member[Kmember].
func closure(s *schema.Schema, root string, used map[string]bool) []string {
	members := []string{root}
	inSet := map[string]bool{root: true}
	for changed := true; changed; {
		changed = false
		for _, current := range members {
			for _, candidate := range keyrel.Refkey(s, current, s.SchemeNames()) {
				if !inSet[candidate] && !used[candidate] {
					inSet[candidate] = true
					members = append(members, candidate)
					changed = true
				}
			}
		}
	}
	// Preserve declaration order for determinism.
	var ordered []string
	for _, rs := range s.Relations {
		if inSet[rs.Name] {
			ordered = append(ordered, rs.Name)
		}
	}
	// Root first (it is the key-relation).
	for i, n := range ordered {
		if n == root && i != 0 {
			copy(ordered[1:i+1], ordered[:i])
			ordered[0] = root
		}
	}
	return ordered
}

// Advise prices every cluster under the workload and cost model. Clusters
// whose merge fails (e.g. nullable member attributes) are skipped.
//
// Clusters are independent — MergeWith clones the schema before mutating and
// the pricing reads are pure — so each cluster's merge + removal + pricing
// runs on its own goroutine, bounded by GOMAXPROCS. Results are collected by
// cluster position and then stably sorted by net benefit, so the output is
// identical to the sequential evaluation.
func Advise(s *schema.Schema, w Workload, cm CostModel) ([]Recommendation, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	clusters := Clusters(s)
	recs := make([]*Recommendation, len(clusters))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, cluster := range clusters {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, cluster []string) {
			defer func() { <-sem; wg.Done() }()
			rec, err := PriceCluster(s, cluster, w, cm)
			if err != nil {
				return
			}
			recs[i] = &rec
		}(i, cluster)
	}
	wg.Wait()
	out := make([]Recommendation, 0, len(recs))
	for _, rec := range recs {
		if rec != nil {
			out = append(out, *rec)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].NetBenefit > out[j].NetBenefit })
	return out, nil
}

// PriceCluster merges one candidate cluster (key-relation first), removes
// every removable key copy, and prices the before/after designs under the
// workload and cost model. Unlike Advise it accepts any cluster — the online
// advisor prices Prop. 5.2 clusters (auto-applicable, only-NNA) alongside the
// maximal Prop. 3.1 closures Advise enumerates. The merge error is returned
// (e.g. ErrNullableMember), letting the caller distinguish "unmergeable" from
// "not worth it".
func PriceCluster(s *schema.Schema, cluster []string, w Workload, cm CostModel) (Recommendation, error) {
	name := cluster[0] + "+"
	m, err := core.MergeWith(s, cluster, name, core.Options{KeyRelation: cluster[0]})
	if err != nil {
		return Recommendation{}, err
	}
	m.RemoveAll()
	return price(s, m, cluster, w, cm), nil
}

func price(s *schema.Schema, m *core.MergedScheme, cluster []string, w Workload, cm CostModel) Recommendation {
	rec := Recommendation{
		Cluster:     cluster,
		KeyRelation: m.KeyRelation,
		MergedName:  m.Name,
		OnlyNNA:     nullcon.OnlyNNA(m.Schema.NullsOf(m.Name)),
	}
	for _, nc := range m.Schema.NullsOf(m.Name) {
		if ne, ok := nc.(schema.NullExistence); ok && ne.IsNNA() {
			continue
		}
		rec.ProceduralConstraints++
	}
	for _, ind := range m.Schema.INDs {
		if !ind.KeyBased(m.Schema) {
			rec.ProceduralConstraints++
		}
	}

	// Query: one lookup per member vs. one lookup total.
	rec.BaseQueryCost = float64(len(cluster)) * cm.IndexLookup
	rec.MergedQueryCost = cm.IndexLookup

	// Insert of a full object.
	for _, name := range cluster {
		rs := s.Scheme(name)
		checks := float64(len(rs.Attrs))*cm.DeclarativeCheck + cm.DeclarativeCheck // NOT NULLs + PK
		checks += cm.IndexLookup                                                   // PK probe
		for _, ind := range s.INDsFrom(name) {
			_ = ind
			checks += cm.DeclarativeCheck + cm.IndexLookup
		}
		rec.BaseInsertCost += checks
	}
	merged := m.Schema.Scheme(m.Name)
	rec.MergedInsertCost = float64(len(merged.Attrs))*cm.DeclarativeCheck + cm.DeclarativeCheck + cm.IndexLookup
	for range m.Schema.INDsFrom(m.Name) {
		rec.MergedInsertCost += cm.DeclarativeCheck + cm.IndexLookup
	}
	rec.MergedInsertCost += float64(rec.ProceduralConstraints) * cm.TriggerFiring

	qf := w.ProfileQueries[cluster[0]]
	inf := w.Inserts[cluster[0]]
	rec.NetBenefit = qf*(rec.BaseQueryCost-rec.MergedQueryCost) + inf*(rec.BaseInsertCost-rec.MergedInsertCost)
	rec.Merge = rec.NetBenefit > 0
	return rec
}

// Report renders recommendations as a table.
func Report(recs []Recommendation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %-10s %-8s %-20s %-20s %-12s %s\n",
		"cluster", "only-NNA", "triggers", "query base→merged", "insert base→merged", "net benefit", "advice")
	for _, r := range recs {
		advice := "keep split"
		if r.Merge {
			advice = "MERGE"
		}
		fmt.Fprintf(&b, "%-36s %-10v %-8d %6.1f → %-11.1f %6.1f → %-11.1f %-12.1f %s\n",
			strings.Join(r.Cluster, ","), r.OnlyNNA, r.ProceduralConstraints,
			r.BaseQueryCost, r.MergedQueryCost,
			r.BaseInsertCost, r.MergedInsertCost,
			r.NetBenefit, advice)
	}
	return b.String()
}
