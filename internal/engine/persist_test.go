package engine

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/figures"
)

func TestSaveLoadFileRoundTrip(t *testing.T) {
	db := openFig3(t)
	db.Insert("COURSE", tup("c1"))
	db.Insert("COURSE", tup("c2"))
	db.Insert("DEPARTMENT", tup("math"))
	db.Insert("OFFER", tup("c1", "math"))

	path := filepath.Join(t.TempDir(), "uni.data")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	db2 := MustOpen(figures.Fig3())
	if err := db2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if !db2.Snapshot().Equal(db.Snapshot()) {
		t.Error("save/load round trip changed contents")
	}

	// Saved files are deterministic.
	path2 := filepath.Join(t.TempDir(), "uni2.data")
	if err := db2.SaveFile(path2); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(path)
	b, _ := os.ReadFile(path2)
	if string(a) != string(b) {
		t.Error("saved files should be identical")
	}
}

func TestLoadFileAtomicOnViolation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.data")
	// The second insert dangles (no COURSE c9).
	os.WriteFile(path, []byte(`
insert COURSE (c1)
insert DEPARTMENT (math)
insert OFFER (c9, math)
`), 0o644)
	db := openFig3(t)
	if err := db.LoadFile(path); err == nil {
		t.Fatal("dangling reference should fail the load")
	}
	if db.Count("COURSE") != 0 || db.Count("DEPARTMENT") != 0 {
		t.Error("failed load must leave the engine empty (atomic)")
	}
}

func TestLoadFileErrors(t *testing.T) {
	db := openFig3(t)
	if err := db.LoadFile(filepath.Join(t.TempDir(), "missing.data")); err == nil {
		t.Error("missing file")
	}
	path := filepath.Join(t.TempDir(), "garbage.data")
	os.WriteFile(path, []byte("not a statement"), 0o644)
	if err := db.LoadFile(path); err == nil {
		t.Error("unparseable file")
	}
}
