package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/figures"
	"repro/internal/relation"
)

// A deadline that expires while an op is queued behind a contended lock plan
// must abort the op after lock acquisition, not commit it. Regression test
// for the entry-only cancellation check: a writer holding the lock through a
// long simulated page access (WithAccessDelay) used to let the queued op's
// expired context slip through to commit.
func TestCtxExpiredUnderContendedLockDoesNotCommit(t *testing.T) {
	const delay = 50 * time.Millisecond
	db, err := Open(figures.Fig3(), WithAccessDelay(delay))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := db.Insert("COURSE", tup("held")); err != nil {
			t.Errorf("holder insert: %v", err)
		}
	}()
	// Let the holder take the COURSE lock and park in its simulated access.
	time.Sleep(delay / 5)

	ctx, cancel := context.WithTimeout(context.Background(), delay/5)
	defer cancel()
	insErr := db.InsertCtx(ctx, "COURSE", tup("late"))
	wg.Wait()
	if !errors.Is(insErr, context.DeadlineExceeded) {
		t.Fatalf("InsertCtx under expired deadline: got %v, want DeadlineExceeded", insErr)
	}
	if _, ok := db.GetByKey("COURSE", tup("late")); ok {
		t.Fatal("expired-deadline insert still committed")
	}
	if _, ok := db.GetByKey("COURSE", tup("held")); !ok {
		t.Fatal("holder insert lost")
	}
}

// Every mutating Ctx op re-checks cancellation after lock acquisition.
func TestCtxExpiredAfterAcquisitionAllOps(t *testing.T) {
	const delay = 40 * time.Millisecond
	db, err := Open(figures.Fig3(), WithAccessDelay(delay))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("COURSE", tup("c1")); err != nil {
		t.Fatal(err)
	}

	ops := []struct {
		name string
		call func(ctx context.Context) error
	}{
		{"InsertCtx", func(ctx context.Context) error { return db.InsertCtx(ctx, "COURSE", tup("c2")) }},
		{"DeleteCtx", func(ctx context.Context) error { return db.DeleteCtx(ctx, "COURSE", tup("c1")) }},
		{"UpdateCtx", func(ctx context.Context) error { return db.UpdateCtx(ctx, "COURSE", tup("c1"), tup("c9")) }},
		{"InsertBatchCtx", func(ctx context.Context) error {
			return db.InsertBatchCtx(ctx, "COURSE", []relation.Tuple{tup("c2"), tup("c3")})
		}},
		{"ApplyBatchCtx", func(ctx context.Context) error {
			return db.ApplyBatchCtx(ctx, []BatchOp{Ins("COURSE", tup("c2"))})
		}},
	}
	for _, op := range ops {
		op := op
		t.Run(op.name, func(t *testing.T) {
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Holder: occupies the lock plan long enough for the
				// contender's deadline to expire while queued.
				if err := db.Insert("COURSE", tup("hold-"+op.name)); err != nil {
					t.Errorf("holder: %v", err)
				}
			}()
			time.Sleep(delay / 4)
			ctx, cancel := context.WithTimeout(context.Background(), delay/4)
			defer cancel()
			err := op.call(ctx)
			wg.Wait()
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("%s: got %v, want DeadlineExceeded", op.name, err)
			}
			if _, ok := db.GetByKey("COURSE", tup("c2")); ok {
				t.Fatalf("%s: op committed despite expired deadline", op.name)
			}
			if _, ok := db.GetByKey("COURSE", tup("c1")); !ok {
				t.Fatalf("%s: pre-existing tuple disturbed", op.name)
			}
		})
	}
}

// GetByKeyCtx honors cancellation and reports unknown relations as typed
// errors (GetByKey keeps its historical not-found signature).
func TestGetByKeyCtx(t *testing.T) {
	db, err := Open(figures.Fig3())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("COURSE", tup("c1")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.GetByKeyCtx(context.Background(), "NOPE", tup("x")); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("unknown relation: got %v", err)
	}
	got, ok, err := db.GetByKeyCtx(context.Background(), "COURSE", tup("c1"))
	if err != nil || !ok || !got.Identical(tup("c1")) {
		t.Fatalf("lookup: %v %v %v", got, ok, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := db.GetByKeyCtx(ctx, "COURSE", tup("c1")); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled lookup: got %v", err)
	}
}
