package engine

import (
	"fmt"
	"repro/internal/relation"
	"sync"
	"testing"
)

// The engine is safe for concurrent use: parallel writers into disjoint key
// ranges plus parallel readers leave a consistent catalog. Run with -race.
func TestConcurrentAccess(t *testing.T) {
	db := openFig3(t)
	db.Insert("DEPARTMENT", tup("math"))

	const writers = 4
	const perWriter = 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("c%d-%d", w, i)
				if err := db.Insert("COURSE", tup(key)); err != nil {
					t.Errorf("insert %s: %v", key, err)
					return
				}
				if err := db.Insert("OFFER", tup(key, "math")); err != nil {
					t.Errorf("offer %s: %v", key, err)
					return
				}
			}
		}()
	}
	// Concurrent readers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				db.GetByKey("COURSE", tup("c0-0"))
				db.Count("OFFER")
				db.Scan("COURSE", nil, func(relation.Tuple) {})
			}
		}()
	}
	wg.Wait()

	if db.Count("COURSE") != writers*perWriter {
		t.Errorf("COURSE count = %d", db.Count("COURSE"))
	}
	if db.Count("OFFER") != writers*perWriter {
		t.Errorf("OFFER count = %d", db.Count("OFFER"))
	}
	// Every inserted key resolves.
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if _, ok := db.GetByKey("OFFER", tup(fmt.Sprintf("c%d-%d", w, i))); !ok {
				t.Fatalf("offer c%d-%d missing", w, i)
			}
		}
	}
}
