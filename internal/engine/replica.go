package engine

import (
	"fmt"

	"repro/internal/immap"
	"repro/internal/relation"
	"repro/internal/sdl"
	"repro/internal/state"
	"repro/internal/wal"
)

// This file is the engine's follower-side replication surface. A follower is
// an ordinary durable engine whose mutations arrive as primary-shipped WAL
// records instead of client operations: IngestReplicated makes each batch
// durable in the local log FIRST (inheriting the log's gap/duplicate
// validation — a gapped stream can never become local state), then applies the
// decoded physical effects through the same staged-writeTx/publish machinery
// the live write path uses, so lock-free readers on the follower see exactly
// the primary's committed versions, stamped with the primary's LSNs.
//
// Constraint checks are deliberately absent from the record apply path: the
// primary validated every operation before logging it, and the records carry
// physical effects (already-resolved inserts/deletes), not requests. Shipped
// snapshots DO re-validate (state.Consistent) before installation — they
// arrive as opaque serialized state, so the follower applies the same
// recovery-style discipline it applies to its own checkpoint files.

// IngestReplicated appends a batch of primary-shipped records to the local
// log (durability and stream validation first: duplicates are skipped, a gap
// refuses the whole batch with wal.ErrGap before anything is written) and
// applies their effects to the published state. Transactional records buffer
// until their commit marker — arriving in a later batch, or after a follower
// restart — exactly like recovery replay. It returns the follower's durable
// LSN horizon: the resume point for the next fetch.
func (db *DB) IngestReplicated(recs []wal.Record) (uint64, error) {
	if db.wal == nil {
		return 0, ErrNotDurable
	}
	db.replMu.Lock()
	defer db.replMu.Unlock()
	accepted, err := db.wal.CommitShipped(recs)
	if err != nil {
		return db.wal.LSN(), err
	}
	for _, r := range accepted {
		kind, ops, inTxn, err := decodeWalRecord(r.Payload)
		if err != nil {
			return db.wal.LSN(), err
		}
		switch kind {
		case walRecBegin:
			db.replPending = db.replPending[:0]
		case walRecCommit:
			if err := db.applyReplicated(db.replPending, r.LSN); err != nil {
				return db.wal.LSN(), err
			}
			db.replPending = nil
		case walRecRollback:
			db.replPending = nil
		case walRecOp:
			if inTxn {
				db.replPending = append(db.replPending, ops...)
			} else if err := db.applyReplicated(ops, r.LSN); err != nil {
				return db.wal.LSN(), err
			}
		default:
			return db.wal.LSN(), fmt.Errorf("%w: unknown replicated record kind %d at LSN %d", ErrRecovery, kind, r.LSN)
		}
	}
	return db.wal.LSN(), nil
}

// applyReplicated publishes one committed batch of physical effects, stamped
// with the WAL LSN of the record (or commit marker) that carried it.
func (db *DB) applyReplicated(ops []walOp, lsn uint64) error {
	if len(ops) == 0 {
		return nil
	}
	ls := db.lm.allWrite()
	db.acquire(ls)
	defer ls.release()
	tx := db.beginWrite()
	for _, op := range ops {
		t := db.tables[op.rel]
		if t == nil {
			return fmt.Errorf("%w: replicated record names unknown relation %s", ErrRecovery, op.rel)
		}
		if op.insert {
			tx.apply(t, op.tup)
		} else {
			tx.remove(t, op.tup)
		}
	}
	db.publish(tx, lsn)
	return nil
}

// IngestSnapshot bootstraps (or fast-forwards) the follower from a
// primary-shipped checkpoint: the serialized state is parsed, re-validated
// against the full constraint set, installed as the local log's recovery
// baseline at the primary's LSN (wal.Log.InstallSnapshot — same atomic
// temp-write/rename choreography as a local checkpoint), and then published
// as a wholesale replacement of every table's current version in one atomic
// snapshot swap. Used when the primary reports wal.ErrCompacted: the records
// the follower needs were folded into a checkpoint it must adopt instead.
func (db *DB) IngestSnapshot(data []byte, lsn uint64) error {
	if db.wal == nil {
		return ErrNotDurable
	}
	db.replMu.Lock()
	defer db.replMu.Unlock()
	st, err := sdl.ParseState(db.Schema, string(data))
	if err != nil {
		return fmt.Errorf("%w: parsing shipped snapshot: %v", ErrRecovery, err)
	}
	valSchema := db.Schema
	if db.partition {
		sc := *db.Schema
		sc.INDs = nil
		valSchema = &sc
	}
	if err := state.Consistent(valSchema, st); err != nil {
		return fmt.Errorf("%w: shipped snapshot fails constraint re-validation: %v", ErrRecovery, err)
	}
	if err := db.wal.InstallSnapshot(data, lsn); err != nil {
		return fmt.Errorf("engine: installing shipped snapshot: %w", err)
	}
	// Replace the published state. Staging every table over an EMPTY base
	// version makes publish (which merges staged tables over current) a full
	// replacement: tables absent from the snapshot publish empty.
	ls := db.lm.allWrite()
	db.acquire(ls)
	defer ls.release()
	empty := make(map[string]*tableVersion, len(db.tables))
	for name, t := range db.tables {
		sec := make(map[string]*immap.Map[[]relation.Tuple], len(t.secIdx))
		for key := range t.secIdx {
			sec[key] = immap.New[[]relation.Tuple]()
		}
		empty[name] = &tableVersion{pk: immap.New[relation.Tuple](), sec: sec}
	}
	tx := &writeTx{db: db, snap: &dbSnapshot{tables: empty}, work: make(map[*table]*workTable, len(db.tables))}
	for _, t := range db.tables {
		tx.stage(t)
	}
	for name, t := range db.tables {
		r := st.Relation(name)
		if r == nil {
			continue
		}
		src := r
		if !sameAttrs(src.Attrs(), t.hdr.Attrs()) {
			src = src.Project(t.hdr.Attrs())
		}
		for _, tup := range src.Tuples() {
			tx.apply(t, tup)
		}
	}
	db.replPending = nil
	db.publish(tx, lsn)
	return nil
}

// ReplRead is the primary-side read half of the shipping loop: the committed
// records after afterLSN plus the commit horizon (wal.Log.ReadCommitted). It
// returns wal.ErrCompacted when the requested position predates the newest
// checkpoint — the caller must ship ReplSnapshot instead.
func (db *DB) ReplRead(afterLSN uint64, maxRecords int) ([]wal.Record, uint64, error) {
	if db.wal == nil {
		return nil, 0, ErrNotDurable
	}
	return db.wal.ReadCommitted(afterLSN, maxRecords)
}

// ReplSnapshot returns the newest checkpoint's verified payload and covered
// LSN for bootstrapping a follower that is behind the compaction horizon.
func (db *DB) ReplSnapshot() ([]byte, uint64, error) {
	if db.wal == nil {
		return nil, 0, ErrNotDurable
	}
	data, lsn, ok, err := db.wal.ReadSnapshot()
	if err != nil {
		return nil, 0, err
	}
	if !ok {
		return nil, 0, fmt.Errorf("engine: no checkpoint to ship (the log still holds every record)")
	}
	return data, lsn, nil
}

// DurableLSN returns the log's commit horizon: the LSN of the newest durable
// record (0 for a non-durable engine). On a follower this is the applied
// ingest position; on a primary, the newest committed operation.
func (db *DB) DurableLSN() uint64 {
	if db.wal == nil {
		return 0
	}
	return db.wal.LSN()
}
