package engine

import (
	"fmt"

	"repro/internal/sdl"
	"repro/internal/state"
	"repro/internal/wal"
)

// This file is the engine's follower-side replication surface. A follower is
// an ordinary durable engine whose mutations arrive as primary-shipped WAL
// records instead of client operations: IngestReplicated makes each batch
// durable in the local log FIRST (inheriting the log's gap/duplicate
// validation — a gapped stream can never become local state), then applies the
// decoded physical effects through the same staged-writeTx/publish machinery
// the live write path uses, so lock-free readers on the follower see exactly
// the primary's committed versions, stamped with the primary's LSNs.
//
// Constraint checks are deliberately absent from the record apply path: the
// primary validated every operation before logging it, and the records carry
// physical effects (already-resolved inserts/deletes), not requests. Shipped
// snapshots DO re-validate (state.Consistent) before installation — they
// arrive as opaque serialized state, so the follower applies the same
// recovery-style discipline it applies to its own checkpoint files.

// IngestReplicated appends a batch of primary-shipped records to the local
// log (durability and stream validation first: duplicates are skipped, a gap
// refuses the whole batch with wal.ErrGap before anything is written) and
// applies their effects to the published state. Transactional records buffer
// until their commit marker — arriving in a later batch, or after a follower
// restart — exactly like recovery replay. It returns the follower's durable
// LSN horizon: the resume point for the next fetch.
func (db *DB) IngestReplicated(recs []wal.Record) (uint64, error) {
	if db.wal == nil {
		return 0, ErrNotDurable
	}
	// schemaMu held EXCLUSIVELY (not shared): a shipped batch may carry a
	// schema-change record, and applying one means swapping the binding —
	// taking the exclusive lock up front avoids an upgrade mid-batch. A
	// follower has no concurrent local writers to starve, so exclusivity
	// costs nothing; lock-free readers are untouched either way.
	db.schemaMu.Lock()
	defer db.schemaMu.Unlock()
	db.replMu.Lock()
	defer db.replMu.Unlock()
	accepted, err := db.wal.CommitShipped(recs)
	if err != nil {
		return db.wal.LSN(), err
	}
	for _, r := range accepted {
		kind, ops, inTxn, err := decodeWalRecord(r.Payload)
		if err != nil {
			return db.wal.LSN(), err
		}
		switch kind {
		case walRecBegin:
			db.replPending = db.replPending[:0]
		case walRecCommit:
			if err := db.applyReplicated(db.replPending, r.LSN); err != nil {
				return db.wal.LSN(), err
			}
			db.replPending = nil
		case walRecRollback:
			db.replPending = nil
		case walRecOp:
			if inTxn {
				db.replPending = append(db.replPending, ops...)
			} else if err := db.applyReplicated(ops, r.LSN); err != nil {
				return db.wal.LSN(), err
			}
		case walRecSchema:
			// The primary migrated live. The record is self-contained (new
			// schema + fully mapped state), so the follower lands exactly on
			// the post-merge design in one swap, stamped with the record's LSN.
			if len(db.replPending) > 0 {
				return db.wal.LSN(), fmt.Errorf("%w: schema-change record inside an open replicated transaction at LSN %d", ErrRecovery, r.LSN)
			}
			schemaSDL, stateSDL, err := decodeSchemaRecord(r.Payload)
			if err != nil {
				return db.wal.LSN(), err
			}
			if err := db.rebind(schemaSDL); err != nil {
				return db.wal.LSN(), fmt.Errorf("%w: rebinding onto shipped schema: %v", ErrRecovery, err)
			}
			migrated, err := sdl.ParseState(db.Schema, stateSDL)
			if err != nil {
				return db.wal.LSN(), fmt.Errorf("%w: parsing shipped migrated state: %v", ErrRecovery, err)
			}
			db.replaceState(migrated, r.LSN)
		default:
			return db.wal.LSN(), fmt.Errorf("%w: unknown replicated record kind %d at LSN %d", ErrRecovery, kind, r.LSN)
		}
	}
	return db.wal.LSN(), nil
}

// applyReplicated publishes one committed batch of physical effects, stamped
// with the WAL LSN of the record (or commit marker) that carried it.
func (db *DB) applyReplicated(ops []walOp, lsn uint64) error {
	if len(ops) == 0 {
		return nil
	}
	ls := db.lm.allWrite()
	db.acquire(ls)
	defer ls.release()
	tx := db.beginWrite()
	for _, op := range ops {
		t := db.tables[op.rel]
		if t == nil {
			return fmt.Errorf("%w: replicated record names unknown relation %s", ErrRecovery, op.rel)
		}
		if op.insert {
			tx.apply(t, op.tup)
		} else {
			tx.remove(t, op.tup)
		}
	}
	db.publish(tx, lsn)
	return nil
}

// IngestSnapshot bootstraps (or fast-forwards) the follower from a
// primary-shipped checkpoint: the serialized state is parsed, re-validated
// against the full constraint set, installed as the local log's recovery
// baseline at the primary's LSN (wal.Log.InstallSnapshot — same atomic
// temp-write/rename choreography as a local checkpoint), and then published
// as a wholesale replacement of every table's current version in one atomic
// snapshot swap. Used when the primary reports wal.ErrCompacted: the records
// the follower needs were folded into a checkpoint it must adopt instead.
func (db *DB) IngestSnapshot(data []byte, lsn uint64) error {
	if db.wal == nil {
		return ErrNotDurable
	}
	// Exclusive for the same reason as IngestReplicated: a shipped snapshot
	// may be framed with a schema the primary migrated onto, and adopting it
	// swaps the binding.
	db.schemaMu.Lock()
	defer db.schemaMu.Unlock()
	db.replMu.Lock()
	defer db.replMu.Unlock()
	schemaSDL, stateSDL, framed, err := decodeSnapshot(data)
	if err != nil {
		return fmt.Errorf("%w: parsing shipped snapshot: %v", ErrRecovery, err)
	}
	if framed && schemaSDL != sdl.PrintSchema(db.Schema) {
		if err := db.rebind(schemaSDL); err != nil {
			return fmt.Errorf("%w: rebinding onto shipped snapshot schema: %v", ErrRecovery, err)
		}
	}
	st, err := sdl.ParseState(db.Schema, stateSDL)
	if err != nil {
		return fmt.Errorf("%w: parsing shipped snapshot: %v", ErrRecovery, err)
	}
	valSchema := db.Schema
	if db.partition {
		sc := *db.Schema
		sc.INDs = nil
		valSchema = &sc
	}
	if err := state.Consistent(valSchema, st); err != nil {
		return fmt.Errorf("%w: shipped snapshot fails constraint re-validation: %v", ErrRecovery, err)
	}
	if err := db.wal.InstallSnapshot(data, lsn); err != nil {
		return fmt.Errorf("engine: installing shipped snapshot: %w", err)
	}
	db.replPending = nil
	db.replaceState(st, lsn)
	return nil
}

// replaceState publishes st as a wholesale replacement of every table's
// current version, stamped lsn. Staging every table over an EMPTY base
// version makes publish (which merges staged tables over current) a full
// replacement: tables absent from st publish empty. Caller holds schemaMu
// (shared or exclusive); local writers are additionally quiesced via the
// all-write lock set so a concurrent writer cannot publish between the swap
// decision and the swap.
func (db *DB) replaceState(st *state.DB, lsn uint64) {
	bind := db.bind
	ls := bind.lm.allWrite()
	db.acquire(ls)
	defer ls.release()
	tx := &writeTx{db: db, snap: &dbSnapshot{tables: emptyVersions(bind), bind: bind}, work: make(map[*table]*workTable, len(bind.tables))}
	for _, t := range bind.tables {
		tx.stage(t)
	}
	for name, t := range bind.tables {
		r := st.Relation(name)
		if r == nil {
			continue
		}
		src := r
		if !sameAttrs(src.Attrs(), t.hdr.Attrs()) {
			src = src.Project(t.hdr.Attrs())
		}
		for _, tup := range src.Tuples() {
			tx.apply(t, tup)
		}
	}
	db.publish(tx, lsn)
}

// ReplRead is the primary-side read half of the shipping loop: the committed
// records after afterLSN plus the commit horizon (wal.Log.ReadCommitted). It
// returns wal.ErrCompacted when the requested position predates the newest
// checkpoint — the caller must ship ReplSnapshot instead.
func (db *DB) ReplRead(afterLSN uint64, maxRecords int) ([]wal.Record, uint64, error) {
	if db.wal == nil {
		return nil, 0, ErrNotDurable
	}
	return db.wal.ReadCommitted(afterLSN, maxRecords)
}

// ReplSnapshot returns the newest checkpoint's verified payload and covered
// LSN for bootstrapping a follower that is behind the compaction horizon.
func (db *DB) ReplSnapshot() ([]byte, uint64, error) {
	if db.wal == nil {
		return nil, 0, ErrNotDurable
	}
	data, lsn, ok, err := db.wal.ReadSnapshot()
	if err != nil {
		return nil, 0, err
	}
	if !ok {
		return nil, 0, fmt.Errorf("engine: no checkpoint to ship (the log still holds every record)")
	}
	return data, lsn, nil
}

// DurableLSN returns the log's commit horizon: the LSN of the newest durable
// record (0 for a non-durable engine). On a follower this is the applied
// ingest position; on a primary, the newest committed operation.
func (db *DB) DurableLSN() uint64 {
	if db.wal == nil {
		return 0
	}
	return db.wal.LSN()
}
