package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/figures"
	"repro/internal/relation"
	"repro/internal/state"
	"repro/internal/wal"
)

func openDurable(t *testing.T, dir string, opts wal.Options) *DB {
	t.Helper()
	db, err := Open(figures.Fig3(), WithWALOptions(dir, opts))
	if err != nil {
		t.Fatalf("Open durable: %v", err)
	}
	return db
}

// TestDurableRoundtripRecovery is the scripted happy path: autonomous ops, a
// committed transaction, a rolled-back transaction, a checkpoint, and more
// ops — then the process "dies" (the engine is simply dropped, never Closed)
// and a reopen must reconstruct the exact committed state.
func TestDurableRoundtripRecovery(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, wal.Options{Policy: wal.SyncAlways})

	if err := db.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("COURSE", tup("c9")); err != nil {
		t.Fatal(err)
	}
	// A committed transaction: its effects must survive.
	if err := db.RunAtomic(func() error {
		if err := db.Insert("PERSON", tup("p-txn")); err != nil {
			return err
		}
		return db.Insert("STUDENT", tup("p-txn"))
	}); err != nil {
		t.Fatal(err)
	}
	// A rolled-back transaction: its effects must not.
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("DEPARTMENT", tup("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := db.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint tail, replayed on top of the snapshot.
	if err := db.Delete("ASSIST", tup("c1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("DEPARTMENT", tup("physics")); err != nil {
		t.Fatal(err)
	}
	want := db.Snapshot()

	db2 := openDurable(t, dir, wal.Options{Policy: wal.SyncAlways})
	defer db2.Close()
	if got := db2.Snapshot(); !got.Equal(want) {
		t.Fatalf("recovered state differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if err := state.Consistent(db2.Schema, db2.Snapshot()); err != nil {
		t.Fatalf("recovered state inconsistent: %v", err)
	}
	info := db2.Recovered()
	if !info.Recovered || !info.SnapshotLoaded {
		t.Fatalf("RecoveryInfo = %+v, want snapshot-based recovery", info)
	}
	if info.ReplayedOps != 2 {
		t.Fatalf("ReplayedOps = %d, want the 2 post-checkpoint mutations", info.ReplayedOps)
	}
	// The recovered engine keeps logging: one more op, one more reopen.
	if err := db2.Insert("COURSE", tup("c10")); err != nil {
		t.Fatal(err)
	}
	want2 := db2.Snapshot()
	db2.Close()
	db3 := openDurable(t, dir, wal.Options{Policy: wal.SyncAlways})
	defer db3.Close()
	if got := db3.Snapshot(); !got.Equal(want2) {
		t.Fatal("second-generation recovery differs")
	}
}

// TestRecoveryDiscardsUncommittedTxnSuffix kills the process mid-transaction
// and checks the replay drops the unterminated suffix, committed work stays.
func TestRecoveryDiscardsUncommittedTxnSuffix(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, wal.Options{Policy: wal.SyncAlways})
	if err := db.Insert("PERSON", tup("keep")); err != nil {
		t.Fatal(err)
	}
	want := db.Snapshot()
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("PERSON", tup("lost-1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("COURSE", tup("lost-2")); err != nil {
		t.Fatal(err)
	}
	// Crash here: no Commit, no Close.
	db2 := openDurable(t, dir, wal.Options{Policy: wal.SyncAlways})
	defer db2.Close()
	if got := db2.Snapshot(); !got.Equal(want) {
		t.Fatalf("uncommitted suffix leaked into recovery:\n%s", got)
	}
	if info := db2.Recovered(); info.DiscardedOps != 2 {
		t.Fatalf("DiscardedOps = %d, want 2", info.DiscardedOps)
	}
}

func TestCheckpointRefusedInsideTransaction(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, wal.Options{})
	defer db.Close()
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrOpenTransaction) {
		t.Fatalf("Checkpoint inside txn = %v, want ErrOpenTransaction", err)
	}
	if err := db.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after rollback: %v", err)
	}
}

func TestCheckpointWithoutDurability(t *testing.T) {
	db := openFig3(t)
	if err := db.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Checkpoint = %v, want ErrNotDurable", err)
	}
	if db.Durable() {
		t.Fatal("in-memory engine claims durability")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close of non-durable engine: %v", err)
	}
}

// TestRecoveryRevalidatesConstraints appends a physically valid log record
// whose replay breaks an inclusion dependency (deleting a referenced PERSON
// behind the engine's back) and checks Open refuses the recovered state with
// ErrRecovery rather than silently loading an inconsistent database.
func TestRecoveryRevalidatesConstraints(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, wal.Options{Policy: wal.SyncAlways})
	if err := db.Insert("PERSON", tup("p1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("FACULTY", tup("p1")); err != nil {
		t.Fatal(err)
	}
	// Forge the record with the engine's own encoder so it decodes cleanly.
	forged := encodeOpRecord(effects{{table: db.tables["PERSON"], tuple: tup("p1"), insert: false}}, false)
	db.Close()
	l, _, err := wal.Open(dir, wal.Options{Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit(forged); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, err = Open(figures.Fig3(), WithWALOptions(dir, wal.Options{}))
	if !errors.Is(err, ErrRecovery) {
		t.Fatalf("Open over constraint-violating log = %v, want ErrRecovery", err)
	}
}

// TestRecoverySurvivesDuplicatedSegment covers the duplicated-segment
// failpoint end to end: replay must deduplicate by LSN, not double-apply.
func TestRecoverySurvivesDuplicatedSegment(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, wal.Options{Policy: wal.SyncAlways})
	if err := db.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("TEACH", tup("c2")); err != nil {
		t.Fatal(err)
	}
	want := db.Snapshot()
	db.Close()
	if err := wal.DuplicateTailSegment(dir); err != nil {
		t.Fatal(err)
	}
	db2 := openDurable(t, dir, wal.Options{})
	defer db2.Close()
	if got := db2.Snapshot(); !got.Equal(want) {
		t.Fatalf("recovery after segment duplication differs:\n%s", got)
	}
	if info := db2.Recovered(); info.SkippedRecords == 0 {
		t.Fatal("expected duplicated records to be counted as skipped")
	}
}

// crashDriver runs a randomized op schedule against a durable engine while
// mirroring, at every transaction-closed boundary, the state the durable log
// is committed to. The mirror is the ground truth the post-crash recovery is
// compared against: thanks to revert-on-log-failure the live engine tracks
// the durable committed prefix exactly whenever no transaction is open.
type crashDriver struct {
	t       *testing.T
	db      *DB
	rng     *rand.Rand
	mirror  *state.DB
	deleted []struct {
		rel string
		tup relation.Tuple
	}
	fresh int
}

func (d *crashDriver) sync() {
	if !d.db.InTxn() {
		d.mirror = d.db.Snapshot()
	}
}

// step runs one random mutation (ignoring constraint-violation failures —
// they are part of normal operation and must leave no trace anywhere).
func (d *crashDriver) step() {
	switch d.rng.Intn(6) {
	case 0: // fresh root insert
		rels := []string{"PERSON", "COURSE", "DEPARTMENT"}
		d.fresh++
		d.db.Insert(rels[d.rng.Intn(len(rels))], tup(fmt.Sprintf("fresh-%d", d.fresh)))
	case 1, 2: // delete a random existing tuple (may be restricted)
		rel, victim := d.randomTuple()
		if victim == nil {
			return
		}
		key := victim.Project(d.db.tables[rel].hdr.Positions(d.db.tables[rel].rs.PrimaryKey))
		if err := d.db.Delete(rel, key); err == nil {
			d.deleted = append(d.deleted, struct {
				rel string
				tup relation.Tuple
			}{rel, victim})
		}
	case 3: // resurrect a previously deleted tuple (may now violate an IND)
		if len(d.deleted) == 0 {
			return
		}
		i := d.rng.Intn(len(d.deleted))
		d.db.Insert(d.deleted[i].rel, d.deleted[i].tup)
	case 4: // no-op-shaped update (remove + reinsert, two logged effects)
		rel, victim := d.randomTuple()
		if victim == nil {
			return
		}
		key := victim.Project(d.db.tables[rel].hdr.Positions(d.db.tables[rel].rs.PrimaryKey))
		d.db.Update(rel, key, victim)
	case 5: // batch of fresh root inserts — one log record for the group
		d.fresh++
		d.db.InsertBatch("PERSON", []relation.Tuple{
			tup(fmt.Sprintf("batch-%d-a", d.fresh)),
			tup(fmt.Sprintf("batch-%d-b", d.fresh)),
		})
	}
}

func (d *crashDriver) randomTuple() (string, relation.Tuple) {
	names := []string{"PERSON", "FACULTY", "STUDENT", "COURSE", "DEPARTMENT", "OFFER", "TEACH", "ASSIST"}
	rel := names[d.rng.Intn(len(names))]
	tuples := d.db.Relation(rel).Tuples()
	if len(tuples) == 0 {
		return rel, nil
	}
	return rel, tuples[d.rng.Intn(len(tuples))]
}

// TestCrashRecoveryPropertyMatrix is the tentpole property test: random
// consistent initial states × every failpoint kind × every fsync policy.
// Each cell drives a random schedule of ops, transactions, and checkpoints
// into a fault-injected log until the injected crash (if any) fires, kills
// the engine without cleanup, recovers, and asserts the recovered state
// equals the committed prefix exactly and passes constraint re-validation.
func TestCrashRecoveryPropertyMatrix(t *testing.T) {
	policies := []wal.SyncPolicy{wal.SyncNever, wal.SyncInterval, wal.SyncAlways}
	failpoints := []struct {
		name string
		fp   func(rng *rand.Rand) *wal.Failpoint
	}{
		{"none", func(*rand.Rand) *wal.Failpoint { return nil }},
		// The initial Load costs ~8 writes (one batch record per relation),
		// so write ordinals are drawn wide enough to land anywhere from the
		// load to deep inside the schedule.
		{"fail_write", func(rng *rand.Rand) *wal.Failpoint {
			return &wal.Failpoint{FailWrite: int64(3 + rng.Intn(30))}
		}},
		{"torn_write", func(rng *rand.Rand) *wal.Failpoint {
			return &wal.Failpoint{TornWrite: int64(3 + rng.Intn(30))}
		}},
		{"fail_sync", func(rng *rand.Rand) *wal.Failpoint {
			return &wal.Failpoint{FailSync: int64(1 + rng.Intn(12))}
		}},
		{"fail_rename", func(rng *rand.Rand) *wal.Failpoint {
			return &wal.Failpoint{FailRename: 1}
		}},
	}
	for _, policy := range policies {
		for _, fpc := range failpoints {
			for seed := int64(1); seed <= 2; seed++ {
				name := fmt.Sprintf("%s/%s/seed%d", policy, fpc.name, seed)
				t.Run(name, func(t *testing.T) {
					runCrashCell(t, policy, fpc.fp, seed)
				})
			}
		}
	}
}

func runCrashCell(t *testing.T, policy wal.SyncPolicy, mkfp func(*rand.Rand) *wal.Failpoint, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	opts := wal.Options{
		Policy:       policy,
		Interval:     2 * time.Millisecond,
		SegmentBytes: 512, // force several rotations per schedule
		Failpoint:    mkfp(rng),
	}
	db, err := Open(figures.Fig3(), WithWALOptions(dir, opts))
	if err != nil {
		t.Fatal(err)
	}
	d := &crashDriver{t: t, db: db, rng: rng, mirror: state.New(db.Schema)}

	// Random consistent initial state (internal/state/generate.go).
	init := state.MustGenerate(figures.Fig3(), rng, state.GenOptions{Rows: 4})
	db.Load(init)
	d.sync()

	for i := 0; i < 40; i++ {
		switch {
		case i%13 == 12: // checkpoint occasionally
			db.Checkpoint()
		case i%7 == 6: // transaction block
			if err := db.Begin(); err != nil {
				break
			}
			for j := 0; j <= d.rng.Intn(3); j++ {
				d.step()
			}
			if d.rng.Intn(2) == 0 {
				db.Commit()
			} else {
				db.Rollback()
			}
		default:
			d.step()
		}
		d.sync()
	}
	// Half the schedules die mid-transaction: the unterminated suffix must
	// be discarded by recovery, exactly like a rollback.
	if seed%2 == 0 && db.Begin() == nil {
		d.step()
		d.step()
	}
	// Crash: drop the engine without Close.
	want := d.mirror

	db2, err := Open(figures.Fig3(), WithWALOptions(dir, wal.Options{Policy: policy}))
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer db2.Close()
	got := db2.Snapshot()
	if !got.Equal(want) {
		t.Fatalf("recovered state != committed prefix\ngot:\n%s\nwant:\n%s", got, want)
	}
	if err := state.Consistent(db2.Schema, got); err != nil {
		t.Fatalf("recovered state fails re-validation: %v", err)
	}
}
