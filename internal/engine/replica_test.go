package engine

import (
	"errors"
	"testing"

	"repro/internal/figures"
	"repro/internal/wal"
)

// openReplica opens a durable engine marked as a replication follower:
// recovery resumes a shipped transaction's buffered suffix instead of
// discarding it.
func openReplica(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(figures.Fig3(), AsReplica(),
		WithWALOptions(dir, wal.Options{Policy: wal.SyncAlways}))
	if err != nil {
		t.Fatalf("Open replica: %v", err)
	}
	return db
}

// shipAll pumps the primary's committed suffix into the follower until the
// follower's durable horizon matches the primary's.
func shipAll(t *testing.T, p, f *DB) {
	t.Helper()
	for {
		applied := f.DurableLSN()
		recs, horizon, err := p.ReplRead(applied, 0)
		if err != nil {
			t.Fatalf("ReplRead(%d): %v", applied, err)
		}
		if len(recs) == 0 {
			if applied < horizon {
				t.Fatalf("no records shipped but applied %d < horizon %d", applied, horizon)
			}
			return
		}
		if _, err := f.IngestReplicated(recs); err != nil {
			t.Fatalf("IngestReplicated: %v", err)
		}
	}
}

func TestReplicatedApplyMirrorsPrimary(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p := openDurable(t, pdir, wal.Options{Policy: wal.SyncAlways})
	defer p.Close()
	if err := p.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("COURSE", tup("c9")); err != nil {
		t.Fatal(err)
	}
	if err := p.RunAtomic(func() error {
		if err := p.Insert("PERSON", tup("p-txn")); err != nil {
			return err
		}
		return p.Insert("STUDENT", tup("p-txn"))
	}); err != nil {
		t.Fatal(err)
	}
	// A rolled-back transaction ships too (its records are in the log) but
	// must leave no trace on the follower.
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("DEPARTMENT", tup("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := p.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete("ASSIST", tup("c1")); err != nil {
		t.Fatal(err)
	}

	f := openReplica(t, fdir)
	shipAll(t, p, f)
	if got, want := f.Snapshot(), p.Snapshot(); !got.Equal(want) {
		t.Fatalf("follower state differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if f.DurableLSN() != p.DurableLSN() {
		t.Fatalf("follower horizon %d, primary %d", f.DurableLSN(), p.DurableLSN())
	}

	// Duplicate delivery is idempotent; a gapped batch is refused.
	recs, _, err := p.ReplRead(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.IngestReplicated(recs); err != nil {
		t.Fatalf("duplicate ingest: %v", err)
	}
	if _, err := f.IngestReplicated([]wal.Record{{LSN: f.DurableLSN() + 7, Payload: []byte{walRecCommit}}}); !errors.Is(err, wal.ErrGap) {
		t.Fatalf("gapped ingest = %v, want wal.ErrGap", err)
	}
	if got, want := f.Snapshot(), p.Snapshot(); !got.Equal(want) {
		t.Fatalf("follower state changed by duplicate/gapped delivery")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// A restarted follower recovers to the same state and can keep applying.
	f2 := openReplica(t, fdir)
	defer f2.Close()
	if got, want := f2.Snapshot(), p.Snapshot(); !got.Equal(want) {
		t.Fatalf("recovered follower state differs")
	}
	if err := p.Insert("DEPARTMENT", tup("physics")); err != nil {
		t.Fatal(err)
	}
	shipAll(t, p, f2)
	if got, want := f2.Snapshot(), p.Snapshot(); !got.Equal(want) {
		t.Fatalf("follower state differs after post-restart ship")
	}
}

// A transaction whose commit marker arrives in a later batch — or after a
// follower restart — must still apply atomically, never partially.
func TestReplicatedTxnSpansBatchesAndRestart(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p := openDurable(t, pdir, wal.Options{Policy: wal.SyncAlways})
	defer p.Close()
	if err := p.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("PERSON", tup("p-mid")); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("STUDENT", tup("p-mid")); err != nil {
		t.Fatal(err)
	}

	// Ship the open transaction's prefix: the follower buffers, publishes
	// nothing of it.
	f := openReplica(t, fdir)
	shipAll(t, p, f)
	if _, ok := f.GetByKey("PERSON", tup("p-mid")); ok {
		t.Fatal("follower published an uncommitted transactional insert")
	}

	// Restart the follower mid-transaction: the buffered suffix must survive
	// (it is durable in the follower's log and the primary will not resend).
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2 := openReplica(t, fdir)
	defer f2.Close()
	if _, ok := f2.GetByKey("PERSON", tup("p-mid")); ok {
		t.Fatal("restarted follower published an uncommitted transactional insert")
	}

	// Commit on the primary; the marker ships alone and releases the buffer.
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	shipAll(t, p, f2)
	if _, ok := f2.GetByKey("PERSON", tup("p-mid")); !ok {
		t.Fatal("follower missing the committed transactional insert")
	}
	if got, want := f2.Snapshot(), p.Snapshot(); !got.Equal(want) {
		t.Fatalf("follower state differs after spanning commit:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// A follower that starts behind the primary's compaction horizon bootstraps
// from the shipped checkpoint, then tails the log.
func TestReplicatedSnapshotBootstrap(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p := openDurable(t, pdir, wal.Options{Policy: wal.SyncAlways})
	defer p.Close()
	if err := p.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("COURSE", tup("c9")); err != nil {
		t.Fatal(err)
	}

	f := openReplica(t, fdir)
	defer f.Close()
	_, _, err := p.ReplRead(f.DurableLSN(), 0)
	if !errors.Is(err, wal.ErrCompacted) {
		t.Fatalf("ReplRead below checkpoint = %v, want wal.ErrCompacted", err)
	}
	data, lsn, err := p.ReplSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.IngestSnapshot(data, lsn); err != nil {
		t.Fatal(err)
	}
	if f.DurableLSN() != lsn {
		t.Fatalf("follower horizon %d after snapshot install, want %d", f.DurableLSN(), lsn)
	}
	shipAll(t, p, f)
	if got, want := f.Snapshot(), p.Snapshot(); !got.Equal(want) {
		t.Fatalf("bootstrapped follower state differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if _, ok := f.GetByKey("COURSE", tup("c9")); !ok {
		t.Fatal("follower missing the post-checkpoint tail record")
	}
}

// A follower must not checkpoint while a replicated transaction's ops sit in
// the buffer awaiting their commit marker: the snapshot would be stamped past
// the buffered records and truncation would drop them for good.
func TestCheckpointRefusesBufferedReplicatedTxn(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p := openDurable(t, pdir, wal.Options{Policy: wal.SyncAlways})
	defer p.Close()
	if err := p.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("PERSON", tup("p-buf")); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("STUDENT", tup("p-buf")); err != nil {
		t.Fatal(err)
	}

	f := openReplica(t, fdir)
	shipAll(t, p, f)
	if err := f.Checkpoint(); !errors.Is(err, ErrOpenTransaction) {
		t.Fatalf("Checkpoint with buffered replicated txn = %v, want ErrOpenTransaction", err)
	}

	// The refusal must survive a restart: recovery reseeds the buffer from
	// the log's unterminated suffix.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2 := openReplica(t, fdir)
	defer f2.Close()
	if err := f2.Checkpoint(); !errors.Is(err, ErrOpenTransaction) {
		t.Fatalf("Checkpoint after restart = %v, want ErrOpenTransaction", err)
	}

	// Once the commit marker lands the buffer drains and checkpointing works.
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	shipAll(t, p, f2)
	if err := f2.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after commit marker: %v", err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
	f3 := openReplica(t, fdir)
	defer f3.Close()
	if got, want := f3.Snapshot(), p.Snapshot(); !got.Equal(want) {
		t.Fatalf("follower state differs after checkpoint+restart:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if _, ok := f3.GetByKey("PERSON", tup("p-buf")); !ok {
		t.Fatal("follower missing the committed transactional insert after checkpoint")
	}
}
