package engine

import (
	"fmt"

	"repro/internal/immap"
	"repro/internal/relation"
)

// This file implements the engine's MVCC read path: immutable versioned
// table snapshots with copy-on-write publication.
//
//   - tableVersion is one immutable version of a table's contents: the
//     primary-key index and every prebuilt secondary index as persistent
//     (structurally shared) maps. A published version is never modified.
//   - dbSnapshot bundles one version per table plus the WAL LSN of the last
//     operation it contains. DB.current holds the latest published snapshot;
//     a single atomic pointer load pins a consistent cross-table view.
//   - Readers (GetByKey, Scan, FetchWithReferences, View) pin a snapshot and
//     run entirely lock-free; writers never block them.
//   - Writers still serialize through the per-table lock plans (locks.go):
//     the held write locks guarantee the pinned snapshot is the latest
//     version of every table the writer mutates. Mutations are staged in a
//     writeTx — fresh map versions derived from the pinned snapshot — and
//     become visible in ONE publish after the WAL accepts the record
//     (commitEffects, locks.go). A failed or violating operation simply
//     drops its writeTx: the published state was never touched, so there is
//     nothing to revert.
//   - Old versions are reclaimed by the garbage collector once the last
//     reader drops its snapshot pointer; no epoch or hazard bookkeeping.

// tableVersion is one immutable published version of a table's indexes.
// The pk map is keyed by the encoded primary-key value; each secondary map
// (one per prebuilt index, keyed like table.secIdx) maps an encoded attribute
// value to the bucket of tuples holding it.
type tableVersion struct {
	pk  *immap.Map[relation.Tuple]
	sec map[string]*immap.Map[[]relation.Tuple]
}

// dbSnapshot is one immutable, cross-table-consistent version of the whole
// database, stamped with the WAL LSN of the newest operation it contains
// (a logical sequence number for non-durable engines). It carries the schema
// binding it was published under, so a pinned reader resolves relation names,
// dependency hops, and index layouts against the design that produced the
// snapshot — a live schema migration never changes what an already-pinned
// View answers.
type dbSnapshot struct {
	lsn    uint64
	tables map[string]*tableVersion
	bind   *binding
}

// writeTx stages the mutations of one operation (or one whole batch) as
// unpublished map versions derived from a pinned snapshot. Validation reads
// go through the writeTx so earlier staged mutations are visible to later
// checks of the same batch; concurrent readers see none of it until publish.
type writeTx struct {
	db   *DB
	snap *dbSnapshot
	work map[*table]*workTable
	// dry marks a prevalidation pass (PrevalidateBatchCtx): the same checks
	// run against the same staged semantics, but nothing publishes and the
	// cost counters stay silent, so a cross-shard prevalidate-then-apply pair
	// accounts each operation exactly once.
	dry bool
}

// Cost-accounting forwarders: identical to the db.countX helpers except that
// a dry-run transaction suppresses them.
func (tx *writeTx) countInsert() {
	if !tx.dry {
		tx.db.countInsert()
	}
}

func (tx *writeTx) countDelete() {
	if !tx.dry {
		tx.db.countDelete()
	}
}

func (tx *writeTx) countUpdate() {
	if !tx.dry {
		tx.db.countUpdate()
	}
}

func (tx *writeTx) countDecl() {
	if !tx.dry {
		tx.db.countDecl()
	}
}

func (tx *writeTx) countTrig() {
	if !tx.dry {
		tx.db.countTrig()
	}
}

func (tx *writeTx) countIdx() {
	if !tx.dry {
		tx.db.countIdx()
	}
}

// workTable holds the in-progress next version of one table's indexes.
type workTable struct {
	pk  *immap.Map[relation.Tuple]
	sec map[string]*immap.Map[[]relation.Tuple]
}

// beginWrite pins the current snapshot as the base of a new write
// transaction. It must be called after the operation's lock set is acquired:
// the held write locks guarantee no concurrent writer publishes a newer
// version of any table this transaction will mutate.
func (db *DB) beginWrite() *writeTx {
	return &writeTx{db: db, snap: db.current.Load(), work: make(map[*table]*workTable, 1)}
}

// stage returns (creating on first mutation) the working version of t.
func (tx *writeTx) stage(t *table) *workTable {
	if wt, ok := tx.work[t]; ok {
		return wt
	}
	v := tx.snap.tables[t.name]
	wt := &workTable{pk: v.pk, sec: make(map[string]*immap.Map[[]relation.Tuple], len(v.sec))}
	for k, idx := range v.sec {
		wt.sec[k] = idx
	}
	tx.work[t] = wt
	return wt
}

// pkGet reads the primary-key index of t: staged version if this transaction
// mutated t, pinned snapshot otherwise.
func (tx *writeTx) pkGet(t *table, key string) (relation.Tuple, bool) {
	if wt, ok := tx.work[t]; ok {
		return wt.pk.Get(key)
	}
	return tx.snap.tables[t.name].pk.Get(key)
}

// bucket reads one secondary-index bucket of t (staged or pinned, like pkGet).
func (tx *writeTx) bucket(t *table, idxKey, valKey string) []relation.Tuple {
	var idx *immap.Map[[]relation.Tuple]
	if wt, ok := tx.work[t]; ok {
		idx = wt.sec[idxKey]
	} else {
		idx = tx.snap.tables[t.name].sec[idxKey]
	}
	if idx == nil {
		return nil
	}
	b, _ := idx.Get(valKey)
	return b
}

// apply stages one tuple insertion into t: the pk index and every secondary
// index derive fresh versions. The published snapshot is untouched.
func (tx *writeTx) apply(t *table, tup relation.Tuple) {
	wt := tx.stage(t)
	wt.pk = wt.pk.Set(t.keyOfIncoming(tup), tup)
	for key, ps := range t.secIdx {
		sub := tup.Project(ps)
		if !sub.IsTotal() {
			continue
		}
		ek := sub.EncodeKey()
		old, _ := wt.sec[key].Get(ek)
		bucket := make([]relation.Tuple, 0, len(old)+1)
		bucket = append(bucket, old...)
		bucket = append(bucket, tup)
		wt.sec[key] = wt.sec[key].Set(ek, bucket)
	}
}

// remove stages one tuple removal from t. Emptied secondary buckets are
// deleted outright, so delete/insert churn over fresh keys never grows an
// index by retired empty buckets.
func (tx *writeTx) remove(t *table, tup relation.Tuple) {
	wt := tx.stage(t)
	wt.pk = wt.pk.Delete(t.keyOfIncoming(tup))
	for key, ps := range t.secIdx {
		sub := tup.Project(ps)
		if !sub.IsTotal() {
			continue
		}
		ek := sub.EncodeKey()
		old, ok := wt.sec[key].Get(ek)
		if !ok {
			continue
		}
		bucket := make([]relation.Tuple, 0, len(old))
		dropped := false
		for _, cand := range old {
			if !dropped && cand.Identical(tup) {
				dropped = true
				continue
			}
			bucket = append(bucket, cand)
		}
		if len(bucket) == 0 {
			wt.sec[key] = wt.sec[key].Delete(ek)
		} else {
			wt.sec[key] = wt.sec[key].Set(ek, bucket)
		}
	}
}

// publish makes the transaction's staged table versions the current
// snapshot, stamped with the LSN of the WAL record that made them durable.
// This is the single point where writes become visible to readers: one
// atomic pointer swap covers every table the operation touched, so a
// concurrent reader sees either all of a batch or none of it.
//
// pubMu serializes publishers only (writers on disjoint tables can reach
// here concurrently); readers never take it. The per-table write locks
// guarantee the staged versions are derived from the latest published
// version of each staged table, so merging them over the current snapshot
// never loses a concurrent writer's update to an unrelated table.
func (db *DB) publish(tx *writeTx, lsn uint64) {
	if len(tx.work) == 0 {
		return
	}
	start := now()
	db.pubMu.Lock()
	cur := db.current.Load()
	tables := make(map[string]*tableVersion, len(cur.tables))
	for name, v := range cur.tables {
		tables[name] = v
	}
	for t, wt := range tx.work {
		tables[t.name] = &tableVersion{pk: wt.pk, sec: wt.sec}
	}
	if lsn < cur.lsn {
		// Concurrent writers can commit WAL records out of publish order;
		// the snapshot stamp is the highest LSN it contains.
		lsn = cur.lsn
	}
	db.current.Store(&dbSnapshot{lsn: lsn, tables: tables, bind: cur.bind})
	db.pubMu.Unlock()
	db.lastPublish.Store(now().UnixNano())
	db.m.publishes.Inc()
	db.m.versionLSN.Set(float64(lsn))
	db.m.publishLat.ObserveSince(start)
}

// View is a consistent read view pinned to one published version of the
// database. All methods are lock-free and safe for concurrent use; the view
// never observes later writes. Holding a View pins its version's memory, so
// long-lived views should be re-pinned (db.View()) when freshness matters.
type View struct {
	db   *DB
	snap *dbSnapshot
}

// View pins the current published version as a consistent read view.
func (db *DB) View() *View {
	return &View{db: db, snap: db.current.Load()}
}

// LSN returns the WAL LSN stamp of the pinned version.
func (v *View) LSN() uint64 { return v.snap.lsn }

// Count returns the tuple count of a relation in the pinned version.
func (v *View) Count(name string) int {
	tv := v.snap.tables[name]
	if tv == nil {
		return 0
	}
	return tv.pk.Len()
}

// GetByKey is DB.GetByKey against the pinned version.
func (v *View) GetByKey(name string, key relation.Tuple) (relation.Tuple, bool) {
	tup, ok, err := v.db.getAt(v.snap, name, key)
	if err != nil {
		return nil, false
	}
	return tup, ok
}

// Scan is DB.Scan against the pinned version.
func (v *View) Scan(name string, pred func(relation.Tuple) bool, visit func(relation.Tuple)) error {
	return v.db.scanAt(v.snap, name, pred, visit)
}

// FetchWithReferences is DB.FetchWithReferences against the pinned version.
func (v *View) FetchWithReferences(name string, key relation.Tuple) (relation.Tuple, []Related, error) {
	return v.db.fetchAt(v.snap, name, key)
}

// VersionLSN returns the LSN stamp of the current published version: the WAL
// LSN of the newest committed operation (a logical sequence number for
// non-durable engines).
func (db *DB) VersionLSN() uint64 { return db.current.Load().lsn }

// TxnView returns the consistent read view pinned when the open transaction
// began, or false if no transaction is open. Within the transaction, reads
// through the DB methods see the transaction's own (published) writes, while
// the TxnView keeps answering from the begin-LSN version.
func (db *DB) TxnView() (*View, bool) {
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	if !db.inTxn.Load() || db.txnSnap == nil {
		return nil, false
	}
	return &View{db: db, snap: db.txnSnap}, true
}

// LockAcquisitions returns the total number of lock-plan acquisitions since
// Open. Read-only phases leave it unchanged — the observable witness that
// the fetch/scan hot path takes no locks (benchreport's P8 suite and the
// MVCC stress tests assert a zero delta).
func (db *DB) LockAcquisitions() uint64 { return db.lockAcq.Load() }

// getAt answers a key lookup from one pinned snapshot.
func (db *DB) getAt(snap *dbSnapshot, name string, key relation.Tuple) (relation.Tuple, bool, error) {
	t := snap.bind.tables[name]
	if t == nil {
		return nil, false, fmt.Errorf("%w %s", ErrUnknownRelation, name)
	}
	db.simAccess()
	tup, ok := snap.tables[name].pk.Get(key.EncodeKey())
	db.countLookup()
	db.countIdx()
	db.countSnapRead()
	db.noteFetch(snap.bind, name)
	return tup, ok, nil
}

// scanAt visits every tuple of one pinned snapshot's version of the
// relation. The callbacks run against immutable data with no locks held, so
// they may re-enter the DB freely (even with mutations); the scan itself can
// never observe those — or any concurrent — mutations.
func (db *DB) scanAt(snap *dbSnapshot, name string, pred func(relation.Tuple) bool, visit func(relation.Tuple)) error {
	t := snap.bind.tables[name]
	if t == nil {
		return fmt.Errorf("%w %s", ErrUnknownRelation, name)
	}
	v := snap.tables[name]
	db.simAccess()
	db.countScan(v.pk.Len())
	db.countSnapRead()
	v.pk.Range(func(_ string, tup relation.Tuple) bool {
		if pred == nil || pred(tup) {
			visit(tup)
		}
		return true
	})
	return nil
}

// fetchAt runs the FK chase of FetchWithReferences against one pinned
// snapshot: the root lookup and every dependency hop read the same version,
// so the result can never mix tuples from different batches.
func (db *DB) fetchAt(snap *dbSnapshot, name string, key relation.Tuple) (relation.Tuple, []Related, error) {
	start := now()
	bind := snap.bind
	t := bind.tables[name]
	if t == nil {
		return nil, nil, fmt.Errorf("%w %s", ErrUnknownRelation, name)
	}
	defer db.m.lookupLat.ObserveSince(start)
	db.simAccess()
	db.countLookup()
	db.countIdx()
	db.countSnapRead()
	db.noteFetch(bind, name)
	tup, ok := snap.tables[name].pk.Get(key.EncodeKey())
	if !ok {
		return nil, nil, fmt.Errorf("%w: no %s tuple with key %v", ErrNoSuchTuple, name, key)
	}
	var related []Related
	for _, ind := range bind.indsFrom[name] {
		rel := Related{From: name, To: ind.Right, FK: ind.LeftAttrs}
		fk := projectAttrs(t, tup, ind.LeftAttrs)
		if !fk.IsTotal() {
			rel.IsNull = true
			related = append(related, rel)
			continue
		}
		target := bind.tables[ind.Right]
		tv := snap.tables[ind.Right]
		if ind.KeyBased(bind.schema) {
			db.countLookup()
			db.countIdx()
			if hit, ok := tv.pk.Get(orderAsKey(target, ind.RightAttrs, fk)); ok {
				rel.Tuple = hit
			}
		} else {
			db.countLookup()
			db.countIdx()
			if idx := tv.sec[secondaryKey(ind.RightAttrs)]; idx != nil {
				if hits, _ := idx.Get(fk.EncodeKey()); len(hits) > 0 {
					rel.Tuple = hits[0]
				}
			}
		}
		if rel.Tuple != nil {
			db.noteFetchHop(bind, name, ind.Right)
		}
		related = append(related, rel)
	}
	return tup, related, nil
}
