package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/relation"
	"repro/internal/sdl"
	"repro/internal/state"
	"repro/internal/wal"
)

// fig3Merge builds the Fig-3 auto-applicable merge: the Prop. 5.2 cluster
// {OFFER, TEACH, ASSIST} merged around OFFER with every key copy removed.
func fig3Merge(t *testing.T) *core.MergedScheme {
	t.Helper()
	m, err := core.MergeWith(figures.Fig3(), []string{"OFFER", "TEACH", "ASSIST"}, "OFFER+", core.Options{KeyRelation: "OFFER"})
	if err != nil {
		t.Fatalf("MergeWith: %v", err)
	}
	m.RemoveAll()
	return m
}

// etaOf wraps a MergedScheme's η mapping as a MigrateSchema transform.
func etaOf(m *core.MergedScheme) func(*state.DB) (*state.DB, error) {
	return func(st *state.DB) (*state.DB, error) { return m.MapState(st), nil }
}

func TestMigrateSchemaLive(t *testing.T) {
	db := MustOpen(figures.Fig3())
	if err := db.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	pre := db.Snapshot()
	preView := db.View()
	preLSN := db.VersionLSN()

	m := fig3Merge(t)
	if err := db.MigrateSchema(m.Schema, etaOf(m)); err != nil {
		t.Fatalf("MigrateSchema: %v", err)
	}

	// The installed state is exactly η(pre-state).
	want := m.MapState(pre)
	if got := db.Snapshot(); !got.Equal(want) {
		t.Fatalf("post-migration state differs from η(pre):\ngot:\n%s\nwant:\n%s", got, want)
	}
	if db.VersionLSN() <= preLSN {
		t.Fatalf("migration published LSN %d, want > %d", db.VersionLSN(), preLSN)
	}
	// The new design serves reads and FK-chasing fetches.
	if _, ok := db.GetByKey("OFFER+", tup("c1")); !ok {
		t.Fatal("merged relation does not answer on the new design")
	}
	if _, ok := db.GetByKey("TEACH", tup("c1")); ok {
		t.Fatal("pre-merge relation still answers on the current design")
	}
	if _, _, err := db.FetchWithReferences("OFFER+", tup("c1")); err != nil {
		t.Fatalf("fetch on merged relation: %v", err)
	}
	// Old relation names are gone from the current design…
	if _, _, err := db.FetchWithReferences("OFFER", tup("c1")); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("pre-merge relation still resolves: %v", err)
	}
	// …but the view pinned BEFORE the migration still answers on the old
	// design: names, dependency hops, and contents.
	if _, ok := preView.GetByKey("OFFER", tup("c1")); !ok {
		t.Fatal("pinned pre-migration view lost the old design")
	}
	if _, related, err := preView.FetchWithReferences("TEACH", tup("c1")); err != nil || len(related) != 2 {
		t.Fatalf("pinned view fetch = (%v, %d related), want 2 dependency hops", err, len(related))
	}
	// Writes work on the new design, with constraints enforced against it.
	if err := db.Insert("OFFER+", tup("c3", "math", "s1", nil)); err != nil {
		t.Fatalf("insert into merged relation: %v", err)
	}
	if err := db.Insert("OFFER+", tup("c9", "math", nil, nil)); err == nil {
		t.Fatal("insert referencing unknown COURSE c9 must violate the rewritten IND")
	}
	if err := state.Consistent(db.Schema, db.Snapshot()); err != nil {
		t.Fatalf("post-migration state inconsistent: %v", err)
	}
}

func TestMigrateSchemaRefusals(t *testing.T) {
	db := MustOpen(figures.Fig3())
	if err := db.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	pre := db.Snapshot()
	m := fig3Merge(t)

	// Open transaction: refused with the typed sentinel.
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := db.MigrateSchema(m.Schema, etaOf(m)); !errors.Is(err, ErrOpenTransaction) {
		t.Fatalf("migrate inside txn = %v, want ErrOpenTransaction", err)
	}
	if err := db.Rollback(); err != nil {
		t.Fatal(err)
	}

	// A transform whose output violates the new design's constraints is
	// refused BEFORE the commit point: nothing installed, nothing logged.
	bad := func(st *state.DB) (*state.DB, error) {
		mapped := m.MapState(st)
		mapped.Set("COURSE", relation.New("C.NR")) // orphan every OFFER+ tuple
		return mapped, nil
	}
	if err := db.MigrateSchema(m.Schema, bad); err == nil {
		t.Fatal("migrate with constraint-violating mapped state must fail")
	}
	// A transform error is propagated and nothing changes either.
	boom := func(*state.DB) (*state.DB, error) { return nil, fmt.Errorf("boom") }
	if err := db.MigrateSchema(m.Schema, boom); err == nil {
		t.Fatal("transform error must fail the migration")
	}
	if got := db.Snapshot(); !got.Equal(pre) {
		t.Fatalf("failed migration changed state:\n%s", got)
	}
	if _, ok := db.GetByKey("OFFER", tup("c1")); !ok {
		t.Fatal("failed migration changed the design")
	}
}

// TestMigrateCrashMatrix is the live-migration crash-injection matrix: the
// process dies before, during, and after the schema-change WAL record, and
// recovery must land on EXACTLY the pre-merge or post-merge design — full
// state equality plus constraint re-validation — never a mix.
func TestMigrateCrashMatrix(t *testing.T) {
	m := fig3Merge(t)
	mergedSDL := sdl.PrintSchema(m.Schema)
	fig3SDL := sdl.PrintSchema(figures.Fig3())

	// seed builds a durable pre-merge engine in dir and returns its state.
	seed := func(t *testing.T, dir string) *state.DB {
		db := openDurable(t, dir, wal.Options{Policy: wal.SyncAlways})
		if err := db.Load(figures.Fig3State()); err != nil {
			t.Fatal(err)
		}
		pre := db.Snapshot()
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		return pre
	}

	// The pre-merge cases: the injected fault fires on the schema record —
	// the FIRST write/fsync after the reopen — so the record never becomes
	// durable and the migration reports failure.
	for _, tc := range []struct {
		name string
		fp   *wal.Failpoint
	}{
		{"fail-before-record-write", &wal.Failpoint{FailWrite: 1}},
		{"torn-mid-record", &wal.Failpoint{TornWrite: 1}},
		{"fail-record-fsync", &wal.Failpoint{FailSync: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			pre := seed(t, dir)
			db := openDurable(t, dir, wal.WithFailpoint(wal.SyncAlways, tc.fp))
			if err := db.MigrateSchema(m.Schema, etaOf(m)); err == nil {
				t.Fatal("migration must fail when its WAL record cannot commit")
			}
			// The live engine stayed on the old design.
			if _, ok := db.GetByKey("OFFER", tup("c1")); !ok {
				t.Fatal("failed migration left the live engine off the old design")
			}
			// Crash (drop without Close) and recover: exactly pre-merge.
			db2 := openDurable(t, dir, wal.Options{Policy: wal.SyncAlways})
			defer db2.Close()
			if got := sdl.PrintSchema(db2.Schema); got != fig3SDL {
				t.Fatalf("recovered schema is not the pre-merge design:\n%s", got)
			}
			if got := db2.Snapshot(); !got.Equal(pre) {
				t.Fatalf("recovered state is not exactly pre-merge:\ngot:\n%s\nwant:\n%s", got, pre)
			}
			if err := state.Consistent(db2.Schema, db2.Snapshot()); err != nil {
				t.Fatalf("recovered pre-merge state fails re-validation: %v", err)
			}
			if n := db2.Recovered().SchemaChanges; n != 0 {
				t.Fatalf("SchemaChanges = %d, want 0", n)
			}
		})
	}

	// Post-merge: the record is durable, then the process dies — with and
	// without post-migration traffic to replay on the new design.
	for _, tailOps := range []bool{false, true} {
		t.Run(fmt.Sprintf("durable-record-tailops-%v", tailOps), func(t *testing.T) {
			dir := t.TempDir()
			pre := seed(t, dir)
			db := openDurable(t, dir, wal.Options{Policy: wal.SyncAlways})
			if err := db.MigrateSchema(m.Schema, etaOf(m)); err != nil {
				t.Fatalf("MigrateSchema: %v", err)
			}
			if tailOps {
				if err := db.Insert("OFFER+", tup("c3", "math", "s1", nil)); err != nil {
					t.Fatalf("post-migration insert: %v", err)
				}
				if err := db.Delete("OFFER+", tup("c2")); err != nil {
					t.Fatalf("post-migration delete: %v", err)
				}
			}
			want := db.Snapshot()
			// Crash: no Close.
			db2 := openDurable(t, dir, wal.Options{Policy: wal.SyncAlways})
			defer db2.Close()
			if got := sdl.PrintSchema(db2.Schema); got != mergedSDL {
				t.Fatalf("recovered schema is not the post-merge design:\n%s", got)
			}
			if got := db2.Snapshot(); !got.Equal(want) {
				t.Fatalf("recovered state is not exactly post-merge:\ngot:\n%s\nwant:\n%s", got, want)
			}
			if err := state.Consistent(db2.Schema, db2.Snapshot()); err != nil {
				t.Fatalf("recovered post-merge state fails re-validation: %v", err)
			}
			if n := db2.Recovered().SchemaChanges; n != 1 {
				t.Fatalf("SchemaChanges = %d, want 1", n)
			}
			if !got3(t, db2, pre) {
				t.Fatal("sanity: post-merge recovery must differ from pre-merge state")
			}
			// A post-recovery checkpoint frames the merged schema, so the
			// NEXT generation recovers without replaying the schema record.
			if err := db2.Checkpoint(); err != nil {
				t.Fatalf("post-migration checkpoint: %v", err)
			}
			db3 := openDurable(t, dir, wal.Options{Policy: wal.SyncAlways})
			defer db3.Close()
			if got := sdl.PrintSchema(db3.Schema); got != mergedSDL {
				t.Fatal("framed checkpoint did not carry the merged schema")
			}
			if got := db3.Snapshot(); !got.Equal(want) {
				t.Fatal("third-generation recovery differs")
			}
		})
	}
}

// got3 reports whether the recovered state differs from pre (guards against
// a vacuously passing matrix).
func got3(t *testing.T, db *DB, pre *state.DB) bool {
	t.Helper()
	return !db.Snapshot().Equal(pre)
}

// TestMigrateReaderUnderMigration hammers the lock-free read path from many
// goroutines while the schema migrates under them. Every pinned view must
// answer one design completely — old names with old hops, or new names with
// new hops — and never a mix or a spurious error.
func TestMigrateReaderUnderMigration(t *testing.T) {
	db := MustOpen(figures.Fig3())
	if err := db.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	m := fig3Merge(t)

	var (
		done     atomic.Bool
		sawOld   atomic.Int64
		sawNew   atomic.Int64
		failures atomic.Int64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	report := func(format string, args ...any) {
		failures.Add(1)
		firstErr.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				v := db.View()
				tupOld, related, err := v.FetchWithReferences("OFFER", tup("c1"))
				switch {
				case err == nil:
					sawOld.Add(1)
					if tupOld == nil || len(related) != 2 {
						report("old-design fetch incomplete: %v related", len(related))
					}
					// The SAME view must still resolve every old name.
					if _, ok := v.GetByKey("TEACH", tup("c1")); !ok {
						report("old-design view lost TEACH")
					}
				case errors.Is(err, ErrUnknownRelation):
					sawNew.Add(1)
					// The SAME view must fully answer the new design.
					mt, mrel, merr := v.FetchWithReferences("OFFER+", tup("c1"))
					if merr != nil || mt == nil {
						report("new-design view cannot fetch OFFER+: %v", merr)
					}
					if len(mrel) == 0 {
						report("new-design fetch resolved no dependency hops")
					}
					if _, ok := v.GetByKey("TEACH", tup("c1")); ok {
						report("new-design view still resolves TEACH: mixed design")
					}
				default:
					report("unexpected fetch error: %v", err)
				}
			}
		}()
	}
	if err := db.MigrateSchema(m.Schema, etaOf(m)); err != nil {
		t.Fatalf("MigrateSchema under readers: %v", err)
	}
	// Let readers observe the new design before stopping.
	for sawNew.Load() == 0 && failures.Load() == 0 {
	}
	done.Store(true)
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d reader failures, first: %v", failures.Load(), firstErr.Load())
	}
	if sawNew.Load() == 0 {
		t.Fatal("no reader observed the post-migration design")
	}
}

// TestMigrateShipsToFollower: the primary's schema-change record replicates
// like any other record, landing the follower on the merged design with the
// mapped state at the same LSN.
func TestMigrateShipsToFollower(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p := openDurable(t, pdir, wal.Options{Policy: wal.SyncAlways})
	defer p.Close()
	f := openReplica(t, fdir)
	defer f.Close()
	if err := p.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	shipAll(t, p, f)

	m := fig3Merge(t)
	if err := p.MigrateSchema(m.Schema, etaOf(m)); err != nil {
		t.Fatalf("MigrateSchema on primary: %v", err)
	}
	if err := p.Insert("OFFER+", tup("c3", "cs", "s2", nil)); err != nil {
		t.Fatal(err)
	}
	shipAll(t, p, f)

	if got, want := sdl.PrintSchema(f.Schema), sdl.PrintSchema(m.Schema); got != want {
		t.Fatalf("follower schema did not follow the migration:\n%s", got)
	}
	if got := f.Snapshot(); !got.Equal(p.Snapshot()) {
		t.Fatalf("follower state diverged:\ngot:\n%s\nwant:\n%s", got, p.Snapshot())
	}
	if f.VersionLSN() != p.VersionLSN() {
		t.Fatalf("follower LSN %d != primary %d", f.VersionLSN(), p.VersionLSN())
	}
	// Follower reads serve the merged design.
	if _, ok := f.GetByKey("OFFER+", tup("c3")); !ok {
		t.Fatal("follower does not answer on the merged design")
	}
	// And a follower restart recovers onto it from its own log.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2 := openReplica(t, fdir)
	defer f2.Close()
	if got, want := sdl.PrintSchema(f2.Schema), sdl.PrintSchema(m.Schema); got != want {
		t.Fatal("restarted follower lost the migrated design")
	}
	if got := f2.Snapshot(); !got.Equal(p.Snapshot()) {
		t.Fatal("restarted follower state diverged")
	}
}

// TestCoAccessCounters: the fetch path feeds the per-IND-edge co-access
// counters — both the dependency-hop signal (FetchWithReferences resolving a
// related tuple) and the A-then-B pair signal — and a migration resets them
// with the new binding.
func TestCoAccessCounters(t *testing.T) {
	db := MustOpen(figures.Fig3())
	if err := db.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	hits := func(left, right string) int64 {
		for _, e := range db.CoAccessStats() {
			if e.Left == left && e.Right == right {
				return e.Hits
			}
		}
		t.Fatalf("no co-access edge %s->%s", left, right)
		return 0
	}
	// Dependency hops: TEACH c1 resolves OFFER c1 and FACULTY s1.
	for i := 0; i < 5; i++ {
		if _, _, err := db.FetchWithReferences("TEACH", tup("c1")); err != nil {
			t.Fatal(err)
		}
	}
	if h := hits("TEACH", "OFFER"); h < 5 {
		t.Fatalf("TEACH->OFFER hits = %d, want >= 5 hop bumps", h)
	}
	if h := hits("TEACH", "FACULTY"); h < 5 {
		t.Fatalf("TEACH->FACULTY hits = %d, want >= 5 hop bumps", h)
	}
	// Pair signal: GetByKey STUDENT then PERSON (an IND edge) bumps the edge
	// even without FetchWithReferences.
	before := hits("STUDENT", "PERSON")
	db.GetByKey("STUDENT", tup("s3"))
	db.GetByKey("PERSON", tup("s3"))
	if h := hits("STUDENT", "PERSON"); h <= before {
		t.Fatalf("STUDENT->PERSON hits = %d, want a pair bump over %d", h, before)
	}
	// Unrelated consecutive fetches (no IND between COURSE and DEPARTMENT)
	// bump nothing.
	db.GetByKey("COURSE", tup("c1"))
	db.GetByKey("DEPARTMENT", tup("math"))
	for _, e := range db.CoAccessStats() {
		if e.Left == "COURSE" && e.Right == "DEPARTMENT" {
			t.Fatal("co-access edge exists for unrelated pair")
		}
	}
	// Hottest-first ordering.
	stats := db.CoAccessStats()
	for i := 1; i < len(stats); i++ {
		if stats[i].Hits > stats[i-1].Hits {
			t.Fatal("CoAccessStats not sorted hottest-first")
		}
	}
	// Migration installs a fresh binding: counters restart at zero.
	m := fig3Merge(t)
	if err := db.MigrateSchema(m.Schema, etaOf(m)); err != nil {
		t.Fatal(err)
	}
	for _, e := range db.CoAccessStats() {
		if e.Hits != 0 {
			t.Fatalf("post-migration counter %s->%s = %d, want 0", e.Left, e.Right, e.Hits)
		}
	}
}
