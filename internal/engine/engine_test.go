package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/state"
)

func str(s string) relation.Value { return relation.NewString(s) }

func tup(vals ...any) relation.Tuple {
	out := make(relation.Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case nil:
			out[i] = relation.Null()
		case string:
			out[i] = relation.NewString(x)
		default:
			panic("bad test value")
		}
	}
	return out
}

func openFig3(t *testing.T) *DB {
	t.Helper()
	db, err := Open(figures.Fig3())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestInsertAndLookup(t *testing.T) {
	db := openFig3(t)
	if err := db.Insert("COURSE", tup("c1")); err != nil {
		t.Fatal(err)
	}
	got, ok := db.GetByKey("COURSE", tup("c1"))
	if !ok || !got.Identical(tup("c1")) {
		t.Error("GetByKey after insert")
	}
	if _, ok := db.GetByKey("COURSE", tup("c2")); ok {
		t.Error("missing key should not be found")
	}
	if db.Count("COURSE") != 1 {
		t.Error("Count")
	}
}

func TestInsertNotNull(t *testing.T) {
	db := openFig3(t)
	err := db.Insert("COURSE", tup(nil))
	var cv *ConstraintViolation
	if !errors.As(err, &cv) || cv.Kind != NotNullViolation {
		t.Fatalf("want NotNullViolation, got %v", err)
	}
	if cv.Relation != "COURSE" || cv.Attr != "C.NR" {
		t.Errorf("violation fields = %+v", cv)
	}
	if !errors.Is(err, ErrConstraintViolation) {
		t.Error("violation should match ErrConstraintViolation")
	}
	if !cv.Kind.Declarative() {
		t.Error("NOT NULL is a declarative-regime constraint")
	}
}

func TestInsertDuplicateKey(t *testing.T) {
	db := openFig3(t)
	db.Insert("COURSE", tup("c1"))
	db.Insert("DEPARTMENT", tup("math"))
	if err := db.Insert("OFFER", tup("c1", "math")); err != nil {
		t.Fatal(err)
	}
	db.Insert("DEPARTMENT", tup("cs"))
	err := db.Insert("OFFER", tup("c1", "cs"))
	var cv *ConstraintViolation
	if !errors.As(err, &cv) || cv.Kind != PrimaryKeyViolation {
		t.Fatalf("want PrimaryKeyViolation, got %v", err)
	}
	if cv.Relation != "OFFER" {
		t.Errorf("violation fields = %+v", cv)
	}
}

func TestInsertForeignKey(t *testing.T) {
	db := openFig3(t)
	err := db.Insert("OFFER", tup("c1", "math"))
	if err == nil {
		t.Fatal("dangling foreign key should be rejected")
	}
	db.Insert("COURSE", tup("c1"))
	db.Insert("DEPARTMENT", tup("math"))
	if err := db.Insert("OFFER", tup("c1", "math")); err != nil {
		t.Fatal(err)
	}
	before := db.Stats.TriggerFirings()
	if before != 0 {
		t.Errorf("figure 3 is fully declarative; no triggers should fire, got %d", before)
	}
}

func TestDeleteRestrict(t *testing.T) {
	db := openFig3(t)
	db.Insert("COURSE", tup("c1"))
	db.Insert("DEPARTMENT", tup("math"))
	db.Insert("OFFER", tup("c1", "math"))
	err := db.Delete("COURSE", tup("c1"))
	var cv *ConstraintViolation
	if !errors.As(err, &cv) || cv.Kind != RestrictViolation {
		t.Fatalf("want RestrictViolation, got %v", err)
	}
	if cv.Op != "delete" || cv.Kind.Declarative() {
		t.Errorf("restrict violation should be a trigger-regime delete, got %+v", cv)
	}
	if err := db.Delete("OFFER", tup("c1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("COURSE", tup("c1")); err != nil {
		t.Fatalf("after removing the referencing tuple the delete should pass: %v", err)
	}
	if err := db.Delete("COURSE", tup("c1")); err == nil {
		t.Error("deleting a missing tuple should fail")
	}
}

func TestUpdate(t *testing.T) {
	db := openFig3(t)
	db.Insert("COURSE", tup("c1"))
	db.Insert("DEPARTMENT", tup("math"))
	db.Insert("DEPARTMENT", tup("cs"))
	db.Insert("OFFER", tup("c1", "math"))
	if err := db.Update("OFFER", tup("c1"), tup("c1", "cs")); err != nil {
		t.Fatal(err)
	}
	got, _ := db.GetByKey("OFFER", tup("c1"))
	if !got.Identical(tup("c1", "cs")) {
		t.Errorf("update not applied: %v", got)
	}
	// Updating to a dangling FK rolls back.
	if err := db.Update("OFFER", tup("c1"), tup("c1", "physics")); err == nil {
		t.Fatal("dangling FK update should fail")
	}
	got, _ = db.GetByKey("OFFER", tup("c1"))
	if !got.Identical(tup("c1", "cs")) {
		t.Errorf("failed update must roll back, got %v", got)
	}
	// Updating a referenced key is restricted.
	db.Insert("PERSON", tup("p1"))
	db.Insert("FACULTY", tup("p1"))
	if err := db.Update("PERSON", tup("p1"), tup("p9")); err == nil {
		t.Error("updating a referenced key should be restricted")
	}
}

func TestProceduralNullConstraints(t *testing.T) {
	// The figure 6 schema: COURSE'' carries null-existence constraints that
	// must be enforced procedurally.
	m, err := core.Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	if err != nil {
		t.Fatal(err)
	}
	m.RemoveAll()
	db := MustOpen(m.Schema)
	db.Insert("DEPARTMENT", tup("math"))
	db.Insert("PERSON", tup("p1"))
	db.Insert("FACULTY", tup("p1"))

	// A course with a TEACH part but no OFFER part violates
	// T.F.SSN ⊑ O.D.NAME.
	err = db.Insert("COURSE''", tup("c1", nil, "p1", nil))
	var cv *ConstraintViolation
	if !errors.As(err, &cv) || cv.Kind != NullConstraintViolation {
		t.Fatalf("want NullConstraintViolation, got %v", err)
	}
	if cv.Constraint == "" || cv.Kind.Declarative() {
		t.Errorf("null constraint should carry its rendering and be trigger-regime, got %+v", cv)
	}
	if db.Stats.TriggerFirings() == 0 {
		t.Error("procedural constraint should count as a trigger firing")
	}
	// With the OFFER part present it passes.
	if err := db.Insert("COURSE''", tup("c1", "math", "p1", nil)); err != nil {
		t.Fatal(err)
	}
}

func TestNonKeyBasedINDTrigger(t *testing.T) {
	// Figure 4's schema: ASSIST[A.C.NR] ⊆ COURSE'[O.C.NR] is non-key-based.
	m, err := core.Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	if err != nil {
		t.Fatal(err)
	}
	db := MustOpen(m.Schema)
	db.Insert("DEPARTMENT", tup("math"))
	db.Insert("PERSON", tup("p2"))
	db.Insert("STUDENT", tup("p2"))
	// COURSE' rows: c1 with an OFFER part, c2 without.
	if err := db.Insert("COURSE'", tup("c1", "c1", "math", nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("COURSE'", tup("c2", nil, nil, nil, nil)); err != nil {
		t.Fatal(err)
	}

	fires := db.Stats.TriggerFirings()
	// ASSIST referencing c1 (an offered course) passes.
	if err := db.Insert("ASSIST", tup("c1", "p2")); err != nil {
		t.Fatal(err)
	}
	if db.Stats.TriggerFirings() <= fires {
		t.Error("non-key-based dependency must fire a trigger")
	}
	// ASSIST referencing c2 (not offered: O.C.NR is null) fails.
	if err := db.Insert("ASSIST", tup("c2", "p2")); err == nil {
		t.Error("referencing a null O.C.NR should fail the inclusion dependency")
	}
	// ASSIST referencing an unknown course fails.
	if err := db.Insert("ASSIST", tup("c9", "p2")); err == nil {
		t.Error("dangling non-key-based reference should fail")
	}
}

func TestLoadAndSnapshot(t *testing.T) {
	s := figures.Fig3()
	rng := rand.New(rand.NewSource(31))
	st := state.MustGenerate(s, rng, state.GenOptions{Rows: 10})
	db := MustOpen(s)
	if err := db.Load(st); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	if !snap.Equal(st) {
		t.Error("snapshot should equal the loaded state")
	}
	if err := state.Consistent(s, snap); err != nil {
		t.Error(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	db := openFig3(t)
	db.Insert("COURSE", tup("c1"))
	st := db.Stats.Snapshot()
	if st.Inserts != 1 || st.DeclarativeChecks == 0 || st.IndexLookups == 0 {
		t.Errorf("stats = %+v", st)
	}
	db.Stats.Reset()
	if db.Stats.Inserts() != 0 {
		t.Error("Reset")
	}
}

func TestErrors(t *testing.T) {
	db := openFig3(t)
	if err := db.Insert("NOPE", tup("x")); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("unknown relation insert: %v", err)
	}
	if err := db.Insert("COURSE", tup("a", "b")); !errors.Is(err, ErrArityMismatch) {
		t.Errorf("arity mismatch: %v", err)
	}
	if err := db.Delete("NOPE", tup("x")); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("unknown relation delete: %v", err)
	}
	if err := db.Update("NOPE", tup("x"), tup("y")); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("unknown relation update: %v", err)
	}
	if err := db.Update("COURSE", tup("missing"), tup("x")); !errors.Is(err, ErrNoSuchTuple) {
		t.Errorf("updating a missing tuple: %v", err)
	}
	if db.Relation("NOPE") != nil || db.Count("NOPE") != 0 {
		t.Error("unknown relation accessors")
	}
	if err := db.Scan("NOPE", nil, func(relation.Tuple) {}); err == nil {
		t.Error("unknown relation scan")
	}
}

func TestScan(t *testing.T) {
	db := openFig3(t)
	db.Insert("COURSE", tup("c1"))
	db.Insert("COURSE", tup("c2"))
	var seen int
	db.Scan("COURSE", func(tp relation.Tuple) bool {
		return tp[0].AsString() == "c2"
	}, func(relation.Tuple) { seen++ })
	if seen != 1 {
		t.Errorf("Scan matched %d", seen)
	}
	if db.Stats.TuplesScanned() != 2 {
		t.Errorf("TuplesScanned = %d", db.Stats.TuplesScanned())
	}
}

func TestContextCancellation(t *testing.T) {
	db := openFig3(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := db.InsertCtx(ctx, "COURSE", tup("c1")); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled insert: %v", err)
	}
	if db.Count("COURSE") != 0 {
		t.Error("cancelled insert must not mutate state")
	}
	db.Insert("COURSE", tup("c1"))
	if err := db.DeleteCtx(ctx, "COURSE", tup("c1")); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled delete: %v", err)
	}
	if err := db.UpdateCtx(ctx, "COURSE", tup("c1"), tup("c2")); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled update: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	st := state.MustGenerate(figures.Fig3(), rng, state.GenOptions{Rows: 5})
	fresh := MustOpen(figures.Fig3())
	if err := fresh.LoadCtx(ctx, st); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled load: %v", err)
	}
}

// TestRegistryReconciliation checks the tentpole invariant: over a window with
// no Stats.Reset(), every registry series equals its legacy Stats field.
func TestRegistryReconciliation(t *testing.T) {
	reg := obs.NewRegistry()
	db, err := Open(figures.Fig3(), WithRegistry(reg), WithName("base"))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	st := state.MustGenerate(figures.Fig3(), rng, state.GenOptions{Rows: 20})
	if err := db.Load(st); err != nil {
		t.Fatal(err)
	}
	db.Insert("COURSE", tup(nil)) // one violation
	db.GetByKey("COURSE", tup("c1"))

	want := map[string]int{
		"engine.inserts":            db.Stats.Inserts(),
		"engine.deletes":            db.Stats.Deletes(),
		"engine.updates":            db.Stats.Updates(),
		"engine.lookups":            db.Stats.Lookups(),
		"engine.declarative_checks": db.Stats.DeclarativeChecks(),
		"engine.trigger_firings":    db.Stats.TriggerFirings(),
		"engine.index_lookups":      db.Stats.IndexLookups(),
		"engine.tuples_scanned":     db.Stats.TuplesScanned(),
	}
	got := map[string]int{}
	for _, p := range reg.Snapshot() {
		if p.Kind == obs.KindCounter {
			got[p.Name] = int(p.Value)
		}
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s: registry %d != Stats %d", name, got[name], w)
		}
	}
	if got["engine.constraint_violations"] != 1 {
		t.Errorf("constraint_violations = %d", got["engine.constraint_violations"])
	}
	if db.Registry() != reg || db.MetricName() != "base" {
		t.Error("WithRegistry/WithName accessors")
	}
	// Reset zeroes only the struct; registry totals stay monotonic.
	pre := got["engine.inserts"]
	db.Stats.Reset()
	if db.Stats.Inserts() != 0 {
		t.Error("Reset")
	}
	for _, p := range reg.Snapshot() {
		if p.Name == "engine.inserts" && int(p.Value) != pre {
			t.Error("Reset must not rewind the registry")
		}
	}

	// Operations after a mid-run Reset keep Totals() — not the windowed
	// accessors — in lockstep with the registry: the invariant the relmerge
	// -metrics reconciliation relies on.
	if err := db.Insert("COURSE", tup("c-post-reset")); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats.Inserts(); got != 1 {
		t.Errorf("windowed inserts after reset = %d, want 1", got)
	}
	if got, want := db.Stats.Totals().Inserts, pre+1; got != want {
		t.Errorf("total inserts after reset = %d, want %d", got, want)
	}
	for _, p := range reg.Snapshot() {
		if p.Name == "engine.inserts" && int(p.Value) != db.Stats.Totals().Inserts {
			t.Errorf("registry %v != Totals %d after mid-run reset", p.Value, db.Stats.Totals().Inserts)
		}
	}
}
