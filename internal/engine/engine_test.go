package engine

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/relation"
	"repro/internal/state"
)

func str(s string) relation.Value { return relation.NewString(s) }

func tup(vals ...any) relation.Tuple {
	out := make(relation.Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case nil:
			out[i] = relation.Null()
		case string:
			out[i] = relation.NewString(x)
		default:
			panic("bad test value")
		}
	}
	return out
}

func openFig3(t *testing.T) *DB {
	t.Helper()
	db, err := Open(figures.Fig3())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestInsertAndLookup(t *testing.T) {
	db := openFig3(t)
	if err := db.Insert("COURSE", tup("c1")); err != nil {
		t.Fatal(err)
	}
	got, ok := db.GetByKey("COURSE", tup("c1"))
	if !ok || !got.Identical(tup("c1")) {
		t.Error("GetByKey after insert")
	}
	if _, ok := db.GetByKey("COURSE", tup("c2")); ok {
		t.Error("missing key should not be found")
	}
	if db.Count("COURSE") != 1 {
		t.Error("Count")
	}
}

func TestInsertNotNull(t *testing.T) {
	db := openFig3(t)
	err := db.Insert("COURSE", tup(nil))
	if err == nil || !strings.Contains(err.Error(), "NOT NULL") {
		t.Errorf("want NOT NULL violation, got %v", err)
	}
}

func TestInsertDuplicateKey(t *testing.T) {
	db := openFig3(t)
	db.Insert("COURSE", tup("c1"))
	db.Insert("DEPARTMENT", tup("math"))
	if err := db.Insert("OFFER", tup("c1", "math")); err != nil {
		t.Fatal(err)
	}
	db.Insert("DEPARTMENT", tup("cs"))
	err := db.Insert("OFFER", tup("c1", "cs"))
	if err == nil || !strings.Contains(err.Error(), "duplicate primary key") {
		t.Errorf("want duplicate key violation, got %v", err)
	}
}

func TestInsertForeignKey(t *testing.T) {
	db := openFig3(t)
	err := db.Insert("OFFER", tup("c1", "math"))
	if err == nil {
		t.Fatal("dangling foreign key should be rejected")
	}
	db.Insert("COURSE", tup("c1"))
	db.Insert("DEPARTMENT", tup("math"))
	if err := db.Insert("OFFER", tup("c1", "math")); err != nil {
		t.Fatal(err)
	}
	before := db.Stats.TriggerFirings
	if before != 0 {
		t.Errorf("figure 3 is fully declarative; no triggers should fire, got %d", before)
	}
}

func TestDeleteRestrict(t *testing.T) {
	db := openFig3(t)
	db.Insert("COURSE", tup("c1"))
	db.Insert("DEPARTMENT", tup("math"))
	db.Insert("OFFER", tup("c1", "math"))
	err := db.Delete("COURSE", tup("c1"))
	if err == nil || !strings.Contains(err.Error(), "restricted") {
		t.Errorf("want restricted delete, got %v", err)
	}
	if err := db.Delete("OFFER", tup("c1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("COURSE", tup("c1")); err != nil {
		t.Fatalf("after removing the referencing tuple the delete should pass: %v", err)
	}
	if err := db.Delete("COURSE", tup("c1")); err == nil {
		t.Error("deleting a missing tuple should fail")
	}
}

func TestUpdate(t *testing.T) {
	db := openFig3(t)
	db.Insert("COURSE", tup("c1"))
	db.Insert("DEPARTMENT", tup("math"))
	db.Insert("DEPARTMENT", tup("cs"))
	db.Insert("OFFER", tup("c1", "math"))
	if err := db.Update("OFFER", tup("c1"), tup("c1", "cs")); err != nil {
		t.Fatal(err)
	}
	got, _ := db.GetByKey("OFFER", tup("c1"))
	if !got.Identical(tup("c1", "cs")) {
		t.Errorf("update not applied: %v", got)
	}
	// Updating to a dangling FK rolls back.
	if err := db.Update("OFFER", tup("c1"), tup("c1", "physics")); err == nil {
		t.Fatal("dangling FK update should fail")
	}
	got, _ = db.GetByKey("OFFER", tup("c1"))
	if !got.Identical(tup("c1", "cs")) {
		t.Errorf("failed update must roll back, got %v", got)
	}
	// Updating a referenced key is restricted.
	db.Insert("PERSON", tup("p1"))
	db.Insert("FACULTY", tup("p1"))
	if err := db.Update("PERSON", tup("p1"), tup("p9")); err == nil {
		t.Error("updating a referenced key should be restricted")
	}
}

func TestProceduralNullConstraints(t *testing.T) {
	// The figure 6 schema: COURSE'' carries null-existence constraints that
	// must be enforced procedurally.
	m, err := core.Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	if err != nil {
		t.Fatal(err)
	}
	m.RemoveAll()
	db := MustOpen(m.Schema)
	db.Insert("DEPARTMENT", tup("math"))
	db.Insert("PERSON", tup("p1"))
	db.Insert("FACULTY", tup("p1"))

	// A course with a TEACH part but no OFFER part violates
	// T.F.SSN ⊑ O.D.NAME.
	err = db.Insert("COURSE''", tup("c1", nil, "p1", nil))
	if err == nil || !strings.Contains(err.Error(), "⊑") {
		t.Fatalf("want null-existence violation, got %v", err)
	}
	if db.Stats.TriggerFirings == 0 {
		t.Error("procedural constraint should count as a trigger firing")
	}
	// With the OFFER part present it passes.
	if err := db.Insert("COURSE''", tup("c1", "math", "p1", nil)); err != nil {
		t.Fatal(err)
	}
}

func TestNonKeyBasedINDTrigger(t *testing.T) {
	// Figure 4's schema: ASSIST[A.C.NR] ⊆ COURSE'[O.C.NR] is non-key-based.
	m, err := core.Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	if err != nil {
		t.Fatal(err)
	}
	db := MustOpen(m.Schema)
	db.Insert("DEPARTMENT", tup("math"))
	db.Insert("PERSON", tup("p2"))
	db.Insert("STUDENT", tup("p2"))
	// COURSE' rows: c1 with an OFFER part, c2 without.
	if err := db.Insert("COURSE'", tup("c1", "c1", "math", nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("COURSE'", tup("c2", nil, nil, nil, nil)); err != nil {
		t.Fatal(err)
	}

	fires := db.Stats.TriggerFirings
	// ASSIST referencing c1 (an offered course) passes.
	if err := db.Insert("ASSIST", tup("c1", "p2")); err != nil {
		t.Fatal(err)
	}
	if db.Stats.TriggerFirings <= fires {
		t.Error("non-key-based dependency must fire a trigger")
	}
	// ASSIST referencing c2 (not offered: O.C.NR is null) fails.
	if err := db.Insert("ASSIST", tup("c2", "p2")); err == nil {
		t.Error("referencing a null O.C.NR should fail the inclusion dependency")
	}
	// ASSIST referencing an unknown course fails.
	if err := db.Insert("ASSIST", tup("c9", "p2")); err == nil {
		t.Error("dangling non-key-based reference should fail")
	}
}

func TestLoadAndSnapshot(t *testing.T) {
	s := figures.Fig3()
	rng := rand.New(rand.NewSource(31))
	st := state.MustGenerate(s, rng, state.GenOptions{Rows: 10})
	db := MustOpen(s)
	if err := db.Load(st); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	if !snap.Equal(st) {
		t.Error("snapshot should equal the loaded state")
	}
	if err := state.Consistent(s, snap); err != nil {
		t.Error(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	db := openFig3(t)
	db.Insert("COURSE", tup("c1"))
	st := db.Stats
	if st.Inserts != 1 || st.DeclarativeChecks == 0 || st.IndexLookups == 0 {
		t.Errorf("stats = %+v", st)
	}
	db.Stats.Reset()
	if db.Stats.Inserts != 0 {
		t.Error("Reset")
	}
}

func TestErrors(t *testing.T) {
	db := openFig3(t)
	if err := db.Insert("NOPE", tup("x")); err == nil {
		t.Error("unknown relation insert")
	}
	if err := db.Insert("COURSE", tup("a", "b")); err == nil {
		t.Error("arity mismatch")
	}
	if err := db.Delete("NOPE", tup("x")); err == nil {
		t.Error("unknown relation delete")
	}
	if err := db.Update("NOPE", tup("x"), tup("y")); err == nil {
		t.Error("unknown relation update")
	}
	if err := db.Update("COURSE", tup("missing"), tup("x")); err == nil {
		t.Error("updating a missing tuple")
	}
	if db.Relation("NOPE") != nil || db.Count("NOPE") != 0 {
		t.Error("unknown relation accessors")
	}
	if err := db.Scan("NOPE", nil, func(relation.Tuple) {}); err == nil {
		t.Error("unknown relation scan")
	}
}

func TestScan(t *testing.T) {
	db := openFig3(t)
	db.Insert("COURSE", tup("c1"))
	db.Insert("COURSE", tup("c2"))
	var seen int
	db.Scan("COURSE", func(tp relation.Tuple) bool {
		return tp[0].AsString() == "c2"
	}, func(relation.Tuple) { seen++ })
	if seen != 1 {
		t.Errorf("Scan matched %d", seen)
	}
	if db.Stats.TuplesScanned != 2 {
		t.Errorf("TuplesScanned = %d", db.Stats.TuplesScanned)
	}
}
