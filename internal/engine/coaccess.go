package engine

import (
	"sort"
	"sync/atomic"
)

// coEdge counts join-shaped access along one IND edge Left->Right: how often a
// fetch of Left was followed (in either order) by a fetch of Right, or resolved
// a Right tuple directly through FetchWithReferences. The online advisor reads
// these counters to find hot edges worth merging.
type coEdge struct {
	left, right string
	hits        atomic.Int64
}

// CoAccessStat is one edge's counter, exported for the advisor and metrics.
type CoAccessStat struct {
	Left, Right string
	Hits        int64
}

// buildCoEdges populates b.coEdges (keyed "Left->Right") and b.coPairs (keyed
// pairKey in both directions) from the binding's INDs. Counters start at zero:
// a migration installs a fresh binding, which naturally resets observation.
func (db *DB) buildCoEdges(b *binding) {
	b.coEdges = make(map[string]*coEdge)
	b.coPairs = make(map[string]*coEdge)
	for _, inds := range b.indsFrom {
		for _, ind := range inds {
			k := ind.Left + "->" + ind.Right
			if _, ok := b.coEdges[k]; ok {
				continue
			}
			e := &coEdge{left: ind.Left, right: ind.Right}
			b.coEdges[k] = e
			b.coPairs[pairKey(ind.Left, ind.Right)] = e
			b.coPairs[pairKey(ind.Right, ind.Left)] = e
		}
	}
}

func pairKey(a, b string) string { return a + "\x00" + b }

// noteFetch records a point read of name and, if the previous point read on
// this engine touched the other side of an IND edge, bumps that edge. The
// one-deep history is deliberately coarse: it is a traffic signal, not a trace.
func (db *DB) noteFetch(b *binding, name string) {
	prev, _ := db.lastFetch.Load().(string)
	db.lastFetch.Store(name)
	if prev == "" || prev == name {
		return
	}
	if e, ok := b.coPairs[pairKey(prev, name)]; ok {
		e.hits.Add(1)
		db.countCoAccess()
	}
}

// noteFetchHop records a direct IND traversal (FetchWithReferences resolved a
// related tuple along from->to), which is the strongest merge signal.
func (db *DB) noteFetchHop(b *binding, from, to string) {
	if e, ok := b.coEdges[from+"->"+to]; ok {
		e.hits.Add(1)
		db.countCoAccess()
	}
}

// CoAccessStats returns the per-edge co-access counters of the current design,
// sorted hottest first (ties broken by edge name for determinism).
func (db *DB) CoAccessStats() []CoAccessStat {
	bind := db.current.Load().bind
	out := make([]CoAccessStat, 0, len(bind.coEdges))
	for _, e := range bind.coEdges {
		out = append(out, CoAccessStat{Left: e.left, Right: e.right, Hits: e.hits.Load()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		if out[i].Left != out[j].Left {
			return out[i].Left < out[j].Left
		}
		return out[i].Right < out[j].Right
	})
	return out
}
