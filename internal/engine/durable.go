package engine

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/relation"
	"repro/internal/sdl"
	"repro/internal/state"
	"repro/internal/wal"
)

// This file wires the write-ahead log (internal/wal) into the engine.
//
// Logging discipline: every successful mutating operation — single op or
// whole batch — is logged as ONE record holding all of its physical effects,
// appended and made durable in one wal.Commit while the operation still
// holds its table locks. If the log rejects the record the operation reverts
// its in-memory effects and fails, so memory and disk always agree on the
// committed prefix. Transaction Begin/Commit/Rollback are logged as marker
// records under txnMu, the same mutex that orders the transaction's effect
// records, so replay sees markers and effects in a consistent order.
//
// Recovery (on Open): load the newest snapshot, replay the surviving log
// suffix — buffering records flagged in-transaction and applying them only
// when their commit marker arrives, discarding rolled-back or unterminated
// suffixes — then re-validate the reconstructed state against every
// dependency and constraint of the schema (F ∪ I ∪ N) before loading it.

// WithDurability opens the engine's write-ahead log in dir with the given
// fsync policy. If dir already holds a log, Open recovers from it first; the
// engine then starts from the recovered state (see DB.Recovered).
func WithDurability(dir string, policy wal.SyncPolicy) Option {
	return func(c *openConfig) {
		c.walDir = dir
		c.walOpts = wal.Options{Policy: policy}
	}
}

// WithWALOptions is WithDurability with full control of the log options
// (segment size, fsync interval, failpoints); the crash-recovery tests use
// it to inject faults.
func WithWALOptions(dir string, opts wal.Options) Option {
	return func(c *openConfig) {
		c.walDir = dir
		c.walOpts = opts
	}
}

// AsReplica marks the engine as a replication follower: its mutations arrive
// as primary-shipped WAL records (IngestReplicated), so a log ending inside
// an unterminated transaction is resumable — the commit marker is still in
// flight from the primary — and recovery seeds the ingest buffer from it
// instead of discarding it. A primary opened without this option discards
// such a suffix (its transaction died with the crash; no marker can arrive)
// and may checkpoint right past it.
func AsReplica() Option {
	return func(c *openConfig) { c.replica = true }
}

// RecoveryInfo describes what Open reconstructed from the write-ahead log.
type RecoveryInfo struct {
	// Recovered reports whether the log held anything to restore.
	Recovered bool
	// SnapshotLoaded reports whether a checkpoint snapshot was restored.
	SnapshotLoaded bool
	// ReplayedOps counts logged mutations applied during replay.
	ReplayedOps int
	// DiscardedOps counts mutations dropped because their transaction never
	// committed (rolled back, or cut off by the crash).
	DiscardedOps int
	// SkippedRecords counts duplicate or snapshot-covered records the log
	// layer dropped.
	SkippedRecords int
	// TruncatedBytes counts torn or corrupt trailing bytes discarded.
	TruncatedBytes int64
	// SchemaChanges counts schema-change records replayed: each one rebound
	// the engine onto a migrated design mid-replay.
	SchemaChanges int
}

// Recovered returns what Open reconstructed from the write-ahead log (the
// zero value for a non-durable engine or an empty log directory).
func (db *DB) Recovered() RecoveryInfo { return db.recovery }

// Durable reports whether the engine was opened with a write-ahead log.
func (db *DB) Durable() bool { return db.wal != nil }

// Checkpoint serializes the full current state, makes it the log's recovery
// baseline, and truncates the superseded log (wal.Log.Checkpoint). It takes
// every table's read lock to quiesce writers — the WAL's covered LSN must
// match the serialized state — but concurrent lock-free readers proceed
// unimpeded on their pinned versions throughout (the P8 benchmark suite
// measures exactly this: fetch p99 stays bounded during checkpoints).
// Checkpointing inside an open transaction is refused with
// ErrOpenTransaction.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return ErrNotDurable
	}
	// schemaMu first (the global order is schemaMu → replMu → table locks →
	// txnMu): the snapshot must serialize one design — never a schema mid-swap.
	db.schemaMu.RLock()
	defer db.schemaMu.RUnlock()
	// replMu next (the replication paths order replMu before table locks):
	// holding it for the whole checkpoint closes the window inside
	// IngestReplicated between the durable append (which advances the WAL
	// LSN) and the state apply — a snapshot stamped in that window would
	// cover records whose effects it does not contain.
	db.replMu.Lock()
	defer db.replMu.Unlock()
	ls := db.lm.allRead()
	db.acquire(ls)
	defer ls.release()
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	if db.inTxn.Load() {
		return fmt.Errorf("%w: cannot checkpoint until it commits or rolls back", ErrOpenTransaction)
	}
	if len(db.replPending) > 0 {
		// A shipped transaction is buffered: the WAL LSN is already past its
		// op records but their effects are not in the state. A snapshot
		// stamped here would truncate those records; after a restart the
		// commit marker would apply an empty buffer and the transaction
		// would silently vanish from the replica.
		return fmt.Errorf("%w: a replicated transaction (%d buffered ops) awaits its commit marker; cannot checkpoint until it arrives", ErrOpenTransaction, len(db.replPending))
	}
	// Writers are quiesced, so the current published version IS the
	// committed state the log's LSN refers to. The snapshot is framed with
	// the schema that produced it: after a live migration the design on disk
	// must be self-describing, not assumed equal to the Open-time schema.
	st := stateOf(db.current.Load())
	payload := encodeSnapshot(sdl.PrintSchema(db.Schema), sdl.PrintState(db.Schema, st))
	if err := db.wal.Checkpoint(payload); err != nil {
		return fmt.Errorf("engine: checkpoint: %w", err)
	}
	return nil
}

// Close flushes and closes the write-ahead log (a no-op for non-durable
// engines). The engine must not be used afterwards.
func (db *DB) Close() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.Close()
}

// openDurable opens the log, replays whatever it holds into the engine, and
// only then attaches the log so recovery itself is not re-logged.
func (db *DB) openDurable(dir string, opts wal.Options) error {
	if opts.Registry == nil {
		opts.Registry = db.reg
	}
	if opts.Name == "" {
		opts.Name = db.obsName
	}
	l, rec, err := wal.Open(dir, opts)
	if err != nil {
		return fmt.Errorf("engine: opening wal: %w", err)
	}
	if err := db.recover(rec); err != nil {
		l.Close()
		return err
	}
	db.wal = l
	return nil
}

// recover reconstructs the committed pre-crash state from a wal recovery and
// loads it into the (empty) engine.
func (db *DB) recover(rec *Recovery) error {
	db.recovery = RecoveryInfo{
		SkippedRecords: rec.SkippedRecords,
		TruncatedBytes: rec.TruncatedBytes,
	}
	st := state.New(db.Schema)
	if rec.Snapshot != nil {
		schemaSDL, stateSDL, framed, err := decodeSnapshot(rec.Snapshot)
		if err != nil {
			return fmt.Errorf("%w: parsing snapshot: %v", ErrRecovery, err)
		}
		// A framed snapshot is self-describing: if it was taken after a live
		// migration its schema differs from the Open-time one, and the engine
		// rebinds onto the serialized design before parsing the state. Legacy
		// (unframed) snapshots parse against the Open-time schema as before.
		if framed && schemaSDL != sdl.PrintSchema(db.Schema) {
			if err := db.rebind(schemaSDL); err != nil {
				return fmt.Errorf("%w: rebinding onto snapshot schema: %v", ErrRecovery, err)
			}
		}
		parsed, err := sdl.ParseState(db.Schema, stateSDL)
		if err != nil {
			return fmt.Errorf("%w: parsing snapshot: %v", ErrRecovery, err)
		}
		st = parsed
		db.recovery.SnapshotLoaded = true
	}
	apply := func(ops []walOp) error {
		for _, op := range ops {
			if err := st.Apply(op.rel, op.insert, op.tup); err != nil {
				return fmt.Errorf("%w: replaying record: %v", ErrRecovery, err)
			}
		}
		db.recovery.ReplayedOps += len(ops)
		return nil
	}
	// Replay: non-transactional records apply immediately; transactional
	// ones are buffered until their commit marker. A rollback marker — or
	// the end of the log — discards the buffered suffix, which is exactly
	// the all-or-nothing transaction semantics the live engine enforces.
	var pending []walOp
	for _, r := range rec.Records {
		kind, ops, inTxn, err := decodeWalRecord(r.Payload)
		if err != nil {
			return err
		}
		switch kind {
		case walRecBegin:
			pending = pending[:0]
		case walRecCommit:
			if err := apply(pending); err != nil {
				return err
			}
			pending = nil
		case walRecRollback:
			db.recovery.DiscardedOps += len(pending)
			pending = nil
		case walRecOp:
			if inTxn {
				pending = append(pending, ops...)
			} else if err := apply(ops); err != nil {
				return err
			}
		case walRecSchema:
			// A live migration committed here: everything before this record
			// is pre-merge, everything after is post-merge. The record is
			// self-contained — new schema plus the fully mapped state — so
			// replay lands exactly on the post-merge design with no η
			// re-derivation. Migrations are refused inside transactions, so a
			// non-empty buffer here means a corrupt log.
			if len(pending) > 0 {
				return fmt.Errorf("%w: schema-change record inside an open transaction at LSN %d", ErrRecovery, r.LSN)
			}
			schemaSDL, stateSDL, err := decodeSchemaRecord(r.Payload)
			if err != nil {
				return err
			}
			if err := db.rebind(schemaSDL); err != nil {
				return fmt.Errorf("%w: rebinding onto migrated schema: %v", ErrRecovery, err)
			}
			migrated, err := sdl.ParseState(db.Schema, stateSDL)
			if err != nil {
				return fmt.Errorf("%w: parsing migrated state: %v", ErrRecovery, err)
			}
			st = migrated
			db.recovery.SchemaChanges++
		default:
			return fmt.Errorf("%w: unknown record kind %d at LSN %d", ErrRecovery, kind, r.LSN)
		}
	}
	db.recovery.DiscardedOps += len(pending)
	// The unterminated suffix is discarded from the recovered state (the
	// transaction never committed). On a replica it is additionally retained
	// for the replication applier: the commit marker is still in flight from
	// the primary and these ops are already durable in the local log, so the
	// applier resumes the buffer instead of losing them (replica.go) — and
	// Checkpoint refuses until the marker arrives. On a primary the suffix is
	// dead (its transaction died with the crash; no marker can ever arrive),
	// so seeding the buffer would block checkpoints forever.
	if db.replica {
		db.replPending = append([]walOp(nil), pending...)
	}
	db.recovery.Recovered = rec.Snapshot != nil || len(rec.Records) > 0
	if !db.recovery.Recovered {
		return nil
	}
	// A byte-accurate replay is not enough: the recovered state must still
	// satisfy F ∪ I ∪ N (cf. the fragility of FDs and INDs over states with
	// nulls under partial writes — arXiv:2108.02581, arXiv:1703.08198).
	// A partition engine holds one hash-slice of every relation, so its
	// local state cannot be expected to satisfy the cross-relation inclusion
	// dependencies on its own; those are re-checked router-wide once every
	// shard has recovered (shard.Open), and the local re-validation covers
	// everything else (FDs, keys, null constraints).
	valSchema := db.Schema
	if db.partition {
		sc := *db.Schema
		sc.INDs = nil
		valSchema = &sc
	}
	if err := state.Consistent(valSchema, st); err != nil {
		return fmt.Errorf("%w: recovered state fails constraint re-validation: %v", ErrRecovery, err)
	}
	if err := db.Load(st); err != nil {
		return fmt.Errorf("%w: reloading recovered state: %v", ErrRecovery, err)
	}
	return nil
}

// Recovery is re-exported so engine tests and callers can speak about wal
// recoveries without importing internal/wal directly.
type Recovery = wal.Recovery

// Record kinds of the engine's log encoding. An op record carries every
// physical effect of one operation (or one whole batch); the marker kinds
// delimit transactions.
const (
	walRecOp       byte = 1
	walRecBegin    byte = 2
	walRecCommit   byte = 3
	walRecRollback byte = 4
	// walRecSchema is one live schema migration: the new schema and the
	// fully η-mapped state, self-contained so recovery lands atomically on
	// either side of it — never a mix of designs.
	walRecSchema byte = 5
)

// rebind parses a schema and swaps the engine's schema-derived structures
// onto it: a fresh binding is installed and the published version chain is
// reset to an empty version-zero of the new design (recovery reloads state
// afterwards). Only the recovery and replication ingest paths call it — the
// live-migration path (MigrateSchema) builds its binding and its mapped
// versions together.
func (db *DB) rebind(schemaSDL string) error {
	ns, err := sdl.ParseSchema(schemaSDL)
	if err != nil {
		return fmt.Errorf("parsing schema: %w", err)
	}
	b, err := db.newBinding(ns)
	if err != nil {
		return fmt.Errorf("binding schema: %w", err)
	}
	db.install(b)
	db.current.Store(&dbSnapshot{tables: emptyVersions(b), bind: b})
	return nil
}

// snapMagic frames checkpoint snapshots that embed their own schema.
// Payloads without the magic are legacy: raw state SDL against the Open-time
// schema.
const snapMagic = "RMSNAP2\n"

// encodeSnapshot frames a checkpoint payload: magic, length-prefixed schema
// SDL, then state SDL to the end.
func encodeSnapshot(schemaSDL, stateSDL string) []byte {
	buf := make([]byte, 0, len(snapMagic)+10+len(schemaSDL)+len(stateSDL))
	buf = append(buf, snapMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(schemaSDL)))
	buf = append(buf, schemaSDL...)
	buf = append(buf, stateSDL...)
	return buf
}

// decodeSnapshot splits a checkpoint payload into schema and state SDL.
// Unframed (legacy) payloads return framed=false with the whole payload as
// state SDL.
func decodeSnapshot(b []byte) (schemaSDL, stateSDL string, framed bool, err error) {
	if len(b) < len(snapMagic) || string(b[:len(snapMagic)]) != snapMagic {
		return "", string(b), false, nil
	}
	d := &walDecoder{b: b[len(snapMagic):]}
	schemaSDL = d.str()
	if d.err != nil {
		return "", "", false, fmt.Errorf("corrupt snapshot frame: %w", d.err)
	}
	return schemaSDL, string(d.b), true, nil
}

// encodeSchemaRecord renders one schema-change record:
//
//	[kind=5][uvarint len][schema SDL][uvarint len][state SDL]
func encodeSchemaRecord(schemaSDL, stateSDL string) []byte {
	buf := make([]byte, 0, 1+20+len(schemaSDL)+len(stateSDL))
	buf = append(buf, walRecSchema)
	buf = binary.AppendUvarint(buf, uint64(len(schemaSDL)))
	buf = append(buf, schemaSDL...)
	buf = binary.AppendUvarint(buf, uint64(len(stateSDL)))
	buf = append(buf, stateSDL...)
	return buf
}

// decodeSchemaRecord parses a walRecSchema payload (including its kind byte).
func decodeSchemaRecord(b []byte) (schemaSDL, stateSDL string, err error) {
	if len(b) == 0 || b[0] != walRecSchema {
		return "", "", fmt.Errorf("%w: not a schema-change record", ErrRecovery)
	}
	d := &walDecoder{b: b[1:]}
	schemaSDL = d.str()
	stateSDL = d.str()
	if d.err != nil {
		return "", "", fmt.Errorf("%w: corrupt schema-change record: %v", ErrRecovery, d.err)
	}
	return schemaSDL, stateSDL, nil
}

// walOp is one decoded physical mutation.
type walOp struct {
	rel    string
	insert bool
	tup    relation.Tuple
}

// logOp logs one operation's effects as a single record (group commit: the
// whole batch costs one write and at most one fsync) and returns the
// record's LSN — the version stamp the publish carries. Non-durable engines
// draw the stamp from a logical sequence counter instead. Called with the
// operation's table locks held; a failure means the record is not on disk
// (the log truncates its own torn tail) and the caller must not publish.
func (db *DB) logOp(eff effects, inTxn bool) (uint64, error) {
	if db.wal == nil || len(eff) == 0 {
		return db.seq.Add(1), nil
	}
	lsn, err := db.wal.Commit(encodeOpRecord(eff, inTxn))
	if err != nil {
		return 0, fmt.Errorf("engine: logging operation: %w", err)
	}
	return lsn, nil
}

// logMarker logs a transaction marker record, returning its LSN (zero for a
// non-durable engine: markers publish no version, so they draw no stamp).
func (db *DB) logMarker(kind byte) (uint64, error) {
	if db.wal == nil {
		return 0, nil
	}
	lsn, err := db.wal.Commit([]byte{kind})
	if err != nil {
		return 0, fmt.Errorf("engine: logging transaction marker: %w", err)
	}
	return lsn, nil
}

// encodeOpRecord renders one operation's effects:
//
//	[kind=1][inTxn byte][uvarint n] then n × ([dir byte][uvarint len][rel]
//	[uvarint arity] arity × value)
//
// Values encode as a kind byte plus payload (varint int, 8-byte float bits,
// length-prefixed string, bool byte; null has no payload).
func encodeOpRecord(eff effects, inTxn bool) []byte {
	buf := make([]byte, 0, 64*len(eff))
	buf = append(buf, walRecOp, boolByte(inTxn))
	buf = binary.AppendUvarint(buf, uint64(len(eff)))
	for _, op := range eff {
		buf = append(buf, boolByte(op.insert))
		name := op.table.rs.Name
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		buf = binary.AppendUvarint(buf, uint64(len(op.tuple)))
		for _, v := range op.tuple {
			buf = appendValue(buf, v)
		}
	}
	return buf
}

// decodeWalRecord parses any record kind; ops and inTxn are only meaningful
// for kind walRecOp.
func decodeWalRecord(b []byte) (kind byte, ops []walOp, inTxn bool, err error) {
	if len(b) == 0 {
		return 0, nil, false, fmt.Errorf("%w: empty log record", ErrRecovery)
	}
	kind = b[0]
	if kind != walRecOp {
		return kind, nil, false, nil
	}
	d := &walDecoder{b: b[1:]}
	inTxn = d.byte() != 0
	n := d.uvarint()
	for i := uint64(0); i < n && d.err == nil; i++ {
		var op walOp
		op.insert = d.byte() != 0
		op.rel = d.str()
		arity := d.uvarint()
		op.tup = make(relation.Tuple, 0, arity)
		for j := uint64(0); j < arity && d.err == nil; j++ {
			op.tup = append(op.tup, d.value())
		}
		ops = append(ops, op)
	}
	if d.err != nil {
		return 0, nil, false, fmt.Errorf("%w: corrupt op record: %v", ErrRecovery, d.err)
	}
	return kind, ops, inTxn, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func appendValue(buf []byte, v relation.Value) []byte {
	buf = append(buf, byte(v.Kind()))
	switch v.Kind() {
	case relation.KindNull:
	case relation.KindString:
		s := v.AsString()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	case relation.KindInt:
		buf = binary.AppendVarint(buf, v.AsInt())
	case relation.KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.AsFloat()))
	case relation.KindBool:
		buf = append(buf, boolByte(v.AsBool()))
	}
	return buf
}

// walDecoder is a cursor over an op record body with sticky error handling.
type walDecoder struct {
	b   []byte
	err error
}

func (d *walDecoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%s", msg)
	}
}

func (d *walDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *walDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *walDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *walDecoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.fail("truncated string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *walDecoder) value() relation.Value {
	switch relation.Kind(d.byte()) {
	case relation.KindNull:
		return relation.Null()
	case relation.KindString:
		return relation.NewString(d.str())
	case relation.KindInt:
		return relation.NewInt(d.varint())
	case relation.KindFloat:
		if d.err == nil && len(d.b) < 8 {
			d.fail("truncated float")
		}
		if d.err != nil {
			return relation.Null()
		}
		bits := binary.LittleEndian.Uint64(d.b)
		d.b = d.b[8:]
		return relation.NewFloat(math.Float64frombits(bits))
	case relation.KindBool:
		return relation.NewBool(d.byte() != 0)
	default:
		d.fail("unknown value kind")
		return relation.Null()
	}
}
