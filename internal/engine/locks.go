package engine

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// This file implements the engine's lock manager. The design:
//
//   - One sync.RWMutex per table (the "stripes"): operations on distinct
//     relations never contend, and readers of one relation run in parallel.
//   - Every operation's lock set is known from the schema alone — an insert
//     into R touches R plus the referenced sides of R's outgoing inclusion
//     dependencies; a delete from R touches R plus the referencing sides of
//     the dependencies into R — so the sets are precomputed once at Open.
//   - Lock sets are sorted by table ordinal (tables sorted by name) and
//     acquired front to back. Two operations always request their common
//     tables in the same order, so multi-table operations cannot deadlock.
//   - Mode is conservative: a table is locked for writing if the operation
//     may mutate it or may build/probe one of its lazily-built secondary
//     indexes; otherwise for reading. Within one set, write wins over read.
//
// The remaining order rule is table locks BEFORE db.txnMu (see txn.go).

// lockMode is the access mode requested on one table.
type lockMode uint8

const (
	lockRead lockMode = iota + 1
	lockWrite
)

// lockReq is one table lock request.
type lockReq struct {
	t    *table
	mode lockMode
}

// lockSet is a deduplicated lock request list sorted by table ordinal.
// acquire/release are the only ways operations touch table mutexes.
type lockSet []lockReq

func (ls lockSet) acquire() {
	for _, r := range ls {
		if r.mode == lockWrite {
			r.t.mu.Lock()
		} else {
			r.t.mu.RLock()
		}
	}
}

func (ls lockSet) release() {
	for i := len(ls) - 1; i >= 0; i-- {
		r := ls[i]
		if r.mode == lockWrite {
			r.t.mu.Unlock()
		} else {
			r.t.mu.RUnlock()
		}
	}
}

// lockManager holds the precomputed lock plans, one per (operation kind,
// table). The schema is immutable after Open, so the plans are too.
type lockManager struct {
	ordered []*table // all tables in ordinal (name) order
	insert  map[string]lockSet
	remove  map[string]lockSet
	update  map[string]lockSet
	fetch   map[string]lockSet // FetchWithReferences
}

// planBuilder accumulates (table, mode) pairs with write-wins semantics.
type planBuilder map[*table]lockMode

func (b planBuilder) add(t *table, mode lockMode) {
	if have, ok := b[t]; !ok || mode > have {
		b[t] = mode
	}
}

func (b planBuilder) build() lockSet {
	ls := make(lockSet, 0, len(b))
	for t, mode := range b {
		ls = append(ls, lockReq{t: t, mode: mode})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].t.ord < ls[j].t.ord })
	return ls
}

// newLockManager assigns table ordinals and precomputes every plan.
func newLockManager(db *DB) *lockManager {
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	lm := &lockManager{
		insert: make(map[string]lockSet, len(names)),
		remove: make(map[string]lockSet, len(names)),
		update: make(map[string]lockSet, len(names)),
		fetch:  make(map[string]lockSet, len(names)),
	}
	for i, name := range names {
		t := db.tables[name]
		t.ord = i
		lm.ordered = append(lm.ordered, t)
	}
	for _, name := range names {
		t := db.tables[name]

		// Insert: write the table itself; probe referenced sides — read for
		// key-based dependencies (pk map only), write for non-key-based ones
		// (may build the referenced side's secondary index).
		ins := planBuilder{t: lockWrite}
		for _, ind := range db.indsFrom[name] {
			mode := lockRead
			if !ind.KeyBased(db.Schema) {
				mode = lockWrite
			}
			ins.add(db.tables[ind.Right], mode)
		}
		lm.insert[name] = ins.build()

		// Delete: write the table itself; referenced-side maintenance probes
		// (and may build) the secondary index of every referencing table.
		del := planBuilder{t: lockWrite}
		for _, ind := range db.indsInto[name] {
			del.add(db.tables[ind.Left], lockWrite)
		}
		lm.remove[name] = del.build()

		// Update = delete + insert without intermediate visibility.
		upd := planBuilder{}
		for _, r := range lm.insert[name] {
			upd.add(r.t, r.mode)
		}
		for _, r := range lm.remove[name] {
			upd.add(r.t, r.mode)
		}
		lm.update[name] = upd.build()

		// FetchWithReferences: read everywhere, except non-key-based targets
		// whose secondary index may need building.
		f := planBuilder{t: lockRead}
		for _, ind := range db.indsFrom[name] {
			mode := lockRead
			if !ind.KeyBased(db.Schema) {
				mode = lockWrite
			}
			f.add(db.tables[ind.Right], mode)
		}
		lm.fetch[name] = f.build()
	}
	return lm
}

// allRead returns a lock set covering every table for reading (Snapshot).
func (lm *lockManager) allRead() lockSet {
	ls := make(lockSet, len(lm.ordered))
	for i, t := range lm.ordered {
		ls[i] = lockReq{t: t, mode: lockRead}
	}
	return ls
}

// allWrite returns a lock set covering every table for writing (Rollback).
func (lm *lockManager) allWrite() lockSet {
	ls := make(lockSet, len(lm.ordered))
	for i, t := range lm.ordered {
		ls[i] = lockReq{t: t, mode: lockWrite}
	}
	return ls
}

// batchPlan returns the union lock set of a mixed batch, so the whole batch
// runs under one acquisition.
func (db *DB) batchPlan(ops []BatchOp) (lockSet, error) {
	b := planBuilder{}
	for _, op := range ops {
		var plan lockSet
		switch op.Kind {
		case BatchInsert:
			plan = db.lm.insert[op.Relation]
		case BatchDelete:
			plan = db.lm.remove[op.Relation]
		case BatchUpdate:
			plan = db.lm.update[op.Relation]
		default:
			return nil, fmt.Errorf("engine: unknown batch op kind %d", op.Kind)
		}
		if plan == nil {
			return nil, fmt.Errorf("%w %s", ErrUnknownRelation, op.Relation)
		}
		for _, r := range plan {
			b.add(r.t, r.mode)
		}
	}
	return b.build(), nil
}

// effects records the physical mutations of one operation (or one batch) so
// they can be reverted on a constraint violation — and, on success, appended
// to the open transaction's undo log in one step. Recording locally first
// keeps a failed operation from ever polluting the transaction log.
type effects []undoOp

// apply physically applies tup to t and records the mutation.
func (e *effects) apply(db *DB, t *table, tup relation.Tuple) {
	db.physicalApply(t, tup)
	*e = append(*e, undoOp{table: t, tuple: tup, insert: true})
}

// remove physically removes tup from t and records the mutation.
func (e *effects) remove(db *DB, t *table, tup relation.Tuple) {
	db.physicalRemove(t, tup)
	*e = append(*e, undoOp{table: t, tuple: tup})
}

// revert undoes every recorded mutation, most recent first. The caller must
// still hold the locks under which the mutations were made.
func (e effects) revert(db *DB) {
	for i := len(e) - 1; i >= 0; i-- {
		op := e[i]
		if op.insert {
			db.physicalRemove(op.table, op.tuple)
		} else {
			db.physicalApply(op.table, op.tuple)
		}
	}
}

// commitEffects finishes a successful operation: its mutations are logged to
// the write-ahead log (one record per operation, durable.go) and, inside a
// transaction, appended to the undo log. Called with table locks held; takes
// txnMu after them, which is the global lock order (never the reverse). A
// non-nil error means the record is not on disk — the caller must revert the
// effects and fail the operation, keeping memory and log in agreement.
func (db *DB) commitEffects(eff effects) error {
	if len(eff) == 0 {
		return nil
	}
	if !db.inTxn.Load() {
		return db.logOp(eff, false)
	}
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	// Re-read under the mutex: a racing Commit/Rollback may have closed the
	// transaction, in which case the effects are logged as autonomous.
	inTxn := db.inTxn.Load()
	if err := db.logOp(eff, inTxn); err != nil {
		return err
	}
	if inTxn {
		db.undo = append(db.undo, eff...)
	}
	return nil
}
