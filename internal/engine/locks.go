package engine

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// This file implements the engine's writer lock manager. The design:
//
//   - One sync.RWMutex per table (the "stripes"): writers on distinct
//     relations never contend. Readers take NO locks at all — they pin an
//     immutable snapshot (version.go); the lock plans exist purely to
//     serialize writers against each other.
//   - Every mutating operation's lock set is known from the schema alone —
//     an insert into R writes R and reads the referenced sides of R's
//     outgoing inclusion dependencies; a delete from R writes R and reads
//     the referencing sides of the dependencies into R — so the sets are
//     precomputed once at Open. Referenced/referencing sides are READ locks:
//     every secondary index is prebuilt at Open, so no operation ever
//     escalates to a write lock just to build one (the pre-MVCC engine did).
//   - Lock sets are sorted by table ordinal (tables sorted by name) and
//     acquired front to back. Two operations always request their common
//     tables in the same order, so multi-table operations cannot deadlock.
//   - A read lock in a WRITE plan means: this operation validates against
//     that table's current version and requires it not to advance before the
//     operation publishes (FK write-skew prevention). It is unrelated to the
//     lock-free read path.
//
// The remaining order rule is table locks BEFORE db.txnMu (see txn.go).

// lockMode is the access mode requested on one table.
type lockMode uint8

const (
	lockRead lockMode = iota + 1
	lockWrite
)

// lockReq is one table lock request.
type lockReq struct {
	t    *table
	mode lockMode
}

// lockSet is a deduplicated lock request list sorted by table ordinal.
// db.acquire / lockSet.release are the only ways operations touch table
// mutexes.
type lockSet []lockReq

// acquire takes every lock of the plan and counts the acquisition: the
// counter's delta over a read-only phase is the observable proof that the
// fetch/scan path is lock-free (DB.LockAcquisitions).
func (db *DB) acquire(ls lockSet) {
	db.lockAcq.Add(1)
	db.m.lockAcquisitions.Inc()
	for _, r := range ls {
		if r.mode == lockWrite {
			r.t.mu.Lock()
		} else {
			r.t.mu.RLock()
		}
	}
}

func (ls lockSet) release() {
	for i := len(ls) - 1; i >= 0; i-- {
		r := ls[i]
		if r.mode == lockWrite {
			r.t.mu.Unlock()
		} else {
			r.t.mu.RUnlock()
		}
	}
}

// lockManager holds the precomputed lock plans, one per (operation kind,
// table). The schema is immutable after Open, so the plans are too.
type lockManager struct {
	ordered []*table // all tables in ordinal (name) order
	insert  map[string]lockSet
	remove  map[string]lockSet
	update  map[string]lockSet
}

// planBuilder accumulates (table, mode) pairs with write-wins semantics.
type planBuilder map[*table]lockMode

func (b planBuilder) add(t *table, mode lockMode) {
	if have, ok := b[t]; !ok || mode > have {
		b[t] = mode
	}
}

func (b planBuilder) build() lockSet {
	ls := make(lockSet, 0, len(b))
	for t, mode := range b {
		ls = append(ls, lockReq{t: t, mode: mode})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].t.ord < ls[j].t.ord })
	return ls
}

// newLockManager assigns table ordinals and precomputes every plan for one
// binding (the schema-derived structures of one design — a live migration
// builds a whole new binding with its own lock manager).
func newLockManager(b *binding) *lockManager {
	names := make([]string, 0, len(b.tables))
	for name := range b.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	lm := &lockManager{
		insert: make(map[string]lockSet, len(names)),
		remove: make(map[string]lockSet, len(names)),
		update: make(map[string]lockSet, len(names)),
	}
	for i, name := range names {
		t := b.tables[name]
		t.ord = i
		lm.ordered = append(lm.ordered, t)
	}
	for _, name := range names {
		t := b.tables[name]

		// Insert: write the table itself; hold the referenced sides for
		// reading so their versions cannot advance under the FK probes
		// (key-based or not — every secondary index is prebuilt).
		ins := planBuilder{t: lockWrite}
		for _, ind := range b.indsFrom[name] {
			ins.add(b.tables[ind.Right], lockRead)
		}
		lm.insert[name] = ins.build()

		// Delete: write the table itself; hold every referencing side for
		// reading under the restrict probes.
		del := planBuilder{t: lockWrite}
		for _, ind := range b.indsInto[name] {
			del.add(b.tables[ind.Left], lockRead)
		}
		lm.remove[name] = del.build()

		// Update = delete + insert without intermediate visibility.
		upd := planBuilder{}
		for _, r := range lm.insert[name] {
			upd.add(r.t, r.mode)
		}
		for _, r := range lm.remove[name] {
			upd.add(r.t, r.mode)
		}
		lm.update[name] = upd.build()
	}
	return lm
}

// allRead returns a lock set covering every table for reading (Checkpoint
// quiesces writers with it so the WAL's covered LSN matches the serialized
// state; readers are unaffected).
func (lm *lockManager) allRead() lockSet {
	ls := make(lockSet, len(lm.ordered))
	for i, t := range lm.ordered {
		ls[i] = lockReq{t: t, mode: lockRead}
	}
	return ls
}

// allWrite returns a lock set covering every table for writing (Rollback).
func (lm *lockManager) allWrite() lockSet {
	ls := make(lockSet, len(lm.ordered))
	for i, t := range lm.ordered {
		ls[i] = lockReq{t: t, mode: lockWrite}
	}
	return ls
}

// batchPlan returns the union lock set of a mixed batch, so the whole batch
// runs under one acquisition.
func (db *DB) batchPlan(ops []BatchOp) (lockSet, error) {
	b := planBuilder{}
	for _, op := range ops {
		var plan lockSet
		switch op.Kind {
		case BatchInsert:
			plan = db.lm.insert[op.Relation]
		case BatchDelete:
			plan = db.lm.remove[op.Relation]
		case BatchUpdate:
			plan = db.lm.update[op.Relation]
		default:
			return nil, fmt.Errorf("engine: unknown batch op kind %d", op.Kind)
		}
		if plan == nil {
			return nil, fmt.Errorf("%w %s", ErrUnknownRelation, op.Relation)
		}
		for _, r := range plan {
			b.add(r.t, r.mode)
		}
	}
	return b.build(), nil
}

// effects records the staged mutations of one operation (or one batch): the
// change list that becomes the WAL record and, inside a transaction, the
// undo-log entries. The mutations live only in the writeTx until
// commitEffects publishes them, so a failed operation leaves no trace — its
// writeTx is simply dropped.
type effects []undoOp

// apply stages tup into t via tx and records the mutation.
func (e *effects) apply(tx *writeTx, t *table, tup relation.Tuple) {
	tx.apply(t, tup)
	*e = append(*e, undoOp{table: t, tuple: tup, insert: true})
}

// remove stages the removal of tup from t via tx and records the mutation.
func (e *effects) remove(tx *writeTx, t *table, tup relation.Tuple) {
	tx.remove(t, tup)
	*e = append(*e, undoOp{table: t, tuple: tup})
}

// commitEffects finishes a successful operation: its mutations are logged to
// the write-ahead log (one record per operation, durable.go), the staged
// table versions are published under the record's LSN — the single point
// where the operation becomes visible to readers — and, inside a
// transaction, the effects are appended to the undo log. Called with table
// locks held; takes txnMu after them, which is the global lock order (never
// the reverse). A non-nil error means the record is not on disk and nothing
// was published: memory and log stay in agreement with no revert needed.
func (db *DB) commitEffects(tx *writeTx, eff effects) error {
	if len(eff) == 0 {
		return nil
	}
	if !db.inTxn.Load() {
		lsn, err := db.logOp(eff, false)
		if err != nil {
			return err
		}
		db.publish(tx, lsn)
		return nil
	}
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	// Re-read under the mutex: a racing Commit/Rollback may have closed the
	// transaction, in which case the effects are logged as autonomous.
	inTxn := db.inTxn.Load()
	lsn, err := db.logOp(eff, inTxn)
	if err != nil {
		return err
	}
	if inTxn {
		db.undo = append(db.undo, eff...)
	}
	db.publish(tx, lsn)
	return nil
}
