package engine

import (
	"fmt"
	"os"

	"repro/internal/sdl"
)

// SaveFile writes the engine's current contents to a file in the data DSL
// (insert statements, deterministic order), so a database can be inspected,
// versioned, or reloaded.
func (db *DB) SaveFile(path string) error {
	text := sdl.PrintState(db.Schema, db.Snapshot())
	return os.WriteFile(path, []byte(text), 0o644)
}

// LoadFile parses a data-DSL file and bulk-loads it, enforcing every
// constraint. Loading happens inside an atomic batch: a violation anywhere
// leaves the engine unchanged.
func (db *DB) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	st, err := sdl.ParseState(db.Schema, string(data))
	if err != nil {
		return err
	}
	return db.RunAtomic(func() error {
		if err := db.Load(st); err != nil {
			return fmt.Errorf("engine: loading %s: %w", path, err)
		}
		return nil
	})
}
