// Package engine is a small executable in-memory relational engine used to
// make the paper's motivating claims measurable: a catalog of relations with
// hash indexes on primary keys, insert/delete/update with full constraint
// enforcement, and key-lookup/navigation queries.
//
// Constraint enforcement distinguishes — and separately accounts for — the
// two maintenance regimes of section 5.1:
//
//   - declarative checks: NOT NULL (nulls-not-allowed), PRIMARY KEY
//     uniqueness, and key-based FOREIGN KEY lookups, each an O(1) indexed
//     operation;
//   - procedural (trigger/rule) checks: general null constraints (evaluated
//     per modified tuple) and non-key-based inclusion dependencies (probing
//     a secondary index on the referenced side, prebuilt at Open).
//
// The Stats counters let benchmarks report exactly how much each regime
// costs, reproducing the paper's argument for why only-NNA schemas
// (Prop. 5.2) are preferable on 1992-era systems.
//
// Concurrency — MVCC snapshot reads: the committed state lives in immutable
// versioned snapshots (version.go). Readers (GetByKey, Scan,
// FetchWithReferences, View) pin the current version with one atomic pointer
// load and run entirely lock-free; writers never block them. Writers
// serialize through per-table sync.RWMutex lock plans acquired in a
// deterministic order (locks.go), stage their mutations copy-on-write, and
// publish one new version per committed operation, stamped with its WAL
// LSN. All cost accounting is atomic and never takes a lock.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/immap"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/wal"
)

// table is the immutable per-relation metadata: scheme, positional layout,
// and the set of prebuilt secondary indexes. Contents live in versioned
// snapshots (version.go); the mutex serializes writers of this table (the
// unit of write locking, acquired via the lock plans in locks.go) and is
// never taken by readers.
type table struct {
	mu   sync.RWMutex
	ord  int // position in the deterministic lock order (sorted by name)
	name string
	rs   *schema.RelationScheme
	// hdr is an empty relation over the scheme's attributes: the shared,
	// immutable positional metadata (Position/Positions/Arity) every path
	// uses. Never add tuples to it.
	hdr   *relation.Relation
	pkPos []int
	// secIdx maps a secondary-index key (secondaryKey of the attribute list)
	// to the attribute positions it projects. The set is fixed at Open: one
	// index per referencing side of every inclusion dependency, plus the
	// referenced side of every non-key-based one, so no read-shaped
	// operation ever needs to build an index (the pre-MVCC engine demoted
	// such reads to write locks for exactly that lazy build).
	secIdx map[string][]int
}

// binding bundles every schema-derived structure of the engine: the schema
// itself, the table catalog, the lock plans, the dependency indexes, the
// constraint partitions, and the co-access edge counters. A binding is
// immutable once built; a live schema migration (migrate.go) builds a fresh
// binding and installs it wholesale under schemaMu, and every published
// snapshot carries the binding it was produced under, so a pinned read view
// keeps resolving names, indexes, and dependencies against the design it was
// pinned on — even across a migration.
type binding struct {
	schema *schema.Schema
	tables map[string]*table
	lm     *lockManager
	// indsFrom/indsInto index the schema's inclusion dependencies by side.
	indsFrom map[string][]schema.IND
	indsInto map[string][]schema.IND
	// procedural null constraints per scheme (NNA excluded).
	procNulls map[string][]schema.NullConstraint
	nnaAttrs  map[string]map[string]bool
	// coEdges holds one co-access counter per inclusion-dependency edge
	// (keyed "Left->Right"); coPairs resolves an (A fetched, then B fetched)
	// relation pair to its edge, in either direction. Fed from the lock-free
	// fetch path, read by the online advisor (coaccess.go).
	coEdges map[string]*coEdge
	coPairs map[string]*coEdge
}

// DB is the engine instance: a schema plus its tables and counters.
// All exported methods are safe for concurrent use; see the package comment
// for the locking discipline.
type DB struct {
	Schema *schema.Schema
	// Stats accumulates the cost counters atomically; reads never block
	// operations and operations never block on stats.
	Stats Stats
	// reg/obsName/m back the Stats fields with registry series (metrics.go).
	reg     *obs.Registry
	obsName string
	m       *dbMetrics
	// schemaMu guards the schema-derived structures below (Schema, tables,
	// lm, indsFrom/indsInto, procNulls, nnaAttrs, bind) against live schema
	// migration: every mutating entry point holds it shared for the
	// operation's duration, MigrateSchema holds it exclusive. Lock order:
	// schemaMu before replMu before table locks before txnMu. Lock-free
	// readers never touch it — they resolve metadata through the binding
	// carried by their pinned snapshot.
	schemaMu sync.RWMutex
	// bind is the current schema binding; replaced only by install (under
	// schemaMu exclusive). The mirror fields below alias its contents for the
	// write paths, which already hold schemaMu shared.
	bind *binding
	// tables aliases bind.tables (immutable between migrations).
	tables map[string]*table
	// current is the latest published snapshot (version.go): the single
	// atomic load every reader pins. pubMu serializes publishers; seq issues
	// version stamps for non-durable engines; lastPublish feeds the
	// version-age gauge.
	current     atomic.Pointer[dbSnapshot]
	pubMu       sync.Mutex
	seq         atomic.Uint64
	lastPublish atomic.Int64
	// lm holds the precomputed per-operation lock plans (locks.go).
	lm *lockManager
	// lockAcq counts lock-plan acquisitions for the engine's lifetime (it
	// lives on the DB, not the lock manager, so a migration's fresh lock
	// plans never reset it).
	lockAcq atomic.Uint64
	// indsFrom/indsInto index the schema's inclusion dependencies by side.
	indsFrom map[string][]schema.IND
	indsInto map[string][]schema.IND
	// procedural null constraints per scheme (NNA excluded).
	procNulls map[string][]schema.NullConstraint
	nnaAttrs  map[string]map[string]bool
	// lastFetch is the relation name of the most recent key-shaped fetch, the
	// co-access pair detector's one-deep history (coaccess.go).
	lastFetch atomic.Value
	// delay simulates one storage access per operation while the operation's
	// locks are held (WithAccessDelay); zero in production use.
	delay time.Duration
	// transaction state (see txn.go). txnMu guards undo and txnSnap; inTxn is
	// read on the fast path without the mutex. Lock order: table locks before
	// txnMu.
	txnMu   sync.Mutex
	inTxn   atomic.Bool
	undo    []undoOp
	txnSnap *dbSnapshot // read view pinned at Begin
	// wal is the write-ahead log (durable.go); nil for an in-memory engine.
	// Assigned once during Open (after recovery) and immutable afterwards.
	wal      *wal.Log
	recovery RecoveryInfo
	// replMu serializes the replicated-apply stream (replica.go); replPending
	// buffers a shipped transaction's ops until its commit marker arrives.
	// Recovery seeds it: a follower restarted mid-transaction resumes the
	// buffer instead of losing the suffix the primary will never resend.
	replMu      sync.Mutex
	replPending []walOp
	// replica marks an engine opened with AsReplica: its log's unterminated
	// transactional suffix is resumable (the primary's commit marker is still
	// in flight), so recovery seeds replPending from it and Checkpoint
	// refuses while it is non-empty. A primary discards such a suffix — its
	// transaction died with the crash and no marker can ever arrive.
	replica bool
	// partition marks the engine as one shard of a partitioned database;
	// probes holds the router's cross-partition constraint hooks
	// (partition.go). Installed once via SetShardProbes before traffic.
	partition bool
	probes    atomic.Pointer[ShardProbes]
}

// Option configures Open.
type Option func(*openConfig)

type openConfig struct {
	reg       *obs.Registry
	name      string
	delay     time.Duration
	walDir    string
	walOpts   wal.Options
	partition bool
	replica   bool
}

// WithRegistry makes the DB report its cost counters and latency histograms
// into r instead of a private registry, letting several engines share one
// observable surface (each under its own db=<name> label).
func WithRegistry(r *obs.Registry) Option {
	return func(c *openConfig) { c.reg = r }
}

// WithName sets the db=<name> label value of the DB's metric series.
// The default is "db".
func WithName(name string) Option {
	return func(c *openConfig) { c.name = name }
}

// WithAccessDelay makes every operation sleep for d once, simulating the
// storage-access latency the paper's cost model assumes (one page fetch per
// indexed access on a 1992-era system). The in-memory engine is otherwise so
// fast that concurrency-schedule effects — lock-free readers overlapping,
// writers serializing — are invisible; with a simulated access cost the
// throughput benchmarks expose them on any machine. Zero (the default)
// disables the sleep entirely.
func WithAccessDelay(d time.Duration) Option {
	return func(c *openConfig) { c.delay = d }
}

// Open builds an engine for the schema (validated first).
func Open(s *schema.Schema, opts ...Option) (*DB, error) {
	cfg := openConfig{name: "db"}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.reg == nil {
		cfg.reg = obs.NewRegistry()
	}
	db := &DB{
		reg:       cfg.reg,
		obsName:   cfg.name,
		m:         newDBMetrics(cfg.reg, cfg.name),
		delay:     cfg.delay,
		partition: cfg.partition,
		replica:   cfg.replica,
	}
	b, err := db.newBinding(s)
	if err != nil {
		return nil, err
	}
	db.install(b)
	// Version zero: every table empty, LSN 0.
	db.current.Store(&dbSnapshot{tables: emptyVersions(b), bind: b})
	db.lastPublish.Store(time.Now().UnixNano())
	db.m.registerVersionAge(cfg.reg, cfg.name, db)
	if cfg.walDir != "" {
		if err := db.openDurable(cfg.walDir, cfg.walOpts); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// newBinding validates s and builds the full set of schema-derived
// structures: the table catalog with prebuilt secondary indexes, the
// dependency indexes by side, the constraint partitions, the lock plans, and
// the co-access edge counters. It mutates nothing on db — the caller decides
// when (and whether) to install the binding.
func (db *DB) newBinding(s *schema.Schema) (*binding, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b := &binding{
		schema:    s,
		tables:    make(map[string]*table, len(s.Relations)),
		indsFrom:  make(map[string][]schema.IND),
		indsInto:  make(map[string][]schema.IND),
		procNulls: make(map[string][]schema.NullConstraint),
		nnaAttrs:  make(map[string]map[string]bool),
		coEdges:   make(map[string]*coEdge),
		coPairs:   make(map[string]*coEdge),
	}
	for _, rs := range s.Relations {
		hdr := relation.New(rs.AttrNames()...)
		b.tables[rs.Name] = &table{
			name:   rs.Name,
			rs:     rs,
			hdr:    hdr,
			pkPos:  hdr.Positions(rs.PrimaryKey),
			secIdx: make(map[string][]int),
		}
		b.nnaAttrs[rs.Name] = s.NNAAttrs(rs.Name)
	}
	for _, ind := range s.INDs {
		b.indsFrom[ind.Left] = append(b.indsFrom[ind.Left], ind)
		b.indsInto[ind.Right] = append(b.indsInto[ind.Right], ind)
	}
	for _, nc := range s.Nulls {
		if ne, ok := nc.(schema.NullExistence); ok && ne.IsNNA() {
			continue
		}
		b.procNulls[nc.SchemeName()] = append(b.procNulls[nc.SchemeName()], nc)
	}
	for _, ind := range s.INDs {
		if err := b.validateINDShape(ind); err != nil {
			return nil, err
		}
	}
	// Prebuild the full secondary-index set: referencing sides (delete/update
	// restrict checks) and non-key-based referenced sides (insert FK probes,
	// fetch hops). Maintained incrementally from here on, published immutably
	// with every version.
	for _, ind := range s.INDs {
		b.tables[ind.Left].addSecIdx(ind.LeftAttrs)
		if !ind.KeyBased(s) {
			b.tables[ind.Right].addSecIdx(ind.RightAttrs)
		}
	}
	b.lm = newLockManager(b)
	db.buildCoEdges(b)
	return b, nil
}

// install makes b the engine's current binding. The mirror fields alias the
// binding's contents so the write paths (which hold schemaMu shared) keep
// their direct field access. Called from Open (before any concurrency) and
// from migration paths holding schemaMu exclusively.
func (db *DB) install(b *binding) {
	db.Schema = b.schema
	db.tables = b.tables
	db.lm = b.lm
	db.indsFrom = b.indsFrom
	db.indsInto = b.indsInto
	db.procNulls = b.procNulls
	db.nnaAttrs = b.nnaAttrs
	db.bind = b
}

// emptyVersions builds the version-zero table set of a binding: every table
// empty, every prebuilt secondary index present.
func emptyVersions(b *binding) map[string]*tableVersion {
	tables := make(map[string]*tableVersion, len(b.tables))
	for name, t := range b.tables {
		sec := make(map[string]*immap.Map[[]relation.Tuple], len(t.secIdx))
		for key := range t.secIdx {
			sec[key] = immap.New[[]relation.Tuple]()
		}
		tables[name] = &tableVersion{pk: immap.New[relation.Tuple](), sec: sec}
	}
	return tables
}

// addSecIdx registers a prebuilt secondary index over attrs (idempotent).
func (t *table) addSecIdx(attrs []string) {
	key := secondaryKey(attrs)
	if _, ok := t.secIdx[key]; ok {
		return
	}
	t.secIdx[key] = t.hdr.Positions(attrs)
}

// validateINDShape rejects key-based inclusion dependencies whose right-side
// attribute list is not an exact permutation of the referenced scheme's
// primary key. Schema validation alone admits such shapes — IND.KeyBased
// compares attribute SETS, so a right side like [K1, K1, K2] passes against
// the key [K1, K2] — but orderAsKey would then silently drop one
// correspondence and probe the primary-key index with a garbage key,
// rejecting valid foreign keys. Detecting the shape here turns that silent
// misbehaviour into a typed Open error.
func (b *binding) validateINDShape(ind schema.IND) error {
	if !ind.KeyBased(b.schema) {
		return nil
	}
	target := b.tables[ind.Right]
	if target == nil {
		return fmt.Errorf("%w %s (in %s)", ErrUnknownRelation, ind.Right, ind)
	}
	pk := target.rs.PrimaryKey
	if len(ind.RightAttrs) != len(pk) {
		return fmt.Errorf("%w: %s lists %d right-side attributes for the %d-attribute key of %s",
			ErrMalformedIND, ind, len(ind.RightAttrs), len(pk), ind.Right)
	}
	seen := make(map[string]int, len(ind.RightAttrs))
	for _, a := range ind.RightAttrs {
		seen[a]++
	}
	for _, ka := range pk {
		if seen[ka] != 1 {
			return fmt.Errorf("%w: %s must list key attribute %s of %s exactly once (found %d times)",
				ErrMalformedIND, ind, ka, ind.Right, seen[ka])
		}
	}
	return nil
}

// MustOpen is Open that panics on error.
func MustOpen(s *schema.Schema, opts ...Option) *DB {
	db, err := Open(s, opts...)
	if err != nil {
		panic(err)
	}
	return db
}

// simAccess sleeps for the configured simulated storage-access latency. It
// is called exactly once per operation, so throughput benchmarks measure how
// well the concurrency schedule overlaps operations (lock-free readers
// overlap perfectly; writers contend on their lock plans).
func (db *DB) simAccess() {
	if db.delay > 0 {
		time.Sleep(db.delay)
	}
}

// Relation materializes the named relation from the current published
// version: a point-in-time copy, consistent across its tuples, that later
// writes never alter. Mutating the copy does not affect the database. For
// positional metadata only (Position, Attrs, Arity), Header is cheaper.
func (db *DB) Relation(name string) *relation.Relation {
	snap := db.current.Load()
	t := snap.bind.tables[name]
	if t == nil {
		return nil
	}
	r := relation.New(t.hdr.Attrs()...)
	snap.tables[name].pk.Range(func(_ string, tup relation.Tuple) bool {
		r.Add(tup)
		return true
	})
	return r
}

// Header returns the named relation's shared positional metadata: an empty,
// immutable relation over its attributes (Position/Positions/Attrs/Arity).
// Callers must not add tuples to it.
func (db *DB) Header(name string) *relation.Relation {
	t := db.current.Load().bind.tables[name]
	if t == nil {
		return nil
	}
	return t.hdr
}

// Count returns the tuple count of a relation in the current published
// version (lock-free).
func (db *DB) Count(name string) int {
	v := db.current.Load().tables[name]
	if v == nil {
		return 0
	}
	return v.pk.Len()
}

// Insert adds a tuple to the named relation, enforcing all constraints. On
// violation the state is unchanged and a descriptive error is returned.
func (db *DB) Insert(name string, tup relation.Tuple) error {
	return db.InsertCtx(context.Background(), name, tup)
}

// InsertCtx is Insert with cancellation: a context already cancelled when
// the operation starts aborts it before any state change.
func (db *DB) InsertCtx(ctx context.Context, name string, tup relation.Tuple) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	start := now()
	db.schemaMu.RLock()
	defer db.schemaMu.RUnlock()
	t := db.tables[name]
	if t == nil {
		return fmt.Errorf("%w %s", ErrUnknownRelation, name)
	}
	ls := db.lm.insert[name]
	db.acquire(ls)
	defer ls.release()
	// Re-check after acquisition: a deadline that expired while this op was
	// queued behind a contended lock plan must not still commit.
	if err := ctx.Err(); err != nil {
		return err
	}
	defer db.m.insertLat.ObserveSince(start)
	db.simAccess()
	tx := db.beginWrite()
	var eff effects
	if err := db.insertLocked(tx, t, tup, &eff); err != nil {
		return err
	}
	return db.commitEffects(tx, eff)
}

// insertLocked validates and stages one tuple, assuming the insert lock set
// of t is held. Mutations are staged in tx and recorded in eff; on error the
// caller simply drops tx (the published state was never touched).
func (db *DB) insertLocked(tx *writeTx, t *table, tup relation.Tuple, eff *effects) error {
	if len(tup) != t.hdr.Arity() {
		return fmt.Errorf("%w for %s", ErrArityMismatch, t.rs.Name)
	}
	if err := db.checkDeclarative(tx, t, tup); err != nil {
		return err
	}
	if err := db.fireInsertTriggers(tx, t, tup); err != nil {
		return err
	}
	eff.apply(tx, t, tup)
	tx.countInsert()
	return nil
}

// checkDeclarative runs the NOT NULL / PRIMARY KEY / key-based FOREIGN KEY
// checks for an incoming tuple against the transaction's staged view.
func (db *DB) checkDeclarative(tx *writeTx, t *table, tup relation.Tuple) error {
	name := t.rs.Name
	// NOT NULL.
	for i, a := range t.rs.AttrNames() {
		tx.countDecl()
		if db.nnaAttrs[name][a] && tup[i].IsNull() {
			return db.violation(&ConstraintViolation{Kind: NotNullViolation, Relation: name, Attr: a, Op: "insert"})
		}
	}
	// PRIMARY KEY uniqueness (all nulls identical, per section 5.1).
	tx.countDecl()
	tx.countIdx()
	if _, dup := tx.pkGet(t, t.keyOfIncoming(tup)); dup {
		return db.violation(&ConstraintViolation{Kind: PrimaryKeyViolation, Relation: name, Op: "insert"})
	}
	// Key-based foreign keys: indexed probe into the referenced table. A
	// local miss on a partition engine falls through to the router's
	// cross-shard probe (partition.go) before it counts as a violation.
	for _, ind := range db.indsFrom[name] {
		target := db.tables[ind.Right]
		if !ind.KeyBased(db.Schema) {
			continue // handled by triggers
		}
		tx.countDecl()
		fk := projectAttrs(t, tup, ind.LeftAttrs)
		if !fk.IsTotal() {
			continue // null foreign keys are exempt
		}
		tx.countIdx()
		if _, ok := tx.pkGet(target, orderAsKey(target, ind.RightAttrs, fk)); !ok {
			hit, err := db.probeReferenced(ind, orderAsKey(target, ind.RightAttrs, fk))
			if err != nil {
				return err
			}
			if !hit {
				return db.violation(&ConstraintViolation{Kind: ForeignKeyViolation, Relation: name, Constraint: ind.String(), Op: "insert"})
			}
		}
	}
	return nil
}

// fireInsertTriggers runs the procedural checks: general null constraints of
// the scheme (single-tuple, so evaluated on the incoming tuple alone) and
// non-key-based inclusion dependencies from the scheme (a probe of the
// referenced relation's prebuilt secondary index).
func (db *DB) fireInsertTriggers(tx *writeTx, t *table, tup relation.Tuple) error {
	name := t.rs.Name
	for _, nc := range db.procNulls[name] {
		tx.countTrig()
		probe := relation.New(t.rs.AttrNames()...)
		probe.Add(tup)
		if !nc.Satisfied(probe) {
			return db.violation(&ConstraintViolation{Kind: NullConstraintViolation, Relation: name, Constraint: fmt.Sprint(nc), Op: "insert"})
		}
	}
	for _, ind := range db.indsFrom[name] {
		if ind.KeyBased(db.Schema) {
			continue
		}
		tx.countTrig()
		fk := projectAttrs(t, tup, ind.LeftAttrs)
		if !fk.IsTotal() {
			continue
		}
		tx.countIdx()
		if len(tx.bucket(db.tables[ind.Right], secondaryKey(ind.RightAttrs), fk.EncodeKey())) == 0 {
			hit, err := db.probeReferenced(ind, fk.EncodeKey())
			if err != nil {
				return err
			}
			if !hit {
				return db.violation(&ConstraintViolation{Kind: ForeignKeyViolation, Relation: name, Constraint: ind.String(), Op: "insert"})
			}
		}
	}
	return nil
}

func secondaryKey(attrs []string) string {
	out := ""
	for i, a := range attrs {
		if i > 0 {
			out += ","
		}
		out += a
	}
	return out
}

func (t *table) keyOfIncoming(tup relation.Tuple) string {
	return tup.Project(t.pkPos).EncodeKey()
}

func projectAttrs(t *table, tup relation.Tuple, attrs []string) relation.Tuple {
	return tup.Project(t.hdr.Positions(attrs))
}

// orderAsKey encodes a foreign-key value in the referenced table's
// primary-key attribute order.
func orderAsKey(target *table, rightAttrs []string, val relation.Tuple) string {
	// Map rightAttrs -> positions within the primary key order.
	ordered := make(relation.Tuple, len(target.rs.PrimaryKey))
	for i, ka := range target.rs.PrimaryKey {
		for j, ra := range rightAttrs {
			if ra == ka {
				ordered[i] = val[j]
			}
		}
	}
	return ordered.EncodeKey()
}
