// Package engine is a small executable in-memory relational engine used to
// make the paper's motivating claims measurable: a catalog of relations with
// hash indexes on primary keys, insert/delete/update with full constraint
// enforcement, and key-lookup/navigation queries.
//
// Constraint enforcement distinguishes — and separately accounts for — the
// two maintenance regimes of section 5.1:
//
//   - declarative checks: NOT NULL (nulls-not-allowed), PRIMARY KEY
//     uniqueness, and key-based FOREIGN KEY lookups, each an O(1) indexed
//     operation;
//   - procedural (trigger/rule) checks: general null constraints (evaluated
//     per modified tuple) and non-key-based inclusion dependencies (requiring
//     a scan or secondary index on the referenced side).
//
// The Stats counters let benchmarks report exactly how much each regime
// costs, reproducing the paper's argument for why only-NNA schemas
// (Prop. 5.2) are preferable on 1992-era systems.
package engine

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/schema"
)

// Stats accumulates operation and cost counters. Every field is mirrored
// into a registry-backed counter series (see metrics.go), so the same
// numbers are exportable through DB.Registry() without touching this API;
// Reset zeroes only the struct — the registry series stay monotonic.
type Stats struct {
	Inserts int
	Deletes int
	Updates int
	Lookups int

	// DeclarativeChecks counts NOT NULL / primary-key / foreign-key checks.
	DeclarativeChecks int
	// TriggerFirings counts procedural constraint evaluations (general null
	// constraints, non-key-based inclusion dependencies).
	TriggerFirings int
	// IndexLookups counts hash-index probes.
	IndexLookups int
	// TuplesScanned counts tuples visited by scans.
	TuplesScanned int
}

// Reset zeroes the counters.
func (st *Stats) Reset() { *st = Stats{} }

// table is one relation plus its primary-key index.
type table struct {
	rs  *schema.RelationScheme
	rel *relation.Relation
	pk  map[string]relation.Tuple // encoded key -> tuple
	// secondary maps attr-list key -> (encoded value -> tuples); built on
	// demand for referenced-side maintenance of inclusion dependencies.
	secondary map[string]map[string][]relation.Tuple
}

func (t *table) keyOf(tup relation.Tuple) string {
	return tup.Project(t.rel.Positions(t.rs.PrimaryKey)).EncodeKey()
}

// DB is the engine instance: a schema plus its tables and counters.
// Mutating operations and multi-step reads are serialized by an internal
// mutex, so a DB is safe for concurrent use by multiple goroutines (the
// Stats counters are protected by the same lock).
type DB struct {
	mu     sync.Mutex
	Schema *schema.Schema
	Stats  Stats
	// reg/obsName/m back the Stats fields with registry series (metrics.go).
	reg     *obs.Registry
	obsName string
	m       *dbMetrics
	tables  map[string]*table
	// indsFrom/indsInto index the schema's inclusion dependencies by side.
	indsFrom map[string][]schema.IND
	indsInto map[string][]schema.IND
	// procedural null constraints per scheme (NNA excluded).
	procNulls map[string][]schema.NullConstraint
	nnaAttrs  map[string]map[string]bool
	// transaction state (see txn.go).
	inTxn bool
	undo  []undoOp
}

// Option configures Open.
type Option func(*openConfig)

type openConfig struct {
	reg  *obs.Registry
	name string
}

// WithRegistry makes the DB report its cost counters and latency histograms
// into r instead of a private registry, letting several engines share one
// observable surface (each under its own db=<name> label).
func WithRegistry(r *obs.Registry) Option {
	return func(c *openConfig) { c.reg = r }
}

// WithName sets the db=<name> label value of the DB's metric series.
// The default is "db".
func WithName(name string) Option {
	return func(c *openConfig) { c.name = name }
}

// Open builds an engine for the schema (validated first).
func Open(s *schema.Schema, opts ...Option) (*DB, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg := openConfig{name: "db"}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.reg == nil {
		cfg.reg = obs.NewRegistry()
	}
	db := &DB{
		Schema:    s,
		reg:       cfg.reg,
		obsName:   cfg.name,
		m:         newDBMetrics(cfg.reg, cfg.name),
		tables:    make(map[string]*table, len(s.Relations)),
		indsFrom:  make(map[string][]schema.IND),
		indsInto:  make(map[string][]schema.IND),
		procNulls: make(map[string][]schema.NullConstraint),
		nnaAttrs:  make(map[string]map[string]bool),
	}
	for _, rs := range s.Relations {
		db.tables[rs.Name] = &table{
			rs:        rs,
			rel:       relation.New(rs.AttrNames()...),
			pk:        make(map[string]relation.Tuple),
			secondary: make(map[string]map[string][]relation.Tuple),
		}
		db.nnaAttrs[rs.Name] = s.NNAAttrs(rs.Name)
	}
	for _, ind := range s.INDs {
		db.indsFrom[ind.Left] = append(db.indsFrom[ind.Left], ind)
		db.indsInto[ind.Right] = append(db.indsInto[ind.Right], ind)
	}
	for _, nc := range s.Nulls {
		if ne, ok := nc.(schema.NullExistence); ok && ne.IsNNA() {
			continue
		}
		db.procNulls[nc.SchemeName()] = append(db.procNulls[nc.SchemeName()], nc)
	}
	return db, nil
}

// MustOpen is Open that panics on error.
func MustOpen(s *schema.Schema, opts ...Option) *DB {
	db, err := Open(s, opts...)
	if err != nil {
		panic(err)
	}
	return db
}

// Relation exposes the underlying relation of a scheme. The returned handle
// is live: for concurrent workloads use Snapshot or the query methods, which
// serialize internally.
func (db *DB) Relation(name string) *relation.Relation {
	t := db.tables[name]
	if t == nil {
		return nil
	}
	return t.rel
}

// Count returns the tuple count of a relation.
func (db *DB) Count(name string) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.tables[name]
	if t == nil {
		return 0
	}
	return t.rel.Len()
}

// Insert adds a tuple to the named relation, enforcing all constraints. On
// violation the state is unchanged and a descriptive error is returned.
func (db *DB) Insert(name string, tup relation.Tuple) error {
	return db.InsertCtx(context.Background(), name, tup)
}

// InsertCtx is Insert with cancellation: a context already cancelled when
// the operation starts aborts it before any state change.
func (db *DB) InsertCtx(ctx context.Context, name string, tup relation.Tuple) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	start := now()
	db.mu.Lock()
	defer db.mu.Unlock()
	defer db.m.insertLat.ObserveSince(start)
	t := db.tables[name]
	if t == nil {
		return fmt.Errorf("%w %s", ErrUnknownRelation, name)
	}
	if len(tup) != t.rel.Arity() {
		return fmt.Errorf("%w for %s", ErrArityMismatch, name)
	}
	if err := db.checkDeclarative(t, tup); err != nil {
		return err
	}
	if err := db.fireInsertTriggers(t, tup); err != nil {
		return err
	}
	db.apply(t, tup)
	db.countInsert()
	return nil
}

// checkDeclarative runs the NOT NULL / PRIMARY KEY / key-based FOREIGN KEY
// checks for an incoming tuple.
func (db *DB) checkDeclarative(t *table, tup relation.Tuple) error {
	name := t.rs.Name
	// NOT NULL.
	for i, a := range t.rs.AttrNames() {
		db.countDecl()
		if db.nnaAttrs[name][a] && tup[i].IsNull() {
			return db.violation(&ConstraintViolation{Kind: NotNullViolation, Relation: name, Attr: a, Op: "insert"})
		}
	}
	// PRIMARY KEY uniqueness (all nulls identical, per section 5.1).
	db.countDecl()
	db.countIdx()
	if _, dup := t.pk[t.keyOfIncoming(tup)]; dup {
		return db.violation(&ConstraintViolation{Kind: PrimaryKeyViolation, Relation: name, Op: "insert"})
	}
	// Key-based foreign keys: indexed probe into the referenced table.
	for _, ind := range db.indsFrom[name] {
		target := db.tables[ind.Right]
		if !ind.KeyBased(db.Schema) {
			continue // handled by triggers
		}
		db.countDecl()
		fk := projectAttrs(t, tup, ind.LeftAttrs)
		if !fk.IsTotal() {
			continue // null foreign keys are exempt
		}
		db.countIdx()
		if _, ok := target.pk[orderAsKey(target, ind.RightAttrs, fk)]; !ok {
			return db.violation(&ConstraintViolation{Kind: ForeignKeyViolation, Relation: name, Constraint: ind.String(), Op: "insert"})
		}
	}
	return nil
}

// fireInsertTriggers runs the procedural checks: general null constraints of
// the scheme (single-tuple, so evaluated on the incoming tuple alone) and
// non-key-based inclusion dependencies from the scheme (scan of the
// referenced relation, or secondary-index probe once warmed).
func (db *DB) fireInsertTriggers(t *table, tup relation.Tuple) error {
	name := t.rs.Name
	for _, nc := range db.procNulls[name] {
		db.countTrig()
		probe := relation.New(t.rs.AttrNames()...)
		probe.Add(tup)
		if !nc.Satisfied(probe) {
			return db.violation(&ConstraintViolation{Kind: NullConstraintViolation, Relation: name, Constraint: fmt.Sprint(nc), Op: "insert"})
		}
	}
	for _, ind := range db.indsFrom[name] {
		if ind.KeyBased(db.Schema) {
			continue
		}
		db.countTrig()
		fk := projectAttrs(t, tup, ind.LeftAttrs)
		if !fk.IsTotal() {
			continue
		}
		if !db.referencedHas(db.tables[ind.Right], ind.RightAttrs, fk) {
			return db.violation(&ConstraintViolation{Kind: ForeignKeyViolation, Relation: name, Constraint: ind.String(), Op: "insert"})
		}
	}
	return nil
}

// referencedHas checks membership of a value tuple in the total projection
// of the referenced relation, via a lazily-built secondary index.
func (db *DB) referencedHas(target *table, attrs []string, val relation.Tuple) bool {
	idx := db.secondaryIndex(target, attrs)
	db.countIdx()
	return len(idx[val.EncodeKey()]) > 0
}

func secondaryKey(attrs []string) string {
	out := ""
	for i, a := range attrs {
		if i > 0 {
			out += ","
		}
		out += a
	}
	return out
}

func (db *DB) secondaryIndex(target *table, attrs []string) map[string][]relation.Tuple {
	key := secondaryKey(attrs)
	if idx, ok := target.secondary[key]; ok {
		return idx
	}
	idx := make(map[string][]relation.Tuple)
	ps := target.rel.Positions(attrs)
	tuples := target.rel.Tuples()
	db.countScan(len(tuples))
	for _, tup := range tuples {
		sub := tup.Project(ps)
		if sub.IsTotal() {
			idx[sub.EncodeKey()] = append(idx[sub.EncodeKey()], tup)
		}
	}
	target.secondary[key] = idx
	return idx
}

// apply commits a checked tuple to the table and its indexes, logging the
// mutation when a transaction is open.
func (db *DB) apply(t *table, tup relation.Tuple) {
	if db.inTxn {
		db.undo = append(db.undo, undoOp{table: t, tuple: tup, insert: true})
	}
	db.physicalApply(t, tup)
}

// physicalApply mutates the table without undo logging.
func (db *DB) physicalApply(t *table, tup relation.Tuple) {
	t.rel.Add(tup)
	t.pk[t.keyOfIncoming(tup)] = tup
	for key := range t.secondary {
		attrs := splitSecondary(key)
		sub := projectAttrs(t, tup, attrs)
		if sub.IsTotal() {
			t.secondary[key][sub.EncodeKey()] = append(t.secondary[key][sub.EncodeKey()], tup)
		}
	}
}

func (t *table) keyOfIncoming(tup relation.Tuple) string {
	return tup.Project(t.rel.Positions(t.rs.PrimaryKey)).EncodeKey()
}

func projectAttrs(t *table, tup relation.Tuple, attrs []string) relation.Tuple {
	return tup.Project(t.rel.Positions(attrs))
}

// orderAsKey encodes a foreign-key value in the referenced table's
// primary-key attribute order.
func orderAsKey(target *table, rightAttrs []string, val relation.Tuple) string {
	// Map rightAttrs -> positions within the primary key order.
	ordered := make(relation.Tuple, len(target.rs.PrimaryKey))
	for i, ka := range target.rs.PrimaryKey {
		for j, ra := range rightAttrs {
			if ra == ka {
				ordered[i] = val[j]
			}
		}
	}
	return ordered.EncodeKey()
}

func splitSecondary(key string) []string {
	var out []string
	cur := ""
	for _, r := range key {
		if r == ',' {
			out = append(out, cur)
			cur = ""
		} else {
			cur += string(r)
		}
	}
	return append(out, cur)
}
