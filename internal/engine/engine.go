// Package engine is a small executable in-memory relational engine used to
// make the paper's motivating claims measurable: a catalog of relations with
// hash indexes on primary keys, insert/delete/update with full constraint
// enforcement, and key-lookup/navigation queries.
//
// Constraint enforcement distinguishes — and separately accounts for — the
// two maintenance regimes of section 5.1:
//
//   - declarative checks: NOT NULL (nulls-not-allowed), PRIMARY KEY
//     uniqueness, and key-based FOREIGN KEY lookups, each an O(1) indexed
//     operation;
//   - procedural (trigger/rule) checks: general null constraints (evaluated
//     per modified tuple) and non-key-based inclusion dependencies (requiring
//     a scan or secondary index on the referenced side).
//
// The Stats counters let benchmarks report exactly how much each regime
// costs, reproducing the paper's argument for why only-NNA schemas
// (Prop. 5.2) are preferable on 1992-era systems.
//
// Concurrency: a DB is safe for concurrent use by multiple goroutines.
// Locking is per table (sync.RWMutex), so key lookups on distinct relations
// never contend and readers of the same relation proceed in parallel;
// multi-table operations acquire their whole lock set up front in a
// deterministic order (see locks.go), so they cannot deadlock against each
// other. All cost accounting is atomic and never takes a lock.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/wal"
)

// table is one relation plus its primary-key index. Its mutex is the unit of
// locking: every operation acquires the locks of all tables it may touch —
// in ordinal order — before reading or writing any of them.
type table struct {
	mu  sync.RWMutex
	ord int // position in the deterministic lock order (sorted by name)
	rs  *schema.RelationScheme
	rel *relation.Relation
	pk  map[string]relation.Tuple // encoded key -> tuple
	// secondary maps attr-list key -> (encoded value -> tuples); built on
	// demand for referenced-side maintenance of inclusion dependencies.
	// Building or probing it requires the table's write lock (the lock
	// planner is conservative: any operation that may consult a secondary
	// index locks that table for writing).
	secondary map[string]map[string][]relation.Tuple
}

// DB is the engine instance: a schema plus its tables and counters.
// All exported methods are safe for concurrent use; see the package comment
// for the locking discipline.
type DB struct {
	Schema *schema.Schema
	// Stats accumulates the cost counters atomically; reads never block
	// operations and operations never block on stats.
	Stats Stats
	// reg/obsName/m back the Stats fields with registry series (metrics.go).
	reg     *obs.Registry
	obsName string
	m       *dbMetrics
	// tables is immutable after Open (the schema is fixed), so lookups in it
	// need no lock; all mutable state hangs off the *table values.
	tables map[string]*table
	// lm holds the precomputed per-operation lock plans (locks.go).
	lm *lockManager
	// indsFrom/indsInto index the schema's inclusion dependencies by side.
	indsFrom map[string][]schema.IND
	indsInto map[string][]schema.IND
	// procedural null constraints per scheme (NNA excluded).
	procNulls map[string][]schema.NullConstraint
	nnaAttrs  map[string]map[string]bool
	// delay simulates one storage access per operation while the operation's
	// locks are held (WithAccessDelay); zero in production use.
	delay time.Duration
	// transaction state (see txn.go). txnMu guards undo; inTxn is read on
	// the fast path without the mutex. Lock order: table locks before txnMu.
	txnMu sync.Mutex
	inTxn atomic.Bool
	undo  []undoOp
	// wal is the write-ahead log (durable.go); nil for an in-memory engine.
	// Assigned once during Open (after recovery) and immutable afterwards.
	wal      *wal.Log
	recovery RecoveryInfo
}

// Option configures Open.
type Option func(*openConfig)

type openConfig struct {
	reg     *obs.Registry
	name    string
	delay   time.Duration
	walDir  string
	walOpts wal.Options
}

// WithRegistry makes the DB report its cost counters and latency histograms
// into r instead of a private registry, letting several engines share one
// observable surface (each under its own db=<name> label).
func WithRegistry(r *obs.Registry) Option {
	return func(c *openConfig) { c.reg = r }
}

// WithName sets the db=<name> label value of the DB's metric series.
// The default is "db".
func WithName(name string) Option {
	return func(c *openConfig) { c.name = name }
}

// WithAccessDelay makes every operation sleep for d once while holding its
// locks, simulating the storage-access latency the paper's cost model
// assumes (one page fetch per indexed access on a 1992-era system). The
// in-memory engine is otherwise so fast that lock-schedule effects — readers
// overlapping, writers serializing — are invisible; with a simulated access
// cost the throughput benchmarks expose them on any machine. Zero (the
// default) disables the sleep entirely.
func WithAccessDelay(d time.Duration) Option {
	return func(c *openConfig) { c.delay = d }
}

// Open builds an engine for the schema (validated first).
func Open(s *schema.Schema, opts ...Option) (*DB, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg := openConfig{name: "db"}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.reg == nil {
		cfg.reg = obs.NewRegistry()
	}
	db := &DB{
		Schema:    s,
		reg:       cfg.reg,
		obsName:   cfg.name,
		m:         newDBMetrics(cfg.reg, cfg.name),
		tables:    make(map[string]*table, len(s.Relations)),
		indsFrom:  make(map[string][]schema.IND),
		indsInto:  make(map[string][]schema.IND),
		procNulls: make(map[string][]schema.NullConstraint),
		nnaAttrs:  make(map[string]map[string]bool),
		delay:     cfg.delay,
	}
	for _, rs := range s.Relations {
		db.tables[rs.Name] = &table{
			rs:        rs,
			rel:       relation.New(rs.AttrNames()...),
			pk:        make(map[string]relation.Tuple),
			secondary: make(map[string]map[string][]relation.Tuple),
		}
		db.nnaAttrs[rs.Name] = s.NNAAttrs(rs.Name)
	}
	for _, ind := range s.INDs {
		db.indsFrom[ind.Left] = append(db.indsFrom[ind.Left], ind)
		db.indsInto[ind.Right] = append(db.indsInto[ind.Right], ind)
	}
	for _, nc := range s.Nulls {
		if ne, ok := nc.(schema.NullExistence); ok && ne.IsNNA() {
			continue
		}
		db.procNulls[nc.SchemeName()] = append(db.procNulls[nc.SchemeName()], nc)
	}
	for _, ind := range s.INDs {
		if err := db.validateINDShape(ind); err != nil {
			return nil, err
		}
	}
	db.lm = newLockManager(db)
	if cfg.walDir != "" {
		if err := db.openDurable(cfg.walDir, cfg.walOpts); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// validateINDShape rejects key-based inclusion dependencies whose right-side
// attribute list is not an exact permutation of the referenced scheme's
// primary key. Schema validation alone admits such shapes — IND.KeyBased
// compares attribute SETS, so a right side like [K1, K1, K2] passes against
// the key [K1, K2] — but orderAsKey would then silently drop one
// correspondence and probe the primary-key index with a garbage key,
// rejecting valid foreign keys. Detecting the shape here turns that silent
// misbehaviour into a typed Open error.
func (db *DB) validateINDShape(ind schema.IND) error {
	if !ind.KeyBased(db.Schema) {
		return nil
	}
	target := db.tables[ind.Right]
	if target == nil {
		return fmt.Errorf("%w %s (in %s)", ErrUnknownRelation, ind.Right, ind)
	}
	pk := target.rs.PrimaryKey
	if len(ind.RightAttrs) != len(pk) {
		return fmt.Errorf("%w: %s lists %d right-side attributes for the %d-attribute key of %s",
			ErrMalformedIND, ind, len(ind.RightAttrs), len(pk), ind.Right)
	}
	seen := make(map[string]int, len(ind.RightAttrs))
	for _, a := range ind.RightAttrs {
		seen[a]++
	}
	for _, ka := range pk {
		if seen[ka] != 1 {
			return fmt.Errorf("%w: %s must list key attribute %s of %s exactly once (found %d times)",
				ErrMalformedIND, ind, ka, ind.Right, seen[ka])
		}
	}
	return nil
}

// MustOpen is Open that panics on error.
func MustOpen(s *schema.Schema, opts ...Option) *DB {
	db, err := Open(s, opts...)
	if err != nil {
		panic(err)
	}
	return db
}

// simAccess sleeps for the configured simulated storage-access latency. It
// is called exactly once per operation, at a point where the operation's
// locks are held, so throughput benchmarks measure how well the lock
// schedule overlaps concurrent operations.
func (db *DB) simAccess() {
	if db.delay > 0 {
		time.Sleep(db.delay)
	}
}

// Relation exposes the underlying relation of a scheme. The returned handle
// is live and not synchronized: for concurrent workloads use Snapshot or the
// query methods, which lock internally.
func (db *DB) Relation(name string) *relation.Relation {
	t := db.tables[name]
	if t == nil {
		return nil
	}
	return t.rel
}

// Count returns the tuple count of a relation.
func (db *DB) Count(name string) int {
	t := db.tables[name]
	if t == nil {
		return 0
	}
	t.mu.RLock()
	n := t.rel.Len()
	t.mu.RUnlock()
	return n
}

// Insert adds a tuple to the named relation, enforcing all constraints. On
// violation the state is unchanged and a descriptive error is returned.
func (db *DB) Insert(name string, tup relation.Tuple) error {
	return db.InsertCtx(context.Background(), name, tup)
}

// InsertCtx is Insert with cancellation: a context already cancelled when
// the operation starts aborts it before any state change.
func (db *DB) InsertCtx(ctx context.Context, name string, tup relation.Tuple) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	start := now()
	t := db.tables[name]
	if t == nil {
		return fmt.Errorf("%w %s", ErrUnknownRelation, name)
	}
	ls := db.lm.insert[name]
	ls.acquire()
	defer ls.release()
	// Re-check after acquisition: a deadline that expired while this op was
	// queued behind a contended lock plan must not still commit.
	if err := ctx.Err(); err != nil {
		return err
	}
	defer db.m.insertLat.ObserveSince(start)
	db.simAccess()
	var eff effects
	if err := db.insertLocked(t, tup, &eff); err != nil {
		eff.revert(db)
		return err
	}
	if err := db.commitEffects(eff); err != nil {
		eff.revert(db)
		return err
	}
	return nil
}

// insertLocked validates and applies one tuple, assuming the insert lock set
// of t is held. Mutations are recorded in eff; on error the caller reverts.
func (db *DB) insertLocked(t *table, tup relation.Tuple, eff *effects) error {
	if len(tup) != t.rel.Arity() {
		return fmt.Errorf("%w for %s", ErrArityMismatch, t.rs.Name)
	}
	if err := db.checkDeclarative(t, tup); err != nil {
		return err
	}
	if err := db.fireInsertTriggers(t, tup); err != nil {
		return err
	}
	eff.apply(db, t, tup)
	db.countInsert()
	return nil
}

// checkDeclarative runs the NOT NULL / PRIMARY KEY / key-based FOREIGN KEY
// checks for an incoming tuple.
func (db *DB) checkDeclarative(t *table, tup relation.Tuple) error {
	name := t.rs.Name
	// NOT NULL.
	for i, a := range t.rs.AttrNames() {
		db.countDecl()
		if db.nnaAttrs[name][a] && tup[i].IsNull() {
			return db.violation(&ConstraintViolation{Kind: NotNullViolation, Relation: name, Attr: a, Op: "insert"})
		}
	}
	// PRIMARY KEY uniqueness (all nulls identical, per section 5.1).
	db.countDecl()
	db.countIdx()
	if _, dup := t.pk[t.keyOfIncoming(tup)]; dup {
		return db.violation(&ConstraintViolation{Kind: PrimaryKeyViolation, Relation: name, Op: "insert"})
	}
	// Key-based foreign keys: indexed probe into the referenced table.
	for _, ind := range db.indsFrom[name] {
		target := db.tables[ind.Right]
		if !ind.KeyBased(db.Schema) {
			continue // handled by triggers
		}
		db.countDecl()
		fk := projectAttrs(t, tup, ind.LeftAttrs)
		if !fk.IsTotal() {
			continue // null foreign keys are exempt
		}
		db.countIdx()
		if _, ok := target.pk[orderAsKey(target, ind.RightAttrs, fk)]; !ok {
			return db.violation(&ConstraintViolation{Kind: ForeignKeyViolation, Relation: name, Constraint: ind.String(), Op: "insert"})
		}
	}
	return nil
}

// fireInsertTriggers runs the procedural checks: general null constraints of
// the scheme (single-tuple, so evaluated on the incoming tuple alone) and
// non-key-based inclusion dependencies from the scheme (scan of the
// referenced relation, or secondary-index probe once warmed).
func (db *DB) fireInsertTriggers(t *table, tup relation.Tuple) error {
	name := t.rs.Name
	for _, nc := range db.procNulls[name] {
		db.countTrig()
		probe := relation.New(t.rs.AttrNames()...)
		probe.Add(tup)
		if !nc.Satisfied(probe) {
			return db.violation(&ConstraintViolation{Kind: NullConstraintViolation, Relation: name, Constraint: fmt.Sprint(nc), Op: "insert"})
		}
	}
	for _, ind := range db.indsFrom[name] {
		if ind.KeyBased(db.Schema) {
			continue
		}
		db.countTrig()
		fk := projectAttrs(t, tup, ind.LeftAttrs)
		if !fk.IsTotal() {
			continue
		}
		if !db.referencedHas(db.tables[ind.Right], ind.RightAttrs, fk) {
			return db.violation(&ConstraintViolation{Kind: ForeignKeyViolation, Relation: name, Constraint: ind.String(), Op: "insert"})
		}
	}
	return nil
}

// referencedHas checks membership of a value tuple in the total projection
// of the referenced relation, via a lazily-built secondary index. The
// caller must hold target's write lock (the lock planner guarantees it for
// every path that reaches here).
func (db *DB) referencedHas(target *table, attrs []string, val relation.Tuple) bool {
	idx := db.secondaryIndex(target, attrs)
	db.countIdx()
	return len(idx[val.EncodeKey()]) > 0
}

func secondaryKey(attrs []string) string {
	out := ""
	for i, a := range attrs {
		if i > 0 {
			out += ","
		}
		out += a
	}
	return out
}

// secondaryIndex returns (building on first use) the secondary index of
// target on attrs. The caller must hold target's write lock.
func (db *DB) secondaryIndex(target *table, attrs []string) map[string][]relation.Tuple {
	key := secondaryKey(attrs)
	if idx, ok := target.secondary[key]; ok {
		return idx
	}
	idx := make(map[string][]relation.Tuple)
	ps := target.rel.Positions(attrs)
	tuples := target.rel.Tuples()
	db.countScan(len(tuples))
	for _, tup := range tuples {
		sub := tup.Project(ps)
		if sub.IsTotal() {
			idx[sub.EncodeKey()] = append(idx[sub.EncodeKey()], tup)
		}
	}
	target.secondary[key] = idx
	return idx
}

// physicalApply mutates the table without undo bookkeeping. The caller must
// hold t's write lock.
func (db *DB) physicalApply(t *table, tup relation.Tuple) {
	t.rel.Add(tup)
	t.pk[t.keyOfIncoming(tup)] = tup
	for key := range t.secondary {
		attrs := splitSecondary(key)
		sub := projectAttrs(t, tup, attrs)
		if sub.IsTotal() {
			t.secondary[key][sub.EncodeKey()] = append(t.secondary[key][sub.EncodeKey()], tup)
		}
	}
}

func (t *table) keyOfIncoming(tup relation.Tuple) string {
	return tup.Project(t.rel.Positions(t.rs.PrimaryKey)).EncodeKey()
}

func projectAttrs(t *table, tup relation.Tuple, attrs []string) relation.Tuple {
	return tup.Project(t.rel.Positions(attrs))
}

// orderAsKey encodes a foreign-key value in the referenced table's
// primary-key attribute order.
func orderAsKey(target *table, rightAttrs []string, val relation.Tuple) string {
	// Map rightAttrs -> positions within the primary key order.
	ordered := make(relation.Tuple, len(target.rs.PrimaryKey))
	for i, ka := range target.rs.PrimaryKey {
		for j, ra := range rightAttrs {
			if ra == ka {
				ordered[i] = val[j]
			}
		}
	}
	return ordered.EncodeKey()
}

func splitSecondary(key string) []string {
	var out []string
	cur := ""
	for _, r := range key {
		if r == ',' {
			out = append(out, cur)
			cur = ""
		} else {
			cur += string(r)
		}
	}
	return append(out, cur)
}
