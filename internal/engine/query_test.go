package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/figures"
)

func TestFetchWithReferences(t *testing.T) {
	db := openFig3(t)
	db.Insert("COURSE", tup("c1"))
	db.Insert("DEPARTMENT", tup("math"))
	db.Insert("PERSON", tup("p1"))
	db.Insert("FACULTY", tup("p1"))
	db.Insert("OFFER", tup("c1", "math"))
	db.Insert("TEACH", tup("c1", "p1"))

	tuple, related, err := db.FetchWithReferences("TEACH", tup("c1"))
	if err != nil {
		t.Fatal(err)
	}
	if !tuple.Identical(tup("c1", "p1")) {
		t.Errorf("tuple = %v", tuple)
	}
	if len(related) != 2 {
		t.Fatalf("related = %v", related)
	}
	byTarget := map[string]Related{}
	for _, r := range related {
		byTarget[r.To] = r
	}
	if r := byTarget["OFFER"]; r.Tuple == nil || !r.Tuple.Identical(tup("c1", "math")) {
		t.Errorf("OFFER hop = %+v", r)
	}
	if r := byTarget["FACULTY"]; r.Tuple == nil || !r.Tuple.Identical(tup("p1")) {
		t.Errorf("FACULTY hop = %+v", r)
	}
}

func TestFetchWithReferencesNullFK(t *testing.T) {
	// The figure 4 merged schema: a course with no OFFER part has null
	// foreign keys, reported as null hops.
	m, err := core.Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	if err != nil {
		t.Fatal(err)
	}
	db := MustOpen(m.Schema)
	if err := db.Insert("COURSE'", tup("c2", nil, nil, nil, nil)); err != nil {
		t.Fatal(err)
	}
	_, related, err := db.FetchWithReferences("COURSE'", tup("c2"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range related {
		if !r.IsNull {
			t.Errorf("hop %+v should be null", r)
		}
	}
}

func TestFetchWithReferencesNonKeyBased(t *testing.T) {
	// ASSIST → COURSE'[O.C.NR] is non-key-based: the chase goes through the
	// secondary index.
	m, err := core.Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	if err != nil {
		t.Fatal(err)
	}
	db := MustOpen(m.Schema)
	db.Insert("DEPARTMENT", tup("math"))
	db.Insert("PERSON", tup("p2"))
	db.Insert("STUDENT", tup("p2"))
	db.Insert("COURSE'", tup("c1", "c1", "math", nil, nil))
	db.Insert("ASSIST", tup("c1", "p2"))

	_, related, err := db.FetchWithReferences("ASSIST", tup("c1"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range related {
		if r.To == "COURSE'" && r.Tuple != nil {
			found = true
		}
	}
	if !found {
		t.Errorf("non-key-based hop missing: %+v", related)
	}
}

func TestFetchWithReferencesErrors(t *testing.T) {
	db := openFig3(t)
	if _, _, err := db.FetchWithReferences("NOPE", tup("x")); err == nil {
		t.Error("unknown relation")
	}
	if _, _, err := db.FetchWithReferences("COURSE", tup("missing")); err == nil {
		t.Error("missing key")
	}
}
