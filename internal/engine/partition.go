package engine

import (
	"context"
	"fmt"

	"repro/internal/schema"
)

// This file is the engine's side of horizontal partitioning (internal/shard).
// A partitioned engine holds one hash-slice of every relation, so a local
// index miss during an inclusion-dependency check is not authoritative: the
// referenced (or referencing) tuple may live in another partition. The shard
// router installs ShardProbes after Open; until then a partition engine
// treats cross-partition checks as the router's responsibility (recovery and
// bulk loads replay writes the router already validated).

// ShardProbes are the cross-partition constraint hooks a shard router
// installs on each partition engine. The engine calls them only as a
// fallback, after the operation's own staged view missed, and still
// constructs the resulting ConstraintViolation itself — so violation kinds,
// relations, and ops are identical whether a constraint fails locally or
// across shards.
type ShardProbes struct {
	// Referenced reports whether the referenced side of ind holds the probed
	// value beyond this partition. For a key-based dependency, key is the
	// referenced relation's encoded primary key (orderAsKey); otherwise it is
	// the encoded RightAttrs value probed against the prebuilt secondary
	// index.
	Referenced func(ind schema.IND, key string) (bool, error)
	// Referencing reports whether any tuple referencing the encoded
	// RightAttrs value refKey survives beyond this partition (the restrict
	// probe of deletes and updates on the referenced side).
	Referencing func(ind schema.IND, refKey string) (bool, error)
}

// WithPartition marks the engine as holding one shard of a partitioned
// database. Cross-relation inclusion checks that miss locally defer to the
// ShardProbes (or pass, before SetShardProbes installs them), and recovery
// re-validation skips inclusion dependencies — a partition's local state is
// not expected to satisfy them on its own.
func WithPartition() Option {
	return func(c *openConfig) { c.partition = true }
}

// SetShardProbes installs the router's cross-partition hooks. Call once,
// after Open and before serving traffic.
func (db *DB) SetShardProbes(p ShardProbes) { db.probes.Store(&p) }

// probeReferenced resolves a foreign-key existence check that missed the
// local staged view. Non-partition engines answer false (the local miss is
// final); partition engines ask the router, or pass during the bootstrap
// window before the probes are installed (recovery replays writes that were
// fully validated when first applied).
func (db *DB) probeReferenced(ind schema.IND, key string) (bool, error) {
	if !db.partition {
		return false, nil
	}
	p := db.probes.Load()
	if p == nil || p.Referenced == nil {
		return true, nil
	}
	return p.Referenced(ind, key)
}

// probeReferencing resolves a restrict check whose local referencing bucket
// was empty: false means no surviving reference anywhere, so the delete (or
// update) may proceed.
func (db *DB) probeReferencing(ind schema.IND, refKey string) (bool, error) {
	if !db.partition {
		return false, nil
	}
	p := db.probes.Load()
	if p == nil || p.Referencing == nil {
		return false, nil
	}
	return p.Referencing(ind, refKey)
}

// HasKey reports whether the current published version of the relation holds
// a tuple under the encoded primary key. Lock-free (one snapshot pin), which
// is what makes remote shards probe each other without entangling their lock
// managers.
func (db *DB) HasKey(name, encodedKey string) bool {
	v := db.current.Load().tables[name]
	if v == nil {
		return false
	}
	_, ok := v.pk.Get(encodedKey)
	return ok
}

// HasReferenced reports whether the current published version of ind.Right
// holds the encoded RightAttrs value — the referenced-side probe for
// non-key-based dependencies (key-based ones use HasKey with the pk-ordered
// encoding). Lock-free.
func (db *DB) HasReferenced(ind schema.IND, valKey string) bool {
	snap := db.current.Load()
	v := snap.tables[ind.Right]
	if v == nil {
		return false
	}
	if ind.KeyBased(snap.bind.schema) {
		_, ok := v.pk.Get(valKey)
		return ok
	}
	idx := v.sec[secondaryKey(ind.RightAttrs)]
	if idx == nil {
		return false
	}
	b, _ := idx.Get(valKey)
	return len(b) > 0
}

// ReferencingKeys returns the encoded primary keys of every tuple in the
// current published version of ind.Left whose LeftAttrs projection equals
// refKey. The router filters them against a cross-shard batch's pending
// deletes before calling a reference "surviving". Lock-free.
func (db *DB) ReferencingKeys(ind schema.IND, refKey string) []string {
	snap := db.current.Load()
	t := snap.bind.tables[ind.Left]
	if t == nil {
		return nil
	}
	v := snap.tables[ind.Left]
	idx := v.sec[secondaryKey(ind.LeftAttrs)]
	if idx == nil {
		return nil
	}
	b, _ := idx.Get(refKey)
	if len(b) == 0 {
		return nil
	}
	keys := make([]string, len(b))
	for i, tup := range b {
		keys[i] = t.keyOfIncoming(tup)
	}
	return keys
}

// StatsTotals returns the monotonic lifetime counters stamped with the
// current version LSN — the snapshot sessions and servers report, and the
// per-shard term of a router's aggregated stats.
func (db *DB) StatsTotals() StatsSnapshot {
	st := db.Stats.Totals()
	st.VersionLSN = db.VersionLSN()
	return st
}

// PrevalidateBatchCtx runs a mixed batch through exactly the checks of
// ApplyBatchCtx — same lock plan, same staged-view semantics, same error
// text — and then drops the staged transaction instead of publishing it.
// Nothing is logged, published, or counted (cost counters are suppressed so
// a prevalidate-then-apply pair accounts each op once); constraint
// violations still count as violations.
//
// This is phase one of the shard router's cross-shard batch protocol: every
// involved shard prevalidates its sub-batch before any shard applies one, so
// a violation on the last shard cannot strand committed effects on the
// first.
func (db *DB) PrevalidateBatchCtx(ctx context.Context, ops []BatchOp) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(ops) == 0 {
		return nil
	}
	db.schemaMu.RLock()
	defer db.schemaMu.RUnlock()
	ls, err := db.batchPlan(ops)
	if err != nil {
		return err
	}
	db.acquire(ls)
	defer ls.release()
	if err := ctx.Err(); err != nil {
		return err
	}
	tx := db.beginWrite()
	tx.dry = true
	var eff effects
	for i, op := range ops {
		t := db.tables[op.Relation]
		var opErr error
		switch op.Kind {
		case BatchInsert:
			opErr = db.insertLocked(tx, t, op.Tuple, &eff)
		case BatchDelete:
			opErr = db.deleteLocked(tx, t, op.Key, &eff)
		case BatchUpdate:
			opErr = db.updateLocked(tx, t, op.Key, op.Tuple, &eff)
		}
		if opErr != nil {
			return fmt.Errorf("engine: batch op %d/%d (%s on %s): %w", i+1, len(ops), op.Kind, op.Relation, opErr)
		}
	}
	return nil
}
