package engine

import (
	"time"

	"repro/internal/obs"
)

// Metric names registered per database. Each DB registers one series per
// name under its db=<name> label, so several engines (base vs. merged) can
// share one registry and stay distinguishable.
const (
	metricInserts        = "engine.inserts"
	metricDeletes        = "engine.deletes"
	metricUpdates        = "engine.updates"
	metricLookups        = "engine.lookups"
	metricDeclChecks     = "engine.declarative_checks"
	metricTriggerFirings = "engine.trigger_firings"
	metricIndexLookups   = "engine.index_lookups"
	metricTuplesScanned  = "engine.tuples_scanned"
	metricViolations     = "engine.constraint_violations"
	metricInsertSeconds  = "engine.insert_seconds"
	metricDeleteSeconds  = "engine.delete_seconds"
	metricUpdateSeconds  = "engine.update_seconds"
	metricLookupSeconds  = "engine.lookup_seconds"
)

// dbMetrics holds the registry-backed counter and histogram handles behind
// the legacy Stats API. The registry series are monotonic: Stats.Reset()
// zeroes the struct for a measurement window but never rewinds the registry,
// which records process-lifetime totals.
type dbMetrics struct {
	inserts, deletes, updates, lookups         *obs.Counter
	declChecks, triggerFirings                 *obs.Counter
	indexLookups, tuplesScanned                *obs.Counter
	violations                                 *obs.Counter
	insertLat, deleteLat, updateLat, lookupLat *obs.Histogram
}

func newDBMetrics(r *obs.Registry, name string) *dbMetrics {
	l := obs.L("db", name)
	return &dbMetrics{
		inserts:        r.Counter(metricInserts, l),
		deletes:        r.Counter(metricDeletes, l),
		updates:        r.Counter(metricUpdates, l),
		lookups:        r.Counter(metricLookups, l),
		declChecks:     r.Counter(metricDeclChecks, l),
		triggerFirings: r.Counter(metricTriggerFirings, l),
		indexLookups:   r.Counter(metricIndexLookups, l),
		tuplesScanned:  r.Counter(metricTuplesScanned, l),
		violations:     r.Counter(metricViolations, l),
		insertLat:      r.Histogram(metricInsertSeconds, obs.LatencyBuckets, l),
		deleteLat:      r.Histogram(metricDeleteSeconds, obs.LatencyBuckets, l),
		updateLat:      r.Histogram(metricUpdateSeconds, obs.LatencyBuckets, l),
		lookupLat:      r.Histogram(metricLookupSeconds, obs.LatencyBuckets, l),
	}
}

// The accounting helpers below are the single mutation points for the cost
// counters: each keeps the legacy Stats field and its registry series in
// lockstep, so a snapshot of the registry reconciles exactly with Stats over
// any window that does not cross a Stats.Reset().

func (db *DB) countInsert() { db.Stats.Inserts++; db.m.inserts.Inc() }
func (db *DB) countDelete() { db.Stats.Deletes++; db.m.deletes.Inc() }
func (db *DB) countUpdate() { db.Stats.Updates++; db.m.updates.Inc() }
func (db *DB) countLookup() { db.Stats.Lookups++; db.m.lookups.Inc() }

func (db *DB) countDecl() { db.Stats.DeclarativeChecks++; db.m.declChecks.Inc() }
func (db *DB) countTrig() { db.Stats.TriggerFirings++; db.m.triggerFirings.Inc() }
func (db *DB) countIdx()  { db.Stats.IndexLookups++; db.m.indexLookups.Inc() }

func (db *DB) countScan(n int) {
	db.Stats.TuplesScanned += n
	db.m.tuplesScanned.Add(int64(n))
}

// violation counts a rejected mutation and returns the error unchanged, so
// check paths can `return db.violation(&ConstraintViolation{...})`.
func (db *DB) violation(err *ConstraintViolation) error {
	db.m.violations.Inc()
	return err
}

// Registry returns the metrics registry this DB reports into — by default a
// private registry, or the one injected with WithRegistry.
func (db *DB) Registry() *obs.Registry { return db.reg }

// MetricName returns the label value this DB registers its series under.
func (db *DB) MetricName() string { return db.obsName }

// now is indirect for tests; latency histograms observe time.Since(now()).
var now = time.Now
