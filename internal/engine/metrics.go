package engine

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Stats accumulates operation and cost counters atomically, so hot-path
// accounting never takes a lock and concurrent operations never contend on
// it. Every counter is mirrored into a registry-backed series (below), so
// the same numbers are exportable through DB.Registry().
//
// Each counter has two readings: the windowed value (since the last Reset,
// what the accessor methods return) and the monotonic total (process
// lifetime, Totals). Registry series are monotonic, so they reconcile with
// Totals at any moment — even across a mid-run Reset.
type Stats struct {
	inserts, deletes, updates, lookups statCounter
	declarativeChecks, triggerFirings  statCounter
	indexLookups, tuplesScanned        statCounter
}

// statCounter is one atomic counter with a reset baseline: cum only grows
// (mirroring the registry), Reset advances base, and the windowed value is
// cum - base.
type statCounter struct{ cum, base atomic.Int64 }

func (c *statCounter) add(n int64) { c.cum.Add(n) }
func (c *statCounter) value() int  { return int(c.cum.Load() - c.base.Load()) }
func (c *statCounter) total() int  { return int(c.cum.Load()) }
func (c *statCounter) reset()      { c.base.Store(c.cum.Load()) }

// Inserts returns the insert count since the last Reset.
func (st *Stats) Inserts() int { return st.inserts.value() }

// Deletes returns the delete count since the last Reset.
func (st *Stats) Deletes() int { return st.deletes.value() }

// Updates returns the update count since the last Reset.
func (st *Stats) Updates() int { return st.updates.value() }

// Lookups returns the key-lookup count since the last Reset.
func (st *Stats) Lookups() int { return st.lookups.value() }

// DeclarativeChecks returns the NOT NULL / primary-key / foreign-key check
// count since the last Reset.
func (st *Stats) DeclarativeChecks() int { return st.declarativeChecks.value() }

// TriggerFirings returns the procedural constraint evaluation count (general
// null constraints, non-key-based inclusion dependencies) since the last
// Reset.
func (st *Stats) TriggerFirings() int { return st.triggerFirings.value() }

// IndexLookups returns the hash-index probe count since the last Reset.
func (st *Stats) IndexLookups() int { return st.indexLookups.value() }

// TuplesScanned returns the scan-visited tuple count since the last Reset.
func (st *Stats) TuplesScanned() int { return st.tuplesScanned.value() }

// Reset starts a new measurement window: the accessors return 0 until new
// operations arrive. The monotonic Totals — and the registry series behind
// them — are unaffected.
func (st *Stats) Reset() {
	st.inserts.reset()
	st.deletes.reset()
	st.updates.reset()
	st.lookups.reset()
	st.declarativeChecks.reset()
	st.triggerFirings.reset()
	st.indexLookups.reset()
	st.tuplesScanned.reset()
}

// StatsSnapshot is a point-in-time copy of the counters as plain integers.
type StatsSnapshot struct {
	Inserts           int
	Deletes           int
	Updates           int
	Lookups           int
	DeclarativeChecks int
	TriggerFirings    int
	IndexLookups      int
	TuplesScanned     int
	// VersionLSN is the LSN stamp of the published version current when the
	// snapshot was taken. Stats itself cannot see the version chain, so
	// Snapshot/Totals leave it zero; the session and server layers stamp it
	// from DB.VersionLSN() (older peers omit it on the wire — it reads zero).
	VersionLSN uint64
}

// Snapshot copies the windowed counters (since the last Reset).
func (st *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Inserts:           st.inserts.value(),
		Deletes:           st.deletes.value(),
		Updates:           st.updates.value(),
		Lookups:           st.lookups.value(),
		DeclarativeChecks: st.declarativeChecks.value(),
		TriggerFirings:    st.triggerFirings.value(),
		IndexLookups:      st.indexLookups.value(),
		TuplesScanned:     st.tuplesScanned.value(),
	}
}

// Totals copies the monotonic process-lifetime counters, which equal the
// registry series at every instant regardless of Resets — the invariant the
// relmerge -metrics reconciliation checks.
func (st *Stats) Totals() StatsSnapshot {
	return StatsSnapshot{
		Inserts:           st.inserts.total(),
		Deletes:           st.deletes.total(),
		Updates:           st.updates.total(),
		Lookups:           st.lookups.total(),
		DeclarativeChecks: st.declarativeChecks.total(),
		TriggerFirings:    st.triggerFirings.total(),
		IndexLookups:      st.indexLookups.total(),
		TuplesScanned:     st.tuplesScanned.total(),
	}
}

// Metric names registered per database. Each DB registers one series per
// name under its db=<name> label, so several engines (base vs. merged) can
// share one registry and stay distinguishable.
const (
	metricInserts        = "engine.inserts"
	metricDeletes        = "engine.deletes"
	metricUpdates        = "engine.updates"
	metricLookups        = "engine.lookups"
	metricDeclChecks     = "engine.declarative_checks"
	metricTriggerFirings = "engine.trigger_firings"
	metricIndexLookups   = "engine.index_lookups"
	metricTuplesScanned  = "engine.tuples_scanned"
	metricViolations     = "engine.constraint_violations"
	metricInsertSeconds  = "engine.insert_seconds"
	metricDeleteSeconds  = "engine.delete_seconds"
	metricUpdateSeconds  = "engine.update_seconds"
	metricLookupSeconds  = "engine.lookup_seconds"

	// MVCC read-path series (version.go): publication count and latency, the
	// LSN stamp and age of the current version, lock-free snapshot reads,
	// and write-path lock-plan acquisitions (zero delta over a read-only
	// phase = the lock-free proof the P8 suite asserts).
	metricPublishes        = "engine.mvcc.publishes"
	metricPublishSeconds   = "engine.mvcc.publish_seconds"
	metricVersionLSN       = "engine.mvcc.version_lsn"
	metricVersionAge       = "engine.mvcc.version_age_seconds"
	metricSnapshotReads    = "engine.mvcc.snapshot_reads"
	metricLockAcquisitions = "engine.lock_acquisitions"

	// Online-advisor series: co-access edge hits observed on the fetch path
	// and live schema migrations applied (MigrateSchema publishes).
	metricCoAccess   = "advisor.co_access"
	metricMigrations = "advisor.migrations"
)

// dbMetrics holds the registry-backed counter and histogram handles behind
// the Stats API. The registry series are monotonic: Stats.Reset() starts a
// new Stats window but never rewinds the registry, which records
// process-lifetime totals (= Stats.Totals()).
type dbMetrics struct {
	inserts, deletes, updates, lookups         *obs.Counter
	declChecks, triggerFirings                 *obs.Counter
	indexLookups, tuplesScanned                *obs.Counter
	violations                                 *obs.Counter
	publishes, snapshotReads, lockAcquisitions *obs.Counter
	coAccess, migrations                       *obs.Counter
	versionLSN                                 *obs.Gauge
	insertLat, deleteLat, updateLat, lookupLat *obs.Histogram
	publishLat                                 *obs.Histogram
}

func newDBMetrics(r *obs.Registry, name string) *dbMetrics {
	l := obs.L("db", name)
	return &dbMetrics{
		inserts:          r.Counter(metricInserts, l),
		deletes:          r.Counter(metricDeletes, l),
		updates:          r.Counter(metricUpdates, l),
		lookups:          r.Counter(metricLookups, l),
		declChecks:       r.Counter(metricDeclChecks, l),
		triggerFirings:   r.Counter(metricTriggerFirings, l),
		indexLookups:     r.Counter(metricIndexLookups, l),
		tuplesScanned:    r.Counter(metricTuplesScanned, l),
		violations:       r.Counter(metricViolations, l),
		publishes:        r.Counter(metricPublishes, l),
		snapshotReads:    r.Counter(metricSnapshotReads, l),
		lockAcquisitions: r.Counter(metricLockAcquisitions, l),
		coAccess:         r.Counter(metricCoAccess, l),
		migrations:       r.Counter(metricMigrations, l),
		versionLSN:       r.Gauge(metricVersionLSN, l),
		insertLat:        r.Histogram(metricInsertSeconds, obs.LatencyBuckets, l),
		deleteLat:        r.Histogram(metricDeleteSeconds, obs.LatencyBuckets, l),
		updateLat:        r.Histogram(metricUpdateSeconds, obs.LatencyBuckets, l),
		lookupLat:        r.Histogram(metricLookupSeconds, obs.LatencyBuckets, l),
		publishLat:       r.Histogram(metricPublishSeconds, obs.LatencyBuckets, l),
	}
}

// registerVersionAge registers the version-age gauge: seconds since the last
// publish, the "how stale can a freshly pinned read view be" signal. It is a
// GaugeFunc because the age advances between publishes with no event to hook.
func (m *dbMetrics) registerVersionAge(r *obs.Registry, name string, db *DB) {
	r.GaugeFunc(metricVersionAge, func() float64 {
		return now().Sub(time.Unix(0, db.lastPublish.Load())).Seconds()
	}, obs.L("db", name))
}

// The accounting helpers below are the single mutation points for the cost
// counters: each keeps the Stats counter and its registry series in
// lockstep — both atomic, so they are callable from any point of any
// operation, locked or not.

func (db *DB) countInsert() { db.Stats.inserts.add(1); db.m.inserts.Inc() }
func (db *DB) countDelete() { db.Stats.deletes.add(1); db.m.deletes.Inc() }
func (db *DB) countUpdate() { db.Stats.updates.add(1); db.m.updates.Inc() }
func (db *DB) countLookup() { db.Stats.lookups.add(1); db.m.lookups.Inc() }

func (db *DB) countDecl() { db.Stats.declarativeChecks.add(1); db.m.declChecks.Inc() }
func (db *DB) countTrig() { db.Stats.triggerFirings.add(1); db.m.triggerFirings.Inc() }
func (db *DB) countIdx()  { db.Stats.indexLookups.add(1); db.m.indexLookups.Inc() }

func (db *DB) countScan(n int) {
	db.Stats.tuplesScanned.add(int64(n))
	db.m.tuplesScanned.Add(int64(n))
}

// countSnapRead counts one lock-free snapshot-pinned read (registry only:
// the Stats window API stays wire-compatible).
func (db *DB) countSnapRead() { db.m.snapshotReads.Inc() }

// countCoAccess counts one co-access edge hit (registry only).
func (db *DB) countCoAccess() { db.m.coAccess.Inc() }

// violation counts a rejected mutation and returns the error unchanged, so
// check paths can `return db.violation(&ConstraintViolation{...})`.
func (db *DB) violation(err *ConstraintViolation) error {
	db.m.violations.Inc()
	return err
}

// Registry returns the metrics registry this DB reports into — by default a
// private registry, or the one injected with WithRegistry.
func (db *DB) Registry() *obs.Registry { return db.reg }

// MetricName returns the label value this DB registers its series under.
func (db *DB) MetricName() string { return db.obsName }

// now is indirect for tests; latency histograms observe time.Since(now()).
var now = time.Now
