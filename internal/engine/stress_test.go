// Concurrency stress tests for the engine, run as an external test package
// so they can drive the engine through the workload generators. `make
// stress` runs these fresh under the race detector.
package engine_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/workload"
)

// Scan must tolerate re-entrant reads: the callback runs on a snapshot,
// outside every table lock, so it can issue lookups — including on the
// relation being scanned. The pre-snapshot design deadlocked here (Scan held
// the table's lock while the callback tried to retake it).
func TestScanReentrantLookup(t *testing.T) {
	b, err := workload.NewBench(workload.StarEER(2), "E0", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	db, name := b.Base, b.Root
	visited := 0
	err = db.Scan(name, nil, func(tup relation.Tuple) {
		visited++
		// Re-entrant lookup on the scanned relation itself.
		if _, ok := db.GetByKey(name, tup); !ok {
			t.Errorf("scan visited a tuple GetByKey cannot find: %v", tup)
		}
		// And a re-entrant structural read.
		if db.Count(name) == 0 {
			t.Error("re-entrant Count returned 0 mid-scan")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != db.Count(name) {
		t.Errorf("scan visited %d of %d tuples", visited, db.Count(name))
	}
}

// A scan snapshot is stable even when the scanned relation is written
// mid-scan: the callback sees the tuple set as of snapshot time, and the
// write (which takes the table's write lock) still lands.
func TestScanSnapshotIsolation(t *testing.T) {
	b, err := workload.NewBench(workload.StarEER(2), "E0", 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	db, name := b.Base, b.Root
	before := db.Count(name)
	visited := 0
	err = db.Scan(name, nil, func(tup relation.Tuple) {
		if visited == 0 {
			// Insert into the scanned relation from inside the callback —
			// legal now that callbacks run lock-free, and invisible to this
			// scan's snapshot.
			fresh := relation.Tuple{relation.NewString("mid-scan")}
			if err := db.Insert(name, fresh); err != nil {
				t.Fatalf("re-entrant insert: %v", err)
			}
		}
		visited++
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != before {
		t.Errorf("scan visited %d tuples, want the snapshot's %d", visited, before)
	}
	if db.Count(name) != before+1 {
		t.Errorf("insert inside scan did not land: count=%d", db.Count(name))
	}
}

// registrySeries reads one engine's registry counter back as an int.
func registrySeries(t *testing.T, db *engine.DB, metric string) int {
	t.Helper()
	for _, p := range db.Registry().Snapshot() {
		if p.Name == metric && p.Labels["db"] == db.MetricName() {
			return int(p.Value)
		}
	}
	t.Fatalf("no %s series for db=%s", metric, db.MetricName())
	return 0
}

// The main stress test: K writer and M reader goroutines hammer the base and
// merged engines of the star and chain shapes at once — single inserts,
// batches, transactions, point lookups, scans with re-entrant reads, and
// navigational fetches — with a Stats.Reset racing in the middle. Afterwards
// the tuple counts must be exact and the monotonic Stats totals must equal
// the registry series (the reconciliation invariant), proving no operation
// was dropped or double-counted under contention.
func TestStressReadersWriters(t *testing.T) {
	const (
		writers      = 4
		readers      = 4
		opsPerWriter = 30
	)
	shapes := []struct {
		name string
		mk   func() (*workload.Bench, error)
	}{
		{"star", func() (*workload.Bench, error) { return workload.NewBench(workload.StarEER(4), "E0", 30, 3) }},
		{"chain", func() (*workload.Bench, error) { return workload.NewBench(workload.ChainEER(4), "E0", 30, 4) }},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			b, err := shape.mk()
			if err != nil {
				t.Fatal(err)
			}
			db, root := b.Base, b.Root
			before := db.Count(root)

			var wg sync.WaitGroup
			// Writers: disjoint key ranges, alternating single inserts,
			// batches, and transactional batches with one forced rollback.
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < opsPerWriter; i++ {
						key := relation.Tuple{relation.NewString(fmt.Sprintf("w%d-%d", w, i))}
						switch i % 3 {
						case 0:
							if err := db.Insert(root, key); err != nil {
								t.Errorf("writer %d insert: %v", w, err)
							}
						case 1:
							if err := db.InsertBatch(root, []relation.Tuple{key}); err != nil {
								t.Errorf("writer %d batch: %v", w, err)
							}
						default:
							// A duplicate inside the batch reverts the whole
							// batch; the retry without it must succeed.
							dup := relation.Tuple{relation.NewString(fmt.Sprintf("w%d-%d", w, i-1))}
							if err := db.InsertBatch(root, []relation.Tuple{key, dup}); err == nil {
								t.Errorf("writer %d: duplicate batch succeeded", w)
							}
							if err := db.Insert(root, key); err != nil {
								t.Errorf("writer %d retry: %v", w, err)
							}
						}
					}
				}(w)
			}
			// Readers: point lookups, scans with re-entrant lookups, and
			// navigational fetches, racing the writers.
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; i < opsPerWriter; i++ {
						key := b.Keys[(r+i)%len(b.Keys)]
						if _, ok := db.GetByKey(root, key); !ok {
							t.Errorf("reader %d: preloaded key %v vanished", r, key)
						}
						if i%5 == 0 {
							if err := db.Scan(root, nil, func(tup relation.Tuple) {
								db.GetByKey(root, tup) // re-entrant under contention
							}); err != nil {
								t.Errorf("reader %d scan: %v", r, err)
							}
						}
						if i%7 == 0 {
							if _, _, err := db.FetchWithReferences(root, key); err != nil {
								t.Errorf("reader %d fetch: %v", r, err)
							}
						}
						if i == opsPerWriter/2 && r == 0 {
							// A mid-run Reset must not disturb the Totals /
							// registry reconciliation below.
							db.Stats.Reset()
						}
					}
				}(r)
			}
			wg.Wait()

			want := before + writers*opsPerWriter
			if got := db.Count(root); got != want {
				t.Errorf("%s count: got %d, want %d", root, got, want)
			}
			totals := db.Stats.Totals()
			for metric, total := range map[string]int{
				"engine.inserts":            totals.Inserts,
				"engine.deletes":            totals.Deletes,
				"engine.updates":            totals.Updates,
				"engine.lookups":            totals.Lookups,
				"engine.declarative_checks": totals.DeclarativeChecks,
				"engine.trigger_firings":    totals.TriggerFirings,
				"engine.index_lookups":      totals.IndexLookups,
				"engine.tuples_scanned":     totals.TuplesScanned,
			} {
				if series := registrySeries(t, db, metric); series != total {
					t.Errorf("%s drifted: Stats total %d, registry %d", metric, total, series)
				}
			}
			// The windowed view was reset mid-run, so it must be behind the
			// monotonic totals.
			if snap := db.Stats.Snapshot(); snap.Inserts >= totals.Inserts {
				t.Errorf("windowed inserts %d not reset below totals %d", snap.Inserts, totals.Inserts)
			}
		})
	}
}

// Transactions racing concurrent readers: a rolled-back transaction leaves no
// trace, a committed one keeps its rows, and readers never observe a torn
// batch count while Rollback holds every table write lock.
func TestStressTxnRollback(t *testing.T) {
	b, err := workload.NewBench(workload.StarEER(3), "E0", 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	db, root := b.Base, b.Root
	before := db.Count(root)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			db.GetByKey(root, b.Keys[i%len(b.Keys)])
		}
	}()

	for i := 0; i < 10; i++ {
		commit := i%2 == 0
		err := db.RunAtomic(func() error {
			for j := 0; j < 5; j++ {
				key := relation.Tuple{relation.NewString(fmt.Sprintf("txn%d-%d", i, j))}
				if err := db.Insert(root, key); err != nil {
					return err
				}
			}
			if !commit {
				return fmt.Errorf("forced rollback")
			}
			return nil
		})
		if commit && err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
		if !commit && err == nil {
			t.Fatalf("txn %d: forced rollback did not error", i)
		}
	}
	close(stop)
	wg.Wait()

	if got, want := db.Count(root), before+5*5; got != want {
		t.Errorf("after 5 commits and 5 rollbacks: count %d, want %d", got, want)
	}
}
