package engine

import (
	"fmt"

	"repro/internal/schema"
	"repro/internal/sdl"
	"repro/internal/state"
)

// This file implements live schema migration: the engine swaps to a new
// schema — typically the merged design the online advisor selected — while
// serving traffic, with the state carried across through a caller-supplied
// transform (the η mapping of a MergedScheme).
//
// Protocol, in lock order (schemaMu → replMu → table locks → txnMu → pubMu):
//
//  1. schemaMu EXCLUSIVE — the "brief schema lock". Every mutating entry
//     point holds schemaMu shared for its duration, so once the exclusive
//     lock is held no write is in flight and none can start. Lock-free
//     readers are untouched: a pinned snapshot carries its own binding and
//     keeps answering on the old design.
//  2. Refuse open transactions and buffered replicated suffixes: a migration
//     must never land inside someone else's atomic unit.
//  3. Build the new binding (full schema validation), export the current
//     state, map it through transform, and re-validate the mapped state
//     against the NEW schema's complete constraint set (F ∪ I ∪ N). All of
//     this happens BEFORE the commit point, so any failure leaves the engine
//     exactly on the old design.
//  4. Commit point: ONE WAL schema-change record (walRecSchema) carrying the
//     new schema and the fully mapped state. Crash before it → recovery
//     replays onto the old design; crash after → recovery lands on the new
//     one. Never a mix, and no η re-derivation at recovery time.
//  5. Install the binding and publish the mapped state as one new snapshot.

// MigrateSchema swaps the engine onto schema ns, carrying the current state
// across through transform (which receives a deep-copy export of the current
// state and returns the state to install — e.g. MergedScheme.MapState). The
// swap is atomic for readers (one snapshot publish) and atomic for recovery
// (one WAL record). It refuses to run inside an open transaction or while a
// replicated transaction is buffered.
func (db *DB) MigrateSchema(ns *schema.Schema, transform func(*state.DB) (*state.DB, error)) error {
	db.schemaMu.Lock()
	defer db.schemaMu.Unlock()
	db.replMu.Lock()
	defer db.replMu.Unlock()
	db.txnMu.Lock()
	inTxn := db.inTxn.Load()
	pending := len(db.replPending)
	db.txnMu.Unlock()
	if inTxn {
		return fmt.Errorf("%w: cannot migrate schema until it commits or rolls back", ErrOpenTransaction)
	}
	if pending > 0 {
		return fmt.Errorf("%w: a replicated transaction (%d buffered ops) awaits its commit marker; cannot migrate schema until it arrives", ErrOpenTransaction, pending)
	}

	// Everything below runs with writers quiesced (they all hold schemaMu
	// shared), so the current published version IS the committed state.
	b, err := db.newBinding(ns)
	if err != nil {
		return fmt.Errorf("engine: migrate: %w", err)
	}
	cur := db.current.Load()
	st := stateOf(cur)
	mapped := st
	if transform != nil {
		mapped, err = transform(st)
		if err != nil {
			return fmt.Errorf("engine: migrate: mapping state: %w", err)
		}
	}
	// Re-validate the mapped state against the new design's full constraint
	// set before committing anything — the same discipline recovery applies.
	// A partition engine holds one hash-slice per relation, so its local
	// state cannot satisfy cross-relation inclusion dependencies on its own;
	// the router re-checks those across shards after every shard migrated.
	valSchema := ns
	if db.partition {
		sc := *ns
		sc.INDs = nil
		valSchema = &sc
	}
	if err := state.Consistent(valSchema, mapped); err != nil {
		return fmt.Errorf("engine: migrate: mapped state fails constraint validation: %w", err)
	}

	// Commit point: one self-contained WAL record. If the log refuses it,
	// nothing was installed and the engine stays on the old design.
	var lsn uint64
	if db.wal != nil {
		lsn, err = db.wal.Commit(encodeSchemaRecord(sdl.PrintSchema(ns), sdl.PrintState(ns, mapped)))
		if err != nil {
			return fmt.Errorf("engine: migrate: logging schema change: %w", err)
		}
	} else {
		lsn = db.seq.Add(1)
	}

	// Install and publish. The mapped versions build over the NEW binding's
	// empty version-zero; the single Store is the readers' cutover point.
	db.install(b)
	tables := db.versionsOf(b, mapped)
	db.pubMu.Lock()
	if lsn < cur.lsn {
		lsn = cur.lsn
	}
	db.current.Store(&dbSnapshot{lsn: lsn, tables: tables, bind: b})
	db.pubMu.Unlock()
	db.lastPublish.Store(now().UnixNano())
	db.m.publishes.Inc()
	db.m.migrations.Inc()
	db.m.versionLSN.Set(float64(lsn))
	db.lastFetch.Store("")
	return nil
}

// versionsOf builds the immutable table-version set of st under binding b
// (every prebuilt index populated), without publishing anything.
func (db *DB) versionsOf(b *binding, st *state.DB) map[string]*tableVersion {
	base := emptyVersions(b)
	tx := &writeTx{db: db, snap: &dbSnapshot{tables: base, bind: b}, work: make(map[*table]*workTable, len(b.tables)), dry: true}
	for _, t := range b.tables {
		tx.stage(t)
	}
	for name, t := range b.tables {
		r := st.Relation(name)
		if r == nil {
			continue
		}
		src := r
		if !sameAttrs(src.Attrs(), t.hdr.Attrs()) {
			src = src.Project(t.hdr.Attrs())
		}
		for _, tup := range src.Tuples() {
			tx.apply(t, tup)
		}
	}
	out := make(map[string]*tableVersion, len(b.tables))
	for t, wt := range tx.work {
		out[t.name] = &tableVersion{pk: wt.pk, sec: wt.sec}
	}
	return out
}
