package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/figures"
	"repro/internal/schema"
)

// TestPhysicalRemoveDropsEmptyBuckets is the regression test for the
// secondary-index leak: physicalRemove used to shrink a bucket to zero
// length but keep the map key, so delete/insert churn over fresh key values
// grew the index by one empty bucket per retired key, forever. The index
// must stay bounded by the live tuple count.
func TestPhysicalRemoveDropsEmptyBuckets(t *testing.T) {
	s := schema.New()
	s.AddScheme(schema.NewScheme("PARENT",
		[]schema.Attribute{{Name: "P.K", Domain: "d"}}, []string{"P.K"}))
	s.AddScheme(schema.NewScheme("CHILD",
		[]schema.Attribute{{Name: "C.K", Domain: "k"}, {Name: "C.P", Domain: "d"}},
		[]string{"C.K"}))
	s.INDs = []schema.IND{
		schema.NewIND("CHILD", []string{"C.P"}, "PARENT", []string{"P.K"}),
	}
	db, err := Open(s)
	if err != nil {
		t.Fatal(err)
	}
	const churn = 200
	for i := 0; i < churn; i++ {
		p := fmt.Sprintf("p%d", i)
		if err := db.Insert("PARENT", tup(p)); err != nil {
			t.Fatal(err)
		}
		if err := db.Insert("CHILD", tup(fmt.Sprintf("c%d", i), p)); err != nil {
			t.Fatal(err)
		}
		if err := db.Delete("CHILD", tup(fmt.Sprintf("c%d", i))); err != nil {
			t.Fatal(err)
		}
		// Deleting the parent probes CHILD's secondary index on C.P (prebuilt
		// at Open, published with every version) — the structure under test.
		if err := db.Delete("PARENT", tup(p)); err != nil {
			t.Fatal(err)
		}
	}
	idx := db.current.Load().tables["CHILD"].sec[secondaryKey([]string{"C.P"})]
	if idx == nil {
		t.Fatal("secondary index on CHILD[C.P] missing from the published version")
	}
	if idx.Len() != 0 {
		t.Fatalf("secondary index leaked %d empty buckets after %d churn cycles (want 0)", idx.Len(), churn)
	}
}

// TestOpenRejectsMalformedIND is the regression test for the orderAsKey nil
// slots: IND.KeyBased compares attribute SETS, so a right side listing a key
// attribute twice ([K1, K1, K2] against the key [K1, K2]) passes schema
// validation and registers as key-based — and orderAsKey then built a probe
// key with one correspondence silently dropped, rejecting valid foreign
// keys. Open must refuse the shape with a typed error instead.
func TestOpenRejectsMalformedIND(t *testing.T) {
	s := schema.New()
	s.AddScheme(schema.NewScheme("PARENT",
		[]schema.Attribute{
			{Name: "P.K1", Domain: "d1"},
			{Name: "P.K2", Domain: "d2"},
		},
		[]string{"P.K1", "P.K2"}))
	s.AddScheme(schema.NewScheme("CHILD",
		[]schema.Attribute{
			{Name: "C.K", Domain: "k"},
			{Name: "C.A", Domain: "d1"},
			{Name: "C.B", Domain: "d1"},
			{Name: "C.C", Domain: "d2"},
		},
		[]string{"C.K"}))
	s.INDs = []schema.IND{
		schema.NewIND("CHILD", []string{"C.A", "C.B", "C.C"},
			"PARENT", []string{"P.K1", "P.K1", "P.K2"}),
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("schema validation should admit the set-equal shape (the bug's precondition): %v", err)
	}
	if !s.INDs[0].KeyBased(s) {
		t.Fatal("IND should register as key-based under set comparison")
	}
	_, err := Open(s)
	if !errors.Is(err, ErrMalformedIND) {
		t.Fatalf("Open = %v, want ErrMalformedIND", err)
	}
	// A right side that is a genuine permutation of the key must still open.
	s.INDs = []schema.IND{
		schema.NewIND("CHILD", []string{"C.C", "C.A"},
			"PARENT", []string{"P.K2", "P.K1"}),
	}
	if _, err := Open(s); err != nil {
		t.Fatalf("permuted-key IND rejected: %v", err)
	}
}

// TestRollbackNoTxnSkipsLocks is the regression test for the Rollback
// stall: with no open transaction Rollback used to acquire the all-tables
// write lock set before discovering there was nothing to do. It must now
// return without touching a single table lock — asserted by holding one
// table's write lock while calling it.
func TestRollbackNoTxnSkipsLocks(t *testing.T) {
	db := openFig3(t)
	tab := db.tables["COURSE"]
	tab.mu.Lock()
	defer tab.mu.Unlock()
	done := make(chan error, 1)
	go func() { done <- db.Rollback() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Rollback without a transaction returned nil")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Rollback blocked on table locks despite no open transaction")
	}
}

// TestRollbackNoTxnConcurrentReaders hammers no-transaction Rollback
// alongside readers and a writer under the race detector: the fast path must
// neither stall the readers nor race the transaction state.
func TestRollbackNoTxnConcurrentReaders(t *testing.T) {
	db := openFig3(t)
	if err := db.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, ok := db.GetByKey("COURSE", tup("c1")); !ok {
					t.Error("seeded tuple vanished")
					return
				}
			}
		}()
	}
	// One writer cycling real transactions, so Rollback's advisory fast
	// path races against genuine open-transaction windows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Begin(); err != nil {
				continue
			}
			db.Insert("PERSON", tup(fmt.Sprintf("txn-%d", i)))
			db.Rollback()
		}
	}()
	for i := 0; i < 2000; i++ {
		// Errors are expected (usually no transaction is open); what matters
		// is that the calls neither stall nor trip the race detector.
		db.Rollback()
	}
	close(stop)
	wg.Wait()
}
