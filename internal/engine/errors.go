package engine

import (
	"errors"
	"fmt"
)

// Sentinel errors for the engine's non-constraint failure modes. They are
// wrapped with operation context, so match with errors.Is.
var (
	// ErrUnknownRelation reports an operation against a relation the schema
	// does not define.
	ErrUnknownRelation = errors.New("engine: unknown relation")
	// ErrNoSuchTuple reports a key lookup that matched nothing where a match
	// was required (Delete, Update).
	ErrNoSuchTuple = errors.New("engine: no tuple with the given key")
	// ErrArityMismatch reports a tuple whose width differs from the scheme's.
	ErrArityMismatch = errors.New("engine: arity mismatch")
	// ErrConstraintViolation is the errors.Is target matched by every
	// *ConstraintViolation, regardless of kind.
	ErrConstraintViolation = errors.New("engine: constraint violation")
	// ErrMalformedIND reports a key-based inclusion dependency whose
	// right-side attribute list is not a permutation of the referenced
	// scheme's primary key, so its foreign-key probe could never be encoded
	// correctly. Detected at Open.
	ErrMalformedIND = errors.New("engine: malformed inclusion dependency")
	// ErrNotDurable reports a durability operation (Checkpoint) on an engine
	// opened without WithDurability.
	ErrNotDurable = errors.New("engine: not opened with durability")
	// ErrOpenTransaction reports a Checkpoint attempted while a transaction
	// is open: its pre-checkpoint mutations would be baked into the snapshot
	// with no way to replay a later rollback.
	ErrOpenTransaction = errors.New("engine: transaction open")
	// ErrRecovery reports that crash recovery could not reconstruct a state
	// that decodes, loads, and passes full constraint re-validation.
	ErrRecovery = errors.New("engine: recovery failed")
)

// ViolationKind distinguishes the constraint regimes of section 5.1: the
// first three are declaratively maintainable on 1992-era systems, the last
// two need trigger/rule machinery.
type ViolationKind int

const (
	// NotNullViolation: a nulls-not-allowed attribute received a null.
	NotNullViolation ViolationKind = iota + 1
	// PrimaryKeyViolation: duplicate primary key.
	PrimaryKeyViolation
	// ForeignKeyViolation: a key-based inclusion dependency has no match in
	// the referenced relation.
	ForeignKeyViolation
	// NullConstraintViolation: a general (procedural) null constraint failed.
	NullConstraintViolation
	// RestrictViolation: a delete/update on the referenced side would orphan
	// a referencing tuple.
	RestrictViolation
)

// String names the kind.
func (k ViolationKind) String() string {
	switch k {
	case NotNullViolation:
		return "not-null"
	case PrimaryKeyViolation:
		return "primary-key"
	case ForeignKeyViolation:
		return "foreign-key"
	case NullConstraintViolation:
		return "null-constraint"
	case RestrictViolation:
		return "restrict"
	default:
		return "unknown"
	}
}

// Declarative reports whether the violated constraint belongs to the
// declarative regime (checked by the DBMS itself) rather than the
// trigger/rule regime.
func (k ViolationKind) Declarative() bool {
	switch k {
	case NotNullViolation, PrimaryKeyViolation, ForeignKeyViolation:
		return true
	default:
		return false
	}
}

// ConstraintViolation is the typed error returned when a mutation violates a
// schema constraint. It matches ErrConstraintViolation under errors.Is and is
// extractable with errors.As for structured inspection.
type ConstraintViolation struct {
	// Kind classifies the violated constraint.
	Kind ViolationKind
	// Relation is the relation being modified.
	Relation string
	// Attr names the offending attribute (NotNullViolation only).
	Attr string
	// Constraint is the violated constraint rendered in the paper's notation
	// (inclusion dependencies and null constraints).
	Constraint string
	// Op is the mutating operation: "insert", "delete", or "update".
	Op string
}

// Error renders the violation in the engine's historical message format.
func (e *ConstraintViolation) Error() string {
	switch e.Kind {
	case NotNullViolation:
		return fmt.Sprintf("engine: %s.%s violates NOT NULL", e.Relation, e.Attr)
	case PrimaryKeyViolation:
		return fmt.Sprintf("engine: duplicate primary key in %s", e.Relation)
	case RestrictViolation:
		prep := "from"
		if e.Op == "update" {
			prep = "of"
		}
		return fmt.Sprintf("engine: %s %s %s restricted by %s", e.Op, prep, e.Relation, e.Constraint)
	default:
		return fmt.Sprintf("engine: %s violates %s", e.Relation, e.Constraint)
	}
}

// Is matches the generic ErrConstraintViolation sentinel.
func (e *ConstraintViolation) Is(target error) bool {
	return target == ErrConstraintViolation
}
