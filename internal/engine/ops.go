package engine

import (
	"context"
	"fmt"

	"repro/internal/relation"
	"repro/internal/state"
)

// GetByKey returns the tuple of the named relation with the given primary
// key value (in primary-key attribute order), or false.
func (db *DB) GetByKey(name string, key relation.Tuple) (relation.Tuple, bool) {
	start := now()
	db.mu.Lock()
	defer db.mu.Unlock()
	defer db.m.lookupLat.ObserveSince(start)
	t := db.tables[name]
	if t == nil {
		return nil, false
	}
	db.countLookup()
	db.countIdx()
	tup, ok := t.pk[key.EncodeKey()]
	return tup, ok
}

// Scan visits every tuple of the relation satisfying the predicate,
// accounting each visited tuple.
func (db *DB) Scan(name string, pred func(relation.Tuple) bool, visit func(relation.Tuple)) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.tables[name]
	if t == nil {
		return fmt.Errorf("%w %s", ErrUnknownRelation, name)
	}
	for _, tup := range t.rel.Tuples() {
		db.countScan(1)
		if pred == nil || pred(tup) {
			visit(tup)
		}
	}
	return nil
}

// Delete removes the tuple with the given primary key, enforcing referential
// integrity on the referenced side: any inclusion dependency pointing at
// this relation restricts the delete when a referencing tuple exists
// (a trigger-style check; key-based dependencies probe the referencing
// relation's secondary index, which may require a one-time build scan).
func (db *DB) Delete(name string, key relation.Tuple) error {
	return db.DeleteCtx(context.Background(), name, key)
}

// DeleteCtx is Delete with cancellation: a context already cancelled when
// the operation starts aborts it before any state change.
func (db *DB) DeleteCtx(ctx context.Context, name string, key relation.Tuple) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	start := now()
	db.mu.Lock()
	defer db.mu.Unlock()
	defer db.m.deleteLat.ObserveSince(start)
	t := db.tables[name]
	if t == nil {
		return fmt.Errorf("%w %s", ErrUnknownRelation, name)
	}
	tup, ok := t.pk[key.EncodeKey()]
	if !ok {
		return fmt.Errorf("%w: no %s tuple with key %v", ErrNoSuchTuple, name, key)
	}
	for _, ind := range db.indsInto[name] {
		db.countTrig()
		referenced := projectAttrs(t, tup, ind.RightAttrs)
		if !referenced.IsTotal() {
			continue
		}
		src := db.tables[ind.Left]
		idx := db.secondaryIndex(src, ind.LeftAttrs)
		db.countIdx()
		for _, ref := range idx[referenced.EncodeKey()] {
			if src.rel.Contains(ref) {
				return db.violation(&ConstraintViolation{Kind: RestrictViolation, Relation: name, Constraint: ind.String(), Op: "delete"})
			}
		}
	}
	db.remove(t, tup)
	db.countDelete()
	return nil
}

// Update replaces the tuple with the given primary key by the new tuple
// (which may change the key), enforcing the same constraints as
// Delete+Insert without intermediate visibility.
func (db *DB) Update(name string, key relation.Tuple, newTup relation.Tuple) error {
	return db.UpdateCtx(context.Background(), name, key, newTup)
}

// UpdateCtx is Update with cancellation: a context already cancelled when
// the operation starts aborts it before any state change.
func (db *DB) UpdateCtx(ctx context.Context, name string, key relation.Tuple, newTup relation.Tuple) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	start := now()
	db.mu.Lock()
	defer db.mu.Unlock()
	defer db.m.updateLat.ObserveSince(start)
	t := db.tables[name]
	if t == nil {
		return fmt.Errorf("%w %s", ErrUnknownRelation, name)
	}
	old, ok := t.pk[key.EncodeKey()]
	if !ok {
		return fmt.Errorf("%w: no %s tuple with key %v", ErrNoSuchTuple, name, key)
	}
	// Remove, try to insert, roll back on failure.
	db.remove(t, old)
	if err := db.checkDeclarative(t, newTup); err != nil {
		db.apply(t, old)
		return err
	}
	if err := db.fireInsertTriggers(t, newTup); err != nil {
		db.apply(t, old)
		return err
	}
	// Referenced-side integrity for the vanishing old values.
	for _, ind := range db.indsInto[name] {
		db.countTrig()
		oldRef := projectAttrs(t, old, ind.RightAttrs)
		newRef := projectAttrs(t, newTup, ind.RightAttrs)
		if !oldRef.IsTotal() || oldRef.Identical(newRef) {
			continue
		}
		src := db.tables[ind.Left]
		idx := db.secondaryIndex(src, ind.LeftAttrs)
		db.countIdx()
		if len(idx[oldRef.EncodeKey()]) > 0 {
			stillReferenced := false
			for _, ref := range idx[oldRef.EncodeKey()] {
				if src.rel.Contains(ref) {
					stillReferenced = true
					break
				}
			}
			if stillReferenced {
				db.apply(t, old)
				return db.violation(&ConstraintViolation{Kind: RestrictViolation, Relation: name, Constraint: ind.String(), Op: "update"})
			}
		}
	}
	db.apply(t, newTup)
	db.countUpdate()
	return nil
}

func (db *DB) remove(t *table, tup relation.Tuple) {
	if db.inTxn {
		db.undo = append(db.undo, undoOp{table: t, tuple: tup})
	}
	db.physicalRemove(t, tup)
}

// physicalRemove mutates the table without undo logging.
func (db *DB) physicalRemove(t *table, tup relation.Tuple) {
	t.rel.Remove(tup)
	delete(t.pk, t.keyOfIncoming(tup))
	for key, idx := range t.secondary {
		attrs := splitSecondary(key)
		sub := projectAttrs(t, tup, attrs)
		if !sub.IsTotal() {
			continue
		}
		bucket := idx[sub.EncodeKey()]
		for i, cand := range bucket {
			if cand.Identical(tup) {
				bucket[i] = bucket[len(bucket)-1]
				idx[sub.EncodeKey()] = bucket[:len(bucket)-1]
				break
			}
		}
	}
}

// Load bulk-inserts a consistent database state, relation by relation in an
// order that respects inclusion dependencies. It fails on the first
// violation.
func (db *DB) Load(st *state.DB) error {
	return db.LoadCtx(context.Background(), st)
}

// LoadCtx is Load with cancellation, checked between relations so a large
// bulk load can be abandoned at a consistent prefix.
func (db *DB) LoadCtx(ctx context.Context, st *state.DB) error {
	order, err := db.loadOrder()
	if err != nil {
		return err
	}
	for _, name := range order {
		if err := ctx.Err(); err != nil {
			return err
		}
		r := st.Relation(name)
		if r == nil {
			continue
		}
		src := r
		// Reorder columns if needed.
		if !sameAttrs(src.Attrs(), db.tables[name].rel.Attrs()) {
			src = src.Project(db.tables[name].rel.Attrs())
		}
		for _, tup := range src.Tuples() {
			if err := db.Insert(name, tup); err != nil {
				return fmt.Errorf("engine: loading %s: %w", name, err)
			}
		}
	}
	return nil
}

// loadOrder topologically orders relations so referenced relations load
// before referencing ones (cycles rejected).
func (db *DB) loadOrder() ([]string, error) {
	deg := make(map[string]int, len(db.Schema.Relations))
	succ := make(map[string][]string)
	for _, rs := range db.Schema.Relations {
		deg[rs.Name] = 0
	}
	for _, ind := range db.Schema.INDs {
		if ind.Left == ind.Right {
			continue
		}
		succ[ind.Right] = append(succ[ind.Right], ind.Left)
		deg[ind.Left]++
	}
	var queue, order []string
	for _, rs := range db.Schema.Relations {
		if deg[rs.Name] == 0 {
			queue = append(queue, rs.Name)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, m := range succ[n] {
			if deg[m]--; deg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if len(order) != len(db.Schema.Relations) {
		return nil, fmt.Errorf("engine: cyclic inclusion dependencies; cannot bulk-load")
	}
	return order, nil
}

func sameAttrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Snapshot exports the current contents as a state.DB (deep copy).
func (db *DB) Snapshot() *state.DB {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := &state.DB{Relations: make(map[string]*relation.Relation, len(db.tables))}
	for name, t := range db.tables {
		out.Set(name, t.rel.Clone())
	}
	return out
}
