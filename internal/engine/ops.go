package engine

import (
	"context"
	"fmt"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/state"
)

// GetByKey returns the tuple of the named relation with the given primary
// key value (in primary-key attribute order), or false. The lookup pins the
// current published version with one atomic load and takes no locks, so it
// never contends with writers or other readers.
func (db *DB) GetByKey(name string, key relation.Tuple) (relation.Tuple, bool) {
	tup, ok, err := db.GetByKeyCtx(context.Background(), name, key)
	if err != nil {
		return nil, false
	}
	return tup, ok
}

// GetByKeyCtx is GetByKey with cancellation and a typed error for unknown
// relations. The read is lock-free (it cannot queue behind a writer), so
// cancellation is checked once at entry.
func (db *DB) GetByKeyCtx(ctx context.Context, name string, key relation.Tuple) (relation.Tuple, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	start := now()
	tup, ok, err := db.getAt(db.current.Load(), name, key)
	if err != nil {
		return nil, false, err
	}
	db.m.lookupLat.ObserveSince(start)
	return tup, ok, nil
}

// Scan visits every tuple of the relation satisfying the predicate,
// accounting each visited tuple. The scan pins one published version and
// never takes a lock: it observes a batch's effects either completely or not
// at all (snapshot semantics — a concurrent ApplyBatchCtx publishing
// mid-scan is invisible), and the callbacks run against immutable data, so
// they may re-enter the DB freely, even with mutations. Mutations made after
// the version was pinned are not visible to the scan. Iteration order is
// unspecified.
func (db *DB) Scan(name string, pred func(relation.Tuple) bool, visit func(relation.Tuple)) error {
	return db.scanAt(db.current.Load(), name, pred, visit)
}

// Delete removes the tuple with the given primary key, enforcing referential
// integrity on the referenced side: any inclusion dependency pointing at
// this relation restricts the delete when a referencing tuple exists (a
// trigger-style probe of the referencing relation's prebuilt secondary
// index).
func (db *DB) Delete(name string, key relation.Tuple) error {
	return db.DeleteCtx(context.Background(), name, key)
}

// DeleteCtx is Delete with cancellation: a context already cancelled when
// the operation starts aborts it before any state change.
func (db *DB) DeleteCtx(ctx context.Context, name string, key relation.Tuple) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	db.schemaMu.RLock()
	defer db.schemaMu.RUnlock()
	start := now()
	t := db.tables[name]
	if t == nil {
		return fmt.Errorf("%w %s", ErrUnknownRelation, name)
	}
	ls := db.lm.remove[name]
	db.acquire(ls)
	defer ls.release()
	// Re-check after acquisition: a deadline that expired while this op was
	// queued behind a contended lock plan must not still commit.
	if err := ctx.Err(); err != nil {
		return err
	}
	defer db.m.deleteLat.ObserveSince(start)
	db.simAccess()
	tx := db.beginWrite()
	var eff effects
	if err := db.deleteLocked(tx, t, key, &eff); err != nil {
		return err
	}
	return db.commitEffects(tx, eff)
}

// deleteLocked checks and stages one delete, assuming the delete lock set
// of t is held.
func (db *DB) deleteLocked(tx *writeTx, t *table, key relation.Tuple, eff *effects) error {
	name := t.rs.Name
	tup, ok := tx.pkGet(t, key.EncodeKey())
	if !ok {
		return fmt.Errorf("%w: no %s tuple with key %v", ErrNoSuchTuple, name, key)
	}
	for _, ind := range db.indsInto[name] {
		tx.countTrig()
		referenced := projectAttrs(t, tup, ind.RightAttrs)
		if !referenced.IsTotal() {
			continue
		}
		tx.countIdx()
		if len(tx.bucket(db.tables[ind.Left], secondaryKey(ind.LeftAttrs), referenced.EncodeKey())) > 0 {
			return db.violation(&ConstraintViolation{Kind: RestrictViolation, Relation: name, Constraint: ind.String(), Op: "delete"})
		}
		// An empty local bucket is not authoritative on a partition engine:
		// a referencing tuple may live in another shard.
		hit, err := db.probeReferencing(ind, referenced.EncodeKey())
		if err != nil {
			return err
		}
		if hit {
			return db.violation(&ConstraintViolation{Kind: RestrictViolation, Relation: name, Constraint: ind.String(), Op: "delete"})
		}
	}
	eff.remove(tx, t, tup)
	tx.countDelete()
	return nil
}

// Update replaces the tuple with the given primary key by the new tuple
// (which may change the key), enforcing the same constraints as
// Delete+Insert without intermediate visibility.
func (db *DB) Update(name string, key relation.Tuple, newTup relation.Tuple) error {
	return db.UpdateCtx(context.Background(), name, key, newTup)
}

// UpdateCtx is Update with cancellation: a context already cancelled when
// the operation starts aborts it before any state change.
func (db *DB) UpdateCtx(ctx context.Context, name string, key relation.Tuple, newTup relation.Tuple) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	db.schemaMu.RLock()
	defer db.schemaMu.RUnlock()
	start := now()
	t := db.tables[name]
	if t == nil {
		return fmt.Errorf("%w %s", ErrUnknownRelation, name)
	}
	ls := db.lm.update[name]
	db.acquire(ls)
	defer ls.release()
	// Re-check after acquisition (see InsertCtx).
	if err := ctx.Err(); err != nil {
		return err
	}
	defer db.m.updateLat.ObserveSince(start)
	db.simAccess()
	tx := db.beginWrite()
	var eff effects
	if err := db.updateLocked(tx, t, key, newTup, &eff); err != nil {
		return err
	}
	return db.commitEffects(tx, eff)
}

// updateLocked checks and stages one update, assuming the update lock set of
// t is held. The old tuple's staged removal precedes the checks, so the new
// tuple validates against a view without it (a key-preserving update cannot
// trip the PK check on its own old row); a violation drops the whole staged
// transaction.
func (db *DB) updateLocked(tx *writeTx, t *table, key, newTup relation.Tuple, eff *effects) error {
	name := t.rs.Name
	old, ok := tx.pkGet(t, key.EncodeKey())
	if !ok {
		return fmt.Errorf("%w: no %s tuple with key %v", ErrNoSuchTuple, name, key)
	}
	eff.remove(tx, t, old)
	if err := db.checkDeclarative(tx, t, newTup); err != nil {
		return err
	}
	if err := db.fireInsertTriggers(tx, t, newTup); err != nil {
		return err
	}
	// Referenced-side integrity for the vanishing old values.
	for _, ind := range db.indsInto[name] {
		tx.countTrig()
		oldRef := projectAttrs(t, old, ind.RightAttrs)
		newRef := projectAttrs(t, newTup, ind.RightAttrs)
		if !oldRef.IsTotal() || oldRef.Identical(newRef) {
			continue
		}
		tx.countIdx()
		if len(tx.bucket(db.tables[ind.Left], secondaryKey(ind.LeftAttrs), oldRef.EncodeKey())) > 0 {
			return db.violation(&ConstraintViolation{Kind: RestrictViolation, Relation: name, Constraint: ind.String(), Op: "update"})
		}
		hit, err := db.probeReferencing(ind, oldRef.EncodeKey())
		if err != nil {
			return err
		}
		if hit {
			return db.violation(&ConstraintViolation{Kind: RestrictViolation, Relation: name, Constraint: ind.String(), Op: "update"})
		}
	}
	eff.apply(tx, t, newTup)
	tx.countUpdate()
	return nil
}

// Load bulk-inserts a consistent database state, relation by relation in an
// order that respects inclusion dependencies. Each relation loads as one
// atomic batch (InsertBatch): a violation rolls the offending relation back
// and stops the load at a relation boundary.
func (db *DB) Load(st *state.DB) error {
	return db.LoadCtx(context.Background(), st)
}

// LoadCtx is Load with cancellation, checked between relations so a large
// bulk load can be abandoned at a consistent prefix.
func (db *DB) LoadCtx(ctx context.Context, st *state.DB) error {
	// Pin one binding for the read-only planning; each InsertBatchCtx takes
	// the schema read lock itself (holding it across the whole load would
	// block a concurrent migration for the load's full duration — and a
	// waiting writer would deadlock a re-entrant read lock).
	bind := db.current.Load().bind
	order, err := loadOrder(bind.schema)
	if err != nil {
		return err
	}
	for _, name := range order {
		if err := ctx.Err(); err != nil {
			return err
		}
		r := st.Relation(name)
		if r == nil {
			continue
		}
		src := r
		// Reorder columns if needed.
		if !sameAttrs(src.Attrs(), bind.tables[name].hdr.Attrs()) {
			src = src.Project(bind.tables[name].hdr.Attrs())
		}
		if err := db.InsertBatchCtx(ctx, name, src.Tuples()); err != nil {
			return fmt.Errorf("engine: loading %s: %w", name, err)
		}
	}
	return nil
}

// loadOrder topologically orders relations so referenced relations load
// before referencing ones (cycles rejected).
func loadOrder(s *schema.Schema) ([]string, error) {
	deg := make(map[string]int, len(s.Relations))
	succ := make(map[string][]string)
	for _, rs := range s.Relations {
		deg[rs.Name] = 0
	}
	for _, ind := range s.INDs {
		if ind.Left == ind.Right {
			continue
		}
		succ[ind.Right] = append(succ[ind.Right], ind.Left)
		deg[ind.Left]++
	}
	var queue, order []string
	for _, rs := range s.Relations {
		if deg[rs.Name] == 0 {
			queue = append(queue, rs.Name)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, m := range succ[n] {
			if deg[m]--; deg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if len(order) != len(s.Relations) {
		return nil, fmt.Errorf("engine: cyclic inclusion dependencies; cannot bulk-load")
	}
	return order, nil
}

func sameAttrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Snapshot exports the current contents as a state.DB (deep copy). It pins
// one published version, so it is consistent across relations without
// taking any lock — a snapshot taken mid-batch contains either all of the
// batch or none of it.
func (db *DB) Snapshot() *state.DB {
	return stateOf(db.current.Load())
}

// stateOf materializes one pinned version as a state.DB (deep copy). Names
// and headers resolve through the snapshot's own binding, so the export is
// correct even for a version pinned before a live schema migration.
func stateOf(snap *dbSnapshot) *state.DB {
	tables := snap.bind.tables
	out := &state.DB{Relations: make(map[string]*relation.Relation, len(tables))}
	for name, t := range tables {
		r := relation.New(t.hdr.Attrs()...)
		snap.tables[name].pk.Range(func(_ string, tup relation.Tuple) bool {
			r.Add(tup.Clone())
			return true
		})
		out.Set(name, r)
	}
	return out
}
