package engine

import (
	"context"
	"fmt"

	"repro/internal/relation"
	"repro/internal/state"
)

// GetByKey returns the tuple of the named relation with the given primary
// key value (in primary-key attribute order), or false. Only the one
// table's read lock is taken, so lookups on distinct relations never
// contend and concurrent lookups on the same relation run in parallel.
func (db *DB) GetByKey(name string, key relation.Tuple) (relation.Tuple, bool) {
	tup, ok, err := db.GetByKeyCtx(context.Background(), name, key)
	if err != nil {
		return nil, false
	}
	return tup, ok
}

// GetByKeyCtx is GetByKey with cancellation and a typed error for unknown
// relations: cancellation is checked both at entry and after the read lock is
// acquired, so a lookup whose deadline expired while queued behind a writer
// fails instead of paying the (simulated) page access.
func (db *DB) GetByKeyCtx(ctx context.Context, name string, key relation.Tuple) (relation.Tuple, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	start := now()
	t := db.tables[name]
	if t == nil {
		return nil, false, fmt.Errorf("%w %s", ErrUnknownRelation, name)
	}
	ek := key.EncodeKey()
	t.mu.RLock()
	if err := ctx.Err(); err != nil {
		t.mu.RUnlock()
		return nil, false, err
	}
	db.simAccess()
	tup, ok := t.pk[ek]
	t.mu.RUnlock()
	db.countLookup()
	db.countIdx()
	db.m.lookupLat.ObserveSince(start)
	return tup, ok, nil
}

// Scan visits every tuple of the relation satisfying the predicate,
// accounting each visited tuple. The tuple list is snapshotted under the
// read lock and the callbacks run outside any lock, so a callback may
// re-enter the DB (even with mutations) without deadlocking; mutations made
// after the snapshot are not visible to the scan.
func (db *DB) Scan(name string, pred func(relation.Tuple) bool, visit func(relation.Tuple)) error {
	t := db.tables[name]
	if t == nil {
		return fmt.Errorf("%w %s", ErrUnknownRelation, name)
	}
	t.mu.RLock()
	db.simAccess()
	tuples := append([]relation.Tuple(nil), t.rel.Tuples()...)
	t.mu.RUnlock()
	db.countScan(len(tuples))
	for _, tup := range tuples {
		if pred == nil || pred(tup) {
			visit(tup)
		}
	}
	return nil
}

// Delete removes the tuple with the given primary key, enforcing referential
// integrity on the referenced side: any inclusion dependency pointing at
// this relation restricts the delete when a referencing tuple exists
// (a trigger-style check; key-based dependencies probe the referencing
// relation's secondary index, which may require a one-time build scan).
func (db *DB) Delete(name string, key relation.Tuple) error {
	return db.DeleteCtx(context.Background(), name, key)
}

// DeleteCtx is Delete with cancellation: a context already cancelled when
// the operation starts aborts it before any state change.
func (db *DB) DeleteCtx(ctx context.Context, name string, key relation.Tuple) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	start := now()
	t := db.tables[name]
	if t == nil {
		return fmt.Errorf("%w %s", ErrUnknownRelation, name)
	}
	ls := db.lm.remove[name]
	ls.acquire()
	defer ls.release()
	// Re-check after acquisition: a deadline that expired while this op was
	// queued behind a contended lock plan must not still commit.
	if err := ctx.Err(); err != nil {
		return err
	}
	defer db.m.deleteLat.ObserveSince(start)
	db.simAccess()
	var eff effects
	if err := db.deleteLocked(t, key, &eff); err != nil {
		eff.revert(db)
		return err
	}
	if err := db.commitEffects(eff); err != nil {
		eff.revert(db)
		return err
	}
	return nil
}

// deleteLocked checks and performs one delete, assuming the delete lock set
// of t is held.
func (db *DB) deleteLocked(t *table, key relation.Tuple, eff *effects) error {
	name := t.rs.Name
	tup, ok := t.pk[key.EncodeKey()]
	if !ok {
		return fmt.Errorf("%w: no %s tuple with key %v", ErrNoSuchTuple, name, key)
	}
	for _, ind := range db.indsInto[name] {
		db.countTrig()
		referenced := projectAttrs(t, tup, ind.RightAttrs)
		if !referenced.IsTotal() {
			continue
		}
		src := db.tables[ind.Left]
		idx := db.secondaryIndex(src, ind.LeftAttrs)
		db.countIdx()
		for _, ref := range idx[referenced.EncodeKey()] {
			if src.rel.Contains(ref) {
				return db.violation(&ConstraintViolation{Kind: RestrictViolation, Relation: name, Constraint: ind.String(), Op: "delete"})
			}
		}
	}
	eff.remove(db, t, tup)
	db.countDelete()
	return nil
}

// Update replaces the tuple with the given primary key by the new tuple
// (which may change the key), enforcing the same constraints as
// Delete+Insert without intermediate visibility.
func (db *DB) Update(name string, key relation.Tuple, newTup relation.Tuple) error {
	return db.UpdateCtx(context.Background(), name, key, newTup)
}

// UpdateCtx is Update with cancellation: a context already cancelled when
// the operation starts aborts it before any state change.
func (db *DB) UpdateCtx(ctx context.Context, name string, key relation.Tuple, newTup relation.Tuple) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	start := now()
	t := db.tables[name]
	if t == nil {
		return fmt.Errorf("%w %s", ErrUnknownRelation, name)
	}
	ls := db.lm.update[name]
	ls.acquire()
	defer ls.release()
	// Re-check after acquisition (see InsertCtx).
	if err := ctx.Err(); err != nil {
		return err
	}
	defer db.m.updateLat.ObserveSince(start)
	db.simAccess()
	var eff effects
	if err := db.updateLocked(t, key, newTup, &eff); err != nil {
		eff.revert(db)
		return err
	}
	if err := db.commitEffects(eff); err != nil {
		eff.revert(db)
		return err
	}
	return nil
}

// updateLocked checks and performs one update, assuming the update lock set
// of t is held. On error the caller reverts eff, restoring the old tuple.
func (db *DB) updateLocked(t *table, key, newTup relation.Tuple, eff *effects) error {
	name := t.rs.Name
	old, ok := t.pk[key.EncodeKey()]
	if !ok {
		return fmt.Errorf("%w: no %s tuple with key %v", ErrNoSuchTuple, name, key)
	}
	// Remove, try to insert; the caller reverts (re-applying old) on failure.
	eff.remove(db, t, old)
	if err := db.checkDeclarative(t, newTup); err != nil {
		return err
	}
	if err := db.fireInsertTriggers(t, newTup); err != nil {
		return err
	}
	// Referenced-side integrity for the vanishing old values.
	for _, ind := range db.indsInto[name] {
		db.countTrig()
		oldRef := projectAttrs(t, old, ind.RightAttrs)
		newRef := projectAttrs(t, newTup, ind.RightAttrs)
		if !oldRef.IsTotal() || oldRef.Identical(newRef) {
			continue
		}
		src := db.tables[ind.Left]
		idx := db.secondaryIndex(src, ind.LeftAttrs)
		db.countIdx()
		if len(idx[oldRef.EncodeKey()]) > 0 {
			stillReferenced := false
			for _, ref := range idx[oldRef.EncodeKey()] {
				if src.rel.Contains(ref) {
					stillReferenced = true
					break
				}
			}
			if stillReferenced {
				return db.violation(&ConstraintViolation{Kind: RestrictViolation, Relation: name, Constraint: ind.String(), Op: "update"})
			}
		}
	}
	eff.apply(db, t, newTup)
	db.countUpdate()
	return nil
}

// physicalRemove mutates the table without undo bookkeeping. The caller must
// hold t's write lock.
func (db *DB) physicalRemove(t *table, tup relation.Tuple) {
	t.rel.Remove(tup)
	delete(t.pk, t.keyOfIncoming(tup))
	for key, idx := range t.secondary {
		attrs := splitSecondary(key)
		sub := projectAttrs(t, tup, attrs)
		if !sub.IsTotal() {
			continue
		}
		ek := sub.EncodeKey()
		bucket := idx[ek]
		for i, cand := range bucket {
			if cand.Identical(tup) {
				bucket[i] = bucket[len(bucket)-1]
				if len(bucket) == 1 {
					// Drop emptied buckets: delete/insert churn over fresh
					// keys would otherwise grow the index by one empty slice
					// per retired key, forever.
					delete(idx, ek)
				} else {
					idx[ek] = bucket[:len(bucket)-1]
				}
				break
			}
		}
	}
}

// Load bulk-inserts a consistent database state, relation by relation in an
// order that respects inclusion dependencies. Each relation loads as one
// atomic batch (InsertBatch): a violation rolls the offending relation back
// and stops the load at a relation boundary.
func (db *DB) Load(st *state.DB) error {
	return db.LoadCtx(context.Background(), st)
}

// LoadCtx is Load with cancellation, checked between relations so a large
// bulk load can be abandoned at a consistent prefix.
func (db *DB) LoadCtx(ctx context.Context, st *state.DB) error {
	order, err := db.loadOrder()
	if err != nil {
		return err
	}
	for _, name := range order {
		if err := ctx.Err(); err != nil {
			return err
		}
		r := st.Relation(name)
		if r == nil {
			continue
		}
		src := r
		// Reorder columns if needed.
		if !sameAttrs(src.Attrs(), db.tables[name].rel.Attrs()) {
			src = src.Project(db.tables[name].rel.Attrs())
		}
		if err := db.InsertBatchCtx(ctx, name, src.Tuples()); err != nil {
			return fmt.Errorf("engine: loading %s: %w", name, err)
		}
	}
	return nil
}

// loadOrder topologically orders relations so referenced relations load
// before referencing ones (cycles rejected).
func (db *DB) loadOrder() ([]string, error) {
	deg := make(map[string]int, len(db.Schema.Relations))
	succ := make(map[string][]string)
	for _, rs := range db.Schema.Relations {
		deg[rs.Name] = 0
	}
	for _, ind := range db.Schema.INDs {
		if ind.Left == ind.Right {
			continue
		}
		succ[ind.Right] = append(succ[ind.Right], ind.Left)
		deg[ind.Left]++
	}
	var queue, order []string
	for _, rs := range db.Schema.Relations {
		if deg[rs.Name] == 0 {
			queue = append(queue, rs.Name)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, m := range succ[n] {
			if deg[m]--; deg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if len(order) != len(db.Schema.Relations) {
		return nil, fmt.Errorf("engine: cyclic inclusion dependencies; cannot bulk-load")
	}
	return order, nil
}

func sameAttrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Snapshot exports the current contents as a state.DB (deep copy), taken
// under every table's read lock so it is consistent across relations.
func (db *DB) Snapshot() *state.DB {
	ls := db.lm.allRead()
	ls.acquire()
	defer ls.release()
	out := &state.DB{Relations: make(map[string]*relation.Relation, len(db.tables))}
	for name, t := range db.tables {
		out.Set(name, t.rel.Clone())
	}
	return out
}
