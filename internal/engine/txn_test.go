package engine

import (
	"errors"
	"testing"
)

func TestTransactionCommit(t *testing.T) {
	db := openFig3(t)
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if !db.InTxn() {
		t.Fatal("InTxn")
	}
	db.Insert("COURSE", tup("c1"))
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.Count("COURSE") != 1 || db.InTxn() {
		t.Error("commit should keep effects and close the transaction")
	}
}

func TestTransactionRollback(t *testing.T) {
	db := openFig3(t)
	db.Insert("COURSE", tup("c0"))
	before := db.Snapshot()

	db.Begin()
	db.Insert("COURSE", tup("c1"))
	db.Insert("DEPARTMENT", tup("math"))
	db.Insert("OFFER", tup("c1", "math"))
	db.Delete("COURSE", tup("c0"))
	if err := db.Rollback(); err != nil {
		t.Fatal(err)
	}
	if !db.Snapshot().Equal(before) {
		t.Errorf("rollback should restore the snapshot:\n%s\nvs\n%s", db.Snapshot(), before)
	}
	// Indexes stay coherent: re-inserting works, lookups agree.
	if _, ok := db.GetByKey("COURSE", tup("c0")); !ok {
		t.Error("c0 should be back")
	}
	if _, ok := db.GetByKey("COURSE", tup("c1")); ok {
		t.Error("c1 should be gone")
	}
	if err := db.Insert("COURSE", tup("c1")); err != nil {
		t.Errorf("re-insert after rollback: %v", err)
	}
}

func TestTransactionRollbackUpdate(t *testing.T) {
	db := openFig3(t)
	db.Insert("COURSE", tup("c1"))
	db.Insert("DEPARTMENT", tup("math"))
	db.Insert("DEPARTMENT", tup("cs"))
	db.Insert("OFFER", tup("c1", "math"))
	before := db.Snapshot()

	db.Begin()
	if err := db.Update("OFFER", tup("c1"), tup("c1", "cs")); err != nil {
		t.Fatal(err)
	}
	db.Rollback()
	if !db.Snapshot().Equal(before) {
		t.Error("rollback should undo the update")
	}
}

func TestRunAtomic(t *testing.T) {
	db := openFig3(t)
	boom := errors.New("boom")
	err := db.RunAtomic(func() error {
		db.Insert("COURSE", tup("c1"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if db.Count("COURSE") != 0 {
		t.Error("failed atomic batch should leave no trace")
	}

	if err := db.RunAtomic(func() error {
		return db.Insert("COURSE", tup("c2"))
	}); err != nil {
		t.Fatal(err)
	}
	if db.Count("COURSE") != 1 {
		t.Error("successful atomic batch should commit")
	}
}

func TestTransactionErrors(t *testing.T) {
	db := openFig3(t)
	if err := db.Commit(); err == nil {
		t.Error("commit without begin")
	}
	if err := db.Rollback(); err == nil {
		t.Error("rollback without begin")
	}
	db.Begin()
	if err := db.Begin(); err == nil {
		t.Error("nested begin")
	}
	db.Rollback()
}

// The batch-with-violation pattern the SYBASE triggers implement: the whole
// batch rolls back when a constraint fires mid-way.
func TestAtomicBatchWithConstraintViolation(t *testing.T) {
	db := openFig3(t)
	db.Insert("COURSE", tup("c1"))
	db.Insert("DEPARTMENT", tup("math"))
	before := db.Snapshot()

	err := db.RunAtomic(func() error {
		if err := db.Insert("OFFER", tup("c1", "math")); err != nil {
			return err
		}
		// Dangling FK: fires the referential check.
		return db.Insert("TEACH", tup("c9", "p9"))
	})
	if err == nil {
		t.Fatal("batch should fail")
	}
	if !db.Snapshot().Equal(before) {
		t.Error("failed batch must leave no partial effects")
	}
}
