package engine

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/relation"
)

func BenchmarkInsertDeclarative(b *testing.B) {
	// Figure 3's OFFER: NOT NULL + PK + two key-based FKs, all indexed.
	db := MustOpen(figures.Fig3())
	for i := 0; i < 1024; i++ {
		db.Insert("COURSE", relation.Tuple{relation.NewString(fmt.Sprintf("c%d", i))})
	}
	db.Insert("DEPARTMENT", relation.Tuple{relation.NewString("math")})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		course := fmt.Sprintf("c%d", i%1024)
		db.Insert("OFFER", relation.Tuple{relation.NewString(course), relation.NewString("math")})
		b.StopTimer()
		db.Delete("OFFER", relation.Tuple{relation.NewString(course)})
		b.StartTimer()
	}
}

func BenchmarkInsertProcedural(b *testing.B) {
	// Figure 6's COURSE'': two null-existence constraints fire per insert.
	m, err := core.Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	if err != nil {
		b.Fatal(err)
	}
	m.RemoveAll()
	db := MustOpen(m.Schema)
	db.Insert("DEPARTMENT", relation.Tuple{relation.NewString("math")})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := relation.NewString(fmt.Sprintf("c%d", i))
		tup := relation.Tuple{key, relation.NewString("math"), relation.Null(), relation.Null()}
		if err := db.Insert("COURSE''", tup); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		db.Delete("COURSE''", relation.Tuple{key})
		b.StartTimer()
	}
}

func BenchmarkGetByKey(b *testing.B) {
	db := MustOpen(figures.Fig3())
	for i := 0; i < 4096; i++ {
		db.Insert("COURSE", relation.Tuple{relation.NewString(fmt.Sprintf("c%d", i))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.GetByKey("COURSE", relation.Tuple{relation.NewString(fmt.Sprintf("c%d", i%4096))})
	}
}

func BenchmarkFetchWithReferences(b *testing.B) {
	db := MustOpen(figures.Fig3())
	db.Insert("COURSE", relation.Tuple{relation.NewString("c1")})
	db.Insert("DEPARTMENT", relation.Tuple{relation.NewString("math")})
	db.Insert("PERSON", relation.Tuple{relation.NewString("p1")})
	db.Insert("FACULTY", relation.Tuple{relation.NewString("p1")})
	db.Insert("OFFER", relation.Tuple{relation.NewString("c1"), relation.NewString("math")})
	db.Insert("TEACH", relation.Tuple{relation.NewString("c1"), relation.NewString("p1")})
	key := relation.Tuple{relation.NewString("c1")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.FetchWithReferences("TEACH", key); err != nil {
			b.Fatal(err)
		}
	}
}
