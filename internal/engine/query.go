package engine

import (
	"fmt"

	"repro/internal/relation"
)

// Related is one hop of a foreign-key chase: the dependency followed and the
// referenced tuple (nil when the foreign key was null).
type Related struct {
	From   string
	To     string
	FK     []string
	Tuple  relation.Tuple
	IsNull bool
}

// FetchWithReferences returns the tuple with the given primary key together
// with every tuple it references through the schema's inclusion dependencies
// (one indexed lookup per dependency — the navigational "join" the paper's
// merging technique is designed to avoid when the referenced data is merged
// in). Non-key-based dependencies are chased through the referenced
// relation's secondary index. The whole chase runs under one deterministic
// acquisition of the fetch lock set: reads everywhere, except referenced
// tables whose secondary index may need a one-time build.
func (db *DB) FetchWithReferences(name string, key relation.Tuple) (relation.Tuple, []Related, error) {
	start := now()
	t := db.tables[name]
	if t == nil {
		return nil, nil, fmt.Errorf("%w %s", ErrUnknownRelation, name)
	}
	ls := db.lm.fetch[name]
	ls.acquire()
	defer ls.release()
	defer db.m.lookupLat.ObserveSince(start)
	db.simAccess()
	db.countLookup()
	db.countIdx()
	tup, ok := t.pk[key.EncodeKey()]
	if !ok {
		return nil, nil, fmt.Errorf("%w: no %s tuple with key %v", ErrNoSuchTuple, name, key)
	}
	var related []Related
	for _, ind := range db.indsFrom[name] {
		rel := Related{From: name, To: ind.Right, FK: ind.LeftAttrs}
		fk := projectAttrs(t, tup, ind.LeftAttrs)
		if !fk.IsTotal() {
			rel.IsNull = true
			related = append(related, rel)
			continue
		}
		target := db.tables[ind.Right]
		if ind.KeyBased(db.Schema) {
			db.countLookup()
			db.countIdx()
			if hit, ok := target.pk[orderAsKey(target, ind.RightAttrs, fk)]; ok {
				rel.Tuple = hit
			}
		} else {
			idx := db.secondaryIndex(target, ind.RightAttrs)
			db.countLookup()
			db.countIdx()
			if hits := idx[fk.EncodeKey()]; len(hits) > 0 {
				rel.Tuple = hits[0]
			}
		}
		related = append(related, rel)
	}
	return tup, related, nil
}
