package engine

import (
	"repro/internal/relation"
)

// Related is one hop of a foreign-key chase: the dependency followed and the
// referenced tuple (nil when the foreign key was null).
type Related struct {
	From   string
	To     string
	FK     []string
	Tuple  relation.Tuple
	IsNull bool
}

// FetchWithReferences returns the tuple with the given primary key together
// with every tuple it references through the schema's inclusion dependencies
// (one indexed lookup per dependency — the navigational "join" the paper's
// merging technique is designed to avoid when the referenced data is merged
// in). Non-key-based dependencies are chased through the referenced
// relation's prebuilt secondary index. The whole chase pins ONE published
// version and takes no locks: the root tuple and every referenced tuple come
// from the same snapshot, so the result can never mix the partial effects of
// a concurrent batch, and writers never delay the fetch.
func (db *DB) FetchWithReferences(name string, key relation.Tuple) (relation.Tuple, []Related, error) {
	return db.fetchAt(db.current.Load(), name, key)
}
