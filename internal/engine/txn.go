package engine

import (
	"fmt"

	"repro/internal/relation"
)

// undoOp reverses one physical mutation.
type undoOp struct {
	table  *table
	tuple  relation.Tuple
	insert bool // true: the mutation was an apply (undo = remove)
}

// Begin starts a transaction: subsequent mutations are recorded in an undo
// log until Commit or Rollback. Transactions do not nest. This mirrors the
// trigger semantics of the SYBASE DDL the ddl package emits — a constraint
// violation inside a batch can ROLLBACK TRANSACTION the whole batch.
func (db *DB) Begin() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.inTxn {
		return fmt.Errorf("engine: transaction already open")
	}
	db.inTxn = true
	db.undo = db.undo[:0]
	return nil
}

// Commit ends the transaction, keeping its effects.
func (db *DB) Commit() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.inTxn {
		return fmt.Errorf("engine: no open transaction")
	}
	db.inTxn = false
	db.undo = nil
	return nil
}

// Rollback ends the transaction, reversing every mutation it made, most
// recent first.
func (db *DB) Rollback() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.inTxn {
		return fmt.Errorf("engine: no open transaction")
	}
	db.inTxn = false
	for i := len(db.undo) - 1; i >= 0; i-- {
		op := db.undo[i]
		// Reverse directly on the physical structures (no logging).
		if op.insert {
			db.physicalRemove(op.table, op.tuple)
		} else {
			db.physicalApply(op.table, op.tuple)
		}
	}
	db.undo = nil
	return nil
}

// InTxn reports whether a transaction is open.
func (db *DB) InTxn() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.inTxn
}

// RunAtomic executes fn inside a transaction, rolling back if fn returns an
// error and committing otherwise.
func (db *DB) RunAtomic(fn func() error) error {
	if err := db.Begin(); err != nil {
		return err
	}
	if err := fn(); err != nil {
		if rbErr := db.Rollback(); rbErr != nil {
			return fmt.Errorf("%w (rollback also failed: %v)", err, rbErr)
		}
		return err
	}
	return db.Commit()
}
