package engine

import (
	"fmt"

	"repro/internal/relation"
)

// undoOp reverses one physical mutation.
type undoOp struct {
	table  *table
	tuple  relation.Tuple
	insert bool // true: the mutation was an apply (undo = remove)
}

// Begin starts a transaction: subsequent mutations are recorded in an undo
// log until Commit or Rollback, and the current published version is pinned
// as the transaction's consistent read view (TxnView). Transactions do not
// nest. This mirrors the trigger semantics of the SYBASE DDL the ddl package
// emits — a constraint violation inside a batch can ROLLBACK TRANSACTION the
// whole batch.
//
// The transaction records mutations from any goroutine, but the usual
// pattern is one goroutine driving the transaction; concurrent operations
// racing with Begin/Rollback are applied either inside or outside the
// transaction, never half-way.
func (db *DB) Begin() error {
	// Hold the schema read lock for the marker write: a transaction must open
	// entirely on one design — a live migration (which refuses to run while a
	// transaction is open) cannot slip between the inTxn check and the pin.
	db.schemaMu.RLock()
	defer db.schemaMu.RUnlock()
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	if db.inTxn.Load() {
		return fmt.Errorf("engine: transaction already open")
	}
	// Log the marker before opening the transaction: if the log refuses it,
	// no transaction starts and memory stays in step with the durable log.
	if _, err := db.logMarker(walRecBegin); err != nil {
		return err
	}
	db.undo = db.undo[:0]
	db.txnSnap = db.current.Load()
	db.inTxn.Store(true)
	return nil
}

// Commit ends the transaction, keeping its effects. If the commit marker
// cannot be made durable the transaction STAYS OPEN and an error is
// returned: recovery would discard the unmarked suffix, so the caller must
// Rollback (restoring agreement between memory and log) and reopen the
// engine.
func (db *DB) Commit() error {
	db.schemaMu.RLock()
	defer db.schemaMu.RUnlock()
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	if !db.inTxn.Load() {
		return fmt.Errorf("engine: no open transaction")
	}
	if _, err := db.logMarker(walRecCommit); err != nil {
		return err
	}
	db.inTxn.Store(false)
	db.undo = nil
	db.txnSnap = nil
	return nil
}

// Rollback ends the transaction, reversing every mutation it made, most
// recent first. It locks every table for writing (in ordinal order, like any
// other multi-table operation) before touching the log, so in-flight
// operations finish — and log their effects — before the reversal starts.
// The reversal is staged copy-on-write and published as ONE new version:
// concurrent lock-free readers see the pre-rollback state or the restored
// state, never an intermediate.
//
// The no-transaction case returns before acquiring any table lock: honest
// callers hit it only on bugs, but RunAtomic-style wrappers probe it under
// contention, and stalling every concurrent writer just to report an error
// was a measurable regression (see TestRollbackNoTxnConcurrent*).
func (db *DB) Rollback() error {
	if !db.inTxn.Load() {
		return fmt.Errorf("engine: no open transaction")
	}
	db.schemaMu.RLock()
	defer db.schemaMu.RUnlock()
	ls := db.lm.allWrite()
	db.acquire(ls)
	defer ls.release()
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	// Re-check under the mutex: the transaction may have closed while the
	// lock set was being acquired (the fast path above is advisory only).
	if !db.inTxn.Load() {
		return fmt.Errorf("engine: no open transaction")
	}
	db.inTxn.Store(false)
	tx := db.beginWrite()
	for i := len(db.undo) - 1; i >= 0; i-- {
		op := db.undo[i]
		// Reverse directly through the staged transaction (no logging).
		if op.insert {
			tx.remove(op.table, op.tuple)
		} else {
			tx.apply(op.table, op.tuple)
		}
	}
	reversed := len(db.undo) > 0
	db.undo = nil
	db.txnSnap = nil
	// Best-effort marker: if the log is crashed the replay discards the
	// unterminated transaction anyway, which equals the rollback just
	// performed, so the rollback itself still succeeded.
	lsn, _ := db.logMarker(walRecRollback)
	if reversed {
		if lsn == 0 {
			lsn = db.seq.Add(1)
		}
		db.publish(tx, lsn)
	}
	return nil
}

// InTxn reports whether a transaction is open.
func (db *DB) InTxn() bool { return db.inTxn.Load() }

// RunAtomic executes fn inside a transaction, rolling back if fn returns an
// error and committing otherwise.
func (db *DB) RunAtomic(fn func() error) error {
	if err := db.Begin(); err != nil {
		return err
	}
	if err := fn(); err != nil {
		if rbErr := db.Rollback(); rbErr != nil {
			return fmt.Errorf("%w (rollback also failed: %v)", err, rbErr)
		}
		return err
	}
	return db.Commit()
}
