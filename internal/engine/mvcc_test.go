// MVCC read-path tests: snapshot pinning, transaction read views, lock-free
// reads, and the never-torn-batch guarantee under concurrent writers. The
// names match the `make stress` filter (Stress|Concurrent|Mixed) where the
// test is meant to run fresh under the race detector.
package engine_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/figures"
	"repro/internal/relation"
	"repro/internal/wal"
	"repro/internal/workload"
)

func key(s string) relation.Tuple { return relation.Tuple{relation.NewString(s)} }

// A View pins one published version: writes that land after the pin are
// invisible to it, a fresh View sees them, and the version LSN stamp advances
// with every publish.
func TestMVCCViewPinsVersion(t *testing.T) {
	b, err := workload.NewBench(workload.StarEER(2), "E0", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	db, root := b.Base, b.Root
	v := db.View()
	lsn0 := v.LSN()
	if got := v.Count(root); got != db.Count(root) {
		t.Fatalf("pinned view count %d != live count %d", got, db.Count(root))
	}
	before := v.Count(root)

	if err := db.Insert(root, key("after-pin")); err != nil {
		t.Fatal(err)
	}
	if got := v.Count(root); got != before {
		t.Errorf("pinned view saw a later write: count %d, want %d", got, before)
	}
	if _, ok := v.GetByKey(root, key("after-pin")); ok {
		t.Error("pinned view GetByKey found a tuple inserted after the pin")
	}
	visited := 0
	if err := v.Scan(root, nil, func(relation.Tuple) { visited++ }); err != nil {
		t.Fatal(err)
	}
	if visited != before {
		t.Errorf("pinned view scan visited %d tuples, want %d", visited, before)
	}

	fresh := db.View()
	if _, ok := fresh.GetByKey(root, key("after-pin")); !ok {
		t.Error("fresh view missing the committed write")
	}
	if fresh.LSN() <= lsn0 {
		t.Errorf("version LSN did not advance across a publish: %d -> %d", lsn0, fresh.LSN())
	}
	if db.VersionLSN() != fresh.LSN() {
		t.Errorf("VersionLSN %d != fresh view LSN %d", db.VersionLSN(), fresh.LSN())
	}
}

// TxnView answers from the version pinned at Begin: the transaction's own
// writes are visible through the DB methods but not through its read view,
// and the view is gone once the transaction closes.
func TestMVCCTxnViewReadsBeginVersion(t *testing.T) {
	b, err := workload.NewBench(workload.StarEER(2), "E0", 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	db, root := b.Base, b.Root
	if _, ok := db.TxnView(); ok {
		t.Fatal("TxnView with no open transaction")
	}
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	tv, ok := db.TxnView()
	if !ok {
		t.Fatal("no TxnView inside an open transaction")
	}
	before := tv.Count(root)
	if err := db.Insert(root, key("in-txn")); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.GetByKey(root, key("in-txn")); !ok {
		t.Error("transaction's own write invisible through DB.GetByKey")
	}
	if _, ok := tv.GetByKey(root, key("in-txn")); ok {
		t.Error("TxnView saw a write made after Begin")
	}
	if got := tv.Count(root); got != before {
		t.Errorf("TxnView count moved: %d -> %d", before, got)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.TxnView(); ok {
		t.Error("TxnView survived Commit")
	}
	// The already-held view keeps answering from its pinned version.
	if _, ok := tv.GetByKey(root, key("in-txn")); ok {
		t.Error("held TxnView observed the commit")
	}
}

// The read hot path takes no locks: a read-only phase of point lookups,
// scans, and navigational fetches — concurrent, under the race detector —
// leaves the lock-plan acquisition counter exactly where it was.
func TestMVCCReadPathLockFree(t *testing.T) {
	b, err := workload.NewBench(workload.StarEER(3), "E0", 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	db, root := b.Base, b.Root
	baseline := db.LockAcquisitions()
	if baseline == 0 {
		t.Fatal("seeding took no lock-plan acquisitions; counter seems dead")
	}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := b.Keys[(r+i)%len(b.Keys)]
				if _, ok := db.GetByKey(root, k); !ok {
					t.Errorf("seeded key %v missing", k)
				}
				if _, _, err := db.FetchWithReferences(root, k); err != nil {
					t.Errorf("fetch: %v", err)
				}
				if i%10 == 0 {
					db.Scan(root, nil, func(relation.Tuple) {})
					db.Count(root)
					db.View().Count(root)
				}
			}
		}(r)
	}
	wg.Wait()
	if got := db.LockAcquisitions(); got != baseline {
		t.Errorf("read-only phase acquired %d lock plans (baseline %d): read path is not lock-free", got-baseline, baseline)
	}
}

// The Scan-vs-ApplyBatchCtx regression (snapshot semantics): a mixed batch
// publishes as ONE version, so a concurrent scan counts either all of a
// batch's tuples or none of them — never a torn middle — no matter how the
// scan interleaves with the batch's staging. The pre-MVCC engine mutated
// indexes in place under per-table locks, which this invariant now replaces.
func TestConcurrentScanNeverTearsBatch(t *testing.T) {
	const (
		batchSize = 7
		minScans  = 50   // keep churning until the scanners really raced us
		maxRounds = 5000 // hard stop if the scanners are starved anyway
	)
	b, err := workload.NewBench(workload.StarEER(2), "E0", 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, root := b.Base, b.Root

	stop := make(chan struct{})
	var scans atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := 0
				err := db.Scan(root, func(tup relation.Tuple) bool {
					return strings.HasPrefix(tup[0].AsString(), "torn-")
				}, func(relation.Tuple) { n++ })
				if err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				if n%batchSize != 0 {
					t.Errorf("scan observed a torn batch: %d tuples is not a multiple of %d", n, batchSize)
					return
				}
				scans.Add(1)
			}
		}()
	}

	// Writer: each round atomically inserts a full batch, then atomically
	// deletes it — the prefixed population only ever changes by whole batches.
	for i := 0; scans.Load() < minScans && i < maxRounds; i++ {
		ops := make([]engine.BatchOp, 0, batchSize)
		for j := 0; j < batchSize; j++ {
			ops = append(ops, engine.Ins(root, key(fmt.Sprintf("torn-%d-%d", i, j))))
		}
		if err := db.ApplyBatchCtx(context.Background(), ops); err != nil {
			t.Fatalf("insert batch %d: %v", i, err)
		}
		dels := make([]engine.BatchOp, 0, batchSize)
		for j := 0; j < batchSize; j++ {
			dels = append(dels, engine.Del(root, key(fmt.Sprintf("torn-%d-%d", i, j))))
		}
		if err := db.ApplyBatchCtx(context.Background(), dels); err != nil {
			t.Fatalf("delete batch %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if scans.Load() == 0 {
		t.Fatal("no scan completed during the batch churn")
	}
}

// The P8 scenario under the race detector: a saturating writer, lock-free
// readers, and checkpoints all at once on a durable engine. Readers must
// never miss a seeded key, never error, and never observe a torn batch;
// checkpoints (which quiesce writers only) must all succeed; and the final
// tuple count must be exact.
func TestStressMVCCReadUnderWriteCheckpoint(t *testing.T) {
	const (
		readers   = 4
		writerOps = 120
		batchSize = 5
	)
	db, err := engine.Open(figures.Fig3(),
		engine.WithWALOptions(t.TempDir(), wal.Options{Policy: wal.SyncNever}))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	seeded := db.Count("COURSE")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, ok := db.GetByKey("COURSE", key("c1")); !ok {
					t.Error("seeded COURSE key vanished mid-run")
					return
				}
				if _, _, err := db.FetchWithReferences("TEACH", key("c1")); err != nil {
					t.Errorf("fetch: %v", err)
					return
				}
				if i%8 == r {
					n := 0
					db.Scan("COURSE", func(tup relation.Tuple) bool {
						return strings.HasPrefix(tup[0].AsString(), "p8-")
					}, func(relation.Tuple) { n++ })
					if n%batchSize != 0 {
						t.Errorf("scan under checkpoint observed a torn batch: %d", n)
						return
					}
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()

	for i := 0; i < writerOps; i++ {
		if i%4 == 0 {
			batch := make([]relation.Tuple, 0, batchSize)
			for j := 0; j < batchSize; j++ {
				batch = append(batch, key(fmt.Sprintf("p8-%d-%d", i, j)))
			}
			if err := db.InsertBatch("COURSE", batch); err != nil {
				t.Fatalf("writer batch %d: %v", i, err)
			}
		} else {
			if err := db.Insert("COURSE", key(fmt.Sprintf("solo-%d", i))); err != nil {
				t.Fatalf("writer insert %d: %v", i, err)
			}
		}
	}
	close(stop)
	wg.Wait()

	batches := (writerOps + 3) / 4
	want := seeded + batches*batchSize + (writerOps - batches)
	if got := db.Count("COURSE"); got != want {
		t.Errorf("COURSE count after run: %d, want %d", got, want)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
