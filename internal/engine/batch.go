package engine

import (
	"context"
	"fmt"

	"repro/internal/relation"
)

// BatchKind selects the operation of one BatchOp.
type BatchKind uint8

const (
	// BatchInsert inserts Tuple into Relation.
	BatchInsert BatchKind = iota + 1
	// BatchDelete deletes the tuple with primary key Key from Relation.
	BatchDelete
	// BatchUpdate replaces the tuple with primary key Key by Tuple.
	BatchUpdate
)

// BatchOp is one operation of a mixed batch (see ApplyBatchCtx).
type BatchOp struct {
	Kind     BatchKind
	Relation string
	Key      relation.Tuple // delete/update: primary key of the target tuple
	Tuple    relation.Tuple // insert/update: the (new) tuple
}

// Ins builds an insert batch op.
func Ins(relName string, tup relation.Tuple) BatchOp {
	return BatchOp{Kind: BatchInsert, Relation: relName, Tuple: tup}
}

// Del builds a delete batch op.
func Del(relName string, key relation.Tuple) BatchOp {
	return BatchOp{Kind: BatchDelete, Relation: relName, Key: key}
}

// Upd builds an update batch op.
func Upd(relName string, key, tup relation.Tuple) BatchOp {
	return BatchOp{Kind: BatchUpdate, Relation: relName, Key: key, Tuple: tup}
}

// InsertBatch inserts tuples into the named relation as one atomic group:
// the lock set is acquired once for the whole batch (amortizing per-op
// locking), constraints are validated group-wise, and a violation anywhere
// drops the whole staged batch. Tuples earlier in the batch are visible to
// the constraint checks of later ones, so self-referencing chains load in
// one batch. Concurrent readers see the batch appear atomically: its staged
// effects publish as ONE new version after the WAL accepts the record.
func (db *DB) InsertBatch(name string, tuples []relation.Tuple) error {
	return db.InsertBatchCtx(context.Background(), name, tuples)
}

// InsertBatchCtx is InsertBatch with cancellation, checked once up front:
// the batch is atomic, so there is no consistent prefix to abandon at.
func (db *DB) InsertBatchCtx(ctx context.Context, name string, tuples []relation.Tuple) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(tuples) == 0 {
		return nil
	}
	db.schemaMu.RLock()
	defer db.schemaMu.RUnlock()
	start := now()
	t := db.tables[name]
	if t == nil {
		return fmt.Errorf("%w %s", ErrUnknownRelation, name)
	}
	ls := db.lm.insert[name]
	db.acquire(ls)
	defer ls.release()
	// Re-check after acquisition: a deadline that expired while the batch was
	// queued behind a contended lock plan must not still commit.
	if err := ctx.Err(); err != nil {
		return err
	}
	defer db.m.insertLat.ObserveSince(start)
	db.simAccess()
	// Group-wise validation first: arity and intra-batch primary-key
	// duplicates are detectable before any staging, so the common bad-batch
	// cases fail without building a write transaction at all. Not counted as
	// declarative checks — the authoritative per-tuple PK check still runs in
	// insertLocked, and counting here too would make a batch of one tuple
	// cost more checks than a plain Insert.
	seen := make(map[string]bool, len(tuples))
	for i, tup := range tuples {
		if len(tup) != t.hdr.Arity() {
			return fmt.Errorf("%w for %s (batch index %d)", ErrArityMismatch, name, i)
		}
		key := t.keyOfIncoming(tup)
		if seen[key] {
			return db.violation(&ConstraintViolation{Kind: PrimaryKeyViolation, Relation: name, Op: "insert-batch"})
		}
		seen[key] = true
	}
	tx := db.beginWrite()
	var eff effects
	for i, tup := range tuples {
		if err := db.insertLocked(tx, t, tup, &eff); err != nil {
			return fmt.Errorf("engine: batch insert %d/%d into %s: %w", i+1, len(tuples), name, err)
		}
	}
	// The whole batch is one log record (group commit: one write + one fsync)
	// and one published version: readers see all of it or none of it.
	return db.commitEffects(tx, eff)
}

// ApplyBatchCtx applies a mixed batch of inserts, deletes, and updates as
// one atomic group under a single acquisition of the union lock set of all
// its operations (deterministically ordered, so concurrent batches cannot
// deadlock). A violation anywhere drops the whole staged batch; on success
// the batch publishes as ONE new version, so a concurrent reader — however
// it interleaves with the batch — observes either none or all of its
// effects, never a torn middle.
func (db *DB) ApplyBatchCtx(ctx context.Context, ops []BatchOp) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(ops) == 0 {
		return nil
	}
	db.schemaMu.RLock()
	defer db.schemaMu.RUnlock()
	ls, err := db.batchPlan(ops)
	if err != nil {
		return err
	}
	db.acquire(ls)
	defer ls.release()
	// Re-check after acquisition (see InsertBatchCtx).
	if err := ctx.Err(); err != nil {
		return err
	}
	db.simAccess()
	tx := db.beginWrite()
	var eff effects
	for i, op := range ops {
		t := db.tables[op.Relation]
		var opErr error
		switch op.Kind {
		case BatchInsert:
			opErr = db.insertLocked(tx, t, op.Tuple, &eff)
		case BatchDelete:
			opErr = db.deleteLocked(tx, t, op.Key, &eff)
		case BatchUpdate:
			opErr = db.updateLocked(tx, t, op.Key, op.Tuple, &eff)
		}
		if opErr != nil {
			return fmt.Errorf("engine: batch op %d/%d (%s on %s): %w", i+1, len(ops), op.Kind, op.Relation, opErr)
		}
	}
	return db.commitEffects(tx, eff)
}

// String renders the batch kind for error messages.
func (k BatchKind) String() string {
	switch k {
	case BatchInsert:
		return "insert"
	case BatchDelete:
		return "delete"
	case BatchUpdate:
		return "update"
	}
	return fmt.Sprintf("batchkind(%d)", uint8(k))
}
