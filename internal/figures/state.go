package figures

import (
	"repro/internal/relation"
	"repro/internal/state"
)

// Fig3State returns a small deterministic database state for the figure 3
// schema, consistent with all of its inclusion dependencies and null
// constraints: three persons (two faculty, one student), three courses (two
// offered, both taught, one assisted). It is the replay input of the CLI
// metrics reports, so it is hand-built rather than generated — byte-stable
// across runs.
func Fig3State() *state.DB {
	db := state.New(Fig3())
	add := func(rel string, vals ...string) {
		t := make(relation.Tuple, len(vals))
		for i, v := range vals {
			t[i] = relation.NewString(v)
		}
		db.Relation(rel).Add(t)
	}
	add("PERSON", "s1")
	add("PERSON", "s2")
	add("PERSON", "s3")
	add("FACULTY", "s1")
	add("FACULTY", "s2")
	add("STUDENT", "s3")
	add("COURSE", "c1")
	add("COURSE", "c2")
	add("COURSE", "c3")
	add("DEPARTMENT", "math")
	add("DEPARTMENT", "cs")
	add("OFFER", "c1", "math")
	add("OFFER", "c2", "cs")
	add("TEACH", "c1", "s1")
	add("TEACH", "c2", "s2")
	add("ASSIST", "c1", "s3")
	return db
}
