package figures

import (
	"testing"
)

func TestFixturesValidate(t *testing.T) {
	for name, s := range map[string]interface{ Validate() error }{
		"fig1-rs":       Fig1RS(),
		"fig1-rs-prime": Fig1RSPrime(),
		"fig2-linked":   Fig2(true),
		"fig2-unlinked": Fig2(false),
		"fig3":          Fig3(),
	} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	s := Fig3()
	if len(s.Relations) != 8 || len(s.INDs) != 8 || len(s.Nulls) != 8 {
		t.Errorf("figure 3: %d/%d/%d, want 8/8/8",
			len(s.Relations), len(s.INDs), len(s.Nulls))
	}
	for _, ind := range s.INDs {
		if !ind.KeyBased(s) {
			t.Errorf("%s should be key-based", ind)
		}
	}
}

func TestFig1NullExistence(t *testing.T) {
	ne := Fig1NullExistence()
	if ne.Scheme != "WORKS" || len(ne.Y) != 1 || ne.Y[0] != "W.DATE" {
		t.Errorf("constraint = %v", ne)
	}
}

func TestFig2Variants(t *testing.T) {
	if len(Fig2(true).INDs) != 1 || len(Fig2(false).INDs) != 0 {
		t.Error("linked variant carries exactly the TEACH→OFFER dependency")
	}
}
