// Package figures builds the worked schemas of Markowitz (ICDE 1992) —
// figures 1, 2, and 3 — as reusable fixtures for tests, benchmarks, and
// examples. The expected outputs of figures 4–6 are encoded in the core
// package's tests, which apply Merge and Remove to the figure 3 schema.
package figures

import (
	"repro/internal/schema"
)

// Domain names shared by the figures.
const (
	DomSSN      = "ssn"
	DomCourseNr = "course_nr"
	DomDeptName = "dept_name"
	DomProjNr   = "project_nr"
	DomDate     = "date"
)

func attr(name, domain string) schema.Attribute {
	return schema.Attribute{Name: name, Domain: domain}
}

// Fig1RS builds the BCNF relational schema RS of figure 1(ii), the
// Markowitz–Shoshani translation of the ER schema of figure 1(i):
// PROJECT, EMPLOYEE, WORKS (with nullable DATE guarded by a null-existence
// constraint — see Fig1NullExistence), and MANAGES.
func Fig1RS() *schema.Schema {
	s := schema.New()
	s.AddScheme(schema.NewScheme("PROJECT",
		[]schema.Attribute{attr("PJ.NR", DomProjNr)}, []string{"PJ.NR"}))
	s.AddScheme(schema.NewScheme("EMPLOYEE",
		[]schema.Attribute{attr("E.SSN", DomSSN)}, []string{"E.SSN"}))
	s.AddScheme(schema.NewScheme("WORKS",
		[]schema.Attribute{attr("W.SSN", DomSSN), attr("W.NR", DomProjNr), attr("W.DATE", DomDate)},
		[]string{"W.SSN"}))
	s.AddScheme(schema.NewScheme("MANAGES",
		[]schema.Attribute{attr("M.SSN", DomSSN), attr("M.NR", DomProjNr)},
		[]string{"M.SSN"}))
	s.INDs = []schema.IND{
		schema.NewIND("WORKS", []string{"W.NR"}, "PROJECT", []string{"PJ.NR"}),
		schema.NewIND("WORKS", []string{"W.SSN"}, "EMPLOYEE", []string{"E.SSN"}),
		schema.NewIND("MANAGES", []string{"M.NR"}, "PROJECT", []string{"PJ.NR"}),
		schema.NewIND("MANAGES", []string{"M.SSN"}, "EMPLOYEE", []string{"E.SSN"}),
	}
	s.Nulls = []schema.NullConstraint{
		schema.NNA("PROJECT", "PJ.NR"),
		schema.NNA("EMPLOYEE", "E.SSN"),
		schema.NNA("WORKS", "W.SSN", "W.NR", "W.DATE"),
		schema.NNA("MANAGES", "M.SSN", "M.NR"),
	}
	return s
}

// Fig1RSPrime builds the relational schema RS' of figure 1(iii), the
// Teorey–Yang–Fry style translation that the paper criticizes: WORKS folds
// the relationship into EMPLOYEE's relation with nullable NR and DATE, and —
// crucially — no null-existence constraint tying DATE to NR, so RS' admits
// states inconsistent with the ER semantics (an employee with an assignment
// DATE but no PROJECT).
func Fig1RSPrime() *schema.Schema {
	s := schema.New()
	s.AddScheme(schema.NewScheme("PROJECT",
		[]schema.Attribute{attr("PJ.NR", DomProjNr)}, []string{"PJ.NR"}))
	s.AddScheme(schema.NewScheme("WORKS",
		[]schema.Attribute{attr("W.SSN", DomSSN), attr("W.NR", DomProjNr), attr("W.DATE", DomDate)},
		[]string{"W.SSN"}))
	s.AddScheme(schema.NewScheme("MANAGES",
		[]schema.Attribute{attr("M.SSN", DomSSN), attr("M.NR", DomProjNr)},
		[]string{"M.SSN"}))
	s.INDs = []schema.IND{
		schema.NewIND("WORKS", []string{"W.NR"}, "PROJECT", []string{"PJ.NR"}),
		schema.NewIND("MANAGES", []string{"M.NR"}, "PROJECT", []string{"PJ.NR"}),
		schema.NewIND("MANAGES", []string{"M.SSN"}, "WORKS", []string{"W.SSN"}),
	}
	s.Nulls = []schema.NullConstraint{
		schema.NNA("PROJECT", "PJ.NR"),
		schema.NNA("WORKS", "W.SSN"), // NR and DATE allow nulls, unconstrained
		schema.NNA("MANAGES", "M.SSN", "M.NR"),
	}
	return s
}

// Fig1NullExistence is the constraint the paper says RS' needs to match the
// ER semantics: WORKS: W.DATE ⊑ W.NR ("non-null DATE requires non-null NR").
func Fig1NullExistence() schema.NullExistence {
	return schema.NewNullExistence("WORKS", []string{"W.DATE"}, []string{"W.NR"})
}

// Fig2 builds the two-scheme merge example of figure 2:
// OFFER(O.CN*, O.DN) and TEACH(T.CN*, T.FN). When linked is true the schema
// also carries TEACH[T.CN] ⊆ OFFER[O.CN], which by Prop. 3.1 makes OFFER a
// key-relation of {OFFER, TEACH}; without it the set has no key-relation and
// Merge must synthesize one.
func Fig2(linked bool) *schema.Schema {
	s := schema.New()
	s.AddScheme(schema.NewScheme("OFFER",
		[]schema.Attribute{attr("O.CN", DomCourseNr), attr("O.DN", DomDeptName)},
		[]string{"O.CN"}))
	s.AddScheme(schema.NewScheme("TEACH",
		[]schema.Attribute{attr("T.CN", DomCourseNr), attr("T.FN", DomSSN)},
		[]string{"T.CN"}))
	if linked {
		s.INDs = []schema.IND{
			schema.NewIND("TEACH", []string{"T.CN"}, "OFFER", []string{"O.CN"}),
		}
	}
	s.Nulls = []schema.NullConstraint{
		schema.NNA("OFFER", "O.CN", "O.DN"),
		schema.NNA("TEACH", "T.CN", "T.FN"),
	}
	return s
}

// Fig3 builds the full university schema of figure 3: eight relation-schemes,
// eight key-based inclusion dependencies, and eight nulls-not-allowed
// constraints. It is the input of the Merge examples of figures 4 and 5 and
// the Remove example of figure 6, and is the relational translation of the
// EER schema of figure 7.
func Fig3() *schema.Schema {
	s := schema.New()
	s.AddScheme(schema.NewScheme("PERSON",
		[]schema.Attribute{attr("P.SSN", DomSSN)}, []string{"P.SSN"}))
	s.AddScheme(schema.NewScheme("FACULTY",
		[]schema.Attribute{attr("F.SSN", DomSSN)}, []string{"F.SSN"}))
	s.AddScheme(schema.NewScheme("STUDENT",
		[]schema.Attribute{attr("S.SSN", DomSSN)}, []string{"S.SSN"}))
	s.AddScheme(schema.NewScheme("COURSE",
		[]schema.Attribute{attr("C.NR", DomCourseNr)}, []string{"C.NR"}))
	s.AddScheme(schema.NewScheme("DEPARTMENT",
		[]schema.Attribute{attr("D.NAME", DomDeptName)}, []string{"D.NAME"}))
	s.AddScheme(schema.NewScheme("OFFER",
		[]schema.Attribute{attr("O.C.NR", DomCourseNr), attr("O.D.NAME", DomDeptName)},
		[]string{"O.C.NR"}))
	s.AddScheme(schema.NewScheme("TEACH",
		[]schema.Attribute{attr("T.C.NR", DomCourseNr), attr("T.F.SSN", DomSSN)},
		[]string{"T.C.NR"}))
	s.AddScheme(schema.NewScheme("ASSIST",
		[]schema.Attribute{attr("A.C.NR", DomCourseNr), attr("A.S.SSN", DomSSN)},
		[]string{"A.C.NR"}))
	s.INDs = []schema.IND{
		schema.NewIND("FACULTY", []string{"F.SSN"}, "PERSON", []string{"P.SSN"}),
		schema.NewIND("STUDENT", []string{"S.SSN"}, "PERSON", []string{"P.SSN"}),
		schema.NewIND("OFFER", []string{"O.C.NR"}, "COURSE", []string{"C.NR"}),
		schema.NewIND("OFFER", []string{"O.D.NAME"}, "DEPARTMENT", []string{"D.NAME"}),
		schema.NewIND("TEACH", []string{"T.C.NR"}, "OFFER", []string{"O.C.NR"}),
		schema.NewIND("TEACH", []string{"T.F.SSN"}, "FACULTY", []string{"F.SSN"}),
		schema.NewIND("ASSIST", []string{"A.C.NR"}, "OFFER", []string{"O.C.NR"}),
		schema.NewIND("ASSIST", []string{"A.S.SSN"}, "STUDENT", []string{"S.SSN"}),
	}
	s.Nulls = []schema.NullConstraint{
		schema.NNA("PERSON", "P.SSN"),
		schema.NNA("FACULTY", "F.SSN"),
		schema.NNA("STUDENT", "S.SSN"),
		schema.NNA("COURSE", "C.NR"),
		schema.NNA("DEPARTMENT", "D.NAME"),
		schema.NNA("OFFER", "O.C.NR", "O.D.NAME"),
		schema.NNA("TEACH", "T.C.NR", "T.F.SSN"),
		schema.NNA("ASSIST", "A.C.NR", "A.S.SSN"),
	}
	return s
}
