package diff

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/schema"
)

func TestIdenticalSchemasNoChanges(t *testing.T) {
	if got := Schemas(figures.Fig3(), figures.Fig3()); len(got) != 0 {
		t.Errorf("changes = %v", got)
	}
	if Format(nil) != "" {
		t.Error("Format(nil)")
	}
}

func TestFig4Diff(t *testing.T) {
	old := figures.Fig3()
	m, err := core.Merge(old, []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	if err != nil {
		t.Fatal(err)
	}
	out := Format(Schemas(old, m.Schema))
	for _, want := range []string{
		"scheme-  COURSE(C.NR*)",
		"scheme-  OFFER(O.C.NR*, O.D.NAME)",
		"scheme-  TEACH(T.C.NR*, T.F.SSN)",
		"scheme+  COURSE'(C.NR*, O.C.NR, O.D.NAME, T.C.NR, T.F.SSN)",
		"ind-     OFFER[O.C.NR] ⊆ COURSE[C.NR]",
		"ind+     COURSE'[O.D.NAME] ⊆ DEPARTMENT[D.NAME]",
		"null+    COURSE': NS(O.C.NR,O.D.NAME)",
		"null+    COURSE': C.NR =⊥ O.C.NR",
		"null-    COURSE: ∅ ⊑ C.NR",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Untouched schemes do not appear.
	if strings.Contains(out, "PERSON(") {
		t.Errorf("PERSON should not appear:\n%s", out)
	}
}

func TestSchemeChanged(t *testing.T) {
	old := figures.Fig2(true)
	new := figures.Fig2(true)
	new.Scheme("OFFER").Attrs = append(new.Scheme("OFFER").Attrs,
		schema.Attribute{Name: "O.EXTRA", Domain: "x"})
	out := Format(Schemas(old, new))
	if !strings.Contains(out, "scheme~") || !strings.Contains(out, "O.EXTRA") {
		t.Errorf("changed scheme not reported:\n%s", out)
	}
}

func TestDiffDeterministic(t *testing.T) {
	old := figures.Fig3()
	m, _ := core.Merge(old, []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "X")
	a := Format(Schemas(old, m.Schema))
	b := Format(Schemas(old, m.Schema))
	if a != b {
		t.Error("diff must be deterministic")
	}
}
