// Package diff compares two relational schemas and reports the differences
// — the "what did merging change" view the SDT workflow needs when choosing
// between design options (i) and (ii) of section 6.
package diff

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
)

// Kind classifies a change.
type Kind string

// The change kinds.
const (
	SchemeAdded   Kind = "scheme+"
	SchemeRemoved Kind = "scheme-"
	SchemeChanged Kind = "scheme~"
	INDAdded      Kind = "ind+"
	INDRemoved    Kind = "ind-"
	NullAdded     Kind = "null+"
	NullRemoved   Kind = "null-"
	FDAdded       Kind = "fd+"
	FDRemoved     Kind = "fd-"
)

// Change is one difference between the schemas.
type Change struct {
	Kind   Kind
	Detail string
}

// String renders the change.
func (c Change) String() string { return fmt.Sprintf("%-8s %s", c.Kind, c.Detail) }

// Schemas computes the differences from old to new, in a deterministic
// order: scheme changes (by name), then FDs, inclusion dependencies, and
// null constraints (by canonical key).
func Schemas(old, new *schema.Schema) []Change {
	var out []Change

	oldSchemes := schemeMap(old)
	newSchemes := schemeMap(new)
	for _, name := range sortedKeys(oldSchemes) {
		if _, ok := newSchemes[name]; !ok {
			out = append(out, Change{SchemeRemoved, oldSchemes[name].String()})
		}
	}
	for _, name := range sortedKeys(newSchemes) {
		o, ok := oldSchemes[name]
		if !ok {
			out = append(out, Change{SchemeAdded, newSchemes[name].String()})
			continue
		}
		n := newSchemes[name]
		if !schema.EqualAttrLists(schema.AttrNames(o.Attrs), schema.AttrNames(n.Attrs)) ||
			!schema.EqualAttrLists(o.PrimaryKey, n.PrimaryKey) {
			out = append(out, Change{SchemeChanged, fmt.Sprintf("%s → %s", o, n)})
		}
	}

	out = append(out, setDiff(fdKeys(old), fdKeys(new), FDRemoved, FDAdded)...)
	out = append(out, setDiff(indMap(old), indMap(new), INDRemoved, INDAdded)...)
	out = append(out, setDiff(nullMap(old), nullMap(new), NullRemoved, NullAdded)...)
	return out
}

// Format renders the changes one per line (empty string when identical).
func Format(changes []Change) string {
	if len(changes) == 0 {
		return ""
	}
	var b strings.Builder
	for _, c := range changes {
		b.WriteString(c.String())
		b.WriteString("\n")
	}
	return b.String()
}

func schemeMap(s *schema.Schema) map[string]*schema.RelationScheme {
	out := make(map[string]*schema.RelationScheme, len(s.Relations))
	for _, rs := range s.Relations {
		out[rs.Name] = rs
	}
	return out
}

func fdKeys(s *schema.Schema) map[string]string {
	out := make(map[string]string, len(s.FDs))
	for _, fd := range s.FDs {
		out[fd.Key()] = fd.String()
	}
	return out
}

func indMap(s *schema.Schema) map[string]string {
	out := make(map[string]string, len(s.INDs))
	for _, ind := range s.INDs {
		out[ind.Key()] = ind.String()
	}
	return out
}

func nullMap(s *schema.Schema) map[string]string {
	out := make(map[string]string, len(s.Nulls))
	for _, nc := range s.Nulls {
		out[nc.Key()] = nc.String()
	}
	return out
}

// setDiff reports removed (in old, not new) then added (in new, not old),
// each sorted by display string.
func setDiff(old, new map[string]string, removed, added Kind) []Change {
	var out []Change
	var gone, fresh []string
	for k, display := range old {
		if _, ok := new[k]; !ok {
			gone = append(gone, display)
		}
	}
	for k, display := range new {
		if _, ok := old[k]; !ok {
			fresh = append(fresh, display)
		}
	}
	sort.Strings(gone)
	sort.Strings(fresh)
	for _, d := range gone {
		out = append(out, Change{removed, d})
	}
	for _, d := range fresh {
		out = append(out, Change{added, d})
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
