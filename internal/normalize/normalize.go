// Package normalize implements schema-level BCNF normalization — the
// *splitting* direction the paper's introduction contrasts with merging
// ("the normalization process tends to increase the number of relations by
// splitting unnormalized relations into smaller, normalized, relations").
//
// BCNF turns a single (possibly unnormalized) relation-scheme with arbitrary
// functional dependencies into a relational schema of the paper's form: one
// BCNF relation-scheme per fragment, key-based inclusion dependencies
// linking each split's right fragment to the left fragment that holds the
// split key, and nulls-not-allowed constraints throughout. The decomposition
// is lossless-join by construction, which Split/Reassemble make observable
// on data.
package normalize

import (
	"fmt"
	"sort"

	"repro/internal/fd"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/state"
)

// Result is a BCNF decomposition: the produced schema and the fragments in
// creation order (named after the original relation-scheme with numeric
// suffixes). Because the paper's schema model requires globally unique
// attribute names, each fragment's attributes are qualified with the
// fragment name ("TEACHES_1.FACULTY"); Source maps them back.
type Result struct {
	Schema    *schema.Schema
	Fragments []string
	// Source maps fragment name -> the original attribute names, in the
	// fragment's attribute order.
	Source map[string][]string
	source []schema.Attribute
	deps   []fd.Dep
}

// BCNF decomposes the relation-scheme (name, attrs) under the dependencies.
// The input needs no key declaration — candidate keys are computed. Domains
// must be declared for every attribute.
func BCNF(name string, attrs []schema.Attribute, deps []fd.Dep) (*Result, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("normalize: no attributes")
	}
	domains := make(map[string]string, len(attrs))
	for _, a := range attrs {
		if a.Domain == "" {
			return nil, fmt.Errorf("normalize: attribute %s has no domain", a.Name)
		}
		domains[a.Name] = a.Domain
	}
	universe := schema.AttrNames(attrs)
	cover := fd.MinimalCover(deps)
	for _, d := range cover {
		if !schema.SubsetOf(d.LHS, universe) || !schema.SubsetOf(d.RHS, universe) {
			return nil, fmt.Errorf("normalize: dependency %v → %v mentions unknown attributes", d.LHS, d.RHS)
		}
	}

	out := schema.New()
	res := &Result{Schema: out, Source: map[string][]string{}, source: attrs, deps: cover}
	type fragment struct {
		attrs []string
		// parentKey/parentName link the fragment to the fragment holding the
		// split key (empty for the root fragment).
		parentKey  []string
		parentName string
	}
	counter := 0
	var build func(f fragment) error
	build = func(f fragment) error {
		proj := fd.ProjectDeps(f.attrs, cover)
		if v := fd.FirstBCNFViolation(f.attrs, proj); v != nil {
			closure := schema.IntersectAttrs(fd.Closure(v.LHS, proj), f.attrs)
			left := fragment{attrs: schema.NormalizeAttrs(closure)}
			right := fragment{
				attrs:      schema.NormalizeAttrs(schema.UnionAttrs(v.LHS, schema.DiffAttrs(f.attrs, closure))),
				parentKey:  schema.NormalizeAttrs(v.LHS),
				parentName: "", // filled after left materializes
			}
			if err := build(left); err != nil {
				return err
			}
			// The left fragment just created is the last scheme added.
			right.parentName = out.Relations[len(out.Relations)-1].Name
			// Keep the fragment's own parent link too, relative to the
			// enclosing split: the caller handles it via f.parent*.
			if err := build(right); err != nil {
				return err
			}
			// Re-link the original parent of f (if any) to the left
			// fragment, which retains f's key attributes only if they
			// survive there; the standard decomposition keeps lossless-join
			// through the split key instead, so nothing further is needed.
			_ = f
			return nil
		}
		counter++
		fname := fmt.Sprintf("%s_%d", name, counter)
		keys := fd.CandidateKeys(f.attrs, proj)
		if len(keys) == 0 {
			return fmt.Errorf("normalize: fragment %v has no key", f.attrs)
		}
		qualify := func(a string) string { return fname + "." + a }
		qualifyAll := func(as []string) []string {
			out := make([]string, len(as))
			for i, a := range as {
				out[i] = qualify(a)
			}
			return out
		}
		var fragAttrs []schema.Attribute
		for _, a := range f.attrs {
			fragAttrs = append(fragAttrs, schema.Attribute{Name: qualify(a), Domain: domains[a]})
		}
		rs := schema.NewScheme(fname, fragAttrs, qualifyAll(keys[0]))
		for _, ck := range keys[1:] {
			rs.CandidateKeys = append(rs.CandidateKeys, qualifyAll(ck))
		}
		out.AddScheme(rs)
		out.Nulls = append(out.Nulls, schema.NNA(fname, rs.AttrNames()...))
		res.Fragments = append(res.Fragments, fname)
		res.Source[fname] = append([]string(nil), f.attrs...)
		if f.parentName != "" {
			// Link through the split key when it is the parent's primary key
			// (always true for the standard decomposition: the left fragment's
			// key is the violating LHS).
			parent := out.Scheme(f.parentName)
			if parent != nil && schema.SubsetOf(f.parentKey, f.attrs) {
				parentSrc := res.Source[f.parentName]
				parentKeySrc := unqualify(parent.PrimaryKey, f.parentName)
				if schema.EqualAttrSets(f.parentKey, parentKeySrc) {
					ordered := orderLike(f.parentKey, parentSrc)
					left := qualifyAll(ordered)
					right := make([]string, len(ordered))
					for i, a := range ordered {
						right[i] = f.parentName + "." + a
					}
					out.INDs = append(out.INDs, schema.NewIND(fname, left, f.parentName, right))
				}
			}
		}
		return nil
	}
	if err := build(fragment{attrs: schema.NormalizeAttrs(universe)}); err != nil {
		return nil, err
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("normalize: produced invalid schema: %w", err)
	}
	return res, nil
}

// orderLike returns the attributes of set ordered like the reference list.
func orderLike(set, ref []string) []string {
	in := make(map[string]bool, len(set))
	for _, a := range set {
		in[a] = true
	}
	var out []string
	for _, a := range ref {
		if in[a] {
			out = append(out, a)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return indexIn(ref, out[i]) < indexIn(ref, out[j]) })
	return out
}

func indexIn(list []string, a string) int {
	for i, x := range list {
		if x == a {
			return i
		}
	}
	return len(list)
}

// unqualify strips the "<fragment>." prefix from attribute names.
func unqualify(attrs []string, fragment string) []string {
	out := make([]string, len(attrs))
	prefix := fragment + "."
	for i, a := range attrs {
		out[i] = a
		if len(a) > len(prefix) && a[:len(prefix)] == prefix {
			out[i] = a[len(prefix):]
		}
	}
	return out
}

// Split projects an (unnormalized) relation onto the fragments, producing a
// database state of the decomposed schema (with the fragment-qualified
// attribute names).
func (r *Result) Split(src *relation.Relation) *state.DB {
	db := state.New(r.Schema)
	for _, fname := range r.Fragments {
		rs := r.Schema.Scheme(fname)
		srcAttrs := r.Source[fname]
		db.Set(fname, src.Project(srcAttrs).Rename(srcAttrs, rs.AttrNames()))
	}
	return db
}

// Reassemble joins the fragments back into a relation over the original
// attribute order. For inputs whose dependencies hold, Reassemble(Split(r))
// equals r — the lossless-join property.
func (r *Result) Reassemble(db *state.DB) *relation.Relation {
	// Rename every fragment back to source attribute names, then natural-join
	// with a worklist (fragments become joinable as the accumulated relation
	// grows; the fragment hypergraph of a BCNF decomposition is connected
	// through the split keys, so the worklist always drains).
	var pending []*relation.Relation
	for _, fname := range r.Fragments {
		rs := r.Schema.Scheme(fname)
		pending = append(pending, db.Relation(fname).Rename(rs.AttrNames(), r.Source[fname]))
	}
	if len(pending) == 0 {
		return relation.New()
	}
	acc := pending[0].Clone()
	pending = pending[1:]
	for len(pending) > 0 {
		progressed := false
		rest := pending[:0]
		for _, frag := range pending {
			shared := schema.IntersectAttrs(acc.Attrs(), frag.Attrs())
			if len(shared) == 0 {
				rest = append(rest, frag)
				continue
			}
			renamed := make([]string, len(shared))
			for i, a := range shared {
				renamed[i] = "⟨join⟩" + a
			}
			right := frag.Rename(shared, renamed)
			joined := acc.EquiJoin(right, relation.JoinSpec{Left: shared, Right: renamed})
			acc = joined.Project(schema.DiffAttrs(joined.Attrs(), renamed))
			progressed = true
		}
		pending = rest
		if !progressed {
			break // disconnected fragments: impossible for BCNF output
		}
	}
	return acc.Project(schema.AttrNames(r.source))
}
