package normalize

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fd"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/state"
)

func attrsOf(names string, dom string) []schema.Attribute {
	var out []schema.Attribute
	cur := ""
	for _, r := range names + "," {
		if r == ',' {
			if cur != "" {
				out = append(out, schema.Attribute{Name: cur, Domain: dom + "_" + cur})
			}
			cur = ""
		} else {
			cur += string(r)
		}
	}
	return out
}

func TestBCNFAlreadyNormalized(t *testing.T) {
	res, err := BCNF("R", attrsOf("K,A,B", "d"), []fd.Dep{
		fd.NewDep([]string{"K"}, []string{"A", "B"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 1 {
		t.Fatalf("fragments = %v", res.Fragments)
	}
	rs := res.Schema.Scheme(res.Fragments[0])
	if !schema.EqualAttrSets(rs.PrimaryKey, []string{res.Fragments[0] + ".K"}) {
		t.Errorf("key = %v", rs.PrimaryKey)
	}
}

func TestBCNFTransitiveSplit(t *testing.T) {
	// COURSE → FACULTY → OFFICE: splits into (FACULTY, OFFICE) and
	// (COURSE, FACULTY) with the dependency linking them.
	res, err := BCNF("TEACHES", attrsOf("COURSE,FACULTY,OFFICE", "d"), []fd.Dep{
		fd.NewDep([]string{"COURSE"}, []string{"FACULTY"}),
		fd.NewDep([]string{"FACULTY"}, []string{"OFFICE"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 2 {
		t.Fatalf("fragments = %v\n%s", res.Fragments, res.Schema)
	}
	for _, fname := range res.Fragments {
		src := res.Source[fname]
		proj := fd.ProjectDeps(src, res.deps)
		if !fd.IsBCNF(src, proj) {
			t.Errorf("fragment %s not BCNF", fname)
		}
	}
	if len(res.Schema.INDs) != 1 {
		t.Fatalf("INDs = %v", res.Schema.INDs)
	}
	if !res.Schema.INDs[0].KeyBased(res.Schema) {
		t.Error("linking dependency should be key-based")
	}
}

func TestBCNFErrors(t *testing.T) {
	if _, err := BCNF("R", nil, nil); err == nil {
		t.Error("no attributes")
	}
	if _, err := BCNF("R", []schema.Attribute{{Name: "A"}}, nil); err == nil {
		t.Error("missing domain")
	}
	if _, err := BCNF("R", attrsOf("A", "d"), []fd.Dep{fd.NewDep([]string{"Z"}, []string{"A"})}); err == nil {
		t.Error("unknown attribute in dependency")
	}
}

// Lossless join: Reassemble(Split(r)) = r for relations satisfying the
// dependencies — randomized.
func TestLosslessJoinProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	attrs := attrsOf("A,B,C,D", "d")
	names := schema.AttrNames(attrs)
	for trial := 0; trial < 80; trial++ {
		var deps []fd.Dep
		for i := 0; i < 1+rng.Intn(3); i++ {
			lhs := names[rng.Intn(len(names))]
			rhs := names[rng.Intn(len(names))]
			if lhs == rhs {
				continue
			}
			deps = append(deps, fd.NewDep([]string{lhs}, []string{rhs}))
		}
		res, err := BCNF("R", attrs, deps)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Random relation satisfying the dependencies: assign each attribute
		// a function of its determining value chain by rejection sampling.
		src := relation.New(names...)
		for row := 0; row < 12; row++ {
			tup := make(relation.Tuple, len(names))
			for i := range tup {
				tup[i] = relation.NewString(fmt.Sprintf("v%d", rng.Intn(3)))
			}
			src.Add(tup)
			ok := true
			for _, d := range deps {
				if !(schema.FD{Scheme: "R", LHS: d.LHS, RHS: d.RHS}).Satisfied(src) {
					ok = false
					break
				}
			}
			if !ok {
				src.Remove(tup)
			}
		}
		back := res.Reassemble(res.Split(src))
		if !back.Equal(src) {
			t.Fatalf("trial %d: lossless join failed (deps %v)\nsrc:\n%s\nback:\n%s",
				trial, deps, src, back)
		}
	}
}

// The split data is consistent with the produced schema (keys, INDs, NNA).
func TestSplitStateConsistent(t *testing.T) {
	res, err := BCNF("TEACHES", attrsOf("COURSE,FACULTY,OFFICE", "d"), []fd.Dep{
		fd.NewDep([]string{"COURSE"}, []string{"FACULTY"}),
		fd.NewDep([]string{"FACULTY"}, []string{"OFFICE"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	src := relation.New("COURSE", "FACULTY", "OFFICE")
	add := func(vals ...string) {
		tup := make(relation.Tuple, len(vals))
		for i, v := range vals {
			tup[i] = relation.NewString(v)
		}
		src.Add(tup)
	}
	add("c1", "smith", "o101")
	add("c2", "smith", "o101")
	add("c3", "jones", "o202")
	db := res.Split(src)
	if err := state.Consistent(res.Schema, db); err != nil {
		t.Fatalf("split state inconsistent: %v\n%s", err, db)
	}
	if !res.Reassemble(db).Equal(src) {
		t.Error("reassembly failed")
	}
	// The split removed redundancy: the FACULTY→OFFICE fragment has one row
	// per faculty, not per course.
	for _, fname := range res.Fragments {
		if schema.EqualAttrSets(res.Source[fname], []string{"FACULTY", "OFFICE"}) {
			if db.Relation(fname).Len() != 2 {
				t.Errorf("faculty fragment has %d rows, want 2", db.Relation(fname).Len())
			}
		}
	}
}
