package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Schema is a relational schema RS = (R, F ∪ I ∪ N): relation-schemes, FDs
// (typically key dependencies), inclusion dependencies, and null constraints.
// Slices are ordered for deterministic rendering; set-based comparison
// helpers are provided for figure reproduction tests.
type Schema struct {
	Relations []*RelationScheme
	FDs       []FD
	INDs      []IND
	Nulls     []NullConstraint
}

// New returns an empty schema.
func New() *Schema { return &Schema{} }

// AddScheme appends a relation-scheme and its implied key dependency and,
// unless allowNullKeys, leaves null policy to the caller (the paper's
// baseline schemas attach explicit NNA constraints).
func (s *Schema) AddScheme(rs *RelationScheme) *Schema {
	s.Relations = append(s.Relations, rs)
	s.FDs = append(s.FDs, KeyDependency(rs))
	return s
}

// Scheme returns the named relation-scheme, or nil.
func (s *Schema) Scheme(name string) *RelationScheme {
	for _, rs := range s.Relations {
		if rs.Name == name {
			return rs
		}
	}
	return nil
}

// SchemeNames returns the relation-scheme names in declaration order.
func (s *Schema) SchemeNames() []string {
	names := make([]string, len(s.Relations))
	for i, rs := range s.Relations {
		names[i] = rs.Name
	}
	return names
}

// SchemeOf returns the relation-scheme owning the named (globally unique)
// attribute, or nil.
func (s *Schema) SchemeOf(attr string) *RelationScheme {
	for _, rs := range s.Relations {
		if rs.HasAttr(attr) {
			return rs
		}
	}
	return nil
}

// FDsOf returns the FDs attached to the named scheme.
func (s *Schema) FDsOf(name string) []FD {
	var out []FD
	for _, fd := range s.FDs {
		if fd.Scheme == name {
			out = append(out, fd)
		}
	}
	return out
}

// INDsFrom returns the inclusion dependencies whose left side is the scheme.
func (s *Schema) INDsFrom(name string) []IND {
	var out []IND
	for _, ind := range s.INDs {
		if ind.Left == name {
			out = append(out, ind)
		}
	}
	return out
}

// INDsInto returns the inclusion dependencies whose right side is the scheme.
func (s *Schema) INDsInto(name string) []IND {
	var out []IND
	for _, ind := range s.INDs {
		if ind.Right == name {
			out = append(out, ind)
		}
	}
	return out
}

// NullsOf returns the null constraints attached to the scheme.
func (s *Schema) NullsOf(name string) []NullConstraint {
	var out []NullConstraint
	for _, nc := range s.Nulls {
		if nc.SchemeName() == name {
			out = append(out, nc)
		}
	}
	return out
}

// NNAAttrs returns the set of attributes of the scheme covered by
// nulls-not-allowed constraints.
func (s *Schema) NNAAttrs(name string) map[string]bool {
	out := make(map[string]bool)
	for _, nc := range s.Nulls {
		if ne, ok := nc.(NullExistence); ok && ne.Scheme == name && ne.IsNNA() {
			for _, a := range ne.Z {
				out[a] = true
			}
		}
	}
	return out
}

// AllowsNull reports whether the attribute may carry nulls, i.e. it is not
// covered by any NNA constraint of its scheme.
func (s *Schema) AllowsNull(scheme, attr string) bool {
	return !s.NNAAttrs(scheme)[attr]
}

// Validate checks structural well-formedness: valid schemes, globally unique
// attribute names, dependencies and constraints referring to existing schemes
// and attributes, and position-wise compatible IND correspondences.
func (s *Schema) Validate() error {
	names := make(map[string]bool, len(s.Relations))
	attrOwner := make(map[string]string)
	for _, rs := range s.Relations {
		if err := rs.Validate(); err != nil {
			return err
		}
		if names[rs.Name] {
			return fmt.Errorf("duplicate relation-scheme %s", rs.Name)
		}
		names[rs.Name] = true
		for _, a := range rs.Attrs {
			if owner, dup := attrOwner[a.Name]; dup {
				return fmt.Errorf("attribute %s appears in both %s and %s (names must be globally unique)", a.Name, owner, rs.Name)
			}
			attrOwner[a.Name] = rs.Name
		}
	}
	for _, fd := range s.FDs {
		rs := s.Scheme(fd.Scheme)
		if rs == nil {
			return fmt.Errorf("FD %s: unknown scheme", fd)
		}
		if !SubsetOf(fd.LHS, rs.AttrNames()) || !SubsetOf(fd.RHS, rs.AttrNames()) {
			return fmt.Errorf("FD %s: attributes outside scheme", fd)
		}
	}
	for _, ind := range s.INDs {
		if err := s.validateIND(ind); err != nil {
			return err
		}
	}
	for _, nc := range s.Nulls {
		rs := s.Scheme(nc.SchemeName())
		if rs == nil {
			return fmt.Errorf("null constraint %s: unknown scheme", nc)
		}
		if !SubsetOf(nc.MentionedAttrs(), rs.AttrNames()) {
			return fmt.Errorf("null constraint %s: attributes outside scheme", nc)
		}
		if te, ok := nc.(TotalEquality); ok && len(te.Y) != len(te.Z) {
			return fmt.Errorf("total-equality constraint %s: side arity mismatch", nc)
		}
	}
	return nil
}

func (s *Schema) validateIND(ind IND) error {
	left, right := s.Scheme(ind.Left), s.Scheme(ind.Right)
	if left == nil || right == nil {
		return fmt.Errorf("IND %s: unknown scheme", ind)
	}
	if len(ind.LeftAttrs) == 0 || len(ind.LeftAttrs) != len(ind.RightAttrs) {
		return fmt.Errorf("IND %s: side arity mismatch", ind)
	}
	for i := range ind.LeftAttrs {
		ld, rd := left.Domain(ind.LeftAttrs[i]), right.Domain(ind.RightAttrs[i])
		if ld == "" {
			return fmt.Errorf("IND %s: attribute %s not in %s", ind, ind.LeftAttrs[i], ind.Left)
		}
		if rd == "" {
			return fmt.Errorf("IND %s: attribute %s not in %s", ind, ind.RightAttrs[i], ind.Right)
		}
		if ld != rd {
			return fmt.Errorf("IND %s: incompatible attribute pair %s/%s (%s vs %s)", ind, ind.LeftAttrs[i], ind.RightAttrs[i], ld, rd)
		}
	}
	return nil
}

// Clone returns a deep copy of the schema. Null constraints are value types
// and are shared safely.
func (s *Schema) Clone() *Schema {
	c := &Schema{
		FDs:   append([]FD(nil), s.FDs...),
		INDs:  append([]IND(nil), s.INDs...),
		Nulls: append([]NullConstraint(nil), s.Nulls...),
	}
	for _, rs := range s.Relations {
		c.Relations = append(c.Relations, rs.Clone())
	}
	return c
}

// RemoveScheme deletes the named scheme together with every FD and null
// constraint attached to it. INDs are left to the caller, which decides how
// to rewrite them (Merge step 4).
func (s *Schema) RemoveScheme(name string) {
	out := s.Relations[:0]
	for _, rs := range s.Relations {
		if rs.Name != name {
			out = append(out, rs)
		}
	}
	s.Relations = out
	fds := s.FDs[:0]
	for _, fd := range s.FDs {
		if fd.Scheme != name {
			fds = append(fds, fd)
		}
	}
	s.FDs = fds
	ncs := s.Nulls[:0]
	for _, nc := range s.Nulls {
		if nc.SchemeName() != name {
			ncs = append(ncs, nc)
		}
	}
	s.Nulls = ncs
}

// NullKeys returns the canonical key strings of the null constraints, sorted.
func (s *Schema) NullKeys() []string {
	keys := make([]string, len(s.Nulls))
	for i, nc := range s.Nulls {
		keys[i] = nc.Key()
	}
	sort.Strings(keys)
	return keys
}

// INDKeys returns the canonical key strings of the INDs, sorted.
func (s *Schema) INDKeys() []string {
	keys := make([]string, len(s.INDs))
	for i, ind := range s.INDs {
		keys[i] = ind.Key()
	}
	sort.Strings(keys)
	return keys
}

// SameConstraints reports whether two schemas have identical IND and
// null-constraint sets (by canonical keys) — used by figure-reproduction
// tests.
func (s *Schema) SameConstraints(t *Schema) bool {
	return EqualAttrLists(s.INDKeys(), t.INDKeys()) && EqualAttrLists(s.NullKeys(), t.NullKeys())
}

// String renders the schema in the layout of the paper's figure 3:
// relation-schemes, then inclusion dependencies, then null constraints.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString("Relation-Schemes\n")
	for _, rs := range s.Relations {
		fmt.Fprintf(&b, "  %s\n", rs)
	}
	if len(s.INDs) > 0 {
		b.WriteString("Inclusion Dependencies\n")
		for _, ind := range s.INDs {
			fmt.Fprintf(&b, "  %s\n", ind)
		}
	}
	if len(s.Nulls) > 0 {
		b.WriteString("Null Constraints\n")
		for _, nc := range s.Nulls {
			fmt.Fprintf(&b, "  %s\n", nc)
		}
	}
	return b.String()
}
