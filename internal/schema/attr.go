// Package schema models the relational schemas of Markowitz (ICDE 1992):
// RS = (R, F ∪ I ∪ N) where R is a set of relation-schemes, F a set of
// (key) functional dependencies, I a set of inclusion dependencies, and N a
// set of null constraints. The package supplies the five null-constraint
// kinds of section 3 (null-existence, nulls-not-allowed, null-synchronization
// sets, part-null, total-equality), satisfaction checks against in-memory
// relations, schema validation, and deterministic rendering in the paper's
// notation.
package schema

import (
	"sort"
	"strings"

	"repro/internal/relation"
)

// Attribute is a relational attribute: a globally unique qualified name (the
// paper's convention, e.g. "O.C.NR") together with a domain name. Two
// attributes are compatible iff they have the same domain (section 2).
type Attribute struct {
	Name   string
	Domain string
}

// Compatible reports whether the attributes share a domain.
func (a Attribute) Compatible(b Attribute) bool { return a.Domain == b.Domain }

// AttrNames extracts the names from a list of attributes.
func AttrNames(attrs []Attribute) []string {
	names := make([]string, len(attrs))
	for i, a := range attrs {
		names[i] = a.Name
	}
	return names
}

// NormalizeAttrs returns a sorted, deduplicated copy of an attribute-name
// set. Attribute *sets* (FD sides, null-constraint sides) are canonically
// sorted; attribute *lists* whose order is a correspondence (keys, IND sides)
// are never normalized.
func NormalizeAttrs(attrs []string) []string {
	out := append([]string(nil), attrs...)
	sort.Strings(out)
	j := 0
	for i, a := range out {
		if i == 0 || a != out[i-1] {
			out[j] = a
			j++
		}
	}
	return out[:j]
}

// EqualAttrSets reports set equality of two attribute-name lists.
func EqualAttrSets(a, b []string) bool {
	na, nb := NormalizeAttrs(a), NormalizeAttrs(b)
	if len(na) != len(nb) {
		return false
	}
	for i := range na {
		if na[i] != nb[i] {
			return false
		}
	}
	return true
}

// EqualAttrLists reports order-sensitive equality of two attribute lists.
func EqualAttrLists(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every name in a occurs in b.
func SubsetOf(a, b []string) bool {
	set := make(map[string]bool, len(b))
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

// UnionAttrs returns the set union of the lists, in first-occurrence order.
func UnionAttrs(lists ...[]string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, l := range lists {
		for _, a := range l {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// DiffAttrs returns a − b preserving a's order.
func DiffAttrs(a, b []string) []string {
	drop := make(map[string]bool, len(b))
	for _, x := range b {
		drop[x] = true
	}
	var out []string
	for _, x := range a {
		if !drop[x] {
			out = append(out, x)
		}
	}
	return out
}

// IntersectAttrs returns a ∩ b preserving a's order.
func IntersectAttrs(a, b []string) []string {
	keep := make(map[string]bool, len(b))
	for _, x := range b {
		keep[x] = true
	}
	var out []string
	for _, x := range a {
		if keep[x] {
			out = append(out, x)
		}
	}
	return out
}

// ContainsAttr reports whether the list names the attribute.
func ContainsAttr(list []string, attr string) bool {
	for _, a := range list {
		if a == attr {
			return true
		}
	}
	return false
}

// OverlapAttrs reports whether the two lists share any attribute.
func OverlapAttrs(a, b []string) bool {
	return len(IntersectAttrs(a, b)) > 0
}

// JoinAttrs renders an attribute-name list as a comma-separated string in
// linear time (strings.Join builds through a single strings.Builder). It is
// the shared canonical-key/rendering helper for this package and fd.
func JoinAttrs(attrs []string) string { return strings.Join(attrs, ",") }

// totalOn reports whether the subtuple of t on the named attributes of r is
// total; attribute sets are resolved by name against r's header.
func totalOn(r *relation.Relation, t relation.Tuple, attrs []string) bool {
	for _, a := range attrs {
		if t[r.Position(a)].IsNull() {
			return false
		}
	}
	return true
}
