package schema

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

// fig3 builds the paper's figure 3 university schema.
func fig3(t *testing.T) *Schema {
	t.Helper()
	s := New()
	add := func(name string, key []string, attrs ...Attribute) {
		s.AddScheme(NewScheme(name, attrs, key))
	}
	ssn := func(n string) Attribute { return Attribute{Name: n, Domain: "ssn"} }
	cnr := func(n string) Attribute { return Attribute{Name: n, Domain: "course_nr"} }
	dnm := func(n string) Attribute { return Attribute{Name: n, Domain: "dept_name"} }

	add("PERSON", []string{"P.SSN"}, ssn("P.SSN"))
	add("FACULTY", []string{"F.SSN"}, ssn("F.SSN"))
	add("STUDENT", []string{"S.SSN"}, ssn("S.SSN"))
	add("COURSE", []string{"C.NR"}, cnr("C.NR"))
	add("DEPARTMENT", []string{"D.NAME"}, dnm("D.NAME"))
	add("OFFER", []string{"O.C.NR"}, cnr("O.C.NR"), dnm("O.D.NAME"))
	add("TEACH", []string{"T.C.NR"}, cnr("T.C.NR"), ssn("T.F.SSN"))
	add("ASSIST", []string{"A.C.NR"}, cnr("A.C.NR"), ssn("A.S.SSN"))

	s.INDs = []IND{
		NewIND("FACULTY", []string{"F.SSN"}, "PERSON", []string{"P.SSN"}),
		NewIND("STUDENT", []string{"S.SSN"}, "PERSON", []string{"P.SSN"}),
		NewIND("OFFER", []string{"O.C.NR"}, "COURSE", []string{"C.NR"}),
		NewIND("OFFER", []string{"O.D.NAME"}, "DEPARTMENT", []string{"D.NAME"}),
		NewIND("TEACH", []string{"T.C.NR"}, "OFFER", []string{"O.C.NR"}),
		NewIND("TEACH", []string{"T.F.SSN"}, "FACULTY", []string{"F.SSN"}),
		NewIND("ASSIST", []string{"A.C.NR"}, "OFFER", []string{"O.C.NR"}),
		NewIND("ASSIST", []string{"A.S.SSN"}, "STUDENT", []string{"S.SSN"}),
	}
	for _, rs := range s.Relations {
		s.Nulls = append(s.Nulls, NNA(rs.Name, rs.AttrNames()...))
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("figure 3 schema should validate: %v", err)
	}
	return s
}

func TestFig3Validates(t *testing.T) {
	s := fig3(t)
	if len(s.Relations) != 8 || len(s.INDs) != 8 || len(s.Nulls) != 8 {
		t.Fatalf("figure 3: %d schemes, %d INDs, %d null constraints",
			len(s.Relations), len(s.INDs), len(s.Nulls))
	}
	for _, ind := range s.INDs {
		if !ind.KeyBased(s) {
			t.Errorf("figure 3 IND %s should be key-based", ind)
		}
	}
}

func TestSchemeLookups(t *testing.T) {
	s := fig3(t)
	if s.Scheme("OFFER") == nil || s.Scheme("NOPE") != nil {
		t.Error("Scheme lookup")
	}
	if got := s.SchemeOf("O.D.NAME"); got == nil || got.Name != "OFFER" {
		t.Error("SchemeOf")
	}
	if s.SchemeOf("UNKNOWN") != nil {
		t.Error("SchemeOf unknown")
	}
	if len(s.INDsFrom("TEACH")) != 2 || len(s.INDsInto("OFFER")) != 2 {
		t.Error("INDsFrom/INDsInto")
	}
	if len(s.FDsOf("OFFER")) != 1 || len(s.NullsOf("OFFER")) != 1 {
		t.Error("FDsOf/NullsOf")
	}
	names := s.SchemeNames()
	if len(names) != 8 || names[0] != "PERSON" {
		t.Errorf("SchemeNames = %v", names)
	}
}

func TestKeyCompatibility(t *testing.T) {
	s := fig3(t)
	course, offer, person := s.Scheme("COURSE"), s.Scheme("OFFER"), s.Scheme("PERSON")
	if !course.KeyCompatible(offer) {
		t.Error("COURSE and OFFER keys should be compatible (course_nr)")
	}
	if course.KeyCompatible(person) {
		t.Error("COURSE and PERSON keys should be incompatible")
	}
}

func TestNNAAttrsAndAllowsNull(t *testing.T) {
	s := fig3(t)
	nna := s.NNAAttrs("OFFER")
	if !nna["O.C.NR"] || !nna["O.D.NAME"] {
		t.Errorf("NNAAttrs(OFFER) = %v", nna)
	}
	if s.AllowsNull("OFFER", "O.C.NR") {
		t.Error("O.C.NR must not allow nulls")
	}
	// A scheme with a partial NNA set.
	s2 := New()
	s2.AddScheme(NewScheme("R", []Attribute{{Name: "A", Domain: "d"}, {Name: "B", Domain: "d"}}, []string{"A"}))
	s2.Nulls = append(s2.Nulls, NNA("R", "A"))
	if !s2.AllowsNull("R", "B") || s2.AllowsNull("R", "A") {
		t.Error("AllowsNull with partial NNA")
	}
}

func TestValidateRejections(t *testing.T) {
	d := Attribute{Name: "A", Domain: "d"}
	cases := []struct {
		name string
		mk   func() *Schema
	}{
		{"duplicate scheme", func() *Schema {
			s := New()
			s.AddScheme(NewScheme("R", []Attribute{d}, []string{"A"}))
			s.AddScheme(NewScheme("R", []Attribute{{Name: "B", Domain: "d"}}, []string{"B"}))
			return s
		}},
		{"global attr collision", func() *Schema {
			s := New()
			s.AddScheme(NewScheme("R", []Attribute{d}, []string{"A"}))
			s.AddScheme(NewScheme("S", []Attribute{d}, []string{"A"}))
			return s
		}},
		{"key outside scheme", func() *Schema {
			s := New()
			s.AddScheme(NewScheme("R", []Attribute{d}, []string{"Z"}))
			return s
		}},
		{"empty key", func() *Schema {
			s := New()
			s.AddScheme(NewScheme("R", []Attribute{d}, nil))
			return s
		}},
		{"no attributes", func() *Schema {
			s := New()
			s.AddScheme(NewScheme("R", nil, nil))
			return s
		}},
		{"missing domain", func() *Schema {
			s := New()
			s.AddScheme(NewScheme("R", []Attribute{{Name: "A"}}, []string{"A"}))
			return s
		}},
		{"FD unknown scheme", func() *Schema {
			s := New()
			s.AddScheme(NewScheme("R", []Attribute{d}, []string{"A"}))
			s.FDs = append(s.FDs, NewFD("X", []string{"A"}, []string{"A"}))
			return s
		}},
		{"FD attrs outside scheme", func() *Schema {
			s := New()
			s.AddScheme(NewScheme("R", []Attribute{d}, []string{"A"}))
			s.FDs = append(s.FDs, NewFD("R", []string{"Z"}, []string{"A"}))
			return s
		}},
		{"IND unknown scheme", func() *Schema {
			s := New()
			s.AddScheme(NewScheme("R", []Attribute{d}, []string{"A"}))
			s.INDs = append(s.INDs, NewIND("R", []string{"A"}, "X", []string{"A"}))
			return s
		}},
		{"IND arity mismatch", func() *Schema {
			s := New()
			s.AddScheme(NewScheme("R", []Attribute{d}, []string{"A"}))
			s.AddScheme(NewScheme("S", []Attribute{{Name: "B", Domain: "d"}}, []string{"B"}))
			s.INDs = append(s.INDs, NewIND("R", []string{"A"}, "S", []string{"B", "B"}))
			return s
		}},
		{"IND incompatible domains", func() *Schema {
			s := New()
			s.AddScheme(NewScheme("R", []Attribute{d}, []string{"A"}))
			s.AddScheme(NewScheme("S", []Attribute{{Name: "B", Domain: "other"}}, []string{"B"}))
			s.INDs = append(s.INDs, NewIND("R", []string{"A"}, "S", []string{"B"}))
			return s
		}},
		{"null constraint unknown scheme", func() *Schema {
			s := New()
			s.Nulls = append(s.Nulls, NNA("X", "A"))
			return s
		}},
		{"null constraint attrs outside scheme", func() *Schema {
			s := New()
			s.AddScheme(NewScheme("R", []Attribute{d}, []string{"A"}))
			s.Nulls = append(s.Nulls, NNA("R", "Z"))
			return s
		}},
		{"total equality arity mismatch", func() *Schema {
			s := New()
			s.AddScheme(NewScheme("R", []Attribute{d, {Name: "B", Domain: "d"}}, []string{"A"}))
			s.Nulls = append(s.Nulls, NewTotalEquality("R", []string{"A"}, []string{"A", "B"}))
			return s
		}},
	}
	for _, c := range cases {
		if err := c.mk().Validate(); err == nil {
			t.Errorf("%s: Validate should fail", c.name)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := fig3(t)
	c := s.Clone()
	c.Scheme("OFFER").Name = "CHANGED"
	c.INDs[0].Left = "CHANGED"
	if s.Scheme("OFFER") == nil || s.INDs[0].Left != "FACULTY" {
		t.Error("Clone must be deep for schemes and INDs")
	}
}

func TestRemoveScheme(t *testing.T) {
	s := fig3(t)
	s.RemoveScheme("TEACH")
	if s.Scheme("TEACH") != nil {
		t.Error("scheme should be gone")
	}
	if len(s.FDsOf("TEACH")) != 0 || len(s.NullsOf("TEACH")) != 0 {
		t.Error("FDs and null constraints should be gone")
	}
	// INDs intentionally untouched.
	if len(s.INDsFrom("TEACH")) != 2 {
		t.Error("INDs are the caller's responsibility")
	}
}

func TestSameConstraints(t *testing.T) {
	a, b := fig3(t), fig3(t)
	if !a.SameConstraints(b) {
		t.Error("identical schemas should have same constraints")
	}
	b.Nulls = append(b.Nulls, NewNullSync("OFFER", "O.C.NR", "O.D.NAME"))
	if a.SameConstraints(b) {
		t.Error("extra null constraint should be detected")
	}
}

func TestSchemaString(t *testing.T) {
	out := fig3(t).String()
	for _, want := range []string{
		"OFFER(O.C.NR*, O.D.NAME)",
		"TEACH[T.C.NR] ⊆ OFFER[O.C.NR]",
		"PERSON: ∅ ⊑ P.SSN",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q in:\n%s", want, out)
		}
	}
}

func TestFDSatisfied(t *testing.T) {
	fd := NewFD("R", []string{"A"}, []string{"B"})
	r := relation.New("A", "B")
	r.Add(relation.Tuple{relation.NewInt(1), relation.NewInt(10)})
	r.Add(relation.Tuple{relation.NewInt(2), relation.NewInt(10)})
	if !fd.Satisfied(r) {
		t.Error("FD should hold")
	}
	r.Add(relation.Tuple{relation.NewInt(1), relation.NewInt(99)})
	if fd.Satisfied(r) {
		t.Error("FD violation undetected")
	}
}

func TestFDSatisfiedNullsIdentical(t *testing.T) {
	// Two tuples with null keys "agree" on the LHS under set semantics, so
	// they must agree on the RHS — the key-maintenance behaviour of systems
	// that consider all nulls identical (section 5.1).
	fd := NewFD("R", []string{"A"}, []string{"B"})
	r := relation.New("A", "B")
	r.Add(relation.Tuple{relation.Null(), relation.NewInt(1)})
	r.Add(relation.Tuple{relation.Null(), relation.NewInt(2)})
	if fd.Satisfied(r) {
		t.Error("null keys must collide under identical-null semantics")
	}
}

func TestINDSatisfiedTotalSemantics(t *testing.T) {
	ind := NewIND("L", []string{"A"}, "R", []string{"B"})
	left := relation.New("A", "X")
	right := relation.New("B")
	right.Add(relation.Tuple{relation.NewInt(1)})
	left.Add(relation.Tuple{relation.NewInt(1), relation.NewInt(0)})
	if !ind.Satisfied(left, right) {
		t.Error("IND should hold")
	}
	// A null foreign key is exempt (total projection).
	left.Add(relation.Tuple{relation.Null(), relation.NewInt(0)})
	if !ind.Satisfied(left, right) {
		t.Error("null foreign keys are exempt")
	}
	left.Add(relation.Tuple{relation.NewInt(2), relation.NewInt(0)})
	if ind.Satisfied(left, right) {
		t.Error("dangling foreign key undetected")
	}
}

func TestINDHelpers(t *testing.T) {
	s := fig3(t)
	ind := s.INDs[4] // TEACH[T.C.NR] ⊆ OFFER[O.C.NR]
	if !ind.KeyBased(s) {
		t.Error("key-based")
	}
	nonKey := NewIND("TEACH", []string{"T.C.NR"}, "OFFER", []string{"O.D.NAME"})
	if nonKey.KeyBased(s) {
		t.Error("O.D.NAME is not OFFER's key")
	}
	sub := ind.SubstituteScheme("OFFER", "MERGED")
	if sub.Right != "MERGED" || sub.Left != "TEACH" {
		t.Errorf("SubstituteScheme = %v", sub)
	}
}

func TestKeyDependency(t *testing.T) {
	s := fig3(t)
	fd := KeyDependency(s.Scheme("OFFER"))
	if fd.Scheme != "OFFER" || !EqualAttrSets(fd.LHS, []string{"O.C.NR"}) ||
		!EqualAttrSets(fd.RHS, []string{"O.C.NR", "O.D.NAME"}) {
		t.Errorf("KeyDependency = %v", fd)
	}
}
