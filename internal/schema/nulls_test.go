package schema

import (
	"testing"

	"repro/internal/relation"
)

func rel(attrs []string, rows ...[]any) *relation.Relation {
	r := relation.New(attrs...)
	for _, row := range rows {
		t := make(relation.Tuple, len(row))
		for i, v := range row {
			switch x := v.(type) {
			case nil:
				t[i] = relation.Null()
			case int:
				t[i] = relation.NewInt(int64(x))
			case string:
				t[i] = relation.NewString(x)
			default:
				panic("unsupported test value")
			}
		}
		r.Add(t)
	}
	return r
}

func TestNullExistenceSatisfied(t *testing.T) {
	ne := NewNullExistence("R", []string{"DATE"}, []string{"NR"})
	// The figure 1(iii) anomaly: WORKS with DATE non-null but NR null.
	ok := rel([]string{"SSN", "NR", "DATE"},
		[]any{1, 10, 100},
		[]any{2, 11, nil},
		[]any{3, nil, nil})
	if !ne.Satisfied(ok) {
		t.Error("constraint should hold")
	}
	bad := rel([]string{"SSN", "NR", "DATE"}, []any{1, nil, 100})
	if ne.Satisfied(bad) {
		t.Error("non-null DATE with null NR must violate DATE ⊑ NR")
	}
}

func TestNNASatisfied(t *testing.T) {
	nna := NNA("R", "A", "B")
	if !nna.IsNNA() {
		t.Error("IsNNA")
	}
	if NewNullExistence("R", []string{"A"}, []string{"B"}).IsNNA() {
		t.Error("non-empty LHS is not NNA")
	}
	if !nna.Satisfied(rel([]string{"A", "B"}, []any{1, 2})) {
		t.Error("total relation satisfies NNA")
	}
	if nna.Satisfied(rel([]string{"A", "B"}, []any{1, nil})) {
		t.Error("null under NNA must violate")
	}
}

func TestNullSyncSatisfied(t *testing.T) {
	ns := NewNullSync("R", "A", "B")
	if !ns.Satisfied(rel([]string{"A", "B", "C"},
		[]any{1, 2, 3},
		[]any{nil, nil, 4})) {
		t.Error("total or all-null subtuples satisfy NS")
	}
	if ns.Satisfied(rel([]string{"A", "B", "C"}, []any{1, nil, 3})) {
		t.Error("partly null subtuple must violate NS")
	}
}

func TestNullSyncExpand(t *testing.T) {
	ns := NewNullSync("R", "A", "B")
	exp := ns.Expand()
	if len(exp) != 2 {
		t.Fatalf("Expand len = %d", len(exp))
	}
	for _, ne := range exp {
		if ne.Scheme != "R" || len(ne.Y) != 1 || !EqualAttrSets(ne.Z, []string{"A", "B"}) {
			t.Errorf("Expand member = %v", ne)
		}
	}
	// Semantics agree: the expanded NE set is satisfied iff NS is.
	part := rel([]string{"A", "B"}, []any{1, nil})
	allSat := true
	for _, ne := range exp {
		if !ne.Satisfied(part) {
			allSat = false
		}
	}
	if allSat != ns.Satisfied(part) {
		t.Error("expansion semantics disagree on partly-null relation")
	}
}

func TestPartNullSatisfied(t *testing.T) {
	pn := NewPartNull("R", []string{"A", "B"}, []string{"C", "D"})
	if !pn.Satisfied(rel([]string{"A", "B", "C", "D"},
		[]any{1, 2, nil, nil},
		[]any{nil, nil, 3, 4},
		[]any{1, 2, 3, 4})) {
		t.Error("one total side suffices")
	}
	if pn.Satisfied(rel([]string{"A", "B", "C", "D"}, []any{1, nil, nil, 4})) {
		t.Error("no total side must violate PN")
	}
}

func TestTotalEqualitySatisfied(t *testing.T) {
	te := NewTotalEquality("R", []string{"A"}, []string{"B"})
	if !te.Satisfied(rel([]string{"A", "B"},
		[]any{1, 1},
		[]any{2, nil},
		[]any{nil, 3})) {
		t.Error("nulls exempt total equality")
	}
	if te.Satisfied(rel([]string{"A", "B"}, []any{1, 2})) {
		t.Error("differing non-null values must violate =⊥")
	}
}

func TestTotalEqualityMultiColumn(t *testing.T) {
	te := NewTotalEquality("R", []string{"A", "B"}, []string{"C", "D"})
	// Partly-null sides are exempt (neither side total).
	if !te.Satisfied(rel([]string{"A", "B", "C", "D"}, []any{1, nil, 1, 2})) {
		t.Error("partly-null left side exempt")
	}
	if te.Satisfied(rel([]string{"A", "B", "C", "D"}, []any{1, 2, 1, 3})) {
		t.Error("component mismatch must violate")
	}
}

func TestNullConstraintKeysCanonical(t *testing.T) {
	// Keys must be order-insensitive for sets, order-sensitive only where the
	// paper's semantics require a correspondence.
	a := NewNullExistence("R", []string{"X", "Y"}, []string{"Z"})
	b := NewNullExistence("R", []string{"Y", "X"}, []string{"Z"})
	if a.Key() != b.Key() {
		t.Error("NE key should normalize attr sets")
	}
	te1 := NewTotalEquality("R", []string{"A"}, []string{"B"})
	te2 := NewTotalEquality("R", []string{"B"}, []string{"A"})
	if te1.Key() != te2.Key() {
		t.Error("TE key should be symmetric")
	}
	pn1 := NewPartNull("R", []string{"A"}, []string{"B"})
	pn2 := NewPartNull("R", []string{"B"}, []string{"A"})
	if pn1.Key() != pn2.Key() {
		t.Error("PN key should be order-insensitive across sets")
	}
	ns1 := NewNullSync("R", "A", "B")
	ns2 := NewNullSync("R", "B", "A")
	if ns1.Key() != ns2.Key() {
		t.Error("NS key should normalize")
	}
}

func TestNullConstraintStrings(t *testing.T) {
	cases := []struct {
		nc   NullConstraint
		want string
	}{
		{NNA("R", "A", "B"), "R: ∅ ⊑ A,B"},
		{NewNullExistence("R", []string{"X"}, []string{"Y"}), "R: X ⊑ Y"},
		{NewNullSync("R", "A", "B"), "R: NS(A,B)"},
		{NewPartNull("R", []string{"A"}, []string{"B", "C"}), "R: PN({A}, {B,C})"},
		{NewTotalEquality("R", []string{"A"}, []string{"B"}), "R: A =⊥ B"},
	}
	for _, c := range cases {
		if got := c.nc.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestSubstituteScheme(t *testing.T) {
	ncs := []NullConstraint{
		NNA("R", "A"),
		NewNullSync("R", "A"),
		NewPartNull("R", []string{"A"}),
		NewTotalEquality("R", []string{"A"}, []string{"B"}),
	}
	for _, nc := range ncs {
		got := nc.SubstituteScheme("R", "M")
		if got.SchemeName() != "M" {
			t.Errorf("%T SubstituteScheme failed", nc)
		}
		unchanged := nc.SubstituteScheme("X", "M")
		if unchanged.SchemeName() != "R" {
			t.Errorf("%T SubstituteScheme should ignore other schemes", nc)
		}
	}
}

func TestMentionedAttrs(t *testing.T) {
	cases := []struct {
		nc   NullConstraint
		want []string
	}{
		{NewNullExistence("R", []string{"A"}, []string{"B"}), []string{"A", "B"}},
		{NewNullSync("R", "A", "B"), []string{"A", "B"}},
		{NewPartNull("R", []string{"A"}, []string{"B"}), []string{"A", "B"}},
		{NewTotalEquality("R", []string{"A"}, []string{"B"}), []string{"A", "B"}},
	}
	for _, c := range cases {
		if !EqualAttrSets(c.nc.MentionedAttrs(), c.want) {
			t.Errorf("%v MentionedAttrs = %v", c.nc, c.nc.MentionedAttrs())
		}
	}
}

func TestAttrSetUtilities(t *testing.T) {
	if got := NormalizeAttrs([]string{"b", "a", "b"}); !EqualAttrLists(got, []string{"a", "b"}) {
		t.Errorf("NormalizeAttrs = %v", got)
	}
	if !EqualAttrSets([]string{"a", "b"}, []string{"b", "a"}) {
		t.Error("EqualAttrSets order-insensitive")
	}
	if EqualAttrSets([]string{"a"}, []string{"a", "b"}) {
		t.Error("EqualAttrSets size")
	}
	if !SubsetOf([]string{"a"}, []string{"a", "b"}) || SubsetOf([]string{"c"}, []string{"a"}) {
		t.Error("SubsetOf")
	}
	if got := UnionAttrs([]string{"a"}, []string{"b", "a"}); !EqualAttrLists(got, []string{"a", "b"}) {
		t.Errorf("UnionAttrs = %v", got)
	}
	if got := DiffAttrs([]string{"a", "b", "c"}, []string{"b"}); !EqualAttrLists(got, []string{"a", "c"}) {
		t.Errorf("DiffAttrs = %v", got)
	}
	if got := IntersectAttrs([]string{"a", "b"}, []string{"b", "c"}); !EqualAttrLists(got, []string{"b"}) {
		t.Errorf("IntersectAttrs = %v", got)
	}
	if !ContainsAttr([]string{"a"}, "a") || ContainsAttr([]string{"a"}, "b") {
		t.Error("ContainsAttr")
	}
	if !OverlapAttrs([]string{"a", "b"}, []string{"b"}) || OverlapAttrs([]string{"a"}, []string{"b"}) {
		t.Error("OverlapAttrs")
	}
}
