package schema

import (
	"encoding/json"
	"fmt"
)

// JSON (de)serialization for schemas: a stable interchange format for the
// command-line tools (relmerge/sdt -out json). Null constraints are tagged
// by kind because NullConstraint is an interface.

type schemaJSON struct {
	Relations []relationJSON `json:"relations"`
	FDs       []fdJSON       `json:"fds,omitempty"`
	INDs      []indJSON      `json:"inds,omitempty"`
	Nulls     []nullJSON     `json:"nulls,omitempty"`
}

type relationJSON struct {
	Name          string      `json:"name"`
	Attrs         []Attribute `json:"attrs"`
	PrimaryKey    []string    `json:"key"`
	CandidateKeys [][]string  `json:"candidateKeys,omitempty"`
}

type fdJSON struct {
	Scheme string   `json:"scheme"`
	LHS    []string `json:"lhs"`
	RHS    []string `json:"rhs"`
}

type indJSON struct {
	Left       string   `json:"left"`
	LeftAttrs  []string `json:"leftAttrs"`
	Right      string   `json:"right"`
	RightAttrs []string `json:"rightAttrs"`
}

type nullJSON struct {
	Kind   string     `json:"kind"` // nna, nullexist, nullsync, partnull, totaleq
	Scheme string     `json:"scheme"`
	Y      []string   `json:"y,omitempty"`
	Z      []string   `json:"z,omitempty"`
	Sets   [][]string `json:"sets,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (s *Schema) MarshalJSON() ([]byte, error) {
	out := schemaJSON{}
	for _, rs := range s.Relations {
		out.Relations = append(out.Relations, relationJSON{
			Name:          rs.Name,
			Attrs:         rs.Attrs,
			PrimaryKey:    rs.PrimaryKey,
			CandidateKeys: rs.CandidateKeys,
		})
	}
	for _, fd := range s.FDs {
		out.FDs = append(out.FDs, fdJSON{Scheme: fd.Scheme, LHS: fd.LHS, RHS: fd.RHS})
	}
	for _, ind := range s.INDs {
		out.INDs = append(out.INDs, indJSON{
			Left: ind.Left, LeftAttrs: ind.LeftAttrs,
			Right: ind.Right, RightAttrs: ind.RightAttrs,
		})
	}
	for _, nc := range s.Nulls {
		j, err := nullToJSON(nc)
		if err != nil {
			return nil, err
		}
		out.Nulls = append(out.Nulls, j)
	}
	return json.MarshalIndent(out, "", "  ")
}

func nullToJSON(nc NullConstraint) (nullJSON, error) {
	switch c := nc.(type) {
	case NullExistence:
		if c.IsNNA() {
			return nullJSON{Kind: "nna", Scheme: c.Scheme, Z: c.Z}, nil
		}
		return nullJSON{Kind: "nullexist", Scheme: c.Scheme, Y: c.Y, Z: c.Z}, nil
	case NullSync:
		return nullJSON{Kind: "nullsync", Scheme: c.Scheme, Y: c.Y}, nil
	case PartNull:
		return nullJSON{Kind: "partnull", Scheme: c.Scheme, Sets: c.Sets}, nil
	case TotalEquality:
		return nullJSON{Kind: "totaleq", Scheme: c.Scheme, Y: c.Y, Z: c.Z}, nil
	default:
		return nullJSON{}, fmt.Errorf("schema: unknown null constraint type %T", nc)
	}
}

// UnmarshalJSON implements json.Unmarshaler. The decoded schema is validated.
func (s *Schema) UnmarshalJSON(data []byte) error {
	var in schemaJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	out := New()
	for _, r := range in.Relations {
		rs := NewScheme(r.Name, r.Attrs, r.PrimaryKey)
		rs.CandidateKeys = r.CandidateKeys
		out.Relations = append(out.Relations, rs)
	}
	if len(in.FDs) > 0 {
		for _, fd := range in.FDs {
			out.FDs = append(out.FDs, NewFD(fd.Scheme, fd.LHS, fd.RHS))
		}
	} else {
		// Default: key dependencies only.
		for _, rs := range out.Relations {
			out.FDs = append(out.FDs, KeyDependency(rs))
		}
	}
	for _, ind := range in.INDs {
		out.INDs = append(out.INDs, NewIND(ind.Left, ind.LeftAttrs, ind.Right, ind.RightAttrs))
	}
	for _, n := range in.Nulls {
		nc, err := nullFromJSON(n)
		if err != nil {
			return err
		}
		out.Nulls = append(out.Nulls, nc)
	}
	if err := out.Validate(); err != nil {
		return fmt.Errorf("schema: decoded schema invalid: %w", err)
	}
	*s = *out
	return nil
}

func nullFromJSON(n nullJSON) (NullConstraint, error) {
	switch n.Kind {
	case "nna":
		return NNA(n.Scheme, n.Z...), nil
	case "nullexist":
		return NewNullExistence(n.Scheme, n.Y, n.Z), nil
	case "nullsync":
		return NewNullSync(n.Scheme, n.Y...), nil
	case "partnull":
		return NewPartNull(n.Scheme, n.Sets...), nil
	case "totaleq":
		return NewTotalEquality(n.Scheme, n.Y, n.Z), nil
	default:
		return nil, fmt.Errorf("schema: unknown null constraint kind %q", n.Kind)
	}
}
