package schema

import (
	"fmt"
	"strings"
)

// RelationScheme is a named relation-scheme Ri(Xi) with a primary key Ki.
// The attribute list is ordered (for display and positional key
// correspondence); the primary key is an ordered sublist of the attribute
// names. Candidate keys beyond the primary key may be recorded; they matter
// for Prop. 5.1(ii), which requires merge-set members to have a *unique*
// (primary) key for the merged key to remain non-null.
type RelationScheme struct {
	Name          string
	Attrs         []Attribute
	PrimaryKey    []string
	CandidateKeys [][]string // additional keys, excluding the primary key
}

// NewScheme builds a relation-scheme. Attributes are (name, domain) pairs
// taken from attrs; key names the primary key in order.
func NewScheme(name string, attrs []Attribute, key []string) *RelationScheme {
	return &RelationScheme{Name: name, Attrs: attrs, PrimaryKey: key}
}

// AttrNames returns the ordered attribute names of the scheme.
func (rs *RelationScheme) AttrNames() []string { return AttrNames(rs.Attrs) }

// HasAttr reports whether the scheme names the attribute.
func (rs *RelationScheme) HasAttr(name string) bool {
	return rs.attr(name) != nil
}

// Domain returns the domain of the named attribute, or "" if absent.
func (rs *RelationScheme) Domain(name string) string {
	if a := rs.attr(name); a != nil {
		return a.Domain
	}
	return ""
}

func (rs *RelationScheme) attr(name string) *Attribute {
	for i := range rs.Attrs {
		if rs.Attrs[i].Name == name {
			return &rs.Attrs[i]
		}
	}
	return nil
}

// NonKeyAttrs returns the attribute names outside the primary key, in order.
func (rs *RelationScheme) NonKeyAttrs() []string {
	return DiffAttrs(rs.AttrNames(), rs.PrimaryKey)
}

// KeyDomains returns the domains of the primary-key attributes, in key order.
func (rs *RelationScheme) KeyDomains() []string {
	ds := make([]string, len(rs.PrimaryKey))
	for i, k := range rs.PrimaryKey {
		ds[i] = rs.Domain(k)
	}
	return ds
}

// KeyCompatible reports whether the primary keys of rs and other are
// compatible: same arity and position-wise equal domains. The positional
// correspondence is the one Merge uses for renaming and total-equality
// constraints, following the paper's "one-to-one correspondence of
// compatible attributes".
func (rs *RelationScheme) KeyCompatible(other *RelationScheme) bool {
	a, b := rs.KeyDomains(), other.KeyDomains()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] == "" || a[i] != b[i] {
			return false
		}
	}
	return true
}

// Validate checks internal consistency of the scheme.
func (rs *RelationScheme) Validate() error {
	if rs.Name == "" {
		return fmt.Errorf("scheme with empty name")
	}
	if len(rs.Attrs) == 0 {
		return fmt.Errorf("scheme %s: no attributes", rs.Name)
	}
	seen := make(map[string]bool, len(rs.Attrs))
	for _, a := range rs.Attrs {
		if a.Name == "" {
			return fmt.Errorf("scheme %s: attribute with empty name", rs.Name)
		}
		if a.Domain == "" {
			return fmt.Errorf("scheme %s: attribute %s has no domain", rs.Name, a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("scheme %s: duplicate attribute %s", rs.Name, a.Name)
		}
		seen[a.Name] = true
	}
	if len(rs.PrimaryKey) == 0 {
		return fmt.Errorf("scheme %s: no primary key", rs.Name)
	}
	if err := rs.validateKey(rs.PrimaryKey); err != nil {
		return err
	}
	for _, ck := range rs.CandidateKeys {
		if err := rs.validateKey(ck); err != nil {
			return err
		}
		if EqualAttrSets(ck, rs.PrimaryKey) {
			return fmt.Errorf("scheme %s: candidate key duplicates the primary key", rs.Name)
		}
	}
	return nil
}

func (rs *RelationScheme) validateKey(key []string) error {
	seen := make(map[string]bool, len(key))
	for _, k := range key {
		if !rs.HasAttr(k) {
			return fmt.Errorf("scheme %s: key attribute %s not in scheme", rs.Name, k)
		}
		if seen[k] {
			return fmt.Errorf("scheme %s: duplicate key attribute %s", rs.Name, k)
		}
		seen[k] = true
	}
	return nil
}

// Clone returns a deep copy of the scheme.
func (rs *RelationScheme) Clone() *RelationScheme {
	c := &RelationScheme{
		Name:       rs.Name,
		Attrs:      append([]Attribute(nil), rs.Attrs...),
		PrimaryKey: append([]string(nil), rs.PrimaryKey...),
	}
	for _, ck := range rs.CandidateKeys {
		c.CandidateKeys = append(c.CandidateKeys, append([]string(nil), ck...))
	}
	return c
}

// String renders the scheme in the paper's style, with key attributes
// underlined approximated by a trailing marker: NAME(K1*, K2*, A, B).
func (rs *RelationScheme) String() string {
	var b strings.Builder
	b.WriteString(rs.Name)
	b.WriteString("(")
	isKey := make(map[string]bool, len(rs.PrimaryKey))
	for _, k := range rs.PrimaryKey {
		isKey[k] = true
	}
	for i, a := range rs.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		if isKey[a.Name] {
			b.WriteString("*")
		}
	}
	b.WriteString(")")
	return b.String()
}
