package schema

import (
	"encoding/json"
	"strings"
	"testing"
)

func jsonFixture(t *testing.T) *Schema {
	t.Helper()
	s := New()
	s.AddScheme(NewScheme("R",
		[]Attribute{{Name: "A", Domain: "d"}, {Name: "B", Domain: "e"}, {Name: "C", Domain: "e"}},
		[]string{"A"}))
	s.Scheme("R").CandidateKeys = [][]string{{"B"}}
	s.AddScheme(NewScheme("S",
		[]Attribute{{Name: "X", Domain: "d"}}, []string{"X"}))
	s.INDs = append(s.INDs, NewIND("R", []string{"A"}, "S", []string{"X"}))
	s.Nulls = append(s.Nulls,
		NNA("R", "A"),
		NewNullExistence("R", []string{"B"}, []string{"C"}),
		NewNullSync("R", "B", "C"),
		NewPartNull("R", []string{"B"}, []string{"C"}),
		NewTotalEquality("R", []string{"B"}, []string{"C"}),
		NNA("S", "X"),
	)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestJSONRoundTrip(t *testing.T) {
	s := jsonFixture(t)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schema
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.SameConstraints(s) {
		t.Errorf("constraints not preserved:\n%s\nvs\n%s", s, &back)
	}
	if !EqualAttrLists(back.SchemeNames(), s.SchemeNames()) {
		t.Error("scheme order not preserved")
	}
	r := back.Scheme("R")
	if len(r.CandidateKeys) != 1 || !EqualAttrSets(r.CandidateKeys[0], []string{"B"}) {
		t.Error("candidate keys lost")
	}
	if r.Domain("B") != "e" {
		t.Error("domains lost")
	}
	// FDs preserved (key dependencies here).
	if len(back.FDs) != len(s.FDs) {
		t.Errorf("FDs = %d, want %d", len(back.FDs), len(s.FDs))
	}
}

func TestJSONOutputShape(t *testing.T) {
	s := jsonFixture(t)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		`"kind":"nna"`, `"kind":"nullexist"`, `"kind":"nullsync"`,
		`"kind":"partnull"`, `"kind":"totaleq"`,
		`"leftAttrs"`, `"candidateKeys"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in JSON:\n%s", want, text)
		}
	}
}

func TestJSONDecodeDefaultsKeyDependencies(t *testing.T) {
	// Without explicit FDs, key dependencies are synthesized.
	var s Schema
	err := json.Unmarshal([]byte(`{
		"relations": [{"name": "R", "attrs": [{"Name":"A","Domain":"d"}], "key": ["A"]}],
		"nulls": [{"kind":"nna","scheme":"R","z":["A"]}]
	}`), &s)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.FDs) != 1 || s.FDs[0].Scheme != "R" {
		t.Errorf("FDs = %v", s.FDs)
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	cases := []string{
		`{`, // malformed
		`{"relations":[{"name":"R","attrs":[{"Name":"A","Domain":"d"}],"key":["Z"]}]}`,                                          // invalid schema
		`{"relations":[{"name":"R","attrs":[{"Name":"A","Domain":"d"}],"key":["A"]}],"nulls":[{"kind":"banana","scheme":"R"}]}`, // unknown kind
	}
	for _, c := range cases {
		var s Schema
		if err := json.Unmarshal([]byte(c), &s); err == nil {
			t.Errorf("decode of %q should fail", c)
		}
	}
}
