package schema

import (
	"fmt"

	"repro/internal/relation"
)

// FD is a functional dependency R: Y → Z over a single relation-scheme.
// The key dependencies of the paper's F sets are FDs of the form K → X.
// LHS and RHS are attribute sets (canonical order is not required on input;
// Key() normalizes).
type FD struct {
	Scheme string
	LHS    []string
	RHS    []string
}

// NewFD builds a functional dependency.
func NewFD(scheme string, lhs, rhs []string) FD {
	return FD{Scheme: scheme, LHS: lhs, RHS: rhs}
}

// KeyDependency builds the key dependency K → X for a relation-scheme.
func KeyDependency(rs *RelationScheme) FD {
	return FD{Scheme: rs.Name, LHS: append([]string(nil), rs.PrimaryKey...), RHS: rs.AttrNames()}
}

// Satisfied reports whether r satisfies the FD: any two tuples agreeing on
// LHS (under Identical equality, so nulls agree with nulls — the behaviour
// of DBMSs that consider all null values identical, per section 5.1) must
// agree on RHS.
func (fd FD) Satisfied(r *relation.Relation) bool {
	lp := r.Positions(fd.LHS)
	rp := r.Positions(fd.RHS)
	seen := make(map[string]relation.Tuple, r.Len())
	for _, t := range r.Tuples() {
		key := t.Project(lp).EncodeKey()
		rhs := t.Project(rp)
		if prev, ok := seen[key]; ok {
			if !prev.Identical(rhs) {
				return false
			}
		} else {
			seen[key] = rhs
		}
	}
	return true
}

// Key returns a canonical identity string for set comparisons.
func (fd FD) Key() string {
	return fd.Scheme + ":" + JoinAttrs(NormalizeAttrs(fd.LHS)) + "->" + JoinAttrs(NormalizeAttrs(fd.RHS))
}

// String renders the FD in the paper's notation.
func (fd FD) String() string {
	return fmt.Sprintf("%s: %s → %s", fd.Scheme, JoinAttrs(fd.LHS), JoinAttrs(fd.RHS))
}

// IND is an inclusion dependency Left[LeftAttrs] ⊆ Right[RightAttrs].
// The attribute lists are ordered correspondences (position i of LeftAttrs
// maps to position i of RightAttrs); they must be compatible position-wise.
// An IND is key-based — a referential integrity constraint [Date 1986] —
// when RightAttrs is the primary key of the right scheme.
type IND struct {
	Left       string
	LeftAttrs  []string
	Right      string
	RightAttrs []string
}

// NewIND builds an inclusion dependency.
func NewIND(left string, leftAttrs []string, right string, rightAttrs []string) IND {
	return IND{Left: left, LeftAttrs: leftAttrs, Right: right, RightAttrs: rightAttrs}
}

// Satisfied reports whether the pair of relations satisfies the IND under
// the paper's semantics: π↓_Y(r_left) ⊆ π↓_Z(r_right) (total projections, so
// tuples with nulls in the foreign key are exempt).
func (ind IND) Satisfied(left, right *relation.Relation) bool {
	lproj := left.TotalProject(ind.LeftAttrs)
	rproj := right.TotalProject(ind.RightAttrs)
	for _, t := range lproj.Tuples() {
		if !rproj.Contains(t) {
			return false
		}
	}
	return true
}

// KeyBased reports whether the IND is key-based in s, i.e. its right side is
// the primary key of the right scheme (as a set).
func (ind IND) KeyBased(s *Schema) bool {
	rs := s.Scheme(ind.Right)
	return rs != nil && EqualAttrSets(ind.RightAttrs, rs.PrimaryKey)
}

// Key returns a canonical identity string for set comparisons. The attribute
// correspondence is order-significant, so no normalization is applied.
func (ind IND) Key() string {
	return ind.Left + "[" + JoinAttrs(ind.LeftAttrs) + "]<=" + ind.Right + "[" + JoinAttrs(ind.RightAttrs) + "]"
}

// String renders the IND in the paper's notation.
func (ind IND) String() string {
	return fmt.Sprintf("%s[%s] ⊆ %s[%s]", ind.Left, JoinAttrs(ind.LeftAttrs), ind.Right, JoinAttrs(ind.RightAttrs))
}

// SubstituteScheme returns a copy with occurrences of scheme old renamed to
// new on either side.
func (ind IND) SubstituteScheme(old, new string) IND {
	out := ind
	if out.Left == old {
		out.Left = new
	}
	if out.Right == old {
		out.Right = new
	}
	return out
}
