package schema

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// NullConstraint is one of the paper's single-tuple restrictions on where and
// how nulls appear in a relation (section 3): null-existence (including
// nulls-not-allowed), null-synchronization sets, part-null, and
// total-equality constraints.
type NullConstraint interface {
	// SchemeName is the relation-scheme the constraint is attached to.
	SchemeName() string
	// Satisfied reports whether the relation satisfies the constraint.
	Satisfied(r *relation.Relation) bool
	// Key is a canonical identity string for set comparisons.
	Key() string
	// String renders the constraint in the paper's notation.
	String() string
	// SubstituteScheme reattaches the constraint to a renamed scheme.
	SubstituteScheme(old, new string) NullConstraint
	// MentionedAttrs lists every attribute the constraint refers to.
	MentionedAttrs() []string
}

// NullExistence is R: Y ⊑ Z — for every tuple t, t[Y] total only if t[Z]
// total ("non-null Y requires non-null Z"). With an empty Y it is a
// nulls-not-allowed constraint R: ∅ ⊑ Z.
type NullExistence struct {
	Scheme string
	Y      []string
	Z      []string
}

// NewNullExistence builds the constraint scheme: Y ⊑ Z.
func NewNullExistence(scheme string, y, z []string) NullExistence {
	return NullExistence{Scheme: scheme, Y: y, Z: z}
}

// NNA builds the nulls-not-allowed constraint scheme: ∅ ⊑ attrs.
func NNA(scheme string, attrs ...string) NullExistence {
	return NullExistence{Scheme: scheme, Z: attrs}
}

// IsNNA reports whether the constraint is a nulls-not-allowed constraint
// (empty left-hand side).
func (ne NullExistence) IsNNA() bool { return len(ne.Y) == 0 }

// SchemeName implements NullConstraint.
func (ne NullExistence) SchemeName() string { return ne.Scheme }

// Satisfied implements NullConstraint: t[Y] total ⇒ t[Z] total for every t.
func (ne NullExistence) Satisfied(r *relation.Relation) bool {
	for _, t := range r.Tuples() {
		if totalOn(r, t, ne.Y) && !totalOn(r, t, ne.Z) {
			return false
		}
	}
	return true
}

// Key implements NullConstraint.
func (ne NullExistence) Key() string {
	return "ne:" + ne.Scheme + ":" + JoinAttrs(NormalizeAttrs(ne.Y)) + "<=" + JoinAttrs(NormalizeAttrs(ne.Z))
}

// String implements NullConstraint.
func (ne NullExistence) String() string {
	lhs := "∅"
	if len(ne.Y) > 0 {
		lhs = JoinAttrs(ne.Y)
	}
	return fmt.Sprintf("%s: %s ⊑ %s", ne.Scheme, lhs, JoinAttrs(ne.Z))
}

// SubstituteScheme implements NullConstraint.
func (ne NullExistence) SubstituteScheme(old, new string) NullConstraint {
	if ne.Scheme == old {
		ne.Scheme = new
	}
	return ne
}

// MentionedAttrs implements NullConstraint.
func (ne NullExistence) MentionedAttrs() []string { return UnionAttrs(ne.Y, ne.Z) }

// NullSync is the null-synchronization set R: NS(Y) — a bundle of
// null-existence constraints {R: A ⊑ Y | A ∈ Y}, satisfied iff in every tuple
// t[Y] is either total or entirely null (never partly null).
type NullSync struct {
	Scheme string
	Y      []string
}

// NewNullSync builds the constraint scheme: NS(attrs).
func NewNullSync(scheme string, attrs ...string) NullSync {
	return NullSync{Scheme: scheme, Y: attrs}
}

// SchemeName implements NullConstraint.
func (ns NullSync) SchemeName() string { return ns.Scheme }

// Satisfied implements NullConstraint.
func (ns NullSync) Satisfied(r *relation.Relation) bool {
	ps := r.Positions(ns.Y)
	for _, t := range r.Tuples() {
		sub := t.Project(ps)
		if !sub.IsTotal() && !sub.IsAllNull() {
			return false
		}
	}
	return true
}

// Expand returns the equivalent set of null-existence constraints
// {A ⊑ Y | A ∈ Y} from the paper's definition.
func (ns NullSync) Expand() []NullExistence {
	out := make([]NullExistence, len(ns.Y))
	for i, a := range ns.Y {
		out[i] = NullExistence{Scheme: ns.Scheme, Y: []string{a}, Z: append([]string(nil), ns.Y...)}
	}
	return out
}

// Key implements NullConstraint.
func (ns NullSync) Key() string {
	return "ns:" + ns.Scheme + ":" + JoinAttrs(NormalizeAttrs(ns.Y))
}

// String implements NullConstraint.
func (ns NullSync) String() string {
	return fmt.Sprintf("%s: NS(%s)", ns.Scheme, JoinAttrs(ns.Y))
}

// SubstituteScheme implements NullConstraint.
func (ns NullSync) SubstituteScheme(old, new string) NullConstraint {
	if ns.Scheme == old {
		ns.Scheme = new
	}
	return ns
}

// MentionedAttrs implements NullConstraint.
func (ns NullSync) MentionedAttrs() []string { return UnionAttrs(ns.Y) }

// PartNull is R: PN(Y1, …, Ym) — every tuple has at least one total subtuple
// t[Yj].
type PartNull struct {
	Scheme string
	Sets   [][]string
}

// NewPartNull builds the constraint scheme: PN(sets...).
func NewPartNull(scheme string, sets ...[]string) PartNull {
	return PartNull{Scheme: scheme, Sets: sets}
}

// SchemeName implements NullConstraint.
func (pn PartNull) SchemeName() string { return pn.Scheme }

// Satisfied implements NullConstraint.
func (pn PartNull) Satisfied(r *relation.Relation) bool {
	for _, t := range r.Tuples() {
		ok := false
		for _, set := range pn.Sets {
			if totalOn(r, t, set) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Key implements NullConstraint.
func (pn PartNull) Key() string {
	parts := make([]string, len(pn.Sets))
	for i, set := range pn.Sets {
		parts[i] = JoinAttrs(NormalizeAttrs(set))
	}
	sort.Strings(parts)
	return "pn:" + pn.Scheme + ":" + strings.Join(parts, "|")
}

// String implements NullConstraint.
func (pn PartNull) String() string {
	parts := make([]string, len(pn.Sets))
	for i, set := range pn.Sets {
		parts[i] = "{" + JoinAttrs(set) + "}"
	}
	return fmt.Sprintf("%s: PN(%s)", pn.Scheme, strings.Join(parts, ", "))
}

// SubstituteScheme implements NullConstraint.
func (pn PartNull) SubstituteScheme(old, new string) NullConstraint {
	if pn.Scheme == old {
		pn.Scheme = new
	}
	return pn
}

// MentionedAttrs implements NullConstraint.
func (pn PartNull) MentionedAttrs() []string { return UnionAttrs(pn.Sets...) }

// TotalEquality is R: Y =⊥ Z — in every tuple, t[Y] = t[Z] whenever both
// subtuples are total. Y and Z are ordered correspondences of compatible
// attributes (position i of Y pairs with position i of Z).
type TotalEquality struct {
	Scheme string
	Y      []string
	Z      []string
}

// NewTotalEquality builds the constraint scheme: Y =⊥ Z.
func NewTotalEquality(scheme string, y, z []string) TotalEquality {
	return TotalEquality{Scheme: scheme, Y: y, Z: z}
}

// SchemeName implements NullConstraint.
func (te TotalEquality) SchemeName() string { return te.Scheme }

// Satisfied implements NullConstraint.
func (te TotalEquality) Satisfied(r *relation.Relation) bool {
	yp := r.Positions(te.Y)
	zp := r.Positions(te.Z)
	for _, t := range r.Tuples() {
		ys, zs := t.Project(yp), t.Project(zp)
		if ys.IsTotal() && zs.IsTotal() && !ys.EqualTotal(zs) {
			return false
		}
	}
	return true
}

// Key implements NullConstraint. Total equality is symmetric, so the two
// sides are ordered canonically; the positional correspondence is preserved.
func (te TotalEquality) Key() string {
	a, b := JoinAttrs(te.Y), JoinAttrs(te.Z)
	if a > b {
		a, b = b, a
	}
	return "te:" + te.Scheme + ":" + a + "=" + b
}

// String implements NullConstraint.
func (te TotalEquality) String() string {
	return fmt.Sprintf("%s: %s =⊥ %s", te.Scheme, JoinAttrs(te.Y), JoinAttrs(te.Z))
}

// SubstituteScheme implements NullConstraint.
func (te TotalEquality) SubstituteScheme(old, new string) NullConstraint {
	if te.Scheme == old {
		te.Scheme = new
	}
	return te
}

// MentionedAttrs implements NullConstraint.
func (te TotalEquality) MentionedAttrs() []string { return UnionAttrs(te.Y, te.Z) }
