package query

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/figures"
	"repro/internal/relation"
	"repro/internal/state"
)

// setup builds base and merged (figure 6) engines over the same generated
// figure 3 data and returns both planners plus the course keys.
func setup(t *testing.T, seed int64) (*BasePlanner, *MergedPlanner, []relation.Tuple) {
	t.Helper()
	s := figures.Fig3()
	m, err := core.Merge(s, []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	if err != nil {
		t.Fatal(err)
	}
	m.RemoveAll()

	rng := rand.New(rand.NewSource(seed))
	st := state.MustGenerate(s, rng, state.GenOptions{
		Rows:    12,
		RowsPer: map[string]int{"OFFER": 8, "TEACH": 4, "ASSIST": 6},
	})
	baseDB := engine.MustOpen(s)
	if err := baseDB.Load(st); err != nil {
		t.Fatal(err)
	}
	mergedDB := engine.MustOpen(m.Schema)
	if err := mergedDB.Load(m.MapState(st)); err != nil {
		t.Fatal(err)
	}
	var keys []relation.Tuple
	for _, tup := range st.Relation("COURSE").Tuples() {
		keys = append(keys, relation.Tuple{tup[0]})
	}
	return &BasePlanner{DB: baseDB}, &MergedPlanner{DB: mergedDB, M: m}, keys
}

// The same logical query returns identical answers on both designs —
// including a query for T.C.NR, an attribute Remove deleted from the merged
// relation (reconstructed from Km via total equality).
func TestPlannersAgree(t *testing.T) {
	base, merged, keys := setup(t, 9)
	want := []string{"C.NR", "O.D.NAME", "T.C.NR", "T.F.SSN", "A.S.SSN"}
	for _, key := range keys {
		q := Query{Root: "COURSE", Key: key, Want: want}
		a, err := base.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := merged.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, attr := range want {
			av, bv := a[attr], b[attr]
			if av.IsNull() != bv.IsNull() || (!av.IsNull() && !av.Identical(bv)) {
				t.Fatalf("key %v attr %s: base %v vs merged %v", key, attr, av, bv)
			}
		}
		// The reconstructed T.C.NR equals C.NR exactly when TEACH is present.
		if !b["T.C.NR"].IsNull() && !b["T.C.NR"].Identical(b["C.NR"]) {
			t.Fatalf("key %v: reconstructed T.C.NR %v ≠ C.NR %v", key, b["T.C.NR"], b["C.NR"])
		}
	}
}

// The access-path difference: the merged planner answers any such query in
// one lookup; the base planner needs one per owning scheme.
func TestPlannerLookupCounts(t *testing.T) {
	base, merged, keys := setup(t, 11)
	q := Query{Root: "COURSE", Key: keys[0],
		Want: []string{"C.NR", "O.D.NAME", "T.F.SSN", "A.S.SSN"}}

	base.DB.Stats.Reset()
	if _, err := base.Answer(q); err != nil {
		t.Fatal(err)
	}
	if got := base.DB.Stats.Lookups(); got != 4 {
		t.Errorf("base lookups = %d, want 4", got)
	}

	merged.DB.Stats.Reset()
	if _, err := merged.Answer(q); err != nil {
		t.Fatal(err)
	}
	if got := merged.DB.Stats.Lookups(); got != 1 {
		t.Errorf("merged lookups = %d, want 1", got)
	}
}

func TestPlannerMissingObject(t *testing.T) {
	base, merged, _ := setup(t, 13)
	q := Query{Root: "COURSE", Key: relation.Tuple{relation.NewString("nope")},
		Want: []string{"O.D.NAME", "T.C.NR"}}
	a, err := base.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := merged.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	for attr := range a {
		if !a[attr].IsNull() || !b[attr].IsNull() {
			t.Errorf("missing object should answer nulls: %v / %v", a[attr], b[attr])
		}
	}
}

func TestPlannerErrors(t *testing.T) {
	base, merged, keys := setup(t, 17)
	if _, err := base.Answer(Query{Root: "NOPE", Key: keys[0], Want: []string{"C.NR"}}); err == nil {
		t.Error("unknown root")
	}
	if _, err := base.Answer(Query{Root: "COURSE", Key: keys[0], Want: []string{"ZZZ"}}); err == nil {
		t.Error("unknown attribute")
	}
	// D.NAME belongs to DEPARTMENT, whose key is not course-compatible.
	if _, err := base.Answer(Query{Root: "COURSE", Key: keys[0], Want: []string{"D.NAME"}}); err == nil {
		t.Error("attribute outside the key cluster")
	}
	if _, err := merged.Answer(Query{Root: "PERSON", Key: keys[0], Want: []string{"P.SSN"}}); err == nil {
		t.Error("non-member root on the merged planner")
	}
	if _, err := merged.Answer(Query{Root: "COURSE", Key: keys[0], Want: []string{"D.NAME"}}); err == nil {
		t.Error("attribute neither merged nor removed")
	}
}

// Querying through a member root other than the key-relation works the same
// (the key value spaces coincide).
func TestPlannerAlternateRoot(t *testing.T) {
	base, merged, keys := setup(t, 19)
	for _, key := range keys {
		q := Query{Root: "OFFER", Key: key, Want: []string{"O.D.NAME", "T.F.SSN"}}
		a, err := base.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := merged.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		for attr := range a {
			if a[attr].IsNull() != b[attr].IsNull() {
				t.Fatalf("disagreement on %s", attr)
			}
		}
	}
}
