// Package query implements a logical query layer over the merging technique:
// queries are phrased against the ORIGINAL schema's attributes and answered
// on either the base engine (one indexed lookup per owning relation — the
// navigational join) or the merged engine (a single lookup, with removed key
// copies reconstructed from the total-equality semantics of Definition 4.3's
// μ′ mapping).
//
// This is the payoff of information-capacity preservation made operational:
// the same logical query returns identical answers on both physical designs,
// and the planner makes the access-path difference observable through the
// engine's counters.
package query

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/schema"
)

// Query asks for the values of original-schema attributes of the object
// identified by the root scheme's primary-key value. Every wanted attribute
// must belong to a scheme whose primary key is compatible with the root's
// (the key-sharing cluster the merge operates on).
type Query struct {
	Root string
	Key  relation.Tuple
	Want []string
}

// Result maps requested attributes to values; attributes of absent member
// parts are null.
type Result map[string]relation.Value

// Planner answers logical queries on one physical design.
type Planner interface {
	Answer(q Query) (Result, error)
}

// Planner metric names. Base and merged planners report under distinct
// names, so one registry shows the access-path difference directly: the base
// planner performs one relation lookup per owning scheme, the merged planner
// one lookup per query plus μ′ reconstructions for removed attributes.
const (
	metricBaseQueries    = "query.base.queries"
	metricBaseLookups    = "query.base.relation_lookups"
	metricMergedQueries  = "query.merged.queries"
	metricMergedReconstr = "query.merged.reconstructions"
)

// BasePlanner answers on the unmerged design: one key lookup per owning
// relation-scheme.
type BasePlanner struct {
	DB *engine.DB
	// Obs, when set, receives planner-decision counters (query.base.*).
	Obs *obs.Registry
}

// Answer implements Planner.
func (p *BasePlanner) Answer(q Query) (Result, error) {
	return p.AnswerCtx(context.Background(), q)
}

// AnswerCtx is Answer with a context: a tracer carried by the context
// records a query.base.Answer span.
func (p *BasePlanner) AnswerCtx(ctx context.Context, q Query) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, sp := obs.Span(ctx, "query.base.Answer")
	defer sp.End()
	p.Obs.Counter(metricBaseQueries).Inc()
	s := p.DB.Schema
	root := s.Scheme(q.Root)
	if root == nil {
		return nil, fmt.Errorf("query: unknown root %s", q.Root)
	}
	byScheme := make(map[string][]string)
	for _, a := range q.Want {
		owner := s.SchemeOf(a)
		if owner == nil {
			return nil, fmt.Errorf("query: unknown attribute %s", a)
		}
		if !owner.KeyCompatible(root) {
			return nil, fmt.Errorf("query: attribute %s lives outside %s's key cluster", a, q.Root)
		}
		byScheme[owner.Name] = append(byScheme[owner.Name], a)
	}
	out := make(Result, len(q.Want))
	for name, attrs := range byScheme {
		p.Obs.Counter(metricBaseLookups).Inc()
		tup, ok := p.DB.GetByKey(name, q.Key)
		rel := p.DB.Header(name)
		for _, a := range attrs {
			if ok {
				out[a] = tup[rel.Position(a)]
			} else {
				out[a] = relation.Null()
			}
		}
	}
	return out, nil
}

// MergedPlanner answers on the merged design through the merge metadata: a
// single lookup on the merged relation; attributes removed by Remove are
// reconstructed as the corresponding Km value when the member part is
// present (its surviving attributes are total, per the null-synchronization
// semantics) and null otherwise.
type MergedPlanner struct {
	DB *engine.DB
	M  *core.MergedScheme
	// Obs, when set, receives planner-decision counters (query.merged.*).
	Obs *obs.Registry
}

// Answer implements Planner.
func (p *MergedPlanner) Answer(q Query) (Result, error) {
	return p.AnswerCtx(context.Background(), q)
}

// AnswerCtx is Answer with a context: a tracer carried by the context
// records a query.merged.Answer span.
func (p *MergedPlanner) AnswerCtx(ctx context.Context, q Query) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, sp := obs.Span(ctx, "query.merged.Answer")
	defer sp.End()
	p.Obs.Counter(metricMergedQueries).Inc()
	rootMember := p.M.Member(q.Root)
	if rootMember == nil {
		return nil, fmt.Errorf("query: root %s is not a member of the merge", q.Root)
	}
	rel := p.DB.Header(p.M.Name)
	row, ok := p.DB.GetByKey(p.M.Name, q.Key)

	out := make(Result, len(q.Want))
	for _, a := range q.Want {
		if !ok {
			out[a] = relation.Null()
			continue
		}
		if pos := rel.Position(a); pos >= 0 {
			out[a] = row[pos]
			continue
		}
		p.Obs.Counter(metricMergedReconstr).Inc()
		v, err := p.reconstructRemoved(rel, row, a)
		if err != nil {
			return nil, err
		}
		out[a] = v
	}
	return out, nil
}

// reconstructRemoved rebuilds the value of a removed key-copy attribute a:
// if the owning member's surviving attributes are total in the row, a equals
// the corresponding Km value (total equality); otherwise the member part is
// absent and a is null. This is Definition 4.3's μ′, evaluated per row.
func (p *MergedPlanner) reconstructRemoved(rel *relation.Relation, row relation.Tuple, a string) (relation.Value, error) {
	for _, yj := range p.M.Removals() {
		if !schema.ContainsAttr(yj, a) {
			continue
		}
		member := p.memberOfKeyCopy(yj)
		if member == nil {
			break
		}
		remaining := schema.DiffAttrs(member.Attrs, yj)
		for _, ra := range remaining {
			if pos := rel.Position(ra); pos >= 0 && row[pos].IsNull() {
				return relation.Null(), nil
			}
		}
		// Member present: a = the Km attribute at the same key position.
		for i, k := range member.Key {
			if k == a {
				return row[rel.Position(p.M.Km[i])], nil
			}
		}
	}
	return relation.Null(), fmt.Errorf("query: attribute %s is neither in the merged scheme nor a removed key copy", a)
}

func (p *MergedPlanner) memberOfKeyCopy(yj []string) *core.Member {
	for i := range p.M.Members {
		if schema.EqualAttrSets(p.M.Members[i].Key, yj) {
			return &p.M.Members[i]
		}
	}
	return nil
}
