package fd

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// randDeps draws a random dependency set over a small alphabet. The small
// attribute space plus many trials drives the engine's caches through heavy
// eviction and re-compile cycles, which is exactly the regime where a stale
// memo entry would surface.
func randDeps(rng *rand.Rand) []Dep {
	alphabet := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	pick := func(max int) []string {
		n := 1 + rng.Intn(max)
		out := make([]string, 0, n)
		for len(out) < n {
			out = append(out, alphabet[rng.Intn(len(alphabet))])
		}
		return out
	}
	deps := make([]Dep, 1+rng.Intn(6))
	for i := range deps {
		deps[i] = NewDep(pick(3), pick(2))
	}
	return deps
}

func randSeed(rng *rand.Rand) []string {
	alphabet := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	n := 1 + rng.Intn(4)
	out := make([]string, 0, n)
	for len(out) < n {
		out = append(out, alphabet[rng.Intn(len(alphabet))])
	}
	return out
}

// TestClosureDifferential checks the bitset engine against the retained
// map-based reference on thousands of random (deps, seed) pairs.
func TestClosureDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1992))
	for trial := 0; trial < 5000; trial++ {
		deps := randDeps(rng)
		seed := randSeed(rng)
		got := Closure(seed, deps)
		want := ClosureReference(seed, deps)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Closure(%v, %v) = %v, want %v", trial, seed, deps, got, want)
		}
	}
}

// TestImpliesDifferential checks Implies against the definitional test
// "RHS ⊆ closure(LHS)" computed by the reference.
func TestImpliesDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 2000; trial++ {
		deps := randDeps(rng)
		d := NewDep(randSeed(rng), randSeed(rng))
		closed := make(map[string]bool)
		for _, a := range ClosureReference(d.LHS, deps) {
			closed[a] = true
		}
		want := true
		for _, a := range d.RHS {
			if !closed[a] {
				want = false
				break
			}
		}
		if got := Implies(deps, d); got != want {
			t.Fatalf("trial %d: Implies(%v, %v) = %v, want %v", trial, deps, d, got, want)
		}
	}
}

// TestCandidateKeysProperties checks the parallel lattice search on random
// inputs: every reported key is a minimal superkey, the result is duplicate-
// free, and repeated runs (different goroutine schedules) agree exactly.
func TestCandidateKeysProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	universe := []string{"A", "B", "C", "D", "E", "F"}
	for trial := 0; trial < 300; trial++ {
		deps := randDeps(rng)
		keys := CandidateKeys(universe, deps)
		if len(keys) == 0 {
			t.Fatalf("trial %d: no candidate keys for %v", trial, deps)
		}
		seen := make(map[string]bool)
		for _, k := range keys {
			if !IsKey(k, universe, deps) {
				t.Fatalf("trial %d: %v is not a minimal key under %v", trial, k, deps)
			}
			id := fmt.Sprint(k)
			if seen[id] {
				t.Fatalf("trial %d: duplicate key %v", trial, k)
			}
			seen[id] = true
		}
		if again := CandidateKeys(universe, deps); !reflect.DeepEqual(keys, again) {
			t.Fatalf("trial %d: nondeterministic result: %v vs %v", trial, keys, again)
		}
	}
}

// TestConcurrentFD hammers the shared engine from many goroutines; run under
// -race this exercises the index cache, closure memo, and worker pool.
func TestConcurrentFD(t *testing.T) {
	var wg sync.WaitGroup
	universe := []string{"A", "B", "C", "D", "E"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for trial := 0; trial < 100; trial++ {
				deps := randDeps(rng)
				Closure(randSeed(rng), deps)
				CandidateKeys(universe, deps)
				MinimalCover(deps)
			}
		}(g)
	}
	wg.Wait()
}
