package fd

import (
	"math/rand"
	"testing"

	"repro/internal/schema"
)

func dep(lhs, rhs string) Dep {
	return Dep{LHS: split(lhs), RHS: split(rhs)}
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			out = append(out, cur)
			cur = ""
		} else {
			cur += string(r)
		}
	}
	return append(out, cur)
}

func TestClosure(t *testing.T) {
	deps := []Dep{dep("A", "B"), dep("B", "C"), dep("C,D", "E")}
	got := Closure([]string{"A"}, deps)
	if !schema.EqualAttrSets(got, []string{"A", "B", "C"}) {
		t.Errorf("Closure(A) = %v", got)
	}
	got = Closure([]string{"A", "D"}, deps)
	if !schema.EqualAttrSets(got, []string{"A", "B", "C", "D", "E"}) {
		t.Errorf("Closure(A,D) = %v", got)
	}
}

func TestImplies(t *testing.T) {
	deps := []Dep{dep("A", "B"), dep("B", "C")}
	if !Implies(deps, dep("A", "C")) {
		t.Error("transitivity")
	}
	if Implies(deps, dep("C", "A")) {
		t.Error("reverse should not be implied")
	}
	if !Implies(nil, dep("A,B", "A")) {
		t.Error("trivial dependency always implied")
	}
}

func TestEquivalentSets(t *testing.T) {
	deps := []Dep{dep("A", "B"), dep("B", "A")}
	if !EquivalentSets([]string{"A"}, []string{"B"}, deps) {
		t.Error("A and B are equivalent")
	}
	if EquivalentSets([]string{"A"}, []string{"C"}, deps) {
		t.Error("A and C are not equivalent")
	}
}

func TestCandidateKeysSimple(t *testing.T) {
	u := split("A,B,C")
	deps := []Dep{dep("A", "B"), dep("B", "C")}
	keys := CandidateKeys(u, deps)
	if len(keys) != 1 || !schema.EqualAttrSets(keys[0], []string{"A"}) {
		t.Errorf("CandidateKeys = %v", keys)
	}
}

func TestCandidateKeysMultiple(t *testing.T) {
	// Classic cycle: A→B, B→C, C→A gives three keys.
	u := split("A,B,C")
	deps := []Dep{dep("A", "B"), dep("B", "C"), dep("C", "A")}
	keys := CandidateKeys(u, deps)
	if len(keys) != 3 {
		t.Fatalf("CandidateKeys = %v, want 3 keys", keys)
	}
	for _, k := range keys {
		if len(k) != 1 {
			t.Errorf("each key should be a single attribute, got %v", k)
		}
	}
}

func TestCandidateKeysComposite(t *testing.T) {
	u := split("A,B,C,D")
	deps := []Dep{dep("A,B", "C"), dep("C", "D")}
	keys := CandidateKeys(u, deps)
	if len(keys) != 1 || !schema.EqualAttrSets(keys[0], []string{"A", "B"}) {
		t.Errorf("CandidateKeys = %v", keys)
	}
}

func TestCandidateKeysNoDeps(t *testing.T) {
	keys := CandidateKeys(split("A,B"), nil)
	if len(keys) != 1 || !schema.EqualAttrSets(keys[0], []string{"A", "B"}) {
		t.Errorf("with no deps the universe is the only key, got %v", keys)
	}
}

func TestIsKeyAndSuperkey(t *testing.T) {
	u := split("A,B,C")
	deps := []Dep{dep("A", "B,C")}
	if !IsSuperkey([]string{"A", "B"}, u, deps) {
		t.Error("A,B is a superkey")
	}
	if IsKey([]string{"A", "B"}, u, deps) {
		t.Error("A,B is not minimal")
	}
	if !IsKey([]string{"A"}, u, deps) {
		t.Error("A is a key")
	}
	if IsKey([]string{"B"}, u, deps) {
		t.Error("B is not a key")
	}
}

func TestIsBCNF(t *testing.T) {
	u := split("A,B,C")
	// Key dependency only: BCNF.
	if !IsBCNF(u, []Dep{dep("A", "B,C")}) {
		t.Error("key-dependency-only scheme is BCNF")
	}
	// B → C with key A: violation.
	deps := []Dep{dep("A", "B,C"), dep("B", "C")}
	if IsBCNF(u, deps) {
		t.Error("B→C violates BCNF")
	}
	v := FirstBCNFViolation(u, deps)
	if v == nil || !schema.EqualAttrSets(v.LHS, []string{"B"}) {
		t.Errorf("violation = %v", v)
	}
	// Trivial dependencies never violate.
	if !IsBCNF(u, []Dep{dep("A", "B,C"), dep("B,C", "C")}) {
		t.Error("trivial dependency should not violate BCNF")
	}
}

func TestMinimalCover(t *testing.T) {
	// A→B, B→C, A→C: the third is redundant.
	deps := []Dep{dep("A", "B"), dep("B", "C"), dep("A", "C")}
	mc := MinimalCover(deps)
	if len(mc) != 2 {
		t.Fatalf("MinimalCover = %v", mc)
	}
	for _, d := range deps {
		if !Implies(mc, d) {
			t.Errorf("cover fails to imply %v", d)
		}
	}
}

func TestMinimalCoverExtraneousLHS(t *testing.T) {
	// A→B makes AB→C reducible to A→C.
	deps := []Dep{dep("A", "B"), dep("A,B", "C")}
	mc := MinimalCover(deps)
	for _, d := range mc {
		if schema.EqualAttrSets(d.RHS, []string{"C"}) && len(d.LHS) != 1 {
			t.Errorf("LHS not reduced: %v", d)
		}
	}
}

func TestMinimalCoverEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	attrs := split("A,B,C,D,E")
	for trial := 0; trial < 100; trial++ {
		var deps []Dep
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			lhs := randomSubset(rng, attrs, 1+rng.Intn(2))
			rhs := randomSubset(rng, attrs, 1+rng.Intn(2))
			deps = append(deps, Dep{LHS: lhs, RHS: rhs})
		}
		mc := MinimalCover(deps)
		// Equivalent: each original implied by cover and vice versa.
		for _, d := range deps {
			if !Implies(mc, d) {
				t.Fatalf("trial %d: cover %v does not imply %v", trial, mc, d)
			}
		}
		for _, d := range mc {
			if !Implies(deps, d) {
				t.Fatalf("trial %d: original %v does not imply cover member %v", trial, deps, d)
			}
		}
	}
}

func TestCandidateKeysDetermineUniverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	attrs := split("A,B,C,D,E")
	for trial := 0; trial < 100; trial++ {
		var deps []Dep
		for i := 0; i < 1+rng.Intn(5); i++ {
			deps = append(deps, Dep{
				LHS: randomSubset(rng, attrs, 1+rng.Intn(2)),
				RHS: randomSubset(rng, attrs, 1+rng.Intn(3)),
			})
		}
		keys := CandidateKeys(attrs, deps)
		if len(keys) == 0 {
			t.Fatalf("trial %d: no candidate keys", trial)
		}
		for _, k := range keys {
			if !IsSuperkey(k, attrs, deps) {
				t.Fatalf("trial %d: key %v is not a superkey", trial, k)
			}
			if !IsKey(k, attrs, deps) {
				t.Fatalf("trial %d: key %v is not minimal", trial, k)
			}
		}
	}
}

func randomSubset(rng *rand.Rand, attrs []string, n int) []string {
	perm := rng.Perm(len(attrs))
	if n > len(attrs) {
		n = len(attrs)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = attrs[perm[i]]
	}
	return schema.NormalizeAttrs(out)
}

func TestDepKeyCanonical(t *testing.T) {
	if dep("B,A", "C").Key() != dep("A,B", "C").Key() {
		t.Error("Dep.Key should normalize")
	}
	if dep("A", "B").Key() == dep("B", "A").Key() {
		t.Error("direction matters")
	}
}

func TestTrivial(t *testing.T) {
	if !dep("A,B", "A").Trivial() || dep("A", "B").Trivial() {
		t.Error("Trivial")
	}
}
