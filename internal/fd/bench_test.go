package fd

import (
	"fmt"
	"testing"
)

func chainDeps(n int) ([]string, []Dep) {
	var attrs []string
	var deps []Dep
	for i := 0; i <= n; i++ {
		attrs = append(attrs, fmt.Sprintf("A%d", i))
	}
	for i := 0; i < n; i++ {
		deps = append(deps, NewDep([]string{attrs[i]}, []string{attrs[i+1]}))
	}
	return attrs, deps
}

// starDeps builds a hub-and-spoke dependency set shaped like the StarEER
// translations: a hub key determines n satellite attributes, each satellite
// pair determines the next hub level. The closure of the hub reaches
// everything.
func starDeps(n int) ([]string, []Dep) {
	attrs := []string{"Hub"}
	var deps []Dep
	for i := 0; i < n; i++ {
		s := fmt.Sprintf("S%d", i)
		attrs = append(attrs, s)
		deps = append(deps, NewDep([]string{"Hub"}, []string{s}))
		if i > 0 {
			deps = append(deps, NewDep([]string{fmt.Sprintf("S%d", i-1), s}, []string{fmt.Sprintf("T%d", i)}))
			attrs = append(attrs, fmt.Sprintf("T%d", i))
		}
	}
	return attrs, deps
}

func BenchmarkClosure(b *testing.B) {
	for _, n := range []int{8, 32, 1000, 10000} {
		attrs, deps := chainDeps(n)
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Closure(attrs[:1], deps)
			}
		})
	}
	for _, n := range []int{1000, 10000} {
		attrs, deps := starDeps(n)
		b.Run(fmt.Sprintf("star=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Closure(attrs[:1], deps)
			}
		})
	}
}

// BenchmarkClosureReference measures the retained pre-bitset implementation
// on the same workloads, as the speedup baseline for the committed BENCH_*.json reports.
func BenchmarkClosureReference(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		attrs, deps := chainDeps(n)
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ClosureReference(attrs[:1], deps)
			}
		})
	}
	for _, n := range []int{1000, 10000} {
		attrs, deps := starDeps(n)
		b.Run(fmt.Sprintf("star=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ClosureReference(attrs[:1], deps)
			}
		})
	}
}

// BenchmarkImplies exercises the no-materialization Contains path.
func BenchmarkImplies(b *testing.B) {
	attrs, deps := chainDeps(1000)
	d := NewDep(attrs[:1], attrs[len(attrs)-1:])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Implies(deps, d) {
			b.Fatal("chain head should imply tail")
		}
	}
}

func BenchmarkCandidateKeys(b *testing.B) {
	attrs, deps := chainDeps(10)
	for i := 0; i < b.N; i++ {
		CandidateKeys(attrs, deps)
	}
}

func BenchmarkMinimalCover(b *testing.B) {
	_, deps := chainDeps(12)
	// Add redundancy.
	deps = append(deps, NewDep([]string{"A0"}, []string{"A5"}), NewDep([]string{"A2"}, []string{"A9"}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinimalCover(deps)
	}
}

func BenchmarkSynthesize(b *testing.B) {
	attrs, deps := chainDeps(10)
	for i := 0; i < b.N; i++ {
		Synthesize(attrs, deps)
	}
}

func BenchmarkDecompose(b *testing.B) {
	attrs, deps := chainDeps(6)
	for i := 0; i < b.N; i++ {
		Decompose(attrs, deps)
	}
}
