package fd

import (
	"fmt"
	"testing"
)

func chainDeps(n int) ([]string, []Dep) {
	var attrs []string
	var deps []Dep
	for i := 0; i <= n; i++ {
		attrs = append(attrs, fmt.Sprintf("A%d", i))
	}
	for i := 0; i < n; i++ {
		deps = append(deps, NewDep([]string{attrs[i]}, []string{attrs[i+1]}))
	}
	return attrs, deps
}

func BenchmarkClosure(b *testing.B) {
	for _, n := range []int{8, 32} {
		attrs, deps := chainDeps(n)
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Closure(attrs[:1], deps)
			}
		})
	}
}

func BenchmarkCandidateKeys(b *testing.B) {
	attrs, deps := chainDeps(10)
	for i := 0; i < b.N; i++ {
		CandidateKeys(attrs, deps)
	}
}

func BenchmarkMinimalCover(b *testing.B) {
	_, deps := chainDeps(12)
	// Add redundancy.
	deps = append(deps, NewDep([]string{"A0"}, []string{"A5"}), NewDep([]string{"A2"}, []string{"A9"}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinimalCover(deps)
	}
}

func BenchmarkSynthesize(b *testing.B) {
	attrs, deps := chainDeps(10)
	for i := 0; i < b.N; i++ {
		Synthesize(attrs, deps)
	}
}

func BenchmarkDecompose(b *testing.B) {
	attrs, deps := chainDeps(6)
	for i := 0; i < b.N; i++ {
		Decompose(attrs, deps)
	}
}
