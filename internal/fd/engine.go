package fd

import (
	"sort"

	"repro/internal/attrset"
	"repro/internal/obs"
)

// engine is the package-level closure engine every fd entry point routes
// through. Dependency lists are compiled once into an attrset.Index (cached
// by structural fingerprint, so the ubiquitous call pattern "same deps
// slice, many seeds" pays one compile) and closure results are memoized, so
// the steady-state loops of CandidateKeys, MinimalCover, and the BCNF
// checks do no fixpoint work and no allocation.
var engine = attrset.NewEngine()

// RegisterMetrics publishes the package engine's cache counters into a
// metrics registry under engine=fd.
func RegisterMetrics(r *obs.Registry) { engine.Register(r, "fd") }

// CacheStats snapshots the package engine's cache counters.
func CacheStats() attrset.CacheStats { return engine.CacheStats() }

// compile returns the cached index for a dependency list.
func compile(deps []Dep) *attrset.Index {
	return engine.Index(len(deps), func(i int) ([]string, []string) {
		return deps[i].LHS, deps[i].RHS
	})
}

// ClosureReference is the pre-bitset implementation of Closure: a quadratic
// fixpoint over map-backed sets, re-run from scratch on every call. It is
// retained as the differential-testing oracle and benchmark baseline for
// the indexed engine; production paths use Closure.
func ClosureReference(attrs []string, deps []Dep) []string {
	closed := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		closed[a] = true
	}
	for changed := true; changed; {
		changed = false
		for _, d := range deps {
			if allIn(d.LHS, closed) {
				for _, a := range d.RHS {
					if !closed[a] {
						closed[a] = true
						changed = true
					}
				}
			}
		}
	}
	out := make([]string, 0, len(closed))
	for a := range closed {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func allIn(attrs []string, set map[string]bool) bool {
	for _, a := range attrs {
		if !set[a] {
			return false
		}
	}
	return true
}
