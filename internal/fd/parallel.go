package fd

import (
	"runtime"
	"sync"

	"repro/internal/attrset"
	"repro/internal/schema"
)

// keySearch explores the shrink lattice of CandidateKeys — start from the
// universe, repeatedly drop one attribute while the rest stays a superkey —
// on a bounded worker pool sized by GOMAXPROCS. The visited-set dedup makes
// the explored node set (and therefore the found key set) independent of
// exploration order, so parallelism cannot change the result.
type keySearch struct {
	ix        *attrset.Index
	universe  []string
	mandatory []string

	mu      sync.Mutex
	cond    *sync.Cond
	stack   [][]string
	pending int // nodes queued or being processed
	seen    map[string]bool
	keys    [][]string
}

func searchKeys(ix *attrset.Index, universe, mandatory []string) [][]string {
	ks := &keySearch{ix: ix, universe: universe, mandatory: mandatory, seen: make(map[string]bool)}
	ks.cond = sync.NewCond(&ks.mu)
	ks.enqueue(universe)

	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ks.worker()
		}()
	}
	wg.Wait()
	return ks.keys
}

// enqueue schedules an unvisited node. Nodes arrive with sorted attribute
// lists (the universe is normalized and without preserves order), so the
// joined string is canonical.
func (ks *keySearch) enqueue(attrs []string) {
	key := schema.JoinAttrs(attrs)
	ks.mu.Lock()
	if ks.seen[key] {
		ks.mu.Unlock()
		return
	}
	ks.seen[key] = true
	ks.pending++
	ks.stack = append(ks.stack, attrs)
	ks.mu.Unlock()
	ks.cond.Signal()
}

func (ks *keySearch) worker() {
	for {
		ks.mu.Lock()
		for len(ks.stack) == 0 && ks.pending > 0 {
			ks.cond.Wait()
		}
		if len(ks.stack) == 0 { // pending == 0: search exhausted
			ks.mu.Unlock()
			ks.cond.Broadcast()
			return
		}
		cur := ks.stack[len(ks.stack)-1]
		ks.stack = ks.stack[:len(ks.stack)-1]
		ks.mu.Unlock()

		ks.process(cur)

		ks.mu.Lock()
		ks.pending--
		done := ks.pending == 0
		ks.mu.Unlock()
		if done {
			ks.cond.Broadcast()
		}
	}
}

func (ks *keySearch) process(current []string) {
	minimal := true
	for i := range current {
		if schema.ContainsAttr(ks.mandatory, current[i]) {
			continue
		}
		reduced := without(current, i)
		if engine.Contains(ks.ix, reduced, ks.universe) {
			minimal = false
			ks.enqueue(reduced)
		}
	}
	if minimal {
		ck := schema.NormalizeAttrs(current)
		key := "k:" + schema.JoinAttrs(ck)
		ks.mu.Lock()
		if !ks.seen[key] {
			ks.seen[key] = true
			ks.keys = append(ks.keys, ck)
		}
		ks.mu.Unlock()
	}
}
