package fd

import (
	"sort"

	"repro/internal/schema"
)

// SynthScheme is a relation-scheme produced by the synthesis algorithm: an
// attribute set with one or more equivalent keys. The merging of schemes
// with equivalent keys is the step of Beeri–Bernstein–Goodman [1] the paper's
// introduction discusses (TEACH + OFFER → ASSIGN).
type SynthScheme struct {
	Attrs []string
	Keys  [][]string
}

// Synthesize runs a Bernstein-style 3NF synthesis over the universe and
// dependencies:
//
//  1. compute a minimal cover;
//  2. partition dependencies into groups with equivalent left-hand sides
//     (the relation-merging step: groups whose keys determine each other are
//     combined into a single scheme);
//  3. emit one scheme per group, carrying all equivalent keys;
//  4. if no scheme contains a candidate key of the whole universe, add one;
//  5. add a single-attribute scheme for any attribute mentioned in no
//     dependency, so the universe is covered.
//
// The output deliberately carries *no* null constraints: demonstrating that
// omission — merged schemes whose tuples need partial nulls to retain the
// information capacity of the originals — is the point of the paper's
// critique, and tests exercise it.
func Synthesize(universe []string, deps []Dep) []SynthScheme {
	cover := MinimalCover(deps)

	// Group dependencies by equivalent LHS.
	type group struct {
		keys  [][]string
		attrs []string
	}
	var groups []*group
	for _, d := range cover {
		placed := false
		for _, g := range groups {
			if EquivalentSets(d.LHS, g.keys[0], cover) {
				if !containsKey(g.keys, d.LHS) {
					g.keys = append(g.keys, schema.NormalizeAttrs(d.LHS))
				}
				g.attrs = schema.UnionAttrs(g.attrs, d.LHS, d.RHS)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, &group{
				keys:  [][]string{schema.NormalizeAttrs(d.LHS)},
				attrs: schema.UnionAttrs(d.LHS, d.RHS),
			})
		}
	}

	var out []SynthScheme
	for _, g := range groups {
		// Every equivalent key's attributes belong to the scheme.
		attrs := g.attrs
		for _, k := range g.keys {
			attrs = schema.UnionAttrs(attrs, k)
		}
		out = append(out, SynthScheme{Attrs: schema.NormalizeAttrs(attrs), Keys: g.keys})
	}

	// Ensure some scheme contains a candidate key of the universe.
	cks := CandidateKeys(universe, cover)
	if len(cks) > 0 {
		covered := false
		for _, s := range out {
			for _, ck := range cks {
				if schema.SubsetOf(ck, s.Attrs) {
					covered = true
					break
				}
			}
			if covered {
				break
			}
		}
		if !covered {
			out = append(out, SynthScheme{Attrs: cks[0], Keys: [][]string{cks[0]}})
		}
	}

	// Cover attributes mentioned nowhere.
	mentioned := make(map[string]bool)
	for _, s := range out {
		for _, a := range s.Attrs {
			mentioned[a] = true
		}
	}
	for _, a := range schema.NormalizeAttrs(universe) {
		if !mentioned[a] {
			out = append(out, SynthScheme{Attrs: []string{a}, Keys: [][]string{{a}}})
		}
	}

	sort.Slice(out, func(i, j int) bool { return join(out[i].Attrs) < join(out[j].Attrs) })
	return out
}

func containsKey(keys [][]string, k []string) bool {
	for _, existing := range keys {
		if schema.EqualAttrSets(existing, k) {
			return true
		}
	}
	return false
}
