package fd

import (
	"sort"

	"repro/internal/schema"
)

// Decompose runs the classical BCNF decomposition algorithm: starting from
// the universe, any scheme with a BCNF violation X → Y is split into
// (X ∪ Y⁺∩scheme) and (scheme − (Y − X)), until every scheme is in BCNF with
// respect to the projected dependencies. The result is lossless-join by
// construction (each split is on an FD).
//
// This is the *opposite direction* from the paper's merging: the
// introduction observes that "the normalization process tends to increase
// the number of relations by splitting unnormalized relations into smaller,
// normalized, relations" while merging reduces the count; Decompose exists
// so benchmarks and examples can exhibit both directions on the same inputs.
func Decompose(universe []string, deps []Dep) [][]string {
	cover := MinimalCover(deps)
	var done [][]string
	work := [][]string{schema.NormalizeAttrs(universe)}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		proj := ProjectDeps(cur, cover)
		v := FirstBCNFViolation(cur, proj)
		if v == nil {
			done = append(done, cur)
			continue
		}
		// Split on the violation: left = X⁺ ∩ cur, right = cur − (X⁺ − X).
		closure := schema.IntersectAttrs(Closure(v.LHS, proj), cur)
		left := closure
		right := schema.UnionAttrs(v.LHS, schema.DiffAttrs(cur, closure))
		work = append(work, schema.NormalizeAttrs(left), schema.NormalizeAttrs(right))
	}
	// Drop schemes subsumed by others, then order canonically.
	var out [][]string
	for i, s := range done {
		subsumed := false
		for j, other := range done {
			if i == j {
				continue
			}
			if schema.SubsetOf(s, other) && (len(s) < len(other) || i > j) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return join(out[i]) < join(out[j]) })
	return out
}

// ProjectDeps computes the projection of the dependencies onto an attribute
// subset: for every sub-universe subset X of attrs, X → (X⁺ ∩ attrs). The
// exponential enumeration is bounded by the scheme width, which is small at
// schema-design scale; single-attribute left-hand sides are always included
// and larger ones only up to width 4 plus the left-hand sides of the cover,
// which suffices for BCNF testing of the schemas this package targets.
func ProjectDeps(attrs []string, deps []Dep) []Dep {
	var out []Dep
	add := func(lhs []string) {
		closure := schema.IntersectAttrs(Closure(lhs, deps), attrs)
		rhs := schema.DiffAttrs(closure, lhs)
		if len(rhs) > 0 {
			out = append(out, Dep{LHS: schema.NormalizeAttrs(lhs), RHS: rhs})
		}
	}
	// All subsets up to size 4 (covers every practical scheme here).
	n := len(attrs)
	limit := 4
	var build func(start int, cur []string)
	build = func(start int, cur []string) {
		if len(cur) > 0 {
			add(cur)
		}
		if len(cur) == limit {
			return
		}
		for i := start; i < n; i++ {
			build(i+1, append(cur, attrs[i]))
		}
	}
	build(0, nil)
	// Plus the cover's own left-hand sides restricted to attrs.
	for _, d := range deps {
		if schema.SubsetOf(d.LHS, attrs) {
			add(d.LHS)
		}
	}
	return MinimalCover(out)
}
