package fd

import (
	"math/rand"
	"testing"

	"repro/internal/schema"
)

func TestDecomposeAlreadyBCNF(t *testing.T) {
	u := split("A,B,C")
	deps := []Dep{dep("A", "B,C")}
	out := Decompose(u, deps)
	if len(out) != 1 || !schema.EqualAttrSets(out[0], u) {
		t.Errorf("Decompose = %v, want the universe unchanged", out)
	}
}

func TestDecomposeClassicViolation(t *testing.T) {
	// A → B, B → C with universe ABC: B → C violates BCNF; the classic
	// decomposition is {B,C} and {A,B}.
	u := split("A,B,C")
	deps := []Dep{dep("A", "B"), dep("B", "C")}
	out := Decompose(u, deps)
	if len(out) != 2 {
		t.Fatalf("Decompose = %v", out)
	}
	want := map[string]bool{"A,B": true, "B,C": true}
	for _, s := range out {
		if !want[join(s)] {
			t.Errorf("unexpected scheme %v", s)
		}
	}
}

func TestDecomposeOutputIsBCNF(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	attrs := split("A,B,C,D,E")
	for trial := 0; trial < 60; trial++ {
		var deps []Dep
		for i := 0; i < 1+rng.Intn(4); i++ {
			deps = append(deps, Dep{
				LHS: randomSubset(rng, attrs, 1+rng.Intn(2)),
				RHS: randomSubset(rng, attrs, 1+rng.Intn(2)),
			})
		}
		out := Decompose(attrs, deps)
		cover := MinimalCover(deps)
		covered := map[string]bool{}
		for _, s := range out {
			proj := ProjectDeps(s, cover)
			if !IsBCNF(s, proj) {
				t.Fatalf("trial %d: scheme %v not BCNF under %v (deps %v)", trial, s, proj, deps)
			}
			for _, a := range s {
				covered[a] = true
			}
		}
		// Attribute preservation.
		for _, a := range attrs {
			if !covered[a] {
				t.Fatalf("trial %d: attribute %s lost (deps %v, out %v)", trial, a, deps, out)
			}
		}
	}
}

// The introduction's contrast: normalization splits (more relations),
// merging recombines (fewer). The TEACH/OFFER universe with COURSE → F, D
// is one BCNF relation; an unnormalized design with a transitive dependency
// splits into two.
func TestDecomposeVsMergeDirection(t *testing.T) {
	// COURSE → FACULTY, FACULTY → OFFICE: decomposing gives 2 schemes.
	u := split("COURSE,FACULTY,OFFICE")
	deps := []Dep{dep("COURSE", "FACULTY"), dep("FACULTY", "OFFICE")}
	out := Decompose(u, deps)
	if len(out) != 2 {
		t.Fatalf("Decompose = %v, want a split", out)
	}
	// While the synthesis path over key-equivalent deps gives 1 (the
	// merging direction of the paper's introduction).
	synth := Synthesize(split("COURSE,FACULTY,DEPARTMENT"), []Dep{
		dep("COURSE", "FACULTY"), dep("COURSE", "DEPARTMENT"),
	})
	if len(synth) != 1 {
		t.Fatalf("Synthesize = %v, want a single merged scheme", synth)
	}
}

func TestProjectDeps(t *testing.T) {
	deps := []Dep{dep("A", "B"), dep("B", "C")}
	proj := ProjectDeps(split("A,C"), deps)
	// A → C holds transitively on the projection.
	if !Implies(proj, dep("A", "C")) {
		t.Errorf("projection should imply A → C: %v", proj)
	}
	// Nothing about B survives.
	for _, d := range proj {
		for _, a := range append(append([]string{}, d.LHS...), d.RHS...) {
			if a == "B" {
				t.Errorf("projection mentions B: %v", proj)
			}
		}
	}
}
