package fd

import (
	"testing"

	"repro/internal/schema"
)

// The paper's introduction example: TEACH(COURSE, FACULTY) and
// OFFER(COURSE, DEPARTMENT), both with key COURSE, are merged by the
// synthesis algorithm into ASSIGN(COURSE, FACULTY, DEPARTMENT).
func TestSynthesizeMergesEquivalentKeys(t *testing.T) {
	u := []string{"COURSE", "FACULTY", "DEPARTMENT"}
	deps := []Dep{
		NewDep([]string{"COURSE"}, []string{"FACULTY"}),
		NewDep([]string{"COURSE"}, []string{"DEPARTMENT"}),
	}
	schemes := Synthesize(u, deps)
	if len(schemes) != 1 {
		t.Fatalf("Synthesize = %v, want a single merged ASSIGN scheme", schemes)
	}
	got := schemes[0]
	if !schema.EqualAttrSets(got.Attrs, u) {
		t.Errorf("merged attrs = %v", got.Attrs)
	}
	if len(got.Keys) != 1 || !schema.EqualAttrSets(got.Keys[0], []string{"COURSE"}) {
		t.Errorf("merged keys = %v", got.Keys)
	}
}

func TestSynthesizeEquivalentKeysRecorded(t *testing.T) {
	// A↔B equivalence: one scheme with both keys.
	u := []string{"A", "B", "C"}
	deps := []Dep{
		NewDep([]string{"A"}, []string{"B"}),
		NewDep([]string{"B"}, []string{"A"}),
		NewDep([]string{"A"}, []string{"C"}),
	}
	schemes := Synthesize(u, deps)
	if len(schemes) != 1 {
		t.Fatalf("Synthesize = %v", schemes)
	}
	if len(schemes[0].Keys) != 2 {
		t.Errorf("keys = %v, want both A and B", schemes[0].Keys)
	}
}

func TestSynthesizeSeparateGroups(t *testing.T) {
	u := []string{"A", "B", "C", "D"}
	deps := []Dep{
		NewDep([]string{"A"}, []string{"B"}),
		NewDep([]string{"C"}, []string{"D"}),
	}
	schemes := Synthesize(u, deps)
	if len(schemes) != 3 {
		// {A,B}, {C,D}, and a key scheme {A,C} since neither contains a
		// candidate key of the universe.
		t.Fatalf("Synthesize = %v, want 3 schemes", schemes)
	}
	foundKeyScheme := false
	for _, s := range schemes {
		if schema.EqualAttrSets(s.Attrs, []string{"A", "C"}) {
			foundKeyScheme = true
		}
	}
	if !foundKeyScheme {
		t.Errorf("missing universe-key scheme in %v", schemes)
	}
}

func TestSynthesizeCoversLoneAttributes(t *testing.T) {
	u := []string{"A", "B", "Z"}
	deps := []Dep{NewDep([]string{"A"}, []string{"B"})}
	schemes := Synthesize(u, deps)
	covered := make(map[string]bool)
	for _, s := range schemes {
		for _, a := range s.Attrs {
			covered[a] = true
		}
	}
	for _, a := range u {
		if !covered[a] {
			t.Errorf("attribute %s not covered by %v", a, schemes)
		}
	}
}

func TestSynthesizeOutputIsBCNFForKeyDeps(t *testing.T) {
	// When the input contains only future key dependencies, each synthesized
	// scheme is in BCNF wrt the projected cover.
	u := []string{"A", "B", "C", "D", "E"}
	deps := []Dep{
		NewDep([]string{"A"}, []string{"B", "C"}),
		NewDep([]string{"D"}, []string{"E"}),
	}
	for _, s := range Synthesize(u, deps) {
		var proj []Dep
		for _, d := range MinimalCover(deps) {
			if schema.SubsetOf(d.LHS, s.Attrs) && schema.SubsetOf(d.RHS, s.Attrs) {
				proj = append(proj, d)
			}
		}
		if !IsBCNF(s.Attrs, proj) {
			t.Errorf("scheme %v not BCNF under %v", s, proj)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	u := []string{"A", "B", "C", "D"}
	deps := []Dep{
		NewDep([]string{"A"}, []string{"B"}),
		NewDep([]string{"C"}, []string{"D"}),
		NewDep([]string{"B"}, []string{"A"}),
	}
	a := Synthesize(u, deps)
	b := Synthesize(u, deps)
	if len(a) != len(b) {
		t.Fatal("nondeterministic scheme count")
	}
	for i := range a {
		if !schema.EqualAttrLists(a[i].Attrs, b[i].Attrs) {
			t.Fatalf("nondeterministic output: %v vs %v", a, b)
		}
	}
}
