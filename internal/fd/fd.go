// Package fd implements classical functional-dependency theory: attribute
// closure, implication, candidate-key enumeration, minimal covers, and the
// Boyce-Codd Normal Form test used by Proposition 4.1(ii) of Markowitz
// (ICDE 1992). It also implements a Bernstein-style synthesis algorithm with
// equivalent-key merging — the early merging technique the paper's
// introduction criticizes for disregarding null restrictions.
//
// All closure-shaped questions are answered by the indexed, memoized engine
// of internal/attrset (see engine.go); the []string signatures here are thin
// adapters over it, so callers and golden tests are unaffected by the
// bitset representation.
package fd

import (
	"sort"

	"repro/internal/schema"
)

// Dep is a functional dependency LHS → RHS over some attribute universe.
type Dep struct {
	LHS []string
	RHS []string
}

// NewDep builds a dependency.
func NewDep(lhs, rhs []string) Dep { return Dep{LHS: lhs, RHS: rhs} }

// Trivial reports whether RHS ⊆ LHS.
func (d Dep) Trivial() bool { return schema.SubsetOf(d.RHS, d.LHS) }

// Key returns a canonical identity string.
func (d Dep) Key() string {
	return join(schema.NormalizeAttrs(d.LHS)) + "->" + join(schema.NormalizeAttrs(d.RHS))
}

// join renders an attribute list as a comma-separated string; it shares the
// linear-time helper with the schema package's canonical-key rendering.
func join(attrs []string) string { return schema.JoinAttrs(attrs) }

// Closure computes the attribute closure attrs⁺ under deps.
func Closure(attrs []string, deps []Dep) []string {
	names := engine.ClosureNames(compile(deps), attrs)
	return append(make([]string, 0, len(names)), names...)
}

// Implies reports whether deps ⊨ d (via attribute closure).
func Implies(deps []Dep, d Dep) bool {
	return engine.Contains(compile(deps), d.LHS, d.RHS)
}

// EquivalentSets reports whether X and Y determine each other under deps.
func EquivalentSets(x, y []string, deps []Dep) bool {
	ix := compile(deps)
	return engine.Contains(ix, x, y) && engine.Contains(ix, y, x)
}

// IsSuperkey reports whether attrs functionally determine the universe.
func IsSuperkey(attrs, universe []string, deps []Dep) bool {
	return engine.Contains(compile(deps), attrs, universe)
}

// IsKey reports whether attrs is a minimal superkey of the universe.
func IsKey(attrs, universe []string, deps []Dep) bool {
	ix := compile(deps)
	if !engine.Contains(ix, attrs, universe) {
		return false
	}
	for i := range attrs {
		if engine.Contains(ix, without(attrs, i), universe) {
			return false
		}
	}
	return true
}

func without(attrs []string, i int) []string {
	out := make([]string, 0, len(attrs)-1)
	out = append(out, attrs[:i]...)
	out = append(out, attrs[i+1:]...)
	return out
}

// CandidateKeys enumerates all candidate keys of the universe under deps,
// in canonical order. The search starts from the universe and shrinks, which
// is exponential in the worst case but fine at schema-design scale; the
// branch exploration runs on a bounded worker pool (see parallel.go), with
// each superkey test answered by the memoized closure engine.
func CandidateKeys(universe []string, deps []Dep) [][]string {
	u := schema.NormalizeAttrs(universe)
	ix := compile(deps)

	// Attributes in no RHS must be in every key; use them to prune.
	inRHS := make(map[string]bool)
	for _, d := range deps {
		for _, a := range d.RHS {
			if !schema.ContainsAttr(d.LHS, a) {
				inRHS[a] = true
			}
		}
	}
	var mandatory []string
	for _, a := range u {
		if !inRHS[a] {
			mandatory = append(mandatory, a)
		}
	}

	keys := searchKeys(ix, u, mandatory)

	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) < len(keys[j])
		}
		return join(keys[i]) < join(keys[j])
	})
	return keys
}

// IsBCNF reports whether a relation-scheme over the universe with the given
// dependencies is in Boyce-Codd Normal Form: every nontrivial dependency has
// a superkey left-hand side.
func IsBCNF(universe []string, deps []Dep) bool {
	return FirstBCNFViolation(universe, deps) == nil
}

// FirstBCNFViolation returns a nontrivial dependency whose LHS is not a
// superkey, or nil if the scheme is in BCNF. Violations are searched among
// the given dependencies and all their implied projections with single-
// attribute RHS (sufficient for the BCNF test).
func FirstBCNFViolation(universe []string, deps []Dep) *Dep {
	ix := compile(deps)
	for _, d := range deps {
		if d.Trivial() {
			continue
		}
		if !engine.Contains(ix, d.LHS, universe) {
			v := d
			return &v
		}
	}
	return nil
}

// MinimalCover computes a minimal (canonical) cover of deps: singleton
// right-hand sides, no extraneous LHS attributes, no redundant dependencies.
// Output order is canonical.
func MinimalCover(deps []Dep) []Dep {
	// Split RHS into singletons.
	var g []Dep
	for _, d := range deps {
		for _, a := range d.RHS {
			if schema.ContainsAttr(d.LHS, a) {
				continue // trivial component
			}
			g = append(g, Dep{LHS: schema.NormalizeAttrs(d.LHS), RHS: []string{a}})
		}
	}
	// Remove extraneous LHS attributes.
	for i := range g {
		for changed := true; changed; {
			changed = false
			for j := 0; j < len(g[i].LHS); j++ {
				reduced := without(g[i].LHS, j)
				if len(reduced) == 0 {
					continue
				}
				if engine.Contains(compile(g), reduced, g[i].RHS) {
					g[i].LHS = reduced
					changed = true
					break
				}
			}
		}
	}
	// Remove redundant dependencies.
	var out []Dep
	for i := range g {
		rest := make([]Dep, 0, len(g)-1)
		rest = append(rest, out...)
		rest = append(rest, g[i+1:]...)
		if !Implies(rest, g[i]) {
			out = append(out, g[i])
		}
	}
	// Deduplicate and order canonically.
	seen := make(map[string]bool, len(out))
	dedup := out[:0]
	for _, d := range out {
		if !seen[d.Key()] {
			seen[d.Key()] = true
			dedup = append(dedup, d)
		}
	}
	sort.Slice(dedup, func(i, j int) bool { return dedup[i].Key() < dedup[j].Key() })
	return dedup
}
