// Package fd implements classical functional-dependency theory: attribute
// closure, implication, candidate-key enumeration, minimal covers, and the
// Boyce-Codd Normal Form test used by Proposition 4.1(ii) of Markowitz
// (ICDE 1992). It also implements a Bernstein-style synthesis algorithm with
// equivalent-key merging — the early merging technique the paper's
// introduction criticizes for disregarding null restrictions.
package fd

import (
	"sort"

	"repro/internal/schema"
)

// Dep is a functional dependency LHS → RHS over some attribute universe.
type Dep struct {
	LHS []string
	RHS []string
}

// NewDep builds a dependency.
func NewDep(lhs, rhs []string) Dep { return Dep{LHS: lhs, RHS: rhs} }

// Trivial reports whether RHS ⊆ LHS.
func (d Dep) Trivial() bool { return schema.SubsetOf(d.RHS, d.LHS) }

// Key returns a canonical identity string.
func (d Dep) Key() string {
	return join(schema.NormalizeAttrs(d.LHS)) + "->" + join(schema.NormalizeAttrs(d.RHS))
}

func join(attrs []string) string {
	out := ""
	for i, a := range attrs {
		if i > 0 {
			out += ","
		}
		out += a
	}
	return out
}

// Closure computes the attribute closure attrs⁺ under deps.
func Closure(attrs []string, deps []Dep) []string {
	closed := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		closed[a] = true
	}
	for changed := true; changed; {
		changed = false
		for _, d := range deps {
			if allIn(d.LHS, closed) {
				for _, a := range d.RHS {
					if !closed[a] {
						closed[a] = true
						changed = true
					}
				}
			}
		}
	}
	out := make([]string, 0, len(closed))
	for a := range closed {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func allIn(attrs []string, set map[string]bool) bool {
	for _, a := range attrs {
		if !set[a] {
			return false
		}
	}
	return true
}

// Implies reports whether deps ⊨ d (via attribute closure).
func Implies(deps []Dep, d Dep) bool {
	return schema.SubsetOf(d.RHS, Closure(d.LHS, deps))
}

// EquivalentSets reports whether X and Y determine each other under deps.
func EquivalentSets(x, y []string, deps []Dep) bool {
	return schema.SubsetOf(y, Closure(x, deps)) && schema.SubsetOf(x, Closure(y, deps))
}

// IsSuperkey reports whether attrs functionally determine the universe.
func IsSuperkey(attrs, universe []string, deps []Dep) bool {
	return schema.SubsetOf(universe, Closure(attrs, deps))
}

// IsKey reports whether attrs is a minimal superkey of the universe.
func IsKey(attrs, universe []string, deps []Dep) bool {
	if !IsSuperkey(attrs, universe, deps) {
		return false
	}
	for i := range attrs {
		reduced := without(attrs, i)
		if IsSuperkey(reduced, universe, deps) {
			return false
		}
	}
	return true
}

func without(attrs []string, i int) []string {
	out := make([]string, 0, len(attrs)-1)
	out = append(out, attrs[:i]...)
	out = append(out, attrs[i+1:]...)
	return out
}

// CandidateKeys enumerates all candidate keys of the universe under deps,
// in canonical order. The search starts from the universe and shrinks, which
// is exponential in the worst case but fine at schema-design scale.
func CandidateKeys(universe []string, deps []Dep) [][]string {
	u := schema.NormalizeAttrs(universe)
	var keys [][]string
	seen := make(map[string]bool)

	// Attributes in no RHS must be in every key; use them to prune.
	inRHS := make(map[string]bool)
	for _, d := range deps {
		for _, a := range d.RHS {
			if !schema.ContainsAttr(d.LHS, a) {
				inRHS[a] = true
			}
		}
	}
	var mandatory []string
	for _, a := range u {
		if !inRHS[a] {
			mandatory = append(mandatory, a)
		}
	}

	var search func(current []string)
	search = func(current []string) {
		key := join(schema.NormalizeAttrs(current))
		if seen[key] {
			return
		}
		seen[key] = true
		minimal := true
		for i := range current {
			if schema.ContainsAttr(mandatory, current[i]) {
				continue
			}
			reduced := without(current, i)
			if IsSuperkey(reduced, u, deps) {
				minimal = false
				search(reduced)
			}
		}
		if minimal {
			ck := schema.NormalizeAttrs(current)
			ckKey := "k:" + join(ck)
			if !seen[ckKey] {
				seen[ckKey] = true
				keys = append(keys, ck)
			}
		}
	}
	search(u)

	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) < len(keys[j])
		}
		return join(keys[i]) < join(keys[j])
	})
	return keys
}

// IsBCNF reports whether a relation-scheme over the universe with the given
// dependencies is in Boyce-Codd Normal Form: every nontrivial dependency has
// a superkey left-hand side.
func IsBCNF(universe []string, deps []Dep) bool {
	return FirstBCNFViolation(universe, deps) == nil
}

// FirstBCNFViolation returns a nontrivial dependency whose LHS is not a
// superkey, or nil if the scheme is in BCNF. Violations are searched among
// the given dependencies and all their implied projections with single-
// attribute RHS (sufficient for the BCNF test).
func FirstBCNFViolation(universe []string, deps []Dep) *Dep {
	for _, d := range deps {
		if d.Trivial() {
			continue
		}
		if !IsSuperkey(d.LHS, universe, deps) {
			v := d
			return &v
		}
	}
	return nil
}

// MinimalCover computes a minimal (canonical) cover of deps: singleton
// right-hand sides, no extraneous LHS attributes, no redundant dependencies.
// Output order is canonical.
func MinimalCover(deps []Dep) []Dep {
	// Split RHS into singletons.
	var g []Dep
	for _, d := range deps {
		for _, a := range d.RHS {
			if schema.ContainsAttr(d.LHS, a) {
				continue // trivial component
			}
			g = append(g, Dep{LHS: schema.NormalizeAttrs(d.LHS), RHS: []string{a}})
		}
	}
	// Remove extraneous LHS attributes.
	for i := range g {
		for changed := true; changed; {
			changed = false
			for j := 0; j < len(g[i].LHS); j++ {
				reduced := without(g[i].LHS, j)
				if len(reduced) == 0 {
					continue
				}
				if schema.SubsetOf(g[i].RHS, Closure(reduced, g)) {
					g[i].LHS = reduced
					changed = true
					break
				}
			}
		}
	}
	// Remove redundant dependencies.
	var out []Dep
	for i := range g {
		rest := make([]Dep, 0, len(g)-1)
		rest = append(rest, out...)
		rest = append(rest, g[i+1:]...)
		if !Implies(rest, g[i]) {
			out = append(out, g[i])
		}
	}
	// Deduplicate and order canonically.
	seen := make(map[string]bool, len(out))
	dedup := out[:0]
	for _, d := range out {
		if !seen[d.Key()] {
			seen[d.Key()] = true
			dedup = append(dedup, d)
		}
	}
	sort.Slice(dedup, func(i, j int) bool { return dedup[i].Key() < dedup[j].Key() })
	return dedup
}
