package ddl

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// MigrationSQL emits the data-migration script for a merge: the SQL
// realization of the paper's state mapping η (Definition 4.1) followed by
// the μ projections of any removals. The merged table is populated from the
// member tables by a chain of outer joins on the (renamed) primary keys, and
// the member tables are dropped:
//
//	INSERT INTO COURSE2 (...)
//	SELECT ... FROM COURSE k
//	LEFT OUTER JOIN OFFER m1 ON m1.O_C_NR = k.C_NR
//	LEFT OUTER JOIN TEACH m2 ON m2.T_C_NR = k.C_NR ...
//
// Because the key-relation covers every member's key values (Prop. 3.1),
// left outer joins from it realize the paper's full outer-equi-join exactly;
// for a synthetic key-relation the key universe is materialized first as a
// UNION of the members' key projections.
func MigrationSQL(m *core.MergedScheme) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- Migration for Merge(%s) → %s\n", strings.Join(memberNames(m), ", "), sqlName(m.Name))
	fmt.Fprintf(&b, "-- Realizes the state mapping η of Definition 4.1")
	if n := len(m.Removals()); n > 0 {
		fmt.Fprintf(&b, " (with %d removal projection(s) composed in)", n)
	}
	b.WriteString("\n\n")

	removed := make(map[string]bool)
	for _, yj := range m.Removals() {
		for _, a := range yj {
			removed[a] = true
		}
	}

	// The driving table: the key-relation, or a materialized key universe.
	driver := "k"
	if m.Synthetic {
		b.WriteString("-- Synthetic key-relation: materialize the key universe first.\n")
		fmt.Fprintf(&b, "CREATE TABLE %s_keys (%s);\n", sqlName(m.Name), sqlNameList(m.Km))
		for _, mb := range m.Members {
			fmt.Fprintf(&b, "INSERT INTO %s_keys SELECT DISTINCT %s FROM %s;\n",
				sqlName(m.Name), sqlNameList(mb.Key), sqlName(mb.Name))
		}
		b.WriteString("\n")
	}

	// Column list: the merged scheme's current attributes.
	cur := m.Schema.Scheme(m.Name)
	var cols, exprs []string
	alias := make(map[string]string) // member name -> join alias
	if m.KeyRelation != "" {
		alias[m.KeyRelation] = "k"
	}
	i := 0
	for _, mb := range m.Members {
		if mb.Name == m.KeyRelation {
			continue
		}
		i++
		alias[mb.Name] = fmt.Sprintf("m%d", i)
	}
	owner := make(map[string]string) // attribute -> alias
	for _, mb := range m.Members {
		for _, a := range mb.Attrs {
			owner[a] = alias[mb.Name]
		}
	}
	if m.Synthetic {
		for _, k := range m.Km {
			owner[k] = "kk"
		}
	}
	for _, a := range cur.AttrNames() {
		cols = append(cols, sqlName(a))
		exprs = append(exprs, owner[a]+"."+sqlName(a))
	}

	fmt.Fprintf(&b, "INSERT INTO %s (%s)\nSELECT %s\n", sqlName(m.Name),
		strings.Join(cols, ", "), strings.Join(exprs, ", "))
	if m.Synthetic {
		fmt.Fprintf(&b, "FROM %s_keys kk\n", sqlName(m.Name))
		driver = "kk"
	} else {
		fmt.Fprintf(&b, "FROM %s k\n", sqlName(m.KeyRelation))
	}
	for _, mb := range m.Members {
		if mb.Name == m.KeyRelation {
			continue
		}
		var conds []string
		for j := range mb.Key {
			conds = append(conds, fmt.Sprintf("%s.%s = %s.%s",
				alias[mb.Name], sqlName(mb.Key[j]), driver, sqlName(m.Km[j])))
		}
		fmt.Fprintf(&b, "LEFT OUTER JOIN %s %s ON %s\n", sqlName(mb.Name), alias[mb.Name], strings.Join(conds, " AND "))
	}
	b.WriteString(";\n\n")

	if m.Synthetic {
		fmt.Fprintf(&b, "DROP TABLE %s_keys;\n", sqlName(m.Name))
	}
	for _, mb := range m.Members {
		fmt.Fprintf(&b, "DROP TABLE %s;\n", sqlName(mb.Name))
	}
	return b.String()
}

func memberNames(m *core.MergedScheme) []string {
	out := make([]string, len(m.Members))
	for i, mb := range m.Members {
		out[i] = mb.Name
	}
	return out
}
