// Package ddl generates schema definitions (DDL) for relational schemas of
// the form (R, F ∪ I ∪ N), in the style of the SDT tool the paper describes
// in section 6, for three dialect families discussed in section 5.1:
//
//   - DB2 (declarative-only): supports PRIMARY KEY, NOT NULL, and key-based
//     FOREIGN KEY constraints. Non-key-based inclusion dependencies and
//     general null constraints are *not maintainable*; Generate returns an
//     error listing them, exactly the situation Prop. 5.1/5.2 characterize.
//   - SYBASE 4.0: unsupported constraints are compiled to CREATE TRIGGER
//     bodies (Transact-SQL style).
//   - INGRES 6.3: unsupported constraints are compiled to CREATE RULE
//     statements invoking checking procedures.
//
// Output is deterministic: tables in schema order, then declarative
// constraints, then procedural objects.
package ddl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
)

// Dialect selects the target system family.
type Dialect int

// The supported dialects.
const (
	DB2 Dialect = iota
	Sybase
	Ingres
)

// String returns the dialect name.
func (d Dialect) String() string {
	switch d {
	case DB2:
		return "db2"
	case Sybase:
		return "sybase"
	case Ingres:
		return "ingres"
	default:
		return fmt.Sprintf("dialect(%d)", int(d))
	}
}

// ParseDialect resolves a dialect name.
func ParseDialect(name string) (Dialect, error) {
	switch strings.ToLower(name) {
	case "db2":
		return DB2, nil
	case "sybase":
		return Sybase, nil
	case "ingres":
		return Ingres, nil
	default:
		return 0, fmt.Errorf("ddl: unknown dialect %q (want db2, sybase, or ingres)", name)
	}
}

// Options configure generation.
type Options struct {
	Dialect Dialect
	// TypeMap maps domain names to SQL types; unmapped domains fall back to
	// VARCHAR(64).
	TypeMap map[string]string
}

func (o Options) sqlType(domain string) string {
	if t, ok := o.TypeMap[domain]; ok {
		return t
	}
	return "VARCHAR(64)"
}

// UnsupportedError reports constraints the dialect cannot maintain.
type UnsupportedError struct {
	Dialect Dialect
	Items   []string
}

// Error implements error.
func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("ddl: %s cannot maintain %d constraint(s):\n  %s",
		e.Dialect, len(e.Items), strings.Join(e.Items, "\n  "))
}

// Generate emits the DDL for the schema under the options. For DB2, an
// *UnsupportedError is returned when the schema carries constraints outside
// the declarative subset (the generated DDL for the supported part is still
// returned alongside the error).
func Generate(s *schema.Schema, opts Options) (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- Schema definition generated for %s\n", opts.Dialect)
	fmt.Fprintf(&b, "-- %d relation(s), %d inclusion dependencies, %d null constraints\n\n",
		len(s.Relations), len(s.INDs), len(s.Nulls))

	for _, rs := range s.Relations {
		writeTable(&b, s, rs, opts)
	}
	writeForeignKeys(&b, s)

	var procedural []string
	for _, ind := range s.INDs {
		if !ind.KeyBased(s) {
			procedural = append(procedural, "inclusion dependency "+ind.String())
		}
	}
	for _, nc := range s.Nulls {
		if ne, ok := nc.(schema.NullExistence); ok && ne.IsNNA() {
			continue // declarative NOT NULL
		}
		procedural = append(procedural, "null constraint "+nc.String())
	}

	switch opts.Dialect {
	case DB2:
		if len(procedural) > 0 {
			sort.Strings(procedural)
			return b.String(), &UnsupportedError{Dialect: DB2, Items: procedural}
		}
	case Sybase:
		writeSybaseTriggers(&b, s)
	case Ingres:
		writeIngresRules(&b, s)
	}
	return b.String(), nil
}

func writeTable(b *strings.Builder, s *schema.Schema, rs *schema.RelationScheme, opts Options) {
	nna := s.NNAAttrs(rs.Name)
	fmt.Fprintf(b, "CREATE TABLE %s (\n", sqlName(rs.Name))
	for _, a := range rs.Attrs {
		fmt.Fprintf(b, "    %-24s %s", sqlName(a.Name), opts.sqlType(a.Domain))
		if nna[a.Name] {
			b.WriteString(" NOT NULL")
		} else {
			b.WriteString(" NULL")
		}
		b.WriteString(",\n")
	}
	fmt.Fprintf(b, "    PRIMARY KEY (%s)\n", sqlNameList(rs.PrimaryKey))
	b.WriteString(");\n")
	for _, ck := range rs.CandidateKeys {
		nullable := false
		for _, a := range ck {
			if !nna[a] {
				nullable = true
			}
		}
		if nullable {
			// Keys allowed to be null cannot be maintained as UNIQUE by
			// systems that consider all nulls identical (section 5.1); emit
			// a comment instead of a constraint.
			fmt.Fprintf(b, "-- WARNING: candidate key (%s) of %s allows nulls and cannot be\n",
				sqlNameList(ck), sqlName(rs.Name))
			fmt.Fprintf(b, "-- maintained declaratively (all null values are considered identical).\n")
		} else {
			fmt.Fprintf(b, "ALTER TABLE %s ADD UNIQUE (%s);\n", sqlName(rs.Name), sqlNameList(ck))
		}
	}
	b.WriteString("\n")
}

func writeForeignKeys(b *strings.Builder, s *schema.Schema) {
	wrote := false
	for _, ind := range s.INDs {
		if !ind.KeyBased(s) {
			continue
		}
		fmt.Fprintf(b, "ALTER TABLE %s ADD FOREIGN KEY (%s) REFERENCES %s (%s);\n",
			sqlName(ind.Left), sqlNameList(ind.LeftAttrs),
			sqlName(ind.Right), sqlNameList(ind.RightAttrs))
		wrote = true
	}
	if wrote {
		b.WriteString("\n")
	}
}

// sqlName converts the paper's dotted attribute names to identifier-safe
// names (O.C.NR → O_C_NR) and quotes nothing else.
func sqlName(name string) string {
	return strings.NewReplacer(".", "_", "'", "p", "+", "p", " ", "_").Replace(name)
}

func sqlNameList(names []string) string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = sqlName(n)
	}
	return strings.Join(out, ", ")
}
