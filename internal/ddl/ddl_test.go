package ddl

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/schema"
)

func TestParseDialect(t *testing.T) {
	for name, want := range map[string]Dialect{"db2": DB2, "SYBASE": Sybase, "Ingres": Ingres} {
		got, err := ParseDialect(name)
		if err != nil || got != want {
			t.Errorf("ParseDialect(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseDialect("oracle"); err == nil {
		t.Error("unknown dialect should fail")
	}
	if DB2.String() != "db2" || Sybase.String() != "sybase" || Ingres.String() != "ingres" {
		t.Error("Dialect.String")
	}
}

func TestGenerateFig3DB2(t *testing.T) {
	// Figure 3 is fully declarative: key-based INDs and NNA only.
	out, err := Generate(figures.Fig3(), Options{Dialect: DB2})
	if err != nil {
		t.Fatalf("figure 3 should be DB2-expressible: %v", err)
	}
	for _, want := range []string{
		"CREATE TABLE OFFER",
		"O_C_NR",
		"NOT NULL",
		"PRIMARY KEY (O_C_NR)",
		"ALTER TABLE TEACH ADD FOREIGN KEY (T_C_NR) REFERENCES OFFER (O_C_NR);",
		"ALTER TABLE FACULTY ADD FOREIGN KEY (F_SSN) REFERENCES PERSON (P_SSN);",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
	if strings.Contains(out, "TRIGGER") || strings.Contains(out, "RULE") {
		t.Error("DB2 output must not contain procedural objects")
	}
}

func TestGenerateFig4DB2Unsupported(t *testing.T) {
	// Figure 4's merged schema needs general null constraints and a
	// non-key-based dependency: DB2 must refuse with a precise list.
	m, err := core.Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(m.Schema, Options{Dialect: DB2})
	var ue *UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("want UnsupportedError, got %v", err)
	}
	if out == "" {
		t.Error("the declarative part should still be emitted")
	}
	joined := strings.Join(ue.Items, "\n")
	if !strings.Contains(joined, "ASSIST[A.C.NR] ⊆ COURSE'[O.C.NR]") {
		t.Errorf("unsupported list should name the non-key-based dependency:\n%s", joined)
	}
	if !strings.Contains(joined, "NS(") || !strings.Contains(joined, "=⊥") {
		t.Errorf("unsupported list should name the null constraints:\n%s", joined)
	}
}

func TestGenerateFig4Sybase(t *testing.T) {
	m, err := core.Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(m.Schema, Options{Dialect: Sybase})
	if err != nil {
		t.Fatalf("SYBASE handles procedural constraints: %v", err)
	}
	for _, want := range []string{
		"CREATE TRIGGER trg_COURSEp_nulls ON COURSEp FOR INSERT, UPDATE",
		"ROLLBACK TRANSACTION",
		"CREATE TRIGGER trg_ASSIST_ref_A_C_NR ON ASSIST",
		"NOT EXISTS (SELECT * FROM COURSEp t WHERE t.O_C_NR = inserted.A_C_NR)",
		"CREATE TRIGGER trg_COURSEp_refd_O_C_NR ON COURSEp FOR DELETE, UPDATE",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in SYBASE output", want)
		}
	}
}

func TestGenerateFig4Ingres(t *testing.T) {
	m, err := core.Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(m.Schema, Options{Dialect: Ingres})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"CREATE RULE r_COURSEp_null_1 AFTER INSERT, UPDATE OF COURSEp",
		"EXECUTE PROCEDURE",
		"CREATE PROCEDURE p_ind_1",
		"RAISE ERROR",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in INGRES output", want)
		}
	}
}

func TestGenerateFig6DB2AfterRemove(t *testing.T) {
	// After RemoveAll, figure 6 still has two null-existence constraints, so
	// DB2 still refuses — but the Prop. 5.2 merge set reduces to pure NNA
	// and passes.
	m, err := core.Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	if err != nil {
		t.Fatal(err)
	}
	m.RemoveAll()
	if _, err := Generate(m.Schema, Options{Dialect: DB2}); err == nil {
		t.Error("figure 6 keeps general null constraints; DB2 must refuse")
	}

	m2, err := core.Merge(figures.Fig3(), []string{"OFFER", "TEACH", "ASSIST"}, "OFFER'")
	if err != nil {
		t.Fatal(err)
	}
	m2.RemoveAll()
	out, err := Generate(m2.Schema, Options{Dialect: DB2})
	if err != nil {
		t.Fatalf("the Prop. 5.2 merge should be DB2-expressible: %v", err)
	}
	if !strings.Contains(out, "CREATE TABLE OFFERp") {
		t.Error("merged table missing")
	}
}

func TestNullableCandidateKeyWarning(t *testing.T) {
	s := figures.Fig2(true)
	s.Scheme("TEACH").CandidateKeys = [][]string{{"T.FN"}}
	m, err := core.Merge(s, []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(m.Schema, Options{Dialect: Sybase})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "WARNING: candidate key (T_FN)") {
		t.Error("nullable candidate key should produce a warning comment")
	}
	// A non-null candidate key becomes a UNIQUE constraint.
	s2 := figures.Fig2(true)
	s2.Scheme("OFFER").CandidateKeys = [][]string{{"O.DN"}}
	out2, err := Generate(s2, Options{Dialect: DB2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "ALTER TABLE OFFER ADD UNIQUE (O_DN);") {
		t.Error("non-null candidate key should become UNIQUE")
	}
}

func TestTypeMap(t *testing.T) {
	out, err := Generate(figures.Fig3(), Options{
		Dialect: DB2,
		TypeMap: map[string]string{figures.DomSSN: "CHAR(9)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CHAR(9)") {
		t.Error("TypeMap not applied")
	}
	if !strings.Contains(out, "VARCHAR(64)") {
		t.Error("default type not applied to unmapped domains")
	}
}

func TestGenerateInvalidSchema(t *testing.T) {
	s := schema.New()
	s.Nulls = append(s.Nulls, schema.NNA("MISSING", "A"))
	if _, err := Generate(s, Options{Dialect: DB2}); err == nil {
		t.Error("invalid schema should be rejected")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m, _ := core.Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	a, _ := Generate(m.Schema, Options{Dialect: Sybase})
	b, _ := Generate(m.Schema, Options{Dialect: Sybase})
	if a != b {
		t.Error("output must be deterministic")
	}
}
