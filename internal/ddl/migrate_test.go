package ddl

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/figures"
)

func TestMigrationSQLFig6(t *testing.T) {
	m, err := core.Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	if err != nil {
		t.Fatal(err)
	}
	m.RemoveAll()
	out := MigrationSQL(m)
	for _, want := range []string{
		"INSERT INTO COURSEpp (C_NR, O_D_NAME, T_F_SSN, A_S_SSN)",
		"SELECT k.C_NR, m1.O_D_NAME, m2.T_F_SSN, m3.A_S_SSN",
		"FROM COURSE k",
		"LEFT OUTER JOIN OFFER m1 ON m1.O_C_NR = k.C_NR",
		"LEFT OUTER JOIN TEACH m2 ON m2.T_C_NR = k.C_NR",
		"LEFT OUTER JOIN ASSIST m3 ON m3.A_C_NR = k.C_NR",
		"DROP TABLE COURSE;",
		"DROP TABLE ASSIST;",
		"3 removal projection(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMigrationSQLWithoutRemovals(t *testing.T) {
	m, err := core.Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	if err != nil {
		t.Fatal(err)
	}
	out := MigrationSQL(m)
	// The key copies survive without removals.
	if !strings.Contains(out, "m1.O_C_NR") || !strings.Contains(out, "m2.T_C_NR") {
		t.Errorf("key copies missing from column list:\n%s", out)
	}
	if strings.Contains(out, "removal projection") {
		t.Error("no removals should be mentioned")
	}
}

func TestMigrationSQLSynthetic(t *testing.T) {
	m, err := core.Merge(figures.Fig2(false), []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		t.Fatal(err)
	}
	out := MigrationSQL(m)
	for _, want := range []string{
		"CREATE TABLE ASSIGN_keys (ASSIGN_K1);",
		"INSERT INTO ASSIGN_keys SELECT DISTINCT O_CN FROM OFFER;",
		"INSERT INTO ASSIGN_keys SELECT DISTINCT T_CN FROM TEACH;",
		"FROM ASSIGN_keys kk",
		"LEFT OUTER JOIN OFFER m1 ON m1.O_CN = kk.ASSIGN_K1",
		"LEFT OUTER JOIN TEACH m2 ON m2.T_CN = kk.ASSIGN_K1",
		"DROP TABLE ASSIGN_keys;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMigrationSQLDeterministic(t *testing.T) {
	m, _ := core.Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	if MigrationSQL(m) != MigrationSQL(m) {
		t.Error("must be deterministic")
	}
}
