package ddl

import (
	"fmt"
	"strings"

	"repro/internal/schema"
)

// predicate builders shared by the trigger and rule emitters. Each returns a
// SQL condition over the inserted/updated row that is TRUE when the
// constraint is VIOLATED.

func violationNullExistence(ne schema.NullExistence, row string) string {
	// Y total and Z not total.
	var conds []string
	for _, a := range ne.Y {
		conds = append(conds, fmt.Sprintf("%s.%s IS NOT NULL", row, sqlName(a)))
	}
	var zNull []string
	for _, a := range ne.Z {
		zNull = append(zNull, fmt.Sprintf("%s.%s IS NULL", row, sqlName(a)))
	}
	parts := append(conds, "("+strings.Join(zNull, " OR ")+")")
	return strings.Join(parts, " AND ")
}

func violationNullSync(ns schema.NullSync, row string) string {
	// Partly null: some attribute null and some non-null.
	var anyNull, anyNonNull []string
	for _, a := range ns.Y {
		anyNull = append(anyNull, fmt.Sprintf("%s.%s IS NULL", row, sqlName(a)))
		anyNonNull = append(anyNonNull, fmt.Sprintf("%s.%s IS NOT NULL", row, sqlName(a)))
	}
	return fmt.Sprintf("(%s) AND (%s)", strings.Join(anyNull, " OR "), strings.Join(anyNonNull, " OR "))
}

func violationPartNull(pn schema.PartNull, row string) string {
	// Every set has some null attribute.
	var sets []string
	for _, set := range pn.Sets {
		var nulls []string
		for _, a := range set {
			nulls = append(nulls, fmt.Sprintf("%s.%s IS NULL", row, sqlName(a)))
		}
		sets = append(sets, "("+strings.Join(nulls, " OR ")+")")
	}
	return strings.Join(sets, " AND ")
}

func violationTotalEquality(te schema.TotalEquality, row string) string {
	// Both sides total and some pair differs.
	var total []string
	for _, a := range append(append([]string(nil), te.Y...), te.Z...) {
		total = append(total, fmt.Sprintf("%s.%s IS NOT NULL", row, sqlName(a)))
	}
	var diff []string
	for i := range te.Y {
		diff = append(diff, fmt.Sprintf("%s.%s <> %s.%s", row, sqlName(te.Y[i]), row, sqlName(te.Z[i])))
	}
	return fmt.Sprintf("%s AND (%s)", strings.Join(total, " AND "), strings.Join(diff, " OR "))
}

func violationCondition(nc schema.NullConstraint, row string) (string, bool) {
	switch c := nc.(type) {
	case schema.NullExistence:
		if c.IsNNA() {
			return "", false // declarative NOT NULL
		}
		return violationNullExistence(c, row), true
	case schema.NullSync:
		return violationNullSync(c, row), true
	case schema.PartNull:
		return violationPartNull(c, row), true
	case schema.TotalEquality:
		return violationTotalEquality(c, row), true
	default:
		return "", false
	}
}

// writeSybaseTriggers emits Transact-SQL style triggers (SYBASE 4.0) for
// every constraint outside the declarative subset: one insert/update trigger
// per relation bundling its null-constraint checks, plus triggers for
// non-key-based inclusion dependencies (on the referencing side for
// insert/update, on the referenced side for delete/update).
func writeSybaseTriggers(b *strings.Builder, s *schema.Schema) {
	for _, rs := range s.Relations {
		var checks []string
		for _, nc := range s.NullsOf(rs.Name) {
			if cond, ok := violationCondition(nc, "inserted"); ok {
				checks = append(checks, fmt.Sprintf(
					"    /* %s */\n    IF EXISTS (SELECT * FROM inserted WHERE %s)\n    BEGIN\n        RAISERROR 20001 \"null constraint violated: %s\"\n        ROLLBACK TRANSACTION\n    END",
					nc, rewriteRowRefs(cond, "inserted"), escapeMsg(nc.String())))
			}
		}
		if len(checks) == 0 {
			continue
		}
		fmt.Fprintf(b, "CREATE TRIGGER trg_%s_nulls ON %s FOR INSERT, UPDATE AS\nBEGIN\n%s\nEND\ngo\n\n",
			sqlName(rs.Name), sqlName(rs.Name), strings.Join(checks, "\n"))
	}
	for _, ind := range s.INDs {
		if ind.KeyBased(s) {
			continue
		}
		writeSybaseINDTriggers(b, ind)
	}
}

func writeSybaseINDTriggers(b *strings.Builder, ind schema.IND) {
	join := joinCondition(ind, "inserted", "t")
	notNull := notNullCondition(ind.LeftAttrs, "inserted")
	fmt.Fprintf(b, "CREATE TRIGGER trg_%s_ref_%s ON %s FOR INSERT, UPDATE AS\nBEGIN\n", sqlName(ind.Left), sqlName(strings.Join(ind.LeftAttrs, "_")), sqlName(ind.Left))
	fmt.Fprintf(b, "    /* %s */\n", ind)
	fmt.Fprintf(b, "    IF EXISTS (SELECT * FROM inserted WHERE %s\n", notNull)
	fmt.Fprintf(b, "               AND NOT EXISTS (SELECT * FROM %s t WHERE %s))\n", sqlName(ind.Right), join)
	fmt.Fprintf(b, "    BEGIN\n        RAISERROR 20002 \"inclusion dependency violated: %s\"\n        ROLLBACK TRANSACTION\n    END\nEND\ngo\n\n", escapeMsg(ind.String()))

	// Deletion/update on the referenced side must not strand referencing rows.
	joinDel := joinCondition(ind, "r", "deleted")
	fmt.Fprintf(b, "CREATE TRIGGER trg_%s_refd_%s ON %s FOR DELETE, UPDATE AS\nBEGIN\n", sqlName(ind.Right), sqlName(strings.Join(ind.RightAttrs, "_")), sqlName(ind.Right))
	fmt.Fprintf(b, "    /* %s (referenced side) */\n", ind)
	fmt.Fprintf(b, "    IF EXISTS (SELECT * FROM %s r, deleted WHERE %s)\n", sqlName(ind.Left), joinDel)
	fmt.Fprintf(b, "    BEGIN\n        RAISERROR 20003 \"inclusion dependency violated: %s\"\n        ROLLBACK TRANSACTION\n    END\nEND\ngo\n\n", escapeMsg(ind.String()))
}

// writeIngresRules emits INGRES 6.3 style rules: each constraint gets a rule
// firing a checking procedure after insert/update.
func writeIngresRules(b *strings.Builder, s *schema.Schema) {
	for _, rs := range s.Relations {
		emitted := 0
		for _, nc := range s.NullsOf(rs.Name) {
			cond, ok := violationCondition(nc, "new")
			if !ok {
				continue
			}
			emitted++
			proc := fmt.Sprintf("p_%s_null_%d", sqlName(rs.Name), emitted)
			fmt.Fprintf(b, "CREATE PROCEDURE %s AS\nBEGIN\n    /* %s */\n    RAISE ERROR 20001 'null constraint violated: %s';\nEND;\n",
				proc, nc, escapeMsg(nc.String()))
			fmt.Fprintf(b, "CREATE RULE r_%s_null_%d AFTER INSERT, UPDATE OF %s\n    WHERE %s\n    EXECUTE PROCEDURE %s;\n\n",
				sqlName(rs.Name), emitted, sqlName(rs.Name), cond, proc)
		}
	}
	n := 0
	for _, ind := range s.INDs {
		if ind.KeyBased(s) {
			continue
		}
		n++
		proc := fmt.Sprintf("p_ind_%d", n)
		fmt.Fprintf(b, "CREATE PROCEDURE %s AS\nBEGIN\n    /* %s */\n    RAISE ERROR 20002 'inclusion dependency violated: %s';\nEND;\n",
			proc, ind, escapeMsg(ind.String()))
		fmt.Fprintf(b, "CREATE RULE r_ind_%d AFTER INSERT, UPDATE OF %s\n    WHERE %s AND NOT EXISTS (SELECT 1 FROM %s t WHERE %s)\n    EXECUTE PROCEDURE %s;\n\n",
			n, sqlName(ind.Left), notNullCondition(ind.LeftAttrs, "new"), sqlName(ind.Right), joinCondition(ind, "new", "t"), proc)
	}
}

func joinCondition(ind schema.IND, leftRow, rightRow string) string {
	var conds []string
	for i := range ind.LeftAttrs {
		conds = append(conds, fmt.Sprintf("%s.%s = %s.%s",
			rightRow, sqlName(ind.RightAttrs[i]), leftRow, sqlName(ind.LeftAttrs[i])))
	}
	return strings.Join(conds, " AND ")
}

func notNullCondition(attrs []string, row string) string {
	var conds []string
	for _, a := range attrs {
		conds = append(conds, fmt.Sprintf("%s.%s IS NOT NULL", row, sqlName(a)))
	}
	return strings.Join(conds, " AND ")
}

func rewriteRowRefs(cond, row string) string {
	// Conditions are already generated against the given row alias.
	_ = row
	return cond
}

func escapeMsg(s string) string {
	return strings.NewReplacer("\"", "'", "\n", " ").Replace(s)
}
