package nullcon

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/schema"
)

// closeExistenceReference is the pre-bitset fixpoint, kept in the test as the
// differential oracle for the engine-backed CloseExistence.
func closeExistenceReference(scheme string, nes []schema.NullExistence, y []string) []string {
	closed := make(map[string]bool, len(y))
	for _, a := range y {
		closed[a] = true
	}
	for changed := true; changed; {
		changed = false
		for _, ne := range nes {
			if ne.Scheme != scheme {
				continue
			}
			sat := true
			for _, a := range ne.Y {
				if !closed[a] {
					sat = false
					break
				}
			}
			if !sat {
				continue
			}
			for _, a := range ne.Z {
				if !closed[a] {
					closed[a] = true
					changed = true
				}
			}
		}
	}
	out := make([]string, 0, len(closed))
	for a := range closed {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func randExistence(rng *rand.Rand) []schema.NullExistence {
	alphabet := []string{"A", "B", "C", "D", "E", "F"}
	schemes := []string{"R", "S"}
	pick := func(max, min int) []string {
		n := min + rng.Intn(max)
		out := make([]string, 0, n)
		for len(out) < n {
			out = append(out, alphabet[rng.Intn(len(alphabet))])
		}
		return out
	}
	nes := make([]schema.NullExistence, 1+rng.Intn(6))
	for i := range nes {
		// min 0 on Y makes a fraction of the constraints nulls-not-allowed
		// (empty LHS), exercising the unconditional-firing path.
		nes[i] = schema.NullExistence{Scheme: schemes[rng.Intn(2)], Y: pick(3, 0), Z: pick(2, 1)}
	}
	return nes
}

// TestCloseExistenceDifferential compares the engine-backed closure with the
// reference fixpoint on random constraint sets, including empty-LHS
// (nulls-not-allowed) constraints and cross-scheme filtering.
func TestCloseExistenceDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	alphabet := []string{"A", "B", "C", "D", "E", "F"}
	for trial := 0; trial < 3000; trial++ {
		nes := randExistence(rng)
		var seed []string
		for n := rng.Intn(4); len(seed) < n; {
			seed = append(seed, alphabet[rng.Intn(len(alphabet))])
		}
		scheme := []string{"R", "S"}[rng.Intn(2)]
		got := CloseExistence(scheme, nes, seed)
		want := closeExistenceReference(scheme, nes, seed)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: CloseExistence(%q, %v, %v) = %v, want %v", trial, scheme, nes, seed, got, want)
		}
	}
}

// TestEqClassesProperties checks the int-based union-find against the
// defining closure: Same(a,b) iff a and b are connected in the graph whose
// edges are the positional pairs of the scheme's constraints.
func TestEqClassesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	alphabet := []string{"A", "B", "C", "D", "E", "F"}
	for trial := 0; trial < 500; trial++ {
		var tes []schema.TotalEquality
		edges := make(map[string][]string)
		addEdge := func(a, b string) {
			edges[a] = append(edges[a], b)
			edges[b] = append(edges[b], a)
		}
		for i := 0; i < 1+rng.Intn(4); i++ {
			n := 1 + rng.Intn(3)
			y := make([]string, n)
			z := make([]string, n)
			for j := range y {
				y[j] = alphabet[rng.Intn(len(alphabet))]
				z[j] = alphabet[rng.Intn(len(alphabet))]
				addEdge(y[j], z[j])
			}
			tes = append(tes, schema.TotalEquality{Scheme: "R", Y: y, Z: z})
		}
		reach := func(a, b string) bool {
			if a == b {
				return true
			}
			visited := map[string]bool{a: true}
			queue := []string{a}
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				for _, next := range edges[cur] {
					if next == b {
						return true
					}
					if !visited[next] {
						visited[next] = true
						queue = append(queue, next)
					}
				}
			}
			return false
		}
		eq := NewEqClasses("R", tes)
		for _, a := range alphabet {
			for _, b := range alphabet {
				if got, want := eq.Same(a, b), reach(a, b); got != want {
					t.Fatalf("trial %d: Same(%s,%s) = %v, want %v (tes %v)", trial, a, b, got, want, tes)
				}
			}
		}
	}
}

// TestConcurrentCloseExistence hammers the shared engine across goroutines;
// meaningful under -race.
func TestConcurrentCloseExistence(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for trial := 0; trial < 200; trial++ {
				nes := randExistence(rng)
				CloseExistence("R", nes, []string{"A"})
				ImpliesExistence(nes, schema.NullExistence{Scheme: "S", Y: []string{"B"}, Z: []string{"C"}})
			}
		}(g)
	}
	wg.Wait()
}
