// Package nullcon implements inference and simplification for the null
// constraints of Markowitz (ICDE 1992), section 3:
//
//   - null-existence constraints Y ⊑ Z obey inference axioms of the same form
//     as the Armstrong axioms for functional dependencies (reflexivity,
//     augmentation, transitivity), so implication reduces to an
//     attribute-closure computation;
//   - total-equality constraints Y =⊥ Z obey axioms analogous to Klug's
//     equality-constraint axioms (reflexivity, symmetry, transitivity), so
//     implication reduces to an equivalence-class computation over attribute
//     pairs;
//   - part-null constraints PN(Y1,…,Ym) are compared by subsumption (a PN
//     constraint is weaker when each of its sets contains some set of the
//     stronger constraint).
//
// The three families do not interact with each other (section 3), so
// implication is decided family-by-family.
package nullcon

import (
	"repro/internal/attrset"
	"repro/internal/obs"
	"repro/internal/schema"
)

// engine answers all null-existence closure questions. Null-existence
// constraints are FD-shaped (Y ⊑ Z obeys the Armstrong-form axioms of
// section 3), so the same indexed counter algorithm applies; a nulls-not-
// allowed constraint is an empty-LHS dependency and fires unconditionally.
var engine = attrset.NewEngine()

// RegisterMetrics publishes the package engine's cache counters into a
// metrics registry under engine=nullcon.
func RegisterMetrics(r *obs.Registry) { engine.Register(r, "nullcon") }

// CacheStats snapshots the package engine's cache counters.
func CacheStats() attrset.CacheStats { return engine.CacheStats() }

// existenceIndex compiles the constraints attached to one scheme. The
// filtered list is rebuilt per call, but the compile itself is cached by
// structural fingerprint, so the ubiquitous pattern of Simplify/Implied —
// same constraint set, many seeds — pays one compile and then only hashing.
func existenceIndex(scheme string, nes []schema.NullExistence) *attrset.Index {
	filtered := make([]schema.NullExistence, 0, len(nes))
	for _, ne := range nes {
		if ne.Scheme == scheme {
			filtered = append(filtered, ne)
		}
	}
	return engine.Index(len(filtered), func(i int) ([]string, []string) {
		return filtered[i].Y, filtered[i].Z
	})
}

// Classify splits a constraint list into its three reasoning families,
// expanding null-synchronization sets into their null-existence members.
func Classify(nulls []schema.NullConstraint) (nes []schema.NullExistence, pns []schema.PartNull, tes []schema.TotalEquality) {
	for _, nc := range nulls {
		switch c := nc.(type) {
		case schema.NullExistence:
			nes = append(nes, c)
		case schema.NullSync:
			nes = append(nes, c.Expand()...)
		case schema.PartNull:
			pns = append(pns, c)
		case schema.TotalEquality:
			tes = append(tes, c)
		}
	}
	return nes, pns, tes
}

// CloseExistence computes the set of attributes forced total whenever the
// attributes of y are total, under the given null-existence constraints of a
// single scheme — the analogue of FD attribute closure. Constraints attached
// to other schemes are ignored.
func CloseExistence(scheme string, nes []schema.NullExistence, y []string) []string {
	names := engine.ClosureNames(existenceIndex(scheme, nes), y)
	return append(make([]string, 0, len(names)), names...)
}

// ImpliesExistence reports whether the null-existence constraints imply ne.
func ImpliesExistence(nes []schema.NullExistence, ne schema.NullExistence) bool {
	return engine.Contains(existenceIndex(ne.Scheme, nes), ne.Y, ne.Z)
}

// TotalAttrs returns the attributes of the scheme forced total
// unconditionally (the closure of the empty set — everything reachable from
// nulls-not-allowed constraints).
func TotalAttrs(scheme string, nes []schema.NullExistence) []string {
	return CloseExistence(scheme, nes, nil)
}

// EqClasses is a union-find over qualified attribute names, built from
// total-equality constraints; two attributes are in the same class iff their
// equality is derivable by reflexivity, symmetry, and transitivity. Names are
// interned to dense ids at build time, so the structure is a flat int slice
// with path-halving finds, and queries after construction do not mutate the
// maps (an attribute never mentioned by a constraint is its own class).
type EqClasses struct {
	ids    map[string]int32
	parent []int32
}

// NewEqClasses builds the equivalence classes for one scheme's total-equality
// constraints (pairing attributes position-wise).
func NewEqClasses(scheme string, tes []schema.TotalEquality) *EqClasses {
	eq := &EqClasses{ids: make(map[string]int32)}
	for _, te := range tes {
		if te.Scheme != scheme {
			continue
		}
		for i := range te.Y {
			if i < len(te.Z) {
				eq.union(eq.id(te.Y[i]), eq.id(te.Z[i]))
			}
		}
	}
	return eq
}

func (eq *EqClasses) id(a string) int32 {
	if id, ok := eq.ids[a]; ok {
		return id
	}
	id := int32(len(eq.parent))
	eq.ids[a] = id
	eq.parent = append(eq.parent, id)
	return id
}

func (eq *EqClasses) find(x int32) int32 {
	for eq.parent[x] != x {
		eq.parent[x] = eq.parent[eq.parent[x]] // path halving
		x = eq.parent[x]
	}
	return x
}

func (eq *EqClasses) union(a, b int32) {
	ra, rb := eq.find(a), eq.find(b)
	if ra == rb {
		return
	}
	// Deterministic root choice: the smaller id (the earlier-interned name).
	if ra > rb {
		ra, rb = rb, ra
	}
	eq.parent[rb] = ra
}

// Same reports whether the attributes are provably equal.
func (eq *EqClasses) Same(a, b string) bool {
	if a == b {
		return true
	}
	ia, oka := eq.ids[a]
	ib, okb := eq.ids[b]
	if !oka || !okb {
		return false // an unmentioned attribute equals only itself
	}
	return eq.find(ia) == eq.find(ib)
}

// ImpliesTotalEquality reports whether the total-equality constraints imply
// te (each positional pair must be in the same class).
func ImpliesTotalEquality(tes []schema.TotalEquality, te schema.TotalEquality) bool {
	if len(te.Y) != len(te.Z) {
		return false
	}
	eq := NewEqClasses(te.Scheme, tes)
	for i := range te.Y {
		if !eq.Same(te.Y[i], te.Z[i]) {
			return false
		}
	}
	return true
}

// SubsumesPartNull reports whether part-null constraint strong implies weak:
// same scheme, and every set of weak contains some set of strong (a tuple
// with a total strong-set subtuple has a total subtuple inside the weak set
// that contains it).
func SubsumesPartNull(strong, weak schema.PartNull) bool {
	if strong.Scheme != weak.Scheme {
		return false
	}
	for _, ws := range weak.Sets {
		found := false
		for _, ss := range strong.Sets {
			if schema.SubsetOf(ss, ws) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Trivial reports whether the constraint is satisfied by every relation:
// a null-existence constraint with Z ⊆ Y; a null-synchronization set over at
// most one attribute; a part-null constraint with an empty member set (the
// empty subtuple is vacuously total); a total-equality constraint pairing
// each attribute with itself.
func Trivial(nc schema.NullConstraint) bool {
	switch c := nc.(type) {
	case schema.NullExistence:
		return schema.SubsetOf(c.Z, c.Y)
	case schema.NullSync:
		return len(schema.NormalizeAttrs(c.Y)) <= 1
	case schema.PartNull:
		if len(c.Sets) == 0 {
			return true
		}
		for _, set := range c.Sets {
			if len(set) == 0 {
				return true
			}
		}
		return false
	case schema.TotalEquality:
		for i := range c.Y {
			if i >= len(c.Z) || c.Y[i] != c.Z[i] {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Simplify removes trivial constraints, duplicates, and constraints implied
// by the rest of the set, returning a deterministic minimal-ish cover. The
// input order is preserved for surviving constraints.
func Simplify(nulls []schema.NullConstraint) []schema.NullConstraint {
	// Pass 1: drop trivial and exact duplicates.
	var pruned []schema.NullConstraint
	seen := make(map[string]bool)
	for _, nc := range nulls {
		if Trivial(nc) || seen[nc.Key()] {
			continue
		}
		seen[nc.Key()] = true
		pruned = append(pruned, nc)
	}
	// Pass 2: drop constraints implied by the remaining set.
	var out []schema.NullConstraint
	for i, nc := range pruned {
		rest := make([]schema.NullConstraint, 0, len(pruned)-1)
		rest = append(rest, out...)
		rest = append(rest, pruned[i+1:]...)
		if !Implied(rest, nc) {
			out = append(out, nc)
		}
	}
	return out
}

// Implied reports whether the constraint set implies nc, family-by-family.
// Null-synchronization sets are handled through their null-existence
// expansion on both sides.
func Implied(nulls []schema.NullConstraint, nc schema.NullConstraint) bool {
	nes, pns, tes := Classify(nulls)
	switch c := nc.(type) {
	case schema.NullExistence:
		return ImpliesExistence(nes, c)
	case schema.NullSync:
		for _, ne := range c.Expand() {
			if !ImpliesExistence(nes, ne) {
				return false
			}
		}
		return true
	case schema.PartNull:
		for _, pn := range pns {
			if SubsumesPartNull(pn, c) {
				return true
			}
		}
		return false
	case schema.TotalEquality:
		return ImpliesTotalEquality(tes, c)
	default:
		return false
	}
}

// OnlyNNA reports whether every constraint in the set is a nulls-not-allowed
// constraint — the declaratively-maintainable case of Proposition 5.2.
func OnlyNNA(nulls []schema.NullConstraint) bool {
	for _, nc := range nulls {
		ne, ok := nc.(schema.NullExistence)
		if !ok || !ne.IsNNA() {
			return false
		}
	}
	return true
}
