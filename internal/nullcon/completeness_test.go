package nullcon

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
)

// Completeness of null-existence implication: whenever Implied reports
// false, a single-tuple countermodel exists — total exactly on the closure
// of the candidate's left-hand side — that satisfies every constraint in the
// set and violates the candidate. This mirrors the classical Armstrong
// completeness argument for FDs, which the paper invokes for null-existence
// constraints ("inference axioms ... have the form of the inference axioms
// for functional dependencies").
func TestExistenceImplicationCompleteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	attrs := []string{"A", "B", "C", "D", "E"}
	for trial := 0; trial < 300; trial++ {
		var set []schema.NullConstraint
		var nes []schema.NullExistence
		for i := 0; i < rng.Intn(4); i++ {
			ne := schema.NewNullExistence("R", randSubset(rng, attrs), randSubset(rng, attrs))
			set = append(set, ne)
			nes = append(nes, ne)
		}
		cand := schema.NewNullExistence("R", randSubset(rng, attrs), randSubset(rng, attrs))
		if Implied(set, cand) {
			continue
		}
		// Countermodel: one tuple, total exactly on closure(Y).
		closure := CloseExistence("R", nes, cand.Y)
		inClosure := make(map[string]bool, len(closure))
		for _, a := range closure {
			inClosure[a] = true
		}
		r := relation.New(attrs...)
		tup := make(relation.Tuple, len(attrs))
		for i, a := range attrs {
			if inClosure[a] {
				tup[i] = relation.NewString("v")
			} else {
				tup[i] = relation.Null()
			}
		}
		r.Add(tup)
		for _, nc := range set {
			if !nc.Satisfied(r) {
				t.Fatalf("trial %d: countermodel violates set member %v (set %v)", trial, nc, set)
			}
		}
		if cand.Satisfied(r) {
			t.Fatalf("trial %d: countermodel fails to violate %v (closure %v)", trial, cand, closure)
		}
	}
}

// Completeness of total-equality implication: whenever Implied reports
// false, the tuple assigning one fresh value per equivalence class satisfies
// the set and violates the candidate.
func TestTotalEqualityImplicationCompleteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	attrs := []string{"A", "B", "C", "D", "E"}
	for trial := 0; trial < 300; trial++ {
		var set []schema.NullConstraint
		var tes []schema.TotalEquality
		for i := 0; i < rng.Intn(4); i++ {
			a, b := attrs[rng.Intn(len(attrs))], attrs[rng.Intn(len(attrs))]
			te := schema.NewTotalEquality("R", []string{a}, []string{b})
			set = append(set, te)
			tes = append(tes, te)
		}
		a, b := attrs[rng.Intn(len(attrs))], attrs[rng.Intn(len(attrs))]
		cand := schema.NewTotalEquality("R", []string{a}, []string{b})
		if Implied(set, cand) {
			continue
		}
		eq := NewEqClasses("R", tes)
		r := relation.New(attrs...)
		tup := make(relation.Tuple, len(attrs))
		classValue := make(map[string]relation.Value)
		next := 0
		for i, at := range attrs {
			// One value per equivalence class.
			root := at
			for _, other := range attrs {
				if eq.Same(at, other) && other < root {
					root = other
				}
			}
			v, ok := classValue[root]
			if !ok {
				v = relation.NewString(fmt.Sprintf("c%d", next))
				next++
				classValue[root] = v
			}
			tup[i] = v
		}
		r.Add(tup)
		for _, nc := range set {
			if !nc.Satisfied(r) {
				t.Fatalf("trial %d: countermodel violates set member %v", trial, nc)
			}
		}
		if cand.Satisfied(r) {
			t.Fatalf("trial %d: countermodel fails to violate %v (set %v)", trial, cand, set)
		}
	}
}

// Soundness of Simplify: the simplified set is equivalent to the original —
// every dropped constraint is implied by the survivors, checked semantically
// on random relations.
func TestSimplifyEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	attrs := []string{"A", "B", "C", "D"}
	for trial := 0; trial < 150; trial++ {
		var set []schema.NullConstraint
		for i := 0; i < 1+rng.Intn(5); i++ {
			switch rng.Intn(3) {
			case 0:
				set = append(set, schema.NewNullExistence("R", randSubset(rng, attrs), randSubset(rng, attrs)))
			case 1:
				set = append(set, schema.NewNullSync("R", randSubset(rng, attrs)...))
			case 2:
				set = append(set, schema.NewTotalEquality("R",
					[]string{attrs[rng.Intn(len(attrs))]}, []string{attrs[rng.Intn(len(attrs))]}))
			}
		}
		simplified := Simplify(set)
		// Random relations: original and simplified must agree.
		for rel := 0; rel < 15; rel++ {
			r := relation.New(attrs...)
			for row := 0; row < 1+rng.Intn(3); row++ {
				tup := make(relation.Tuple, len(attrs))
				for i := range tup {
					switch rng.Intn(3) {
					case 0:
						tup[i] = relation.Null()
					default:
						tup[i] = relation.NewString(fmt.Sprintf("v%d", rng.Intn(2)))
					}
				}
				r.Add(tup)
			}
			origOK := allSatisfied(set, r)
			simpOK := allSatisfied(simplified, r)
			if origOK != simpOK {
				t.Fatalf("trial %d: Simplify changed semantics on %v\noriginal %v → %v\nsimplified %v → %v",
					trial, r, set, origOK, simplified, simpOK)
			}
		}
	}
}

func allSatisfied(set []schema.NullConstraint, r *relation.Relation) bool {
	for _, nc := range set {
		if !nc.Satisfied(r) {
			return false
		}
	}
	return true
}
