package nullcon

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
)

func ne(y, z []string) schema.NullExistence {
	return schema.NewNullExistence("R", y, z)
}

func TestCloseExistence(t *testing.T) {
	nes := []schema.NullExistence{
		ne([]string{"A"}, []string{"B"}),
		ne([]string{"B"}, []string{"C"}),
		schema.NewNullExistence("OTHER", []string{"A"}, []string{"Z"}),
	}
	got := CloseExistence("R", nes, []string{"A"})
	if !schema.EqualAttrSets(got, []string{"A", "B", "C"}) {
		t.Errorf("CloseExistence = %v (other-scheme constraints must be ignored)", got)
	}
}

func TestImpliesExistenceAxioms(t *testing.T) {
	base := []schema.NullExistence{ne([]string{"A"}, []string{"B"})}
	// Reflexivity.
	if !ImpliesExistence(nil, ne([]string{"A", "B"}, []string{"A"})) {
		t.Error("reflexivity")
	}
	// Augmentation: A ⊑ B implies A,C ⊑ B,C.
	if !ImpliesExistence(base, ne([]string{"A", "C"}, []string{"B", "C"})) {
		t.Error("augmentation")
	}
	// Transitivity.
	chain := []schema.NullExistence{
		ne([]string{"A"}, []string{"B"}),
		ne([]string{"B"}, []string{"C"}),
	}
	if !ImpliesExistence(chain, ne([]string{"A"}, []string{"C"})) {
		t.Error("transitivity")
	}
	// Non-implication.
	if ImpliesExistence(base, ne([]string{"B"}, []string{"A"})) {
		t.Error("converse should not be implied")
	}
}

func TestTotalAttrsFromNNA(t *testing.T) {
	nes := []schema.NullExistence{
		schema.NNA("R", "A"),
		ne([]string{"A"}, []string{"B"}),
	}
	got := TotalAttrs("R", nes)
	if !schema.EqualAttrSets(got, []string{"A", "B"}) {
		t.Errorf("TotalAttrs = %v: NNA on A plus A ⊑ B forces B total", got)
	}
}

func TestEqClasses(t *testing.T) {
	tes := []schema.TotalEquality{
		schema.NewTotalEquality("R", []string{"A"}, []string{"B"}),
		schema.NewTotalEquality("R", []string{"B"}, []string{"C"}),
	}
	eq := NewEqClasses("R", tes)
	if !eq.Same("A", "C") {
		t.Error("transitivity through B")
	}
	if !eq.Same("C", "A") {
		t.Error("symmetry")
	}
	if !eq.Same("D", "D") {
		t.Error("reflexivity")
	}
	if eq.Same("A", "D") {
		t.Error("unconnected attributes")
	}
}

func TestImpliesTotalEquality(t *testing.T) {
	tes := []schema.TotalEquality{
		schema.NewTotalEquality("R", []string{"A", "X"}, []string{"B", "Y"}),
	}
	if !ImpliesTotalEquality(tes, schema.NewTotalEquality("R", []string{"B"}, []string{"A"})) {
		t.Error("single-pair symmetry")
	}
	if !ImpliesTotalEquality(tes, schema.NewTotalEquality("R", []string{"A", "X"}, []string{"B", "Y"})) {
		t.Error("identity")
	}
	if ImpliesTotalEquality(tes, schema.NewTotalEquality("R", []string{"A"}, []string{"Y"})) {
		t.Error("cross-position pairs are not implied")
	}
	if ImpliesTotalEquality(tes, schema.NewTotalEquality("R", []string{"A"}, []string{"B", "Y"})) {
		t.Error("arity mismatch")
	}
}

func TestSubsumesPartNull(t *testing.T) {
	strong := schema.NewPartNull("R", []string{"A"}, []string{"C"})
	weak := schema.NewPartNull("R", []string{"A", "B"}, []string{"C", "D"})
	if !SubsumesPartNull(strong, weak) {
		t.Error("smaller sets subsume supersets")
	}
	if SubsumesPartNull(weak, strong) {
		t.Error("not the converse")
	}
	other := schema.NewPartNull("S", []string{"A"})
	if SubsumesPartNull(other, weak) {
		t.Error("different schemes never subsume")
	}
}

func TestTrivial(t *testing.T) {
	cases := []struct {
		nc   schema.NullConstraint
		want bool
	}{
		{ne([]string{"A", "B"}, []string{"A"}), true},
		{ne([]string{"A"}, []string{"B"}), false},
		{schema.NNA("R", "A"), false},
		{schema.NewNullSync("R", "A"), true},
		{schema.NewNullSync("R", "A", "A"), true},
		{schema.NewNullSync("R", "A", "B"), false},
		{schema.NewPartNull("R"), true},
		{schema.NewPartNull("R", []string{}), true},
		{schema.NewPartNull("R", []string{"A"}), false},
		{schema.NewTotalEquality("R", []string{"A"}, []string{"A"}), true},
		{schema.NewTotalEquality("R", []string{"A"}, []string{"B"}), false},
	}
	for _, c := range cases {
		if got := Trivial(c.nc); got != c.want {
			t.Errorf("Trivial(%v) = %v, want %v", c.nc, got, c.want)
		}
	}
}

func TestSimplifyDropsTrivialAndImplied(t *testing.T) {
	nulls := []schema.NullConstraint{
		schema.NewNullSync("R", "A"),                               // trivial
		ne([]string{"A"}, []string{"B"}),                           // kept
		ne([]string{"B"}, []string{"C"}),                           // kept
		ne([]string{"A"}, []string{"C"}),                           // implied transitively
		ne([]string{"A"}, []string{"B"}),                           // duplicate
		schema.NewTotalEquality("R", []string{"A"}, []string{"A"}), // trivial
	}
	out := Simplify(nulls)
	if len(out) != 2 {
		t.Fatalf("Simplify = %v, want 2 constraints", out)
	}
}

func TestSimplifyFigure6Shape(t *testing.T) {
	// After Remove strips O.C.NR, T.C.NR, A.C.NR from figure 5's constraint
	// set, simplification must yield exactly figure 6's three constraints.
	nulls := []schema.NullConstraint{
		schema.NNA("COURSE2", "C.NR"),
		schema.NewNullSync("COURSE2", "O.D.NAME"),
		schema.NewNullSync("COURSE2", "T.F.SSN"),
		schema.NewNullSync("COURSE2", "A.S.SSN"),
		schema.NewNullExistence("COURSE2", []string{"T.F.SSN"}, []string{"O.D.NAME"}),
		schema.NewNullExistence("COURSE2", []string{"A.S.SSN"}, []string{"O.D.NAME"}),
	}
	out := Simplify(nulls)
	want := map[string]bool{
		schema.NNA("COURSE2", "C.NR").Key():                                                 true,
		schema.NewNullExistence("COURSE2", []string{"T.F.SSN"}, []string{"O.D.NAME"}).Key(): true,
		schema.NewNullExistence("COURSE2", []string{"A.S.SSN"}, []string{"O.D.NAME"}).Key(): true,
	}
	if len(out) != len(want) {
		t.Fatalf("Simplify = %v, want figure 6's 3 constraints", out)
	}
	for _, nc := range out {
		if !want[nc.Key()] {
			t.Errorf("unexpected constraint %v", nc)
		}
	}
}

func TestImpliedMixedFamilies(t *testing.T) {
	nulls := []schema.NullConstraint{
		schema.NewNullSync("R", "A", "B"),
		schema.NewPartNull("R", []string{"A"}),
		schema.NewTotalEquality("R", []string{"A"}, []string{"B"}),
	}
	// NS(A,B) expands to A ⊑ {A,B} and B ⊑ {A,B}; so A ⊑ B is implied.
	if !Implied(nulls, ne([]string{"A"}, []string{"B"})) {
		t.Error("NS expansion should imply member NE constraints")
	}
	if !Implied(nulls, schema.NewNullSync("R", "A", "B")) {
		t.Error("NS implies itself via expansion")
	}
	if !Implied(nulls, schema.NewPartNull("R", []string{"A", "C"})) {
		t.Error("PN subsumption")
	}
	if Implied(nulls, schema.NewPartNull("R", []string{"C"})) {
		t.Error("unrelated PN not implied")
	}
	if !Implied(nulls, schema.NewTotalEquality("R", []string{"B"}, []string{"A"})) {
		t.Error("TE symmetry")
	}
	if Implied(nulls, schema.NewTotalEquality("R", []string{"A"}, []string{"C"})) {
		t.Error("unrelated TE not implied")
	}
}

func TestOnlyNNA(t *testing.T) {
	if !OnlyNNA([]schema.NullConstraint{schema.NNA("R", "A"), schema.NNA("S", "B")}) {
		t.Error("all-NNA set")
	}
	if OnlyNNA([]schema.NullConstraint{schema.NNA("R", "A"), ne([]string{"A"}, []string{"B"})}) {
		t.Error("general NE is not NNA")
	}
	if OnlyNNA([]schema.NullConstraint{schema.NewNullSync("R", "A", "B")}) {
		t.Error("NS is not NNA")
	}
	if !OnlyNNA(nil) {
		t.Error("empty set is vacuously all-NNA")
	}
}

// Property: implication is sound — if the set implies nc, then every relation
// satisfying the set satisfies nc. Randomized over small relations.
func TestImplicationSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	attrs := []string{"A", "B", "C", "D"}
	for trial := 0; trial < 200; trial++ {
		// Random NE constraint set.
		var nulls []schema.NullConstraint
		for i := 0; i < 1+rng.Intn(3); i++ {
			nulls = append(nulls, ne(randSubset(rng, attrs), randSubset(rng, attrs)))
		}
		candidate := ne(randSubset(rng, attrs), randSubset(rng, attrs))
		if !Implied(nulls, candidate) {
			continue
		}
		// Build random relations; all must satisfy candidate whenever they
		// satisfy every member of nulls.
		for rel := 0; rel < 20; rel++ {
			r := relation.New(attrs...)
			for row := 0; row < 1+rng.Intn(4); row++ {
				tup := make(relation.Tuple, len(attrs))
				for i := range tup {
					if rng.Intn(2) == 0 {
						tup[i] = relation.Null()
					} else {
						tup[i] = relation.NewInt(int64(rng.Intn(3)))
					}
				}
				r.Add(tup)
			}
			all := true
			for _, nc := range nulls {
				if !nc.Satisfied(r) {
					all = false
					break
				}
			}
			if all && !candidate.Satisfied(r) {
				t.Fatalf("unsound implication: %v implied by %v but violated by %v", candidate, nulls, r)
			}
		}
	}
}

func randSubset(rng *rand.Rand, attrs []string) []string {
	var out []string
	for _, a := range attrs {
		if rng.Intn(2) == 0 {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		out = append(out, attrs[rng.Intn(len(attrs))])
	}
	return out
}
