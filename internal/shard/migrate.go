package shard

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/state"
)

// bindSchema (re)derives every schema-dependent router structure — the
// per-relation positional metadata, the per-IND edge locks, and the
// precomputed edge plans — from s. Called at Open and again by Migrate /
// recovered-design adoption, always with no operation in flight (router
// construction, or gmu held exclusively).
func (r *Router) bindSchema(s *schema.Schema) {
	r.schema = s
	r.meta = make(map[string]*relMeta, len(s.Relations))
	for _, rs := range s.Relations {
		hdr := relation.New(rs.AttrNames()...)
		r.meta[rs.Name] = &relMeta{
			name:  rs.Name,
			hdr:   hdr,
			pkPos: hdr.Positions(rs.PrimaryKey),
			arity: hdr.Arity(),
		}
	}
	r.edges = make(map[string]*sync.RWMutex, len(s.INDs))
	r.insertMode = make(map[string]map[string]bool, len(s.Relations))
	r.removeMode = make(map[string]map[string]bool, len(s.Relations))
	r.updateMode = make(map[string]map[string]bool, len(s.Relations))
	r.insertPlan = make(map[string][]edgeReq, len(s.Relations))
	r.removePlan = make(map[string][]edgeReq, len(s.Relations))
	r.updatePlan = make(map[string][]edgeReq, len(s.Relations))
	r.buildEdgePlans()
}

// Migrate swaps every shard onto schema ns, carrying the partitioned state
// across through transform, which receives the UNION of the shards' contents
// (a merge's η mapping needs whole objects, and an object's parts may live on
// different shards pre-merge). The mapped state is re-validated against the
// new design's full constraint set — including the cross-shard inclusion
// dependencies no single shard can check — then re-partitioned by the new
// primary keys and installed shard by shard, each installation atomic in that
// shard's WAL (one schema-change record).
//
// The router serializes the whole migration against every operation (gmu
// exclusive), so readers keep answering on their pinned per-shard versions
// and no write straddles the designs. All validation runs before the first
// shard installs anything; after that point only a log-device failure can
// interrupt the rollout, which is reported and leaves the shards to converge
// on restart (each shard recovers the design its own log committed).
func (r *Router) Migrate(ns *schema.Schema, transform func(*state.DB) (*state.DB, error)) error {
	r.gmu.Lock()
	defer r.gmu.Unlock()
	if r.shards[0].InTxn() {
		return fmt.Errorf("%w: cannot migrate schema until it commits or rolls back", engine.ErrOpenTransaction)
	}
	union := r.Snapshot()
	mapped := union
	var err error
	if transform != nil {
		mapped, err = transform(union)
		if err != nil {
			return fmt.Errorf("shard: migrate: mapping state: %w", err)
		}
	}
	// The router sees the whole state, so unlike a single partition engine it
	// validates the complete constraint set, inclusion dependencies included.
	if err := state.Consistent(ns, mapped); err != nil {
		return fmt.Errorf("shard: migrate: mapped state fails constraint validation: %w", err)
	}

	slices, err := r.partitionState(ns, mapped)
	if err != nil {
		return fmt.Errorf("shard: migrate: %w", err)
	}
	for i, db := range r.shards {
		slice := slices[i]
		if err := db.MigrateSchema(ns, func(*state.DB) (*state.DB, error) { return slice, nil }); err != nil {
			if i == 0 {
				// Nothing installed anywhere: the old design stands.
				return fmt.Errorf("shard: migrate: %w", err)
			}
			return fmt.Errorf("shard: migrate: interrupted after %d/%d shards — shard designs diverge until the logs are recovered: %w", i, len(r.shards), err)
		}
	}
	r.bindSchema(ns)
	r.clearCaches()
	return nil
}

// partitionState splits st into per-shard slices by hashing each tuple's
// primary key under the NEW schema — the same placement rule every
// post-migration operation will use.
func (r *Router) partitionState(ns *schema.Schema, st *state.DB) ([]*state.DB, error) {
	slices := make([]*state.DB, len(r.shards))
	for i := range slices {
		slices[i] = state.New(ns)
	}
	for _, rs := range ns.Relations {
		src := st.Relation(rs.Name)
		if src == nil {
			continue
		}
		hdr := relation.New(rs.AttrNames()...)
		if !sameAttrs(src.Attrs(), hdr.Attrs()) {
			src = src.Project(hdr.Attrs())
		}
		pkPos := hdr.Positions(rs.PrimaryKey)
		for _, tup := range src.Tuples() {
			key := tup.Project(pkPos).EncodeKey()
			slices[r.ShardOf(key)].Relation(rs.Name).Add(tup.Clone())
		}
	}
	return slices, nil
}

// Schema returns the design the router currently serves.
func (r *Router) Schema() *schema.Schema { return r.schema }

// CoAccessStats aggregates the shard engines' per-IND-edge co-access
// counters by edge, hottest first — the router-level signal the online
// advisor consumes. Edge names are design-wide, so summing across shards is
// well-defined; a migration resets every shard's counters together.
func (r *Router) CoAccessStats() []engine.CoAccessStat {
	agg := make(map[[2]string]int64)
	for _, db := range r.shards {
		for _, e := range db.CoAccessStats() {
			agg[[2]string{e.Left, e.Right}] += e.Hits
		}
	}
	out := make([]engine.CoAccessStat, 0, len(agg))
	for edge, hits := range agg {
		out = append(out, engine.CoAccessStat{Left: edge[0], Right: edge[1], Hits: hits})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		if out[i].Left != out[j].Left {
			return out[i].Left < out[j].Left
		}
		return out[i].Right < out[j].Right
	})
	return out
}
