package shard

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/figures"
	"repro/internal/relation"
	"repro/internal/sdl"
	"repro/internal/state"
	"repro/internal/wal"
)

func mtup(vals ...any) relation.Tuple {
	out := make(relation.Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case nil:
			out[i] = relation.Null()
		case string:
			out[i] = relation.NewString(x)
		default:
			panic("unsupported")
		}
	}
	return out
}

func fig3RouterMerge(t *testing.T) *core.MergedScheme {
	t.Helper()
	m, err := core.MergeWith(figures.Fig3(), []string{"OFFER", "TEACH", "ASSIST"}, "OFFER+", core.Options{KeyRelation: "OFFER"})
	if err != nil {
		t.Fatalf("MergeWith: %v", err)
	}
	m.RemoveAll()
	return m
}

func TestRouterMigrateLive(t *testing.T) {
	r, err := Open(figures.Fig3(), Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	pre := r.Snapshot()
	m := fig3RouterMerge(t)
	if err := r.Migrate(m.Schema, func(st *state.DB) (*state.DB, error) { return m.MapState(st), nil }); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	want := m.MapState(pre)
	if got := r.Snapshot(); !got.Equal(want) {
		t.Fatalf("post-migration union state:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if got := sdl.PrintSchema(r.Schema()); got != sdl.PrintSchema(m.Schema) {
		t.Fatalf("router schema did not move:\n%s", got)
	}
	// Merged relation answers through the router's hash placement.
	if _, ok := r.GetByKey("OFFER+", mtup("c1")); !ok {
		t.Fatal("merged relation does not answer")
	}
	if _, ok := r.GetByKey("TEACH", mtup("c1")); ok {
		t.Fatal("pre-merge relation still answers")
	}
	// Writes enforce the new design's cross-shard dependencies: c9 is not a
	// COURSE anywhere.
	if err := r.Insert("OFFER+", mtup("c3", "math", "s1", nil)); err != nil {
		t.Fatalf("insert on merged design: %v", err)
	}
	if err := r.Insert("OFFER+", mtup("c9", "math", nil, nil)); err == nil {
		t.Fatal("dangling OFFER+ insert must violate the rewritten cross-shard IND")
	}
	// Refusals: open transaction, and a transform whose output breaks the
	// new design's constraints.
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := r.Migrate(figures.Fig3(), nil); !errors.Is(err, engine.ErrOpenTransaction) {
		t.Fatalf("migrate inside txn = %v", err)
	}
	if err := r.Rollback(); err != nil {
		t.Fatal(err)
	}
	// A failing transform leaves state and design untouched.
	boom := func(*state.DB) (*state.DB, error) { return nil, fmt.Errorf("boom") }
	before := r.Snapshot()
	if err := r.Migrate(figures.Fig3(), boom); err == nil {
		t.Fatal("transform error must fail migration")
	}
	if got := r.Snapshot(); !got.Equal(before) {
		t.Fatal("failed migration changed state")
	}
	// A transform whose output violates the target design's constraints is
	// refused before any shard installs: inject a dangling OFFER+ row (c9 is
	// not a COURSE anywhere).
	bad := func(st *state.DB) (*state.DB, error) {
		out := st.Clone()
		out.Relation("OFFER+").Add(mtup("c9", "math", nil, nil))
		return out, nil
	}
	if err := r.Migrate(m.Schema, bad); err == nil {
		t.Fatal("constraint-violating mapped state must fail validation")
	}
	if got := sdl.PrintSchema(r.Schema()); got != sdl.PrintSchema(m.Schema) {
		t.Fatal("failed migration changed the design")
	}
}

func TestRouterMigrateDurableAdoption(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 3, WALDir: dir, WALOpts: wal.Options{Policy: wal.SyncAlways}}
	r, err := Open(figures.Fig3(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	m := fig3RouterMerge(t)
	if err := r.Migrate(m.Schema, func(st *state.DB) (*state.DB, error) { return m.MapState(st), nil }); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	want := r.Snapshot()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the ORIGINAL schema: every shard's log replays its
	// schema-change record, and the router must adopt the uniformly
	// recovered merged design.
	r2, err := Open(figures.Fig3(), cfg)
	if err != nil {
		t.Fatalf("reopen after migration: %v", err)
	}
	defer r2.Close()
	if got := sdl.PrintSchema(r2.Schema()); got != sdl.PrintSchema(m.Schema) {
		t.Fatalf("router did not adopt the recovered design:\n%s", got)
	}
	if got := r2.Snapshot(); !got.Equal(want) {
		t.Fatalf("recovered union state:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if _, ok := r2.GetByKey("OFFER+", mtup("c1")); !ok {
		t.Fatal("adopted design does not serve")
	}
	// Post-adoption writes validate against the adopted design.
	if err := r2.Insert("OFFER+", mtup("c9", "math", nil, nil)); err == nil {
		t.Fatal("dangling insert accepted after adoption")
	}
}

func TestRouterMixedRecoveredDesignsRefused(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 2, WALDir: dir, WALOpts: wal.Options{Policy: wal.SyncAlways}}
	r, err := Open(figures.Fig3(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	// Simulate a migration interrupted mid-rollout: migrate ONE shard's
	// engine directly, bypassing the router.
	m := fig3RouterMerge(t)
	slice := state.New(m.Schema)
	if err := r.Shard(0).MigrateSchema(m.Schema, func(*state.DB) (*state.DB, error) { return slice, nil }); err != nil {
		t.Fatalf("direct shard migration: %v", err)
	}
	r.Close()

	if _, err := Open(figures.Fig3(), cfg); !errors.Is(err, engine.ErrRecovery) {
		t.Fatalf("mixed recovered designs = %v, want ErrRecovery", err)
	}
}

func TestRouterCoAccessAggregation(t *testing.T) {
	r, err := Open(figures.Fig3(), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Load(figures.Fig3State()); err != nil {
		t.Fatal(err)
	}
	// Drive each shard's fetch path directly so hop signals land on both.
	for i := 0; i < r.Shards(); i++ {
		for j := 0; j < 4; j++ {
			r.Shard(i).FetchWithReferences("TEACH", mtup("c1"))
			r.Shard(i).FetchWithReferences("TEACH", mtup("c2"))
		}
	}
	stats := r.CoAccessStats()
	var hop int64
	for _, e := range stats {
		if e.Left == "TEACH" && e.Right == "OFFER" {
			hop = e.Hits
		}
	}
	if hop == 0 {
		t.Fatalf("no aggregated TEACH->OFFER heat: %+v", stats)
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].Hits > stats[i-1].Hits {
			t.Fatal("aggregated stats not sorted hottest-first")
		}
	}
}
