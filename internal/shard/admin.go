package shard

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/state"
)

// Begin opens the global transaction on every shard, in lockstep: shard i's
// Begin failing rolls the transaction back on shards 0..i-1, so the router
// is never half in a transaction. All transaction control serializes against
// every other router operation (router lock exclusive) — the engine's single
// global transaction is a coarse instrument and keeps that character here.
func (r *Router) Begin() error {
	r.gmu.Lock()
	defer r.gmu.Unlock()
	for i, db := range r.shards {
		if err := db.Begin(); err != nil {
			for j := i - 1; j >= 0; j-- {
				r.shards[j].Rollback()
			}
			return err
		}
	}
	return nil
}

// Commit commits the transaction on every shard. The first error is
// returned; like the engine's Commit, a failed commit marker leaves that
// shard's transaction open for the caller to Rollback.
func (r *Router) Commit() error {
	r.gmu.Lock()
	defer r.gmu.Unlock()
	var first error
	for _, db := range r.shards {
		if err := db.Commit(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Rollback reverses the transaction on every shard and clears every probe
// cache: positives seeded by rolled-back inserts have no per-key
// invalidation point, so the caches restart cold.
func (r *Router) Rollback() error {
	r.gmu.Lock()
	defer r.gmu.Unlock()
	var first error
	for _, db := range r.shards {
		if err := db.Rollback(); err != nil && first == nil {
			first = err
		}
	}
	r.clearCaches()
	return first
}

// InTxn reports whether the global transaction is open (on shard 0; Begin's
// lockstep keeps all shards in agreement).
func (r *Router) InTxn() bool { return r.shards[0].InTxn() }

// StatsTotals aggregates the shard engines' monotonic counters: counts sum;
// the LSN stamp is the maximum across shards (each shard's version chain
// advances independently, so the router's "version" is the envelope).
func (r *Router) StatsTotals() engine.StatsSnapshot {
	var out engine.StatsSnapshot
	for _, db := range r.shards {
		st := db.StatsTotals()
		out.Inserts += st.Inserts
		out.Deletes += st.Deletes
		out.Updates += st.Updates
		out.Lookups += st.Lookups
		out.DeclarativeChecks += st.DeclarativeChecks
		out.TriggerFirings += st.TriggerFirings
		out.IndexLookups += st.IndexLookups
		out.TuplesScanned += st.TuplesScanned
		if st.VersionLSN > out.VersionLSN {
			out.VersionLSN = st.VersionLSN
		}
	}
	return out
}

// Checkpoint snapshots every shard's state into its own log, serialized
// against all writes so the per-shard checkpoints capture one cross-shard
// consistent cut. A non-durable router returns the engine's ErrNotDurable
// (from shard 0) untouched.
func (r *Router) Checkpoint() error {
	r.gmu.Lock()
	defer r.gmu.Unlock()
	for _, db := range r.shards {
		if err := db.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every shard engine, returning the first error.
func (r *Router) Close() error {
	var first error
	for _, db := range r.shards {
		if err := db.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// View pins every shard's current published version as one read view. The
// per-shard pins are taken without serializing against writers, so the view
// is per-shard consistent (each shard's half is an MVCC snapshot) but not a
// single cross-shard cut unless taken while writes are quiesced.
type View struct {
	r     *Router
	views []*engine.View
}

// View pins the shards' current versions.
func (r *Router) View() *View {
	v := &View{r: r, views: make([]*engine.View, len(r.shards))}
	for i, db := range r.shards {
		v.views[i] = db.View()
	}
	return v
}

// LSN returns the maximum LSN stamp across the pinned shard versions.
func (v *View) LSN() uint64 {
	var max uint64
	for _, sv := range v.views {
		if l := sv.LSN(); l > max {
			max = l
		}
	}
	return max
}

// Count sums the relation's tuple count across the pinned versions.
func (v *View) Count(name string) int {
	n := 0
	for _, sv := range v.views {
		n += sv.Count(name)
	}
	return n
}

// GetByKey looks the key up in the owning shard's pinned version.
func (v *View) GetByKey(name string, key relation.Tuple) (relation.Tuple, bool) {
	if v.r.meta[name] == nil {
		return v.views[0].GetByKey(name, key)
	}
	return v.views[v.r.ShardOf(key.EncodeKey())].GetByKey(name, key)
}

// Scan visits the relation's tuples across all pinned versions.
func (v *View) Scan(name string, pred func(relation.Tuple) bool, visit func(relation.Tuple)) error {
	for _, sv := range v.views {
		if err := sv.Scan(name, pred, visit); err != nil {
			return err
		}
	}
	return nil
}

// Load bulk-inserts a consistent state across the shards. See LoadCtx.
func (r *Router) Load(st *state.DB) error {
	return r.LoadCtx(context.Background(), st)
}

// LoadCtx mirrors the engine's bulk load one level up: relations load in an
// order that respects inclusion dependencies, each as one atomic (possibly
// cross-shard) insert group, with the engine's error surface.
func (r *Router) LoadCtx(ctx context.Context, st *state.DB) error {
	order, err := r.loadOrder()
	if err != nil {
		return err
	}
	for _, name := range order {
		if err := ctx.Err(); err != nil {
			return err
		}
		rel := st.Relation(name)
		if rel == nil {
			continue
		}
		src := rel
		if !sameAttrs(src.Attrs(), r.meta[name].hdr.Attrs()) {
			src = src.Project(r.meta[name].hdr.Attrs())
		}
		if err := r.InsertBatchCtx(ctx, name, src.Tuples()); err != nil {
			return fmt.Errorf("engine: loading %s: %w", name, err)
		}
	}
	return nil
}

// Snapshot exports the union of the shards' contents as one state.DB. Each
// shard contributes its pinned version; see View for the consistency grain.
func (r *Router) Snapshot() *state.DB {
	out := &state.DB{Relations: make(map[string]*relation.Relation)}
	for _, m := range r.meta {
		rel := relation.New(m.hdr.Attrs()...)
		out.Set(m.name, rel)
	}
	v := r.View()
	for _, m := range r.meta {
		rel := out.Relation(m.name)
		v.Scan(m.name, nil, func(tup relation.Tuple) {
			rel.Add(tup.Clone())
		})
	}
	return out
}

// loadOrder topologically orders relations so referenced relations load
// before referencing ones (cycles rejected), mirroring the engine's.
func (r *Router) loadOrder() ([]string, error) {
	deg := make(map[string]int, len(r.schema.Relations))
	succ := make(map[string][]string)
	for _, rs := range r.schema.Relations {
		deg[rs.Name] = 0
	}
	for _, ind := range r.schema.INDs {
		if ind.Left == ind.Right {
			continue
		}
		succ[ind.Right] = append(succ[ind.Right], ind.Left)
		deg[ind.Left]++
	}
	var queue, order []string
	for _, rs := range r.schema.Relations {
		if deg[rs.Name] == 0 {
			queue = append(queue, rs.Name)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, s := range succ[n] {
			if deg[s]--; deg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(r.schema.Relations) {
		return nil, fmt.Errorf("engine: cyclic inclusion dependencies; cannot bulk-load")
	}
	return order, nil
}

func sameAttrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
