package shard

import "sync"

// probeCache is one shard's read-through cache of remote referenced keys:
// "relation R on its owning shard has a row with primary key K". Only
// positive answers are cached — a positive can be invalidated precisely
// (the delete or update that falsifies it runs through the router, which
// drops the entry before releasing the edge lock that ordered it against
// concurrent probes), whereas a cached negative could be falsified by an
// insert on the owning shard with no natural invalidation point on the
// probing one.
//
// Eviction is random-victim (Go map iteration order) at a fixed capacity:
// the cache is a correctness-neutral accelerator, so recency bookkeeping is
// not worth its contention.
type probeCache struct {
	mu  sync.Mutex
	max int
	m   map[string]struct{}
}

func newProbeCache(max int) *probeCache {
	if max < 0 {
		max = 0
	}
	return &probeCache{max: max, m: make(map[string]struct{})}
}

func cacheKey(rel, encodedKey string) string {
	return rel + "\x00" + encodedKey
}

func (c *probeCache) has(k string) bool {
	if c.max == 0 {
		return false
	}
	c.mu.Lock()
	_, ok := c.m[k]
	c.mu.Unlock()
	return ok
}

func (c *probeCache) put(k string) {
	if c.max == 0 {
		return
	}
	c.mu.Lock()
	if len(c.m) >= c.max {
		for victim := range c.m {
			delete(c.m, victim)
			break
		}
	}
	c.m[k] = struct{}{}
	c.mu.Unlock()
}

func (c *probeCache) drop(k string) {
	if c.max == 0 {
		return
	}
	c.mu.Lock()
	delete(c.m, k)
	c.mu.Unlock()
}

func (c *probeCache) clear() {
	if c.max == 0 {
		return
	}
	c.mu.Lock()
	c.m = make(map[string]struct{})
	c.mu.Unlock()
}

// invalidate drops the key from every shard's cache. Called with the
// falsifying operation's edge locks still held, so a probe that raced the
// invalidation either cached before (dropped here) or probes after (sees
// the new truth on the owning shard).
func (r *Router) invalidate(rel, encodedKey string) {
	k := cacheKey(rel, encodedKey)
	for _, c := range r.caches {
		c.drop(k)
	}
}

// clearCaches empties every shard's probe cache (transaction rollback: a
// rolled-back insert may have seeded positives that the rollback silently
// falsifies).
func (r *Router) clearCaches() {
	for _, c := range r.caches {
		c.clear()
	}
}
