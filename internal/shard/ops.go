package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/relation"
)

// Insert routes one insert to the owning shard. See InsertCtx.
func (r *Router) Insert(name string, tup relation.Tuple) error {
	return r.InsertCtx(context.Background(), name, tup)
}

// InsertCtx hashes the tuple's primary key to its owning shard and inserts
// there under the router lock (shared — independent single-shard writes run
// concurrently) and the relation's outgoing edge locks (shared — the
// cross-shard foreign-key probes this insert may issue must not interleave
// with a referenced-side delete).
func (r *Router) InsertCtx(ctx context.Context, name string, tup relation.Tuple) error {
	r.m.routedOps.Inc()
	m := r.meta[name]
	r.gmu.RLock()
	defer r.gmu.RUnlock()
	if m == nil || len(tup) != m.arity {
		// Unknown relation or arity mismatch: no routing key exists. Any
		// shard rejects with the engine's own error.
		return r.shards[0].InsertCtx(ctx, name, tup)
	}
	unlock := lockEdges(r.insertPlan[name])
	defer unlock()
	return r.shards[r.ShardOf(m.pkOf(tup))].InsertCtx(ctx, name, tup)
}

// Delete routes one delete to the owning shard. See DeleteCtx.
func (r *Router) Delete(name string, key relation.Tuple) error {
	return r.DeleteCtx(context.Background(), name, key)
}

// DeleteCtx routes by the primary key, holding the relation's incoming edge
// locks exclusively: a sibling shard's foreign-key probe for this key either
// completes (and caches) before the delete starts, or probes after it — and
// the cache entry is dropped before the edges release, so no probe can
// observe the deleted row through a stale cache.
func (r *Router) DeleteCtx(ctx context.Context, name string, key relation.Tuple) error {
	r.m.routedOps.Inc()
	r.gmu.RLock()
	defer r.gmu.RUnlock()
	if r.meta[name] == nil {
		return r.shards[0].DeleteCtx(ctx, name, key)
	}
	unlock := lockEdges(r.removePlan[name])
	defer unlock()
	ek := key.EncodeKey()
	err := r.shards[r.ShardOf(ek)].DeleteCtx(ctx, name, key)
	if err == nil {
		r.m.invalidations.Inc()
		r.invalidate(name, ek)
	}
	return err
}

// Update routes one update. See UpdateCtx.
func (r *Router) Update(name string, key, newTup relation.Tuple) error {
	return r.UpdateCtx(context.Background(), name, key, newTup)
}

// UpdateCtx routes by the OLD primary key. When the new tuple's key hashes
// to the same shard the engine's update runs there directly; when it hashes
// elsewhere the update migrates the row — a serialized two-shard
// delete+insert that validates through the pending overlay so its
// constraint outcomes match the engine's one-shard update semantics (see
// crossUpdate).
func (r *Router) UpdateCtx(ctx context.Context, name string, key, newTup relation.Tuple) error {
	r.m.routedOps.Inc()
	m := r.meta[name]
	if m == nil || len(newTup) != m.arity {
		r.gmu.RLock()
		defer r.gmu.RUnlock()
		return r.shards[0].UpdateCtx(ctx, name, key, newTup)
	}
	oldEk := key.EncodeKey()
	newEk := m.pkOf(newTup)
	src, dst := r.ShardOf(oldEk), r.ShardOf(newEk)
	if src == dst {
		r.gmu.RLock()
		defer r.gmu.RUnlock()
		unlock := lockEdges(r.updatePlan[name])
		defer unlock()
		err := r.shards[src].UpdateCtx(ctx, name, key, newTup)
		if err == nil && oldEk != newEk {
			r.m.invalidations.Inc()
			r.invalidate(name, oldEk)
		}
		return err
	}
	return r.crossUpdate(ctx, name, key, newTup, oldEk, newEk, src, dst)
}

// crossUpdate migrates a row whose updated primary key hashes to a
// different shard: delete on the source shard, insert on the destination,
// serialized against all other writes (router lock exclusive) and validated
// through the pending overlay so each half sees the other. Prevalidation on
// both shards precedes any mutation; after it, only log-device failures can
// interrupt, and a failure after the insert is compensated by deleting the
// migrated row again.
func (r *Router) crossUpdate(ctx context.Context, name string, key, newTup relation.Tuple, oldEk, newEk string, src, dst int) error {
	r.gmu.Lock()
	defer r.gmu.Unlock()
	_, ok, err := r.shards[src].GetByKeyCtx(ctx, name, key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: no %s tuple with key %v", engine.ErrNoSuchTuple, name, key)
	}
	r.pending = newOverlay()
	r.pending.addDel(name, oldEk)
	r.pending.addIns(name, newEk, newTup)
	defer func() { r.pending = nil }()
	if err := r.shards[dst].PrevalidateBatchCtx(ctx, []engine.BatchOp{engine.Ins(name, newTup)}); err != nil {
		return updateParity(err)
	}
	if err := r.shards[src].PrevalidateBatchCtx(ctx, []engine.BatchOp{engine.Del(name, key)}); err != nil {
		return updateParity(err)
	}
	if err := r.shards[dst].InsertCtx(ctx, name, newTup); err != nil {
		return err
	}
	if err := r.shards[src].DeleteCtx(ctx, name, key); err != nil {
		// The insert landed but the delete's log refused: undo the insert so
		// the row is not duplicated across shards.
		r.m.compensations.Inc()
		if cerr := r.shards[dst].DeleteCtx(context.Background(), name, m2key(r.meta[name], newTup)); cerr != nil {
			return fmt.Errorf("shard: update compensation failed (%v) after: %w", cerr, err)
		}
		return err
	}
	r.m.invalidations.Inc()
	r.invalidate(name, oldEk)
	return nil
}

// m2key extracts a tuple's primary key as a key tuple (pk attribute order).
func m2key(m *relMeta, tup relation.Tuple) relation.Tuple {
	return tup.Project(m.pkPos)
}

// updateParity maps a single-op prevalidation error back to the engine's
// update error surface: the batch wrapper is stripped, and a restrict
// violation raised by the delete half reports Op "update", exactly as the
// engine's one-shard updateLocked would.
func updateParity(err error) error {
	var cv *engine.ConstraintViolation
	if errors.As(err, &cv) {
		c := *cv
		if c.Op == "delete" {
			c.Op = "update"
		}
		return &c
	}
	if strings.HasPrefix(err.Error(), "engine: batch op ") {
		if inner := errors.Unwrap(err); inner != nil {
			return inner
		}
	}
	return err
}

// GetByKey looks up one tuple by primary key on its owning shard. See
// GetByKeyCtx.
func (r *Router) GetByKey(name string, key relation.Tuple) (relation.Tuple, bool) {
	tup, ok, err := r.GetByKeyCtx(context.Background(), name, key)
	if err != nil {
		return nil, false
	}
	return tup, ok
}

// GetByKeyCtx routes the lookup to the key's owning shard. Like the
// engine's, the read is lock-free — it pins the owner's current published
// version and takes no router lock.
func (r *Router) GetByKeyCtx(ctx context.Context, name string, key relation.Tuple) (relation.Tuple, bool, error) {
	if r.meta[name] == nil {
		return r.shards[0].GetByKeyCtx(ctx, name, key)
	}
	return r.shards[r.ShardOf(key.EncodeKey())].GetByKeyCtx(ctx, name, key)
}

// Scan visits every tuple of the relation across all shards. Each shard's
// scan pins that shard's current version: the scan is per-shard consistent
// but not a single cross-shard snapshot (a concurrent single-shard write may
// be visible on one shard and not another). Iteration order is unspecified.
func (r *Router) Scan(name string, pred func(relation.Tuple) bool, visit func(relation.Tuple)) error {
	for _, db := range r.shards {
		if err := db.Scan(name, pred, visit); err != nil {
			return err
		}
	}
	return nil
}
