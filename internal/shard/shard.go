// Package shard implements horizontal partitioning for the engine: a Router
// fronts N independent engine instances — each with its own lock manager,
// MVCC version chain, and WAL directory — and partitions tuples by a
// deterministic hash of their primary key. The Router exposes the same
// operational surface as a single engine (it satisfies the relmerge.Session
// method set through the pkg/relmerge wrapper), so clients, workload
// drivers, and conformance tests run unchanged.
//
// The interesting problem is the paper's own: key-based inclusion
// dependencies whose two sides land on different shards. A shard engine
// validates what it can locally and defers cross-partition existence
// questions to probe hooks (engine.ShardProbes) baked per shard at Open:
//
//   - a foreign-key probe that misses the local partition asks the key's
//     owning shard (two-step probe: hash the referenced key, Fetch on the
//     owner's published version), through a per-shard read-through cache of
//     referenced keys that delete/update invalidate;
//   - a restrict probe that finds no local referencing tuple asks every
//     other shard's referencing index.
//
// Concurrency control above the shards is two-level. A router-wide RWMutex
// (gmu) admits single-shard writes shared and serializes cross-shard
// batches, transaction control, and checkpoints exclusively. Per-IND "edge"
// RWMutexes mirror the engine's lock plans across shards: an insert into the
// referencing side holds the edge shared while its probe and publish happen;
// a delete on the referenced side holds it exclusively — so a cross-shard
// foreign-key check and the delete that would falsify it cannot interleave.
// Relations untouched by any dependency take no router locks at all, which
// is what lets independent shard-local writes scale with the shard count.
//
// Cross-shard batches are all-or-nothing: the batch splits into per-shard
// sub-batches, every involved shard prevalidates its sub-batch against a
// router-held pending overlay (so in-batch inserts and deletes on other
// shards are visible to the checks), and only then do the shards apply. A
// batch therefore validates set-wise across shards: the relative order of
// ops that land on different shards does not affect its outcome. After
// prevalidation only log-device failures can interrupt the applies; an
// interrupted apply is compensated with inverse operations so no partial
// batch survives.
package shard

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/sdl"
	"repro/internal/wal"
)

// Config configures Open. The zero value of every field is usable; only
// Shards must be positive.
type Config struct {
	// Shards is the partition count (required, ≥ 1).
	Shards int
	// Registry receives the router's and every shard engine's metric series;
	// nil allocates a private one.
	Registry *obs.Registry
	// Name is the metric label of the router (router=<name>) and the prefix
	// of the per-shard engine labels (db=<name><i>). Default "shard".
	Name string
	// WALDir, when set, makes every shard durable under its own
	// subdirectory <WALDir>/shard-<i>. Recovery is per shard; the router
	// re-validates cross-shard inclusion dependencies after all shards have
	// recovered.
	WALDir string
	// WALOpts tunes the per-shard logs (fsync policy, segment size,
	// failpoints). Ignored unless WALDir is set.
	WALOpts wal.Options
	// EngineOptions are appended to every shard engine's Open options,
	// before the router's own (partitioning, registry, name, durability), so
	// the router's settings win on conflict.
	EngineOptions []engine.Option
	// CacheSize bounds each shard's read-through cache of remote referenced
	// keys (entries). Default 4096; negative disables the cache.
	CacheSize int
	// AccessDelay simulates one storage access per operation on every shard
	// engine (see engine.WithAccessDelay).
	AccessDelay time.Duration
}

// relMeta is the router's per-relation positional metadata: enough to
// compute a tuple's encoded primary key (the partitioning input) without
// asking any shard.
type relMeta struct {
	name  string
	hdr   *relation.Relation
	pkPos []int
	arity int
}

func (m *relMeta) pkOf(tup relation.Tuple) string {
	return tup.Project(m.pkPos).EncodeKey()
}

// edgeReq is one per-IND router lock request of a precomputed plan.
type edgeReq struct {
	mu    *sync.RWMutex
	write bool
}

// Router fronts the shard engines behind a single Session-shaped API.
type Router struct {
	schema *schema.Schema
	shards []*engine.DB
	meta   map[string]*relMeta

	// gmu: single-shard writes hold it shared; cross-shard batches,
	// transaction control, and checkpoints hold it exclusively. Reads take
	// nothing.
	gmu sync.RWMutex
	// Per-IND edge locks and the per-relation plans over them, sorted by the
	// dependency's canonical key so concurrent plans cannot deadlock. The
	// mode maps (edge key -> write) back the plans and let batches union
	// per-op plans write-wins.
	edges      map[string]*sync.RWMutex
	insertMode map[string]map[string]bool // outgoing edges, shared
	removeMode map[string]map[string]bool // incoming edges, exclusive
	updateMode map[string]map[string]bool // union, write-wins
	insertPlan map[string][]edgeReq
	removePlan map[string][]edgeReq
	updatePlan map[string][]edgeReq

	// pending is the active cross-shard batch's overlay. Written only while
	// gmu is held exclusively; probe hooks read it either on the goroutine
	// holding gmu (cross-shard prevalidate/apply) or under gmu shared, when
	// it is always nil.
	pending *overlay

	caches  []*probeCache // per calling shard
	m       *routerMetrics
	durable bool
	rec     RecoveryInfo
}

// RecoveryInfo aggregates what the shard engines reconstructed from their
// write-ahead logs.
type RecoveryInfo struct {
	// Recovered reports whether any shard's log held anything to restore.
	Recovered bool
	// ReplayedOps sums logged mutations applied during replay across shards.
	ReplayedOps int
}

// Open builds a router over cfg.Shards fresh engine instances of the schema.
// Each engine is opened in partition mode with the router's cross-shard
// probe hooks; if WALDir is set each shard recovers from (and logs to) its
// own subdirectory, and the router re-validates every inclusion dependency
// across the recovered shards before returning.
func Open(s *schema.Schema, cfg Config) (*Router, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: config requires Shards >= 1 (got %d)", cfg.Shards)
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Name == "" {
		cfg.Name = "shard"
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 4096
	}
	r := &Router{
		shards:  make([]*engine.DB, cfg.Shards),
		caches:  make([]*probeCache, cfg.Shards),
		m:       newRouterMetrics(cfg.Registry, cfg.Name),
		durable: cfg.WALDir != "",
	}
	r.bindSchema(s)
	for i := range r.caches {
		r.caches[i] = newProbeCache(cfg.CacheSize)
	}
	for i := range r.shards {
		opts := append([]engine.Option{}, cfg.EngineOptions...)
		opts = append(opts,
			engine.WithPartition(),
			engine.WithRegistry(cfg.Registry),
			engine.WithName(fmt.Sprintf("%s%d", cfg.Name, i)),
		)
		if cfg.AccessDelay > 0 {
			opts = append(opts, engine.WithAccessDelay(cfg.AccessDelay))
		}
		if cfg.WALDir != "" {
			opts = append(opts, engine.WithWALOptions(filepath.Join(cfg.WALDir, fmt.Sprintf("shard-%d", i)), cfg.WALOpts))
		}
		db, err := engine.Open(s, opts...)
		if err != nil {
			for j := 0; j < i; j++ {
				r.shards[j].Close()
			}
			return nil, fmt.Errorf("shard: opening shard %d/%d: %w", i+1, cfg.Shards, err)
		}
		r.shards[i] = db
		info := db.Recovered()
		r.rec.Recovered = r.rec.Recovered || info.Recovered
		r.rec.ReplayedOps += info.ReplayedOps
	}
	// Install the cross-partition hooks only now: during each shard's
	// recovery the hooks must be absent (sibling shards may not exist yet),
	// which is exactly the engine's bootstrap pass-through window.
	for i, db := range r.shards {
		self := i
		db.SetShardProbes(engine.ShardProbes{
			Referenced: func(ind schema.IND, key string) (bool, error) {
				return r.probeReferenced(self, ind, key), nil
			},
			Referencing: func(ind schema.IND, refKey string) (bool, error) {
				return r.probeReferencing(self, ind, refKey), nil
			},
		})
	}
	if r.rec.Recovered {
		// A live migration logs one schema-change record per shard, so a
		// recovered shard may come back on a LATER design than the one Open
		// was given. Adopt it — uniformly: a mix (a crash between per-shard
		// installs) is refused rather than served half-merged.
		first := sdl.PrintSchema(r.shards[0].Schema)
		for i, db := range r.shards[1:] {
			if got := sdl.PrintSchema(db.Schema); got != first {
				for _, db := range r.shards {
					db.Close()
				}
				return nil, fmt.Errorf("%w: shards recovered mixed designs (shard 0 and shard %d disagree); a migration was interrupted mid-rollout", engine.ErrRecovery, i+1)
			}
		}
		if first != sdl.PrintSchema(s) {
			r.bindSchema(r.shards[0].Schema)
		}
		if err := r.validateINDs(); err != nil {
			for _, db := range r.shards {
				db.Close()
			}
			return nil, err
		}
	}
	return r, nil
}

// buildEdgePlans allocates one RWMutex per inclusion dependency and
// precomputes each relation's router-level lock plan over them, mirroring
// the engine's per-table plans one level up: insert holds its outgoing
// edges shared (the cross-shard FK probe must not race the referenced row's
// delete), delete holds its incoming edges exclusive, update the write-wins
// union. Plans are sorted by the dependency's canonical key, so two plans
// always request their common edges in the same order.
func (r *Router) buildEdgePlans() {
	for _, ind := range r.schema.INDs {
		if _, ok := r.edges[ind.Key()]; !ok {
			r.edges[ind.Key()] = &sync.RWMutex{}
		}
	}
	for _, rs := range r.schema.Relations {
		name := rs.Name
		ins := map[string]bool{} // edge key -> write
		rem := map[string]bool{}
		for _, ind := range r.schema.INDs {
			if ind.Left == name {
				if _, ok := ins[ind.Key()]; !ok {
					ins[ind.Key()] = false
				}
			}
			if ind.Right == name {
				rem[ind.Key()] = true
			}
		}
		upd := map[string]bool{}
		for k, w := range ins {
			upd[k] = upd[k] || w
		}
		for k, w := range rem {
			upd[k] = upd[k] || w
		}
		r.insertMode[name], r.removeMode[name], r.updateMode[name] = ins, rem, upd
		r.insertPlan[name] = r.planOf(ins)
		r.removePlan[name] = r.planOf(rem)
		r.updatePlan[name] = r.planOf(upd)
	}
}

func (r *Router) planOf(modes map[string]bool) []edgeReq {
	keys := make([]string, 0, len(modes))
	for k := range modes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	plan := make([]edgeReq, len(keys))
	for i, k := range keys {
		plan[i] = edgeReq{mu: r.edges[k], write: modes[k]}
	}
	return plan
}

// lockEdges acquires a precomputed edge plan and returns its release.
func lockEdges(plan []edgeReq) func() {
	for _, e := range plan {
		if e.write {
			e.mu.Lock()
		} else {
			e.mu.RLock()
		}
	}
	return func() {
		for i := len(plan) - 1; i >= 0; i-- {
			if plan[i].write {
				plan[i].mu.Unlock()
			} else {
				plan[i].mu.RUnlock()
			}
		}
	}
}

// batchEdges unions the edge plans of a batch's operations (write-wins,
// canonical order), for single-shard batches running under gmu shared.
func (r *Router) batchEdges(ops []engine.BatchOp) []edgeReq {
	modes := map[string]bool{}
	for _, op := range ops {
		var src map[string]bool
		switch op.Kind {
		case engine.BatchInsert:
			src = r.insertMode[op.Relation]
		case engine.BatchDelete:
			src = r.removeMode[op.Relation]
		case engine.BatchUpdate:
			src = r.updateMode[op.Relation]
		}
		for k, w := range src {
			modes[k] = modes[k] || w
		}
	}
	return r.planOf(modes)
}

// Shards returns the partition count.
func (r *Router) Shards() int { return len(r.shards) }

// Shard exposes one partition engine (read-only uses: views, recovery info,
// tests). Mutating a shard engine directly bypasses the router's
// cross-partition coordination.
func (r *Router) Shard(i int) *engine.DB { return r.shards[i] }

// Recovered aggregates the shard engines' recovery info.
func (r *Router) Recovered() RecoveryInfo { return r.rec }

// Durable reports whether the shards were opened with write-ahead logs.
func (r *Router) Durable() bool { return r.durable }

// ShardOf returns the partition owning the encoded primary key — exported so
// benchmarks and tests can place keys deliberately.
func (r *Router) ShardOf(encodedKey string) int {
	return int(HashKey(encodedKey) % uint64(len(r.shards)))
}

// validateINDs re-checks every inclusion dependency across the recovered
// shards: per-shard recovery can only validate shard-local invariants, so
// the cross-shard halves of the paper's constraint set are swept here, over
// the shards' published versions.
func (r *Router) validateINDs() error {
	for _, ind := range r.schema.INDs {
		m := r.meta[ind.Left]
		leftPos := m.hdr.Positions(ind.LeftAttrs)
		keyBased := ind.KeyBased(r.schema)
		for _, db := range r.shards {
			var dangling relation.Tuple
			err := db.Scan(ind.Left, nil, func(tup relation.Tuple) {
				if dangling != nil {
					return
				}
				fk := tup.Project(leftPos)
				if !fk.IsTotal() {
					return
				}
				if keyBased {
					key := orderAsRightKey(r.schema, ind, fk)
					if !r.shards[r.ShardOf(key)].HasKey(ind.Right, key) {
						dangling = tup
					}
					return
				}
				for _, peer := range r.shards {
					if peer.HasReferenced(ind, fk.EncodeKey()) {
						return
					}
				}
				dangling = tup
			})
			if err != nil {
				return err
			}
			if dangling != nil {
				return fmt.Errorf("%w: recovered shards violate %s (dangling %s tuple %v)",
					engine.ErrRecovery, ind, ind.Left, dangling)
			}
		}
	}
	return nil
}

// orderAsRightKey encodes a LeftAttrs projection in the referenced
// relation's primary-key attribute order (the shard-routing and pk-probe
// encoding), mirroring the engine's orderAsKey.
func orderAsRightKey(s *schema.Schema, ind schema.IND, fk relation.Tuple) string {
	rs := s.Scheme(ind.Right)
	ordered := make(relation.Tuple, len(rs.PrimaryKey))
	for i, ka := range rs.PrimaryKey {
		for j, ra := range ind.RightAttrs {
			if ra == ka {
				ordered[i] = fk[j]
			}
		}
	}
	return ordered.EncodeKey()
}
