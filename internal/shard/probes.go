package shard

import (
	"repro/internal/relation"
	"repro/internal/schema"
)

// overlay is the pending cross-shard batch, indexed for probe lookups: the
// net tuples the batch introduces and the primary keys it removes, per
// relation. While a cross-shard batch holds the router lock exclusively,
// every shard's prevalidation (and the subsequent applies) see the whole
// batch through this overlay, which is what makes the batch validate
// set-wise: an insert on shard A can satisfy a foreign key checked on shard
// B, and a delete on shard B is visible to shard A's restrict checks,
// regardless of where either op sits in the batch.
type overlay struct {
	ins map[string]map[string]relation.Tuple // relation -> encoded pk -> tuple
	del map[string]map[string]bool           // relation -> encoded pk -> removed
}

func newOverlay() *overlay {
	return &overlay{
		ins: make(map[string]map[string]relation.Tuple),
		del: make(map[string]map[string]bool),
	}
}

func (o *overlay) addIns(rel, pk string, tup relation.Tuple) {
	m := o.ins[rel]
	if m == nil {
		m = make(map[string]relation.Tuple)
		o.ins[rel] = m
	}
	m[pk] = tup
}

func (o *overlay) addDel(rel, pk string) {
	m := o.del[rel]
	if m == nil {
		m = make(map[string]bool)
		o.del[rel] = m
	}
	m[pk] = true
}

// probeReferenced answers a shard engine's cross-partition foreign-key
// question: does the referenced relation hold a row with this key? For
// key-based dependencies key is the referenced relation's encoded primary
// key (in pk attribute order), so ownership is decidable and the answer
// comes from one two-step probe of the owning shard, through the calling
// shard's read-through cache. For non-key dependencies the referenced value
// is not a routing key, so every sibling shard's secondary index is asked.
//
// The calling shard's own state is never consulted here: the engine probes
// only after missing in its local staged view, which is authoritative for
// rows the shard owns — answering from the shard's published version would
// resurrect rows a staged sub-batch already deleted.
func (r *Router) probeReferenced(self int, ind schema.IND, key string) bool {
	if !ind.KeyBased(r.schema) {
		// Value-based: ask each sibling's referenced-side index directly.
		// The pending overlay is keyed by primary key, not by referenced
		// value, so it cannot answer here; cross-shard batches are therefore
		// conservative for value-based dependencies (see DESIGN.md).
		for i, db := range r.shards {
			if i == self {
				continue
			}
			r.m.remoteProbes.Inc()
			if db.HasReferenced(ind, key) {
				return true
			}
		}
		return false
	}
	if p := r.pending; p != nil {
		if _, ok := p.ins[ind.Right][key]; ok {
			r.m.overlayHits.Inc()
			return true
		}
		if p.del[ind.Right][key] {
			r.m.overlayHits.Inc()
			return false
		}
	}
	owner := r.ShardOf(key)
	if owner == self {
		// The local staged view already missed, and it is the truth for
		// keys this shard owns.
		return false
	}
	ck := cacheKey(ind.Right, key)
	if r.caches[self].has(ck) {
		r.m.cacheHits.Inc()
		return true
	}
	r.m.remoteProbes.Inc()
	if r.shards[owner].HasKey(ind.Right, key) {
		r.caches[self].put(ck)
		return true
	}
	return false
}

// probeReferencing answers the referenced side's restrict question: after
// this shard found no local referencing tuple, does one exist elsewhere?
// refKey is the encoded projection of the disappearing row onto the
// dependency's referenced attributes.
//
// The pending overlay is consulted first, in two directions. If the batch
// re-introduces a referenced row carrying the same value, the value
// survives the batch and nothing dangles — this is what preserves the
// engine's "referenced attributes unchanged" update semantics when a
// key-moving update is decomposed into delete+insert across shards. If the
// batch inserts a referencing row with the value, the delete must restrict
// even though no shard has published that row yet.
func (r *Router) probeReferencing(self int, ind schema.IND, refKey string) bool {
	if p := r.pending; p != nil {
		rm := r.meta[ind.Right]
		rightPos := rm.hdr.Positions(ind.RightAttrs)
		for _, tup := range p.ins[ind.Right] {
			if len(tup) == rm.arity && tup.Project(rightPos).EncodeKey() == refKey {
				r.m.overlayHits.Inc()
				return false
			}
		}
		lm := r.meta[ind.Left]
		leftPos := lm.hdr.Positions(ind.LeftAttrs)
		for _, tup := range p.ins[ind.Left] {
			if len(tup) != lm.arity {
				continue
			}
			proj := tup.Project(leftPos)
			if proj.IsTotal() && proj.EncodeKey() == refKey {
				r.m.overlayHits.Inc()
				return true
			}
		}
	}
	for i, db := range r.shards {
		if i == self {
			continue
		}
		r.m.remoteProbes.Inc()
		keys := db.ReferencingKeys(ind, refKey)
		if r.pending == nil {
			if len(keys) > 0 {
				return true
			}
			continue
		}
		for _, k := range keys {
			if !r.pending.del[ind.Left][k] {
				return true
			}
		}
	}
	return false
}
