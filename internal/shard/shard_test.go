package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/engine"
	"repro/internal/figures"
	"repro/internal/relation"
	"repro/internal/schema"
)

func tup(vals ...any) relation.Tuple {
	out := make(relation.Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case nil:
			out[i] = relation.Null()
		case string:
			out[i] = relation.NewString(x)
		default:
			panic("bad test value")
		}
	}
	return out
}

// TestHashKeyGolden pins the partitioning hash to fixed values: the same
// key MUST route to the same shard across process restarts, architectures,
// and Go releases, because durable deployments re-open per-shard logs by
// position. If this test fails, the hash changed — which is a
// data-migration event, not a refactor.
func TestHashKeyGolden(t *testing.T) {
	golden := []struct {
		in   string
		want uint64
	}{
		{"", 0xefd01f60ba992926},
		{"a", 0x82a2a958a9bece5b},
		{"42", 0x810b196a56ee3cec},
		{"alpha\x00beta", 0xa94f3d2e3d0dabd8},
		{"user:1001", 0xa4c6bfa8864faf62},
		{"D\x001\x002", 0xa64637ddd1083eb},
		{"k-9999", 0xdda504833ec13590},
		{"\xff\xfe", 0x75c9056eb1c4b960},
	}
	for _, g := range golden {
		if got := HashKey(g.in); got != g.want {
			t.Errorf("HashKey(%q) = %#x, want %#x", g.in, got, g.want)
		}
	}
	// The frozen constants are FNV-1a 64 under a murmur fmix64 finalizer:
	// cross-check the FNV core against the stdlib on this architecture too.
	fmix := func(h uint64) uint64 {
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		h *= 0xc4ceb9fe1a85ec53
		h ^= h >> 33
		return h
	}
	for i := 0; i < 256; i++ {
		s := fmt.Sprintf("key-%d", i)
		h := fnv.New64a()
		h.Write([]byte(s))
		if HashKey(s) != fmix(h.Sum64()) {
			t.Fatalf("HashKey(%q) diverges from finalized FNV-1a", s)
		}
	}
}

// TestHashKeyLowBitsMixed pins the property that motivated the finalizer:
// modulo a power-of-two shard count, key families differing only in an
// even-valued prefix byte must NOT co-locate. Raw FNV-1a mod 2 reduces to
// byte-sum parity, which put every "d-N"/"r-N" pair on the same shard.
func TestHashKeyLowBitsMixed(t *testing.T) {
	split := 0
	for i := 0; i < 64; i++ {
		a := HashKey(fmt.Sprintf("d-%d", i)) % 2
		b := HashKey(fmt.Sprintf("r-%d", i)) % 2
		if a != b {
			split++
		}
	}
	// A mixed low bit splits roughly half the pairs; zero was the failure.
	if split < 16 {
		t.Fatalf("only %d/64 d-/r- key pairs land on different shards mod 2; low bits are not mixed", split)
	}
}

func openRouter(t *testing.T, n int) *Router {
	t.Helper()
	r, err := Open(figures.Fig3(), Config{Shards: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// keysOnDifferentShards finds two single-string keys owned by different
// shards (they exist for any router with >= 2 shards, quickly).
func keysOnDifferentShards(t *testing.T, r *Router, prefix string) (string, string) {
	t.Helper()
	first := fmt.Sprintf("%s-0", prefix)
	want := r.ShardOf(tup(first).EncodeKey())
	for i := 1; i < 10000; i++ {
		k := fmt.Sprintf("%s-%d", prefix, i)
		if r.ShardOf(tup(k).EncodeKey()) != want {
			return first, k
		}
	}
	t.Fatal("no key pair on different shards")
	return "", ""
}

func TestRouterSingleOps(t *testing.T) {
	r := openRouter(t, 4)
	if err := r.Insert("COURSE", tup("c1")); err != nil {
		t.Fatal(err)
	}
	got, ok := r.GetByKey("COURSE", tup("c1"))
	if !ok || !got.Identical(tup("c1")) {
		t.Error("GetByKey after insert")
	}
	if _, ok := r.GetByKey("COURSE", tup("zzz")); ok {
		t.Error("missing key found")
	}
	// The row lives only on its hash owner.
	owner := r.ShardOf(tup("c1").EncodeKey())
	for i := 0; i < r.Shards(); i++ {
		_, ok := r.Shard(i).GetByKey("COURSE", tup("c1"))
		if ok != (i == owner) {
			t.Errorf("shard %d has row = %v, owner is %d", i, ok, owner)
		}
	}
	// Unknown relation keeps the engine's error.
	if err := r.Insert("NOPE", tup("x")); !errors.Is(err, engine.ErrUnknownRelation) {
		t.Errorf("unknown relation error = %v", err)
	}
	if err := r.Delete("COURSE", tup("zzz")); !errors.Is(err, engine.ErrNoSuchTuple) {
		t.Errorf("delete missing = %v", err)
	}
	if err := r.Delete("COURSE", tup("c1")); err != nil {
		t.Fatal(err)
	}
}

// TestCrossShardForeignKey drives the two-step probe: TEACH references
// FACULTY through a non-routing attribute, so the referenced key can (and
// here does) live on a different shard than the inserting one.
func TestCrossShardForeignKey(t *testing.T) {
	r := openRouter(t, 4)
	cnr, ssn := keysOnDifferentShards(t, r, "k")
	for _, ins := range []struct {
		rel string
		tp  relation.Tuple
	}{
		{"PERSON", tup(ssn)},
		{"FACULTY", tup(ssn)},
		{"COURSE", tup(cnr)},
		{"DEPARTMENT", tup("d1")},
		{"OFFER", tup(cnr, "d1")},
	} {
		if err := r.Insert(ins.rel, ins.tp); err != nil {
			t.Fatalf("insert %s: %v", ins.rel, err)
		}
	}
	before := r.ProbeStats()
	if err := r.Insert("TEACH", tup(cnr, ssn)); err != nil {
		t.Fatalf("cross-shard FK insert: %v", err)
	}
	after := r.ProbeStats()
	if after.RemoteProbes == before.RemoteProbes {
		t.Error("expected a remote probe for the cross-shard FACULTY reference")
	}
	// A dangling reference is rejected with the engine's violation kind.
	err := r.Insert("TEACH", tup("other-"+cnr, "missing-ssn"))
	var cv *engine.ConstraintViolation
	if !errors.As(err, &cv) || cv.Kind != engine.ForeignKeyViolation || cv.Op != "insert" {
		t.Errorf("dangling FK = %v", err)
	}
	// Referenced-side restrict crosses shards too: FACULTY's owner shard has
	// no local TEACH referencing it.
	err = r.Delete("FACULTY", tup(ssn))
	if !errors.As(err, &cv) || cv.Kind != engine.RestrictViolation || cv.Op != "delete" {
		t.Errorf("cross-shard restrict = %v", err)
	}
	// Unreference, then the delete goes through.
	if err := r.Delete("TEACH", tup(cnr)); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("FACULTY", tup(ssn)); err != nil {
		t.Errorf("delete after unreference: %v", err)
	}
}

// TestProbeCacheInvalidation would pass with a correct cache OR no cache;
// it fails with a cache that is not invalidated: after the referenced row
// is deleted, a re-insert of the referencing row must re-probe and reject.
func TestProbeCacheInvalidation(t *testing.T) {
	r := openRouter(t, 4)
	cnr, ssn := keysOnDifferentShards(t, r, "ci")
	for _, ins := range []struct {
		rel string
		tp  relation.Tuple
	}{
		{"PERSON", tup(ssn)},
		{"FACULTY", tup(ssn)},
		{"COURSE", tup(cnr)},
		{"DEPARTMENT", tup("d1")},
		{"OFFER", tup(cnr, "d1")},
	} {
		if err := r.Insert(ins.rel, ins.tp); err != nil {
			t.Fatal(err)
		}
	}
	// Seed the cache with the cross-shard positive.
	if err := r.Insert("TEACH", tup(cnr, ssn)); err != nil {
		t.Fatal(err)
	}
	before := r.ProbeStats()
	if err := r.Delete("TEACH", tup(cnr)); err != nil {
		t.Fatal(err)
	}
	// Re-insert hits the cache (no new remote probe for FACULTY)...
	if err := r.Insert("TEACH", tup(cnr, ssn)); err != nil {
		t.Fatal(err)
	}
	after := r.ProbeStats()
	if after.CacheHits == before.CacheHits {
		t.Error("expected re-insert to hit the probe cache")
	}
	// ...but once the referenced row is gone, the cached positive must not
	// survive it.
	if err := r.Delete("TEACH", tup(cnr)); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("FACULTY", tup(ssn)); err != nil {
		t.Fatal(err)
	}
	err := r.Insert("TEACH", tup(cnr, ssn))
	var cv *engine.ConstraintViolation
	if !errors.As(err, &cv) || cv.Kind != engine.ForeignKeyViolation {
		t.Errorf("insert after referenced delete = %v (stale probe cache?)", err)
	}
}

// TestCrossShardBatch exercises set-wise validation: a batch that inserts a
// referenced row on one shard and its referencing row on another succeeds
// regardless of op placement, and a violating batch leaves no partial
// effects on any shard.
func TestCrossShardBatch(t *testing.T) {
	r := openRouter(t, 4)
	cnr, ssn := keysOnDifferentShards(t, r, "b")
	ops := []engine.BatchOp{
		engine.Ins("COURSE", tup(cnr)),
		engine.Ins("DEPARTMENT", tup("d1")),
		engine.Ins("OFFER", tup(cnr, "d1")),
		engine.Ins("PERSON", tup(ssn)),
		engine.Ins("FACULTY", tup(ssn)),
		engine.Ins("TEACH", tup(cnr, ssn)),
	}
	if err := r.ApplyBatch(ops); err != nil {
		t.Fatalf("cross-shard batch: %v", err)
	}
	if _, ok := r.GetByKey("TEACH", tup(cnr)); !ok {
		t.Fatal("TEACH row missing after batch")
	}
	// All-or-nothing: one dangling op anywhere drops every shard's share.
	bad := []engine.BatchOp{
		engine.Ins("COURSE", tup(cnr+"-x")),
		engine.Ins("OFFER", tup(cnr+"-x", "no-such-dept")),
	}
	err := r.ApplyBatch(bad)
	var cv *engine.ConstraintViolation
	if !errors.As(err, &cv) || cv.Kind != engine.ForeignKeyViolation {
		t.Fatalf("violating batch = %v", err)
	}
	if _, ok := r.GetByKey("COURSE", tup(cnr+"-x")); ok {
		t.Error("partial batch effect survived on another shard")
	}
	// Cross-shard delete batch with in-batch re-ordering freedom: deleting
	// the referencing and referenced rows together succeeds even though the
	// referenced row's shard sees its delete "first".
	unlink := []engine.BatchOp{
		engine.Del("FACULTY", tup(ssn)),
		engine.Del("TEACH", tup(cnr)),
	}
	if err := r.ApplyBatch(unlink); err != nil {
		t.Fatalf("cross-shard unlink batch: %v", err)
	}
	if _, ok := r.GetByKey("FACULTY", tup(ssn)); ok {
		t.Error("FACULTY survived unlink batch")
	}
}

// TestCrossShardUpdateMigration moves a row to a new shard via Update and
// checks both the migration and the engine-parity violation surface.
func TestCrossShardUpdateMigration(t *testing.T) {
	r := openRouter(t, 4)
	c1, c2 := keysOnDifferentShards(t, r, "m")
	for _, ins := range []struct {
		rel string
		tp  relation.Tuple
	}{
		{"COURSE", tup(c1)},
		{"COURSE", tup(c2)},
		{"DEPARTMENT", tup("d1")},
		{"OFFER", tup(c1, "d1")},
	} {
		if err := r.Insert(ins.rel, ins.tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Update("OFFER", tup(c1), tup(c2, "d1")); err != nil {
		t.Fatalf("cross-shard update: %v", err)
	}
	if _, ok := r.GetByKey("OFFER", tup(c1)); ok {
		t.Error("old row survived migration")
	}
	if got, ok := r.GetByKey("OFFER", tup(c2)); !ok || !got.Identical(tup(c2, "d1")) {
		t.Error("migrated row missing")
	}
	// The row landed on the new key's owner, physically.
	if _, ok := r.Shard(r.ShardOf(tup(c2).EncodeKey())).GetByKey("OFFER", tup(c2)); !ok {
		t.Error("migrated row not on its hash owner")
	}
	// A referenced-side restrict across the migration reports Op "update",
	// as the one-shard engine would.
	if err := r.Insert("PERSON", tup("p1")); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert("FACULTY", tup("p1")); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert("TEACH", tup(c2, "p1")); err != nil {
		t.Fatal(err)
	}
	err := r.Update("OFFER", tup(c2), tup(c1, "d1"))
	var cv *engine.ConstraintViolation
	if !errors.As(err, &cv) || cv.Kind != engine.RestrictViolation || cv.Op != "update" {
		t.Errorf("restricted migration = %v", err)
	}
	// Migrating a missing row keeps the engine's error.
	if err := r.Update("OFFER", tup("absent"), tup(c1, "d1")); !errors.Is(err, engine.ErrNoSuchTuple) {
		t.Errorf("update missing = %v", err)
	}
}

// TestNonKeyINDProbe covers value-based (non-key) inclusion dependencies,
// which probe every sibling's referenced-side index instead of hashing to
// an owner.
func TestNonKeyINDProbe(t *testing.T) {
	s := schema.New()
	s.AddScheme(schema.NewScheme("R",
		[]schema.Attribute{{Name: "R.A", Domain: "d"}, {Name: "R.B", Domain: "e"}}, []string{"R.A"}))
	s.AddScheme(schema.NewScheme("S",
		[]schema.Attribute{{Name: "S.X", Domain: "f"}, {Name: "S.Y", Domain: "e"}}, []string{"S.X"}))
	s.INDs = []schema.IND{schema.NewIND("S", []string{"S.Y"}, "R", []string{"R.B"})}
	r, err := Open(s, Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Insert("R", tup("a1", "b1")); err != nil {
		t.Fatal(err)
	}
	// Find an S key on a different shard than R's row, so the referenced
	// value is definitely remote.
	owner := r.ShardOf(tup("a1").EncodeKey())
	var sKey string
	for i := 0; ; i++ {
		sKey = fmt.Sprintf("x-%d", i)
		if r.ShardOf(tup(sKey).EncodeKey()) != owner {
			break
		}
	}
	if err := r.Insert("S", tup(sKey, "b1")); err != nil {
		t.Fatalf("non-key cross-shard reference: %v", err)
	}
	var cv *engine.ConstraintViolation
	if err := r.Insert("S", tup(sKey+"-2", "no-such-b")); !errors.As(err, &cv) || cv.Kind != engine.ForeignKeyViolation {
		t.Errorf("dangling non-key reference = %v", err)
	}
	// Referenced-side restrict: R's row is referenced by a (possibly
	// remote) S row.
	if err := r.Delete("R", tup("a1")); !errors.As(err, &cv) || cv.Kind != engine.RestrictViolation {
		t.Errorf("non-key restrict = %v", err)
	}
}

func TestRouterTxn(t *testing.T) {
	r := openRouter(t, 3)
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := r.Insert("COURSE", tup(fmt.Sprintf("t-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Rollback(); err != nil {
		t.Fatal(err)
	}
	if n := r.View().Count("COURSE"); n != 0 {
		t.Errorf("rows after rollback = %d", n)
	}
	if err := r.Rollback(); err == nil {
		t.Error("rollback without txn should fail")
	}
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert("COURSE", tup("kept")); err != nil {
		t.Fatal(err)
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := r.View().Count("COURSE"); n != 1 {
		t.Errorf("rows after commit = %d", n)
	}
}

func TestRouterStatsAggregation(t *testing.T) {
	r := openRouter(t, 4)
	for i := 0; i < 32; i++ {
		if err := r.Insert("COURSE", tup(fmt.Sprintf("s-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	st := r.StatsTotals()
	if st.Inserts != 32 {
		t.Errorf("aggregated inserts = %d, want 32", st.Inserts)
	}
	var maxLSN uint64
	perShard := 0
	for i := 0; i < r.Shards(); i++ {
		sst := r.Shard(i).StatsTotals()
		perShard += sst.Inserts
		if sst.VersionLSN > maxLSN {
			maxLSN = sst.VersionLSN
		}
	}
	if perShard != 32 {
		t.Errorf("per-shard inserts sum = %d", perShard)
	}
	if st.VersionLSN != maxLSN {
		t.Errorf("aggregated LSN = %d, want max %d", st.VersionLSN, maxLSN)
	}
}

// TestShardDurableReopen checks the property the golden hash test protects:
// a durable sharded database reopened with the same shard count finds every
// row on the shard that owns it.
func TestShardDurableReopen(t *testing.T) {
	dir := t.TempDir()
	open := func() *Router {
		r, err := Open(figures.Fig3(), Config{Shards: 3, WALDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r := open()
	var keys []string
	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("dur-%d", i)
		keys = append(keys, k)
		if err := r.Insert("COURSE", tup(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Insert("PERSON", tup("pp")); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert("FACULTY", tup("pp")); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := open()
	defer r2.Close()
	if !r2.Recovered().Recovered {
		t.Fatal("reopen did not recover")
	}
	for _, k := range keys {
		got, ok := r2.GetByKey("COURSE", tup(k))
		if !ok || !got.Identical(tup(k)) {
			t.Fatalf("row %s lost across reopen", k)
		}
		owner := r2.ShardOf(tup(k).EncodeKey())
		if _, ok := r2.Shard(owner).GetByKey("COURSE", tup(k)); !ok {
			t.Fatalf("row %s not on its owner after reopen", k)
		}
	}
	// Cross-shard IND re-validation ran and constraints still hold.
	var cv *engine.ConstraintViolation
	if err := r2.Delete("PERSON", tup("pp")); !errors.As(err, &cv) || cv.Kind != engine.RestrictViolation {
		t.Errorf("restrict after recovery = %v", err)
	}
}

func TestRouterLoadAndSnapshot(t *testing.T) {
	r := openRouter(t, 3)
	st := figures.Fig3State()
	if err := r.Load(st); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	for name, rel := range st.Relations {
		got := snap.Relation(name)
		if got == nil || got.Len() != rel.Len() {
			t.Errorf("relation %s: snapshot %v rows, want %d", name, got, rel.Len())
		}
	}
}

// TestCrossShardINDStress hammers the insert-FK-probe vs referenced-delete
// race across shards: under -race and the edge locks, every TEACH insert
// must observe its FACULTY row atomically with respect to the concurrent
// deletes. Run via make shard-test.
func TestCrossShardINDStress(t *testing.T) {
	r := openRouter(t, 4)
	const ssns = 8
	for i := 0; i < ssns; i++ {
		ssn := fmt.Sprintf("ssn-%d", i)
		if err := r.Insert("PERSON", tup(ssn)); err != nil {
			t.Fatal(err)
		}
		if err := r.Insert("FACULTY", tup(ssn)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		cnr := fmt.Sprintf("cn-%d", i)
		if err := r.Insert("COURSE", tup(cnr)); err != nil {
			t.Fatal(err)
		}
		if err := r.Insert("DEPARTMENT", tup(fmt.Sprintf("dp-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := r.Insert("OFFER", tup(cnr, fmt.Sprintf("dp-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 3)
	// Writer 1: TEACH inserts referencing rotating FACULTY rows.
	go func() {
		for i := 0; i < 64; i++ {
			cnr := fmt.Sprintf("cn-%d", i)
			ssn := fmt.Sprintf("ssn-%d", i%ssns)
			err := r.Insert("TEACH", tup(cnr, ssn))
			var cv *engine.ConstraintViolation
			if err != nil && !errors.As(err, &cv) {
				done <- fmt.Errorf("teach insert %d: %v", i, err)
				return
			}
			if err == nil {
				if derr := r.Delete("TEACH", tup(cnr)); derr != nil {
					done <- fmt.Errorf("teach delete %d: %v", i, derr)
					return
				}
			}
		}
		done <- nil
	}()
	// Writer 2: delete/re-insert FACULTY rows (restrict violations are
	// expected outcomes, torn states are not).
	go func() {
		for i := 0; i < 96; i++ {
			ssn := fmt.Sprintf("ssn-%d", i%ssns)
			err := r.Delete("FACULTY", tup(ssn))
			var cv *engine.ConstraintViolation
			if err != nil && !errors.As(err, &cv) {
				done <- fmt.Errorf("faculty delete: %v", err)
				return
			}
			if err == nil {
				if ierr := r.Insert("FACULTY", tup(ssn)); ierr != nil {
					done <- fmt.Errorf("faculty reinsert: %v", ierr)
					return
				}
			}
		}
		done <- nil
	}()
	// Writer 3: shard-local traffic on an IND-free relation, no router
	// edges involved.
	go func() {
		for i := 0; i < 128; i++ {
			k := fmt.Sprintf("free-%d", i)
			if err := r.Insert("COURSE", tup(k)); err != nil {
				done <- fmt.Errorf("course insert: %v", err)
				return
			}
			if err := r.Delete("COURSE", tup(k)); err != nil {
				done <- fmt.Errorf("course delete: %v", err)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Invariant sweep: every surviving TEACH row's FACULTY exists.
	v := r.View()
	err := v.Scan("TEACH", nil, func(tp relation.Tuple) {
		ssn := tp[1]
		if _, ok := v.GetByKey("FACULTY", relation.Tuple{ssn}); !ok {
			t.Errorf("dangling TEACH row %v", tp)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrossShardBatchContext ensures an expired context mid-batch triggers
// compensation rather than a torn cross-shard state.
func TestCrossShardBatchCompensation(t *testing.T) {
	r := openRouter(t, 4)
	cnr, ssn := keysOnDifferentShards(t, r, "cp")
	setup := []engine.BatchOp{
		engine.Ins("COURSE", tup(cnr)),
		engine.Ins("DEPARTMENT", tup("d1")),
		engine.Ins("OFFER", tup(cnr, "d1")),
		engine.Ins("PERSON", tup(ssn)),
		engine.Ins("FACULTY", tup(ssn)),
	}
	if err := r.ApplyBatch(setup); err != nil {
		t.Fatal(err)
	}
	// A cancelled context fails the first shard's apply; nothing must
	// survive (prevalidation passes — the ctx is checked at apply time).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	batch := []engine.BatchOp{
		engine.Ins("COURSE", tup(cnr+"-n")),
		engine.Ins("PERSON", tup(ssn+"-n")),
	}
	if err := r.ApplyBatchCtx(ctx, batch); err == nil {
		t.Fatal("cancelled cross-shard batch succeeded")
	}
	if _, ok := r.GetByKey("COURSE", tup(cnr+"-n")); ok {
		t.Error("torn batch: COURSE row survived")
	}
	if _, ok := r.GetByKey("PERSON", tup(ssn+"-n")); ok {
		t.Error("torn batch: PERSON row survived")
	}
}
