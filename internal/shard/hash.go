package shard

// HashKey maps an encoded primary key to its partition-routing hash: 64-bit
// FNV-1a followed by a murmur-style avalanche finalizer. The finalizer
// matters because shard counts are routinely powers of two and ShardOf takes
// the hash modulo the count: raw FNV-1a is linear in its low bits (hash mod 2
// is just the parity of the byte sum), so without mixing, key families that
// differ in one even-valued byte — "d-7" vs "r-7" — would always co-locate
// under 2, 4, or 8 shards, silently removing every cross-shard edge.
//
// The function is written out rather than composed from hash/fnv so the
// partitioning contract is explicit and frozen: the same key must route to
// the same shard across process restarts, architectures, and Go releases,
// because a durable deployment re-opens its per-shard logs by position.
// TestHashKeyGolden pins the exact values; changing this function is a
// data-migration event, not a refactor.
func HashKey(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// fmix64 (murmur3): full avalanche, so every input bit reaches the low
	// bits the modulo actually uses.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
