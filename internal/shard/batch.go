package shard

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/relation"
)

// subBatch is one shard's slice of a cross-shard batch, with the fetched
// pre-images needed to build its inverse.
type subBatch struct {
	shard int
	ops   []engine.BatchOp
	old   []relation.Tuple // pre-image per op (delete/update), nil otherwise
}

// InsertBatch inserts tuples as one atomic group. See InsertBatchCtx.
func (r *Router) InsertBatch(name string, tuples []relation.Tuple) error {
	return r.InsertBatchCtx(context.Background(), name, tuples)
}

// InsertBatchCtx splits the group by primary-key hash. A group that lands
// on one shard runs there as a native insert batch (identical semantics and
// error surface to the engine's). A group that spans shards runs
// all-or-nothing: the router repeats the engine's group prechecks (arity,
// intra-group duplicate keys) so they see the whole group, prevalidates
// every sub-group against the pending overlay, then applies shard by shard,
// compensating applied sub-groups if a log device fails mid-way.
func (r *Router) InsertBatchCtx(ctx context.Context, name string, tuples []relation.Tuple) error {
	m := r.meta[name]
	if m == nil {
		r.gmu.RLock()
		defer r.gmu.RUnlock()
		return r.shards[0].InsertBatchCtx(ctx, name, tuples)
	}
	if len(tuples) == 0 {
		return nil
	}
	// Split; any tuple that flunks the group prechecks forces the precheck
	// path but routes to shard 0 (the error preempts routing anyway).
	perShard := make(map[int][]relation.Tuple)
	involved := 0
	first := -1
	for _, tup := range tuples {
		sh := 0
		if len(tup) == m.arity {
			sh = r.ShardOf(m.pkOf(tup))
		}
		if perShard[sh] == nil {
			involved++
			if first < 0 {
				first = sh
			}
		}
		perShard[sh] = append(perShard[sh], tup)
	}
	if involved == 1 {
		r.m.localBatches.Inc()
		r.gmu.RLock()
		defer r.gmu.RUnlock()
		unlock := lockEdges(r.insertPlan[name])
		defer unlock()
		return r.shards[first].InsertBatchCtx(ctx, name, tuples)
	}
	r.m.crossBatches.Inc()
	r.gmu.Lock()
	defer r.gmu.Unlock()
	// The engine's group prechecks, over the whole group (a sub-group alone
	// could not see a duplicate split across shards): arity first, then
	// intra-group duplicate primary keys, with the engine's exact errors.
	seen := make(map[string]bool, len(tuples))
	for i, tup := range tuples {
		if len(tup) != m.arity {
			return fmt.Errorf("%w for %s (batch index %d)", engine.ErrArityMismatch, name, i)
		}
		pk := m.pkOf(tup)
		if seen[pk] {
			return &engine.ConstraintViolation{Kind: engine.PrimaryKeyViolation, Relation: name, Op: "insert-batch"}
		}
		seen[pk] = true
	}
	r.pending = newOverlay()
	defer func() { r.pending = nil }()
	subs := make([]subBatch, 0, involved)
	for sh := 0; sh < len(r.shards); sh++ {
		tups := perShard[sh]
		if tups == nil {
			continue
		}
		ops := make([]engine.BatchOp, len(tups))
		for i, tup := range tups {
			ops[i] = engine.Ins(name, tup)
			r.pending.addIns(name, m.pkOf(tup), tup)
		}
		subs = append(subs, subBatch{shard: sh, ops: ops})
	}
	for _, sb := range subs {
		if err := r.shards[sb.shard].PrevalidateBatchCtx(ctx, sb.ops); err != nil {
			return err
		}
	}
	return r.applyPhase(ctx, name, subs)
}

// ApplyBatch applies a mixed batch atomically. See ApplyBatchCtx.
func (r *Router) ApplyBatch(ops []engine.BatchOp) error {
	return r.ApplyBatchCtx(context.Background(), ops)
}

// ApplyBatchCtx routes a mixed batch. Ops are assigned to shards by primary
// key; an update whose new key hashes to a different shard is decomposed
// into a delete on the old owner and an insert on the new one. A batch
// confined to one shard runs there natively — order-sensitive, with the
// engine's exact semantics. A batch spanning shards is all-or-nothing but
// validates set-wise: every involved shard prevalidates its sub-batch with
// the whole batch visible through the pending overlay, then the sub-batches
// apply; a log-device failure mid-apply rolls back the applied prefix with
// inverse operations.
func (r *Router) ApplyBatchCtx(ctx context.Context, ops []engine.BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	// The engine's plan construction rejects unknown relations before any
	// other check, first occurrence wins.
	for _, op := range ops {
		if r.meta[op.Relation] == nil {
			return fmt.Errorf("%w %s", engine.ErrUnknownRelation, op.Relation)
		}
	}
	perShard := make(map[int][]engine.BatchOp)
	assign := func(sh int, op engine.BatchOp) { perShard[sh] = append(perShard[sh], op) }
	for _, op := range ops {
		m := r.meta[op.Relation]
		switch op.Kind {
		case engine.BatchInsert:
			sh := 0
			if len(op.Tuple) == m.arity {
				sh = r.ShardOf(m.pkOf(op.Tuple))
			}
			assign(sh, op)
		case engine.BatchDelete:
			assign(r.ShardOf(op.Key.EncodeKey()), op)
		case engine.BatchUpdate:
			src := r.ShardOf(op.Key.EncodeKey())
			if len(op.Tuple) != m.arity {
				assign(src, op)
				continue
			}
			dst := r.ShardOf(m.pkOf(op.Tuple))
			if src == dst {
				assign(src, op)
				continue
			}
			// Key migration: decompose. The overlay carries the update's
			// identity (old key removed, new tuple introduced), so constraint
			// checks on both shards see it as one movement.
			assign(src, engine.Del(op.Relation, op.Key))
			assign(dst, engine.Ins(op.Relation, op.Tuple))
		default:
			assign(0, op)
		}
	}
	if len(perShard) == 1 {
		r.m.localBatches.Inc()
		var sh int
		var sub []engine.BatchOp
		for s, o := range perShard {
			sh, sub = s, o
		}
		r.gmu.RLock()
		defer r.gmu.RUnlock()
		unlock := lockEdges(r.batchEdges(sub))
		defer unlock()
		err := r.shards[sh].ApplyBatchCtx(ctx, sub)
		if err == nil {
			r.invalidateBatch(sub)
		}
		return err
	}
	r.m.crossBatches.Inc()
	r.gmu.Lock()
	defer r.gmu.Unlock()
	r.pending = newOverlay()
	defer func() { r.pending = nil }()
	subs := make([]subBatch, 0, len(perShard))
	for sh := 0; sh < len(r.shards); sh++ {
		sub := perShard[sh]
		if sub == nil {
			continue
		}
		sb := subBatch{shard: sh, ops: sub, old: make([]relation.Tuple, len(sub))}
		for i, op := range sub {
			m := r.meta[op.Relation]
			switch op.Kind {
			case engine.BatchInsert:
				if len(op.Tuple) == m.arity {
					r.pending.addIns(op.Relation, m.pkOf(op.Tuple), op.Tuple)
				}
			case engine.BatchDelete:
				r.pending.addDel(op.Relation, op.Key.EncodeKey())
				if old, ok := r.shards[sh].GetByKey(op.Relation, op.Key); ok {
					sb.old[i] = old
				}
			case engine.BatchUpdate:
				r.pending.addDel(op.Relation, op.Key.EncodeKey())
				if len(op.Tuple) == m.arity {
					r.pending.addIns(op.Relation, m.pkOf(op.Tuple), op.Tuple)
				}
				if old, ok := r.shards[sh].GetByKey(op.Relation, op.Key); ok {
					sb.old[i] = old
				}
			}
		}
		subs = append(subs, sb)
	}
	for _, sb := range subs {
		if err := r.shards[sb.shard].PrevalidateBatchCtx(ctx, sb.ops); err != nil {
			return err
		}
	}
	return r.applyPhase(ctx, "", subs)
}

// applyPhase runs the prevalidated sub-batches. Each shard's sub-batch is
// atomic on that shard (one published version, one log record); after
// prevalidation only log-device failures (or an expiring context) can
// interrupt, in which case the applied prefix is compensated with inverse
// sub-batches — validated through the inverse overlay, so the restore is
// order-insensitive across shards just like the forward batch.
// insName, when non-empty, marks an insert-group batch (InsertBatchCtx
// apply/compensation paths).
func (r *Router) applyPhase(ctx context.Context, insName string, subs []subBatch) error {
	applied := 0
	var failure error
	for i, sb := range subs {
		var err error
		if insName != "" {
			tups := make([]relation.Tuple, len(sb.ops))
			for j, op := range sb.ops {
				tups[j] = op.Tuple
			}
			err = r.shards[sb.shard].InsertBatchCtx(ctx, insName, tups)
		} else {
			err = r.shards[sb.shard].ApplyBatchCtx(ctx, sb.ops)
		}
		if err != nil {
			failure = err
			applied = i
			break
		}
		applied = i + 1
	}
	if failure == nil {
		for _, sb := range subs {
			r.invalidateBatch(sb.ops)
		}
		return nil
	}
	// Compensate the applied prefix under an inverse overlay.
	fwd := r.pending
	inv := newOverlay()
	for _, sb := range subs[:applied] {
		for i, op := range sb.ops {
			m := r.meta[op.Relation]
			switch op.Kind {
			case engine.BatchInsert:
				inv.addDel(op.Relation, m.pkOf(op.Tuple))
			case engine.BatchDelete:
				if sb.old[i] != nil {
					inv.addIns(op.Relation, op.Key.EncodeKey(), sb.old[i])
				}
			case engine.BatchUpdate:
				inv.addDel(op.Relation, m.pkOf(op.Tuple))
				if sb.old[i] != nil {
					inv.addIns(op.Relation, op.Key.EncodeKey(), sb.old[i])
				}
			}
		}
	}
	r.pending = inv
	var comperr error
	for i := applied - 1; i >= 0; i-- {
		sb := subs[i]
		r.m.compensations.Inc()
		if err := r.shards[sb.shard].ApplyBatchCtx(context.Background(), inverseOps(r, sb)); err != nil {
			comperr = err
		}
	}
	r.pending = fwd
	// Applied-and-reverted shards may have seeded probe caches.
	for _, sb := range subs[:applied] {
		r.invalidateBatch(sb.ops)
	}
	if comperr != nil {
		return fmt.Errorf("shard: compensation failed (%v) after cross-shard apply error: %w", comperr, failure)
	}
	return failure
}

// inverseOps builds the inverse of one applied sub-batch, in reverse order.
func inverseOps(r *Router, sb subBatch) []engine.BatchOp {
	out := make([]engine.BatchOp, 0, len(sb.ops))
	for i := len(sb.ops) - 1; i >= 0; i-- {
		op := sb.ops[i]
		m := r.meta[op.Relation]
		switch op.Kind {
		case engine.BatchInsert:
			out = append(out, engine.Del(op.Relation, op.Tuple.Project(m.pkPos)))
		case engine.BatchDelete:
			if sb.old[i] != nil {
				out = append(out, engine.Ins(op.Relation, sb.old[i]))
			}
		case engine.BatchUpdate:
			if sb.old[i] != nil {
				out = append(out, engine.Upd(op.Relation, op.Tuple.Project(m.pkPos), sb.old[i]))
			}
		}
	}
	return out
}

// invalidateBatch drops probe-cache entries falsified by a batch's deletes
// and key-moving updates, before the locks ordering them release.
func (r *Router) invalidateBatch(ops []engine.BatchOp) {
	for _, op := range ops {
		switch op.Kind {
		case engine.BatchDelete:
			r.m.invalidations.Inc()
			r.invalidate(op.Relation, op.Key.EncodeKey())
		case engine.BatchUpdate:
			r.m.invalidations.Inc()
			r.invalidate(op.Relation, op.Key.EncodeKey())
		}
	}
}
