package shard

import "repro/internal/obs"

// Metric series names of the router. Cross-shard probe traffic is the cost
// the P9 benchmark grid measures: remote probes are the two-step lookups
// that left the calling shard, cache hits are the ones the read-through
// cache absorbed.
const (
	metricRemoteProbes  = "shard.probe.remote"
	metricCacheHits     = "shard.probe.cache_hits"
	metricOverlayHits   = "shard.probe.overlay_hits"
	metricCrossBatches  = "shard.batch.cross"
	metricLocalBatches  = "shard.batch.local"
	metricCompensations = "shard.batch.compensations"
	metricInvalidations = "shard.cache.invalidations"
	metricRoutedOps     = "shard.ops.routed"
)

type routerMetrics struct {
	remoteProbes  *obs.Counter
	cacheHits     *obs.Counter
	overlayHits   *obs.Counter
	crossBatches  *obs.Counter
	localBatches  *obs.Counter
	compensations *obs.Counter
	invalidations *obs.Counter
	routedOps     *obs.Counter
}

func newRouterMetrics(r *obs.Registry, name string) *routerMetrics {
	l := obs.L("router", name)
	return &routerMetrics{
		remoteProbes:  r.Counter(metricRemoteProbes, l),
		cacheHits:     r.Counter(metricCacheHits, l),
		overlayHits:   r.Counter(metricOverlayHits, l),
		crossBatches:  r.Counter(metricCrossBatches, l),
		localBatches:  r.Counter(metricLocalBatches, l),
		compensations: r.Counter(metricCompensations, l),
		invalidations: r.Counter(metricInvalidations, l),
		routedOps:     r.Counter(metricRoutedOps, l),
	}
}

// ProbeStats is a point-in-time snapshot of the router's cross-shard probe
// counters, exposed so benchmarks can report probe cost per cell without
// scraping the registry.
type ProbeStats struct {
	// RemoteProbes counts existence probes answered by another shard.
	RemoteProbes int64
	// CacheHits counts probes absorbed by the read-through cache.
	CacheHits int64
	// OverlayHits counts probes answered from a cross-shard batch's pending
	// overlay.
	OverlayHits int64
	// CrossBatches counts batches that spanned more than one shard.
	CrossBatches int64
	// Compensations counts applied sub-batches undone after a log-device
	// failure mid cross-shard apply.
	Compensations int64
}

// ProbeStats returns the router's cumulative cross-shard probe counters.
func (r *Router) ProbeStats() ProbeStats {
	return ProbeStats{
		RemoteProbes:  r.m.remoteProbes.Value(),
		CacheHits:     r.m.cacheHits.Value(),
		OverlayHits:   r.m.overlayHits.Value(),
		CrossBatches:  r.m.crossBatches.Value(),
		Compensations: r.m.compensations.Value(),
	}
}
