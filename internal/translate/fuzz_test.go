package translate

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/eer"
	"repro/internal/engine"
	"repro/internal/state"
)

// randomEER builds a random valid EER schema: root entities (some with
// multi-valued or nullable attributes), specializations, and binary
// many-to-one relationship-sets whose Many side may be an entity or an
// earlier relationship-set.
func randomEER(rng *rand.Rand) *eer.Schema {
	s := eer.New()
	nEnt := 2 + rng.Intn(3)
	for i := 0; i < nEnt; i++ {
		name := fmt.Sprintf("E%d", i)
		e := &eer.EntitySet{
			Name: name, Prefix: name,
			OwnAttrs: []eer.Attr{{Name: name + ".ID", Domain: fmt.Sprintf("d%d", i)}},
			ID:       []string{name + ".ID"},
		}
		for j := 0; j < rng.Intn(3); j++ {
			a := eer.Attr{
				Name:   fmt.Sprintf("%s.A%d", name, j),
				Domain: fmt.Sprintf("ad%d_%d", i, j),
			}
			switch rng.Intn(4) {
			case 0:
				a.Nullable = true
			case 1:
				a.MultiValued = true
			}
			e.OwnAttrs = append(e.OwnAttrs, a)
		}
		s.Entities = append(s.Entities, e)
	}
	// Specializations of root entities.
	for i := 0; i < rng.Intn(3); i++ {
		parent := s.Entities[rng.Intn(nEnt)].Name
		name := fmt.Sprintf("S%d", i)
		sp := &eer.EntitySet{Name: name, Prefix: name}
		if rng.Intn(2) == 0 {
			sp.OwnAttrs = []eer.Attr{{Name: name + ".X", Domain: fmt.Sprintf("sx%d", i)}}
		}
		s.Entities = append(s.Entities, sp)
		s.ISAs = append(s.ISAs, eer.ISA{Child: name, Parent: parent})
	}
	// Relationship-sets; Many side may be any prior object-set, One side a
	// root entity.
	objects := []string{}
	for _, e := range s.Entities {
		objects = append(objects, e.Name)
	}
	for i := 0; i < rng.Intn(4); i++ {
		name := fmt.Sprintf("R%d", i)
		many := objects[rng.Intn(len(objects))]
		one := s.Entities[rng.Intn(nEnt)].Name
		if many == one {
			continue
		}
		r := &eer.RelationshipSet{
			Name: name, Prefix: name,
			Parts: []eer.Participant{
				{Object: many, Card: eer.Many},
				{Object: one, Card: eer.One},
			},
		}
		if rng.Intn(3) == 0 {
			r.OwnAttrs = []eer.Attr{{Name: name + ".W", Domain: fmt.Sprintf("rw%d", i)}}
		}
		s.Relationships = append(s.Relationships, r)
		objects = append(objects, name)
	}
	return s
}

// The translation pipeline is total on random valid EER schemas: MS produces
// a valid relational schema whose generated states are consistent and load
// into the engine; Teorey likewise.
func TestTranslateRandomizedEER(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	tested := 0
	for trial := 0; trial < 150; trial++ {
		es := randomEER(rng)
		if es.Validate() != nil {
			continue // duplicate-ish structure; skip
		}
		rs, err := MS(es)
		if err != nil {
			// Generated prefixes/bases may collide (e.g. a relationship's
			// one-side copy colliding with an inherited key copy name); the
			// library must reject such schemas with a clean error, never
			// emit an invalid schema.
			if !strings.Contains(err.Error(), "duplicate attribute") {
				t.Fatalf("trial %d: MS failed unexpectedly: %v", trial, err)
			}
			continue
		}
		if err := rs.Validate(); err != nil {
			t.Fatalf("trial %d: invalid schema: %v", trial, err)
		}
		tr, err := Teorey(es)
		if err != nil {
			if !strings.Contains(err.Error(), "duplicate attribute") {
				t.Fatalf("trial %d: Teorey failed unexpectedly: %v", trial, err)
			}
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: invalid Teorey schema: %v", trial, err)
		}
		// Generated data is consistent and engine-loadable.
		db, err := state.Generate(rs, rng, state.GenOptions{Rows: 4, NullProb: 0.3})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		eng, err := engine.Open(rs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := eng.Load(db); err != nil {
			t.Fatalf("trial %d: load: %v\nschema:\n%s\nstate:\n%s", trial, err, rs, db)
		}
		tested++
	}
	if tested < 100 {
		t.Fatalf("only %d random schemas exercised", tested)
	}
}

// The Teorey baseline never has MORE consistent-state-restricting null
// constraints than MS on the same EER schema (it drops restrictions; that is
// the criticized defect).
func TestTeoreyNeverMoreConstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 80; trial++ {
		es := randomEER(rng)
		if es.Validate() != nil {
			continue
		}
		ms, err := MS(es)
		if err != nil {
			continue // naming collision; rejected by both translators
		}
		tr, err := Teorey(es)
		if err != nil {
			continue
		}
		msCover, trCover := nnaCount(ms), nnaCount(tr)
		if trCover > msCover {
			t.Fatalf("trial %d: Teorey covers %d NNA attrs vs MS %d", trial, trCover, msCover)
		}
	}
}

func nnaCount(s interface {
	NNAAttrs(string) map[string]bool
	SchemeNames() []string
}) int {
	n := 0
	for _, name := range s.SchemeNames() {
		n += len(s.NNAAttrs(name))
	}
	return n
}
