package translate

import (
	"math/rand"
	"testing"

	"repro/internal/eer"
	"repro/internal/schema"
	"repro/internal/state"
)

func mvSchema() *eer.Schema {
	es := eer.New()
	es.Entities = []*eer.EntitySet{
		{
			Name: "PERSON", Prefix: "P",
			OwnAttrs: []eer.Attr{
				{Name: "P.SSN", Domain: "ssn"},
				{Name: "P.PHONE", Domain: "phone", MultiValued: true},
			},
			ID:        []string{"P.SSN"},
			CopyBases: []string{"SSN"},
		},
	}
	return es
}

func TestMultiValuedAttributeTranslation(t *testing.T) {
	rs, err := MS(mvSchema())
	if err != nil {
		t.Fatal(err)
	}
	person := rs.Scheme("PERSON")
	if person.HasAttr("P.PHONE") {
		t.Error("multi-valued attribute must leave the owner relation")
	}
	phone := rs.Scheme("P.PHONE")
	if phone == nil {
		t.Fatal("P.PHONE relation missing")
	}
	if !schema.EqualAttrLists(phone.AttrNames(), []string{"P.PHONE.SSN", "P.PHONE"}) {
		t.Errorf("P.PHONE attrs = %v", phone.AttrNames())
	}
	if !schema.EqualAttrLists(phone.PrimaryKey, []string{"P.PHONE.SSN", "P.PHONE"}) {
		t.Errorf("P.PHONE key = %v (owner copy + value)", phone.PrimaryKey)
	}
	found := false
	for _, ind := range rs.INDsFrom("P.PHONE") {
		if ind.Right == "PERSON" && schema.EqualAttrSets(ind.LeftAttrs, []string{"P.PHONE.SSN"}) {
			found = true
		}
	}
	if !found {
		t.Error("P.PHONE must reference PERSON")
	}
	if rs.AllowsNull("P.PHONE", "P.PHONE") {
		t.Error("multi-valued values are NNA")
	}
}

func TestMultiValuedOnRelationship(t *testing.T) {
	es := eer.New()
	es.Entities = []*eer.EntitySet{
		{Name: "E", Prefix: "E", OwnAttrs: []eer.Attr{{Name: "E.ID", Domain: "eid"}}, ID: []string{"E.ID"}},
		{Name: "F", Prefix: "F", OwnAttrs: []eer.Attr{{Name: "F.ID", Domain: "fid"}}, ID: []string{"F.ID"}},
	}
	es.Relationships = []*eer.RelationshipSet{{
		Name: "R", Prefix: "R",
		Parts: []eer.Participant{
			{Object: "E", Card: eer.Many},
			{Object: "F", Card: eer.One},
		},
		OwnAttrs: []eer.Attr{{Name: "R.TAG", Domain: "tag", MultiValued: true}},
	}}
	rs, err := MS(es)
	if err != nil {
		t.Fatal(err)
	}
	tag := rs.Scheme("R.TAG")
	if tag == nil {
		t.Fatal("R.TAG relation missing")
	}
	if !schema.EqualAttrLists(tag.AttrNames(), []string{"R.TAG.E.ID", "R.TAG"}) {
		t.Errorf("R.TAG attrs = %v", tag.AttrNames())
	}
	// Generated states stay consistent (the generator handles the extra
	// relation and its composite key).
	db, err := state.Generate(rs, rand.New(rand.NewSource(3)), state.GenOptions{Rows: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := state.Consistent(rs, db); err != nil {
		t.Fatal(err)
	}
}

func TestMultiValuedIdentifierRejected(t *testing.T) {
	es := eer.New()
	es.Entities = []*eer.EntitySet{{
		Name: "E", Prefix: "E",
		OwnAttrs: []eer.Attr{{Name: "E.ID", Domain: "d", MultiValued: true}},
		ID:       []string{"E.ID"},
	}}
	if err := es.Validate(); err == nil {
		t.Error("multi-valued identifier must be rejected")
	}
}
