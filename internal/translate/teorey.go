package translate

import (
	"fmt"

	"repro/internal/eer"
	"repro/internal/schema"
)

// Teorey translates the EER schema in the Teorey–Yang–Fry style the paper's
// introduction criticizes: every binary many-to-one relationship-set whose
// Many participant is a root entity-set is folded into that entity-set's
// relation — the one-side foreign key and the relationship's own attributes
// become nullable columns of the entity relation — and *no null constraints*
// are generated beyond nulls-not-allowed on identifiers and mandatory entity
// attributes.
//
// The resulting schema is the figure 1(iii) shape: it admits database states
// that are inconsistent with the EER semantics (e.g. a non-null relationship
// attribute alongside a null foreign key), which the tests demonstrate
// mechanically. Relationship-sets that cannot be folded (n-ary,
// many-to-many, or with a non-root-entity Many participant) are translated
// as in MS.
func Teorey(es *eer.Schema) (*schema.Schema, error) {
	if err := es.Validate(); err != nil {
		return nil, err
	}
	rv := newResolver(es)
	out := schema.New()

	folded := make(map[string]bool)                     // relationship name -> folded
	foldInto := make(map[string][]*eer.RelationshipSet) // entity name -> folded rels
	for _, r := range es.Relationships {
		many, _, ok := r.IsBinaryManyToOne()
		if !ok {
			continue
		}
		e := es.Entity(many.Object)
		if e == nil || e.Weak || es.IsSpecialization(e.Name) {
			continue
		}
		// A relationship-set that other object-sets hang off (as a
		// participant or weak-entity owner) must keep its own relation.
		if len(es.RelationshipsOf(r.Name)) > 0 || len(es.WeakDependents(r.Name)) > 0 {
			continue
		}
		// Multi-valued relationship attributes need their own relation keyed
		// by the relationship's identifier; keep such relationships unfolded.
		hasMV := false
		for _, a := range r.OwnAttrs {
			if a.MultiValued {
				hasMV = true
			}
		}
		if hasMV {
			continue
		}
		folded[r.Name] = true
		foldInto[e.Name] = append(foldInto[e.Name], r)
	}

	for _, e := range es.Entities {
		key, err := rv.resolve(e.Name)
		if err != nil {
			return nil, err
		}
		var attrs []schema.Attribute
		var nnaAttrs []string
		own := make(map[string]bool, len(e.OwnAttrs))
		for _, a := range e.OwnAttrs {
			own[a.Name] = true
		}
		for i, ka := range key.attrs {
			if !own[ka] {
				attrs = append(attrs, schema.Attribute{Name: ka, Domain: key.domains[i]})
				nnaAttrs = append(nnaAttrs, ka)
			}
		}
		var multi []eer.Attr
		for _, a := range e.OwnAttrs {
			if a.MultiValued {
				multi = append(multi, a)
				continue
			}
			attrs = append(attrs, schema.Attribute{Name: a.Name, Domain: a.Domain})
			if !a.Nullable {
				nnaAttrs = append(nnaAttrs, a.Name)
			}
		}
		var inds []schema.IND
		// Fold the relationship columns in: nullable, unconstrained.
		for _, r := range foldInto[e.Name] {
			_, one, _ := r.IsBinaryManyToOne()
			copyKey, err := rv.copyOf(r.Prefix, one.Object)
			if err != nil {
				return nil, err
			}
			oneKey, err := rv.resolve(one.Object)
			if err != nil {
				return nil, err
			}
			for i, ca := range copyKey.attrs {
				attrs = append(attrs, schema.Attribute{Name: ca, Domain: copyKey.domains[i]})
			}
			inds = append(inds, schema.NewIND(e.Name, copyKey.attrs, one.Object, oneKey.attrs))
			for _, a := range r.OwnAttrs {
				attrs = append(attrs, schema.Attribute{Name: a.Name, Domain: a.Domain})
			}
		}
		out.AddScheme(schema.NewScheme(e.Name, attrs, key.attrs))
		if len(nnaAttrs) > 0 {
			out.Nulls = append(out.Nulls, schema.NNA(e.Name, nnaAttrs...))
		}
		for _, a := range multi {
			emitMultiValued(out, e.Name, key, a)
		}
		switch {
		case e.Weak:
			ownerKey, err := rv.resolve(e.Owner)
			if err != nil {
				return nil, err
			}
			out.INDs = append(out.INDs, schema.NewIND(e.Name, key.attrs[:len(ownerKey.attrs)], e.Owner, ownerKey.attrs))
		case es.IsSpecialization(e.Name):
			for _, parent := range es.Parents(e.Name) {
				parentKey, err := rv.resolve(parent)
				if err != nil {
					return nil, err
				}
				out.INDs = append(out.INDs, schema.NewIND(e.Name, key.attrs, parent, parentKey.attrs))
			}
		}
		out.INDs = append(out.INDs, inds...)
	}

	// Unfolded relationship-sets translate as in MS; reuse by translating a
	// reduced schema would redo entities, so inline the same logic.
	for _, r := range es.Relationships {
		if folded[r.Name] {
			continue
		}
		key, err := rv.resolve(r.Name)
		if err != nil {
			return nil, err
		}
		// A folded Many participant's relation still holds its key, so the
		// dependency targets are unchanged.
		var attrs []schema.Attribute
		for i, ka := range key.attrs {
			attrs = append(attrs, schema.Attribute{Name: ka, Domain: key.domains[i]})
		}
		var inds []schema.IND
		pos := 0
		var nnaAttrs []string
		for _, p := range r.Parts {
			pk, err := rv.resolve(p.Object)
			if err != nil {
				return nil, err
			}
			if p.Card == eer.Many {
				copyAttrs := key.attrs[pos : pos+len(pk.attrs)]
				pos += len(pk.attrs)
				inds = append(inds, schema.NewIND(r.Name, copyAttrs, p.Object, pk.attrs))
				continue
			}
			copyKey, err := rv.copyOf(r.Prefix, p.Object)
			if err != nil {
				return nil, err
			}
			for i, ca := range copyKey.attrs {
				attrs = append(attrs, schema.Attribute{Name: ca, Domain: copyKey.domains[i]})
				nnaAttrs = append(nnaAttrs, ca)
			}
			inds = append(inds, schema.NewIND(r.Name, copyKey.attrs, p.Object, pk.attrs))
		}
		var multi []eer.Attr
		for _, a := range r.OwnAttrs {
			if a.MultiValued {
				multi = append(multi, a)
				continue
			}
			attrs = append(attrs, schema.Attribute{Name: a.Name, Domain: a.Domain})
			if !a.Nullable {
				nnaAttrs = append(nnaAttrs, a.Name)
			}
		}
		out.AddScheme(schema.NewScheme(r.Name, attrs, key.attrs))
		out.INDs = append(out.INDs, inds...)
		covered := append(append([]string(nil), key.attrs...), nnaAttrs...)
		out.Nulls = append(out.Nulls, schema.NNA(r.Name, covered...))
		for _, a := range multi {
			emitMultiValued(out, r.Name, key, a)
		}
	}

	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("translate: Teorey produced an invalid schema: %w", err)
	}
	return out, nil
}
