// Package translate maps EER schemas to relational schemas of the form
// (R, F ∪ I ∪ N).
//
// MS implements the Markowitz–Shoshani translation (reference [11] of the
// paper): every object-set gets its own relation-scheme in BCNF, existence
// dependencies become key-based inclusion dependencies, and null-value
// restrictions become nulls-not-allowed constraints. Applied to the EER
// schema of figure 7 it reproduces the relational schema of figure 3
// exactly.
//
// Teorey implements the Teorey–Yang–Fry style baseline the paper's
// introduction criticizes: binary many-to-one relationship-sets are folded
// into the relation of their Many participant with nullable foreign keys and
// nullable relationship attributes, and — the defect the paper demonstrates
// with figure 1(iii) — no null constraints tying the relationship attributes
// to the foreign key, so the result admits states inconsistent with the EER
// semantics.
package translate

import (
	"fmt"

	"repro/internal/eer"
	"repro/internal/schema"
)

// objectKey is the resolved relational identity of an object-set: its key
// attribute names, their domains, and the per-attribute base names used when
// another object-set copies this key.
type objectKey struct {
	attrs     []string
	domains   []string
	copyBases []string
}

type resolver struct {
	es   *eer.Schema
	memo map[string]*objectKey
	open map[string]bool
}

func newResolver(es *eer.Schema) *resolver {
	return &resolver{es: es, memo: make(map[string]*objectKey), open: make(map[string]bool)}
}

// resolve computes the relational key of an object-set, following ISA links,
// weak-entity owners, and relationship Many participants.
func (rv *resolver) resolve(name string) (*objectKey, error) {
	if k, ok := rv.memo[name]; ok {
		return k, nil
	}
	if rv.open[name] {
		return nil, fmt.Errorf("translate: cyclic identifier dependency through %s", name)
	}
	rv.open[name] = true
	defer delete(rv.open, name)

	var k *objectKey
	var err error
	switch {
	case rv.es.Entity(name) != nil:
		k, err = rv.resolveEntity(rv.es.Entity(name))
	case rv.es.Relationship(name) != nil:
		k, err = rv.resolveRelationship(rv.es.Relationship(name))
	default:
		return nil, fmt.Errorf("translate: unknown object-set %s", name)
	}
	if err != nil {
		return nil, err
	}
	rv.memo[name] = k
	return k, nil
}

func (rv *resolver) resolveEntity(e *eer.EntitySet) (*objectKey, error) {
	switch {
	case e.Weak:
		ownerCopy, err := rv.copyOf(e.Prefix, e.Owner)
		if err != nil {
			return nil, err
		}
		k := &objectKey{
			attrs:     append([]string(nil), ownerCopy.attrs...),
			domains:   append([]string(nil), ownerCopy.domains...),
			copyBases: append([]string(nil), ownerCopy.attrs...),
		}
		for _, d := range e.Discriminator {
			a := attrByName(e.OwnAttrs, d)
			if a == nil {
				return nil, fmt.Errorf("translate: weak entity-set %s: discriminator %s missing", e.Name, d)
			}
			k.attrs = append(k.attrs, a.Name)
			k.domains = append(k.domains, a.Domain)
			k.copyBases = append(k.copyBases, a.Name)
		}
		return k, nil
	case rv.es.IsSpecialization(e.Name):
		// Inherit from the first parent (multiple generalization shares the
		// same underlying identifier; the first parent supplies the copy).
		parent := rv.es.Parents(e.Name)[0]
		copyKey, err := rv.copyOf(e.Prefix, parent)
		if err != nil {
			return nil, err
		}
		copyKey.copyBases = append([]string(nil), copyKey.attrs...)
		return copyKey, nil
	default:
		k := &objectKey{}
		for _, id := range e.ID {
			a := attrByName(e.OwnAttrs, id)
			if a == nil {
				return nil, fmt.Errorf("translate: entity-set %s: identifier %s missing", e.Name, id)
			}
			k.attrs = append(k.attrs, a.Name)
			k.domains = append(k.domains, a.Domain)
		}
		if len(e.CopyBases) == len(e.ID) && len(e.CopyBases) > 0 {
			k.copyBases = append([]string(nil), e.CopyBases...)
		} else {
			k.copyBases = append([]string(nil), k.attrs...)
		}
		return k, nil
	}
}

func (rv *resolver) resolveRelationship(r *eer.RelationshipSet) (*objectKey, error) {
	k := &objectKey{}
	for _, p := range r.ManyParticipants() {
		copyKey, err := rv.copyOf(r.Prefix, p.Object)
		if err != nil {
			return nil, err
		}
		k.attrs = append(k.attrs, copyKey.attrs...)
		k.domains = append(k.domains, copyKey.domains...)
		// The relationship's identifier keeps the Many participant's copy
		// bases (e.g. TEACH copies OFFER's "C.NR" base as "T.C.NR" but
		// re-exports base "C.NR"), matching the paper's naming.
		k.copyBases = append(k.copyBases, copyKey.copyBases...)
	}
	return k, nil
}

// copyOf builds the foreign copy of an object-set's key under a prefix:
// attribute names prefix+"."+base.
func (rv *resolver) copyOf(prefix, object string) (*objectKey, error) {
	target, err := rv.resolve(object)
	if err != nil {
		return nil, err
	}
	out := &objectKey{
		domains:   append([]string(nil), target.domains...),
		copyBases: append([]string(nil), target.copyBases...),
	}
	for _, base := range target.copyBases {
		out.attrs = append(out.attrs, prefix+"."+base)
	}
	return out, nil
}

func attrByName(attrs []eer.Attr, name string) *eer.Attr {
	for i := range attrs {
		if attrs[i].Name == name {
			return &attrs[i]
		}
	}
	return nil
}

// MS translates the EER schema into a BCNF relational schema
// (R, F ∪ I ∪ N): one relation-scheme per object-set, key-based inclusion
// dependencies for all existence dependencies, and nulls-not-allowed
// constraints for all non-nullable attributes.
func MS(es *eer.Schema) (*schema.Schema, error) {
	if err := es.Validate(); err != nil {
		return nil, err
	}
	rv := newResolver(es)
	out := schema.New()

	addNNA := func(name string, attrs []schema.Attribute, nullable map[string]bool) {
		var covered []string
		for _, a := range attrs {
			if !nullable[a.Name] {
				covered = append(covered, a.Name)
			}
		}
		if len(covered) > 0 {
			out.Nulls = append(out.Nulls, schema.NNA(name, covered...))
		}
	}

	for _, e := range es.Entities {
		key, err := rv.resolve(e.Name)
		if err != nil {
			return nil, err
		}
		var attrs []schema.Attribute
		nullable := make(map[string]bool)
		// Inherited/owner key copies come first (absent for root entities,
		// whose identifier lives in OwnAttrs).
		own := make(map[string]bool, len(e.OwnAttrs))
		for _, a := range e.OwnAttrs {
			own[a.Name] = true
		}
		for i, ka := range key.attrs {
			if !own[ka] {
				attrs = append(attrs, schema.Attribute{Name: ka, Domain: key.domains[i]})
			}
		}
		var multi []eer.Attr
		for _, a := range e.OwnAttrs {
			if a.MultiValued {
				multi = append(multi, a)
				continue
			}
			attrs = append(attrs, schema.Attribute{Name: a.Name, Domain: a.Domain})
			if a.Nullable {
				nullable[a.Name] = true
			}
		}
		out.AddScheme(schema.NewScheme(e.Name, attrs, key.attrs))
		addNNA(e.Name, attrs, nullable)
		for _, a := range multi {
			emitMultiValued(out, e.Name, key, a)
		}

		// Existence dependencies: specialization → parent, weak → owner.
		switch {
		case e.Weak:
			ownerKey, err := rv.resolve(e.Owner)
			if err != nil {
				return nil, err
			}
			copyAttrs := key.attrs[:len(ownerKey.attrs)]
			out.INDs = append(out.INDs, schema.NewIND(e.Name, copyAttrs, e.Owner, ownerKey.attrs))
		case es.IsSpecialization(e.Name):
			for _, parent := range es.Parents(e.Name) {
				parentKey, err := rv.resolve(parent)
				if err != nil {
					return nil, err
				}
				out.INDs = append(out.INDs, schema.NewIND(e.Name, key.attrs, parent, parentKey.attrs))
			}
		}
	}

	for _, r := range es.Relationships {
		key, err := rv.resolve(r.Name)
		if err != nil {
			return nil, err
		}
		var attrs []schema.Attribute
		nullable := make(map[string]bool)
		for i, ka := range key.attrs {
			attrs = append(attrs, schema.Attribute{Name: ka, Domain: key.domains[i]})
		}
		// One-side copies, then own attributes.
		var inds []schema.IND
		pos := 0
		for _, p := range r.Parts {
			pk, err := rv.resolve(p.Object)
			if err != nil {
				return nil, err
			}
			if p.Card == eer.Many {
				copyAttrs := key.attrs[pos : pos+len(pk.attrs)]
				pos += len(pk.attrs)
				inds = append(inds, schema.NewIND(r.Name, copyAttrs, p.Object, pk.attrs))
				continue
			}
			copyKey, err := rv.copyOf(r.Prefix, p.Object)
			if err != nil {
				return nil, err
			}
			for i, ca := range copyKey.attrs {
				attrs = append(attrs, schema.Attribute{Name: ca, Domain: copyKey.domains[i]})
			}
			inds = append(inds, schema.NewIND(r.Name, copyKey.attrs, p.Object, pk.attrs))
		}
		var multi []eer.Attr
		for _, a := range r.OwnAttrs {
			if a.MultiValued {
				multi = append(multi, a)
				continue
			}
			attrs = append(attrs, schema.Attribute{Name: a.Name, Domain: a.Domain})
			if a.Nullable {
				nullable[a.Name] = true
			}
		}
		out.AddScheme(schema.NewScheme(r.Name, attrs, key.attrs))
		out.INDs = append(out.INDs, inds...)
		addNNA(r.Name, attrs, nullable)
		for _, a := range multi {
			emitMultiValued(out, r.Name, key, a)
		}
	}

	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("translate: MS produced an invalid schema: %w", err)
	}
	return out, nil
}

// emitMultiValued translates a multi-valued attribute into its own
// relation-scheme, named after the attribute: the owner's key copy (each
// attribute prefixed by the multi-valued attribute's name) plus the value,
// all forming the primary key, with a key-based inclusion dependency back to
// the owner. E.g. a multi-valued P.PHONE on PERSON(P.SSN) becomes
// P.PHONE(P.PHONE.SSN, P.PHONE) with P.PHONE[P.PHONE.SSN] ⊆ PERSON[P.SSN].
func emitMultiValued(out *schema.Schema, owner string, ownerKey *objectKey, a eer.Attr) {
	var attrs []schema.Attribute
	var copyAttrs []string
	for i, base := range ownerKey.copyBases {
		name := a.Name + "." + base
		attrs = append(attrs, schema.Attribute{Name: name, Domain: ownerKey.domains[i]})
		copyAttrs = append(copyAttrs, name)
	}
	attrs = append(attrs, schema.Attribute{Name: a.Name, Domain: a.Domain})
	key := append(append([]string(nil), copyAttrs...), a.Name)
	out.AddScheme(schema.NewScheme(a.Name, attrs, key))
	out.INDs = append(out.INDs, schema.NewIND(a.Name, copyAttrs, owner, ownerKey.attrs))
	out.Nulls = append(out.Nulls, schema.NNA(a.Name, key...))
}
