package translate

import (
	"testing"

	"repro/internal/eer"
	"repro/internal/figures"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/state"
)

// E7 — the Markowitz–Shoshani translation of figure 7 is exactly figure 3.
func TestFig7TranslatesToFig3(t *testing.T) {
	got, err := MS(eer.Fig7())
	if err != nil {
		t.Fatal(err)
	}
	want := figures.Fig3()

	if !schema.EqualAttrLists(got.SchemeNames(), want.SchemeNames()) {
		t.Fatalf("scheme names = %v, want %v", got.SchemeNames(), want.SchemeNames())
	}
	for _, name := range want.SchemeNames() {
		g, w := got.Scheme(name), want.Scheme(name)
		if !schema.EqualAttrLists(schema.AttrNames(g.Attrs), schema.AttrNames(w.Attrs)) {
			t.Errorf("%s attrs = %v, want %v", name, schema.AttrNames(g.Attrs), schema.AttrNames(w.Attrs))
		}
		if !schema.EqualAttrLists(g.PrimaryKey, w.PrimaryKey) {
			t.Errorf("%s key = %v, want %v", name, g.PrimaryKey, w.PrimaryKey)
		}
		for i, a := range g.Attrs {
			if a.Domain != w.Attrs[i].Domain {
				t.Errorf("%s attr %s domain = %q, want %q", name, a.Name, a.Domain, w.Attrs[i].Domain)
			}
		}
	}
	if !got.SameConstraints(want) {
		t.Errorf("constraints differ:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// E1 — the MS translation of figure 1(i) matches figure 1(ii)'s RS.
func TestFig1TranslatesToRS(t *testing.T) {
	got, err := MS(eer.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	want := figures.Fig1RS()
	if !got.SameConstraints(want) {
		t.Errorf("constraints differ:\ngot:\n%s\nwant:\n%s", got, want)
	}
	for _, name := range []string{"PROJECT", "EMPLOYEE", "WORKS", "MANAGES"} {
		g, w := got.Scheme(name), want.Scheme(name)
		if g == nil {
			t.Fatalf("missing scheme %s", name)
		}
		if !schema.EqualAttrSets(schema.AttrNames(g.Attrs), schema.AttrNames(w.Attrs)) {
			t.Errorf("%s attrs = %v, want %v", name, schema.AttrNames(g.Attrs), schema.AttrNames(w.Attrs))
		}
		if !schema.EqualAttrSets(g.PrimaryKey, w.PrimaryKey) {
			t.Errorf("%s key = %v, want %v", name, g.PrimaryKey, w.PrimaryKey)
		}
	}
}

// E1 — the Teorey baseline on figure 1(i): WORKS and MANAGES fold into
// EMPLOYEE with nullable, unconstrained columns.
func TestTeoreyFoldsFig1(t *testing.T) {
	got, err := Teorey(eer.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	emp := got.Scheme("EMPLOYEE")
	if emp == nil {
		t.Fatal("EMPLOYEE missing")
	}
	wantAttrs := []string{"E.SSN", "W.NR", "W.DATE", "M.NR"}
	if !schema.EqualAttrSets(schema.AttrNames(emp.Attrs), wantAttrs) {
		t.Errorf("EMPLOYEE attrs = %v, want %v", schema.AttrNames(emp.Attrs), wantAttrs)
	}
	if got.Scheme("WORKS") != nil || got.Scheme("MANAGES") != nil {
		t.Error("folded relationships should not have their own relations")
	}
	// Only the key is NNA; the folded columns are nullable and unconstrained.
	nna := got.NNAAttrs("EMPLOYEE")
	if !nna["E.SSN"] || nna["W.NR"] || nna["W.DATE"] || nna["M.NR"] {
		t.Errorf("EMPLOYEE NNA attrs = %v", nna)
	}
	if len(got.NullsOf("EMPLOYEE")) != 1 {
		t.Errorf("Teorey should generate no null constraints beyond NNA, got %v", got.NullsOf("EMPLOYEE"))
	}
}

// E1 — the paper's figure 1 anomaly, demonstrated mechanically: the Teorey
// schema admits a state with a non-null assignment DATE for an employee
// working on no project; the MS schema extended with the paper's
// null-existence constraint rejects the corresponding tuple.
func TestFig1AnomalyDemonstration(t *testing.T) {
	teorey, err := Teorey(eer.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	db := state.New(teorey)
	// Employee e1 with a DATE but no project: legal in RS'.
	emp := db.Relation("EMPLOYEE")
	emp.Add(relation.Tuple{
		relation.NewString("e1"),
		relation.Null(),               // W.NR
		relation.NewString("1992-02"), // W.DATE — non-null with null W.NR!
		relation.Null(),               // M.NR
	})
	if err := state.Consistent(teorey, db); err != nil {
		t.Fatalf("the anomalous state should be CONSISTENT with the Teorey schema: %v", err)
	}
	// The paper's fix: W.DATE ⊑ W.NR. With it, the state is rejected.
	teorey.Nulls = append(teorey.Nulls,
		schema.NewNullExistence("EMPLOYEE", []string{"W.DATE"}, []string{"W.NR"}))
	if err := state.Consistent(teorey, db); err == nil {
		t.Fatal("the null-existence constraint should reject the anomalous state")
	}
}

func TestMSNullableAttrs(t *testing.T) {
	es := eer.Fig1()
	// Make WORKS.DATE nullable at the EER level.
	es.Relationship("WORKS").OwnAttrs[0].Nullable = true
	got, err := MS(es)
	if err != nil {
		t.Fatal(err)
	}
	if !got.AllowsNull("WORKS", "W.DATE") {
		t.Error("nullable EER attribute should be excluded from NNA")
	}
	if got.AllowsNull("WORKS", "W.SSN") {
		t.Error("key attributes stay NNA")
	}
}

func TestMSWeakEntity(t *testing.T) {
	es := eer.New()
	es.Entities = []*eer.EntitySet{
		{
			Name: "BUILDING", Prefix: "B",
			OwnAttrs:  []eer.Attr{{Name: "B.NAME", Domain: "bname"}},
			ID:        []string{"B.NAME"},
			CopyBases: []string{"NAME"},
		},
		{
			Name: "ROOM", Prefix: "R",
			OwnAttrs:      []eer.Attr{{Name: "R.NR", Domain: "roomnr"}},
			Weak:          true,
			Owner:         "BUILDING",
			Discriminator: []string{"R.NR"},
		},
	}
	got, err := MS(es)
	if err != nil {
		t.Fatal(err)
	}
	room := got.Scheme("ROOM")
	if !schema.EqualAttrLists(room.PrimaryKey, []string{"R.NAME", "R.NR"}) {
		t.Errorf("weak key = %v, want owner copy + discriminator", room.PrimaryKey)
	}
	found := false
	for _, ind := range got.INDsFrom("ROOM") {
		if ind.Right == "BUILDING" && schema.EqualAttrSets(ind.LeftAttrs, []string{"R.NAME"}) {
			found = true
		}
	}
	if !found {
		t.Error("weak entity should reference its owner")
	}
}

func TestMSManyToMany(t *testing.T) {
	es := eer.New()
	es.Entities = []*eer.EntitySet{
		{Name: "STUDENT", Prefix: "S", OwnAttrs: []eer.Attr{{Name: "S.ID", Domain: "sid"}}, ID: []string{"S.ID"}, CopyBases: []string{"ID"}},
		{Name: "CLUB", Prefix: "C", OwnAttrs: []eer.Attr{{Name: "C.NAME", Domain: "cname"}}, ID: []string{"C.NAME"}, CopyBases: []string{"NAME"}},
	}
	es.Relationships = []*eer.RelationshipSet{
		{
			Name: "JOINS", Prefix: "J",
			Parts: []eer.Participant{
				{Object: "STUDENT", Card: eer.Many},
				{Object: "CLUB", Card: eer.Many},
			},
		},
	}
	got, err := MS(es)
	if err != nil {
		t.Fatal(err)
	}
	joins := got.Scheme("JOINS")
	if !schema.EqualAttrSets(joins.PrimaryKey, []string{"J.ID", "J.NAME"}) {
		t.Errorf("many-to-many key = %v", joins.PrimaryKey)
	}
	if len(got.INDsFrom("JOINS")) != 2 {
		t.Errorf("JOINS INDs = %v", got.INDsFrom("JOINS"))
	}
	// Teorey cannot fold a many-to-many relationship: same shape.
	got2, err := Teorey(es)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Scheme("JOINS") == nil {
		t.Error("Teorey must keep the many-to-many relation")
	}
}

func TestTranslateRejectsCyclicParticipation(t *testing.T) {
	es := eer.New()
	es.Entities = []*eer.EntitySet{
		{Name: "E", Prefix: "E", OwnAttrs: []eer.Attr{{Name: "E.ID", Domain: "d"}}, ID: []string{"E.ID"}},
	}
	es.Relationships = []*eer.RelationshipSet{
		{Name: "R1", Prefix: "R1", Parts: []eer.Participant{{Object: "R2", Card: eer.Many}, {Object: "E", Card: eer.One}}},
		{Name: "R2", Prefix: "R2", Parts: []eer.Participant{{Object: "R1", Card: eer.Many}, {Object: "E", Card: eer.One}}},
	}
	if _, err := MS(es); err == nil {
		t.Error("cyclic identifier dependency should be rejected")
	}
}

func TestFig8TranslationsValidate(t *testing.T) {
	for name, es := range map[string]*eer.Schema{
		"8i": eer.Fig8i(), "8ii": eer.Fig8ii(), "8iii": eer.Fig8iii(), "8iv": eer.Fig8iv(),
	} {
		rs, err := MS(es)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := rs.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
