// Package obs is the repository's observability layer: a stdlib-only,
// allocation-light metrics registry (atomic counters, gauges, bounded
// histograms, labeled families) plus lightweight trace spans (span.go).
//
// The paper's §5 argument is observational — declarative vs. trigger-style
// constraint regimes are compared by counting what each modification costs —
// so the cost counters that were previously ad-hoc struct fields scattered
// across the engine and the dependency-reasoning caches are registered here
// instead, where they can be snapshotted at runtime (`relmerge -metrics`),
// exported to BENCH_*.json, and asserted on by tests.
//
// Registration is get-or-create: asking a Registry for a metric that already
// exists under the same name and labels returns the existing instance, so
// packages can wire metrics at construction time without coordination.
// Registering the same name with a different kind (or a histogram with
// different buckets) panics — metric identity is part of the public surface,
// and scripts/metriclint enforces that every name literal in the tree is
// registered from exactly one call site.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key=value dimension of a metric family. The same metric name
// registered under different label sets yields independent time series (the
// engine registers its counters once per database under a db=<name> label).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter. All methods are safe
// for concurrent use and nil-safe, so optional wiring can call through a nil
// counter without guards.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative; counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	if n < 0 {
		panic("obs: Counter.Add with negative delta")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 value that can move in both directions.
// Nil-safe like Counter.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add moves the value by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram: counts[i] accumulates
// observations v <= bounds[i], with one implicit overflow bucket. Observe is
// lock-free; a snapshot may tear between a bucket count and the sum by at
// most the observations racing with it, which is the standard trade for an
// allocation-free hot path. Nil-safe like Counter.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sumBits atomic.Uint64
	count   atomic.Int64
}

// LatencyBuckets are the default per-operation latency buckets, in seconds:
// 250ns to ~1s, roughly quadrupling, bracketing everything from a memoized
// cache hit to a cold secondary-index build.
var LatencyBuckets = []float64{
	250e-9, 1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1,
}

// ByteBuckets are the default payload-size buckets, in bytes: 64 B to 16 MiB,
// quadrupling, bracketing everything from a one-tuple log record to a full
// snapshot checkpoint.
var ByteBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20, 16 << 20,
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; equal values land in the
	// bucket they bound (cumulative "le" semantics).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// metric kinds, as reported in snapshots.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

type metricKey struct {
	name   string
	labels string // canonical "k=v,k=v"
}

// entry is one registered time series.
type entry struct {
	kind    string
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // counterfunc / gaugefunc callback
}

// Registry holds a set of named metrics. The zero value is not usable; use
// NewRegistry. A Registry is safe for concurrent use; registration takes the
// write lock, metric mutation is lock-free on the returned handles.
type Registry struct {
	mu      sync.RWMutex
	kinds   map[string]string
	bounds  map[string]string // histogram name -> rendered bounds, for mismatch detection
	metrics map[metricKey]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:   make(map[string]string),
		bounds:  make(map[string]string),
		metrics: make(map[metricKey]*entry),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, for wiring that has no natural
// owner to thread a Registry through.
func Default() *Registry { return defaultRegistry }

// validName enforces the metric naming convention: lowercase dotted paths,
// e.g. "engine.trigger_firings".
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_', c == '.':
		default:
			return false
		}
	}
	return name[0] >= 'a' && name[0] <= 'z'
}

func canonLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if l.Key == "" {
			panic("obs: empty label key")
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// register implements get-or-create under the registry lock.
func (r *Registry) register(name, kind string, labels []Label, make func() *entry) *entry {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	key := metricKey{name: name, labels: canonLabels(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.kinds[name]; ok && have != kind {
		panic(fmt.Sprintf("obs: metric %q already registered as %s, not %s", name, have, kind))
	}
	if e, ok := r.metrics[key]; ok {
		return e
	}
	e := make()
	e.kind = kind
	e.labels = append([]Label(nil), labels...)
	r.kinds[name] = kind
	r.metrics[key] = e
	return e
}

// Counter returns the counter registered under name and labels, creating it
// on first use. A nil registry returns a nil (no-op) counter, so optional
// instrumentation needs no branching at the call site.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	e := r.register(name, KindCounter, labels, func() *entry {
		return &entry{counter: &Counter{}}
	})
	return e.counter
}

// Gauge returns the gauge registered under name and labels, creating it on
// first use. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	e := r.register(name, KindGauge, labels, func() *entry {
		return &entry{gauge: &Gauge{}}
	})
	return e.gauge
}

// GaugeFunc registers a callback gauge: fn is evaluated at snapshot time.
// Re-registering the same name and labels keeps the first callback. A nil
// registry ignores the registration.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, KindGauge, labels, func() *entry {
		return &entry{fn: fn}
	})
}

// CounterFunc registers a callback counter for externally-maintained
// monotonic counts (e.g. cache hit totals owned by another package). A nil
// registry ignores the registration.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, KindCounter, labels, func() *entry {
		return &entry{fn: fn}
	})
}

// Histogram returns the histogram registered under name and labels, creating
// it with the given bucket upper bounds on first use. The bounds of an
// existing histogram must match. A nil registry returns a nil (no-op)
// histogram.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	rendered := fmt.Sprint(bounds)
	e := r.register(name, KindHistogram, labels, func() *entry {
		r.bounds[name] = rendered
		return &entry{hist: newHistogram(bounds)}
	})
	if have := r.bounds[name]; have != rendered {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
	}
	return e.hist
}

// Bucket is one cumulative histogram bucket in a snapshot. LE is the
// formatted upper bound ("+Inf" for the overflow bucket) so snapshots stay
// JSON-encodable.
type Bucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// Point is one metric reading in a snapshot.
type Point struct {
	Name    string            `json:"name"`
	Kind    string            `json:"kind"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Count   int64             `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets []Bucket          `json:"buckets,omitempty"`
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Snapshot reads every metric, sorted by name then canonical label string.
func (r *Registry) Snapshot() []Point {
	r.mu.RLock()
	keys := make([]metricKey, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	entries := make([]*entry, 0, len(keys))
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].labels < keys[j].labels
	})
	for _, k := range keys {
		entries = append(entries, r.metrics[k])
	}
	r.mu.RUnlock()

	out := make([]Point, 0, len(keys))
	for i, k := range keys {
		e := entries[i]
		p := Point{Name: k.name, Kind: e.kind}
		if len(e.labels) > 0 {
			p.Labels = make(map[string]string, len(e.labels))
			for _, l := range e.labels {
				p.Labels[l.Key] = l.Value
			}
		}
		switch {
		case e.fn != nil:
			p.Value = e.fn()
		case e.counter != nil:
			p.Value = float64(e.counter.Value())
		case e.gauge != nil:
			p.Value = e.gauge.Value()
		case e.hist != nil:
			p.Count = e.hist.Count()
			p.Sum = e.hist.Sum()
			p.Value = p.Sum
			cum := int64(0)
			p.Buckets = make([]Bucket, 0, len(e.hist.counts))
			for bi := range e.hist.counts {
				cum += e.hist.counts[bi].Load()
				bound := math.Inf(1)
				if bi < len(e.hist.bounds) {
					bound = e.hist.bounds[bi]
				}
				p.Buckets = append(p.Buckets, Bucket{LE: formatBound(bound), Count: cum})
			}
		}
		out = append(out, p)
	}
	return out
}

// WriteJSON writes the snapshot as an indented JSON document
// {"metrics": [...]}.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := struct {
		Metrics []Point `json:"metrics"`
	}{Metrics: r.Snapshot()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteText writes the snapshot in expvar-style text lines:
//
//	name{k=v} value
//	name_count{k=v} n  /  name_sum{k=v} s  /  name_bucket{k=v,le=b} c
func (r *Registry) WriteText(w io.Writer) error {
	for _, p := range r.Snapshot() {
		labels := renderLabels(p.Labels, "", "")
		var err error
		if p.Kind == KindHistogram {
			_, err = fmt.Fprintf(w, "%s_count%s %d\n%s_sum%s %g\n", p.Name, labels, p.Count, p.Name, labels, p.Sum)
			if err != nil {
				return err
			}
			for _, b := range p.Buckets {
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", p.Name, renderLabels(p.Labels, "le", b.LE), b.Count); err != nil {
					return err
				}
			}
			continue
		}
		if _, err = fmt.Fprintf(w, "%s%s %g\n", p.Name, labels, p.Value); err != nil {
			return err
		}
	}
	return nil
}

func renderLabels(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}
