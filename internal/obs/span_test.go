package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func TestSpanNoTracerIsNoop(t *testing.T) {
	ctx, sp := Span(context.Background(), "free")
	if sp != nil {
		t.Fatal("span without a tracer must be nil")
	}
	sp.SetAttr("k", "v") // nil-safe
	sp.End()
	if TracerFrom(ctx) != nil {
		t.Error("no tracer must be installed")
	}
}

func TestSpanNestingDepths(t *testing.T) {
	tr := NewTracer(0)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Span(ctx, "core.Merge")
	root.SetAttr("members", "OFFER,TEACH")
	cctx, child := Span(ctx, "merge.step1")
	_, grand := Span(cctx, "merge.step1.attrs")
	grand.End()
	child.End()
	// A sibling of step1 under the root.
	_, sib := Span(ctx, "merge.step2")
	sib.End()
	root.End()

	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	// Completion order: deepest first, root last.
	wantNames := []string{"merge.step1.attrs", "merge.step1", "merge.step2", "core.Merge"}
	wantDepth := []int{2, 1, 1, 0}
	for i, ev := range evs {
		if ev.Name != wantNames[i] || ev.Depth != wantDepth[i] {
			t.Errorf("event %d = %s depth %d, want %s depth %d", i, ev.Name, ev.Depth, wantNames[i], wantDepth[i])
		}
		if ev.Duration < 0 {
			t.Errorf("event %d has negative duration", i)
		}
	}
	if evs[3].Attrs["members"] != "OFFER,TEACH" {
		t.Errorf("root attrs = %v", evs[3].Attrs)
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	tr := NewTracer(0)
	_, sp := Span(WithTracer(context.Background(), tr), "once")
	sp.End()
	sp.End()
	if got := len(tr.Events()); got != 1 {
		t.Errorf("events = %d, want 1", got)
	}
}

func TestTracerBoundedDrops(t *testing.T) {
	tr := NewTracer(2)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, sp := Span(ctx, "tick")
		sp.End()
	}
	if got := len(tr.Events()); got != 2 {
		t.Errorf("events = %d, want 2 (bounded)", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
	tr.Reset()
	if len(tr.Events()) != 0 || tr.Dropped() != 0 {
		t.Error("Reset must clear the log")
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer(0)
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c, sp := Span(ctx, "outer")
				_, inner := Span(c, "inner")
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Events()) + int(tr.Dropped()); got != 8*200*2 {
		t.Errorf("recorded+dropped = %d, want %d", got, 8*200*2)
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(0)
	ctx := WithTracer(context.Background(), tr)
	_, sp := Span(ctx, "core.Remove")
	sp.SetAttr("member", "TEACH")
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Spans []SpanEvent `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "core.Remove" || doc.Spans[0].Attrs["member"] != "TEACH" {
		t.Errorf("trace = %+v", doc.Spans)
	}
}
