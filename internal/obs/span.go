package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SpanEvent is one completed span in a Tracer's event log: what ran, how
// deep in the span tree it nested, when it started, and how long it took.
// Events are appended when a span ends, so a child precedes its parent in
// the log; Depth reconstructs the nesting.
type SpanEvent struct {
	Name     string            `json:"name"`
	Depth    int               `json:"depth"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Tracer collects completed spans into a bounded in-memory event log. Safe
// for concurrent use. A nil Tracer is a valid no-op sink.
type Tracer struct {
	mu      sync.Mutex
	events  []SpanEvent
	max     int
	dropped int64
}

// DefaultTraceCapacity bounds a Tracer constructed with NewTracer(0).
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer retaining at most max events (0 selects
// DefaultTraceCapacity). Once full, further events are counted as dropped
// rather than evicting earlier ones: the head of a trace — the structural
// Merge/Remove/plan steps — is the part worth keeping.
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = DefaultTraceCapacity
	}
	return &Tracer{max: max}
}

func (t *Tracer) record(ev SpanEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Events returns a copy of the event log, in completion order.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanEvent(nil), t.events...)
}

// Dropped reports how many events were discarded because the log was full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset clears the event log.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.dropped = 0
	t.mu.Unlock()
}

// WriteJSON writes the event log as {"spans": [...]}.
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := struct {
		Spans   []SpanEvent `json:"spans"`
		Dropped int64       `json:"dropped,omitempty"`
	}{Spans: t.Events(), Dropped: t.Dropped()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer returns a context carrying the tracer; spans started under it
// record into the tracer's event log.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the tracer carried by the context, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// Active is a started span. All methods are nil-safe: when the context
// carries no tracer, Span returns a nil *Active and the instrumentation
// costs two pointer lookups.
type Active struct {
	tracer *Tracer
	name   string
	depth  int
	start  time.Time
	mu     sync.Mutex
	attrs  map[string]string
	ended  bool
}

// Span starts a span under the context's tracer (a no-op without one) and
// returns a derived context under which child spans nest one level deeper.
//
//	ctx, sp := obs.Span(ctx, "core.Merge")
//	defer sp.End()
func Span(ctx context.Context, name string) (context.Context, *Active) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	depth := 0
	if parent, ok := ctx.Value(spanKey).(*Active); ok && parent != nil {
		depth = parent.depth + 1
	}
	a := &Active{tracer: t, name: name, depth: depth, start: time.Now()}
	return context.WithValue(ctx, spanKey, a), a
}

// SetAttr attaches a key=value annotation to the span.
func (a *Active) SetAttr(key, value string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.attrs == nil {
		a.attrs = make(map[string]string, 4)
	}
	a.attrs[key] = value
	a.mu.Unlock()
}

// End stops the span and appends its event to the tracer log. Ending twice
// records once.
func (a *Active) End() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.ended {
		a.mu.Unlock()
		return
	}
	a.ended = true
	attrs := a.attrs
	a.mu.Unlock()
	a.tracer.record(SpanEvent{
		Name:     a.name,
		Depth:    a.depth,
		Start:    a.start,
		Duration: time.Since(a.start),
		Attrs:    attrs,
	})
}
