package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("test.ops"); again != c {
		t.Error("re-registration must return the same counter")
	}

	g := r.Gauge("test.depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
}

func TestNilMetricHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metric handles must read zero")
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	base := r.Counter("engine.test_inserts", L("db", "base"))
	merged := r.Counter("engine.test_inserts", L("db", "merged"))
	if base == merged {
		t.Fatal("different label values must yield different series")
	}
	base.Add(3)
	merged.Inc()
	// Label order must not matter for identity.
	a := r.Counter("test.multi", L("x", "1"), L("y", "2"))
	b := r.Counter("test.multi", L("y", "2"), L("x", "1"))
	if a != b {
		t.Error("label order must not change series identity")
	}

	pts := r.Snapshot()
	var sawBase, sawMerged bool
	for _, p := range pts {
		if p.Name == "engine.test_inserts" {
			switch p.Labels["db"] {
			case "base":
				sawBase = true
				if p.Value != 3 {
					t.Errorf("base series = %g, want 3", p.Value)
				}
			case "merged":
				sawMerged = true
				if p.Value != 1 {
					t.Errorf("merged series = %g, want 1", p.Value)
				}
			}
		}
	}
	if !sawBase || !sawMerged {
		t.Errorf("snapshot missing labeled series: %+v", pts)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test.kind")
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge under a counter name must panic")
		}
	}()
	r.Gauge("test.kind")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "Upper.case", "has space", "1leading", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q must be rejected", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.lat", []float64{1, 10, 100})

	// Exactly-on-bound lands in the bounding bucket (cumulative le
	// semantics); below-first and above-last land in the outer buckets.
	for _, v := range []float64{0.5, 1, 1.0000001, 10, 99.9, 100, 101, 1e9} {
		h.Observe(v)
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
	wantCum := []int64{2, 4, 6, 8} // le=1, le=10, le=100, +Inf
	var p Point
	for _, pt := range r.Snapshot() {
		if pt.Name == "test.lat" {
			p = pt
		}
	}
	if len(p.Buckets) != 4 {
		t.Fatalf("bucket count = %d, want 4 (%+v)", len(p.Buckets), p)
	}
	for i, b := range p.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %s cumulative = %d, want %d", b.LE, b.Count, wantCum[i])
		}
	}
	if p.Buckets[3].LE != "+Inf" {
		t.Errorf("last bucket bound = %q, want +Inf", p.Buckets[3].LE)
	}
	if p.Count != 8 {
		t.Errorf("point count = %d, want 8", p.Count)
	}
}

func TestHistogramRejectsBadBuckets(t *testing.T) {
	r := NewRegistry()
	for _, bad := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v must be rejected", bad)
				}
			}()
			r.Histogram("test.badbuckets", bad)
		}()
	}
	r.Histogram("test.rebuckets", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Error("re-registering with different buckets must panic")
		}
	}()
	r.Histogram("test.rebuckets", []float64{1, 2, 3})
}

// TestConcurrentMutation drives every metric kind from many goroutines; run
// under -race this is the concurrency gate for the registry hot paths.
func TestConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Registration races with mutation on purpose.
			c := r.Counter("test.conc_ops")
			h := r.Histogram("test.conc_lat", []float64{1e-6, 1e-3, 1})
			ga := r.Gauge("test.conc_depth")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(float64(i%3) * 1e-4)
				ga.Add(1)
				if i%2 == 1 {
					ga.Add(-1)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("test.conc_ops").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	h := r.Histogram("test.conc_lat", []float64{1e-6, 1e-3, 1})
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("test.conc_depth").Value(); got != goroutines*perG/2 {
		t.Errorf("gauge = %g, want %d", got, goroutines*perG/2)
	}
}

func TestSnapshotJSONAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("test.a", L("db", "x")).Add(2)
	r.GaugeFunc("test.b", func() float64 { return 7 })
	r.Histogram("test.c", []float64{1}).Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []Point `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(doc.Metrics) != 3 {
		t.Fatalf("metrics = %d, want 3", len(doc.Metrics))
	}
	// Snapshot is sorted by name.
	for i := 1; i < len(doc.Metrics); i++ {
		if doc.Metrics[i-1].Name > doc.Metrics[i].Name {
			t.Error("snapshot not sorted by name")
		}
	}
	if doc.Metrics[1].Value != 7 {
		t.Errorf("gauge func value = %g, want 7", doc.Metrics[1].Value)
	}

	buf.Reset()
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"test.a{db=\"x\"} 2\n",
		"test.b 7\n",
		"test.c_count 1\n",
		"test.c_bucket{le=\"+Inf\"} 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}
}

func TestDefaultRegistryIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Error("Default must return the same registry")
	}
}
