package sdl

import (
	"fmt"
	"strings"

	"repro/internal/eer"
	"repro/internal/schema"
)

// PrintSchema renders a relational schema in the DSL, so that
// ParseSchema(PrintSchema(s)) reproduces s (statement order: relations and
// candidate keys, inclusion dependencies, null constraints).
func PrintSchema(s *schema.Schema) string {
	var b strings.Builder
	for _, rs := range s.Relations {
		var cols []string
		for _, a := range rs.Attrs {
			cols = append(cols, a.Name+" "+a.Domain)
		}
		fmt.Fprintf(&b, "relation %s (%s) key (%s)\n",
			rs.Name, strings.Join(cols, ", "), strings.Join(rs.PrimaryKey, ", "))
		for _, ck := range rs.CandidateKeys {
			fmt.Fprintf(&b, "candidate %s (%s)\n", rs.Name, strings.Join(ck, ", "))
		}
	}
	for _, ind := range s.INDs {
		fmt.Fprintf(&b, "ind %s[%s] <= %s[%s]\n",
			ind.Left, strings.Join(ind.LeftAttrs, ", "),
			ind.Right, strings.Join(ind.RightAttrs, ", "))
	}
	for _, nc := range s.Nulls {
		switch c := nc.(type) {
		case schema.NullExistence:
			if c.IsNNA() {
				fmt.Fprintf(&b, "nna %s (%s)\n", c.Scheme, strings.Join(c.Z, ", "))
			} else {
				fmt.Fprintf(&b, "nullexist %s (%s) <= (%s)\n",
					c.Scheme, strings.Join(c.Y, ", "), strings.Join(c.Z, ", "))
			}
		case schema.NullSync:
			fmt.Fprintf(&b, "nullsync %s (%s)\n", c.Scheme, strings.Join(c.Y, ", "))
		case schema.PartNull:
			var sets []string
			for _, set := range c.Sets {
				sets = append(sets, "{"+strings.Join(set, ", ")+"}")
			}
			fmt.Fprintf(&b, "partnull %s %s\n", c.Scheme, strings.Join(sets, " "))
		case schema.TotalEquality:
			fmt.Fprintf(&b, "totaleq %s (%s) = (%s)\n",
				c.Scheme, strings.Join(c.Y, ", "), strings.Join(c.Z, ", "))
		}
	}
	return b.String()
}

// PrintEER renders an EER schema in the DSL, so that ParseEER(PrintEER(s))
// reproduces s.
func PrintEER(s *eer.Schema) string {
	var b strings.Builder
	parentOf := make(map[string]string)
	for _, isa := range s.ISAs {
		if _, ok := parentOf[isa.Child]; !ok {
			parentOf[isa.Child] = isa.Parent
		}
	}
	attrsClause := func(attrs []eer.Attr) string {
		if len(attrs) == 0 {
			return ""
		}
		var cols []string
		for _, a := range attrs {
			col := a.Name + " " + a.Domain
			if a.Nullable {
				col += "?"
			}
			if a.MultiValued {
				col += "*"
			}
			cols = append(cols, col)
		}
		return " attrs (" + strings.Join(cols, ", ") + ")"
	}
	for _, e := range s.Entities {
		switch {
		case e.Weak:
			fmt.Fprintf(&b, "weak %s of %s prefix %s%s discriminator (%s)\n",
				e.Name, e.Owner, e.Prefix, attrsClause(e.OwnAttrs), strings.Join(e.Discriminator, ", "))
		case parentOf[e.Name] != "":
			fmt.Fprintf(&b, "specialization %s of %s prefix %s%s\n",
				e.Name, parentOf[e.Name], e.Prefix, attrsClause(e.OwnAttrs))
		default:
			fmt.Fprintf(&b, "entity %s prefix %s%s id (%s)",
				e.Name, e.Prefix, attrsClause(e.OwnAttrs), strings.Join(e.ID, ", "))
			if len(e.CopyBases) > 0 {
				fmt.Fprintf(&b, " copybase (%s)", strings.Join(e.CopyBases, ", "))
			}
			b.WriteString("\n")
		}
	}
	for _, r := range s.Relationships {
		var parts []string
		for _, p := range r.Parts {
			card := "one"
			if p.Card == eer.Many {
				card = "many"
			}
			parts = append(parts, p.Object+" "+card)
		}
		fmt.Fprintf(&b, "relationship %s prefix %s parts (%s)%s\n",
			r.Name, r.Prefix, strings.Join(parts, ", "), attrsClause(r.OwnAttrs))
	}
	return b.String()
}
