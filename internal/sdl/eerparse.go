package sdl

import (
	"fmt"

	"repro/internal/eer"
)

// ParseEER parses an EER schema from the DSL. The result is validated
// before being returned.
func ParseEER(input string) (*eer.Schema, error) {
	lx, err := lex(input)
	if err != nil {
		return nil, err
	}
	s := eer.New()
	for lx.peek().kind != tokEOF {
		kw, err := lx.ident()
		if err != nil {
			return nil, err
		}
		switch kw {
		case "entity":
			if err := parseEntity(lx, s); err != nil {
				return nil, err
			}
		case "specialization":
			if err := parseSpecialization(lx, s); err != nil {
				return nil, err
			}
		case "weak":
			if err := parseWeak(lx, s); err != nil {
				return nil, err
			}
		case "relationship":
			if err := parseRelationship(lx, s); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("sdl: unknown statement %q (want entity, specialization, weak, or relationship)", kw)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sdl: %w", err)
	}
	return s, nil
}

// parseEERAttrs parses: attrs (NAME dom, NAME dom?, ...) — optional clause.
func parseEERAttrs(lx *lexer) ([]eer.Attr, error) {
	if !lx.accept("attrs") {
		return nil, nil
	}
	if err := lx.expect("("); err != nil {
		return nil, err
	}
	var out []eer.Attr
	for {
		name, err := lx.ident()
		if err != nil {
			return nil, err
		}
		dom, err := lx.ident()
		if err != nil {
			return nil, err
		}
		a := eer.Attr{Name: name, Domain: dom}
		for {
			if lx.accept("?") {
				a.Nullable = true
				continue
			}
			if lx.accept("*") {
				a.MultiValued = true
				continue
			}
			break
		}
		out = append(out, a)
		if lx.accept(")") {
			return out, nil
		}
		if err := lx.expect(","); err != nil {
			return nil, err
		}
	}
}

func parsePrefix(lx *lexer) (string, error) {
	if !lx.accept("prefix") {
		return "", nil
	}
	return lx.ident()
}

// parseEntity handles:
//
//	entity NAME prefix P attrs (A dom, ...) id (A, ...) copybase (X, ...)
func parseEntity(lx *lexer, s *eer.Schema) error {
	name, err := lx.ident()
	if err != nil {
		return err
	}
	e := &eer.EntitySet{Name: name}
	if e.Prefix, err = parsePrefix(lx); err != nil {
		return err
	}
	if e.OwnAttrs, err = parseEERAttrs(lx); err != nil {
		return err
	}
	if lx.accept("id") {
		if e.ID, err = lx.identList("(", ")"); err != nil {
			return err
		}
	}
	if lx.accept("copybase") {
		if e.CopyBases, err = lx.identList("(", ")"); err != nil {
			return err
		}
	}
	s.Entities = append(s.Entities, e)
	return nil
}

// parseSpecialization handles:
//
//	specialization NAME of PARENT prefix F attrs (A dom, ...)
func parseSpecialization(lx *lexer, s *eer.Schema) error {
	name, err := lx.ident()
	if err != nil {
		return err
	}
	if err := lx.expect("of"); err != nil {
		return err
	}
	parent, err := lx.ident()
	if err != nil {
		return err
	}
	e := &eer.EntitySet{Name: name}
	if e.Prefix, err = parsePrefix(lx); err != nil {
		return err
	}
	if e.OwnAttrs, err = parseEERAttrs(lx); err != nil {
		return err
	}
	s.Entities = append(s.Entities, e)
	s.ISAs = append(s.ISAs, eer.ISA{Child: name, Parent: parent})
	return nil
}

// parseWeak handles:
//
//	weak NAME of OWNER prefix W attrs (A dom, ...) discriminator (A, ...)
func parseWeak(lx *lexer, s *eer.Schema) error {
	name, err := lx.ident()
	if err != nil {
		return err
	}
	if err := lx.expect("of"); err != nil {
		return err
	}
	owner, err := lx.ident()
	if err != nil {
		return err
	}
	e := &eer.EntitySet{Name: name, Weak: true, Owner: owner}
	if e.Prefix, err = parsePrefix(lx); err != nil {
		return err
	}
	if e.OwnAttrs, err = parseEERAttrs(lx); err != nil {
		return err
	}
	if err := lx.expect("discriminator"); err != nil {
		return err
	}
	if e.Discriminator, err = lx.identList("(", ")"); err != nil {
		return err
	}
	s.Entities = append(s.Entities, e)
	return nil
}

// parseRelationship handles:
//
//	relationship NAME prefix R parts (OBJ many, OBJ one, ...) attrs (A dom?, ...)
func parseRelationship(lx *lexer, s *eer.Schema) error {
	name, err := lx.ident()
	if err != nil {
		return err
	}
	r := &eer.RelationshipSet{Name: name}
	if r.Prefix, err = parsePrefix(lx); err != nil {
		return err
	}
	if err := lx.expect("parts"); err != nil {
		return err
	}
	if err := lx.expect("("); err != nil {
		return err
	}
	for {
		obj, err := lx.ident()
		if err != nil {
			return err
		}
		card, err := lx.ident()
		if err != nil {
			return err
		}
		p := eer.Participant{Object: obj}
		switch card {
		case "many", "M", "m":
			p.Card = eer.Many
		case "one", "1":
			p.Card = eer.One
		default:
			return fmt.Errorf("sdl: bad cardinality %q (want many or one)", card)
		}
		r.Parts = append(r.Parts, p)
		if lx.accept(")") {
			break
		}
		if err := lx.expect(","); err != nil {
			return err
		}
	}
	if r.OwnAttrs, err = parseEERAttrs(lx); err != nil {
		return err
	}
	s.Relationships = append(s.Relationships, r)
	return nil
}
